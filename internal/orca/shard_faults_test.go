package orca_test

import (
	"fmt"
	"testing"

	"repro/internal/group"
	"repro/internal/netsim"
	"repro/internal/orca"
	"repro/internal/orca/std"
	"repro/internal/sim"
)

// shardedFenceRun executes a sharded program that mixes cross-shard
// fenced transfers with per-shard traffic while the wire drops
// fragments and one shard's sequencer crashes, and returns an
// outcome fingerprint. With full-span shards and sequencer rotation 0,
// shard k sequences on machine k: crashing machine 1 takes down
// exactly shard 1's sequencer.
func shardedFenceRun(t *testing.T, method group.Method, protocol group.Protocol) string {
	t.Helper()
	const procs, shards, transfers, opsPer = 4, 4, 8, 30
	plan := &netsim.FaultPlan{
		Crashes: []netsim.Crash{{Node: 1, At: 60 * sim.Millisecond}},
		Losses: []netsim.LossWindow{{
			Src: netsim.AnyNode, Dst: netsim.AnyNode,
			From: 10 * sim.Millisecond, Until: 150 * sim.Millisecond, Prob: 0.05,
		}},
	}
	cfg := orca.Config{Processors: procs, RTS: orca.Broadcast, Shards: shards,
		GroupMethod: method, Protocol: protocol, Seed: 33, Faults: plan}
	rt := orca.New(cfg, std.Register)
	finals := make([]int, shards)
	rep := rt.Run(func(p *orca.Proc) {
		counters := make([]orca.Object, shards)
		for k := range counters {
			counters[k] = p.NewWith(std.IntObj, orca.Opts(orca.OnShard(k)))
		}
		done := p.New(std.BarrierObj, 2)
		for _, cpu := range []int{2, 3} {
			cpu := cpu
			p.Fork(cpu, fmt.Sprintf("w%d", cpu), func(wp *orca.Proc) {
				for i := 0; i < opsPer; i++ {
					wp.Invoke(counters[cpu], "inc")
					wp.Work(time1ms)
				}
				wp.Invoke(done, "arrive")
			})
		}
		// Cross-shard fences spanning the crashed shard and a healthy
		// one: each must reserve a slot in both streams even while
		// shard 1 is recovering its sequencer.
		for i := 0; i < transfers; i++ {
			p.InvokeFenced(
				orca.FencedOp{Obj: counters[0], Op: "add", Args: []any{2}},
				orca.FencedOp{Obj: counters[1], Op: "add", Args: []any{3}},
			)
			p.Work(5 * time1ms)
		}
		p.Invoke(done, "wait")
		for k := range counters {
			finals[k] = p.InvokeI(counters[k], "value")
		}
	})
	if rep.TimedOut {
		t.Fatalf("%v/%v: timed out (blocked: %v)", method, protocol, rep.Blocked)
	}
	if finals[0] != 2*transfers || finals[1] != 3*transfers {
		t.Fatalf("%v/%v: fenced counters = %v, want [%d %d ...]",
			method, protocol, finals, 2*transfers, 3*transfers)
	}
	if finals[2] != opsPer || finals[3] != opsPer {
		t.Fatalf("%v/%v: surviving-shard counters = %v, want %d in shards 2,3",
			method, protocol, finals, opsPer)
	}
	if len(rep.Crashes) != 1 || rep.Crashes[0].Node != 1 {
		t.Fatalf("%v/%v: crash record = %+v", method, protocol, rep.Crashes)
	}
	return fmt.Sprintf("finals=%v elapsed=%d msgs=%d frames=%d fenced=%d",
		finals, int64(rep.Elapsed), rep.Net.Messages, rep.Net.Frames, rep.RTS.FencedOps)
}

// TestShardedFenceDeterministicUnderFaults: the cross-shard fence stays
// bit-deterministic under fragment loss plus a one-shard sequencer
// crash, for all three sequencing protocols — two runs of each
// configuration must produce identical outcome fingerprints.
func TestShardedFenceDeterministicUnderFaults(t *testing.T) {
	cases := []struct {
		name     string
		method   group.Method
		protocol group.Protocol
	}{
		{"PB", group.ForcePB, group.ElectedSequencer},
		{"BB", group.ForceBB, group.ElectedSequencer},
		{"Consensus", group.Auto, group.Consensus},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			fp1 := shardedFenceRun(t, tc.method, tc.protocol)
			fp2 := shardedFenceRun(t, tc.method, tc.protocol)
			if fp1 != fp2 {
				t.Fatalf("fence run not deterministic under %s:\n  %s\n  %s", tc.name, fp1, fp2)
			}
		})
	}
}

// fenceAbortRun drives a stream of back-to-back cross-shard fences
// from node 1 and kills that machine mid-stream, then proves the
// presumed-abort release: the shards the dead initiator had reserved
// un-pause after the abort grace without applying the interrupted
// fence's writes, so a survivor's writes to both shards complete and
// the two fenced counters stay in lock-step (all-or-nothing).
func fenceAbortRun(t *testing.T, method group.Method, protocol group.Protocol, crashAt sim.Time) string {
	t.Helper()
	const procs, shards = 4, 4
	plan := &netsim.FaultPlan{Crashes: []netsim.Crash{{Node: 1, At: crashAt}}}
	cfg := orca.Config{Processors: procs, RTS: orca.Broadcast, Shards: shards,
		GroupMethod: method, Protocol: protocol, Seed: 17, Faults: plan}
	rt := orca.New(cfg, std.Register)
	var v0, v1 int
	rep := rt.Run(func(p *orca.Proc) {
		c0 := p.NewWith(std.IntObj, orca.Opts(orca.OnShard(0)))
		c1 := p.NewWith(std.IntObj, orca.Opts(orca.OnShard(1)))
		p.Fork(1, "initiator", func(wp *orca.Proc) {
			// Back-to-back fences: the crash instant is inside one of
			// them, between the shard-0 and shard-1 reservations.
			for i := 0; i < 200; i++ {
				wp.InvokeFenced(
					orca.FencedOp{Obj: c0, Op: "add", Args: []any{2}},
					orca.FencedOp{Obj: c1, Op: "add", Args: []any{3}},
				)
			}
		})
		p.Sleep(crashAt + 2*sim.Millisecond)
		// Survivor writes to both shards: these sit behind the paused
		// streams until the presumed abort releases them.
		p.Invoke(c0, "add", 10)
		p.Invoke(c1, "add", 10)
		v0 = p.InvokeI(c0, "value")
		v1 = p.InvokeI(c1, "value")
	})
	if rep.TimedOut {
		t.Fatalf("%v/%v: timed out (blocked: %v)", method, protocol, rep.Blocked)
	}
	if len(rep.Crashes) != 1 || rep.Crashes[0].Node != 1 {
		t.Fatalf("%v/%v: crash record = %+v", method, protocol, rep.Crashes)
	}
	k0, k1 := v0-10, v1-10
	if k0%2 != 0 || k1%3 != 0 || k0/2 != k1/3 {
		t.Fatalf("%v/%v: fenced counters %d/%d: interrupted fence applied partially", method, protocol, v0, v1)
	}
	return fmt.Sprintf("v0=%d v1=%d elapsed=%d msgs=%d", v0, v1, int64(rep.Elapsed), rep.Net.Messages)
}

// TestFencePresumedAbortOnInitiatorCrash kills a fence initiator
// between its shard reservations: the paused shards must release after
// the abort grace with the fence applied nowhere, and the whole
// schedule must stay deterministic. Before the presumed-abort release
// this scenario deadlocked — every machine's shard-0 stream waited
// forever for a shard-1 arrival that can never come.
func TestFencePresumedAbortOnInitiatorCrash(t *testing.T) {
	cases := []struct {
		name     string
		method   group.Method
		protocol group.Protocol
		crashAt  sim.Time
	}{
		{"PB", group.ForcePB, group.ElectedSequencer, 20 * sim.Millisecond},
		{"Consensus", group.Auto, group.Consensus, 60 * sim.Millisecond},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			fp1 := fenceAbortRun(t, tc.method, tc.protocol, tc.crashAt)
			fp2 := fenceAbortRun(t, tc.method, tc.protocol, tc.crashAt)
			if fp1 != fp2 {
				t.Fatalf("abort run not deterministic:\n  %s\n  %s", fp1, fp2)
			}
			t.Logf("%s", fp1)
		})
	}
}
