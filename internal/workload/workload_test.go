package workload

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestTraceDeterministic(t *testing.T) {
	cfg := Config{Keys: 1024, Seed: 42, Rate: 5000, Duration: 100 * sim.Millisecond}
	a := Trace(cfg)
	b := Trace(cfg)
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed must produce a different trace.
	cfg.Seed = 43
	c := Trace(cfg)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seed 42 and 43 produced identical traces")
	}
}

func TestOpenLoopRate(t *testing.T) {
	// Poisson arrivals at rate R over duration D: expected count R*D,
	// stddev sqrt(R*D). Check within 4 sigma, and arrival times are
	// strictly ordered inside the horizon.
	cfg := Config{Keys: 100, Dist: Uniform, Seed: 7, Rate: 10000, Duration: 1 * sim.Second}
	ops := Trace(cfg)
	want := 10000.0
	sigma := math.Sqrt(want)
	if d := math.Abs(float64(len(ops)) - want); d > 4*sigma {
		t.Errorf("open loop produced %d ops, want %.0f +- %.0f (4 sigma)", len(ops), want, 4*sigma)
	}
	prev := sim.Time(-1)
	for i, op := range ops {
		if op.At <= prev {
			t.Fatalf("op %d arrival %d not after previous %d", i, op.At, prev)
		}
		if op.At >= cfg.Duration {
			t.Fatalf("op %d arrival %d past the horizon %d", i, op.At, cfg.Duration)
		}
		prev = op.At
	}
}

func TestClosedLoopCount(t *testing.T) {
	cfg := Config{Keys: 100, Dist: Uniform, Seed: 1, Ops: 500}
	ops := Trace(cfg)
	if len(ops) != 500 {
		t.Fatalf("closed loop produced %d ops, want 500", len(ops))
	}
	for i, op := range ops {
		if op.At != 0 {
			t.Fatalf("op %d has arrival stamp %d in closed loop", i, op.At)
		}
	}
}

func TestMixFractions(t *testing.T) {
	cfg := Config{Keys: 100, Dist: Uniform, Seed: 3, Ops: 20000, ReadFrac: 0.8, UpdateFrac: 0.1}
	var gets, puts, updates float64
	for _, op := range Trace(cfg) {
		switch op.Kind {
		case Get:
			gets++
		case Put:
			puts++
		case Update:
			updates++
		}
	}
	n := gets + puts + updates
	for _, c := range []struct {
		name string
		got  float64
		want float64
	}{{"get", gets / n, 0.8}, {"update", updates / n, 0.1}, {"put", puts / n, 0.1}} {
		// Binomial stddev at n=20000, p=0.1 is ~0.0021; 4 sigma ~ 0.01.
		if math.Abs(c.got-c.want) > 0.012 {
			t.Errorf("%s fraction = %.4f, want %.2f +- 0.012", c.name, c.got, c.want)
		}
	}
}

func TestZipfMatchesTheory(t *testing.T) {
	// Empirical frequency of the hottest ranks must track the
	// closed-form Zipf probabilities. With n draws, the count of key k
	// is binomial(n, p): compare within 5 sigma.
	const n = 200000
	keys := int64(1000)
	theta := 0.99
	cfg := Config{Keys: keys, Dist: Zipf, Theta: theta, Seed: 11, Ops: n, ReadFrac: 1}
	counts := make(map[int64]int)
	for _, op := range Trace(cfg) {
		counts[op.Key]++
	}
	// Ranks 0 and 1 take dedicated branches in the generator and are
	// exact: compare against the binomial 5-sigma band.
	for _, k := range []int64{0, 1} {
		p := Prob(keys, theta, k)
		want := p * n
		sigma := math.Sqrt(n * p * (1 - p))
		if d := math.Abs(float64(counts[k]) - want); d > 5*sigma {
			t.Errorf("key %d drawn %d times, theory %.0f +- %.0f (5 sigma)", k, counts[k], want, 5*sigma)
		}
	}
	// Deeper ranks use the closed-form continuous inverse (the YCSB
	// approximation): allow 25% relative error but demand the right
	// mass and ordering.
	for _, k := range []int64{2, 5, 10, 50} {
		want := Prob(keys, theta, k) * n
		if d := math.Abs(float64(counts[k]) - want); d > 0.25*want {
			t.Errorf("key %d drawn %d times, theory %.0f: off by more than 25%%", k, counts[k], want)
		}
	}
	for _, pair := range [][2]int64{{0, 2}, {2, 10}, {10, 50}, {50, 500}} {
		if counts[pair[0]] <= counts[pair[1]] {
			t.Errorf("rank %d drawn %d times, rank %d drawn %d: zipf ordering violated",
				pair[0], counts[pair[0]], pair[1], counts[pair[1]])
		}
	}
	// Skew direction: the top-10 hot set must dominate a uniform share.
	hot := 0
	for k := int64(0); k < 10; k++ {
		hot += counts[k]
	}
	if frac := float64(hot) / n; frac < 0.2 {
		t.Errorf("top-10 keys drew %.3f of traffic, want the zipf head (>= 0.2)", frac)
	}
}

func TestProbSumsToOne(t *testing.T) {
	keys := int64(200)
	sum := 0.0
	for k := int64(0); k < keys; k++ {
		sum += Prob(keys, 0.99, k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Prob sums to %v, want 1", sum)
	}
}

func TestPhaseShiftRotatesHotSet(t *testing.T) {
	cfg := Config{Keys: 1000, Dist: Zipf, Theta: 0.99, Seed: 5,
		Rate: 10000, Duration: 1 * sim.Second, ShiftFrac: 0.5, ReadFrac: 1}
	ops := Trace(cfg)
	cut := sim.Time(float64(cfg.Duration) * cfg.ShiftFrac)
	early := make(map[int64]int)
	late := make(map[int64]int)
	for _, op := range ops {
		if op.At < cut {
			early[op.Key]++
		} else {
			late[op.Key]++
		}
	}
	// Before the shift the head is the low keys; after, it is rotated
	// by Keys/2. Key 0 must be hot early and cold late; key 500 the
	// reverse.
	if early[0] < 10*early[500] {
		t.Errorf("pre-shift: key 0 drawn %d, key 500 drawn %d; want key 0 dominant", early[0], early[500])
	}
	if late[500] < 10*late[0] {
		t.Errorf("post-shift: key 500 drawn %d, key 0 drawn %d; want key 500 dominant", late[500], late[0])
	}
	// A shifted config still yields a deterministic trace.
	b := Trace(cfg)
	if len(ops) != len(b) {
		t.Fatalf("shifted trace not deterministic: %d vs %d ops", len(ops), len(b))
	}
	for i := range ops {
		if ops[i] != b[i] {
			t.Fatalf("shifted trace differs at op %d", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	mustPanic := func(name string, cfg Config) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: New did not panic", name)
			}
		}()
		New(cfg)
	}
	mustPanic("no keys", Config{Rate: 1, Duration: 1})
	mustPanic("bad theta", Config{Keys: 10, Theta: 1.5, Rate: 1, Duration: 1})
	mustPanic("open loop without duration", Config{Keys: 10, Rate: 1})
	mustPanic("no ops", Config{Keys: 10})
	mustPanic("bad mix", Config{Keys: 10, Ops: 1, ReadFrac: 0.9, UpdateFrac: 0.2})
}

func TestAffinityRemapsToHomeBlock(t *testing.T) {
	cfg := Config{Keys: 1000, Dist: Uniform, Seed: 9, ReadFrac: 1,
		Rate: 10000, Duration: 1 * sim.Second, ShiftFrac: 0.5, ShiftBy: 1,
		Partitions: 4, Partition: 1, LocalFrac: 0.9}
	ops := Trace(cfg)
	cut := sim.Time(float64(cfg.Duration) * cfg.ShiftFrac)
	inBlock := func(k int64, b int) bool { return k >= int64(b)*250 && k < int64(b+1)*250 }
	var early, earlyHome, late, lateHome int
	for _, op := range ops {
		if op.At < cut {
			early++
			if inBlock(op.Key, 1) {
				earlyHome++
			}
		} else {
			late++
			if inBlock(op.Key, 2) {
				lateHome++
			}
		}
	}
	// LocalFrac 0.9 plus the uniform background's 0.25 share of the home
	// block puts ~92% of draws there; 0.8 leaves slack for sampling noise.
	if float64(earlyHome) < 0.8*float64(early) {
		t.Errorf("pre-shift: %d of %d ops in home block 1, want >= 80%%", earlyHome, early)
	}
	// After the shift the home rotates to the next partition.
	if float64(lateHome) < 0.8*float64(late) {
		t.Errorf("post-shift: %d of %d ops in block 2, want >= 80%%", lateHome, late)
	}
}

func TestAffinityOffLeavesTraceUnchanged(t *testing.T) {
	base := Config{Keys: 500, Seed: 3, Rate: 5000, Duration: sim.Second}
	with := base
	with.Partitions = 1 // <= 1: affinity disabled, no extra draws
	a, b := Trace(base), Trace(with)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace differs at op %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
