package acp

import (
	"fmt"

	"repro/internal/orca"
	"repro/internal/orca/std"
	"repro/internal/rts"
)

// Result of one Orca ACP run.
type Result struct {
	Domains    []uint64
	NoSolution bool
	Revisions  int64
	Report     orca.Report
	Runtime    *orca.Runtime
}

// Params configures the parallel ACP program.
type Params struct {
	// Workers overrides the worker count. The default follows the
	// paper: one worker per processor except processor 0, which runs
	// the master ("the master process that distributes the work runs
	// on a separate processor"); with one processor, a single worker
	// shares it with the master.
	Workers int
}

// RunOrca executes the paper's parallel ACP program.
func RunOrca(cfg orca.Config, inst *Instance, params Params) Result {
	workers := params.Workers
	if workers == 0 {
		workers = cfg.Processors - 1
		if workers < 1 {
			workers = 1
		}
	}
	setup := func(reg *rts.Registry) {
		std.Register(reg)
		RegisterTypes(reg)
	}
	rt := orca.New(cfg, setup)
	res := Result{}
	rep := rt.Run(func(p *orca.Proc) {
		domains := p.New(DomainObj, inst.NVars, inst.FullDomain())
		work := p.New(WorkObj, inst.NVars, workers)
		result := p.New(std.BoolArray, workers)
		nosolution := p.New(std.Flag)
		revAcc := p.New(std.Accum)
		fin := p.New(std.Barrier, workers)

		// Static partition of the variables among the workers.
		parts := make([][]int, workers)
		for v := 0; v < inst.NVars; v++ {
			parts[v%workers] = append(parts[v%workers], v)
		}

		for me := 0; me < workers; me++ {
			me := me
			cpu := me + 1
			if cpu >= cfg.Processors {
				cpu = me % cfg.Processors
			}
			p.Fork(cpu, fmt.Sprintf("acp-worker%d", me), func(wp *orca.Proc) {
				myVars := parts[me]
				var revisions int64

				// process rechecks the constraints involving variable
				// v, shrinking v's set; returns false on wipeout.
				// Work flags for neighbors are marked once at the
				// end, in a single indivisible operation.
				process := func(v int) bool {
					changed := false
					for _, ci := range inst.Incident(v) {
						c := inst.Constraints[ci]
						other := c.I
						if other == v {
							other = c.J
						}
						pair := wp.Invoke(domains, "get2", v, other)
						dv, do := pair[0].(uint64), pair[1].(uint64)
						nv := Revise(c, v, dv, do, inst.DomainSize)
						wp.Work(inst.ReviseCost())
						revisions++
						if nv == dv {
							continue
						}
						rem := wp.Invoke(domains, "remove", v, dv&^nv)
						changed = true
						if rem[1].(bool) {
							// Empty set: no solution exists.
							wp.Invoke(nosolution, "set", true)
							wp.Invoke(work, "finish")
							return false
						}
					}
					if changed {
						// Neighbors must be rechecked; so must v
						// itself, since its set changed.
						nbs := append([]int{v}, inst.Neighbors(v)...)
						wp.Invoke(work, "mark", nbs)
					}
					return true
				}

				for {
					// "Each process reads the object before doing new
					// work, and quits if the value is true." (a local
					// read on the replicated flag)
					if wp.InvokeB(nosolution, "value") {
						break
					}
					got := wp.Invoke(work, "claim", me, myVars)
					if got[1].(bool) {
						break // done
					}
					if v := got[0].(int); v >= 0 {
						if !process(v) {
							break
						}
						continue
					}
					// Out of work: declare willingness to terminate,
					// then block for more work or termination.
					wp.Invoke(result, "set", me, true)
					if wp.InvokeB(work, "setIdle", me) {
						break
					}
					got = wp.Invoke(work, "await", me, myVars)
					if got[1].(bool) {
						break
					}
					wp.Invoke(result, "set", me, false)
					if v := got[0].(int); v >= 0 && !process(v) {
						break
					}
				}
				wp.Invoke(revAcc, "add", int(revisions))
				wp.Invoke(fin, "arrive")
			})
		}

		p.Invoke(fin, "wait")
		res.NoSolution = p.InvokeB(nosolution, "value")
		res.Revisions = int64(p.InvokeI(revAcc, "value"))
		res.Domains = p.Invoke(domains, "snapshot")[0].([]uint64)
	})
	res.Report = rep
	res.Runtime = rt
	return res
}
