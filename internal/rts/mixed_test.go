package rts

import (
	"testing"

	"repro/internal/amoeba"
	"repro/internal/group"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// newMixedTB builds a composite cluster: broadcast and point-to-point
// managers over the same machines and group members, fused into a
// MixedRTS with a broadcast default.
func newMixedTB(t *testing.T, seed int64, n int, cfg P2PConfig) (*tb, *MixedRTS) {
	t.Helper()
	env := sim.New(seed)
	nw := netsim.New(env, n, netsim.DefaultParams())
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	gcfg := group.DefaultConfig(members)
	ms := make([]*amoeba.Machine, n)
	gs := make([]*group.Member, n)
	for i := 0; i < n; i++ {
		ms[i] = amoeba.NewMachine(env, nw, i, amoeba.DefaultCosts())
		gs[i] = group.Join(ms[i], gcfg)
	}
	br := NewBroadcastRTS(testRegistry(), DefaultCosts(), ms, gs)
	p2p := NewP2PRTS(testRegistry(), DefaultCosts(), cfg, ms)
	m := NewMixedRTS(br, p2p, true)
	return &tb{env: env, net: nw, ms: ms, sys: m}, m
}

// TestMixedRoutesPerObject creates one object per subsystem and checks
// ids are unique, operations route to the right manager, and PeekState
// reflects each strategy's replica placement.
func TestMixedRoutesPerObject(t *testing.T) {
	b, m := newMixedTB(t, 1, 3, DefaultP2PConfig())
	done := false
	b.spawn(0, "driver", func(w *Worker) {
		rep := m.Create(w, "intcell", 10) // broadcast (default)
		prim := m.CreatePrimaryCopy(w, "intcell", Update, SingleCopy, 20)
		part := m.CreateReplicated(w, "intcell", []int{0, 1}, 30)
		if rep == prim || prim == part || rep == part {
			t.Errorf("object ids collide: %d %d %d", rep, prim, part)
		}
		m.Invoke(w, rep, "set", 11)
		m.Invoke(w, prim, "set", 21)
		m.Invoke(w, part, "set", 31)
		if got := m.Invoke(w, rep, "get")[0].(int); got != 11 {
			t.Errorf("replicated get = %d, want 11", got)
		}
		if got := m.Invoke(w, prim, "get")[0].(int); got != 21 {
			t.Errorf("primary-copy get = %d, want 21", got)
		}
		if got := m.Invoke(w, part, "get")[0].(int); got != 31 {
			t.Errorf("partial get = %d, want 31", got)
		}
		w.Flush()
		// Replica placement: the broadcast object is everywhere, the
		// single-copy object only on its creator, the partial object on
		// its placement set.
		for node := 0; node < 3; node++ {
			if _, ok := m.PeekState(node, rep); !ok {
				t.Errorf("node %d holds no replica of the broadcast object", node)
			}
			_, hasPrim := m.PeekState(node, prim)
			if want := node == 0; hasPrim != want {
				t.Errorf("node %d primary-copy replica = %v, want %v", node, hasPrim, want)
			}
			_, hasPart := m.PeekState(node, part)
			if want := node <= 1; hasPart != want {
				t.Errorf("node %d partial replica = %v, want %v", node, hasPart, want)
			}
		}
		done = true
	})
	b.run(10 * sim.Second)
	b.done()
	if !done {
		t.Fatal("driver did not finish")
	}
}

// TestMixedCountersMerge checks the unified snapshot sums both
// subsystems: broadcast writes from the replicated object, p2p writes
// and remote reads from the primary-copy object.
func TestMixedCountersMerge(t *testing.T) {
	b, m := newMixedTB(t, 2, 2, DefaultP2PConfig())
	var ids [2]ObjID
	ready := sim.NewCond(b.env)
	b.spawn(0, "creator", func(w *Worker) {
		ids[0] = m.Create(w, "intcell")
		ids[1] = m.CreatePrimaryCopy(w, "intcell", Update, SingleCopy)
		w.Flush()
		ready.Broadcast()
	})
	b.spawn(1, "worker", func(w *Worker) {
		for ids[1] == 0 {
			ready.Wait(w.P)
		}
		m.Invoke(w, ids[0], "inc") // broadcast write
		m.Invoke(w, ids[0], "get") // local read
		m.Invoke(w, ids[1], "inc") // p2p write via RPC
		m.Invoke(w, ids[1], "get") // remote read (no local copy)
		w.Flush()
	})
	b.run(10 * sim.Second)
	b.done()
	st := m.Counters()
	if st.BcastWrites == 0 {
		t.Error("no broadcast writes counted")
	}
	if st.P2PWrites == 0 {
		t.Error("no p2p writes counted")
	}
	if st.RemoteReads == 0 {
		t.Error("no remote reads counted")
	}
	if st.LocalReads == 0 {
		t.Error("no local reads counted")
	}
}

// TestPerObjectProtocol hosts an invalidation-protocol object and an
// update-protocol object in the same point-to-point runtime and checks
// each object's writes run its own protocol.
func TestPerObjectProtocol(t *testing.T) {
	cfg := DefaultP2PConfig()
	cfg.Placement = FullReplication // secondaries exist from creation
	b, r := newP2PTB(t, 3, 3, cfg)
	var inval, upd ObjID
	ready := sim.NewCond(b.env)
	b.spawn(0, "creator", func(w *Worker) {
		inval = r.CreateWith(w, "intcell", Invalidation, FullReplication)
		upd = r.CreateWith(w, "intcell", Update, FullReplication)
		w.Flush()
		ready.Broadcast()
	})
	b.spawn(0, "writer", func(w *Worker) {
		for upd == 0 {
			ready.Wait(w.P)
		}
		base := r.Stats()
		r.Invoke(w, inval, "inc")
		w.Flush()
		after := r.Stats()
		if got := after.Invalidations - base.Invalidations; got != 2 {
			t.Errorf("invalidation-object write sent %d invalidations, want 2", got)
		}
		if after.Updates != base.Updates {
			t.Errorf("invalidation-object write sent %d updates, want 0", after.Updates-base.Updates)
		}
		base = after
		r.Invoke(w, upd, "inc")
		w.Flush()
		after = r.Stats()
		if got := after.Updates - base.Updates; got != 2 {
			t.Errorf("update-object write sent %d updates, want 2", got)
		}
		if after.Invalidations != base.Invalidations {
			t.Errorf("update-object write sent %d invalidations, want 0", after.Invalidations-base.Invalidations)
		}
	})
	b.run(10 * sim.Second)
	b.done()
}

// TestMixedGuardAcrossSubsystems blocks a consumer on a primary-copy
// queue's guard while broadcast objects carry traffic, then checks the
// enabling write wakes it.
func TestMixedGuardAcrossSubsystems(t *testing.T) {
	b, m := newMixedTB(t, 4, 2, DefaultP2PConfig())
	var q, noise ObjID
	got := 0
	ready := sim.NewCond(b.env)
	b.spawn(0, "creator", func(w *Worker) {
		q = m.CreatePrimaryCopy(w, "queue", Update, SingleCopy)
		noise = m.Create(w, "intcell")
		w.Flush()
		ready.Broadcast()
		// Broadcast traffic while the consumer is blocked, then the
		// enabling put.
		for i := 0; i < 5; i++ {
			m.Invoke(w, noise, "inc")
		}
		w.P.Sleep(100 * sim.Millisecond)
		m.Invoke(w, q, "put", 7)
		w.Flush()
	})
	b.spawn(1, "consumer", func(w *Worker) {
		for q == 0 {
			ready.Wait(w.P)
		}
		got = m.Invoke(w, q, "get")[0].(int) // guard: blocks until the put
		w.Flush()
	})
	b.run(10 * sim.Second)
	b.done()
	if got != 7 {
		t.Fatalf("guarded get through the mixed runtime returned %d, want 7", got)
	}
}
