// Package amoeba models the microkernel of the paper's testbed: one
// kernel instance per processor-pool machine, providing threads,
// segments (memory management), transparent RPC, and the hooks the
// group-communication layer needs.
//
// Each Machine owns one CPU (the testbed machines are single-CPU
// MC68030s) modelled as a sim.Resource. Every frame delivered by the
// network is serviced by the machine's interrupt thread, which charges
// per-fragment interrupt cost plus protocol processing cost to the CPU
// before dispatching to the bound port handler. This per-message CPU
// tax is what bends the speedup curves of update-heavy applications,
// exactly as the paper reports for ACP.
//
// Machines crash whole: Crash kills every thread on the machine and
// takes it off the network, and in-flight RPCs from other machines to
// it fail with ErrCrashed instead of hanging — the primitive the
// runtime systems' crash recovery is built on.
//
// Downward: threads are sim processes and frames travel package
// netsim. Upward: package group speaks the kernel's port interface,
// and the rts runtimes use RPC (Client/Server) and machine threads.
package amoeba
