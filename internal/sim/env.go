package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Event is a scheduled occurrence in virtual time. It is returned by
// At and After so callers can cancel pending events (e.g. protocol
// retransmission timers).
//
// An event resumes a parked process (proc non-nil) or runs a callback
// (fn non-nil). Process-resume events are the scheduler's own and are
// recycled through a free list; callback events are handed to callers
// and never reused, so a retained *Event stays valid to Cancel.
type Event struct {
	t         Time
	seq       int64
	fn        func()
	proc      *Proc // resume this process instead of calling fn
	cancelled bool
	pooled    bool   // internal event, recycled after firing
	index     int    // heap index; -1 while on the ready queue or popped
	next      *Event // free-list link while recycled
}

// Cancel prevents the event from firing. Cancelling an event that has
// already fired (or was already cancelled) is a no-op.
func (ev *Event) Cancel() { ev.cancelled = true }

// Time reports the virtual time at which the event fires.
func (ev *Event) Time() Time { return ev.t }

// before reports whether ev fires before other in the (time, seq)
// total order.
func (ev *Event) before(other *Event) bool {
	if ev.t != other.t {
		return ev.t < other.t
	}
	return ev.seq < other.seq
}

// eventQueue is a min-heap ordered by (time, sequence). The sequence
// number breaks ties deterministically in scheduling order.
type eventQueue []*Event

func (q eventQueue) Len() int           { return len(q) }
func (q eventQueue) Less(i, j int) bool { return q[i].before(q[j]) }
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Env is a discrete-event simulation environment: a virtual clock, an
// event queue, and a set of cooperatively scheduled processes. All
// methods must be called from simulation context (from inside an event
// handler or a process body), except New, Spawn before Run, Run itself,
// and Shutdown after Run returns.
//
// Same-instant events (wakeups, yields, condition broadcasts) go to a
// FIFO ready queue instead of the binary heap: their (time, seq) keys
// are necessarily larger than everything already consumed and appended
// in seq order, so a plain append preserves the total order while
// costing O(1) instead of O(log n). Only future events pay for the
// heap. The dispatch loop merges the two sources by (time, seq), which
// keeps the schedule bit-identical to a single-heap implementation.
type Env struct {
	now       Time
	queue     eventQueue // future events, min-heap on (time, seq)
	ready     []*Event   // same-instant events in seq (FIFO) order
	readyHead int        // index of the next ready event
	seqGen    int64
	free      *Event        // free list of recycled internal events
	done      chan struct{} // chain -> Run/RunUntil completion handoff
	live      map[*Proc]struct{}
	wg        sync.WaitGroup
	rng       *rand.Rand
	stopped   bool
	bounded   bool // RunUntil in progress
	limit     Time // RunUntil bound

	// Trace, when non-nil, receives a line per traced occurrence.
	// It exists for debugging protocol implementations and is nil in
	// normal runs.
	Trace func(t Time, format string, args ...any)

	// stats
	dispatched int64
}

// New creates an environment whose random source is seeded with seed.
// The same seed always yields the same simulation.
func New(seed int64) *Env {
	return &Env{
		done: make(chan struct{}),
		live: make(map[*Proc]struct{}),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Now reports the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic random source.
func (e *Env) Rand() *rand.Rand { return e.rng }

// Events reports the number of events dispatched so far; the engine
// benchmarks use it to compute events/sec.
func (e *Env) Events() int64 { return e.dispatched }

// Tracef emits a trace line if tracing is enabled.
func (e *Env) Tracef(format string, args ...any) {
	if e.Trace != nil {
		e.Trace(e.now, format, args...)
	}
}

// getEvent returns a recycled internal event or a fresh one.
func (e *Env) getEvent() *Event {
	ev := e.free
	if ev == nil {
		return &Event{pooled: true, index: -1}
	}
	e.free = ev.next
	ev.next = nil
	return ev
}

// recycle returns an internal event to the free list. Caller events
// (pooled == false) are left alone: their owner may still Cancel them.
func (e *Env) recycle(ev *Event) {
	if !ev.pooled {
		return
	}
	ev.fn = nil
	ev.proc = nil
	ev.cancelled = false
	ev.next = e.free
	e.free = ev
}

// schedule inserts an event into the ready queue (same instant) or the
// heap (future), assigning its place in the total order.
func (e *Env) schedule(ev *Event, t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (%v < %v)", t, e.now))
	}
	e.seqGen++
	ev.t, ev.seq = t, e.seqGen
	if t == e.now {
		ev.index = -1
		e.ready = append(e.ready, ev)
		return
	}
	heap.Push(&e.queue, ev)
}

// At schedules fn to run at virtual time t. Scheduling in the past
// panics: it would violate causality.
func (e *Env) At(t Time, fn func()) *Event {
	ev := &Event{fn: fn}
	e.schedule(ev, t)
	return ev
}

// After schedules fn to run d from now.
func (e *Env) After(d Time, fn func()) *Event {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.At(e.now+d, fn)
}

// Schedule is At without the cancellation handle: the event comes
// from (and returns to) the scheduler's free list. It is the right
// call for fire-and-forget occurrences on hot paths — network frame
// deliveries, for instance — where nobody retains the event.
func (e *Env) Schedule(t Time, fn func()) {
	ev := e.getEvent()
	ev.fn = fn
	e.schedule(ev, t)
}

// next pops the earliest pending event in (time, seq) order, merging
// the ready queue and the heap. It returns nil when both are empty.
func (e *Env) next() *Event {
	var rv *Event
	if e.readyHead < len(e.ready) {
		rv = e.ready[e.readyHead]
	}
	if len(e.queue) > 0 {
		hv := e.queue[0]
		if rv == nil || hv.before(rv) {
			return heap.Pop(&e.queue).(*Event)
		}
	}
	if rv == nil {
		return nil
	}
	e.ready[e.readyHead] = nil
	e.readyHead++
	if e.readyHead == len(e.ready) {
		e.ready = e.ready[:0]
		e.readyHead = 0
	}
	return rv
}

// advance dispatches events on the calling goroutine until control
// moves elsewhere: the scheduler is not a goroutine of its own but a
// baton passed between simulated processes. A parking (or dying)
// process dispatches onward itself — callback events run inline, and
// a process-resume event is a single direct channel handoff to the
// target's goroutine, half the context switches of a central
// scheduler loop.
//
// For a process caller (self != nil), a true result means the
// process's own resume event came up: it simply keeps running. A
// false result means control went elsewhere — the caller must block
// on its resume channel (or, if dying, exit). When the chain ends
// (drained, stopped, or past the RunUntil bound), the process that
// discovers it signals done to hand control back to Run's caller.
//
// For the run caller (self == nil), a true result means control was
// handed to a process and the caller must wait for done; false means
// the run drained inline without any process becoming runnable.
func (e *Env) advance(self *Proc) bool {
	for !e.stopped {
		if e.bounded {
			if head := e.peekTime(); head == nil || head.t > e.limit {
				if head != nil {
					e.now = e.limit
				}
				break
			}
		}
		ev := e.next()
		if ev == nil {
			break
		}
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		e.now = ev.t
		e.dispatched++
		if ev.proc == nil {
			fn := ev.fn
			e.recycle(ev)
			fn()
			continue
		}
		p := ev.proc
		e.recycle(ev)
		if p == self && !p.terminated && !p.killed {
			return true // our own resume: just keep running
		}
		if p.terminated || p.killed {
			continue
		}
		p.resume <- struct{}{} // direct handoff
		return self == nil
	}
	// The chain ends here. A process goroutine hands control back to
	// the Run caller; the Run caller just returns.
	if self != nil {
		e.done <- struct{}{}
	}
	return false
}

// peekTime reports the earliest pending event without popping.
func (e *Env) peekTime() *Event {
	var rv *Event
	if e.readyHead < len(e.ready) {
		rv = e.ready[e.readyHead]
	}
	if len(e.queue) > 0 {
		hv := e.queue[0]
		if rv == nil || hv.before(rv) {
			return hv
		}
	}
	return rv
}

// Run processes events until the queue is empty or Stop is called.
// It returns the final virtual time. Processes that are still blocked
// when the queue drains are left parked; call Shutdown to reap them
// (Blocked lists them for deadlock diagnosis).
func (e *Env) Run() Time {
	if e.advance(nil) {
		<-e.done
	}
	return e.now
}

// RunUntil processes events until virtual time t is reached, the queue
// empties, or Stop is called.
func (e *Env) RunUntil(t Time) Time {
	e.bounded, e.limit = true, t
	if e.advance(nil) {
		<-e.done
	}
	e.bounded = false
	return e.now
}

// Stop makes Run return after the current event completes.
func (e *Env) Stop() { e.stopped = true }

// Blocked returns the names of processes that are alive but parked,
// sorted for stable output. After Run returns, a non-empty result
// usually means the simulated program deadlocked. Killed processes are
// not listed: they are dead, not deadlocked.
func (e *Env) Blocked() []string {
	var names []string
	for p := range e.live {
		if !p.terminated && !p.killed {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return names
}

// Kill marks a process dead from the current instant: the scheduler
// never resumes it again, and any event that would have woken it is
// discarded when it fires. It models a thread dying with its crashed
// machine, so — unlike a cooperative exit — the process's current
// state (held resources, queued wait entries) is simply abandoned.
// The goroutine itself is reclaimed by Shutdown. Killing the process
// that is currently executing is allowed: it finishes its current
// non-blocking step and is unwound at its next park.
func (e *Env) Kill(p *Proc) {
	if p.terminated || p.killed {
		return
	}
	p.killed = true
}

// LiveProcs reports the number of processes that have been spawned and
// have not yet terminated.
func (e *Env) LiveProcs() int { return len(e.live) }

// Shutdown force-kills all parked processes and waits for their
// goroutines to exit. It must be called only after Run has returned.
func (e *Env) Shutdown() {
	for p := range e.live {
		if !p.terminated {
			p.killed = true
			close(p.resume)
		}
	}
	e.wg.Wait()
	e.live = make(map[*Proc]struct{})
}

// wake schedules p to resume at the current virtual time: an O(1)
// append to the ready queue using a recycled event, no heap traffic
// and no per-wake closure.
func (e *Env) wake(p *Proc) {
	ev := e.getEvent()
	ev.proc = p
	e.seqGen++
	ev.t, ev.seq = e.now, e.seqGen
	e.ready = append(e.ready, ev)
}

// wakeAt schedules p to resume at time t >= now through the scheduler's
// pooled-event path (Sleep, SpawnAt).
func (e *Env) wakeAt(t Time, p *Proc) {
	ev := e.getEvent()
	ev.proc = p
	e.schedule(ev, t)
}
