package orca_test

import (
	"fmt"
	"testing"

	"repro/internal/group"
	"repro/internal/netsim"
	"repro/internal/orca"
	"repro/internal/orca/std"
	"repro/internal/sim"
)

// shardedFenceRun executes a sharded program that mixes cross-shard
// fenced transfers with per-shard traffic while the wire drops
// fragments and one shard's sequencer crashes, and returns an
// outcome fingerprint. With full-span shards and sequencer rotation 0,
// shard k sequences on machine k: crashing machine 1 takes down
// exactly shard 1's sequencer.
func shardedFenceRun(t *testing.T, method group.Method, protocol group.Protocol) string {
	t.Helper()
	const procs, shards, transfers, opsPer = 4, 4, 8, 30
	plan := &netsim.FaultPlan{
		Crashes: []netsim.Crash{{Node: 1, At: 60 * sim.Millisecond}},
		Losses: []netsim.LossWindow{{
			Src: netsim.AnyNode, Dst: netsim.AnyNode,
			From: 10 * sim.Millisecond, Until: 150 * sim.Millisecond, Prob: 0.05,
		}},
	}
	cfg := orca.Config{Processors: procs, RTS: orca.Broadcast, Shards: shards,
		GroupMethod: method, Protocol: protocol, Seed: 33, Faults: plan}
	rt := orca.New(cfg, std.Register)
	finals := make([]int, shards)
	rep := rt.Run(func(p *orca.Proc) {
		counters := make([]orca.Object, shards)
		for k := range counters {
			counters[k] = p.NewWith(std.IntObj, orca.Opts(orca.OnShard(k)))
		}
		done := p.New(std.BarrierObj, 2)
		for _, cpu := range []int{2, 3} {
			cpu := cpu
			p.Fork(cpu, fmt.Sprintf("w%d", cpu), func(wp *orca.Proc) {
				for i := 0; i < opsPer; i++ {
					wp.Invoke(counters[cpu], "inc")
					wp.Work(time1ms)
				}
				wp.Invoke(done, "arrive")
			})
		}
		// Cross-shard fences spanning the crashed shard and a healthy
		// one: each must reserve a slot in both streams even while
		// shard 1 is recovering its sequencer.
		for i := 0; i < transfers; i++ {
			p.InvokeFenced(
				orca.FencedOp{Obj: counters[0], Op: "add", Args: []any{2}},
				orca.FencedOp{Obj: counters[1], Op: "add", Args: []any{3}},
			)
			p.Work(5 * time1ms)
		}
		p.Invoke(done, "wait")
		for k := range counters {
			finals[k] = p.InvokeI(counters[k], "value")
		}
	})
	if rep.TimedOut {
		t.Fatalf("%v/%v: timed out (blocked: %v)", method, protocol, rep.Blocked)
	}
	if finals[0] != 2*transfers || finals[1] != 3*transfers {
		t.Fatalf("%v/%v: fenced counters = %v, want [%d %d ...]",
			method, protocol, finals, 2*transfers, 3*transfers)
	}
	if finals[2] != opsPer || finals[3] != opsPer {
		t.Fatalf("%v/%v: surviving-shard counters = %v, want %d in shards 2,3",
			method, protocol, finals, opsPer)
	}
	if len(rep.Crashes) != 1 || rep.Crashes[0].Node != 1 {
		t.Fatalf("%v/%v: crash record = %+v", method, protocol, rep.Crashes)
	}
	return fmt.Sprintf("finals=%v elapsed=%d msgs=%d frames=%d fenced=%d",
		finals, int64(rep.Elapsed), rep.Net.Messages, rep.Net.Frames, rep.RTS.FencedOps)
}

// TestShardedFenceDeterministicUnderFaults: the cross-shard fence stays
// bit-deterministic under fragment loss plus a one-shard sequencer
// crash, for all three sequencing protocols — two runs of each
// configuration must produce identical outcome fingerprints.
func TestShardedFenceDeterministicUnderFaults(t *testing.T) {
	cases := []struct {
		name     string
		method   group.Method
		protocol group.Protocol
	}{
		{"PB", group.ForcePB, group.ElectedSequencer},
		{"BB", group.ForceBB, group.ElectedSequencer},
		{"Consensus", group.Auto, group.Consensus},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			fp1 := shardedFenceRun(t, tc.method, tc.protocol)
			fp2 := shardedFenceRun(t, tc.method, tc.protocol)
			if fp1 != fp2 {
				t.Fatalf("fence run not deterministic under %s:\n  %s\n  %s", tc.name, fp1, fp2)
			}
		})
	}
}
