package orca_test

import (
	"fmt"
	"testing"

	"repro/internal/netsim"
	"repro/internal/orca"
	"repro/internal/orca/std"
	"repro/internal/sim"
)

func shardedCfg(procs, shards int, seed int64) orca.Config {
	return orca.Config{Processors: procs, RTS: orca.Broadcast, Shards: shards, Seed: seed}
}

func TestShardedCounterProgram(t *testing.T) {
	const procs, shards, opsPer = 8, 4, 25
	rt := orca.New(shardedCfg(procs, shards, 11), std.Register)
	finals := make([]int, procs)
	rep := rt.Run(func(p *orca.Proc) {
		counters := make([]orca.Object, procs)
		for i := range counters {
			counters[i] = p.NewWith(std.IntObj, orca.Opts(orca.Sharded(i)))
		}
		done := p.New(std.BarrierObj, procs)
		for i := 0; i < procs; i++ {
			i := i
			p.Fork(i, fmt.Sprintf("w%d", i), func(wp *orca.Proc) {
				for k := 0; k < opsPer; k++ {
					wp.Invoke(counters[i], "inc")
				}
				wp.Invoke(done, "arrive")
			})
		}
		p.Invoke(done, "wait")
		for i := range counters {
			finals[i] = p.InvokeI(counters[i], "value")
		}
	})
	for i, v := range finals {
		if v != opsPer {
			t.Fatalf("counter %d = %d, want %d", i, v, opsPer)
		}
	}
	if rep.TimedOut {
		t.Fatal("timed out")
	}
	if len(rep.Shards) != shards {
		t.Fatalf("Report.Shards has %d entries, want %d", len(rep.Shards), shards)
	}
	busy, writes := 0, int64(0)
	for _, s := range rep.Shards {
		if s.BcastWrites > 0 {
			busy++
		}
		writes += s.BcastWrites
	}
	if busy < 2 {
		t.Fatalf("only %d shards carried writes; Sharded(i) should spread them", busy)
	}
	if writes != rep.RTS.BcastWrites {
		t.Fatalf("per-shard writes sum %d != merged %d", writes, rep.RTS.BcastWrites)
	}
}

func TestShardedForkSeesPriorWrites(t *testing.T) {
	// A remote fork travels as a barrier fence through every shard, so
	// the child must observe the parent's preceding writes in all of
	// them — including writes to objects in different shards.
	rt := orca.New(shardedCfg(4, 4, 12), std.Register)
	rt.Run(func(p *orca.Proc) {
		a := p.NewWith(std.IntObj, orca.Opts(orca.OnShard(0)))
		b := p.NewWith(std.IntObj, orca.Opts(orca.OnShard(3)))
		fin := p.New(std.FlagObj)
		p.Invoke(a, "add", 7)
		p.Invoke(b, "add", 9)
		p.Fork(2, "child", func(cp *orca.Proc) {
			if got := cp.InvokeI(a, "value"); got != 7 {
				t.Errorf("child read a = %d, want 7", got)
			}
			if got := cp.InvokeI(b, "value"); got != 9 {
				t.Errorf("child read b = %d, want 9", got)
			}
			cp.Invoke(fin, "set", true)
		})
		p.Invoke(fin, "await")
	})
}

func TestInvokeFencedAtomicTransfer(t *testing.T) {
	// Fenced writes on objects in different shards apply as one step
	// while unrelated traffic keeps both sequencers busy.
	const transfers, noise = 10, 40
	rt := orca.New(shardedCfg(4, 2, 13), std.Register)
	rep := rt.Run(func(p *orca.Proc) {
		a := p.NewWith(std.IntObj, orca.Opts(orca.OnShard(0)), 100)
		b := p.NewWith(std.IntObj, orca.Opts(orca.OnShard(1)))
		na := p.NewWith(std.IntObj, orca.Opts(orca.OnShard(0)))
		nb := p.NewWith(std.IntObj, orca.Opts(orca.OnShard(1)))
		done := p.New(std.BarrierObj, 2)
		for i := 1; i <= 2; i++ {
			i := i
			p.Fork(i, fmt.Sprintf("noise%d", i), func(wp *orca.Proc) {
				for k := 0; k < noise; k++ {
					wp.Invoke(na, "inc")
					wp.Invoke(nb, "inc")
				}
				wp.Invoke(done, "arrive")
			})
		}
		for k := 0; k < transfers; k++ {
			p.InvokeFenced(
				orca.FencedOp{Obj: a, Op: "add", Args: []any{-3}},
				orca.FencedOp{Obj: b, Op: "add", Args: []any{3}},
			)
		}
		p.Invoke(done, "wait")
		if got := p.InvokeI(a, "value"); got != 100-3*transfers {
			t.Errorf("a = %d, want %d", got, 100-3*transfers)
		}
		if got := p.InvokeI(b, "value"); got != 3*transfers {
			t.Errorf("b = %d, want %d", got, 3*transfers)
		}
		if got := p.InvokeI(na, "value"); got != 2*noise {
			t.Errorf("na = %d, want %d", got, 2*noise)
		}
	})
	if rep.RTS.FencedOps != 2*transfers {
		t.Fatalf("FencedOps = %d, want %d", rep.RTS.FencedOps, 2*transfers)
	}
}

func TestInvokeFencedRequiresShardedRuntime(t *testing.T) {
	rt := orca.New(orca.Config{Processors: 2, RTS: orca.P2PInvalidate, Seed: 14}, std.Register)
	rt.Run(func(p *orca.Proc) {
		o := p.New(std.IntObj)
		defer func() {
			if recover() == nil {
				t.Error("InvokeFenced on a point-to-point runtime did not panic")
			}
		}()
		p.InvokeFenced(orca.FencedOp{Obj: o, Op: "inc"})
	})
}

func TestShardOptionValidation(t *testing.T) {
	t.Run("OutOfRange", func(t *testing.T) {
		rt := orca.New(shardedCfg(4, 2, 15), std.Register)
		rt.Run(func(p *orca.Proc) {
			defer func() {
				if recover() == nil {
					t.Error("OnShard(2) with 2 shards did not panic")
				}
			}()
			p.NewWith(std.IntObj, orca.Opts(orca.OnShard(2)))
		})
	})
	t.Run("NonShardedRuntime", func(t *testing.T) {
		rt := orca.New(bcastCfg(2, 16), std.Register)
		rt.Run(func(p *orca.Proc) {
			defer func() {
				if recover() == nil {
					t.Error("OnShard on a non-sharded runtime did not panic")
				}
			}()
			p.NewWith(std.IntObj, orca.Opts(orca.OnShard(0)))
		})
	})
}

func TestShardedDomainsForwardAcross(t *testing.T) {
	// ShardSpan 4 over 8 processors: two replication domains. A worker
	// outside an object's domain reaches it through the forwarder RPC.
	const procs, shards = 8, 4
	rt := orca.New(orca.Config{Processors: procs, RTS: orca.Broadcast,
		Shards: shards, ShardSpan: 4, Seed: 17}, std.Register)
	rep := rt.Run(func(p *orca.Proc) {
		// Shard 0 spans machines 0-3; main (cpu 0) may pin to it.
		o := p.NewWith(std.IntObj, orca.Opts(orca.OnShard(0)))
		fin := p.New(std.FlagObj)
		p.Fork(6, "far", func(wp *orca.Proc) {
			wp.Invoke(o, "add", 5) // cpu 6 is outside shard 0's span
			if got := wp.InvokeI(o, "value"); got != 5 {
				t.Errorf("forwarded read = %d, want 5", got)
			}
			wp.Invoke(fin, "set", true)
		})
		p.Invoke(fin, "await")
		if got := p.InvokeI(o, "value"); got != 5 {
			t.Errorf("local read = %d, want 5", got)
		}
	})
	if rep.RTS.Forwarded == 0 {
		t.Fatal("no forwarded operations; cross-domain access should forward")
	}
}

func TestShardedDomainCreateOutsideSpanPanics(t *testing.T) {
	rt := orca.New(orca.Config{Processors: 8, RTS: orca.Broadcast,
		Shards: 4, ShardSpan: 4, Seed: 18}, std.Register)
	rt.Run(func(p *orca.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("OnShard(1) from outside its span did not panic")
			}
		}()
		p.NewWith(std.IntObj, orca.Opts(orca.OnShard(1))) // shard 1 spans 4-7; main is cpu 0
	})
}

func TestShardedBatchingComposes(t *testing.T) {
	const procs, shards, opsPer = 8, 4, 60
	rt := orca.New(orca.Config{Processors: procs, RTS: orca.Broadcast,
		Shards: shards, Batching: orca.DefaultBatching(), Seed: 19}, std.Register)
	rep := rt.Run(func(p *orca.Proc) {
		accs := make([]orca.Object, shards)
		for k := range accs {
			accs[k] = p.NewWith(std.AccumObj, orca.Opts(orca.OnShard(k)))
		}
		done := p.New(std.BarrierObj, procs)
		for i := 0; i < procs; i++ {
			i := i
			p.Fork(i, fmt.Sprintf("w%d", i), func(wp *orca.Proc) {
				for k := 0; k < opsPer; k++ {
					wp.Invoke(accs[i%shards], "add", 1)
				}
				wp.Invoke(done, "arrive")
			})
		}
		p.Invoke(done, "wait")
		for k := range accs {
			if got := wpValue(p, accs[k]); got != 2*opsPer {
				t.Errorf("acc %d = %d, want %d", k, got, 2*opsPer)
			}
		}
	})
	if rep.RTS.BatchedOps == 0 || rep.RTS.Frames == 0 {
		t.Fatalf("batching counters empty: %+v", rep.RTS)
	}
	if rep.RTS.Frames >= rep.RTS.BatchedOps {
		t.Fatalf("no amortization: %d frames for %d batched ops", rep.RTS.Frames, rep.RTS.BatchedOps)
	}
}

func wpValue(p *orca.Proc, o orca.Object) int {
	return p.InvokeI(o, "value")
}

func TestShardedDeterministicRuns(t *testing.T) {
	run := func() (sim.Time, int64) {
		rt := orca.New(shardedCfg(8, 4, 20), std.Register)
		rep := rt.Run(func(p *orca.Proc) {
			counters := make([]orca.Object, 6)
			for i := range counters {
				counters[i] = p.New(std.IntObj)
			}
			done := p.New(std.BarrierObj, 8)
			for i := 0; i < 8; i++ {
				i := i
				p.Fork(i, fmt.Sprintf("w%d", i), func(wp *orca.Proc) {
					for k := 0; k < 20; k++ {
						wp.Invoke(counters[(i+k)%len(counters)], "inc")
					}
					wp.Invoke(done, "arrive")
				})
			}
			p.Invoke(done, "wait")
		})
		return rep.Elapsed, rep.RTS.BcastWrites
	}
	e1, w1 := run()
	e2, w2 := run()
	if e1 != e2 || w1 != w2 {
		t.Fatalf("runs diverged: (%v, %d) vs (%v, %d)", e1, w1, e2, w2)
	}
}

func TestShardedCrashOneShardOthersAdvance(t *testing.T) {
	// Full-span shards with sequencer rotation: shard k's sequencer is
	// machine k. Crashing machine 1 takes down exactly shard 1's
	// sequencer; the other shards' groups recover their dead member
	// while their sequencers keep ordering.
	const procs, shards = 4, 4
	plan := &netsim.FaultPlan{Crashes: []netsim.Crash{{Node: 1, At: 40 * sim.Millisecond}}}
	rt := orca.New(orca.Config{Processors: procs, RTS: orca.Broadcast,
		Shards: shards, Seed: 21, Faults: plan}, std.Register)
	finals := make([]int, shards)
	rep := rt.Run(func(p *orca.Proc) {
		counters := make([]orca.Object, shards)
		for k := range counters {
			counters[k] = p.NewWith(std.IntObj, orca.Opts(orca.OnShard(k)))
		}
		done := p.New(std.BarrierObj, 2)
		for _, cpu := range []int{2, 3} {
			cpu := cpu
			p.Fork(cpu, fmt.Sprintf("w%d", cpu), func(wp *orca.Proc) {
				for k := 0; k < 40; k++ {
					wp.Invoke(counters[cpu], "inc")
					wp.Work(2 * sim.Millisecond)
				}
				wp.Invoke(done, "arrive")
			})
		}
		p.Invoke(done, "wait")
		for k := range counters {
			finals[k] = p.InvokeI(counters[k], "value")
		}
	})
	if rep.TimedOut {
		t.Fatalf("timed out; blocked: %v", rep.Blocked)
	}
	if len(rep.Crashes) != 1 || rep.Crashes[0].Node != 1 {
		t.Fatalf("crash record = %+v, want node 1", rep.Crashes)
	}
	if finals[2] != 40 || finals[3] != 40 {
		t.Fatalf("surviving-shard counters = %v, want 40s in shards 2,3", finals)
	}
}
