package kv

import (
	"fmt"
	"sort"

	"repro/internal/orca"
	"repro/internal/orca/std"
	"repro/internal/rts"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ShardObj is the registered type name of one store shard.
const ShardObj = "kv.shard"

// entry is one key's stored record: the value and a version that
// increments on every write. Versions make acknowledged writes
// auditable: a put's returned version is its durability receipt, and
// a later read of the key must see at least that version or shard
// state was lost.
type entry struct {
	val int64
	ver int64
}

// shardState is one shard: a small map of keys. Many shards, each a
// small object, is the store's shape — placement is decided per
// shard, so the same traffic can run fully replicated, primary-copy,
// or mixed.
type shardState struct {
	m map[int64]entry
}

// WireSize implements rts.Sized.
func (s *shardState) WireSize() int { return 16 + 24*len(s.m) }

var (
	shardB = orca.NewType(ShardObj, func([]any) *shardState {
		return &shardState{m: make(map[int64]entry)}
	}).
		CloneWith(func(s *shardState) *shardState {
			c := &shardState{m: make(map[int64]entry, len(s.m))}
			for k, v := range s.m {
				c.m[k] = v
			}
			return c
		}).
		SizedBy((*shardState).WireSize)

	// get reads one key: (value, version), (0, 0) when absent.
	shardGet = orca.DefRead1x2(shardB, "get", func(s *shardState, key int64) (int64, int64) {
		e := s.m[key]
		return e.val, e.ver
	})
	// put overwrites a key and returns (new version, previous
	// existence) — the version is the caller's durability receipt.
	shardPut = orca.DefWrite2x2(shardB, "put", func(s *shardState, key, val int64) (int64, bool) {
		e, had := s.m[key]
		e.val = val
		e.ver++
		s.m[key] = e
		return e.ver, had
	})
	// bump is the read-modify-write session update: add delta to the
	// stored value indivisibly, returning (new value, new version).
	shardBump = orca.DefWrite2x2(shardB, "bump", func(s *shardState, key, delta int64) (int64, int64) {
		e := s.m[key]
		e.val += delta
		e.ver++
		s.m[key] = e
		return e.val, e.ver
	})
	// size reads the shard's key count.
	shardSize = orca.DefRead0(shardB, "size", func(s *shardState) int { return len(s.m) })
)

// Shard is a typed handle to one store shard.
type Shard struct{ h orca.Handle[*shardState] }

// NewShard creates a shard under the given placement options.
func NewShard(p *orca.Proc, opts ...orca.Option) Shard {
	return Shard{h: shardB.NewWith(p, opts)}
}

// Handle exposes the typed handle (for statistics).
func (s Shard) Handle() orca.Handle[*shardState] { return s.h }

// Get reads key: (value, version), version 0 when absent.
func (s Shard) Get(p *orca.Proc, key int64) (int64, int64) { return shardGet.Call(p, s.h, key) }

// Put overwrites key with val and returns the new version.
func (s Shard) Put(p *orca.Proc, key, val int64) int64 {
	ver, _ := shardPut.Call(p, s.h, key, val)
	return ver
}

// Bump adds delta to key's value indivisibly, returning the new
// value and version.
func (s Shard) Bump(p *orca.Proc, key, delta int64) (int64, int64) {
	return shardBump.Call(p, s.h, key, delta)
}

// Size reads the shard's key count.
func (s Shard) Size(p *orca.Proc) int { return shardSize.Call(p, s.h) }

// Register adds the kv types on top of the std registrations.
func Register(reg *rts.Registry) {
	std.Register(reg)
	shardB.Register(reg)
}

// Policy selects the per-shard placement strategy.
type Policy int

const (
	// PolicyReplicated replicates every shard on every machine:
	// local reads, writes through the total order (§3.2.1).
	PolicyReplicated Policy = iota
	// PolicyPrimary keeps each shard as a single primary copy on its
	// home machine under the point-to-point update protocol: cheap
	// writes at the home, remote reads RPC to it (§3.2.2). Requires
	// Config.Mixed (or a point-to-point RTS default).
	PolicyPrimary
	// PolicyMixed alternates: even shards replicated, odd shards
	// primary-copy — both strategies side by side on one trace.
	// Requires Config.Mixed.
	PolicyMixed
	// PolicyAdaptive puts every shard under the online placement
	// controller: shards start replicated and re-place themselves
	// (primary copy at the dominant writer, back to replicated, primary
	// re-homing) as the observed traffic warrants. Requires
	// Config.Mixed.
	PolicyAdaptive
)

// String names the policy for tables.
func (pl Policy) String() string {
	switch pl {
	case PolicyReplicated:
		return "replicated"
	case PolicyPrimary:
		return "primary"
	case PolicyMixed:
		return "mixed"
	case PolicyAdaptive:
		return "adaptive"
	}
	return fmt.Sprintf("Policy(%d)", int(pl))
}

// Params configures one store run.
type Params struct {
	// Shards is the shard-object count (default 2 per processor).
	// Shard s is homed on machine s mod P: its primary copy (under
	// PolicyPrimary) lives there.
	Shards int
	// Policy is the per-shard placement strategy.
	Policy Policy
	// Clients is the client-process count (default one per
	// processor); client c runs on machine c mod P.
	Clients int
	// SequencerShards, when positive, splits the broadcast total
	// order across that many independent sequencer groups (it sets
	// Config.Shards) and stripes store shard s onto group s mod
	// SequencerShards, so writes to different store shards sequence
	// concurrently. Requires PolicyReplicated on a pure broadcast
	// Config (not Mixed): sequencer sharding is a broadcast-runtime
	// structure.
	SequencerShards int
	// Adapt parameterizes the placement controller under
	// PolicyAdaptive; the zero value selects the defaults.
	Adapt rts.AdaptConfig
	// AffineKeys maps keys to shards in contiguous blocks (shard =
	// key * Shards / Keys) instead of the multiplicative hash, so a
	// workload partition block (workload.Config.Partitions) aligns
	// with a shard and its home machine — the input shape where
	// per-shard placement and re-homing matter.
	AffineKeys bool
	// PhaseWarmup excludes open-loop operations arriving within this
	// duration of a phase's start from the per-phase latency
	// percentiles (PhaseP50US/PhaseP99US) — the steady-state view,
	// applied to every policy equally. PhaseOps and PhaseThroughput
	// still count every operation. Zero keeps every sample.
	PhaseWarmup sim.Time
	// Workload describes the aggregate traffic: Rate and Ops are
	// split evenly across clients, each client drawing from its own
	// seeded generator (Seed xor a per-client salt). When
	// Workload.Partitions > 1, each client's Partition is set to its
	// machine id modulo Partitions, so traffic affinity follows
	// machine placement.
	Workload workload.Config
}

// Result of one store run.
type Result struct {
	// Ops counts completed operations by class.
	Ops, Gets, Puts, Updates int64
	// AckedPuts counts writes whose ack (returned version) the
	// issuing client recorded before the run ended.
	AckedPuts int64
	// LostAcked counts acknowledged writes the post-run audit could
	// not find (stored version below the acked version) — zero
	// unless shard state was genuinely lost (e.g. a primary-copy
	// shard whose only copy crashed).
	LostAcked int
	// Throughput is completed ops per virtual second of serving time
	// (first arrival to last completion).
	Throughput float64
	// Report is the run report; Report.Latency carries the kv.get /
	// kv.put / kv.update / kv.all histograms.
	Report orca.Report
	// Runtime gives the harness access to post-run statistics.
	Runtime *orca.Runtime

	// Per-phase accounting of a phase-shift trace (everything lands in
	// phase 0 when the workload has no shift). Kept out of the run's
	// histograms on purpose: it is computed from host memory after the
	// fact, so enabling it changes no simulated event.
	PhaseOps [2]int64
	// PhaseThroughput is completed ops per virtual second within each
	// phase's serving interval.
	PhaseThroughput [2]float64
	// PhaseP50US / PhaseP99US are completion-latency percentiles
	// within each phase, in virtual microseconds.
	PhaseP50US [2]float64
	PhaseP99US [2]float64
}

// shardOf maps a key to its shard with a multiplicative hash, so the
// Zipf-hot low keys spread across shards (each shard still gets hot
// keys — the hottest single key makes its shard the hot spot, which
// is the serving behavior under test).
func shardOf(key int64, shards int) int {
	h := (uint64(key) + 1) * 0x9E3779B97F4A7C15
	return int((h >> 17) % uint64(shards))
}

// shardOfAffine maps keys to shards in contiguous blocks: shard s owns
// keys [s*Keys/Shards, (s+1)*Keys/Shards). With a partitioned affinity
// workload this aligns key block, shard, and home machine.
func shardOfAffine(key, keys int64, shards int) int {
	s := int(key * int64(shards) / keys)
	if s >= shards {
		s = shards - 1
	}
	return s
}

// shardOpts resolves one shard's creation options under the policy.
// seqShards > 0 stripes store shard s onto sequencer group s mod
// seqShards (the Sharded option applies the modulus).
func shardOpts(pl Policy, s, seqShards int, adapt rts.AdaptConfig) []orca.Option {
	if pl == PolicyMixed {
		if s%2 == 0 {
			pl = PolicyReplicated
		} else {
			pl = PolicyPrimary
		}
	}
	if pl == PolicyAdaptive {
		return orca.Opts(orca.With(orca.Adaptive(adapt)))
	}
	if pl == PolicyPrimary {
		return orca.Opts(orca.With(orca.PrimaryCopy{
			Protocol: orca.Update, Placement: orca.SingleCopy,
		}))
	}
	opts := orca.Opts(orca.With(orca.Replicated))
	if seqShards > 1 {
		opts = append(opts, orca.Sharded(s))
	}
	return opts
}

// supervisePollInterval is how often the supervisor checks client
// liveness, mirroring the fault-tolerant solvers: liveness is not a
// shared object, so the supervisor polls crash reports in virtual
// time.
const supervisePollInterval = 25 * sim.Millisecond

// Run executes the store: shards are created on their home machines,
// clients serve their trace slices, a supervisor on processor 0
// waits for every client to finish or die, and the audit then checks
// every acknowledged write. Crash schedules must not take machine 0
// (the supervisor's home, as with the fault-tolerant solvers).
func Run(cfg orca.Config, params Params) Result {
	if params.Shards == 0 {
		params.Shards = 2 * cfg.Processors
	}
	if params.Clients == 0 {
		params.Clients = cfg.Processors
	}
	if params.Workload.Keys <= 0 {
		panic("kv: Params.Workload.Keys must be positive")
	}
	if params.SequencerShards > 0 {
		if params.Policy != PolicyReplicated {
			panic("kv: SequencerShards requires PolicyReplicated (sequencer sharding is a broadcast-runtime structure)")
		}
		if cfg.RTS != orca.Broadcast || cfg.Mixed {
			panic("kv: SequencerShards requires a pure broadcast Config (RTS: Broadcast, not Mixed)")
		}
		cfg.Shards = params.SequencerShards
	}
	if params.Policy == PolicyAdaptive && !cfg.Mixed {
		panic("kv: PolicyAdaptive requires Config.Mixed (the controller migrates shards between subsystems)")
	}
	rt := orca.New(cfg, Register)
	res := Result{}
	rep := rt.Run(func(p *orca.Proc) {
		P := cfg.Processors
		nShards, nClients := params.Shards, params.Clients
		shardFor := func(key int64) int { return shardOf(key, nShards) }
		if params.AffineKeys {
			keys := params.Workload.Keys
			shardFor = func(key int64) int { return shardOfAffine(key, keys, nShards) }
		}

		// Create shards from their home machines, so a primary copy
		// lives where the shard is homed. The handles travel through
		// host memory (the simulation shares an address space); the
		// barrier orders every creation before the first client op.
		shards := make([]Shard, nShards)
		creators := P
		if nShards < P {
			creators = nShards
		}
		ready := std.NewBarrier(p, creators)
		for home := 0; home < creators; home++ {
			home := home
			p.Fork(home, fmt.Sprintf("kv-place%d", home), func(cp *orca.Proc) {
				for s := home; s < nShards; s += P {
					shards[s] = NewShard(cp, shardOpts(params.Policy, s, params.SequencerShards, params.Adapt)...)
				}
				ready.Arrive(cp)
			})
		}
		ready.Wait(p)

		// Clients. Each records completion latencies into the shared
		// histograms and its acknowledged puts into host memory; a
		// client killed by a machine crash simply stops, leaving its
		// acked map at the last write it saw complete.
		histGet := p.Histogram("kv.get")
		histPut := p.Histogram("kv.put")
		histUpd := p.Histogram("kv.update")
		histAll := p.Histogram("kv.all")
		exited := std.NewBoolArray(p, nClients, false)
		acked := make([]map[int64]int64, nClients) // key -> acked version
		ackN := make([]int64, nClients)            // acks received (one per put)
		counts := make([][3]int64, nClients)       // gets, puts, updates
		var firstAt, lastDone sim.Time
		// Per-phase accounting, all in host memory: completion
		// latencies and serving intervals split at the workload's
		// phase shift (everything in phase 0 without one).
		var phaseLat [2][]sim.Time
		var phaseOps [2]int64
		var phaseFirst, phaseLast [2]sim.Time
		perRate := params.Workload.Rate / float64(nClients)
		perOps := params.Workload.Ops / nClients
		for c := 0; c < nClients; c++ {
			c := c
			acked[c] = make(map[int64]int64)
			wcfg := params.Workload
			wcfg.Rate = perRate
			wcfg.Ops = perOps
			wcfg.Seed = params.Workload.Seed ^ int64(c+1)*0x5DEECE66D
			if wcfg.Partitions > 1 {
				wcfg.Partition = (c % P) % wcfg.Partitions
			}
			p.Fork(c%P, fmt.Sprintf("kv-client%d", c), func(cp *orca.Proc) {
				g := workload.New(wcfg)
				// Trace arrival times count from the client's own
				// start instant (the store is up, serving begins).
				base := cp.Now()
				emitted := 0
				for {
					op, ok := g.Next()
					if !ok {
						break
					}
					// Which phase of a shift trace this op falls in,
					// mirroring the generator's own cut.
					ph := 0
					if wcfg.ShiftFrac > 0 && wcfg.ShiftFrac < 1 {
						if wcfg.Rate > 0 {
							if float64(op.At) >= wcfg.ShiftFrac*float64(wcfg.Duration) {
								ph = 1
							}
						} else if float64(emitted) >= wcfg.ShiftFrac*float64(wcfg.Ops) {
							ph = 1
						}
					}
					emitted++
					start := cp.Now()
					if op.At > 0 {
						// Open loop: wait for the arrival instant; a
						// busy client that is already past it issues
						// immediately and the latency includes the
						// backlog (no coordinated omission).
						at := base + op.At
						if at > start {
							cp.Sleep(at - start)
						}
						start = at
					}
					sh := shards[shardFor(op.Key)]
					switch op.Kind {
					case workload.Get:
						sh.Get(cp, op.Key)
						counts[c][0]++
					case workload.Put:
						val := int64(c+1)<<32 | (counts[c][1] + 1)
						ver := sh.Put(cp, op.Key, val)
						acked[c][op.Key] = ver
						ackN[c]++
						counts[c][1]++
					case workload.Update:
						sh.Bump(cp, op.Key, 1)
						counts[c][2]++
					}
					end := cp.Now()
					d := end - start
					switch op.Kind {
					case workload.Get:
						histGet.Record(d)
					case workload.Put:
						histPut.Record(d)
					case workload.Update:
						histUpd.Record(d)
					}
					histAll.Record(d)
					phaseStart := sim.Time(0)
					if ph == 1 {
						phaseStart = sim.Time(wcfg.ShiftFrac * float64(wcfg.Duration))
					}
					if op.At == 0 || op.At >= phaseStart+params.PhaseWarmup {
						phaseLat[ph] = append(phaseLat[ph], d)
					}
					phaseOps[ph]++
					if phaseFirst[ph] == 0 || start < phaseFirst[ph] {
						phaseFirst[ph] = start
					}
					if end > phaseLast[ph] {
						phaseLast[ph] = end
					}
					if firstAt == 0 || start < firstAt {
						firstAt = start
					}
					if end > lastDone {
						lastDone = end
					}
					if op.At == 0 && wcfg.Think > 0 {
						cp.Sleep(wcfg.Think)
					}
				}
				exited.Set(cp, c, true)
			})
		}

		// Supervisor: a client is settled once it has exited or its
		// machine is down.
		for {
			settled := true
			for c := 0; c < nClients; c++ {
				if !exited.Get(p, c) && !p.NodeDown(c%P) {
					settled = false
					break
				}
			}
			if settled {
				break
			}
			p.Sleep(supervisePollInterval)
		}

		// Audit: every acknowledged write must still be visible at
		// (at least) its acked version — including writes acked to
		// clients that died afterwards. Keys are audited in sorted
		// order so the audit's own op sequence is deterministic.
		worst := make(map[int64]int64)
		for c := 0; c < nClients; c++ {
			for k, v := range acked[c] {
				if v > worst[k] {
					worst[k] = v
				}
			}
		}
		keys := make([]int64, 0, len(worst))
		for k := range worst {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			_, ver := shards[shardFor(k)].Get(p, k)
			if ver < worst[k] {
				res.LostAcked++
			}
		}
		for c := 0; c < nClients; c++ {
			res.AckedPuts += ackN[c]
			res.Gets += counts[c][0]
			res.Puts += counts[c][1]
			res.Updates += counts[c][2]
		}
		res.Ops = res.Gets + res.Puts + res.Updates
		if lastDone > firstAt {
			res.Throughput = float64(res.Ops) / (lastDone - firstAt).Seconds()
		}
		for ph := 0; ph < 2; ph++ {
			lats := phaseLat[ph]
			res.PhaseOps[ph] = phaseOps[ph]
			if phaseLast[ph] > phaseFirst[ph] {
				res.PhaseThroughput[ph] = float64(phaseOps[ph]) / (phaseLast[ph] - phaseFirst[ph]).Seconds()
			}
			if len(lats) == 0 {
				continue
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			res.PhaseP50US[ph] = float64(lats[(len(lats)-1)*50/100]) / float64(sim.Microsecond)
			res.PhaseP99US[ph] = float64(lats[(len(lats)-1)*99/100]) / float64(sim.Microsecond)
		}
	})
	res.Report = rep
	res.Runtime = rt
	return res
}
