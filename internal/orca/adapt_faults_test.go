package orca_test

// Migration fault matrix: machines crash while adaptive objects are
// migrating, in both directions, under every sequencing protocol. The
// invariants are the ones the migration protocol promises in the face
// of crashes: the run always terminates (no waiter is stranded on a
// dead placement), the object stays usable from surviving machines
// (recovery re-homes, restores the migration snapshot, or re-broadcasts
// a stranded moveout as needed), and the whole schedule — crash
// included — is bit-deterministic across double runs.

import (
	"fmt"
	"testing"

	"repro/internal/group"
	"repro/internal/netsim"
	"repro/internal/orca"
	"repro/internal/orca/std"
	"repro/internal/rts"
	"repro/internal/sim"
)

// adaptCrashRun drives one adaptive object through a migration while a
// fault plan kills the machine at the center of it, and returns an
// outcome fingerprint plus the final counter value read by a survivor.
//
// Scenario "to-primary": node 1 is the dominant writer; the controller
// migrates the object broadcast->primary@1, and node 1 — migration
// initiator AND new primary — dies at crashAt. Depending on crashAt the
// crash lands before the decision, around the sequenced migrate record
// (the target-dead abort path), or after the install (the
// snapshot-recovery path in rehome).
//
// Scenario "moveout": node 2 writes the object into primary@2, then
// nodes 1 and 3 turn read-heavy; the controller starts a moveout back
// to the broadcast runtime, driven by node 2's object thread, and node
// 2 — old primary and moveout driver — dies at crashAt. The crash can
// land while the object is still primary@2 (primary-crash recovery
// from the frozen migration snapshot) or mid-moveout (the awaitFlip
// re-broadcast rescue).
func adaptCrashRun(t *testing.T, method group.Method, protocol group.Protocol,
	scenario string, readerDelay, crashAt sim.Time) (string, int) {
	t.Helper()
	const procs = 4
	crashNode := 1
	if scenario == "moveout" {
		crashNode = 2
	}
	plan := &netsim.FaultPlan{Crashes: []netsim.Crash{{Node: crashNode, At: crashAt}}}
	cfg := orca.Config{Processors: procs, RTS: orca.Broadcast, Mixed: true,
		GroupMethod: method, Protocol: protocol, Seed: 11, Faults: plan}
	rt := orca.New(cfg, std.Register)
	adapt := orca.Opts(orca.With(orca.Adaptive(
		rts.AdaptConfig{SampleEvery: 8, MinDwell: sim.Millisecond})))
	final := -1
	rep := rt.Run(func(p *orca.Proc) {
		obj := p.NewWith(std.IntObj, adapt, 0)
		exited := std.NewCounter(p, 0)
		writes := 60
		if scenario == "moveout" {
			writes = 24
		}
		p.Fork(crashNode, "writer", func(wp *orca.Proc) {
			for i := 0; i < writes; i++ {
				wp.Invoke(obj, "inc")
				wp.Work(200 * sim.Microsecond)
			}
			exited.Add(wp, 1)
		})
		for _, cpu := range []int{1, 2, 3} {
			if cpu == crashNode {
				continue
			}
			cpu := cpu
			p.Fork(cpu, "reader", func(rp *orca.Proc) {
				rp.Sleep(readerDelay)
				// "to-primary" readers pace slowly so the windows stay
				// write-dominated; "moveout" readers hammer so the EWMA
				// write fraction decays below the to-replicated bar.
				pace, reads := 4*sim.Millisecond, 25
				if scenario == "moveout" {
					pace, reads = 150*sim.Microsecond, 40
				}
				for i := 0; i < reads; i++ {
					rp.InvokeI(obj, "value")
					rp.Work(pace)
				}
				exited.Add(rp, 1)
			})
		}
		// The two readers always survive; the writer's machine dies at
		// crashAt (late crash times may let it finish first).
		for exited.Value(p) < 2 {
			p.Sleep(sim.Millisecond)
		}
		// Post-crash usability: the object must accept writes and serve
		// reads from a surviving machine whatever migration phase the
		// crash interrupted.
		for i := 0; i < 5; i++ {
			p.Invoke(obj, "inc")
		}
		final = p.InvokeI(obj, "value")
	})
	if rep.TimedOut {
		t.Fatalf("%s/%v/%v crash@%v: timed out (blocked: %v)",
			scenario, method, protocol, crashAt, rep.Blocked)
	}
	if len(rep.Crashes) != 1 || rep.Crashes[0].Node != crashNode {
		t.Fatalf("%s/%v/%v crash@%v: crash record = %+v",
			scenario, method, protocol, crashAt, rep.Crashes)
	}
	var placement string
	for _, pl := range rep.Placements {
		placement = pl
	}
	return fmt.Sprintf("final=%d elapsed=%d msgs=%d mig=%d migus=%.0f place=%s",
		final, int64(rep.Elapsed), rep.Net.Messages, rep.RTS.Migrations,
		rep.RTS.MigrationVirtualUS, placement), final
}

func TestAdaptMigrationFaultMatrix(t *testing.T) {
	type timing struct {
		readerDelay sim.Time
		crash       []sim.Time
	}
	protocols := []struct {
		name     string
		method   group.Method
		protocol group.Protocol
		// Migration instants differ per protocol (consensus sequencing
		// is ~4x slower than an elected sequencer), so each protocol
		// pins its own crash times straddling the measured cut points.
		toPrimary timing
		moveout   timing
	}{
		// Measured healthy-run instants (Seed 11): the to-primary cut
		// fires at ~8.1ms (PB), ~8.4ms (BB), ~29.6ms (Consensus); the
		// moveout scenario's to-primary@2 lands at ~11ms (PB/BB) /
		// ~54ms (Consensus) and its moveout at ~39.3ms (PB/BB) /
		// ~100.4ms (Consensus). Crash times straddle those: before the
		// migration, inside the record's flight, and well after.
		{"PB", group.ForcePB, group.ElectedSequencer,
			timing{2 * sim.Millisecond, []sim.Time{5 * sim.Millisecond, 8200 * sim.Microsecond, 15 * sim.Millisecond}},
			timing{20 * sim.Millisecond, []sim.Time{20 * sim.Millisecond, 39700 * sim.Microsecond, 44 * sim.Millisecond}}},
		{"BB", group.ForceBB, group.ElectedSequencer,
			timing{2 * sim.Millisecond, []sim.Time{5 * sim.Millisecond, 8450 * sim.Microsecond, 15 * sim.Millisecond}},
			timing{20 * sim.Millisecond, []sim.Time{20 * sim.Millisecond, 39700 * sim.Microsecond, 44 * sim.Millisecond}}},
		{"Consensus", group.Auto, group.Consensus,
			timing{8 * sim.Millisecond, []sim.Time{20 * sim.Millisecond, 30500 * sim.Microsecond, 45 * sim.Millisecond}},
			timing{70 * sim.Millisecond, []sim.Time{80 * sim.Millisecond, 101 * sim.Millisecond, 130 * sim.Millisecond}}},
	}
	for _, pr := range protocols {
		for _, sc := range []struct {
			name   string
			tm     timing
			writes int
		}{
			{"to-primary", pr.toPrimary, 60},
			{"moveout", pr.moveout, 24},
		} {
			for _, at := range sc.tm.crash {
				at, sc, pr := at, sc, pr
				t.Run(fmt.Sprintf("%s/%s/%v", sc.name, pr.name, at), func(t *testing.T) {
					fp1, final := adaptCrashRun(t, pr.method, pr.protocol, sc.name, sc.tm.readerDelay, at)
					fp2, _ := adaptCrashRun(t, pr.method, pr.protocol, sc.name, sc.tm.readerDelay, at)
					if fp1 != fp2 {
						t.Fatalf("not deterministic:\n  %s\n  %s", fp1, fp2)
					}
					t.Logf("%s", fp1)
					// The 5 supervisor writes always land after the crash
					// settles; the writer contributes at most its full count.
					if final < 5 || final > sc.writes+5 {
						t.Fatalf("final value %d out of range [5, %d]", final, sc.writes+5)
					}
				})
			}
		}
	}
}
