// TSP example: the paper's flagship application. A replicated-worker
// branch-and-bound solver where the global bound object is read
// millions of times (locally, thanks to replication) and written only
// when a better route is found.
package main

import (
	"fmt"

	"repro/internal/apps/tsp"
	"repro/internal/orca"
)

func main() {
	inst := tsp.Generate(13, 5)
	fmt.Printf("TSP: %d cities (seed 5)\n", inst.N)

	opt, nodes := tsp.SolveSeq(inst)
	fmt.Printf("sequential optimum: %d (%d nodes expanded)\n\n", opt, nodes)

	var t1 float64
	for _, procs := range []int{1, 4, 8} {
		res := tsp.RunOrca(orca.Config{
			Processors: procs,
			RTS:        orca.Broadcast,
			Seed:       1,
		}, inst, tsp.Params{})
		sp := 1.0
		if procs == 1 {
			t1 = res.Report.Elapsed.Seconds()
		} else {
			sp = t1 / res.Report.Elapsed.Seconds()
		}
		fmt.Printf("%2d processors: tour %d, %v virtual, speedup %.2f, %d messages\n",
			procs, res.Best, res.Report.Elapsed, sp, res.Report.Net.Messages)
		if res.Best != opt {
			panic("parallel solver missed the optimum")
		}
	}
	fmt.Println("\nthe bound object's read/write ratio is why replication wins here")
}
