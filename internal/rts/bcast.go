package rts

import (
	"fmt"

	"repro/internal/amoeba"
	"repro/internal/group"
	"repro/internal/sim"
)

// BroadcastRTS is the paper's §3.2.1 runtime system, used when the
// network supports (reliable, totally-ordered) broadcasting. Every
// object is replicated on all machines. Reads are performed directly
// on the local replica, bypassing the object manager. Writes ship the
// operation code and parameters through the group layer; every
// machine's object manager applies incoming writes in strict sequence
// order, which enforces sequential consistency.
//
// Guarded writes whose guard is false at their position in the total
// order are queued and deterministically retried after each subsequent
// write — identically on every replica, so replicas never diverge.
type BroadcastRTS struct {
	reg   *Registry
	costs Costs
	mgrs  []*bcastManager
	ids   *idAlloc

	// span lists the global node ids hosting a manager (ascending), and
	// mgrAt maps a global node id to its index in mgrs (-1 outside the
	// span). A standalone runtime spans every machine and the mapping is
	// the identity; under a ShardedRTS each sequencer group may span a
	// subset (its replication domain), and machines outside it reach the
	// shard through the forwarder RPC (see ShardedRTS).
	span  []int
	mgrAt []int

	// fwdPort is the RPC port serving forwarded operations — distinct
	// per co-hosted shard, since Bind panics on a duplicate.
	fwdPort string

	// fence, when set by a ShardedRTS, handles cross-shard fence
	// messages appearing in this shard's delivery stream.
	fence func(p *sim.Proc, mgr *bcastManager, d group.Delivery, f wireFence)

	// migrate, when set by a MixedRTS hosting adaptive objects,
	// handles sequenced migration records — the cut points of online
	// placement changes (see adapt.go).
	migrate func(p *sim.Proc, mgr *bcastManager, uid int64, src int, wm wireMigrate)

	// unbatched lists objects excluded from the write-combining
	// pipeline. Adaptive objects live here: a combined write parked in
	// a worker's buffer across a migration cut would be dropped by the
	// moved replica.
	unbatched map[ObjID]bool

	// batch, when enabled, turns on the write-combining pipeline (see
	// EnableBatching and batch.go).
	batch group.BatchConfig

	// placements maps partially replicated objects to their replica
	// machines; absent means replicated everywhere (see CreateOn).
	placements map[ObjID][]int

	// down marks machines the runtime was told have crashed (see
	// NodeCrashed); forwarded operations route around them.
	down map[int]bool

	// Stats
	localReads  int64
	guardWaits  int64
	bcastWrites int64
	forwarded   int64
	crashes     int64
	opsRetried  int64
	batchedOps  int64
	batchFrames int64
}

// System is the interface shared by the runtime systems; the Orca
// layer programs against it.
type System interface {
	// Create instantiates a shared object of a registered type and
	// returns its id. It blocks until the creating machine can use
	// the object.
	Create(w *Worker, typeName string, args ...any) ObjID
	// Invoke performs an operation on a shared object with the
	// sequential-consistency and indivisibility guarantees of the
	// shared data-object model. It blocks for guards, locks, and
	// write completion. A local read's result slice may alias a
	// per-worker scratch buffer: it is valid until the worker's next
	// operation, and callers that retain results must copy them.
	Invoke(w *Worker, id ObjID, op string, args ...any) []any
	// Nodes reports the machine count.
	Nodes() int
	// PeekState returns a machine's current replica state (nil if the
	// machine holds no copy). It is an inspection hook for tests and
	// experiment harnesses, not part of the programming model.
	PeekState(node int, id ObjID) (State, bool)
}

var _ System = (*BroadcastRTS)(nil)

// LocalReader is an optional System capability: a runtime that can
// serve an unguarded read directly from a local replica exposes the
// replica state (after charging exactly what the Invoke read path
// would), letting typed callers bypass the []any wire encoding. The
// state must be treated as read-only and not retained.
type LocalReader interface {
	LocalReadState(w *Worker, id ObjID, op *OpDef) (State, bool)
}

var _ LocalReader = (*BroadcastRTS)(nil)

// Wire bodies for the group stream.
type (
	wireCreate struct {
		Obj  ObjID
		Type string
		Args []any
	}
	wireOp struct {
		Obj  ObjID
		Op   string
		Args []any
	}
	// wireMigrate is a sequenced placement change: the delivery
	// position is the migration's cut point. Target is the new primary
	// machine, or -1 when the object migrates into the broadcast
	// runtime, in which case State carries the snapshot every member
	// clones into a fresh replica.
	wireMigrate struct {
		Obj    ObjID
		Target int
		State  State
	}
)

// bcastManager is the per-machine object manager: it owns the local
// replicas and applies the totally-ordered write stream.
type bcastManager struct {
	rts      *BroadcastRTS
	m        *amoeba.Machine
	g        *group.Member
	insts    map[ObjID]*bcastInstance
	waiters  map[int64]*opWaiter
	early    map[int64][]any // completions that beat their waiter
	flights  map[int64]*batchFlight
	instCond *sim.Cond // signalled when a replica is instantiated
	extra    func(node int, body any)

	// touched collects the replicas written since the last frame
	// boundary; the guard-retry sweep runs once per frame over them
	// (see run), which is what batching amortizes.
	touched []*bcastInstance

	// inFrame and pendCharge amortize the apply-cost accounting over
	// a packed frame: mid-frame ops accrue their CPU cost and the
	// frame's last op charges the sum in ONE Compute (one busy
	// interval, one timer event) instead of one per op. Unbatched
	// messages are single-op frames — nothing accrues and the charge
	// happens exactly where it always did.
	inFrame    bool
	pendCharge sim.Time

	// lastID/lastInst memoize the most recent instance lookup.
	// Replicas are never removed from insts, so the cache cannot go
	// stale; it turns the per-invocation map access into a compare on
	// the overwhelmingly common repeated-object access pattern.
	lastID   ObjID
	lastInst *bcastInstance

	// wfree recycles opWaiter records: one is needed per in-flight
	// write, and steady state has a tiny number in flight.
	wfree []*opWaiter

	// Partial replication plumbing (see bcast_partial.go).
	fwdSrv    *amoeba.Server
	fwdClient *amoeba.Client
}

// bcastInstance is one local replica.
type bcastInstance struct {
	typ     *ObjectType
	state   State
	cond    sim.Cond // wakes guard-blocked readers after each write
	pending []pendingWrite
	seg     *amoeba.Segment
	reads   int64
	writes  int64
	touched bool // written since the last frame boundary (see run)
	moved   bool // migrated away at its cut point; writes bounce (see adapt.go)

	ops opCache
}

// op resolves an operation name through the replica's MRU cache.
func (inst *bcastInstance) op(name string) *OpDef { return inst.ops.lookup(inst.typ, name) }

// pendingWrite is a guarded write waiting for its guard, in total
// order position.
type pendingWrite struct {
	uid  int64
	src  int
	op   *OpDef
	args []any
}

// opWaiter lets the invoking thread sleep until its own write has been
// applied locally (which, given total order, is the linearization
// point visible to it).
type opWaiter struct {
	cond sim.Cond
	done bool
	res  []any
}

// NewBroadcastRTS builds the runtime over one group member per
// machine. machines[i] and members[i] must be node i.
func NewBroadcastRTS(reg *Registry, costs Costs, machines []*amoeba.Machine, members []*group.Member) *BroadcastRTS {
	span := make([]int, len(machines))
	for i, m := range machines {
		span[i] = m.ID()
	}
	return newBroadcastRTSAt(reg, costs, machines, members, span, fwdPort)
}

// newBroadcastRTSAt builds the runtime over a (possibly partial)
// machine span, binding the forwarder service on the given port.
// machines[i] and members[i] must be node span[i]; span must be
// ascending. A ShardedRTS builds one per sequencer group.
func newBroadcastRTSAt(reg *Registry, costs Costs, machines []*amoeba.Machine, members []*group.Member, span []int, port string) *BroadcastRTS {
	r := &BroadcastRTS{reg: reg, costs: costs, ids: &idAlloc{}, span: span, fwdPort: port}
	total := 0
	for _, m := range machines {
		if n := m.Net().Nodes(); n > total {
			total = n
		}
	}
	r.mgrAt = make([]int, total)
	for i := range r.mgrAt {
		r.mgrAt[i] = -1
	}
	for i, m := range machines {
		if m.ID() != span[i] {
			panic(fmt.Sprintf("rts: span machine mismatch (node %d at span slot %d)", m.ID(), span[i]))
		}
		r.mgrAt[m.ID()] = i
		mgr := &bcastManager{
			rts:      r,
			m:        m,
			g:        members[i],
			insts:    make(map[ObjID]*bcastInstance),
			waiters:  make(map[int64]*opWaiter),
			early:    make(map[int64][]any),
			flights:  make(map[int64]*batchFlight),
			instCond: sim.NewCond(m.Env()),
		}
		r.mgrs = append(r.mgrs, mgr)
		m.SpawnThread("objmgr", mgr.run)
	}
	r.startForwarders(machines)
	return r
}

// mgr returns the object manager on a node, nil outside the span.
func (r *BroadcastRTS) mgr(node int) *bcastManager {
	if node < 0 || node >= len(r.mgrAt) {
		return nil
	}
	i := r.mgrAt[node]
	if i < 0 {
		return nil
	}
	return r.mgrs[i]
}

// Nodes reports the machine count (span size).
func (r *BroadcastRTS) Nodes() int { return len(r.mgrs) }

// Span reports the global node ids hosting this runtime's replicas.
func (r *BroadcastRTS) Span() []int { return r.span }

// EnableBatching turns on the write-combining pipeline: unguarded
// no-result writes are submitted through per-worker combining buffers
// and leave as multi-op frames (see batch.go). Call before the
// simulation starts. The group members should run the same
// configuration so the sequencer packs frames too.
func (r *BroadcastRTS) EnableBatching(bc group.BatchConfig) { r.batch = bc }

// BatchingEnabled reports whether the write-combining pipeline is on.
func (r *BroadcastRTS) BatchingEnabled() bool { return r.batch.Enabled() }

// noBatch excludes an object from the write-combining pipeline (see
// the unbatched field).
func (r *BroadcastRTS) noBatch(id ObjID) {
	if r.unbatched == nil {
		r.unbatched = make(map[ObjID]bool)
	}
	r.unbatched[id] = true
}

// Stats reports aggregate runtime counters: local reads served without
// communication, broadcast writes, and guard suspensions.
func (r *BroadcastRTS) Stats() (localReads, bcastWrites, guardWaits int64) {
	return r.localReads, r.bcastWrites, r.guardWaits
}

// Counters implements StatsSource with the unified counter snapshot.
func (r *BroadcastRTS) Counters() RTSStats {
	st := RTSStats{
		LocalReads:  r.localReads,
		BcastWrites: r.bcastWrites,
		GuardWaits:  r.guardWaits,
		Forwarded:   r.forwarded,
		BatchedOps:  r.batchedOps,
		Frames:      r.batchFrames,
		Crashes:     r.crashes,
		OpsRetried:  r.opsRetried,
	}
	// Sequencer-recovery counters live in the group members below the
	// runtime: elections and takeovers by max (survivors observe the
	// same logical recovery), re-proposals by sum, recovery time as
	// the worst member's outage.
	for _, mgr := range r.mgrs {
		gs := mgr.g.Stats()
		if gs.Elections > st.Elections {
			st.Elections = gs.Elections
		}
		if gs.Takeovers > st.Takeovers {
			st.Takeovers = gs.Takeovers
		}
		st.Reproposals += gs.Reproposals
		if us := float64(gs.RecoveryTime) / float64(sim.Microsecond); us > st.RecoveryVirtualUS {
			st.RecoveryVirtualUS = us
		}
	}
	return st
}

// NodeCrashed implements CrashAware. The replicated core needs no
// repair — the dead machine's replicas, guard waiters, and manager
// thread died with it, and the group layer already routes around a
// dead member (electing a new sequencer if necessary) — so the
// runtime only has to stop choosing the dead machine as a target for
// forwarded operations on partially replicated objects.
func (r *BroadcastRTS) NodeCrashed(node int) {
	if r.down == nil {
		r.down = make(map[int]bool)
	}
	if r.down[node] {
		return
	}
	r.down[node] = true
	r.crashes++
}

// Create broadcasts object creation so every machine instantiates a
// replica, and waits until the local replica exists.
func (r *BroadcastRTS) Create(w *Worker, typeName string, args ...any) ObjID {
	t := r.reg.Lookup(typeName) // validate before broadcasting
	id := r.ids.alloc()
	mgr := r.mgr(w.Node())
	if mgr == nil {
		panic(fmt.Sprintf("rts: create from node %d outside the shard span %v", w.Node(), r.span))
	}
	mgr.syncBuf(w) // creation is ordered after the worker's buffered writes
	w.Flush()
	body := wireCreate{Obj: id, Type: t.Name, Args: args}
	uid := mgr.g.Broadcast(w.P, "rts-create", body, SizeOfArgs(args)+len(typeName)+16)
	mgr.await(w.P, uid)
	return id
}

// Invoke implements System.
func (r *BroadcastRTS) Invoke(w *Worker, id ObjID, opName string, args ...any) []any {
	mgr := r.mgr(w.Node())
	if mgr == nil {
		panic(fmt.Sprintf("rts: invoke from node %d outside the shard span %v (route via ShardedRTS)", w.Node(), r.span))
	}
	if pl := r.placement(id); pl != nil && !r.replicatedOn(w.Node(), id) {
		// No local replica: forward the operation to a holder.
		mgr.syncBuf(w)
		return mgr.forward(w, id, pl, opName, args)
	}
	inst := mgr.instance(w.P, id)
	op := inst.op(opName)
	if op.Kind == Read {
		return mgr.localRead(w, inst, op, args)
	}
	if pl := r.placement(id); len(pl) == 1 {
		// Single-copy object at its only holder: apply directly, no
		// broadcast needed.
		mgr.syncBuf(w)
		return mgr.directWrite(w, inst, op, args)
	}
	if r.batch.Enabled() && op.NoResult && op.Guard == nil && r.placement(id) == nil && !r.unbatched[id] {
		// Unguarded no-result write under batching: combine. The
		// invoker continues immediately; program order is preserved
		// by the sync points (see batch.go).
		mgr.bufferWrite(w, id, inst, opName, args)
		return nil
	}
	// Write: ship the operation through the total order and wait for
	// it to be applied on this machine.
	mgr.syncBuf(w)
	w.Flush()
	r.bcastWrites++
	body := wireOp{Obj: id, Op: opName, Args: args}
	uid := mgr.g.Broadcast(w.P, "rts-op", body, SizeOfArgs(args)+len(opName)+16)
	return mgr.await(w.P, uid)
}

// LocalReadState implements LocalReader: it serves the bookkeeping of
// an unguarded local read — statistics and CPU charge, identical to
// the Invoke read path — and exposes the local replica state so a
// typed caller can apply its operation directly, with no []any
// argument or result encoding. Guarded or forwarded reads are
// declined; the caller falls back to Invoke.
func (r *BroadcastRTS) LocalReadState(w *Worker, id ObjID, op *OpDef) (State, bool) {
	if op.Guard != nil {
		return nil, false
	}
	if r.placements != nil {
		if pl := r.placement(id); pl != nil && !r.replicatedOn(w.Node(), id) {
			return nil, false
		}
	}
	mgr := r.mgr(w.Node())
	if mgr == nil {
		return nil, false
	}
	inst := mgr.instance(w.P, id)
	if w.batch != nil && w.batch.holds(inst) {
		w.batch.sync(w) // read-own-write: wait for the buffered writes
	}
	r.localReads++
	inst.reads++
	w.Charge(r.costs.ReadLocal + r.costs.opCost(op))
	return inst.state, true
}

// PeekState implements System.
func (r *BroadcastRTS) PeekState(node int, id ObjID) (State, bool) {
	mgr := r.mgr(node)
	if mgr == nil {
		return nil, false
	}
	inst, ok := mgr.insts[id]
	if !ok {
		return nil, false
	}
	return inst.state, true
}

// PendingWrites reports how many guarded writes are queued on a
// machine's replica; exposed for tests.
func (r *BroadcastRTS) PendingWrites(node int, id ObjID) int {
	mgr := r.mgr(node)
	if mgr == nil {
		return 0
	}
	inst, ok := mgr.insts[id]
	if !ok {
		return 0
	}
	return len(inst.pending)
}

// instance returns the local replica, waiting for the creation
// broadcast if it has not arrived yet (a freshly forked worker can
// race the create message).
func (mgr *bcastManager) instance(p *sim.Proc, id ObjID) *bcastInstance {
	if id == mgr.lastID && mgr.lastInst != nil {
		return mgr.lastInst
	}
	for {
		if inst, ok := mgr.insts[id]; ok {
			mgr.lastID, mgr.lastInst = id, inst
			return inst
		}
		mgr.instCond.Wait(p)
	}
}

// localRead performs a read on the local replica: no network traffic,
// just accumulated CPU. Guard-blocked reads wait on the replica's
// condition and re-check after every applied write.
func (mgr *bcastManager) localRead(w *Worker, inst *bcastInstance, op *OpDef, args []any) []any {
	r := mgr.rts
	if op.Guard == nil {
		if w.batch != nil && w.batch.holds(inst) {
			w.batch.sync(w) // read-own-write: wait for the buffered writes
		}
		if inst.moved {
			// The object migrated away and this replica is frozen at
			// the cut. A first-migration read here would still be a
			// consistent prefix, but after the object has round-tripped
			// the frozen state is arbitrarily stale — bounce, and let
			// the mixed router wait for the live placement.
			return retrySlice
		}
		r.localReads++
		inst.reads++
		w.Charge(r.costs.ReadLocal + r.costs.opCost(op))
		return w.applyLocal(op, inst.state, args)
	}
	// Guarded: sync first — the guard may depend on the worker's own
	// buffered writes, and suspending with writes unsent could stall
	// the program.
	mgr.syncBuf(w)
	for {
		// Flush before evaluating the guard: flushing blocks on the
		// CPU, and a wakeup that fires while this thread is neither
		// checking the guard nor on the wait queue would be lost.
		// Between the guard check and Wait (or Apply) nothing may
		// block, so costs are accrued, not charged.
		w.Flush()
		if inst.moved {
			// The object migrated away while this reader was guard
			// blocked: no further writes will ever wake it here, so
			// bounce and re-register under the new placement.
			return retrySlice
		}
		w.Accrue(r.costs.GuardCheck)
		if !op.Guard(inst.state, args) {
			r.guardWaits++
			inst.cond.Wait(w.P)
			continue
		}
		r.localReads++
		inst.reads++
		w.Accrue(r.costs.ReadLocal + r.costs.opCost(op))
		return w.applyLocal(op, inst.state, args)
	}
}

// await blocks until the manager applies the message with this uid
// locally and returns its results. The apply can race ahead of the
// invoker (broadcasting blocks on the CPU, and the manager may apply
// the local delivery meanwhile), so completions that arrive before the
// waiter registers are buffered in mgr.early.
func (mgr *bcastManager) await(p *sim.Proc, uid int64) []any {
	if res, done := mgr.early[uid]; done {
		delete(mgr.early, uid)
		return res
	}
	var wt *opWaiter
	if n := len(mgr.wfree); n > 0 {
		wt = mgr.wfree[n-1]
		mgr.wfree = mgr.wfree[:n-1]
	} else {
		wt = &opWaiter{}
	}
	mgr.waiters[uid] = wt
	for !wt.done {
		wt.cond.Wait(p)
	}
	delete(mgr.waiters, uid)
	res := wt.res
	wt.done, wt.res = false, nil
	mgr.wfree = append(mgr.wfree, wt)
	return res
}

// complete finishes a waiting invocation. src is the originating node:
// completions for locally originated messages with no registered
// waiter yet are buffered until await claims them. Async (combined)
// ops complete through their batch flight instead of a waiter.
func (mgr *bcastManager) complete(p *sim.Proc, uid int64, src int, res []any) {
	if mgr.completeFlight(p, uid) {
		return
	}
	if wt, ok := mgr.waiters[uid]; ok {
		wt.done = true
		wt.res = res
		wt.cond.Broadcast()
		return
	}
	if src == mgr.m.ID() {
		mgr.early[uid] = res
	}
}

// SetExtraHandler installs a callback for group messages the runtime
// does not recognize. The Orca layer uses it to order process creation
// within the same total order as object writes, which is what makes a
// freshly forked process observe all writes its parent issued before
// the fork.
func (r *BroadcastRTS) SetExtraHandler(h func(node int, body any)) {
	for _, mgr := range r.mgrs {
		mgr.extra = h
	}
}

// run is the object-manager thread: it consumes the totally-ordered
// delivery stream and applies creations and writes. Guard retries run
// once per frame, not per op: a write only marks its replica touched,
// and the retry sweep over the touched replicas fires at the frame
// boundary (d.More == false). Frame boundaries are assigned by the
// sequencer and travel with each message, so every replica drains at
// identical points in the total order — which is what keeps
// replicated guard queues deterministic. Unbatched messages are
// single-op frames, reproducing the drain-after-every-write behavior
// exactly.
func (mgr *bcastManager) run(p *sim.Proc) {
	for {
		d, ok := mgr.g.Deliveries().Get(p)
		if !ok {
			return
		}
		mgr.inFrame = d.More
		if !d.Dup {
			switch body := d.Body.(type) {
			case wireCreate:
				mgr.applyCreate(p, d.UID, d.Src, body)
			case wireOp:
				mgr.applyWrite(p, d.UID, d.Src, body)
			case wireFence:
				if mgr.rts.fence == nil {
					panic("rts: cross-shard fence delivered to a non-sharded runtime")
				}
				mgr.rts.fence(p, mgr, d, body)
			case wireMigrate:
				if mgr.rts.migrate == nil {
					panic("rts: migrate record delivered to a runtime without adaptive placement")
				}
				mgr.rts.migrate(p, mgr, d.UID, d.Src, body)
			default:
				if mgr.extra == nil {
					panic(fmt.Sprintf("rts: unexpected group message %T", d.Body))
				}
				mgr.extra(mgr.m.ID(), d.Body)
			}
		}
		// A Dup record is a re-sequenced duplicate the group layer
		// suppressed: nothing to apply (it completed at its first
		// delivery), but its frame-boundary flag still counts below.
		if !d.More {
			if mgr.pendCharge > 0 {
				// A frame whose tail op took a non-charging path (a
				// guard queued it, a non-holder skipped it): settle
				// the accrued cost at the boundary.
				mgr.m.Compute(p, mgr.pendCharge)
				mgr.pendCharge = 0
			}
			mgr.drainTouched(p)
		}
	}
}

// charge accounts CPU cost for one delivered op: mid-frame costs
// accrue, and the frame's last op charges the accrued sum at once.
func (mgr *bcastManager) charge(p *sim.Proc, d sim.Time) {
	if mgr.inFrame {
		mgr.pendCharge += d
		return
	}
	if mgr.pendCharge > 0 {
		d += mgr.pendCharge
		mgr.pendCharge = 0
	}
	mgr.m.Compute(p, d)
}

// drainTouched runs the guard-retry sweep over every replica written
// since the last frame boundary.
func (mgr *bcastManager) drainTouched(p *sim.Proc) {
	for i, inst := range mgr.touched {
		inst.touched = false
		mgr.touched[i] = nil
		mgr.drainPending(p, inst)
	}
	mgr.touched = mgr.touched[:0]
}

// applyCreate instantiates the replica (on replica holders only, for
// partially replicated objects).
func (mgr *bcastManager) applyCreate(p *sim.Proc, uid int64, src int, c wireCreate) {
	r := mgr.rts
	if !r.replicatedOn(mgr.m.ID(), c.Obj) {
		mgr.complete(p, uid, src, nil)
		return
	}
	t := r.reg.Lookup(c.Type)
	mgr.charge(p, r.costs.Create)
	state := t.New(c.Args)
	inst := &bcastInstance{
		typ:   t,
		state: state,
		seg:   mgr.m.AllocSegment(int64(t.stateSize(state))),
	}
	mgr.insts[c.Obj] = inst
	mgr.instCond.Broadcast()
	mgr.complete(p, uid, src, nil)
}

// applyWrite executes one write from the total order: check the guard
// (queue if false), apply, complete the local invoker, and wake
// guard-blocked readers. The guard-retry sweep over pending writes
// runs at the frame boundary (see run), not here.
func (mgr *bcastManager) applyWrite(p *sim.Proc, uid int64, src int, wo wireOp) {
	r := mgr.rts
	inst, ok := mgr.insts[wo.Obj]
	if !ok {
		if !mgr.rts.replicatedOn(mgr.m.ID(), wo.Obj) {
			return // not a replica holder: the write does not apply here
		}
		panic(fmt.Sprintf("rts: write to unknown object %d on node %d", wo.Obj, mgr.m.ID()))
	}
	if inst.moved {
		// The object migrated away at an earlier position in the total
		// order: bounce, so the invoker re-issues under the new
		// placement (see adapt.go).
		mgr.complete(p, uid, src, retrySlice)
		return
	}
	op := inst.op(wo.Op)
	if op.Guard != nil {
		mgr.charge(p, r.costs.GuardCheck)
		if !op.Guard(inst.state, wo.Args) {
			inst.pending = append(inst.pending, pendingWrite{uid: uid, src: src, op: op, args: wo.Args})
			return
		}
	}
	mgr.execWrite(p, inst, uid, src, op, wo.Args)
	if !inst.touched {
		inst.touched = true
		mgr.touched = append(mgr.touched, inst)
	}
}

// execWrite applies one write to the replica.
func (mgr *bcastManager) execWrite(p *sim.Proc, inst *bcastInstance, uid int64, src int, op *OpDef, args []any) {
	r := mgr.rts
	mgr.charge(p, r.costs.WriteApply+r.costs.opCost(op))
	res := op.Apply(inst.state, args)
	inst.writes++
	if !inst.typ.SizeFixed {
		inst.seg.Resize(int64(inst.typ.stateSize(inst.state)))
	}
	mgr.complete(p, uid, src, res)
	inst.cond.Broadcast()
}

// drainPending retries queued guarded writes in arrival (sequence)
// order after each state change, looping until none can run. Every
// replica performs the identical retry sequence, preserving
// determinism.
//
// Each round is a single order-preserving sweep that fires true guards
// in place and compacts the survivors — no per-fire slice copy and no
// restart from index 0. The guard-evaluation discipline is preserved:
// an entry is only declared stuck once its guard was evaluated (and
// charged) against the state left by the most recent fired write.
// stale counts the leading kept entries whose last evaluation predates
// the round's last fire; only those need the next round. When a fired
// write enables at most one other pending write (every std type: a
// queue add enables one get, a close enables all gets at once), the
// charge sequence and firing order are identical to the restart-scan
// this replaces — the pinned golden fingerprints prove it for the
// reproduced workloads. With 3+ mutually-enabling pending writes on
// one object the sweep evaluates the enabled suffix before re-checking
// the prefix, where the restart-scan re-checked the prefix first; both
// orders are deterministic and arrival-order-fair, but they are not
// charge-for-charge identical in that corner.
func (mgr *bcastManager) drainPending(p *sim.Proc, inst *bcastInstance) {
	r := mgr.rts
	for stale := len(inst.pending); stale > 0; {
		kept := inst.pending[:0]
		fired := false
		nextStale := 0
		for i := range inst.pending {
			pw := inst.pending[i]
			if i >= stale && !fired {
				// Already evaluated against the current state and no
				// fire since: keep without re-charging a guard check.
				kept = append(kept, pw)
				continue
			}
			mgr.m.Compute(p, r.costs.GuardCheck)
			if pw.op.Guard(inst.state, pw.args) {
				mgr.execWrite(p, inst, pw.uid, pw.src, pw.op, pw.args)
				fired = true
				nextStale = len(kept)
			} else {
				kept = append(kept, pw)
			}
		}
		clear(inst.pending[len(kept):])
		inst.pending = kept
		stale = nextStale
	}
}
