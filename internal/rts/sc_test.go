package rts

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/rts/scheck"
	"repro/internal/sim"
)

// Sequential-consistency checking. The model guarantees that all
// operations on all shared objects appear to execute in some total
// order consistent with each process's program order. The checker
// lives in the reusable scheck package: writes assign unique values,
// so every read names the write it observed; scheck reconstructs a
// total write order from the observation constraints and verifies each
// process's history is monotone in it.

// TestBroadcastRTSSequentialConsistency drives concurrent unique-value
// writes and reads on one object and validates every process's history
// against the reconstructed write order.
func TestBroadcastRTSSequentialConsistency(t *testing.T) {
	f := func(seed int64) bool {
		const nodes = 4
		b, r := newBcastTB(t, seed, nodes, nil)
		var id ObjID
		histories := make([][]scheck.Op, nodes)
		b.spawn(0, "boot", func(w *Worker) {
			id = r.Create(w, "intcell") // starts at 0
			for n := 0; n < nodes; n++ {
				n := n
				b.spawn(n, fmt.Sprintf("p%d", n), func(w *Worker) {
					rng := b.env.Rand()
					for i := 0; i < 12; i++ {
						if rng.Intn(3) == 0 {
							v := n*1000 + i + 1 // unique nonzero value
							r.Invoke(w, id, "set", v)
							histories[n] = append(histories[n], scheck.Op{Proc: n, Write: true, Val: v})
						} else {
							got := r.Invoke(w, id, "get")[0].(int)
							histories[n] = append(histories[n], scheck.Op{Proc: n, Val: got})
						}
						w.Charge(sim.Time(rng.Intn(500)) * sim.Microsecond)
					}
				})
			}
		})
		b.run(120 * sim.Second)
		defer b.done()
		if err := scheck.Check(histories); err != nil {
			t.Fatal(err)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// TestSCViolationDetectorSanity makes sure the checker actually fails
// on a non-SC history (a process observing values in opposing orders).
func TestSCViolationDetectorSanity(t *testing.T) {
	histories := [][]scheck.Op{
		{{Proc: 0, Write: true, Val: 1}, {Proc: 0, Write: true, Val: 2}},
		{{Proc: 1, Val: 2}, {Proc: 1, Val: 1}}, // reads new then old: violation
	}
	// The cycle 1->2 (program order) vs 2->1 (observation) must be
	// detected as unorderable.
	if err := scheck.Check(histories); err == nil {
		t.Fatal("expected cycle detection on a non-SC history, got nil error")
	}
}
