package repro

// One benchmark per reproduced table/figure. Each benchmark runs a
// reduced instance of the corresponding experiment and reports the
// key virtual-time metrics alongside the host-time measurement, so
// `go test -bench=. -benchmem` regenerates the whole evaluation in
// miniature. The full-size sweeps live in cmd/orca-bench.

import (
	"testing"

	"repro/internal/apps/acp"
	"repro/internal/apps/atpg"
	"repro/internal/apps/chess"
	"repro/internal/apps/tsp"
	"repro/internal/group"
	"repro/internal/harness"
	"repro/internal/netsim"
	"repro/internal/orca"
	"repro/internal/orca/std"
	"repro/internal/rts"
	"repro/internal/sim"

	amoebapkg "repro/internal/amoeba"
)

// BenchmarkFig2TSP measures the paper's Figure 2 workload: replicated
// worker branch-and-bound at 1 vs 8 processors.
func BenchmarkFig2TSP(b *testing.B) {
	inst := tsp.Generate(12, 5)
	for _, procs := range []int{1, 8} {
		procs := procs
		b.Run(map[int]string{1: "P1", 8: "P8"}[procs], func(b *testing.B) {
			var elapsed sim.Time
			for i := 0; i < b.N; i++ {
				r := tsp.RunOrca(orca.Config{Processors: procs, RTS: orca.Broadcast, Seed: 1},
					inst, tsp.Params{})
				elapsed = r.Report.Elapsed
			}
			b.ReportMetric(elapsed.Seconds(), "virtual-s")
		})
	}
}

// BenchmarkFig3ACP measures the Figure 3 workload: arc consistency
// with shared domain objects.
func BenchmarkFig3ACP(b *testing.B) {
	inst := acp.GeneratePropagation(32, 32, 20, 2)
	for _, procs := range []int{1, 8} {
		procs := procs
		b.Run(map[int]string{1: "P1", 8: "P8"}[procs], func(b *testing.B) {
			var elapsed sim.Time
			for i := 0; i < b.N; i++ {
				r := acp.RunOrca(orca.Config{Processors: procs, RTS: orca.Broadcast, Seed: 1},
					inst, acp.Params{})
				elapsed = r.Report.Elapsed
			}
			b.ReportMetric(elapsed.Seconds(), "virtual-s")
		})
	}
}

// BenchmarkChess measures §4.3: parallel alpha-beta with shared vs
// local tables.
func BenchmarkChess(b *testing.B) {
	board, err := chess.FromFEN("r1bq1rk1/pp1n1ppp/2pbpn2/3p4/2PP4/2NBPN2/PP3PPP/R1BQ1RK1 w - - 0 1")
	if err != nil {
		b.Fatal(err)
	}
	for _, shared := range []bool{true, false} {
		shared := shared
		name := "LocalTables"
		if shared {
			name = "SharedTables"
		}
		b.Run(name, func(b *testing.B) {
			var elapsed sim.Time
			for i := 0; i < b.N; i++ {
				r := chess.RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1},
					board, chess.Params{MaxDepth: 4, SharedTT: shared, SharedKiller: shared})
				elapsed = r.Report.Elapsed
			}
			b.ReportMetric(elapsed.Seconds(), "virtual-s")
		})
	}
}

// BenchmarkATPG measures §4.4 in all three modes.
func BenchmarkATPG(b *testing.B) {
	c := atpg.Generate(16, 6, 30, 42)
	faults := atpg.AllFaults(c)
	for _, mode := range []atpg.Mode{atpg.Static, atpg.StaticFaultSim, atpg.DynamicFaultSim} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			var elapsed sim.Time
			for i := 0; i < b.N; i++ {
				r := atpg.RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1},
					c, faults, atpg.Params{Mode: mode})
				elapsed = r.Report.Elapsed
			}
			b.ReportMetric(elapsed.Seconds(), "virtual-s")
		})
	}
}

// benchGroupRound runs one totally-ordered broadcast round over n
// machines with the given method and payload size, returning virtual
// latency.
func benchGroupRound(method group.Method, size int) sim.Time {
	env := sim.New(7)
	nw := netsim.New(env, 4, netsim.DefaultParams())
	ids := []int{0, 1, 2, 3}
	cfg := group.DefaultConfig(ids)
	cfg.Method = method
	cfg.Heartbeat = 0
	var ms []*amoebapkg.Machine
	var gs []*group.Member
	for i := 0; i < 4; i++ {
		m := amoebapkg.NewMachine(env, nw, i, amoebapkg.DefaultCosts())
		ms = append(ms, m)
		gs = append(gs, group.Join(m, cfg))
	}
	var last sim.Time
	for i := 0; i < 4; i++ {
		i := i
		ms[i].SpawnThread("consume", func(p *sim.Proc) {
			for {
				if _, ok := gs[i].Deliveries().Get(p); !ok {
					return
				}
				last = p.Now()
			}
		})
	}
	ms[3].SpawnThread("send", func(p *sim.Proc) {
		gs[3].Broadcast(p, "m", "x", size)
	})
	env.RunUntil(2 * sim.Second)
	env.Stop()
	env.Shutdown()
	return last
}

// BenchmarkPBvsBB measures §3.1: one broadcast under each method at a
// short and a long payload.
func BenchmarkPBvsBB(b *testing.B) {
	cases := []struct {
		name   string
		method group.Method
		size   int
	}{
		{"PB-short", group.ForcePB, 256},
		{"BB-short", group.ForceBB, 256},
		{"PB-long", group.ForcePB, 4000},
		{"BB-long", group.ForceBB, 4000},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var lat sim.Time
			for i := 0; i < b.N; i++ {
				lat = benchGroupRound(tc.method, tc.size)
			}
			b.ReportMetric(lat.Milliseconds(), "virtual-ms")
		})
	}
}

// BenchmarkUpdateVsInvalidate measures §3.2.2's protocol comparison on
// a read-heavy workload.
func BenchmarkUpdateVsInvalidate(b *testing.B) {
	for _, proto := range []rts.P2PProtocol{rts.Update, rts.Invalidation} {
		proto := proto
		b.Run(proto.String(), func(b *testing.B) {
			var t sim.Time
			for i := 0; i < b.N; i++ {
				t, _, _ = harness.P2PWorkload(proto, rts.DynamicPlacement, 4, 16, 1, 6)
			}
			b.ReportMetric(t.Milliseconds(), "virtual-ms")
		})
	}
}

// BenchmarkDynamicReplication measures the replica-placement policies.
func BenchmarkDynamicReplication(b *testing.B) {
	for _, pl := range []rts.Placement{rts.SingleCopy, rts.FullReplication, rts.DynamicPlacement} {
		pl := pl
		b.Run(pl.String(), func(b *testing.B) {
			var t sim.Time
			for i := 0; i < b.N; i++ {
				t, _, _ = harness.P2PWorkload(rts.Update, pl, 4, 16, 1, 6)
			}
			b.ReportMetric(t.Milliseconds(), "virtual-ms")
		})
	}
}

// BenchmarkGroupBroadcast measures raw total-order broadcast rounds.
func BenchmarkGroupBroadcast(b *testing.B) {
	var lat sim.Time
	for i := 0; i < b.N; i++ {
		lat = benchGroupRound(group.Auto, 128)
	}
	b.ReportMetric(lat.Milliseconds(), "virtual-ms")
}

// BenchmarkRPC measures the null RPC round trip.
func BenchmarkRPC(b *testing.B) {
	var rtt sim.Time
	for i := 0; i < b.N; i++ {
		env := sim.New(3)
		nw := netsim.New(env, 2, netsim.DefaultParams())
		m0 := amoebapkg.NewMachine(env, nw, 0, amoebapkg.DefaultCosts())
		m1 := amoebapkg.NewMachine(env, nw, 1, amoebapkg.DefaultCosts())
		srv := amoebapkg.NewServer(m1, "null")
		m1.SpawnThread("server", func(p *sim.Proc) {
			for {
				r, ok := srv.GetRequest(p)
				if !ok {
					return
				}
				srv.PutReply(p, r, nil, 0)
			}
		})
		cl := amoebapkg.NewClient(m0, amoebapkg.DefaultRPCPolicy())
		m0.SpawnThread("client", func(p *sim.Proc) {
			start := p.Now()
			if _, err := cl.Trans(p, 1, "null", "nop", nil, 0); err != nil {
				panic(err)
			}
			rtt = p.Now() - start
		})
		env.RunUntil(sim.Second)
		env.Stop()
		env.Shutdown()
	}
	b.ReportMetric(rtt.Milliseconds(), "virtual-ms")
}

// BenchmarkOrcaOps measures the core object-operation primitives of
// the broadcast runtime: a local read and a broadcast write.
func BenchmarkOrcaOps(b *testing.B) {
	run := func(b *testing.B, op func(p *orca.Proc, o orca.Object, i int)) sim.Time {
		rt := orca.New(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1}, std.Register)
		var per sim.Time
		rep := rt.Run(func(p *orca.Proc) {
			o := p.New(std.IntObj)
			start := p.Now()
			for i := 0; i < b.N; i++ {
				op(p, o, i)
			}
			per = (p.Now() - start) / sim.Time(b.N)
		})
		_ = rep
		return per
	}
	b.Run("LocalRead", func(b *testing.B) {
		per := run(b, func(p *orca.Proc, o orca.Object, _ int) { p.Invoke(o, "value") })
		b.ReportMetric(per.Microseconds(), "virtual-µs/op")
	})
	b.Run("BroadcastWrite", func(b *testing.B) {
		per := run(b, func(p *orca.Proc, o orca.Object, i int) { p.Invoke(o, "assign", i) })
		b.ReportMetric(per.Microseconds(), "virtual-µs/op")
	})
}

// BenchmarkTypedOps measures the same primitives through the typed
// API v2 surface (std.Counter over the descriptor layer); the virtual
// costs must match BenchmarkOrcaOps, since the typed surface is a
// facade over the same untyped Invoke path.
func BenchmarkTypedOps(b *testing.B) {
	run := func(b *testing.B, op func(p *orca.Proc, c std.Counter, i int)) sim.Time {
		rt := orca.New(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1}, std.Register)
		var per sim.Time
		rt.Run(func(p *orca.Proc) {
			c := std.NewCounter(p, 0)
			start := p.Now()
			for i := 0; i < b.N; i++ {
				op(p, c, i)
			}
			per = (p.Now() - start) / sim.Time(b.N)
		})
		return per
	}
	b.Run("LocalRead", func(b *testing.B) {
		per := run(b, func(p *orca.Proc, c std.Counter, _ int) { c.Value(p) })
		b.ReportMetric(per.Microseconds(), "virtual-µs/op")
	})
	b.Run("BroadcastWrite", func(b *testing.B) {
		per := run(b, func(p *orca.Proc, c std.Counter, i int) { c.Assign(p, i) })
		b.ReportMetric(per.Microseconds(), "virtual-µs/op")
	})
}
