package orca

import (
	"fmt"

	"repro/internal/amoeba"
	"repro/internal/group"
	"repro/internal/netsim"
	"repro/internal/rts"
	"repro/internal/sim"
)

// RTSKind selects the runtime system under the program.
type RTSKind int

const (
	// Broadcast is the paper's §3.2.1 runtime (full replication over
	// totally-ordered broadcast).
	Broadcast RTSKind = iota
	// P2PUpdate is the point-to-point runtime with the two-phase
	// update protocol.
	P2PUpdate
	// P2PInvalidate is the point-to-point runtime with the
	// invalidation protocol.
	P2PInvalidate
)

// String names the runtime kind for tables and traces.
func (k RTSKind) String() string {
	switch k {
	case Broadcast:
		return "broadcast"
	case P2PUpdate:
		return "p2p-update"
	case P2PInvalidate:
		return "p2p-invalidate"
	}
	return fmt.Sprintf("RTSKind(%d)", int(k))
}

// Batching configures the broadcast runtime's batching pipeline: the
// group sequencer packs queued requests into multi-op frames (one
// sequence number per op, one network frame per batch), senders pack
// same-instant submissions, and unguarded no-result writes travel
// through per-worker combining buffers instead of blocking the
// invoker per op. Defaults fill zero fields (see DefaultBatching).
// Batching amortizes the ordering protocol — frames per op drop
// roughly by MaxOps under write-heavy load — at the cost of up to
// Linger of added latency for a lone op. Results, guards, and
// read-own-write force synchronization, so program semantics are
// unchanged; virtual timings differ, which is why batched runs pin
// their own determinism goldens.
type Batching struct {
	// MaxOps flushes a batch at this many ops (minimum 2).
	MaxOps int
	// MaxBytes flushes when a batch's payload reaches this many
	// bytes, keeping frames within one wire fragment.
	MaxBytes int
	// Linger is the flush deadline: an op waits at most this long in
	// a pack buffer.
	Linger sim.Time
}

// DefaultBatching returns the default batching parameters: 16-op
// batches, one-fragment frames, and a linger of about one small
// frame's wire time — long enough to pack concurrent submissions,
// short enough that a lone operation barely notices.
func DefaultBatching() *Batching {
	return &Batching{MaxOps: 16, MaxBytes: 1024, Linger: 50 * sim.Microsecond}
}

// batchConfig resolves the group-layer configuration, filling
// defaults for zero fields.
func (b *Batching) batchConfig() group.BatchConfig {
	d := DefaultBatching()
	bc := group.BatchConfig{MaxOps: b.MaxOps, MaxBytes: b.MaxBytes, Linger: b.Linger}
	if bc.MaxOps == 0 {
		bc.MaxOps = d.MaxOps
	}
	if bc.MaxBytes == 0 {
		bc.MaxBytes = d.MaxBytes
	}
	if bc.Linger == 0 {
		bc.Linger = d.Linger
	}
	if bc.MaxOps < 2 {
		panic("orca: Batching.MaxOps must be at least 2")
	}
	return bc
}

// Config describes the simulated machine and runtime choice.
type Config struct {
	// Processors is the number of pool machines.
	Processors int
	// RTS picks the runtime system.
	RTS RTSKind
	// Mixed hosts the broadcast runtime and the point-to-point runtime
	// on the same machines, so individual objects can opt out of the
	// RTS default with a creation policy (see NewWith and Policy).
	// Objects created without a policy still follow RTS. Mixed implies
	// broadcast-capable hardware regardless of RTS.
	Mixed bool
	// Seed drives all randomness in the simulation.
	Seed int64
	// Net overrides the network parameters (zero value: the paper's
	// 10 Mb/s Ethernet). BroadcastCapable is forced to match RTS.
	Net *netsim.Params
	// KernelCosts overrides kernel CPU costs (zero value: defaults).
	KernelCosts *amoeba.Costs
	// RTSCosts overrides runtime overheads (zero value: defaults).
	RTSCosts *rts.Costs
	// P2P tunes the point-to-point runtime (zero value: defaults).
	P2P *rts.P2PConfig
	// GroupMethod forces the broadcast method (PB/BB); zero is Auto.
	GroupMethod group.Method
	// Protocol picks the broadcast group's sequencing protocol: the
	// zero value is the paper's elected sequencer; group.Consensus
	// replaces it with the quorum-replicated log that survives
	// sequencer loss without an election stall. Requires the broadcast
	// runtime (or Mixed).
	Protocol group.Protocol
	// Batching, when non-nil, turns on the broadcast runtime's
	// batching pipeline (frame packing in the group layer plus
	// per-worker write combining in the RTS). Off by default: the
	// unbatched code paths are untouched and bit-identical. Under
	// Mixed, batching applies to the broadcast subsystem only.
	Batching *Batching
	// Sequencer picks the initial group sequencer for the broadcast
	// runtime (default: processor 0). Fault experiments use it to put
	// the sequencer on a machine the fault plan crashes, without
	// crashing the main process on processor 0. Under sharding it is
	// the rotation offset: shard k's sequencer is span[(k+Sequencer) %
	// len(span)], so consecutive shards sequence on distinct machines.
	Sequencer int
	// Shards splits the broadcast total order across this many
	// independent sequencer groups, each on its own kernel port with
	// its own sequencer; objects are assigned to a shard at creation
	// (hash of the object id, or explicitly via OnShard / Sharded
	// creation options) and unrelated objects sequence concurrently.
	// 0 or 1 keeps the single group — every existing code path and
	// golden untouched. Shards > 1 requires the pure broadcast runtime
	// (RTS: Broadcast, not Mixed).
	Shards int
	// ShardSpan is each sequencer group's replication domain size: the
	// machines are cut into Processors/ShardSpan contiguous blocks and
	// shard k replicates its objects on block k mod blocks only, so a
	// write costs receive-and-apply on ShardSpan machines instead of
	// all of them (machines outside a domain reach its objects through
	// the forwarder RPC). 0 means every shard spans all machines.
	// Requires Shards > 1, Processors divisible by ShardSpan, and
	// Shards divisible by the block count (so every machine hosts a
	// shard).
	ShardSpan int
	// Faults, when non-nil, is the failure schedule for the run:
	// machine crashes executed by the runtime (kernel, threads,
	// process accounting, and runtime-system routing all follow), plus
	// network partitions and loss windows applied at the wire. All
	// fault handling is seed-deterministic. Crash reports land in
	// Report.Crashes.
	Faults *netsim.FaultPlan
	// MaxTime bounds the virtual run (default 1 hour of virtual
	// time); a program still running then is reported as timed out.
	MaxTime sim.Time
}

// Runtime is one configured simulated machine + runtime instance. A
// Runtime runs exactly one program.
type Runtime struct {
	cfg      Config
	env      *sim.Env
	net      *netsim.Network
	machines []*amoeba.Machine
	members  []*group.Member
	sys      rts.System
	shardRT  *rts.ShardedRTS // non-nil when cfg.Shards > 1
	fastRead rts.LocalReader // non-nil when sys serves typed local reads
	reg      *rts.Registry

	liveProcs int
	started   sim.Time
	timedOut  bool

	forkSeq int64
	forks   map[int64]forkEntry

	hists map[string]*rts.LatencyHist

	procs   []*procRec // every Orca process, for crash accounting
	crashes []CrashRecord
}

// forkMsg travels the wire so process creation is ordered with respect
// to object operations, as Amoeba's process management messages were.
// The closure itself stays in host memory (the simulation shares an
// address space); only the identifier is "transmitted".
type forkMsg struct {
	FID    int64
	Target int
}

type forkEntry struct {
	name   string
	cpu    int
	origin int // forking processor; the fork dies with it while in flight
	fn     func(p *Proc)
}

// New builds a runtime. setup registers the program's object types.
func New(cfg Config, setup func(reg *rts.Registry)) *Runtime {
	if cfg.Processors <= 0 {
		panic("orca: need at least one processor")
	}
	if cfg.MaxTime == 0 {
		cfg.MaxTime = 3600 * sim.Second
	}
	env := sim.New(cfg.Seed)
	np := netsim.DefaultParams()
	if cfg.Net != nil {
		np = *cfg.Net
	}
	np.BroadcastCapable = cfg.RTS == Broadcast || cfg.Mixed
	nw := netsim.New(env, cfg.Processors, np)
	kc := amoeba.DefaultCosts()
	if cfg.KernelCosts != nil {
		kc = *cfg.KernelCosts
	}
	rt := &Runtime{cfg: cfg, env: env, net: nw, reg: rts.NewRegistry(),
		forks: make(map[int64]forkEntry), hists: make(map[string]*rts.LatencyHist)}
	setup(rt.reg)
	for i := 0; i < cfg.Processors; i++ {
		rt.machines = append(rt.machines, amoeba.NewMachine(env, nw, i, kc))
	}
	rc := rts.DefaultCosts()
	if cfg.RTSCosts != nil {
		rc = *cfg.RTSCosts
	}
	// buildBroadcast joins every machine to the broadcast group and
	// starts the broadcast runtime, with forks ordered in the same
	// total order as object writes.
	buildBroadcast := func() *rts.BroadcastRTS {
		ids := make([]int, cfg.Processors)
		for i := range ids {
			ids[i] = i
		}
		gcfg := group.DefaultConfig(ids)
		gcfg.Method = cfg.GroupMethod
		gcfg.Protocol = cfg.Protocol
		gcfg.Sequencer = cfg.Sequencer
		if cfg.Batching != nil {
			gcfg.Batch = cfg.Batching.batchConfig()
			// Batched runs move MaxOps times the work per frame, so
			// delivery-progress reports can be MaxOps times sparser
			// for the same history-trimming lag — and every member
			// reports, so the interval also scales with P to keep the
			// aggregate status traffic flat (statuses contribute
			// (P-1)/StatusEvery frames per delivered op). The trim
			// lag stays a small fraction of HistoryMax.
			pScale := cfg.Processors / 32
			if pScale < 1 {
				pScale = 1
			}
			gcfg.StatusEvery *= gcfg.Batch.MaxOps * pScale
		}
		for _, m := range rt.machines {
			rt.members = append(rt.members, group.Join(m, gcfg))
		}
		br := rts.NewBroadcastRTS(rt.reg, rc, rt.machines, rt.members)
		if cfg.Batching != nil {
			br.EnableBatching(gcfg.Batch)
		}
		br.SetExtraHandler(func(node int, body any) {
			if fm, ok := body.(forkMsg); ok && node == fm.Target {
				rt.startFork(fm.FID)
			}
		})
		return br
	}
	// buildSharded cuts the machines into replication domains, joins
	// one sequencer group per shard (distinct port, rotated sequencer),
	// and composes the shard runtimes into a ShardedRTS. Forks travel
	// as barrier fences through every group spanning both machines; the
	// kernel-port fallback below covers forks across disjoint domains.
	buildSharded := func() *rts.ShardedRTS {
		span := cfg.ShardSpan
		if span <= 0 {
			span = cfg.Processors
		}
		switch {
		case span > cfg.Processors || cfg.Processors%span != 0:
			panic(fmt.Sprintf("orca: ShardSpan %d must divide Processors %d", span, cfg.Processors))
		case cfg.Shards%(cfg.Processors/span) != 0:
			panic(fmt.Sprintf("orca: Shards %d must be a multiple of the %d domains (every machine must host a shard)", cfg.Shards, cfg.Processors/span))
		}
		blocks := cfg.Processors / span
		defs := make([]rts.ShardDef, cfg.Shards)
		for k := 0; k < cfg.Shards; k++ {
			ids := make([]int, span)
			base := (k % blocks) * span
			for i := range ids {
				ids[i] = base + i
			}
			gcfg := group.DefaultConfig(ids)
			gcfg.Method = cfg.GroupMethod
			gcfg.Protocol = cfg.Protocol
			gcfg.Sequencer = ids[((k+cfg.Sequencer)%span+span)%span]
			gcfg.Shard = k
			gcfg.ShardCount = cfg.Shards
			if cfg.Batching != nil {
				gcfg.Batch = cfg.Batching.batchConfig()
				pScale := span / 32
				if pScale < 1 {
					pScale = 1
				}
				gcfg.StatusEvery *= gcfg.Batch.MaxOps * pScale
			}
			members := make([]*group.Member, span)
			for i, id := range ids {
				members[i] = group.Join(rt.machines[id], gcfg)
			}
			defs[k] = rts.ShardDef{Members: members, Span: ids}
		}
		sh := rts.NewShardedRTS(rt.reg, rc, rt.machines, defs)
		if cfg.Batching != nil {
			sh.EnableBatching(cfg.Batching.batchConfig())
		}
		sh.SetExtraHandler(func(node int, body any) {
			if fm, ok := body.(forkMsg); ok && node == fm.Target {
				rt.startFork(fm.FID)
			}
		})
		for _, m := range rt.machines {
			m.Bind("orca-fork", func(p *sim.Proc, from int, pkt amoeba.Packet) {
				rt.startFork(pkt.Body.(forkMsg).FID)
			})
		}
		return sh
	}
	// p2pConfig resolves the point-to-point configuration, with the
	// protocol forced by the RTS kind when that kind is point-to-point.
	p2pConfig := func() rts.P2PConfig {
		pc := rts.DefaultP2PConfig()
		if cfg.P2P != nil {
			pc = *cfg.P2P
		}
		switch cfg.RTS {
		case P2PUpdate:
			pc.Protocol = rts.Update
		case P2PInvalidate:
			pc.Protocol = rts.Invalidation
		}
		return pc
	}
	switch {
	case cfg.RTS != Broadcast && cfg.RTS != P2PUpdate && cfg.RTS != P2PInvalidate:
		panic("orca: unknown RTS kind")
	case cfg.Batching != nil && cfg.RTS != Broadcast && !cfg.Mixed:
		panic("orca: Batching requires the broadcast runtime (or Mixed)")
	case cfg.Protocol != group.ElectedSequencer && cfg.RTS != Broadcast && !cfg.Mixed:
		panic("orca: Protocol selection requires the broadcast runtime (or Mixed)")
	case cfg.Shards < 0:
		panic(fmt.Sprintf("orca: negative shard count %d", cfg.Shards))
	case cfg.Shards > 1 && (cfg.RTS != Broadcast || cfg.Mixed):
		panic("orca: Shards requires the pure broadcast runtime (RTS: Broadcast, not Mixed)")
	case cfg.ShardSpan != 0 && cfg.Shards <= 1:
		panic("orca: ShardSpan requires Shards > 1")
	case cfg.Shards > 1:
		rt.shardRT = buildSharded()
		rt.sys = rt.shardRT
	case cfg.Mixed:
		// Both managers share the machines and the group members; the
		// RTS kind only picks where Default-policy objects live. Forks
		// always travel the broadcast total order.
		br := buildBroadcast()
		p2p := rts.NewP2PRTS(rt.reg, rc, p2pConfig(), rt.machines)
		rt.sys = rts.NewMixedRTS(br, p2p, cfg.RTS == Broadcast)
	case cfg.RTS == Broadcast:
		rt.sys = buildBroadcast()
	default:
		rt.sys = rts.NewP2PRTS(rt.reg, rc, p2pConfig(), rt.machines)
		for _, m := range rt.machines {
			m.Bind("orca-fork", func(p *sim.Proc, from int, pkt amoeba.Packet) {
				rt.startFork(pkt.Body.(forkMsg).FID)
			})
		}
	}
	rt.fastRead, _ = rt.sys.(rts.LocalReader)
	// Arm the fault plan last: link faults filter at the wire, and
	// each crash entry fires rt.crashNode at its instant.
	rt.net.InstallFaults(cfg.Faults, rt.crashNode)
	return rt
}

// startFork launches a previously registered fork on its target
// processor. Called from delivery context when the fork message
// arrives.
func (rt *Runtime) startFork(fid int64) {
	fe, ok := rt.forks[fid]
	if !ok {
		return
	}
	delete(rt.forks, fid)
	rt.spawnProc(fe.cpu, fe.name, fe.fn)
}

// System exposes the runtime system (for harness statistics).
func (rt *Runtime) System() rts.System { return rt.sys }

// Net exposes the simulated network (for harness statistics).
func (rt *Runtime) Net() *netsim.Network { return rt.net }

// Machines exposes the simulated kernels.
func (rt *Runtime) Machines() []*amoeba.Machine { return rt.machines }

// Stats returns the unified runtime-system counter snapshot: a pure
// broadcast runtime fills the broadcast fields, a pure point-to-point
// runtime the p2p fields, and a mixed runtime merges both.
func (rt *Runtime) Stats() rts.RTSStats {
	if src, ok := rt.sys.(rts.StatsSource); ok {
		return src.Counters()
	}
	return rts.RTSStats{}
}

// GroupStats returns per-member broadcast protocol counters (empty for
// the point-to-point runtimes).
func (rt *Runtime) GroupStats() []group.Stats {
	var out []group.Stats
	for _, g := range rt.members {
		out = append(out, g.Stats())
	}
	return out
}

// Env exposes the simulation environment.
func (rt *Runtime) Env() *sim.Env { return rt.env }

// Histogram returns the named virtual-latency histogram, creating an
// empty one on first use. Programs record request→completion virtual
// durations into histograms (serving workloads: one per op class);
// every histogram touched during a run is published in
// Report.Latency. Purely observational — recording never changes
// simulated timing.
func (rt *Runtime) Histogram(name string) *rts.LatencyHist {
	h, ok := rt.hists[name]
	if !ok {
		h = &rts.LatencyHist{}
		rt.hists[name] = h
	}
	return h
}

// Histogram returns the runtime's named virtual-latency histogram
// (see Runtime.Histogram).
func (p *Proc) Histogram(name string) *rts.LatencyHist { return p.rt.Histogram(name) }

// Report summarizes one program run.
type Report struct {
	// Elapsed is the virtual time from program start to the
	// completion of the last process.
	Elapsed sim.Time
	// TimedOut reports that MaxTime expired first.
	TimedOut bool
	// Net is the wire-level statistics snapshot.
	Net netsim.Stats
	// RTS is the unified runtime-system counter snapshot (see
	// Runtime.Stats).
	RTS rts.RTSStats
	// Shards holds each sequencer group's own counter snapshot when
	// the runtime is sharded (Config.Shards > 1); RTS is their merge.
	// Nil otherwise.
	Shards []rts.RTSStats
	// CPUBusy is each machine's total CPU-busy time (kernel +
	// application).
	CPUBusy []sim.Time
	// AppBusy is each machine's application compute time.
	AppBusy []sim.Time
	// Blocked lists the simulated threads still parked when a run
	// timed out — the first place to look at a deadlocked program.
	Blocked []string
	// Crashes lists the machine crashes the fault plan executed, in
	// crash order, with per-crash process accounting.
	Crashes []CrashRecord
	// Latency holds the virtual-latency histograms the program
	// recorded (see Runtime.Histogram), keyed by name. Nil when the
	// program recorded none. Render percentiles in sorted-name order:
	// the map itself iterates nondeterministically.
	Latency map[string]*rts.LatencyHist
	// Placements reports every adaptive object's final placement
	// ("replicated" or "primary@N") when the program created adaptive
	// objects (see orca.Adaptive); nil otherwise. Iterate in sorted
	// ObjID order for deterministic output.
	Placements map[rts.ObjID]string
}

// Run executes main as the program's main Orca process on processor 0
// and returns the run report. Run may be called once per Runtime.
func (rt *Runtime) Run(main func(p *Proc)) Report {
	rt.started = rt.env.Now()
	rt.forkOn(0, "main", main)
	rt.env.RunUntil(rt.cfg.MaxTime)
	if rt.liveProcs > 0 {
		rt.timedOut = true
	}
	rt.env.Stop()
	rep := Report{
		Elapsed:  rt.env.Now() - rt.started,
		TimedOut: rt.timedOut,
		Net:      rt.net.Stats(),
		RTS:      rt.Stats(),
		Crashes:  rt.Crashes(),
	}
	if rt.shardRT != nil {
		rep.Shards = rt.shardRT.ShardStats()
	}
	if mx, ok := rt.sys.(*rts.MixedRTS); ok {
		rep.Placements = mx.AdaptivePlacements()
	}
	if len(rt.hists) > 0 {
		rep.Latency = rt.hists
	}
	if rt.timedOut {
		rep.Blocked = rt.env.Blocked()
	}
	for _, m := range rt.machines {
		rep.CPUBusy = append(rep.CPUBusy, m.CPU().BusyTime())
		rep.AppBusy = append(rep.AppBusy, m.AppBusy())
	}
	rt.env.Shutdown()
	return rep
}

// forkOn starts an Orca process on a processor, counting it live from
// this instant (so the run cannot terminate while forks are in
// flight).
func (rt *Runtime) forkOn(cpu int, name string, fn func(p *Proc)) {
	if cpu < 0 || cpu >= len(rt.machines) {
		panic(fmt.Sprintf("orca: fork on invalid processor %d", cpu))
	}
	rt.liveProcs++
	rt.spawnProc(cpu, name, fn)
}

// spawnProc starts the process thread. The caller has already counted
// it in liveProcs.
func (rt *Runtime) spawnProc(cpu int, name string, fn func(p *Proc)) {
	m := rt.machines[cpu]
	rec := &procRec{node: cpu}
	rt.procs = append(rt.procs, rec)
	m.SpawnThread(name, func(sp *sim.Proc) {
		defer func() {
			if sp.Killed() {
				// The machine crashed under this process: crashNode
				// already settled the accounting, and this goroutine is
				// unwinding concurrently with its machine-mates during
				// Shutdown — it must not touch shared state.
				return
			}
			rec.done = true
			rt.liveProcs--
			if rt.liveProcs == 0 {
				rt.env.Stop()
			}
		}()
		p := &Proc{rt: rt, w: rts.NewWorker(sp, m)}
		fn(p)
		p.w.Flush()
		// Drain the write-combining buffer: a process's final writes
		// (a barrier arrival, an accumulator update) must reach the
		// total order before the process counts as done.
		p.w.SyncShared()
	})
}

// Object is a handle to a shared data-object. Handles are passed to
// forked processes exactly like Orca's shared call-by-reference
// parameters; the object's replicas live inside the runtime system.
type Object struct {
	id rts.ObjID
	rt *Runtime
}

// ID exposes the runtime object id (for harness statistics).
func (o Object) ID() rts.ObjID { return o.id }

// Proc is the execution context of one Orca process.
type Proc struct {
	rt *Runtime
	w  *rts.Worker
}

// Runtime returns the owning runtime.
func (p *Proc) Runtime() *Runtime { return p.rt }

// CPU reports the processor this process runs on.
func (p *Proc) CPU() int { return p.w.Node() }

// Procs reports the number of processors in the machine.
func (p *Proc) Procs() int { return p.rt.cfg.Processors }

// Now reports current virtual time (flushing pending work first, so
// timestamps are accurate).
func (p *Proc) Now() sim.Time {
	p.w.Flush()
	return p.w.P.Now()
}

// Work charges d of computation to this process's processor.
func (p *Proc) Work(d sim.Time) { p.w.Charge(d) }

// Sleep idles the process for d of virtual time.
func (p *Proc) Sleep(d sim.Time) {
	p.w.Flush()
	p.w.FlushShared() // buffered writes should not sit out the sleep
	p.w.P.Sleep(d)
}

// New creates a shared object of a registered type.
func (p *Proc) New(typeName string, args ...any) Object {
	return Object{id: p.rt.sys.Create(p.w, typeName, args...), rt: p.rt}
}

// NewOn creates a shared object replicated only on the given
// processors — the paper's partial-replication optimization ("an
// optimizing scheme using partial replication is under development").
// Operations from other processors are forwarded to a replica holder.
// Nil nodes means full replication.
//
// Deprecated: use NewWith with With(ReplicatedOn(nodes...)).
func (p *Proc) NewOn(typeName string, nodes []int, args ...any) Object {
	return p.NewWith(typeName, Opts(With(Replicated), At(nodes...)), args...)
}

// Fork creates a new Orca process running fn on the given processor
// (the paper's `fork func(args) on cpu`; cpu < 0 means the current
// one). Shared objects are passed by closing over their handles,
// mirroring Orca's call-by-reference object parameters.
//
// Remote forks travel as messages: under the broadcast runtime the
// fork joins the same total order as object writes, and under the
// point-to-point runtime it is a kernel message to the target. Either
// way a child never observes the shared objects as they were before
// its parent's preceding writes.
func (p *Proc) Fork(cpu int, name string, fn func(p *Proc)) {
	rt := p.rt
	if cpu < 0 {
		cpu = p.CPU()
	}
	if cpu >= len(rt.machines) {
		panic(fmt.Sprintf("orca: fork on invalid processor %d", cpu))
	}
	if rt.machines[cpu].Crashed() {
		panic(fmt.Sprintf("orca: fork on crashed processor %d", cpu))
	}
	p.w.Flush()
	// The child must observe every write its parent issued before the
	// fork: drain the combining buffer before the fork message joins
	// the total order.
	p.w.SyncShared()
	if cpu == p.CPU() {
		// A local fork needs no wire: the local replica already
		// reflects every write this process completed.
		rt.forkOn(cpu, name, fn)
		return
	}
	rt.forkSeq++
	fid := rt.forkSeq
	rt.forks[fid] = forkEntry{name: name, cpu: cpu, origin: p.CPU(), fn: fn}
	rt.liveProcs++
	msg := forkMsg{FID: fid, Target: cpu}
	if rt.shardRT != nil {
		// The fork travels as a barrier fence: it starts on the target
		// only after every shard spanning both machines has delivered
		// it there, so the child observes all of this process's
		// preceding writes in every one of those shards. Disjoint
		// replication domains (no common shard) fall back to a kernel
		// message with point-to-point fork ordering.
		if !rt.shardRT.ForkFence(p.w, cpu, msg, 32) {
			rt.machines[p.CPU()].Send(p.w.P, cpu, amoeba.Packet{
				Port: "orca-fork", Kind: "orca-fork", Body: msg, Size: 32,
			})
		}
		return
	}
	if len(rt.members) > 0 {
		rt.members[p.CPU()].Broadcast(p.w.P, "orca-fork", msg, 32)
		return
	}
	rt.machines[p.CPU()].Send(p.w.P, cpu, amoeba.Packet{
		Port: "orca-fork", Kind: "orca-fork", Body: msg, Size: 32,
	})
}

// Invoke performs an operation on a shared object: sequentially
// consistent, indivisible, blocking on guards. A local read's result
// slice may alias a per-worker scratch buffer: it is valid until this
// process's next operation, so a caller that retains results across
// operations must copy them first. (All wrapper layers consume results
// immediately.)
func (p *Proc) Invoke(o Object, op string, args ...any) []any {
	return p.rt.sys.Invoke(p.w, o.id, op, args...)
}

// readState is the typed descriptors' local-read fast path: when the
// runtime can serve an unguarded read from the local replica, it
// charges the read (exactly as Invoke would) and returns the state for
// the caller to apply its typed operation directly — no []any
// argument boxing, no result allocation. ok == false means the caller
// must take the general Invoke path.
func (p *Proc) readState(o Object, def *rts.OpDef) (rts.State, bool) {
	if p.rt.fastRead == nil {
		return nil, false
	}
	return p.rt.fastRead.LocalReadState(p.w, o.id, def)
}

// InvokeI is Invoke for the common single-int-result case.
func (p *Proc) InvokeI(o Object, op string, args ...any) int {
	return p.rt.sys.Invoke(p.w, o.id, op, args...)[0].(int)
}

// InvokeB is Invoke for the single-bool-result case.
func (p *Proc) InvokeB(o Object, op string, args ...any) bool {
	return p.rt.sys.Invoke(p.w, o.id, op, args...)[0].(bool)
}

// FencedOp names one write of a cross-shard fenced invocation.
type FencedOp struct {
	Obj  Object
	Op   string
	Args []any
}

// InvokeFenced applies a set of unguarded writes on objects that may
// live in different shards as one indivisible step: no operation on any
// touched shard is ordered between them. The fence reserves a slot in
// every touched shard (in ascending shard order), pauses each shard's
// delivery at its slot, executes all the writes, and releases the
// shards — a sequenced two-phase barrier, not a lock. Results are not
// returned; fenced operations are writes issued for effect (a
// transfer, a multi-object commit).
//
// Requires the sharded runtime: on any other runtime a single group
// already orders all writes totally and a fence is meaningless, so
// this panics rather than silently degrading.
func (p *Proc) InvokeFenced(ops ...FencedOp) {
	if p.rt.shardRT == nil {
		panic("orca: InvokeFenced requires Config.Shards > 1")
	}
	if len(ops) == 0 {
		return
	}
	rops := make([]rts.FencedOp, len(ops))
	for i, op := range ops {
		rops[i] = rts.FencedOp{ID: op.Obj.id, Op: op.Op, Args: op.Args}
	}
	p.rt.shardRT.InvokeFenced(p.w, rops)
}
