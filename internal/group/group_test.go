package group

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/amoeba"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// harness wires n machines into one group and collects per-node
// delivery logs.
type harness struct {
	env     *sim.Env
	net     *netsim.Network
	ms      []*amoeba.Machine
	gs      []*Member
	logs    [][]Delivery
	uidLogs [][]int64
}

func newHarness(seed int64, n int, netMut func(*netsim.Params), cfgMut func(*Config)) *harness {
	env := sim.New(seed)
	np := netsim.DefaultParams()
	if netMut != nil {
		netMut(&np)
	}
	nw := netsim.New(env, n, np)
	h := &harness{env: env, net: nw}
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	cfg := DefaultConfig(members)
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	h.ms = make([]*amoeba.Machine, n)
	h.gs = make([]*Member, n)
	h.logs = make([][]Delivery, n)
	h.uidLogs = make([][]int64, n)
	for i := 0; i < n; i++ {
		h.ms[i] = amoeba.NewMachine(env, nw, i, amoeba.DefaultCosts())
		h.gs[i] = Join(h.ms[i], cfg)
		i := i
		h.ms[i].SpawnThread("consumer", func(p *sim.Proc) {
			for {
				d, ok := h.gs[i].Deliveries().Get(p)
				if !ok {
					return
				}
				h.logs[i] = append(h.logs[i], d)
				if !d.Dup {
					// Dup records are suppressed re-deliveries that only
					// carry a frame boundary; agreement is over the
					// applied stream.
					h.uidLogs[i] = append(h.uidLogs[i], d.UID)
				}
			}
		})
	}
	return h
}

// checkAgreement verifies all live nodes delivered identical uid
// sequences of the expected length.
func (h *harness) checkAgreement(t *testing.T, want int, skip map[int]bool) {
	t.Helper()
	var ref []int64
	refNode := -1
	for i := range h.gs {
		if skip[i] {
			continue
		}
		if ref == nil {
			ref, refNode = h.uidLogs[i], i
			continue
		}
		if len(h.uidLogs[i]) != len(ref) {
			t.Fatalf("node %d delivered %d msgs, node %d delivered %d",
				i, len(h.uidLogs[i]), refNode, len(ref))
		}
		for k := range ref {
			if h.uidLogs[i][k] != ref[k] {
				t.Fatalf("node %d and %d disagree at position %d", i, refNode, k)
			}
		}
	}
	if want >= 0 && len(ref) != want {
		t.Fatalf("delivered %d messages, want %d", len(ref), want)
	}
}

func TestBroadcastTotalOrderLossless(t *testing.T) {
	for _, method := range []Method{Auto, ForcePB, ForceBB} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			h := newHarness(11, 4, nil, func(c *Config) { c.Method = method })
			const perNode = 25
			for i := range h.ms {
				i := i
				h.ms[i].SpawnThread("producer", func(p *sim.Proc) {
					for k := 0; k < perNode; k++ {
						h.gs[i].Broadcast(p, "msg", fmt.Sprintf("n%d-%d", i, k), 100)
						p.Sleep(sim.Time(1+i) * sim.Millisecond)
					}
				})
			}
			h.env.RunUntil(20 * sim.Second)
			h.checkAgreement(t, 4*perNode, nil)
			h.env.Stop()
			h.env.Shutdown()
		})
	}
}

func TestSenderSeesOwnMessage(t *testing.T) {
	h := newHarness(3, 3, nil, nil)
	h.ms[1].SpawnThread("producer", func(p *sim.Proc) {
		h.gs[1].Broadcast(p, "m", "hello", 50)
	})
	h.env.RunUntil(sim.Second)
	for i := 0; i < 3; i++ {
		if len(h.logs[i]) != 1 || h.logs[i][0].Body.(string) != "hello" {
			t.Fatalf("node %d log = %v", i, h.logs[i])
		}
		if h.logs[i][0].Src != 1 {
			t.Fatalf("src = %d, want 1", h.logs[i][0].Src)
		}
	}
	h.env.Stop()
	h.env.Shutdown()
}

func TestAutoMethodSelection(t *testing.T) {
	h := newHarness(5, 3, nil, nil)
	h.ms[1].SpawnThread("producer", func(p *sim.Proc) {
		h.gs[1].Broadcast(p, "small", "x", 100)  // fits one packet -> PB
		h.gs[1].Broadcast(p, "large", "y", 5000) // fragments -> BB
	})
	h.env.RunUntil(sim.Second)
	st := h.gs[1].Stats()
	if st.PBSends != 1 || st.BBSends != 1 {
		t.Fatalf("PB=%d BB=%d, want 1 and 1", st.PBSends, st.BBSends)
	}
	h.checkAgreement(t, 2, nil)
	h.env.Stop()
	h.env.Shutdown()
}

// TestPBInterruptsAndBandwidth checks the paper's §3.1 analysis: with
// PB a message of length m consumes ~2m bandwidth but interrupts each
// user machine once; with BB it consumes ~m plus a short Accept but
// interrupts every machine twice.
func TestPBInterruptsAndBandwidth(t *testing.T) {
	const payload = 1000
	run := func(method Method) (wire int64, interruptsPerUserMachine int64) {
		h := newHarness(9, 4, nil, func(c *Config) {
			c.Method = method
			c.Heartbeat = 0 // keep the wire clean for exact accounting
			c.StatusEvery = 0
		})
		// Node 3 sends; node 0 is sequencer; nodes 1,2 are "user
		// machines" in the paper's sense.
		h.ms[3].SpawnThread("producer", func(p *sim.Proc) {
			h.gs[3].Broadcast(p, "m", "payload", payload)
		})
		h.env.RunUntil(2 * sim.Second)
		s := h.net.Stats()
		h.env.Stop()
		h.env.Shutdown()
		return s.WireBytes, s.Interrupts[1]
	}
	pbWire, pbIntr := run(ForcePB)
	bbWire, bbIntr := run(ForceBB)
	if pbIntr != 1 {
		t.Errorf("PB interrupts per user machine = %d, want 1", pbIntr)
	}
	if bbIntr != 2 {
		t.Errorf("BB interrupts per user machine = %d, want 2 (data + accept)", bbIntr)
	}
	// PB: message appears twice on the wire. BB: once plus an accept.
	if pbWire < 2*payload || pbWire > 2*payload+300 {
		t.Errorf("PB wire bytes = %d, want ~%d", pbWire, 2*payload)
	}
	if bbWire < payload || bbWire > payload+300 {
		t.Errorf("BB wire bytes = %d, want ~%d", bbWire, payload)
	}
	if bbWire >= pbWire {
		t.Errorf("BB (%d) should use less bandwidth than PB (%d)", bbWire, pbWire)
	}
}

func TestTotalOrderUnderLoss(t *testing.T) {
	for _, method := range []Method{ForcePB, ForceBB} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			h := newHarness(23, 4, func(p *netsim.Params) { p.DropProb = 0.15 },
				func(c *Config) {
					c.Method = method
					c.SenderTimeout = 60 * sim.Millisecond
					c.GapTimeout = 30 * sim.Millisecond
					c.Heartbeat = 100 * sim.Millisecond
				})
			const perNode = 15
			for i := range h.ms {
				i := i
				h.ms[i].SpawnThread("producer", func(p *sim.Proc) {
					for k := 0; k < perNode; k++ {
						h.gs[i].Broadcast(p, "msg", k, 200)
						p.Sleep(sim.Time(3+i) * sim.Millisecond)
					}
				})
			}
			h.env.RunUntil(60 * sim.Second)
			h.checkAgreement(t, 4*perNode, nil)
			h.env.Stop()
			h.env.Shutdown()
		})
	}
}

// Property: for random seeds and loss rates, every member delivers the
// same uid sequence with no duplicates and nothing missing.
func TestTotalOrderProperty(t *testing.T) {
	f := func(seed int64, lossTenths uint8) bool {
		loss := float64(lossTenths%3) / 10 // 0, 0.1, 0.2
		h := newHarness(seed, 3, func(p *netsim.Params) { p.DropProb = loss },
			func(c *Config) {
				c.SenderTimeout = 60 * sim.Millisecond
				c.GapTimeout = 30 * sim.Millisecond
				c.Heartbeat = 100 * sim.Millisecond
			})
		const perNode = 8
		for i := range h.ms {
			i := i
			h.ms[i].SpawnThread("producer", func(p *sim.Proc) {
				for k := 0; k < perNode; k++ {
					h.gs[i].Broadcast(p, "msg", k, 120)
					p.Sleep(sim.Time(2+i) * sim.Millisecond)
				}
			})
		}
		h.env.RunUntil(120 * sim.Second)
		defer func() { h.env.Stop(); h.env.Shutdown() }()
		// Agreement + no dups + completeness.
		seen := map[int64]int{}
		for _, uid := range h.uidLogs[0] {
			seen[uid]++
		}
		if len(h.uidLogs[0]) != 3*perNode || len(seen) != 3*perNode {
			return false
		}
		for i := 1; i < 3; i++ {
			if len(h.uidLogs[i]) != len(h.uidLogs[0]) {
				return false
			}
			for k := range h.uidLogs[0] {
				if h.uidLogs[i][k] != h.uidLogs[0][k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestSequencerCrashElection(t *testing.T) {
	h := newHarness(31, 4, nil, func(c *Config) {
		c.SenderTimeout = 50 * sim.Millisecond
		c.SenderRetries = 2
		c.ElectionWait = 80 * sim.Millisecond
		c.Heartbeat = 100 * sim.Millisecond
	})
	// Sequencer is node 0. Send some traffic, crash it, keep sending.
	for i := 1; i < 4; i++ {
		i := i
		h.ms[i].SpawnThread("producer", func(p *sim.Proc) {
			for k := 0; k < 10; k++ {
				h.gs[i].Broadcast(p, "pre", k, 100)
				p.Sleep(2 * sim.Millisecond)
			}
			p.Sleep(100 * sim.Millisecond) // let phase 1 settle
			if i == 1 {
				h.ms[0].Crash()
			}
			for k := 0; k < 10; k++ {
				h.gs[i].Broadcast(p, "post", k, 100)
				p.Sleep(2 * sim.Millisecond)
			}
		})
	}
	h.env.RunUntil(30 * sim.Second)
	skip := map[int]bool{0: true}
	h.checkAgreement(t, 60, skip)
	// A new sequencer must have emerged among survivors.
	newSeq := h.gs[1].Sequencer()
	if newSeq == 0 {
		t.Fatal("sequencer still node 0 after crash")
	}
	for i := 1; i < 4; i++ {
		if h.gs[i].Sequencer() != newSeq {
			t.Fatalf("node %d disagrees on sequencer: %d vs %d", i, h.gs[i].Sequencer(), newSeq)
		}
	}
	h.env.Stop()
	h.env.Shutdown()
}

func TestSequencerCrashWithLoss(t *testing.T) {
	h := newHarness(37, 4, func(p *netsim.Params) { p.DropProb = 0.1 },
		func(c *Config) {
			c.SenderTimeout = 40 * sim.Millisecond
			c.SenderRetries = 2
			c.GapTimeout = 20 * sim.Millisecond
			c.ElectionWait = 60 * sim.Millisecond
			c.Heartbeat = 80 * sim.Millisecond
		})
	for i := 1; i < 4; i++ {
		i := i
		h.ms[i].SpawnThread("producer", func(p *sim.Proc) {
			for k := 0; k < 8; k++ {
				h.gs[i].Broadcast(p, "pre", k, 100)
				p.Sleep(3 * sim.Millisecond)
			}
			p.Sleep(200 * sim.Millisecond)
			if i == 1 {
				h.ms[0].Crash()
			}
			for k := 0; k < 8; k++ {
				h.gs[i].Broadcast(p, "post", k, 100)
				p.Sleep(3 * sim.Millisecond)
			}
		})
	}
	h.env.RunUntil(120 * sim.Second)
	h.checkAgreement(t, 48, map[int]bool{0: true})
	h.env.Stop()
	h.env.Shutdown()
}

func TestHistoryTrimming(t *testing.T) {
	h := newHarness(41, 3, nil, func(c *Config) {
		c.StatusEvery = 8
	})
	h.ms[1].SpawnThread("producer", func(p *sim.Proc) {
		for k := 0; k < 200; k++ {
			h.gs[1].Broadcast(p, "m", k, 64)
			p.Sleep(sim.Millisecond)
		}
	})
	h.env.RunUntil(10 * sim.Second)
	seq := h.gs[0] // node 0 is sequencer
	if !seq.IsSequencer() {
		t.Fatal("node 0 should be sequencer")
	}
	if n := seq.historyLen(); n > 64 {
		t.Fatalf("history holds %d entries after trimming, want <= 64", n)
	}
	h.checkAgreement(t, 200, nil)
	h.env.Stop()
	h.env.Shutdown()
}

func TestThroughputManySenders(t *testing.T) {
	h := newHarness(43, 8, nil, nil)
	const perNode = 50
	for i := range h.ms {
		i := i
		h.ms[i].SpawnThread("producer", func(p *sim.Proc) {
			for k := 0; k < perNode; k++ {
				h.gs[i].Broadcast(p, "m", k, 128)
				p.Sleep(500 * sim.Microsecond)
			}
		})
	}
	h.env.RunUntil(60 * sim.Second)
	h.checkAgreement(t, 8*perNode, nil)
	h.env.Stop()
	h.env.Shutdown()
}

func TestDeterministicDeliveryOrder(t *testing.T) {
	run := func() []int64 {
		h := newHarness(99, 4, nil, nil)
		for i := range h.ms {
			i := i
			h.ms[i].SpawnThread("producer", func(p *sim.Proc) {
				for k := 0; k < 10; k++ {
					h.gs[i].Broadcast(p, "m", k, 64)
					p.Sleep(sim.Millisecond)
				}
			})
		}
		h.env.RunUntil(10 * sim.Second)
		out := append([]int64(nil), h.uidLogs[0]...)
		h.env.Stop()
		h.env.Shutdown()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic delivery count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic delivery order")
		}
	}
}
