// API v2: the typed shared-object surface.
//
// The wire-level model underneath (internal/rts) is stringly typed:
// operations are names plus []any argument lists returning []any
// result lists, because that is what travels between machines. Orca
// itself never exposed that to the programmer — the compiler checked
// every operation against the object's abstract type. This file plays
// the compiler's role for the embedded API: a TypeBuilder[S] declares
// an object type over its concrete state S, typed operation
// descriptors (ReadOp, WriteOp, UpdateOp, AwaitOp and their arity
// variants) carry the argument and result types in their type
// parameters, and Handle[S] ties an object instance to its state
// type. Invoking a descriptor on a handle of the wrong type, with the
// wrong argument types, or expecting the wrong results is a compile
// error, exactly as it would be in Orca.
//
// The descriptors delegate to the untyped Proc.Invoke, which remains
// available as the dynamic escape hatch (and as the layer the rts
// tests and protocol ablations exercise directly); the typed surface
// is a facade over the existing runtime, not a fork of it.
package orca

import (
	"fmt"

	"repro/internal/rts"
	"repro/internal/sim"
)

// Handle is a typed handle to a shared data-object whose replicated
// state is S. Like Object, a Handle is passed to forked processes by
// closure, mirroring Orca's shared call-by-reference parameters; the
// zero Handle is invalid until assigned from New/NewWith.
type Handle[S rts.State] struct {
	o Object
}

// Untyped returns the untyped object handle (for statistics and for
// mixing with the dynamic Invoke surface).
func (h Handle[S]) Untyped() Object { return h.o }

// ID exposes the runtime object id (for harness statistics).
func (h Handle[S]) ID() rts.ObjID { return h.o.ID() }

// TypeBuilder declares an object type whose state is S. Build one with
// NewType, chain the state-management hooks fluently, attach typed
// operations with the Def* functions, and register the result with
// Register. The builder owns an ordinary *rts.ObjectType underneath,
// so typed and untyped invocations dispatch to the same definitions.
type TypeBuilder[S rts.State] struct {
	t *rts.ObjectType
}

// NewType starts a type definition. ctor builds the initial state from
// the (positional, untyped) constructor arguments — constructor calls
// originate locally in New, so the typed wrapper layer gives them
// typed signatures.
func NewType[S rts.State](name string, ctor func(args []any) S) *TypeBuilder[S] {
	return &TypeBuilder[S]{t: &rts.ObjectType{
		Name: name,
		New:  func(args []any) rts.State { return ctor(args) },
		Ops:  make(map[string]*rts.OpDef),
	}}
}

// CloneWith sets the deep-copy hook the point-to-point runtime uses to
// transfer replicas; fn must return a state disjoint from its input.
func (b *TypeBuilder[S]) CloneWith(fn func(S) S) *TypeBuilder[S] {
	b.t.Clone = func(s rts.State) rts.State { return fn(s.(S)) }
	return b
}

// SizedBy sets the state-size estimator (replica segment sizing and
// state-transfer message sizes).
func (b *TypeBuilder[S]) SizedBy(fn func(S) int) *TypeBuilder[S] {
	b.t.SizeOf = func(s rts.State) int { return fn(s.(S)) }
	return b
}

// FixedSize declares a constant state size in bytes, letting the
// runtimes skip per-write segment resizing.
func (b *TypeBuilder[S]) FixedSize(n int) *TypeBuilder[S] {
	b.t.SizeOf = func(rts.State) int { return n }
	b.t.SizeFixed = true
	return b
}

// Type returns the underlying rts type definition.
func (b *TypeBuilder[S]) Type() *rts.ObjectType { return b.t }

// Register adds the built type to a registry.
func (b *TypeBuilder[S]) Register(reg *rts.Registry) { reg.Register(b.t) }

// New creates a shared object of this type, returning a typed handle.
func (b *TypeBuilder[S]) New(p *Proc, args ...any) Handle[S] {
	return Handle[S]{o: p.New(b.t.Name, args...)}
}

// NewWith creates a shared object of this type under the given
// creation options (see Proc.NewWith and Policy), returning a typed
// handle. With no options it is exactly New.
func (b *TypeBuilder[S]) NewWith(p *Proc, opts []Option, args ...any) Handle[S] {
	return Handle[S]{o: p.NewWith(b.t.Name, opts, args...)}
}

// NewOn creates a partially replicated shared object of this type.
//
// Deprecated: use NewWith with With(ReplicatedOn(nodes...)).
func (b *TypeBuilder[S]) NewOn(p *Proc, nodes []int, args ...any) Handle[S] {
	return b.NewWith(p, Opts(With(Replicated), At(nodes...)), args...)
}

// addOp wraps a typed apply into the positional wire encoding and
// registers it under name. All descriptors funnel through here, so an
// object type's operations are exactly its descriptors.
//
// The typed apply is append-style: it appends its results to dst and
// returns the extended slice. That one shape yields both OpDef.Apply
// (dst = nil, a fresh slice per call, safe to retain) and
// OpDef.ApplyInto (caller-provided scratch, the runtimes' zero-alloc
// local-read path).
func addOp[S rts.State](b *TypeBuilder[S], name string, kind rts.OpKind,
	apply func(s S, a []any, dst []any) []any) *rts.OpDef {
	if _, dup := b.t.Ops[name]; dup {
		panic(fmt.Sprintf("orca: type %s redefines operation %q", b.t.Name, name))
	}
	def := &rts.OpDef{
		Name: name,
		Kind: kind,
		Apply: func(s rts.State, a []any) []any {
			return apply(s.(S), a, nil)
		},
		ApplyInto: func(s rts.State, a []any, dst []any) []any {
			return apply(s.(S), a, dst)
		},
	}
	b.t.Ops[name] = def
	return def
}

// as decodes one wire result into its static type, mapping an absent
// (nil) slot to the zero value — results legitimately carry nil in
// "not found" slots (e.g. a drained queue's (nil, false)).
func as[T any](v any) T {
	if v == nil {
		var zero T
		return zero
	}
	return v.(T)
}

// argAs decodes one wire argument. Arguments are stricter than
// results: a nil is only legal when T itself can hold nil (an
// interface-typed parameter), and a wrong type panics at the call
// site, exactly as the direct assertions of the untyped layer always
// did — the typed facade must not weaken the dynamic path's checking.
func argAs[T any](v any) T {
	if t, ok := v.(T); ok {
		return t
	}
	if v == nil {
		var zero T
		if any(zero) == nil {
			return zero // T is an interface type: nil is its zero value
		}
	}
	return v.(T) // panics with the runtime's standard conversion error
}

// ---------------------------------------------------------------------
// Read operations. Reads never change the state; the runtime executes
// them on the local replica when one exists.

// ReadOp0 is a read taking no arguments and returning R. Read
// descriptors keep their raw typed apply so unguarded local reads can
// skip the []any wire encoding entirely (see Proc.readState).
type ReadOp0[S rts.State, R any] struct {
	def   *rts.OpDef
	apply func(S) R
}

// DefRead0 attaches a no-argument read to a type.
func DefRead0[S rts.State, R any](b *TypeBuilder[S], name string, apply func(S) R) ReadOp0[S, R] {
	return ReadOp0[S, R]{def: addOp(b, name, rts.Read, func(s S, _ []any, dst []any) []any {
		return append(dst, apply(s))
	}), apply: apply}
}

// Guard makes the read blocking: it suspends until g is true.
func (op ReadOp0[S, R]) Guard(g func(S) bool) ReadOp0[S, R] {
	op.def.Guard = func(s rts.State, _ []any) bool { return g(s.(S)) }
	return op
}

// Cost sets the operation's virtual CPU cost.
func (op ReadOp0[S, R]) Cost(d sim.Time) ReadOp0[S, R] { op.def.CPUCost = d; return op }

// Call performs the operation on h.
func (op ReadOp0[S, R]) Call(p *Proc, h Handle[S]) R {
	if s, ok := p.readState(h.o, op.def); ok {
		return op.apply(s.(S))
	}
	return as[R](p.Invoke(h.o, op.def.Name)[0])
}

// ReadOp is a read taking one argument A and returning R — the
// canonical typed operation shape.
type ReadOp[S rts.State, A, R any] struct {
	def   *rts.OpDef
	apply func(S, A) R
}

// DefRead attaches a one-argument read to a type.
func DefRead[S rts.State, A, R any](b *TypeBuilder[S], name string, apply func(S, A) R) ReadOp[S, A, R] {
	return ReadOp[S, A, R]{def: addOp(b, name, rts.Read, func(s S, a []any, dst []any) []any {
		return append(dst, apply(s, argAs[A](a[0])))
	}), apply: apply}
}

// Guard makes the read blocking; the guard sees the argument.
func (op ReadOp[S, A, R]) Guard(g func(S, A) bool) ReadOp[S, A, R] {
	op.def.Guard = func(s rts.State, a []any) bool { return g(s.(S), argAs[A](a[0])) }
	return op
}

// Cost sets the operation's virtual CPU cost.
func (op ReadOp[S, A, R]) Cost(d sim.Time) ReadOp[S, A, R] { op.def.CPUCost = d; return op }

// Call performs the operation on h.
func (op ReadOp[S, A, R]) Call(p *Proc, h Handle[S], arg A) R {
	if s, ok := p.readState(h.o, op.def); ok {
		return op.apply(s.(S), arg)
	}
	return as[R](p.Invoke(h.o, op.def.Name, arg)[0])
}

// ReadOp1x2 is a read taking one argument and returning two results
// (the lookup-style (value, ok) shape).
type ReadOp1x2[S rts.State, A, R1, R2 any] struct {
	def   *rts.OpDef
	apply func(S, A) (R1, R2)
}

// DefRead1x2 attaches a one-argument, two-result read to a type.
func DefRead1x2[S rts.State, A, R1, R2 any](b *TypeBuilder[S], name string, apply func(S, A) (R1, R2)) ReadOp1x2[S, A, R1, R2] {
	return ReadOp1x2[S, A, R1, R2]{def: addOp(b, name, rts.Read, func(s S, a []any, dst []any) []any {
		r1, r2 := apply(s, argAs[A](a[0]))
		return append(dst, r1, r2)
	}), apply: apply}
}

// Cost sets the operation's virtual CPU cost.
func (op ReadOp1x2[S, A, R1, R2]) Cost(d sim.Time) ReadOp1x2[S, A, R1, R2] {
	op.def.CPUCost = d
	return op
}

// Call performs the operation on h.
func (op ReadOp1x2[S, A, R1, R2]) Call(p *Proc, h Handle[S], arg A) (R1, R2) {
	if s, ok := p.readState(h.o, op.def); ok {
		return op.apply(s.(S), arg)
	}
	res := p.Invoke(h.o, op.def.Name, arg)
	return as[R1](res[0]), as[R2](res[1])
}

// ReadOp2x2 is a read taking two arguments and returning two results.
type ReadOp2x2[S rts.State, A1, A2, R1, R2 any] struct {
	def   *rts.OpDef
	apply func(S, A1, A2) (R1, R2)
}

// DefRead2x2 attaches a two-argument, two-result read to a type.
func DefRead2x2[S rts.State, A1, A2, R1, R2 any](b *TypeBuilder[S], name string, apply func(S, A1, A2) (R1, R2)) ReadOp2x2[S, A1, A2, R1, R2] {
	return ReadOp2x2[S, A1, A2, R1, R2]{def: addOp(b, name, rts.Read, func(s S, a []any, dst []any) []any {
		r1, r2 := apply(s, argAs[A1](a[0]), argAs[A2](a[1]))
		return append(dst, r1, r2)
	}), apply: apply}
}

// Guard makes the read blocking; the guard sees both arguments.
func (op ReadOp2x2[S, A1, A2, R1, R2]) Guard(g func(S, A1, A2) bool) ReadOp2x2[S, A1, A2, R1, R2] {
	op.def.Guard = func(s rts.State, a []any) bool {
		return g(s.(S), argAs[A1](a[0]), argAs[A2](a[1]))
	}
	return op
}

// Cost sets the operation's virtual CPU cost.
func (op ReadOp2x2[S, A1, A2, R1, R2]) Cost(d sim.Time) ReadOp2x2[S, A1, A2, R1, R2] {
	op.def.CPUCost = d
	return op
}

// Call performs the operation on h.
func (op ReadOp2x2[S, A1, A2, R1, R2]) Call(p *Proc, h Handle[S], a1 A1, a2 A2) (R1, R2) {
	if s, ok := p.readState(h.o, op.def); ok {
		return op.apply(s.(S), a1, a2)
	}
	res := p.Invoke(h.o, op.def.Name, a1, a2)
	return as[R1](res[0]), as[R2](res[1])
}

// AwaitOp is a guarded read with no arguments and no results: pure
// condition synchronization (a barrier wait, a flag await). The guard
// is given at definition time because it is the whole operation.
type AwaitOp[S rts.State] struct{ def *rts.OpDef }

// DefAwait attaches a blocking no-op read whose only effect is to
// suspend the caller until guard holds.
func DefAwait[S rts.State](b *TypeBuilder[S], name string, guard func(S) bool) AwaitOp[S] {
	op := AwaitOp[S]{def: addOp(b, name, rts.Read, func(_ S, _ []any, dst []any) []any { return dst })}
	op.def.Guard = func(s rts.State, _ []any) bool { return guard(s.(S)) }
	return op
}

// Cost sets the operation's virtual CPU cost.
func (op AwaitOp[S]) Cost(d sim.Time) AwaitOp[S] { op.def.CPUCost = d; return op }

// Call blocks until the guard holds.
func (op AwaitOp[S]) Call(p *Proc, h Handle[S]) {
	p.Invoke(h.o, op.def.Name)
}

// ---------------------------------------------------------------------
// Write operations. Writes may change the state; the runtime
// propagates them to every replica (broadcast RTS) or applies them at
// the primary (point-to-point RTS). UpdateOp is the no-result variant.

// WriteOp0 is a write taking no arguments and returning R.
type WriteOp0[S rts.State, R any] struct{ def *rts.OpDef }

// DefWrite0 attaches a no-argument write to a type.
func DefWrite0[S rts.State, R any](b *TypeBuilder[S], name string, apply func(S) R) WriteOp0[S, R] {
	return WriteOp0[S, R]{def: addOp(b, name, rts.Write, func(s S, _ []any, dst []any) []any {
		return append(dst, apply(s))
	})}
}

// Guard makes the write blocking.
func (op WriteOp0[S, R]) Guard(g func(S) bool) WriteOp0[S, R] {
	op.def.Guard = func(s rts.State, _ []any) bool { return g(s.(S)) }
	return op
}

// Cost sets the operation's virtual CPU cost.
func (op WriteOp0[S, R]) Cost(d sim.Time) WriteOp0[S, R] { op.def.CPUCost = d; return op }

// Call performs the operation on h.
func (op WriteOp0[S, R]) Call(p *Proc, h Handle[S]) R {
	return as[R](p.Invoke(h.o, op.def.Name)[0])
}

// WriteOp is a write taking one argument A and returning R — the
// canonical typed operation shape.
type WriteOp[S rts.State, A, R any] struct{ def *rts.OpDef }

// DefWrite attaches a one-argument write to a type.
func DefWrite[S rts.State, A, R any](b *TypeBuilder[S], name string, apply func(S, A) R) WriteOp[S, A, R] {
	return WriteOp[S, A, R]{def: addOp(b, name, rts.Write, func(s S, a []any, dst []any) []any {
		return append(dst, apply(s, argAs[A](a[0])))
	})}
}

// Guard makes the write blocking; the guard sees the argument.
func (op WriteOp[S, A, R]) Guard(g func(S, A) bool) WriteOp[S, A, R] {
	op.def.Guard = func(s rts.State, a []any) bool { return g(s.(S), argAs[A](a[0])) }
	return op
}

// Cost sets the operation's virtual CPU cost.
func (op WriteOp[S, A, R]) Cost(d sim.Time) WriteOp[S, A, R] { op.def.CPUCost = d; return op }

// Call performs the operation on h.
func (op WriteOp[S, A, R]) Call(p *Proc, h Handle[S], arg A) R {
	return as[R](p.Invoke(h.o, op.def.Name, arg)[0])
}

// WriteOp0x2 is a write taking no arguments and returning two results
// (the guarded dequeue shape: (item, ok)).
type WriteOp0x2[S rts.State, R1, R2 any] struct{ def *rts.OpDef }

// DefWrite0x2 attaches a no-argument, two-result write to a type.
func DefWrite0x2[S rts.State, R1, R2 any](b *TypeBuilder[S], name string, apply func(S) (R1, R2)) WriteOp0x2[S, R1, R2] {
	return WriteOp0x2[S, R1, R2]{def: addOp(b, name, rts.Write, func(s S, _ []any, dst []any) []any {
		r1, r2 := apply(s)
		return append(dst, r1, r2)
	})}
}

// Guard makes the write blocking.
func (op WriteOp0x2[S, R1, R2]) Guard(g func(S) bool) WriteOp0x2[S, R1, R2] {
	op.def.Guard = func(s rts.State, _ []any) bool { return g(s.(S)) }
	return op
}

// Cost sets the operation's virtual CPU cost.
func (op WriteOp0x2[S, R1, R2]) Cost(d sim.Time) WriteOp0x2[S, R1, R2] {
	op.def.CPUCost = d
	return op
}

// Call performs the operation on h.
func (op WriteOp0x2[S, R1, R2]) Call(p *Proc, h Handle[S]) (R1, R2) {
	res := p.Invoke(h.o, op.def.Name)
	return as[R1](res[0]), as[R2](res[1])
}

// WriteOp1x2 is a write taking one argument and returning two results
// (the crash-aware dequeue shape: take(worker) -> (job, ok)).
type WriteOp1x2[S rts.State, A, R1, R2 any] struct{ def *rts.OpDef }

// DefWrite1x2 attaches a one-argument, two-result write to a type.
func DefWrite1x2[S rts.State, A, R1, R2 any](b *TypeBuilder[S], name string, apply func(S, A) (R1, R2)) WriteOp1x2[S, A, R1, R2] {
	return WriteOp1x2[S, A, R1, R2]{def: addOp(b, name, rts.Write, func(s S, a []any, dst []any) []any {
		r1, r2 := apply(s, argAs[A](a[0]))
		return append(dst, r1, r2)
	})}
}

// Guard makes the write blocking; the guard sees the argument.
func (op WriteOp1x2[S, A, R1, R2]) Guard(g func(S, A) bool) WriteOp1x2[S, A, R1, R2] {
	op.def.Guard = func(s rts.State, a []any) bool { return g(s.(S), argAs[A](a[0])) }
	return op
}

// Cost sets the operation's virtual CPU cost.
func (op WriteOp1x2[S, A, R1, R2]) Cost(d sim.Time) WriteOp1x2[S, A, R1, R2] {
	op.def.CPUCost = d
	return op
}

// Call performs the operation on h.
func (op WriteOp1x2[S, A, R1, R2]) Call(p *Proc, h Handle[S], arg A) (R1, R2) {
	res := p.Invoke(h.o, op.def.Name, arg)
	return as[R1](res[0]), as[R2](res[1])
}

// WriteOp2x2 is a write taking two arguments and returning two
// results (the claim-style shape of termination protocols).
type WriteOp2x2[S rts.State, A1, A2, R1, R2 any] struct{ def *rts.OpDef }

// DefWrite2x2 attaches a two-argument, two-result write to a type.
func DefWrite2x2[S rts.State, A1, A2, R1, R2 any](b *TypeBuilder[S], name string, apply func(S, A1, A2) (R1, R2)) WriteOp2x2[S, A1, A2, R1, R2] {
	return WriteOp2x2[S, A1, A2, R1, R2]{def: addOp(b, name, rts.Write, func(s S, a []any, dst []any) []any {
		r1, r2 := apply(s, argAs[A1](a[0]), argAs[A2](a[1]))
		return append(dst, r1, r2)
	})}
}

// Guard makes the write blocking; the guard sees both arguments.
func (op WriteOp2x2[S, A1, A2, R1, R2]) Guard(g func(S, A1, A2) bool) WriteOp2x2[S, A1, A2, R1, R2] {
	op.def.Guard = func(s rts.State, a []any) bool {
		return g(s.(S), argAs[A1](a[0]), argAs[A2](a[1]))
	}
	return op
}

// Cost sets the operation's virtual CPU cost.
func (op WriteOp2x2[S, A1, A2, R1, R2]) Cost(d sim.Time) WriteOp2x2[S, A1, A2, R1, R2] {
	op.def.CPUCost = d
	return op
}

// Call performs the operation on h.
func (op WriteOp2x2[S, A1, A2, R1, R2]) Call(p *Proc, h Handle[S], a1 A1, a2 A2) (R1, R2) {
	res := p.Invoke(h.o, op.def.Name, a1, a2)
	return as[R1](res[0]), as[R2](res[1])
}

// UpdateOp0 is a write with no arguments and no results (close,
// finish, reset — pure state transitions).
type UpdateOp0[S rts.State] struct{ def *rts.OpDef }

// DefUpdate0 attaches a no-argument, no-result write to a type.
func DefUpdate0[S rts.State](b *TypeBuilder[S], name string, apply func(S)) UpdateOp0[S] {
	op := UpdateOp0[S]{def: addOp(b, name, rts.Write, func(s S, _ []any, dst []any) []any {
		apply(s)
		return dst
	})}
	op.def.NoResult = true
	return op
}

// Cost sets the operation's virtual CPU cost.
func (op UpdateOp0[S]) Cost(d sim.Time) UpdateOp0[S] { op.def.CPUCost = d; return op }

// Call performs the operation on h.
func (op UpdateOp0[S]) Call(p *Proc, h Handle[S]) {
	p.Invoke(h.o, op.def.Name)
}

// UpdateOp is a write taking one argument and returning nothing.
type UpdateOp[S rts.State, A any] struct{ def *rts.OpDef }

// DefUpdate attaches a one-argument, no-result write to a type.
func DefUpdate[S rts.State, A any](b *TypeBuilder[S], name string, apply func(S, A)) UpdateOp[S, A] {
	op := UpdateOp[S, A]{def: addOp(b, name, rts.Write, func(s S, a []any, dst []any) []any {
		apply(s, argAs[A](a[0]))
		return dst
	})}
	op.def.NoResult = true
	return op
}

// Cost sets the operation's virtual CPU cost.
func (op UpdateOp[S, A]) Cost(d sim.Time) UpdateOp[S, A] { op.def.CPUCost = d; return op }

// Call performs the operation on h.
func (op UpdateOp[S, A]) Call(p *Proc, h Handle[S], arg A) {
	p.Invoke(h.o, op.def.Name, arg)
}

// UpdateOp2 is a write taking two arguments and returning nothing.
type UpdateOp2[S rts.State, A1, A2 any] struct{ def *rts.OpDef }

// DefUpdate2 attaches a two-argument, no-result write to a type.
func DefUpdate2[S rts.State, A1, A2 any](b *TypeBuilder[S], name string, apply func(S, A1, A2)) UpdateOp2[S, A1, A2] {
	op := UpdateOp2[S, A1, A2]{def: addOp(b, name, rts.Write, func(s S, a []any, dst []any) []any {
		apply(s, argAs[A1](a[0]), argAs[A2](a[1]))
		return dst
	})}
	op.def.NoResult = true
	return op
}

// Cost sets the operation's virtual CPU cost.
func (op UpdateOp2[S, A1, A2]) Cost(d sim.Time) UpdateOp2[S, A1, A2] {
	op.def.CPUCost = d
	return op
}

// Call performs the operation on h.
func (op UpdateOp2[S, A1, A2]) Call(p *Proc, h Handle[S], a1 A1, a2 A2) {
	p.Invoke(h.o, op.def.Name, a1, a2)
}
