package kv

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/netsim"
	"repro/internal/orca"
	"repro/internal/rts"
	"repro/internal/sim"
	"repro/internal/workload"
)

func testWorkload(seed int64) workload.Config {
	return workload.Config{
		Keys: 512, Dist: workload.Zipf, Theta: 0.99,
		ReadFrac: 0.9, UpdateFrac: 0.05, Seed: seed,
		Rate: 4000, Duration: 50 * sim.Millisecond,
	}
}

// fingerprint summarizes everything a deterministic re-run must
// reproduce: counts, virtual times, network traffic, and the full
// latency distribution.
func fingerprint(r Result) string {
	s := fmt.Sprintf("ops=%d/%d/%d/%d acked=%d lost=%d elapsed=%d msgs=%d frames=%d",
		r.Gets, r.Puts, r.Updates, r.Ops, r.AckedPuts, r.LostAcked,
		int64(r.Report.Elapsed), r.Report.Net.Messages, r.Report.Net.Frames)
	names := make([]string, 0, len(r.Report.Latency))
	for n := range r.Report.Latency {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := r.Report.Latency[n]
		s += fmt.Sprintf(" %s:%d/%d/%d/%d", n, h.Count(), h.Sum(), int64(h.Percentile(0.5)), int64(h.Max()))
	}
	return s
}

func TestRunCounts(t *testing.T) {
	wl := testWorkload(1)
	r := Run(orca.Config{Processors: 4, RTS: orca.Broadcast, Mixed: true, Seed: 1},
		Params{Policy: PolicyMixed, Workload: wl})
	if r.Report.TimedOut {
		t.Fatalf("timed out (blocked: %v)", r.Report.Blocked)
	}
	if r.Ops == 0 || r.Ops != r.Gets+r.Puts+r.Updates {
		t.Fatalf("ops = %d, gets+puts+updates = %d", r.Ops, r.Gets+r.Puts+r.Updates)
	}
	// Each client serves its own slice of the trace; together they
	// serve exactly the per-client traces' total.
	var want int64
	for c := 0; c < 4; c++ {
		cw := wl
		cw.Rate /= 4
		cw.Seed = wl.Seed ^ int64(c+1)*0x5DEECE66D
		want += int64(len(workload.Trace(cw)))
	}
	if r.Ops != want {
		t.Fatalf("served %d ops, traces hold %d", r.Ops, want)
	}
	if r.AckedPuts != r.Puts {
		t.Fatalf("acked %d puts, issued %d (healthy run: every put completes)", r.AckedPuts, r.Puts)
	}
	if r.LostAcked != 0 {
		t.Fatalf("lost %d acknowledged writes in a healthy run", r.LostAcked)
	}
	if r.Throughput <= 0 {
		t.Fatalf("throughput = %v", r.Throughput)
	}
	for _, n := range []string{"kv.all", "kv.get", "kv.put", "kv.update"} {
		h := r.Report.Latency[n]
		if h == nil || h.Count() == 0 {
			t.Errorf("histogram %s empty", n)
		}
	}
	if all := r.Report.Latency["kv.all"]; all != nil && all.Count() != r.Ops {
		t.Errorf("kv.all holds %d samples, served %d ops", all.Count(), r.Ops)
	}
}

func TestRunDeterministic(t *testing.T) {
	for _, pol := range []Policy{PolicyReplicated, PolicyPrimary, PolicyMixed} {
		cfg := orca.Config{Processors: 4, RTS: orca.Broadcast, Mixed: true, Seed: 1}
		a := fingerprint(Run(cfg, Params{Policy: pol, Workload: testWorkload(1)}))
		b := fingerprint(Run(cfg, Params{Policy: pol, Workload: testWorkload(1)}))
		if a != b {
			t.Errorf("%v: double run differs:\n  %s\n  %s", pol, a, b)
		}
	}
}

func TestPoliciesShiftTraffic(t *testing.T) {
	// Same trace, different placement: replicated shards answer reads
	// locally and broadcast writes; primary-copy shards RPC remote
	// reads and never broadcast. The RTS counters must show it.
	cfg := orca.Config{Processors: 4, RTS: orca.Broadcast, Mixed: true, Seed: 1}
	repl := Run(cfg, Params{Policy: PolicyReplicated, Workload: testWorkload(1)})
	prim := Run(cfg, Params{Policy: PolicyPrimary, Workload: testWorkload(1)})
	if repl.Ops != prim.Ops {
		t.Fatalf("same trace served %d vs %d ops", repl.Ops, prim.Ops)
	}
	if repl.Report.RTS.BcastWrites == 0 {
		t.Errorf("replicated run did no broadcast writes")
	}
	if prim.Report.RTS.RemoteReads == 0 {
		t.Errorf("primary-copy run did no remote reads")
	}
	// Both runs broadcast the same handful of std helper-object writes
	// (barrier, liveness array); the difference between them is exactly
	// the shard writes, which only the replicated run broadcasts.
	shardWrites := repl.Puts + repl.Updates
	if repl.Report.RTS.BcastWrites-prim.Report.RTS.BcastWrites != shardWrites {
		t.Errorf("broadcast writes: replicated %d vs primary %d; want a difference of exactly %d shard writes",
			repl.Report.RTS.BcastWrites, prim.Report.RTS.BcastWrites, shardWrites)
	}
	if repl.Report.RTS.RemoteReads != 0 {
		t.Errorf("replicated run did %d remote reads, want all local", repl.Report.RTS.RemoteReads)
	}
}

func TestCrashNoLostAckedWrites(t *testing.T) {
	// A client machine dies mid-run. Replicated shards survive on
	// every other machine, so every acknowledged write — including
	// those from the dead machine's client — must still be readable at
	// its acknowledged version.
	faults := &netsim.FaultPlan{Crashes: []netsim.Crash{{Node: 3, At: 25 * sim.Millisecond}}}
	cfg := orca.Config{Processors: 4, RTS: orca.Broadcast, Mixed: true, Seed: 1, Faults: faults}
	r := Run(cfg, Params{Policy: PolicyReplicated, Workload: testWorkload(1)})
	if r.Report.TimedOut {
		t.Fatalf("crash run timed out (blocked: %v)", r.Report.Blocked)
	}
	if len(r.Report.Crashes) != 1 {
		t.Fatalf("crashes executed = %d, want 1", len(r.Report.Crashes))
	}
	if r.LostAcked != 0 {
		t.Fatalf("lost %d acknowledged writes to a client crash under replication", r.LostAcked)
	}
	// The dead machine stops serving: fewer ops than the full trace.
	full := Run(orca.Config{Processors: 4, RTS: orca.Broadcast, Mixed: true, Seed: 1},
		Params{Policy: PolicyReplicated, Workload: testWorkload(1)})
	if r.Ops >= full.Ops {
		t.Errorf("crash run served %d ops, healthy run %d; want fewer", r.Ops, full.Ops)
	}
	// Crash runs are deterministic too.
	r2 := Run(cfg, Params{Policy: PolicyReplicated, Workload: testWorkload(1)})
	if fingerprint(r) != fingerprint(r2) {
		t.Errorf("crash double run differs:\n  %s\n  %s", fingerprint(r), fingerprint(r2))
	}
}

func TestClosedLoop(t *testing.T) {
	wl := workload.Config{
		Keys: 256, Dist: workload.Uniform, ReadFrac: 0.8, UpdateFrac: 0.1,
		Seed: 2, Ops: 100, Think: 100 * sim.Microsecond,
	}
	r := Run(orca.Config{Processors: 4, RTS: orca.Broadcast, Mixed: true, Seed: 1},
		Params{Policy: PolicyReplicated, Workload: wl})
	if r.Report.TimedOut {
		t.Fatalf("timed out (blocked: %v)", r.Report.Blocked)
	}
	// Workload.Ops is the aggregate budget, split across clients (like
	// Rate in open loop).
	if r.Ops != 100 {
		t.Fatalf("closed loop served %d ops, want the aggregate budget of 100", r.Ops)
	}
}

func TestShardOfSpreads(t *testing.T) {
	counts := make(map[int]int)
	for k := int64(0); k < 10000; k++ {
		s := shardOf(k, 8)
		if s < 0 || s >= 8 {
			t.Fatalf("shardOf(%d, 8) = %d", k, s)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c < 800 || c > 1700 {
			t.Errorf("shard %d holds %d of 10000 keys: poor spread", s, c)
		}
	}
}

// TestSequencerShards: the store runs with the total order split
// across sequencer groups, serves the identical trace correctly and
// deterministically, and actually spreads its writes over more than
// one group.
func TestSequencerShards(t *testing.T) {
	wl := testWorkload(1)
	cfg := orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1}
	params := Params{Policy: PolicyReplicated, SequencerShards: 4, Workload: wl}
	r := Run(cfg, params)
	if r.Report.TimedOut {
		t.Fatalf("timed out (blocked: %v)", r.Report.Blocked)
	}
	if r.LostAcked != 0 {
		t.Fatalf("lost %d acknowledged writes", r.LostAcked)
	}
	if len(r.Report.Shards) != 4 {
		t.Fatalf("Report.Shards has %d entries, want 4", len(r.Report.Shards))
	}
	busy := 0
	for _, s := range r.Report.Shards {
		if s.BcastWrites > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d sequencer groups carried writes", busy)
	}
	if fp1, fp2 := fingerprint(r), fingerprint(Run(cfg, params)); fp1 != fp2 {
		t.Fatalf("sharded run not deterministic:\n  %s\n  %s", fp1, fp2)
	}
}

// TestSequencerShardsRejectsMisuse: sequencer sharding is a
// broadcast-runtime structure; other placements must fail fast.
func TestSequencerShardsRejectsMisuse(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SequencerShards with PolicyPrimary did not panic")
		}
	}()
	Run(orca.Config{Processors: 2, RTS: orca.Broadcast, Seed: 1},
		Params{Policy: PolicyPrimary, SequencerShards: 2, Workload: testWorkload(1)})
}

// affineShiftWorkload is the adaptive-placement input: every machine's
// traffic concentrates on its own key block (so every shard has a
// dominant writer), and at mid-run each block's traffic moves to the
// next machine.
func affineShiftWorkload(seed int64) workload.Config {
	return workload.Config{
		Keys: 512, Dist: workload.Uniform,
		ReadFrac: 0.5, UpdateFrac: 0.25, Seed: seed,
		Rate: 6000, Duration: 200 * sim.Millisecond,
		ShiftFrac: 0.5, Partitions: 4, LocalFrac: 0.9,
	}
}

func TestAdaptivePolicyMigratesAndKeepsWrites(t *testing.T) {
	cfg := orca.Config{Processors: 4, RTS: orca.Broadcast, Mixed: true, Seed: 1}
	params := Params{
		Policy: PolicyAdaptive, Shards: 4, AffineKeys: true,
		Adapt:    rts.AdaptConfig{SampleEvery: 32, MinDwell: 10 * sim.Millisecond},
		Workload: affineShiftWorkload(7),
	}
	r := Run(cfg, params)
	if r.Report.TimedOut {
		t.Fatalf("timed out (blocked: %v)", r.Report.Blocked)
	}
	if r.LostAcked != 0 {
		t.Fatalf("lost %d acknowledged writes across migrations", r.LostAcked)
	}
	if r.Report.RTS.Migrations == 0 {
		t.Fatal("adaptive run performed no migrations on a write-heavy affinity trace")
	}
	if len(r.Report.Placements) != params.Shards {
		t.Fatalf("report holds %d placements, want %d", len(r.Report.Placements), params.Shards)
	}
	// Migration runs must stay bit-identical.
	r2 := Run(cfg, params)
	if fingerprint(r) != fingerprint(r2) || r.Report.RTS.Migrations != r2.Report.RTS.Migrations {
		t.Errorf("adaptive double run differs:\n  %s (mig %d)\n  %s (mig %d)",
			fingerprint(r), r.Report.RTS.Migrations, fingerprint(r2), r2.Report.RTS.Migrations)
	}
}

func TestPhaseAccountingSplitsAtShift(t *testing.T) {
	wl := testWorkload(3)
	wl.ShiftFrac = 0.5
	r := Run(orca.Config{Processors: 4, RTS: orca.Broadcast, Mixed: true, Seed: 2},
		Params{Policy: PolicyReplicated, Workload: wl})
	if r.PhaseOps[0] == 0 || r.PhaseOps[1] == 0 {
		t.Fatalf("phase ops = %v, want both phases populated", r.PhaseOps)
	}
	if r.PhaseOps[0]+r.PhaseOps[1] != r.Ops {
		t.Fatalf("phase ops %v sum to %d, served %d", r.PhaseOps, r.PhaseOps[0]+r.PhaseOps[1], r.Ops)
	}
	for ph := 0; ph < 2; ph++ {
		if r.PhaseThroughput[ph] <= 0 || r.PhaseP99US[ph] <= 0 || r.PhaseP50US[ph] > r.PhaseP99US[ph] {
			t.Errorf("phase %d: throughput=%v p50=%v p99=%v", ph, r.PhaseThroughput[ph], r.PhaseP50US[ph], r.PhaseP99US[ph])
		}
	}
	// A shift-free run lands everything in phase 0.
	plain := Run(orca.Config{Processors: 4, RTS: orca.Broadcast, Mixed: true, Seed: 2},
		Params{Policy: PolicyReplicated, Workload: testWorkload(3)})
	if plain.PhaseOps[1] != 0 || plain.PhaseOps[0] != plain.Ops {
		t.Errorf("shift-free run phase ops = %v, want all %d in phase 0", plain.PhaseOps, plain.Ops)
	}
}

func TestShardOfAffineBlocks(t *testing.T) {
	const keys, shards = 512, 4
	for k := int64(0); k < keys; k++ {
		want := int(k / (keys / shards))
		if got := shardOfAffine(k, keys, shards); got != want {
			t.Fatalf("key %d -> shard %d, want %d", k, got, want)
		}
	}
}

func TestAdaptiveCrashNoLostAckedWrites(t *testing.T) {
	// A machine dies while the adaptive controller is re-placing shards
	// under it. The crash lands before the dead machine's home shard
	// finishes migrating to a primary copy there, so every acknowledged
	// write still lives in a replicated instance or at a surviving
	// primary: the audit must find zero lost acked writes, while the
	// other shards keep migrating around the hole.
	faults := &netsim.FaultPlan{Crashes: []netsim.Crash{{Node: 3, At: 10 * sim.Millisecond}}}
	cfg := orca.Config{Processors: 4, RTS: orca.Broadcast, Mixed: true, Seed: 1, Faults: faults}
	params := Params{
		Policy: PolicyAdaptive, Shards: 4, AffineKeys: true,
		Adapt:    rts.AdaptConfig{SampleEvery: 32, MinDwell: 10 * sim.Millisecond},
		Workload: affineShiftWorkload(7),
	}
	r := Run(cfg, params)
	if r.Report.TimedOut {
		t.Fatalf("timed out (blocked: %v)", r.Report.Blocked)
	}
	if len(r.Report.Crashes) != 1 || r.Report.Crashes[0].Node != 3 {
		t.Fatalf("crashes executed = %+v, want node 3", r.Report.Crashes)
	}
	if r.LostAcked != 0 {
		t.Fatalf("lost %d acknowledged writes to a crash during adaptive migration", r.LostAcked)
	}
	if r.Report.RTS.Migrations == 0 {
		t.Fatal("no migrations: the crash should not stop the surviving shards from re-placing")
	}
	r2 := Run(cfg, params)
	if fingerprint(r) != fingerprint(r2) || r.Report.RTS.Migrations != r2.Report.RTS.Migrations {
		t.Errorf("adaptive crash double run differs:\n  %s (mig %d)\n  %s (mig %d)",
			fingerprint(r), r.Report.RTS.Migrations, fingerprint(r2), r2.Report.RTS.Migrations)
	}
}
