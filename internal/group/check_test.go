package group

// Shared agreement checkers and the protocol × fault matrix: every
// sequencing protocol (elected sequencer over PB, over BB, and the
// consensus-replicated log) must deliver one agreed duplicate-free
// stream under fragment loss, sequencer crash, and a transient
// partition. The matrix runs each cell with batching enabled so the
// frame-boundary invariant is exercised too.

import (
	"fmt"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// checkFrameAgreement asserts that every non-skipped node observed
// identical frame boundaries — the invariant the per-frame RTS sweep
// relies on: same (seq, uid, More) triples in the same order, and no
// stream left dangling mid-frame. Dup records count: they close the
// frames their suppressed payloads occupied.
func (h *harness) checkFrameAgreement(t *testing.T, skip map[int]bool) {
	t.Helper()
	type fr struct {
		seq  int64
		uid  int64
		more bool
	}
	var ref []fr
	refNode := -1
	for i := range h.gs {
		if skip[i] {
			continue
		}
		var cur []fr
		for _, d := range h.logs[i] {
			cur = append(cur, fr{d.Seq, d.UID, d.More})
		}
		if n := len(cur); n > 0 && cur[n-1].more {
			t.Fatalf("node %d's stream ends mid-frame (seq %d has More set)", i, cur[n-1].seq)
		}
		if ref == nil {
			ref, refNode = cur, i
			continue
		}
		if len(cur) != len(ref) {
			t.Fatalf("node %d saw %d records, node %d saw %d", i, len(cur), refNode, len(ref))
		}
		for k := range ref {
			if cur[k] != ref[k] {
				t.Fatalf("frame streams diverge at %d: node %d has %+v, node %d has %+v",
					k, i, cur[k], refNode, ref[k])
			}
		}
	}
}

// checkNoDuplicates asserts no uid was applied twice at any
// non-skipped node.
func (h *harness) checkNoDuplicates(t *testing.T, skip map[int]bool) {
	t.Helper()
	for i := range h.gs {
		if skip[i] {
			continue
		}
		seen := map[int64]bool{}
		for _, uid := range h.uidLogs[i] {
			if seen[uid] {
				t.Fatalf("node %d applied uid %d twice", i, uid)
			}
			seen[uid] = true
		}
	}
}

// protocolVariants is the matrix's protocol axis.
var protocolVariants = []struct {
	name string
	mut  func(*Config)
}{
	{"sequencer-pb", func(c *Config) { c.Method = ForcePB }},
	{"sequencer-bb", func(c *Config) { c.Method = ForceBB }},
	{"consensus", func(c *Config) { c.Protocol = Consensus }},
}

func TestProtocolFaultMatrix(t *testing.T) {
	type scenario struct {
		name     string
		netMut   func(*netsim.Params)
		plan     *netsim.FaultPlan
		crashed  map[int]bool // nodes the plan kills
		allSends bool         // every send must come out the far end
	}
	scenarios := []scenario{
		{
			name:     "loss",
			netMut:   func(p *netsim.Params) { p.DropProb = 0.15 },
			allSends: true,
		},
		{
			name: "crash",
			plan: &netsim.FaultPlan{Crashes: []netsim.Crash{
				{Node: 0, At: 60 * sim.Millisecond},
			}},
			crashed: map[int]bool{0: true},
		},
		{
			name: "partition",
			plan: &netsim.FaultPlan{Partitions: []netsim.Partition{
				{A: []int{0, 1}, B: []int{2, 3}, From: 50 * sim.Millisecond, Until: 350 * sim.Millisecond},
			}},
			allSends: true,
		},
	}
	for _, pv := range protocolVariants {
		for _, sc := range scenarios {
			pv, sc := pv, sc
			t.Run(pv.name+"/"+sc.name, func(t *testing.T) {
				h := newHarness(53, 4, sc.netMut, func(c *Config) {
					c.SenderTimeout = 50 * sim.Millisecond
					c.SenderRetries = 8
					c.GapTimeout = 25 * sim.Millisecond
					c.Heartbeat = 100 * sim.Millisecond
					batchCfg(4, 1<<20, sim.Millisecond)(c)
					pv.mut(c)
				})
				h.net.InstallFaults(sc.plan, func(node int) { h.ms[node].Crash() })
				sent := 0
				for i := range h.ms {
					if sc.crashed[i] {
						continue // keep the expected count exact
					}
					i := i
					h.ms[i].SpawnThread("producer", func(p *sim.Proc) {
						for k := 0; k < 12; k++ {
							h.gs[i].Broadcast(p, "m", fmt.Sprintf("n%d-%d", i, k), 100)
							sent++
							p.Sleep(sim.Time(7+2*i) * sim.Millisecond)
						}
					})
				}
				h.env.RunUntil(120 * sim.Second)
				h.checkAgreement(t, -1, sc.crashed)
				h.checkFrameAgreement(t, sc.crashed)
				h.checkNoDuplicates(t, sc.crashed)
				live := 1
				if sc.crashed[live] {
					live = 2
				}
				if sc.allSends && len(h.uidLogs[live]) != sent {
					t.Fatalf("delivered %d messages, want all %d sends", len(h.uidLogs[live]), sent)
				}
				if pv.name == "consensus" {
					if el := h.gs[live].Stats().Elections; el != 0 {
						t.Fatalf("consensus ran %d elections; epochs must stay frozen", el)
					}
					if sc.name == "crash" && h.gs[live].Stats().Takeovers == 0 {
						// Some survivor must have taken the log over.
						tot := int64(0)
						for i := 1; i < 4; i++ {
							tot += h.gs[i].Stats().Takeovers
						}
						if tot == 0 {
							t.Fatal("sequencer crashed but no survivor took over")
						}
					}
				}
				h.env.Stop()
				h.env.Shutdown()
			})
		}
	}
}
