// Package atpg implements the paper's fourth application (§4.4):
// Automatic Test Pattern Generation for combinational circuits, based
// on the PODEM algorithm (Goel, the paper's reference [7]), with
// serial fault simulation as the optimization the paper evaluates.
//
// The parallel program statically partitions the fault set among the
// processors; with fault simulation enabled, processes share an
// object containing the faults for which patterns have been
// generated, so every process can delete covered faults from its own
// list. The dynamic work distribution the paper lists as future work
// is also implemented.
//
// Downward: built on package orca and the std object types. Upward:
// internal/harness reproduces the §4.4 speedup-by-mode experiment
// from this package.
package atpg
