package harness

import (
	"fmt"
	"io"

	"repro/internal/apps/kv"
	"repro/internal/netsim"
	"repro/internal/orca"
	"repro/internal/sim"
	"repro/internal/workload"
)

// KVExperiment measures the serving workload: a sharded KV/session
// store under open-loop Zipf traffic (see DESIGN.md, "Serving
// workloads and latency accounting"). Three sweeps:
//
//   - processor sweep: read-heavy Zipf(0.99) traffic at a fixed
//     per-processor arrival rate, P=8..64, across placement policies
//     (replicated / primary-copy / mixed) — throughput scale-out and
//     the latency price of each strategy on identical traces.
//   - skew sweep: uniform vs increasingly skewed keys at fixed P,
//     plus a phase-shift run whose hot set rotates mid-run — the
//     adversarial input for the adaptive-placement work the ROADMAP
//     queues.
//   - crash: a client machine dies mid-run; the survivors keep
//     serving and the audit must find every acknowledged write.
//
// Every configuration runs twice and the harness panics if the two
// fingerprints differ (traces are seeded, the simulation is
// deterministic), if a run times out, or if an acknowledged write is
// lost.
func KVExperiment(w io.Writer, scale Scale) {
	procs := []int{8, 16, 32, 64}
	keys := int64(8192)
	dur := 200 * sim.Millisecond
	ratePerProc := 2000.0
	skewP := 16
	crashP := 8
	if scale == Quick {
		procs = []int{8}
		keys = 2048
		dur = 80 * sim.Millisecond
		skewP = 8
		crashP = 4
	}

	base := func(p int) workload.Config {
		return workload.Config{
			Keys: keys, Dist: workload.Zipf, Theta: 0.99,
			ReadFrac: 0.95, UpdateFrac: 0.02, Seed: 1,
			Rate: ratePerProc * float64(p), Duration: dur,
		}
	}

	// run executes one configuration twice, panicking on a
	// fingerprint mismatch, a timeout, or (unless expectLoss) a lost
	// acknowledged write.
	run := func(name string, cfg orca.Config, params kv.Params, expectLoss bool) kv.Result {
		fp := ""
		var r kv.Result
		for i := 0; i < 2; i++ {
			r = kv.Run(cfg, params)
			if r.Report.TimedOut {
				panic(fmt.Sprintf("harness: kv %s timed out (blocked: %v)", name, r.Report.Blocked))
			}
			all := r.Report.Latency["kv.all"]
			got := fmt.Sprintf("ops=%d elapsed=%d msgs=%d p50=%d p99=%d lost=%d",
				r.Ops, int64(r.Report.Elapsed), r.Report.Net.Messages,
				int64(all.Percentile(0.50)), int64(all.Percentile(0.99)), r.LostAcked)
			if fp == "" {
				fp = got
			} else if fp != got {
				panic(fmt.Sprintf("harness: kv %s not deterministic:\n  %s\n  %s", name, fp, got))
			}
		}
		if r.LostAcked > 0 && !expectLoss {
			panic(fmt.Sprintf("harness: kv %s lost %d acknowledged writes", name, r.LostAcked))
		}
		return r
	}

	lat := func(r kv.Result, hist string, q float64) string {
		h := r.Report.Latency[hist]
		if h == nil || h.Count() == 0 {
			return "-"
		}
		return h.Percentile(q).String()
	}

	fmt.Fprintf(w, "== KV: sharded serving store, open-loop Zipf(0.99) %.0f ops/s per processor, %d keys ==\n",
		ratePerProc, keys)
	fmt.Fprintln(w, "-- processor sweep, read-heavy (95/3/2 get/put/update), per-shard placement policies --")
	policies := []kv.Policy{kv.PolicyReplicated, kv.PolicyPrimary, kv.PolicyMixed}
	var rows [][]string
	seqShards := 4
	for _, p := range procs {
		for _, pol := range policies {
			cfg := orca.Config{Processors: p, RTS: orca.Broadcast, Mixed: true, Seed: 1}
			params := kv.Params{Policy: pol, Workload: base(p)}
			r := run(fmt.Sprintf("p%d/%s", p, pol), cfg, params, false)
			st := r.Report.RTS
			rows = append(rows, []string{
				fmt.Sprint(p), pol.String(), fmt.Sprint(r.Ops),
				fmt.Sprintf("%.0f", r.Throughput),
				lat(r, "kv.get", 0.50), lat(r, "kv.get", 0.95), lat(r, "kv.get", 0.99),
				lat(r, "kv.put", 0.99),
				fmt.Sprint(st.BcastWrites), fmt.Sprint(st.RemoteReads + st.P2PWrites),
				fmt.Sprint(r.Report.Net.Frames),
			})
		}
		// Sequencer-sharded row: replicated placement with the total
		// order split across independent sequencer groups, store
		// shards striped onto them — same trace as the rows above.
		{
			cfg := orca.Config{Processors: p, RTS: orca.Broadcast, Seed: 1}
			params := kv.Params{Policy: kv.PolicyReplicated, SequencerShards: seqShards, Workload: base(p)}
			name := fmt.Sprintf("replicated-s%d", seqShards)
			r := run(fmt.Sprintf("p%d/%s", p, name), cfg, params, false)
			st := r.Report.RTS
			rows = append(rows, []string{
				fmt.Sprint(p), name, fmt.Sprint(r.Ops),
				fmt.Sprintf("%.0f", r.Throughput),
				lat(r, "kv.get", 0.50), lat(r, "kv.get", 0.95), lat(r, "kv.get", 0.99),
				lat(r, "kv.put", 0.99),
				fmt.Sprint(st.BcastWrites), fmt.Sprint(st.RemoteReads + st.P2PWrites),
				fmt.Sprint(r.Report.Net.Frames),
			})
		}
	}
	Table(w, []string{"procs", "policy", "ops", "ops/s", "get p50", "get p95", "get p99",
		"put p99", "bwrites", "p2p ops", "frames"}, rows)
	fmt.Fprintln(w)

	fmt.Fprintf(w, "-- skew sweep at P=%d: key distribution vs latency (replicated vs primary) --\n", skewP)
	type skewCase struct {
		name string
		mod  func(*workload.Config)
	}
	cases := []skewCase{
		{"uniform", func(c *workload.Config) { c.Dist = workload.Uniform }},
		{"zipf-0.60", func(c *workload.Config) { c.Theta = 0.60 }},
		{"zipf-0.99", func(c *workload.Config) {}},
		{"zipf-0.99+shift", func(c *workload.Config) { c.ShiftFrac = 0.5 }},
	}
	rows = rows[:0]
	for _, sc := range cases {
		for _, pol := range []kv.Policy{kv.PolicyReplicated, kv.PolicyPrimary} {
			wl := base(skewP)
			sc.mod(&wl)
			cfg := orca.Config{Processors: skewP, RTS: orca.Broadcast, Mixed: true, Seed: 1}
			r := run(fmt.Sprintf("%s/%s", sc.name, pol), cfg, kv.Params{Policy: pol, Workload: wl}, false)
			rows = append(rows, []string{
				sc.name, pol.String(), fmt.Sprint(r.Ops), fmt.Sprintf("%.0f", r.Throughput),
				lat(r, "kv.get", 0.50), lat(r, "kv.get", 0.99), lat(r, "kv.put", 0.99),
				fmt.Sprint(r.Report.Net.Frames),
			})
		}
	}
	Table(w, []string{"keys", "policy", "ops", "ops/s", "get p50", "get p99", "put p99", "frames"}, rows)
	fmt.Fprintln(w)

	// Crash: lose a client machine mid-run. Replicated shards keep a
	// copy on every survivor, so every acknowledged write (including
	// the dead clients') must still be found by the audit.
	fmt.Fprintf(w, "-- crash at P=%d: client machine %d dies halfway; no acknowledged write may be lost --\n",
		crashP, crashP-1)
	wl := base(crashP)
	cfg := orca.Config{Processors: crashP, RTS: orca.Broadcast, Mixed: true, Seed: 1,
		Faults: &netsim.FaultPlan{Crashes: []netsim.Crash{{Node: crashP - 1, At: dur / 2}}}}
	r := run("crash", cfg, kv.Params{Policy: kv.PolicyReplicated, Workload: wl}, false)
	healthy := run("crash-baseline", orca.Config{Processors: crashP, RTS: orca.Broadcast, Mixed: true, Seed: 1},
		kv.Params{Policy: kv.PolicyReplicated, Workload: wl}, false)
	rows = rows[:0]
	for _, rr := range []struct {
		name string
		r    kv.Result
	}{{"no-fault", healthy}, {"client-crash", r}} {
		killed := 0
		for _, c := range rr.r.Report.Crashes {
			killed += c.ProcsKilled
		}
		rows = append(rows, []string{
			rr.name, fmt.Sprint(rr.r.Ops), fmt.Sprint(rr.r.AckedPuts), fmt.Sprint(rr.r.LostAcked),
			fmt.Sprint(len(rr.r.Report.Crashes)), fmt.Sprint(killed),
			lat(rr.r, "kv.get", 0.99), lat(rr.r, "kv.put", 0.99),
		})
	}
	Table(w, []string{"scenario", "ops", "acked puts", "lost", "crashes", "procs killed", "get p99", "put p99"}, rows)
	fmt.Fprintln(w, "Latency figures are virtual request->completion times from open-loop")
	fmt.Fprintln(w, "arrival instants (queueing included). Replicated shards read locally")
	fmt.Fprintln(w, "and pay the total order per write; primary-copy shards write cheaply")
	fmt.Fprintln(w, "at their home and RPC every remote read. The crash scenario audits")
	fmt.Fprintln(w, "every acknowledged write after the survivors finish serving.")
	fmt.Fprintln(w)
}
