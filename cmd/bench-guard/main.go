// Command bench-guard compares fresh -bench-json output against the
// pinned BENCH_engine.json baseline and fails on wall-clock
// regressions.
//
// Usage:
//
//	bench-guard [-baseline BENCH_engine.json] [-threshold 1.30]
//	            [-normalize engine/yield] fresh1.json [fresh2.json ...]
//
// Every engine/, orca/, kv/, consensus/, and shard/ entry of the baseline is
// checked: the entry's median wall-ns/op across the fresh files must
// stay within threshold of the baseline figure, and entries that pin a
// p99 virtual latency or a crash-recovery watermark must additionally
// reproduce those exactly — they are deterministic simulation outputs,
// so any drift is a behavior change, not noise. Medians across several fresh runs absorb
// scheduler noise; -normalize divides every entry by the named entry's
// wall-ns/op in the same file first, turning the comparison into a
// hardware-independent shape check (the right mode on CI, whose
// machines are not the machines the baseline was recorded on; pass
// -normalize "" for a raw same-host comparison).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// entry mirrors the benchResult fields the guard needs.
type entry struct {
	Name           string  `json:"name"`
	WallNsPerOp    float64 `json:"wall_ns_per_op"`
	P99VirtUs      float64 `json:"p99_virtual_us"`
	RecoveryVirtUs float64 `json:"recovery_virtual_us"`
}

// file mirrors the BENCH_engine.json schema.
type file struct {
	Results []entry `json:"results"`
}

// load reads one bench-json file into a name -> entry map.
func load(path string) (map[string]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f file
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]entry, len(f.Results))
	for _, e := range f.Results {
		m[e.Name] = e
	}
	return m, nil
}

// normalize divides every entry's wall time by the reference entry's.
func normalize(m map[string]entry, ref string) error {
	base, ok := m[ref]
	if !ok || base.WallNsPerOp <= 0 {
		return fmt.Errorf("normalization entry %q missing or non-positive", ref)
	}
	for k, e := range m {
		e.WallNsPerOp /= base.WallNsPerOp
		m[k] = e
	}
	return nil
}

// median returns the middle value (mean of the middle two for even n).
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func main() {
	baseline := flag.String("baseline", "BENCH_engine.json", "pinned baseline file")
	threshold := flag.Float64("threshold", 1.30, "fail when median/baseline exceeds this ratio")
	norm := flag.String("normalize", "engine/yield", "entry to normalize by (empty: compare raw wall times)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: bench-guard [flags] fresh1.json [fresh2.json ...]")
		os.Exit(2)
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "bench-guard:", err)
		os.Exit(1)
	}

	base, err := load(*baseline)
	if err != nil {
		fail(err)
	}
	if *norm != "" {
		if err := normalize(base, *norm); err != nil {
			fail(fmt.Errorf("baseline: %w", err))
		}
	}
	fresh := make([]map[string]entry, 0, flag.NArg())
	for _, path := range flag.Args() {
		m, err := load(path)
		if err != nil {
			fail(err)
		}
		if *norm != "" {
			if err := normalize(m, *norm); err != nil {
				fail(fmt.Errorf("%s: %w", path, err))
			}
		}
		fresh = append(fresh, m)
	}

	names := make([]string, 0, len(base))
	for name := range base {
		if strings.HasPrefix(name, "engine/") || strings.HasPrefix(name, "orca/") ||
			strings.HasPrefix(name, "kv/") || strings.HasPrefix(name, "consensus/") ||
			strings.HasPrefix(name, "shard/") || strings.HasPrefix(name, "adapt/") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fail(fmt.Errorf("baseline %s has no engine/, orca/, or kv/ entries", *baseline))
	}

	bad, fast := 0, 0
	for _, name := range names {
		var samples []float64
		virtOK := true
		for _, m := range fresh {
			if e, ok := m[name]; ok {
				samples = append(samples, e.WallNsPerOp)
				// The virtual percentile and crash-recovery watermark are
				// deterministic: every fresh run must reproduce the pinned
				// figures bit for bit.
				if base[name].P99VirtUs != 0 && e.P99VirtUs != base[name].P99VirtUs {
					virtOK = false
				}
				if base[name].RecoveryVirtUs != 0 && e.RecoveryVirtUs != base[name].RecoveryVirtUs {
					virtOK = false
				}
			}
		}
		if len(samples) == 0 {
			fmt.Printf("MISSING %-28s (no fresh samples)\n", name)
			bad++
			continue
		}
		med := median(samples)
		ratio := med / base[name].WallNsPerOp
		status := "ok"
		if ratio > *threshold {
			status = "REGRESSED"
			bad++
		}
		if !virtOK {
			status = "VIRT-DRIFT"
			bad++
		}
		if ratio < 1 / *threshold {
			fast++
		}
		fmt.Printf("%-9s %-28s ratio %.2f (median of %d)\n", status, name, ratio, len(samples))
	}
	// In normalized mode the reference entry itself always reads 1.00,
	// so a regression THERE would show up as everything else
	// "improving" in lockstep — which would mask real regressions of
	// the same magnitude. Treat a majority of beyond-threshold
	// improvements as the reference regressing.
	if *norm != "" && fast*2 > len(names) {
		fail(fmt.Errorf("%d of %d entries 'improved' beyond %.0f%% — the normalization entry %q likely regressed; rerun with -normalize \"\" on the baseline host",
			fast, len(names), (1 - 1 / *threshold)*100, *norm))
	}
	if bad > 0 {
		fail(fmt.Errorf("%d of %d entries regressed beyond %.0f%%", bad, len(names), (*threshold-1)*100))
	}
	fmt.Printf("all %d entries within %.0f%% of baseline\n", len(names), (*threshold-1)*100)
}
