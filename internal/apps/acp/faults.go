package acp

import (
	"fmt"

	"repro/internal/orca"
	"repro/internal/orca/std"
	"repro/internal/sim"
)

// Fault-tolerant ACP. The paper's static partition breaks when a
// worker machine crashes: the dead participant's variables are never
// rechecked and the idle-all termination protocol waits for it
// forever. The crash-aware variant keeps the algorithm but makes the
// master a supervisor: when a machine crashes, the master retires its
// workers from the Work object — they count as idle forever, their
// partitions move to an orphan pool any survivor can claim from, and
// the variable each was revising mid-crash is re-flagged so its
// half-done revision is redone. Arc consistency is a confluent
// fixpoint, so the surviving workers converge to exactly the domains a
// healthy run computes.

// supervisePollInterval is how often the crash-aware master checks for
// participant deaths. Liveness is not a shared object — it changes
// underneath the consistency protocols — so the master polls the
// runtime's crash reports in virtual time.
const supervisePollInterval = 25 * sim.Millisecond

// runOrcaFT executes the crash-aware ACP program. The fault plan must
// not crash processor 0 (the master's machine).
func runOrcaFT(cfg orca.Config, inst *Instance, workers int) Result {
	rt := orca.New(cfg, registerAll)
	res := Result{}
	rep := rt.Run(func(p *orca.Proc) {
		domains := NewDomains(p, inst.NVars, inst.FullDomain())
		work := NewWork(p, inst.NVars, workers)
		result := std.NewBoolArray(p, workers, false)
		nosolution := std.NewFlag(p, false)
		revAcc := std.NewAccum(p)
		exited := std.NewBoolArray(p, workers, false)

		parts := partition(inst.NVars, workers)
		for me := 0; me < workers; me++ {
			me := me
			p.Fork(workerCPU(me, cfg.Processors), fmt.Sprintf("acp-worker%d", me), func(wp *orca.Proc) {
				workerLoop(wp, inst, me, parts[me], domains, work, result, nosolution, revAcc)
				exited.Set(wp, me, true)
			})
		}

		// Supervision loop: retire the workers of crashed machines and
		// finish once the fixpoint is reached (or a wipeout aborted the
		// run) and every worker has either exited or died. Exit is
		// tracked per worker — an aggregate count would let a
		// dead-but-exited worker stand in for a survivor still between
		// its termination check and its revAcc contribution.
		retired := make(map[int]bool)
		for {
			for _, node := range p.DeadNodes() {
				if retired[node] {
					continue
				}
				retired[node] = true
				var ws, orphans []int
				for me := 0; me < workers; me++ {
					if workerCPU(me, cfg.Processors) == node {
						ws = append(ws, me)
						orphans = append(orphans, parts[me]...)
					}
				}
				if len(ws) > 0 {
					work.Retire(p, ws, orphans)
				}
			}
			if work.IsDone(p) || nosolution.Value(p) {
				settled := true
				for me := 0; me < workers; me++ {
					if !exited.Get(p, me) && !p.NodeDown(workerCPU(me, cfg.Processors)) {
						settled = false
						break
					}
				}
				if settled {
					break
				}
			}
			p.Sleep(supervisePollInterval)
		}
		res.NoSolution = nosolution.Value(p)
		res.Revisions = int64(revAcc.Value(p))
		res.Domains = domains.Snapshot(p)
	})
	res.Report = rep
	res.Runtime = rt
	return res
}
