package rts

import (
	"errors"
	"fmt"

	"repro/internal/amoeba"
	"repro/internal/sim"
)

// P2PRTS is the paper's §3.2.2 runtime system, for networks without
// hardware broadcast. Each object has a primary copy on one machine;
// other machines may hold secondary copies. Writes go to the primary,
// which keeps the secondaries consistent with one of two protocols:
//
//   - Invalidation: the primary locks the object, sends invalidation
//     messages to all secondaries, collects acknowledgements, applies
//     the write, and unlocks. Secondaries re-fetch on demand.
//   - Update: a two-phase protocol. Phase one ships the operation code
//     and parameters to every secondary, which locks its copy, applies
//     the operation, and acknowledges while staying locked. When all
//     acknowledgements arrive the primary applies the write and phase
//     two unlocks all copies. Reads attempted while a copy is locked
//     suspend until it is unlocked.
//
// Replication is decided dynamically from per-machine read/write
// statistics: a machine whose read/write ratio for an object exceeds a
// threshold fetches a copy from the primary; when the ratio falls
// below another threshold it discards its copy.
type P2PRTS struct {
	reg   *Registry
	costs Costs
	cfg   P2PConfig
	nodes []*p2pNode
	objs  map[ObjID]*p2pMeta
	ids   *idAlloc

	// mover and moveSnap, set by a MixedRTS hosting adaptive objects,
	// connect a moveout to the broadcast total order (see adapt.go):
	// moveSnap publishes the state snapshot before the cut (so a crash
	// mid-moveout can be rescued), and mover broadcasts the sequenced
	// migrate record from the given machine and waits for the local
	// delivery.
	mover    func(p *sim.Proc, node int, id ObjID, state State)
	moveSnap func(node int, id ObjID, state State)

	// recoverState, also set by a MixedRTS, gives crash recovery a
	// better restart point than the creation arguments: an adaptive
	// object that migrated in from the broadcast runtime left a frozen
	// replica of its cut-point state on every machine, and restarting
	// from that snapshot loses only the writes acknowledged by the
	// dead primary after the cut. Returns nil when no snapshot exists.
	recoverState func(meta *p2pMeta) State

	stats P2PStats
}

var _ System = (*P2PRTS)(nil)

// P2PProtocol selects how the primary keeps secondaries consistent.
type P2PProtocol int

const (
	// Invalidation discards secondary copies on writes.
	Invalidation P2PProtocol = iota
	// Update ships operations to secondary copies with a two-phase
	// commit/unlock protocol.
	Update
)

// String names the protocol for tables and traces.
func (p P2PProtocol) String() string {
	if p == Invalidation {
		return "invalidate"
	}
	return "update"
}

// Placement controls the replication policy.
type Placement int

const (
	// DynamicPlacement is the paper's scheme: one copy initially,
	// replicas created and discarded from read/write-ratio statistics.
	DynamicPlacement Placement = iota
	// SingleCopy never replicates: all remote accesses are RPCs.
	SingleCopy
	// FullReplication installs a copy on every machine at creation
	// and never discards (an ablation baseline).
	FullReplication
)

// String names the placement policy for tables and traces.
func (pl Placement) String() string {
	switch pl {
	case DynamicPlacement:
		return "dynamic"
	case SingleCopy:
		return "single"
	default:
		return "full"
	}
}

// P2PConfig parameterizes the runtime.
type P2PConfig struct {
	Protocol  P2PProtocol
	Placement Placement
	// FetchRatio: fetch a copy when reads/writes exceeds this.
	FetchRatio float64
	// DiscardRatio: discard the copy when reads/writes drops below.
	DiscardRatio float64
	// WindowMin is the minimum accesses before acting on statistics.
	WindowMin int64
	// RPCPolicy overrides the kernel RPC policy; guarded operations
	// can legitimately block for a long time, so retries are high.
	RPCPolicy amoeba.RPCDefaults
}

// DefaultP2PConfig returns the paper's dynamic-update configuration.
func DefaultP2PConfig() P2PConfig {
	return P2PConfig{
		Protocol:     Update,
		Placement:    DynamicPlacement,
		FetchRatio:   4,
		DiscardRatio: 1,
		WindowMin:    8,
		RPCPolicy:    amoeba.RPCDefaults{Timeout: 2 * sim.Second, Retries: 1 << 20},
	}
}

// P2PStats aggregates runtime counters.
type P2PStats struct {
	LocalReads    int64
	RemoteReads   int64
	Writes        int64
	GuardWaits    int64 // guard suspensions (local copies and primary-queued tasks)
	Fetches       int64
	Discards      int64
	Invalidations int64 // invalidation messages sent
	Updates       int64 // update messages sent
	Crashes       int64 // machine crashes the runtime was notified of
	OpsRetried    int64 // operations re-issued after a crash broke their first attempt
	Rehomed       int64 // objects re-homed (or restarted) on a new primary
}

// p2pMeta is the global registry entry for an object: its type, the
// (static) primary machine, and the consistency protocol and placement
// policy governing it. Protocol and placement are per object — plain
// Create copies them from the runtime's configuration, CreateWith
// overrides them — so one runtime can host objects under different
// policies side by side.
type p2pMeta struct {
	id        ObjID
	typ       *ObjectType
	primary   int
	protocol  P2PProtocol
	placement Placement
	// ctorArgs are the creation arguments, kept so an object whose
	// every copy died with its machines can be restarted from its
	// initial state (see rehome).
	ctorArgs []any

	// moved marks an object that migrated to the broadcast runtime
	// (see adapt.go): every point-to-point path bounces it with the
	// migration retry sentinel.
	moved bool

	ops opCache
}

// op resolves an operation name through the object's MRU cache.
func (m *p2pMeta) op(name string) *OpDef { return m.ops.lookup(m.typ, name) }

// p2pInstance is one machine's copy of an object.
type p2pInstance struct {
	typ     *ObjectType
	state   State
	locked  bool
	valid   bool
	primary bool
	cond    *sim.Cond    // readers wait for unlock / guard / invalidation
	copyset map[int]bool // primary only
	seg     *amoeba.Segment
}

// p2pTask is a unit of work for an object's primary thread. Tasks
// from remote machines carry the RPC request to reply to; local tasks
// carry a condition the invoking thread waits on.
type p2pTask struct {
	kind string // "write", "read", "fetch", "moveout", "rehome"
	op   *OpDef
	args []any
	from int
	to   int // rehome target
	done bool
	res  []any
	cond sim.Cond
	req  *amoeba.Request
}

// p2pNode is the per-machine runtime state.
type p2pNode struct {
	rts    *P2PRTS
	m      *amoeba.Machine
	client *amoeba.Client
	srv    *amoeba.Server
	insts  map[ObjID]*p2pInstance
	queues map[ObjID]*sim.Queue[*p2pTask]
	access map[ObjID]*accessStats
}

// accessStats tracks one machine's accesses to one object for the
// dynamic replication decision.
type accessStats struct {
	reads, writes int64
}

func (a *accessStats) ratio() float64 {
	w := a.writes
	if w == 0 {
		w = 1
	}
	return float64(a.reads) / float64(w)
}

// Wire bodies for the point-to-point protocols.
type (
	p2pOpReq struct { // client -> primary: execute op (write or read)
		Obj  ObjID
		Op   string
		Args []any
	}
	p2pInvalReq  struct{ Obj ObjID } // primary -> secondary
	p2pUpdateReq struct {            // primary -> secondary, phase 1
		Obj  ObjID
		Op   string
		Args []any
	}
	p2pUnlock struct{ Obj ObjID } // primary -> secondary, phase 2 (one-way)
	p2pDrop   struct {            // secondary -> primary (one-way)
		Obj  ObjID
		Node int
	}
	p2pFetchReq struct { // secondary -> primary
		Obj  ObjID
		Node int
	}
	p2pInstall struct { // primary -> node (one-way, full replication)
		Obj   ObjID
		State State
	}
	p2pMigrateReq struct { // initiator -> primary: enqueue a migration task
		Obj    ObjID
		Kind   string // "moveout" or "rehome"
		Target int
	}
)

const (
	p2pRPCPort = "objsvc" // RPC: op, update, inval, fetch
	p2pCtlPort = "objctl" // one-way: unlock, drop, install
)

// NewP2PRTS builds the point-to-point runtime over the machines.
func NewP2PRTS(reg *Registry, costs Costs, cfg P2PConfig, machines []*amoeba.Machine) *P2PRTS {
	if cfg.RPCPolicy.Timeout == 0 {
		cfg.RPCPolicy = DefaultP2PConfig().RPCPolicy
	}
	r := &P2PRTS{reg: reg, costs: costs, cfg: cfg, objs: make(map[ObjID]*p2pMeta), ids: &idAlloc{}}
	for _, m := range machines {
		n := &p2pNode{
			rts:    r,
			m:      m,
			client: amoeba.NewClient(m, cfg.RPCPolicy),
			insts:  make(map[ObjID]*p2pInstance),
			queues: make(map[ObjID]*sim.Queue[*p2pTask]),
			access: make(map[ObjID]*accessStats),
		}
		n.srv = amoeba.NewServer(m, p2pRPCPort)
		m.Bind(p2pCtlPort, n.handleCtl)
		m.SpawnThread("objsvc", n.serve)
		r.nodes = append(r.nodes, n)
	}
	return r
}

// Nodes implements System.
func (r *P2PRTS) Nodes() int { return len(r.nodes) }

// Stats returns a snapshot of runtime counters.
func (r *P2PRTS) Stats() P2PStats { return r.stats }

// Counters implements StatsSource with the unified counter snapshot.
func (r *P2PRTS) Counters() RTSStats {
	return RTSStats{
		LocalReads:    r.stats.LocalReads,
		RemoteReads:   r.stats.RemoteReads,
		P2PWrites:     r.stats.Writes,
		GuardWaits:    r.stats.GuardWaits,
		Fetches:       r.stats.Fetches,
		Discards:      r.stats.Discards,
		Invalidations: r.stats.Invalidations,
		Updates:       r.stats.Updates,
		Crashes:       r.stats.Crashes,
		OpsRetried:    r.stats.OpsRetried,
		Rehomed:       r.stats.Rehomed,
	}
}

// Primary reports an object's primary machine.
func (r *P2PRTS) Primary(id ObjID) int { return r.meta(id).primary }

// CopyCount reports how many machines currently hold a copy. Copies
// that died with a crashed machine do not count.
func (r *P2PRTS) CopyCount(id ObjID) int {
	n := 0
	for _, node := range r.nodes {
		if node.m.Crashed() {
			continue
		}
		if inst, ok := node.insts[id]; ok && inst.valid {
			n++
		}
	}
	return n
}

// HasCopy reports whether a machine holds a valid copy.
func (r *P2PRTS) HasCopy(node int, id ObjID) bool {
	if r.nodes[node].m.Crashed() {
		return false
	}
	inst, ok := r.nodes[node].insts[id]
	return ok && inst.valid
}

// PeekState implements System.
func (r *P2PRTS) PeekState(node int, id ObjID) (State, bool) {
	inst, ok := r.nodes[node].insts[id]
	if !ok || !inst.valid {
		return nil, false
	}
	return inst.state, true
}

func (r *P2PRTS) meta(id ObjID) *p2pMeta {
	m, ok := r.objs[id]
	if !ok {
		panic(fmt.Sprintf("rts: unknown object %d", id))
	}
	return m
}

// Create instantiates the object with its single primary copy on the
// creating machine (the paper: "Initially, only one copy of each
// object is maintained"). Under FullReplication, copies are pushed to
// every machine over the wire. The object is governed by the runtime's
// configured protocol and placement.
func (r *P2PRTS) Create(w *Worker, typeName string, args ...any) ObjID {
	return r.CreateWith(w, typeName, r.cfg.Protocol, r.cfg.Placement, args...)
}

// CreateWith is Create with a per-object protocol and placement
// override — the runtime keeps this object's secondaries consistent
// with the given protocol and applies the given placement policy,
// independent of what the rest of the objects use.
func (r *P2PRTS) CreateWith(w *Worker, typeName string, protocol P2PProtocol, placement Placement, args ...any) ObjID {
	t := r.reg.Lookup(typeName)
	id := r.ids.alloc()
	node := r.nodes[w.Node()]
	w.Flush()
	w.M.Compute(w.P, r.costs.Create)
	state := t.New(args)
	inst := &p2pInstance{
		typ: t, state: state, valid: true, primary: true,
		cond:    sim.NewCond(w.M.Env()),
		copyset: make(map[int]bool),
		seg:     w.M.AllocSegment(int64(t.stateSize(state))),
	}
	node.insts[id] = inst
	r.objs[id] = &p2pMeta{id: id, typ: t, primary: w.Node(), protocol: protocol, placement: placement,
		ctorArgs: append([]any(nil), args...)}
	q := sim.NewQueue[*p2pTask](w.M.Env())
	node.queues[id] = q
	node.m.SpawnThread(fmt.Sprintf("obj%d", id), func(p *sim.Proc) { node.objectLoop(p, id, q) })
	if placement == FullReplication {
		for _, other := range r.nodes {
			if other.m.ID() == w.Node() {
				continue
			}
			inst.copyset[other.m.ID()] = true
			w.M.Send(w.P, other.m.ID(), amoeba.Packet{
				Port: p2pCtlPort, Kind: "rts-install",
				Body: p2pInstall{Obj: id, State: t.Clone(state)},
				Size: t.stateSize(state) + 16,
			})
		}
	}
	return id
}

// Invoke implements System.
func (r *P2PRTS) Invoke(w *Worker, id ObjID, opName string, args ...any) []any {
	meta := r.meta(id)
	op := meta.op(opName)
	node := r.nodes[w.Node()]
	if op.Kind == Read {
		return node.invokeRead(w, meta, op, args)
	}
	return node.invokeWrite(w, meta, op, args)
}

// --- invocation paths -------------------------------------------------

// invokeRead serves a read locally when a valid copy exists, otherwise
// remotely at the primary; it then updates statistics and may fetch a
// copy. A primary that dies mid-read is detected by the failing RPC
// (or by a copy left locked forever) and the object is re-homed before
// the read retries.
func (n *p2pNode) invokeRead(w *Worker, meta *p2pMeta, op *OpDef, args []any) []any {
	r := n.rts
	st := n.accessFor(meta.id)
	st.reads++
	for {
		if meta.moved {
			return retrySlice // migrated to the broadcast runtime
		}
		inst, ok := n.insts[meta.id]
		if ok && inst.valid {
			// Local read; suspend while the copy is locked or the
			// guard is false. Flush before inspecting the replica:
			// flushing blocks on the CPU and a wakeup firing during
			// it would otherwise be lost; the check-then-Wait path
			// itself must never block.
			w.Flush()
			if !inst.valid {
				continue // invalidated while flushing
			}
			if inst.locked {
				if r.nodeDown(meta.primary) {
					// The primary died between update phases; re-home
					// the object, which also unlocks this copy.
					r.rehome(w, meta)
					continue
				}
				inst.cond.Wait(w.P)
				continue
			}
			if op.Guard != nil {
				w.Accrue(r.costs.GuardCheck)
				if !op.Guard(inst.state, args) {
					r.stats.GuardWaits++
					inst.cond.Wait(w.P)
					continue
				}
			}
			r.stats.LocalReads++
			w.Accrue(r.costs.ReadLocal + r.costs.opCost(op))
			return w.applyLocal(op, inst.state, args)
		}
		// No local copy: maybe fetch one first, else read remotely.
		if n.shouldFetch(meta, st) {
			n.fetchCopy(w, meta)
			continue
		}
		r.stats.RemoteReads++
		w.Flush()
		res, err := n.remoteOp(w.P, meta, op, args)
		if err != nil {
			r.stats.OpsRetried++
			r.rehome(w, meta)
			continue
		}
		if isRetry(res) && !meta.moved {
			continue // primary re-homed while the op was in flight: retry there
		}
		return res
	}
}

// invokeWrite routes a write to the primary and afterwards applies the
// discard heuristic. If the primary crashed, the object is re-homed
// and the write re-issued: crash recovery gives writes at-least-once
// semantics (see DESIGN.md), exactly once in the common case where the
// first attempt never reached the dead primary.
func (n *p2pNode) invokeWrite(w *Worker, meta *p2pMeta, op *OpDef, args []any) []any {
	r := n.rts
	st := n.accessFor(meta.id)
	st.writes++
	r.stats.Writes++
	w.Flush()
	var res []any
	for {
		if meta.moved {
			return retrySlice // migrated to the broadcast runtime
		}
		if meta.primary == n.m.ID() {
			t := &p2pTask{kind: "write", op: op, args: args, from: n.m.ID()}
			n.queues[meta.id].Put(t)
			for !t.done {
				t.cond.Wait(w.P)
			}
			res = t.res
		} else {
			var err error
			res, err = n.remoteOp(w.P, meta, op, args)
			if err != nil {
				r.stats.OpsRetried++
				r.rehome(w, meta)
				continue
			}
		}
		if isRetry(res) && !meta.moved {
			continue // primary re-homed mid-op: retry at the new primary
		}
		break
	}
	n.maybeDiscard(w, meta, st)
	return res
}

// remoteOp performs the operation at the primary over RPC. A crashed
// primary returns an error for the caller to recover from; any other
// failure is a bug and panics.
func (n *p2pNode) remoteOp(p *sim.Proc, meta *p2pMeta, op *OpDef, args []any) ([]any, error) {
	body := p2pOpReq{Obj: meta.id, Op: op.Name, Args: args}
	rep, err := n.client.Trans(p, meta.primary, p2pRPCPort, "op", body, SizeOfArgs(args)+len(op.Name)+16)
	if err != nil {
		if errors.Is(err, amoeba.ErrCrashed) {
			return nil, err
		}
		panic(fmt.Sprintf("rts: remote op %s on object %d failed: %v", op.Name, meta.id, err))
	}
	if rep == nil {
		return nil, nil
	}
	return rep.([]any), nil
}

// accessFor returns this machine's statistics for an object.
func (n *p2pNode) accessFor(id ObjID) *accessStats {
	st, ok := n.access[id]
	if !ok {
		st = &accessStats{}
		n.access[id] = st
	}
	return st
}

// shouldFetch applies the fetch threshold.
func (n *p2pNode) shouldFetch(meta *p2pMeta, st *accessStats) bool {
	if meta.placement != DynamicPlacement {
		return false
	}
	if st.reads+st.writes < n.rts.cfg.WindowMin {
		return false
	}
	return st.ratio() >= n.rts.cfg.FetchRatio
}

// maybeDiscard applies the discard threshold to a local secondary.
func (n *p2pNode) maybeDiscard(w *Worker, meta *p2pMeta, st *accessStats) {
	if meta.placement != DynamicPlacement {
		return
	}
	inst, ok := n.insts[meta.id]
	if !ok || !inst.valid || inst.primary {
		return
	}
	if st.reads+st.writes < n.rts.cfg.WindowMin || st.ratio() > n.rts.cfg.DiscardRatio {
		return
	}
	n.rts.stats.Discards++
	n.dropLocal(meta.id)
	n.m.Send(w.P, meta.primary, amoeba.Packet{
		Port: p2pCtlPort, Kind: "rts-drop",
		Body: p2pDrop{Obj: meta.id, Node: n.m.ID()}, Size: 16,
	})
	st.reads, st.writes = 0, 0
}

// fetchCopy installs a secondary copy from the primary, re-homing the
// object first if the primary died.
func (n *p2pNode) fetchCopy(w *Worker, meta *p2pMeta) {
	r := n.rts
	r.stats.Fetches++
	st := n.accessFor(meta.id)
	st.reads, st.writes = 0, 0
	for {
		if meta.moved || meta.primary == n.m.ID() {
			return // migrated away, or re-homed onto this very machine
		}
		rep, err := n.client.Trans(w.P, meta.primary, p2pRPCPort, "fetch",
			p2pFetchReq{Obj: meta.id, Node: n.m.ID()}, 16)
		if err == nil {
			if res, ok := rep.([]any); ok && isRetry(res) {
				continue // primary moved mid-fetch: re-resolve
			}
			n.installCopy(meta.id, meta.typ, rep.(State))
			return
		}
		if !errors.Is(err, amoeba.ErrCrashed) {
			panic(fmt.Sprintf("rts: fetch of object %d failed: %v", meta.id, err))
		}
		r.stats.OpsRetried++
		r.rehome(w, meta)
	}
}

// installCopy places a (cloned) state as a valid secondary.
func (n *p2pNode) installCopy(id ObjID, t *ObjectType, state State) {
	if old, ok := n.insts[id]; ok {
		old.seg.Free()
	}
	n.insts[id] = &p2pInstance{
		typ: t, state: state, valid: true,
		cond: sim.NewCond(n.m.Env()),
		seg:  n.m.AllocSegment(int64(t.stateSize(state))),
	}
}

// submitMigrate routes a migration task ("moveout" to the broadcast
// runtime, or "rehome" onto a new primary) to the object's primary
// thread and waits for it to run. A primary that dies first is
// re-homed and the task re-submitted; a moveout that already cut over
// (meta.moved) is left to the broadcast record to finish.
func (n *p2pNode) submitMigrate(w *Worker, meta *p2pMeta, kind string, target int) {
	r := n.rts
	w.Flush()
	for {
		if meta.moved {
			return
		}
		if meta.primary == n.m.ID() {
			t := &p2pTask{kind: kind, from: n.m.ID(), to: target}
			n.queues[meta.id].Put(t)
			for !t.done {
				t.cond.Wait(w.P)
			}
			return
		}
		rep, err := n.client.Trans(w.P, meta.primary, p2pRPCPort, "migrate",
			p2pMigrateReq{Obj: meta.id, Kind: kind, Target: target}, 24)
		if err != nil {
			if !errors.Is(err, amoeba.ErrCrashed) {
				panic(fmt.Sprintf("rts: migrate of object %d failed: %v", meta.id, err))
			}
			r.stats.OpsRetried++
			r.rehome(w, meta)
			continue
		}
		if res, ok := rep.([]any); ok && isRetry(res) && !meta.moved {
			continue // primary re-homed mid-request: re-submit there
		}
		return
	}
}

// dropLocal removes the local copy and wakes any blocked readers so
// they re-route to the primary.
func (n *p2pNode) dropLocal(id ObjID) {
	inst, ok := n.insts[id]
	if !ok {
		return
	}
	inst.valid = false
	inst.cond.Broadcast()
	inst.seg.Free()
	delete(n.insts, id)
}
