package group

import (
	"errors"
	"fmt"

	"repro/internal/amoeba"
	"repro/internal/sim"
)

// Method selects the broadcast protocol variant.
type Method int

const (
	// Auto picks PB for single-packet messages and BB for longer
	// ones, the policy of the paper's implementation.
	Auto Method = iota
	// ForcePB always uses the Point-to-point/Broadcast method.
	ForcePB
	// ForceBB always uses the Broadcast/Broadcast method.
	ForceBB
)

// String names the method for tables and traces.
func (m Method) String() string {
	switch m {
	case Auto:
		return "auto"
	case ForcePB:
		return "PB"
	case ForceBB:
		return "BB"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Protocol selects how the group establishes its total order.
type Protocol int

const (
	// ElectedSequencer is the paper's protocol: a single sequencer
	// orders every broadcast (PB/BB), and its crash triggers a
	// vote-collection election during which sequencing stalls.
	ElectedSequencer Protocol = iota
	// Consensus replicates the sequencing log: a quorum of members
	// accepts every slot (single-decree Paxos per sequence number)
	// before any member delivers it, so losing the leader costs one
	// in-flight re-proposal instead of an election window. See
	// consensus.go.
	Consensus
)

// String names the protocol for tables and traces.
func (pr Protocol) String() string {
	switch pr {
	case ElectedSequencer:
		return "sequencer"
	case Consensus:
		return "consensus"
	}
	return fmt.Sprintf("Protocol(%d)", int(pr))
}

// BatchConfig governs frame packing (see DESIGN.md, "Batching and
// frame packing"). When enabled, the sequencer coalesces queued
// requests into one sequenced multi-op frame (one sequence number per
// op, one frame per batch), and a sender packs ops submitted in the
// same virtual instant into one request frame. The zero value
// disables packing and leaves every code path of the unbatched
// protocol untouched.
type BatchConfig struct {
	// MaxOps flushes a packed frame at this many ops. Values below 2
	// disable batching.
	MaxOps int
	// MaxBytes flushes when the packed payload reaches this many
	// bytes (so a batch stays within one wire fragment).
	MaxBytes int
	// Linger is the flush deadline: an op waits at most this long in
	// a packer before the partial batch is sent.
	Linger sim.Time
}

// Enabled reports whether frame packing is on.
func (b BatchConfig) Enabled() bool { return b.MaxOps > 1 }

// Config parameterizes a group.
type Config struct {
	// Members lists the node ids in the group. The initial sequencer
	// is the lowest id ("a committee electing a chairman") unless
	// Sequencer picks another member.
	Members []int
	// Sequencer, when it names a member, is the initial sequencer.
	// Any other value (including the zero value when node 0 is not a
	// member) falls back to the lowest member id. Fault experiments
	// use it to place the sequencer on a machine the fault plan
	// crashes without losing the computation's main process.
	Sequencer int
	// Method selects PB/BB policy; Auto follows the paper.
	Method Method
	// Protocol selects the sequencing protocol: the paper's elected
	// sequencer (the zero value) or the consensus-replicated log.
	Protocol Protocol
	// ProposeTimeout is the consensus leader's re-propose deadline for
	// slots a quorum has not yet accepted, and the unit of the
	// deterministic takeover backoff ladder.
	ProposeTimeout sim.Time
	// AllowJoin permits JoinLate members (consensus only): a late
	// joiner adopts the commit watermark via a majority read and
	// catches up through ordinary gap recovery.
	AllowJoin bool
	// Batch configures frame packing; the zero value disables it.
	Batch BatchConfig
	// SenderTimeout is how long a sender waits for its broadcast to be
	// sequenced before retransmitting.
	SenderTimeout sim.Time
	// SenderRetries bounds retransmissions before the sender suspects
	// the sequencer has crashed and calls an election.
	SenderRetries int
	// GapTimeout is the interval between retransmission requests for
	// missing sequence numbers.
	GapTimeout sim.Time
	// StatusEvery makes members report their delivery progress to the
	// sequencer every N deliveries, enabling history trimming.
	StatusEvery int
	// HistoryMax caps the sequencer history buffer (a safety net if
	// statuses stall, e.g. while a member is crashed).
	HistoryMax int
	// ElectionWait is how long candidates collect votes.
	ElectionWait sim.Time
	// CacheSize is the per-member cache of recently delivered
	// messages, used to rebuild history after an election.
	CacheSize int
	// Heartbeat is the interval at which the sequencer announces its
	// highest sequence number, so members discover losses even when
	// traffic stops (a trailing dropped broadcast would otherwise go
	// unnoticed forever).
	Heartbeat sim.Time
	// Port overrides the kernel port the group binds. Hosting several
	// groups on one machine requires distinct ports (Bind panics on a
	// duplicate). Empty derives the default: "grp" for a solitary
	// group, "grp<Shard>" when ShardCount labels this group as one of
	// N co-hosted sequencer groups.
	Port string
	// Shard and ShardCount label this group's position among N
	// co-hosted sequencer groups (sharded total order; see
	// internal/rts ShardedRTS). The zero values mean a solitary group.
	Shard      int
	ShardCount int
}

// DefaultConfig returns a configuration tuned for the simulated
// testbed.
func DefaultConfig(members []int) Config {
	return Config{
		Members:        members,
		Method:         Auto,
		ProposeTimeout: 40 * sim.Millisecond,
		SenderTimeout:  200 * sim.Millisecond,
		SenderRetries:  6,
		GapTimeout:     50 * sim.Millisecond,
		StatusEvery:    64,
		HistoryMax:     16384,
		ElectionWait:   300 * sim.Millisecond,
		CacheSize:      8192,
		Heartbeat:      250 * sim.Millisecond,
	}
}

// Validate checks the configuration for combinations that would
// misbehave mid-run. Join panics on the returned error, so a bad
// configuration fails at startup instead of corrupting a run.
func (c Config) Validate() error {
	if len(c.Members) == 0 {
		return errors.New("group: empty membership")
	}
	seen := make(map[int]bool, len(c.Members))
	for _, id := range c.Members {
		if id < 0 {
			return fmt.Errorf("group: negative member id %d", id)
		}
		if seen[id] {
			return fmt.Errorf("group: duplicate member id %d", id)
		}
		seen[id] = true
	}
	switch c.Method {
	case Auto, ForcePB, ForceBB:
	default:
		return fmt.Errorf("group: unknown method %v", c.Method)
	}
	switch c.Protocol {
	case ElectedSequencer, Consensus:
	default:
		return fmt.Errorf("group: unknown protocol %v", c.Protocol)
	}
	if c.Protocol == Consensus && c.Method == ForceBB {
		return errors.New("group: ForceBB is incompatible with the consensus protocol (proposals already replicate payloads)")
	}
	if c.Protocol == Consensus && c.ProposeTimeout <= 0 {
		return errors.New("group: the consensus protocol requires a positive ProposeTimeout")
	}
	if c.AllowJoin && c.Protocol != Consensus {
		return errors.New("group: AllowJoin requires the consensus protocol (a majority read needs a quorum-replicated log)")
	}
	if c.Batch.MaxOps < 0 || c.Batch.MaxBytes < 0 || c.Batch.Linger < 0 {
		return errors.New("group: negative batch parameter")
	}
	if c.Batch.Enabled() && c.Batch.Linger <= 0 {
		return errors.New("group: batching requires a positive Linger deadline")
	}
	if c.ShardCount < 0 {
		return fmt.Errorf("group: negative shard count %d", c.ShardCount)
	}
	if c.ShardCount > 0 && (c.Shard < 0 || c.Shard >= c.ShardCount) {
		return fmt.Errorf("group: shard %d out of range [0,%d)", c.Shard, c.ShardCount)
	}
	if c.ShardCount == 0 && c.Shard != 0 {
		return fmt.Errorf("group: shard %d set without a shard count", c.Shard)
	}
	return nil
}

// Delivery is one totally-ordered message handed to the application.
// All members observe identical (Seq, UID, Src, Body) streams. More
// marks a mid-batch op: the remaining ops of its packed frame follow
// at the next sequence numbers, letting consumers amortize per-frame
// work (the RTS runs one guard-retry sweep per frame, not per op).
// The More flags are assigned by the sequencer and travel with the
// message, so every member sees identical frame boundaries regardless
// of how (or how often) a message reached it.
type Delivery struct {
	Seq  int64
	UID  int64
	Src  int
	Kind string
	Body any
	Size int
	More bool
	// Dup marks a re-sequenced duplicate suppressed by the dedup
	// window (batching only). The payload must not be applied again;
	// the record exists so consumers still observe the frame boundary
	// the duplicate occupied — without it a member whose frame tail
	// was a duplicate would defer its per-frame sweep forever.
	Dup bool
}

// Wire message bodies. All travel on the "grp" port. SrcSeq is the
// sender's dense per-member submission counter: the sequencer and the
// delivery path dedup on (Src, SrcSeq) with O(1) ring-buffer windows
// instead of uid hash maps.
type (
	// reqMsg is PB's RequestForBroadcast, unicast to the sequencer.
	reqMsg struct {
		UID    int64
		Src    int
		SrcSeq int64
		Kind   string
		Body   any
		Size   int
	}
	// dataMsg is the sequenced message broadcast by the sequencer
	// (PB), or unicast as a retransmission. Epoch stamps the
	// sequencer's view so stale pre-election frames cannot interleave
	// with a new sequencer's stream. More marks a mid-batch op (see
	// Delivery).
	dataMsg struct {
		Seq    int64
		UID    int64
		Src    int
		SrcSeq int64
		Kind   string
		Body   any
		Size   int
		Epoch  int
		More   bool
	}
	// bbDataMsg is BB's unsequenced data broadcast from the sender.
	bbDataMsg struct {
		UID    int64
		Src    int
		SrcSeq int64
		Kind   string
		Body   any
		Size   int
	}
	// acceptMsg is BB's short Accept broadcast from the sequencer.
	// More mirrors the sequenced record's frame-boundary flag so a
	// member completing a mid-batch op from a retransmitted accept
	// reconstructs the boundary every other replica saw.
	acceptMsg struct {
		Seq   int64
		UID   int64
		Epoch int
		More  bool
	}
	// retxReq asks the sequencer to retransmit sequence numbers
	// [From, To]. Delivered piggybacks the requester's progress.
	retxReq struct {
		From, To  int64
		Node      int
		Delivered int64
	}
	// statusMsg reports delivery progress for history trimming.
	statusMsg struct {
		Node      int
		Delivered int64
	}
	// electMsg is an election vote: the candidate with the highest
	// HighSeq (ties to the lowest node id) becomes sequencer.
	electMsg struct {
		Epoch   int
		Node    int
		HighSeq int64
	}
	// coordMsg announces the election winner.
	coordMsg struct {
		Epoch   int
		Node    int
		HighSeq int64
	}
	// coordAck confirms a member has installed the winner's view;
	// the winner sequences nothing until every live member has.
	coordAck struct {
		Epoch int
		Node  int
	}
	// coordNack rejects a view whose HighSeq is behind the member's
	// deliveries (the winner must abort and re-elect).
	coordNack struct {
		Epoch   int
		Node    int
		HighSeq int64
	}
	// hbMsg is the sequencer's periodic progress announcement.
	hbMsg struct {
		Epoch   int
		Node    int
		HighSeq int64
	}
)

// Header sizes in bytes for the wire model.
const (
	hdrData   = 24
	hdrAccept = 20
	hdrSmall  = 20
	// hdrItem is the per-op framing overhead inside a packed frame
	// (uid, source, length).
	hdrItem = 12
)

// srcWindow is the per-source dedup window, in submissions: how far
// back the sequencer and the delivery path remember a source's
// operations. A source only retransmits while one of its ops is
// unacknowledged, and it can have at most a handful in flight, so the
// window is orders of magnitude deeper than any reachable
// retransmission. Submissions older than the window are treated as
// already handled.
const srcWindow = 4096

// Port is the kernel port the group protocol binds on every member.
const Port = "grp"

// bbAccept is a recorded accept whose data frame has not arrived yet.
type bbAccept struct {
	uid  int64
	more bool
}

// sendState tracks one of this member's broadcasts until it is
// sequenced. A batched send (items != nil) tracks several ops that
// travel in one frame; each op completes individually as it appears
// in the sequenced stream, and retransmissions carry only the ops
// still outstanding.
type sendState struct {
	uid     int64
	srcSeq  int64
	kind    string
	body    any
	size    int
	items   []batchItem // batched ops; nil for the single-op path
	method  Method      // resolved (PB or BB)
	retries int
	cycles  int // consensus: full retry cycles, for retransmit backoff
	timer   *sim.Event
}

// live reports whether any op of this send is still unacknowledged.
func (st *sendState) live(g *Member) bool {
	if st.items == nil {
		_, ok := g.outstanding[st.uid]
		return ok
	}
	for i := range st.items {
		if g.outstanding[st.items[i].UID] == st {
			return true
		}
	}
	return false
}

// Stats counts protocol activity at one member.
type Stats struct {
	Sent        int64
	PBSends     int64
	BBSends     int64
	Delivered   int64
	Retransmits int64
	GapRequests int64
	Elections   int64
	// BatchedOps counts ops that traveled inside a multi-op frame
	// this member sequenced or sent; Batches counts those frames.
	BatchedOps int64
	Batches    int64
	// Takeovers counts consensus leader takeovers this member
	// completed; Reproposals counts slots it re-proposed (after a
	// takeover or a propose timeout). RecoveryTime accumulates the
	// virtual time between suspecting a sequencer failure and the next
	// delivery — the stall an application actually observes.
	Takeovers    int64
	Reproposals  int64
	RecoveryTime sim.Time
}

// Member is one node's endpoint of the group. All methods must run in
// simulation context on the member's machine.
type Member struct {
	m   *amoeba.Machine
	cfg Config

	// port is the resolved kernel port (see Config.Port); castTo is
	// the sorted member list protocol broadcasts multicast to, nil
	// when the group spans every network node and physical broadcast
	// is identical (and cheaper to simulate).
	port   string
	castTo []int

	seqNode int
	epoch   int
	nextSeq int64 // next sequence number to deliver
	maxSeen int64 // highest sequence number observed
	sendSeq int64 // dense per-member submission counter (SrcSeq)
	outQ    *sim.Queue[Delivery]

	buffered    seqRing[*dataMsg]    // seq -> out-of-order data
	pendingBB   map[int64]*bbDataMsg // uid -> BB data awaiting accept
	acceptedBB  map[int64]bbAccept   // seq -> accept waiting for its data
	outstanding map[int64]*sendState // uid -> my unsequenced sends
	gapTimer    *sim.Event

	// memberIdx maps a node id to its dense index in cfg.Members (-1
	// for non-members); the per-source rings below are indexed by it.
	memberIdx []int

	// Delivered-message cache (for election history rebuild) and
	// per-source delivered windows: dlvBySrc[i] records, per
	// submission number, the sequence a source's op was delivered
	// under, so a re-sequenced duplicate after an election is
	// recognized in O(1).
	cache    []*dataMsg
	dlvBySrc []*seqRing[int64]

	// Sequencer state. A freshly elected sequencer is not installed
	// until every live member acknowledged its view; it assigns no
	// sequence numbers before that. history is a seq-indexed ring:
	// sequence numbers are dense, so lookup, record, and trim are
	// array steps and nothing iterates a map on the delivery path.
	isSeq     bool
	installed bool
	viewAcks  map[int]bool
	history   seqRing[*dataMsg]
	seenBySrc []*seqRing[int64] // per-source: submission -> assigned seq
	statuses  []int64           // per-member delivered progress (-1: none)
	trimMin   int64             // min status found by the last trim scan
	trimOwn   bool              // last scan was limited by own progress

	// Sequencer-side packers (batching only; see batch.go).
	packQ     []batchItem // PB ops queued for the next packed frame
	packBytes int
	packTimer *sim.Event
	accQ      []batchItem // BB ops queued for the next packed accept
	accTimer  *sim.Event

	// Sender-side packer (batching only): ops submitted in the same
	// instant leave in one request frame.
	sendQ     []batchItem
	sendBytes int
	sendArmed bool

	// Election state.
	electing   bool
	bestCand   electMsg
	votedEpoch int
	electTimer *sim.Event
	// Claimant convergence (exercised only when elections collide,
	// which needs a large group with unsynchronized suspicions): the
	// coord accepted for the current epoch, so a worse claimant cannot
	// displace a better one and a duplicate re-announcement does not
	// re-trigger a full retransmit of outstanding ops.
	haveCoord bool
	lastCoord coordMsg

	// Consensus state (Config.Protocol == Consensus; see
	// consensus.go).
	ballot     int64            // leader: the ballot my proposals carry (0: not leading)
	promised   int64            // highest ballot promised or accepted
	committed  int64            // highest slot known chosen (commit watermark)
	accepted   seqRing[accSlot] // acceptor log: slot -> highest-ballot accepted value
	accPrefix  int64            // contiguous accepted prefix under `promised`
	acked      []int64          // leader: per-member cumulative accepted prefixes
	ackScratch []int64          // quorum-floor scratch
	propTimer  *sim.Event       // leader: re-propose deadline
	takeover   *takeoverState   // in-flight prepare round (nil otherwise)
	suspTimer  *sim.Event       // takeover backoff (non-successor members)

	// Congestion damping: a fruitless re-propose round (no commit
	// progress) doubles the next re-propose deadline, and a suspicion
	// round that yields no delivery progress delays the next one.
	// Without this, a transient overload snowballs — re-proposals and
	// takeover traffic saturate the simulated wire, queueing delay
	// diverges, and every timeout fires forever against stale state.
	propBackoff uint  // leader: consecutive fruitless re-propose rounds
	propLastCmt int64 // leader: commit watermark at the last re-propose
	suspRounds  int   // suspicion rounds since the last delivery progress
	suspMark    int64 // nextSeq at the last suspicion round
	// leaderSeen is the last instant this member accepted a sign of
	// life (proposal, commit, heartbeat) from the leader it follows.
	// Prepares and fresh takeovers stand down while it is recent:
	// without that stickiness a large group's unsynchronized
	// suspicions depose every newly installed leader before it can
	// commit a single slot, and leadership changes hands forever.
	leaderSeen sim.Time
	// seqAlive is the last instant a delivery advanced nextSeq. The
	// elected protocol's sender suspicion consults it the same way
	// consensus consults leaderSeen: after a view change the new
	// sequencer drains the whole group's re-kicked backlog, and in a
	// large group that drain outlasts the sender retry budget — an
	// unsequenced op while deliveries are streaming means the op is
	// queued behind the backlog, not that the sequencer died.
	seqAlive  sim.Time
	joinTimer *sim.Event // JoinLate quorum-read retry
	joinInfo  map[int]joinInfoMsg
	joined    bool

	// Ack/commit-announce throttles (leading edge + refractory
	// window): the first event sends immediately, later ones inside
	// the window coalesce into one trailing send, so the per-op
	// O(P) message cost collapses under load without adding latency
	// when the group is idle.
	ackTimer   *sim.Event
	ackPending bool
	cmtTimer   *sim.Event
	cmtPending bool

	// recoveryStart is the instant this member first suspected a
	// sequencer failure; the next delivery accumulates the gap into
	// stats.RecoveryTime.
	recoveryStart sim.Time

	stats Stats
}

// Join attaches machine m to the group. Every member must Join before
// the simulation starts broadcasting.
func Join(m *amoeba.Machine, cfg Config) *Member {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	seq := cfg.Members[0]
	maxID := 0
	for _, id := range cfg.Members {
		if id < seq {
			seq = id
		}
		if id > maxID {
			maxID = id
		}
	}
	for _, id := range cfg.Members {
		if id == cfg.Sequencer {
			seq = cfg.Sequencer
			break
		}
	}
	histMax := cfg.HistoryMax
	if histMax <= 0 {
		histMax = 1
	}
	g := &Member{
		m:           m,
		cfg:         cfg,
		seqNode:     seq,
		nextSeq:     1,
		outQ:        sim.NewQueue[Delivery](m.Env()),
		pendingBB:   make(map[int64]*bbDataMsg),
		acceptedBB:  make(map[int64]bbAccept),
		outstanding: make(map[int64]*sendState),
		memberIdx:   make([]int, maxID+1),
		cache:       make([]*dataMsg, cfg.CacheSize),
		dlvBySrc:    make([]*seqRing[int64], len(cfg.Members)),
		history:     seqRing[*dataMsg]{max: histMax},
		seenBySrc:   make([]*seqRing[int64], len(cfg.Members)),
		statuses:    make([]int64, len(cfg.Members)),
	}
	for i := range g.memberIdx {
		g.memberIdx[i] = -1
	}
	for i, id := range cfg.Members {
		g.memberIdx[id] = i
		g.statuses[i] = -1
	}
	g.buffered.reset(1)
	g.history.reset(1)
	g.isSeq = m.ID() == seq
	g.installed = true // the boot view needs no installation round
	if cfg.Protocol == Consensus {
		g.accepted = seqRing[accSlot]{max: histMax}
		g.accepted.reset(1)
		g.acked = make([]int64, len(cfg.Members))
		if g.isSeq {
			// The boot leader owns the smallest ballot of its member
			// index; every member starts at promised 0 and accepts it.
			g.ballot = int64(g.memberIdx[seq]) + 1
			g.promised = g.ballot
		}
	}
	g.port = cfg.Port
	if g.port == "" {
		if cfg.ShardCount > 1 {
			g.port = fmt.Sprintf("%s%d", Port, cfg.Shard)
		} else {
			g.port = Port
		}
	}
	if len(cfg.Members) < m.Net().Nodes() {
		g.castTo = append([]int(nil), cfg.Members...)
		for i := 1; i < len(g.castTo); i++ {
			for j := i; j > 0 && g.castTo[j] < g.castTo[j-1]; j-- {
				g.castTo[j], g.castTo[j-1] = g.castTo[j-1], g.castTo[j]
			}
		}
	}
	m.Bind(g.port, g.handle)
	if cfg.Heartbeat > 0 {
		g.armHeartbeat()
	}
	return g
}

// cast broadcasts a protocol packet to the group: physical broadcast
// when the group spans every network node, hardware multicast to the
// member set otherwise (non-members' NICs filter the frame without
// taking an interrupt).
func (g *Member) cast(p *sim.Proc, pkt amoeba.Packet) {
	if g.castTo == nil {
		g.m.Broadcast(p, pkt)
		return
	}
	g.m.Multicast(p, pkt, g.castTo)
}

// srcIdx resolves a node id to its member index (-1 for non-members).
func (g *Member) srcIdx(node int) int {
	if node < 0 || node >= len(g.memberIdx) {
		return -1
	}
	return g.memberIdx[node]
}

// seenSeq consults the sequencer's per-source dedup window: it reports
// whether submission srcSeq from src was already sequenced, and under
// which sequence number (0 if that has been forgotten). Submissions
// below the window are certainly ancient and report as handled.
func (g *Member) seenSeq(src int, srcSeq int64) (seq int64, dup bool) {
	idx := g.srcIdx(src)
	if idx < 0 || srcSeq <= 0 {
		return 0, false
	}
	r := g.seenBySrc[idx]
	if r == nil {
		return 0, false
	}
	if srcSeq < r.lo {
		return 0, true
	}
	s := r.get(srcSeq)
	return s, s != 0
}

// noteSeen records that submission srcSeq from src was assigned seq.
func (g *Member) noteSeen(src int, srcSeq int64, seq int64) {
	idx := g.srcIdx(src)
	if idx < 0 || srcSeq <= 0 {
		return
	}
	r := g.seenBySrc[idx]
	if r == nil {
		r = &seqRing[int64]{max: srcWindow}
		r.reset(1)
		g.seenBySrc[idx] = r
	}
	r.set(srcSeq, seq)
}

// dupDelivery reports whether submission srcSeq from src was already
// handed to the application (a re-sequenced duplicate after an
// election). Submissions below the window are ancient and count as
// delivered.
func (g *Member) dupDelivery(src int, srcSeq int64) bool {
	idx := g.srcIdx(src)
	if idx < 0 || srcSeq <= 0 {
		return false
	}
	r := g.dlvBySrc[idx]
	if r == nil {
		return false
	}
	if srcSeq < r.lo {
		return true
	}
	return r.get(srcSeq) != 0
}

// noteDelivered records a delivery in the per-source window.
func (g *Member) noteDelivered(src int, srcSeq int64, seq int64) {
	idx := g.srcIdx(src)
	if idx < 0 || srcSeq <= 0 {
		return
	}
	r := g.dlvBySrc[idx]
	if r == nil {
		r = &seqRing[int64]{max: srcWindow}
		r.reset(1)
		g.dlvBySrc[idx] = r
	}
	r.set(srcSeq, seq)
}

// armHeartbeat runs the periodic sequencer announcement. Every member
// runs the timer; only the current sequencer transmits.
func (g *Member) armHeartbeat() {
	g.m.After(g.cfg.Heartbeat, func(p *sim.Proc) {
		// A consensus leader announces its commit watermark, not its
		// assigned maximum: uncommitted slots are not yet deliverable
		// and must not trigger gap recovery at members.
		high := g.maxSeen
		if g.cfg.Protocol == Consensus {
			high = g.committed
		}
		if g.isSeq && g.installed && high > 0 {
			g.cast(p, amoeba.Packet{Port: g.port, Kind: "grp-hb",
				Body: hbMsg{Epoch: g.epoch, Node: g.m.ID(), HighSeq: high}, Size: hdrSmall})
		}
		g.armHeartbeat()
	})
}

// Deliveries returns the totally-ordered stream of group messages for
// this member. Consumers (the RTS object manager) Get in a loop.
func (g *Member) Deliveries() *sim.Queue[Delivery] { return g.outQ }

// Sequencer reports the node this member currently believes is the
// sequencer.
func (g *Member) Sequencer() int { return g.seqNode }

// IsSequencer reports whether this member is the sequencer.
func (g *Member) IsSequencer() bool { return g.isSeq }

// NextSeq reports the next sequence number this member will deliver.
func (g *Member) NextSeq() int64 { return g.nextSeq }

// Stats returns a snapshot of this member's protocol counters.
func (g *Member) Stats() Stats { return g.stats }

// historyLen reports how many sequenced messages the sequencer
// history retains (exposed for tests).
func (g *Member) historyLen() int { return g.history.span() }

// resolveMethod picks PB or BB for a message of the given payload
// size, following the paper's one-packet rule in Auto mode.
func (g *Member) resolveMethod(size int) Method {
	if g.cfg.Protocol == Consensus {
		// Proposals replicate payloads to every member regardless of
		// size, so BB's data-first optimization buys nothing: requests
		// always travel PB-style to the leader.
		return ForcePB
	}
	switch g.cfg.Method {
	case ForcePB:
		return ForcePB
	case ForceBB:
		return ForceBB
	}
	if g.m.Net().FragmentsFor(size+hdrData) > 1 {
		return ForceBB
	}
	return ForcePB
}

// Broadcast reliably, totally-ordered broadcasts a message to the
// group (including this member, which sees it in its own delivery
// stream). It returns the message uid; delivery order is defined by
// the sequence numbers all members agree on. Broadcast does not wait
// for delivery: callers needing write-completion semantics wait until
// their uid appears in the delivery stream.
func (g *Member) Broadcast(p *sim.Proc, kind string, body any, size int) int64 {
	if g.cfg.Batch.Enabled() {
		return g.submitOp(p, kind, body, size)
	}
	uid := g.m.ServiceID()
	g.sendSeq++
	g.stats.Sent++
	if g.isSeq && g.installed {
		// The sequencer sequences its own messages directly and
		// broadcasts the sequenced data: one message on the wire.
		d := &dataMsg{Seq: g.nextSeqNum(), UID: uid, Src: g.m.ID(), SrcSeq: g.sendSeq, Kind: kind, Body: body, Size: size, Epoch: g.epoch}
		g.recordHistory(d)
		if g.cfg.Protocol == Consensus {
			// A consensus leader's own slot still needs quorum
			// acceptance before anyone (including itself) delivers.
			g.propose(p, []*dataMsg{d})
			return uid
		}
		g.stats.PBSends++
		g.cast(p, amoeba.Packet{Port: g.port, Kind: "grp-data", Body: d, Size: size + hdrData})
		g.processData(p, d)
		return uid
	}
	st := &sendState{uid: uid, srcSeq: g.sendSeq, kind: kind, body: body, size: size, method: g.resolveMethod(size)}
	g.outstanding[uid] = st
	g.transmit(p, st)
	g.armSenderTimer(st)
	return uid
}

// transmit performs one send attempt for an outstanding message.
func (g *Member) transmit(p *sim.Proc, st *sendState) {
	if st.items != nil {
		g.transmitBatch(p, st)
		return
	}
	switch st.method {
	case ForcePB:
		g.stats.PBSends++
		g.m.Send(p, g.seqNode, amoeba.Packet{
			Port: g.port, Kind: "grp-req",
			Body: reqMsg{UID: st.uid, Src: g.m.ID(), SrcSeq: st.srcSeq, Kind: st.kind, Body: st.body, Size: st.size},
			Size: st.size + hdrData,
		})
	case ForceBB:
		g.stats.BBSends++
		// The sender keeps the same record it broadcasts; it will not
		// hear its own frame, and nobody mutates the record.
		bb := &bbDataMsg{UID: st.uid, Src: g.m.ID(), SrcSeq: st.srcSeq, Kind: st.kind, Body: st.body, Size: st.size}
		g.pendingBB[st.uid] = bb
		g.cast(p, amoeba.Packet{
			Port: g.port, Kind: "grp-bb-data",
			Body: bb,
			Size: st.size + hdrData,
		})
	}
}

// armSenderTimer schedules retransmission for st until it is
// acknowledged by appearing in the sequenced stream. Under consensus
// each completed retry cycle doubles the period (up to 16x): during a
// long leaderless window every member's whole outstanding set
// retransmitting at the base period is by itself enough to saturate
// the wire, and recovery needs that bandwidth for the takeover.
func (g *Member) armSenderTimer(st *sendState) {
	period := g.cfg.SenderTimeout
	if g.cfg.Protocol == Consensus {
		c := st.cycles
		if c > 4 {
			c = 4
		}
		period <<= uint(c)
	}
	st.timer = g.m.After(period, func(p *sim.Proc) {
		if !st.live(g) {
			return
		}
		st.retries++
		// Consensus suspects one retry earlier than the elected
		// protocol: a wrong suspicion there costs a pnacked prepare
		// (the stickiness window protects a live leader), not a view
		// teardown, so the cheaper failure mode buys faster detection.
		limit := g.cfg.SenderRetries
		if g.cfg.Protocol == Consensus && limit > 1 {
			limit--
		}
		if st.retries > limit {
			if g.cfg.Protocol != Consensus && g.seqAlive > 0 && p.Now()-g.seqAlive < g.stickWindow() {
				// Deliveries are advancing, so the sequencer is alive and
				// this op is stuck behind its backlog (typical right after
				// a view change re-kicks every member's outstanding set).
				// A real crash stops all deliveries well before the retry
				// budget runs out, so crash suspicion is not delayed.
				st.retries = 0
				g.armSenderTimer(st)
				return
			}
			g.m.Env().Tracef("node%d: sequencer %d suspected dead (uid %d)", g.m.ID(), g.seqNode, st.uid)
			g.suspectSequencer(p)
			// Re-arm: the message is still outstanding and will be
			// retransmitted to the new sequencer once elected.
			st.retries = 0
			st.cycles++
			g.armSenderTimer(st)
			return
		}
		g.stats.Retransmits++
		g.transmit(p, st)
		g.armSenderTimer(st)
	})
}

// nextSeqNum allocates the next global sequence number (sequencer
// only).
func (g *Member) nextSeqNum() int64 {
	g.maxSeen++
	return g.maxSeen
}

// recordHistory stores a sequenced message in the sequencer's history
// ring (which drops its oldest entry beyond HistoryMax) and the
// per-source dedup window.
func (g *Member) recordHistory(d *dataMsg) {
	g.history.set(d.Seq, d)
	g.noteSeen(d.Src, d.SrcSeq, d.Seq)
}

// trimHistory drops history entries all members have delivered. It is
// an O(members) scan, so callers gate it on the possibility that the
// minimum actually advanced (see noteStatus); the trim itself touches
// exactly the dropped entries.
func (g *Member) trimHistory() {
	min := int64(1<<62 - 1)
	for i, id := range g.cfg.Members {
		if id == g.m.ID() {
			continue
		}
		if g.m.Net().Down(id) {
			continue // crashed members never report; don't stall
		}
		d := g.statuses[i]
		if d < 0 {
			return // no report yet; cannot trim
		}
		if d < min {
			min = d
		}
	}
	g.trimMin = min
	g.trimOwn = false
	if own := g.nextSeq - 1; own < min {
		min = own
		g.trimOwn = true
	}
	g.history.advanceTo(min + 1)
}

// noteStatus records a member's delivery progress and re-trims when
// the minimum may have advanced: when the reporter was at (or below)
// the last scan's minimum, had not reported before, or the last scan
// was limited by this sequencer's own progress. Reports strictly
// above the known minimum cannot move it, so the O(members) scan runs
// about once per reporting round instead of once per report.
func (g *Member) noteStatus(node int, delivered int64) {
	idx := g.srcIdx(node)
	if idx < 0 {
		return
	}
	old := g.statuses[idx]
	g.statuses[idx] = delivered
	if g.isSeq && (old < 0 || old <= g.trimMin || g.trimOwn) {
		g.trimHistory()
	}
}
