package rts

import (
	"testing"

	"repro/internal/amoeba"
	"repro/internal/group"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Test object types: a settable integer cell, a FIFO queue with a
// guarded Get, and a boolean flag with a guarded read.

type intCellState struct{ v int }

func intCellType() *ObjectType {
	return &ObjectType{
		Name: "intcell",
		New: func(args []any) State {
			s := &intCellState{}
			if len(args) > 0 {
				s.v = args[0].(int)
			}
			return s
		},
		Clone:  func(s State) State { c := *s.(*intCellState); return &c },
		SizeOf: func(State) int { return 8 },
		Ops: map[string]*OpDef{
			"get": {Name: "get", Kind: Read,
				Apply: func(s State, _ []any) []any { return []any{s.(*intCellState).v} }},
			"set": {Name: "set", Kind: Write, NoResult: true,
				Apply: func(s State, a []any) []any { s.(*intCellState).v = a[0].(int); return nil }},
			"inc": {Name: "inc", Kind: Write,
				Apply: func(s State, _ []any) []any {
					st := s.(*intCellState)
					old := st.v
					st.v++
					return []any{old}
				}},
			"min": {Name: "min", Kind: Write, // conditional lower, like the TSP bound
				Apply: func(s State, a []any) []any {
					st := s.(*intCellState)
					if v := a[0].(int); v < st.v {
						st.v = v
						return []any{true}
					}
					return []any{false}
				}},
		},
	}
}

type queueState struct{ items []any }

func queueType() *ObjectType {
	return &ObjectType{
		Name: "queue",
		New:  func([]any) State { return &queueState{} },
		Clone: func(s State) State {
			c := &queueState{}
			c.items = append([]any(nil), s.(*queueState).items...)
			return c
		},
		SizeOf: func(s State) int { return 8 + 16*len(s.(*queueState).items) },
		Ops: map[string]*OpDef{
			"put": {Name: "put", Kind: Write, NoResult: true,
				Apply: func(s State, a []any) []any {
					q := s.(*queueState)
					q.items = append(q.items, a[0])
					return nil
				}},
			"get": {Name: "get", Kind: Write,
				Guard: func(s State, _ []any) bool { return len(s.(*queueState).items) > 0 },
				Apply: func(s State, _ []any) []any {
					q := s.(*queueState)
					v := q.items[0]
					q.items = q.items[1:]
					return []any{v}
				}},
			"len": {Name: "len", Kind: Read,
				Apply: func(s State, _ []any) []any { return []any{len(s.(*queueState).items)} }},
		},
	}
}

type flagState struct{ b bool }

func flagType() *ObjectType {
	return &ObjectType{
		Name:   "flag",
		New:    func([]any) State { return &flagState{} },
		Clone:  func(s State) State { c := *s.(*flagState); return &c },
		SizeOf: func(State) int { return 1 },
		Ops: map[string]*OpDef{
			"set": {Name: "set", Kind: Write, NoResult: true,
				Apply: func(s State, a []any) []any { s.(*flagState).b = a[0].(bool); return nil }},
			"get": {Name: "get", Kind: Read,
				Apply: func(s State, _ []any) []any { return []any{s.(*flagState).b} }},
			"await": {Name: "await", Kind: Read,
				Guard: func(s State, _ []any) bool { return s.(*flagState).b },
				Apply: func(s State, _ []any) []any { return []any{true} }},
		},
	}
}

func testRegistry() *Registry {
	reg := NewRegistry()
	reg.Register(intCellType())
	reg.Register(queueType())
	reg.Register(flagType())
	return reg
}

// tb is a test cluster running one of the runtime systems.
type tb struct {
	env *sim.Env
	net *netsim.Network
	ms  []*amoeba.Machine
	sys System
}

// spawn runs fn as an application thread on the given node.
func (b *tb) spawn(node int, name string, fn func(w *Worker)) {
	b.ms[node].SpawnThread(name, func(p *sim.Proc) {
		fn(NewWorker(p, b.ms[node]))
	})
}

// run drives the simulation for the given virtual horizon and shuts
// down.
func (b *tb) run(horizon sim.Time) {
	b.env.RunUntil(horizon)
	b.env.Stop()
}

func (b *tb) done() { b.env.Shutdown() }

// newBcastTB builds a broadcast-RTS cluster.
func newBcastTB(t *testing.T, seed int64, n int, netMut func(*netsim.Params)) (*tb, *BroadcastRTS) {
	t.Helper()
	env := sim.New(seed)
	np := netsim.DefaultParams()
	if netMut != nil {
		netMut(&np)
	}
	nw := netsim.New(env, n, np)
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	gcfg := group.DefaultConfig(members)
	ms := make([]*amoeba.Machine, n)
	gs := make([]*group.Member, n)
	for i := 0; i < n; i++ {
		ms[i] = amoeba.NewMachine(env, nw, i, amoeba.DefaultCosts())
		gs[i] = group.Join(ms[i], gcfg)
	}
	r := NewBroadcastRTS(testRegistry(), DefaultCosts(), ms, gs)
	return &tb{env: env, net: nw, ms: ms, sys: r}, r
}

// newP2PTB builds a point-to-point-RTS cluster.
func newP2PTB(t *testing.T, seed int64, n int, cfg P2PConfig) (*tb, *P2PRTS) {
	t.Helper()
	env := sim.New(seed)
	np := netsim.DefaultParams()
	np.BroadcastCapable = false // the paper's point-to-point scenario
	nw := netsim.New(env, n, np)
	ms := make([]*amoeba.Machine, n)
	for i := 0; i < n; i++ {
		ms[i] = amoeba.NewMachine(env, nw, i, amoeba.DefaultCosts())
	}
	r := NewP2PRTS(testRegistry(), DefaultCosts(), cfg, ms)
	return &tb{env: env, net: nw, ms: ms, sys: r}, r
}
