// Package acp implements the paper's second application (§4.2): the
// Arc Consistency Problem. The input is a set of variables with
// finite domains and a list of binary constraints; the goal is the
// maximal set of values each variable can take such that all
// constraints can be satisfied.
//
// The parallel program follows the paper: variables are statically
// partitioned among worker processes; the variable domains live in a
// shared "domain" object (an array of sets), a shared "work" object
// tracks which variables must be rechecked, a "result" object records
// which processes are willing to terminate, and a "nosolution" flag
// is set when a domain becomes empty. The work and result objects
// have indivisible operations for the termination conditions. The
// fault-tolerant variant (faults.go) retires crashed participants:
// their variables join an orphan pool the survivors drain, and —
// because arc consistency is a confluent fixpoint — the crash run
// computes exactly the domains a healthy run does.
//
// Downward: built on package orca with app-defined object types
// (objects.go) in the same typed-builder style as std. Upward:
// internal/harness reproduces Figure 3 and the participant-loss fault
// scenario from this package.
package acp
