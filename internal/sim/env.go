package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Event is a scheduled occurrence in virtual time. It is returned by
// At and After so callers can cancel pending events (e.g. protocol
// retransmission timers).
type Event struct {
	t         Time
	seq       int64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Cancel prevents the event from firing. Cancelling an event that has
// already fired (or was already cancelled) is a no-op.
func (ev *Event) Cancel() { ev.cancelled = true }

// Time reports the virtual time at which the event fires.
func (ev *Event) Time() Time { return ev.t }

// eventQueue is a min-heap ordered by (time, sequence). The sequence
// number breaks ties deterministically in scheduling order.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Env is a discrete-event simulation environment: a virtual clock, an
// event queue, and a set of cooperatively scheduled processes. All
// methods must be called from simulation context (from inside an event
// handler or a process body), except New, Spawn before Run, Run itself,
// and Shutdown after Run returns.
type Env struct {
	now     Time
	queue   eventQueue
	seqGen  int64
	yield   chan struct{} // process -> scheduler handoff
	live    map[*Proc]struct{}
	wg      sync.WaitGroup
	rng     *rand.Rand
	stopped bool

	// Trace, when non-nil, receives a line per traced occurrence.
	// It exists for debugging protocol implementations and is nil in
	// normal runs.
	Trace func(t Time, format string, args ...any)
}

// New creates an environment whose random source is seeded with seed.
// The same seed always yields the same simulation.
func New(seed int64) *Env {
	return &Env{
		yield: make(chan struct{}),
		live:  make(map[*Proc]struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now reports the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic random source.
func (e *Env) Rand() *rand.Rand { return e.rng }

// Tracef emits a trace line if tracing is enabled.
func (e *Env) Tracef(format string, args ...any) {
	if e.Trace != nil {
		e.Trace(e.now, format, args...)
	}
}

// At schedules fn to run at virtual time t. Scheduling in the past
// panics: it would violate causality.
func (e *Env) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (%v < %v)", t, e.now))
	}
	e.seqGen++
	ev := &Event{t: t, seq: e.seqGen, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d from now.
func (e *Env) After(d Time, fn func()) *Event {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.At(e.now+d, fn)
}

// Run processes events until the queue is empty or Stop is called.
// It returns the final virtual time. Processes that are still blocked
// when the queue drains are left parked; call Shutdown to reap them
// (Blocked lists them for deadlock diagnosis).
func (e *Env) Run() Time {
	for len(e.queue) > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.t
		ev.fn()
	}
	return e.now
}

// RunUntil processes events until virtual time t is reached, the queue
// empties, or Stop is called.
func (e *Env) RunUntil(t Time) Time {
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].t > t {
			e.now = t
			return e.now
		}
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.t
		ev.fn()
	}
	return e.now
}

// Stop makes Run return after the current event completes.
func (e *Env) Stop() { e.stopped = true }

// Blocked returns the names of processes that are alive but parked,
// sorted for stable output. After Run returns, a non-empty result
// usually means the simulated program deadlocked.
func (e *Env) Blocked() []string {
	var names []string
	for p := range e.live {
		if !p.terminated {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return names
}

// LiveProcs reports the number of processes that have been spawned and
// have not yet terminated.
func (e *Env) LiveProcs() int { return len(e.live) }

// Shutdown force-kills all parked processes and waits for their
// goroutines to exit. It must be called only after Run has returned.
func (e *Env) Shutdown() {
	for p := range e.live {
		if !p.terminated {
			p.killed = true
			close(p.resume)
		}
	}
	e.wg.Wait()
	e.live = make(map[*Proc]struct{})
}

// runProc transfers control to p until it parks or terminates.
func (e *Env) runProc(p *Proc) {
	if p.terminated || p.killed {
		return
	}
	p.resume <- struct{}{}
	<-e.yield
}

// wake schedules p to resume at the current virtual time.
func (e *Env) wake(p *Proc) {
	e.At(e.now, func() { e.runProc(p) })
}
