package rts

import (
	"testing"
	"testing/quick"

	"repro/internal/amoeba"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func TestSizeOfValueScalars(t *testing.T) {
	cases := []struct {
		v    any
		want int
	}{
		{nil, 1},
		{true, 1},
		{42, 8},
		{int64(1), 8},
		{uint64(1), 8},
		{3.14, 8},
		{int32(1), 4},
		{float32(1), 4},
		{"hello", 9},
		{[]byte{1, 2, 3}, 7},
		{[]int{1, 2}, 20},
		{[]int64{1}, 12},
		{[]bool{true, false}, 6},
	}
	for _, tc := range cases {
		if got := SizeOfValue(tc.v); got != tc.want {
			t.Errorf("SizeOfValue(%T %v) = %d, want %d", tc.v, tc.v, got, tc.want)
		}
	}
}

type sizedThing struct{ n int }

func (s sizedThing) WireSize() int { return s.n }

func TestSizeOfValueSizedInterface(t *testing.T) {
	if got := SizeOfValue(sizedThing{n: 123}); got != 123 {
		t.Fatalf("Sized bypass = %d, want 123", got)
	}
}

func TestSizeOfValueGobFallback(t *testing.T) {
	type exotic struct {
		A int
		B string
	}
	got := SizeOfValue(exotic{A: 1, B: "xyz"})
	if got < 8 {
		t.Fatalf("gob fallback gave %d, want something plausible", got)
	}
}

func TestSizeOfArgsSums(t *testing.T) {
	got := SizeOfArgs([]any{1, "ab"})
	want := 4 + 8 + 6
	if got != want {
		t.Fatalf("SizeOfArgs = %d, want %d", got, want)
	}
}

func TestSizeOfValueStringProperty(t *testing.T) {
	f := func(s string) bool { return SizeOfValue(s) == 4+len(s) }
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Register(intCellType())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	reg.Register(intCellType())
}

func TestRegistryUnknownPanics(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unknown lookup")
		}
	}()
	reg.Lookup("no-such-type")
}

func TestObjectTypeUnknownOpPanics(t *testing.T) {
	typ := intCellType()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unknown op")
		}
	}()
	typ.Op("frobnicate")
}

func TestWorkerAccumulatesAndFlushes(t *testing.T) {
	env := sim.New(1)
	nw := netsim.New(env, 1, netsim.DefaultParams())
	m := amoeba.NewMachine(env, nw, 0, amoeba.DefaultCosts())
	var busyAfterCharges, busyAfterFlush sim.Time
	m.SpawnThread("w", func(p *sim.Proc) {
		w := NewWorker(p, m)
		// Small charges stay pending (below the 500µs threshold).
		for i := 0; i < 40; i++ {
			w.Charge(10 * sim.Microsecond)
		}
		busyAfterCharges = m.AppBusy()
		w.Flush()
		busyAfterFlush = m.AppBusy()
	})
	env.Run()
	if busyAfterCharges != 0 {
		t.Fatalf("sub-threshold charges hit the CPU early: %v", busyAfterCharges)
	}
	if busyAfterFlush != 400*sim.Microsecond {
		t.Fatalf("flush charged %v, want 400µs", busyAfterFlush)
	}
	env.Shutdown()
}

func TestWorkerAutoFlushAtThreshold(t *testing.T) {
	env := sim.New(1)
	nw := netsim.New(env, 1, netsim.DefaultParams())
	m := amoeba.NewMachine(env, nw, 0, amoeba.DefaultCosts())
	m.SpawnThread("w", func(p *sim.Proc) {
		w := NewWorker(p, m)
		w.Charge(DefaultFlushThreshold) // exactly at threshold: flush
		if m.AppBusy() != DefaultFlushThreshold {
			t.Errorf("auto-flush missing: busy=%v", m.AppBusy())
		}
	})
	env.Run()
	env.Shutdown()
}

func TestWorkerAccrueNeverBlocks(t *testing.T) {
	env := sim.New(1)
	nw := netsim.New(env, 1, netsim.DefaultParams())
	m := amoeba.NewMachine(env, nw, 0, amoeba.DefaultCosts())
	m.SpawnThread("w", func(p *sim.Proc) {
		w := NewWorker(p, m)
		before := p.Now()
		for i := 0; i < 100; i++ {
			w.Accrue(sim.Millisecond) // far beyond the threshold
		}
		if p.Now() != before {
			t.Error("Accrue advanced time (blocked)")
		}
		w.Flush()
		if m.AppBusy() != 100*sim.Millisecond {
			t.Errorf("accrued work lost: %v", m.AppBusy())
		}
	})
	env.Run()
	env.Shutdown()
}
