// Quickstart: the shared data-object programming model in a dozen
// lines. Four processes on four simulated processors share a counter
// and a job queue; operations are sequentially consistent and guarded
// operations block, exactly as in Orca.
package main

import (
	"fmt"

	"repro/internal/orca"
	"repro/internal/orca/std"
	"repro/internal/sim"
)

func main() {
	cfg := orca.Config{
		Processors: 4,              // a 4-machine Amoeba pool
		RTS:        orca.Broadcast, // replicated objects over total-order broadcast
		Seed:       1,
	}
	rt := orca.New(cfg, std.Register)

	var total int
	report := rt.Run(func(p *orca.Proc) {
		counter := p.New(std.IntObj) // replicated on every machine
		queue := p.New(std.JobQueue)
		done := p.New(std.Barrier, 3)

		// Fork one worker per remaining processor, sharing the
		// objects (Orca: fork worker(counter, queue) on cpu).
		for cpu := 1; cpu <= 3; cpu++ {
			p.Fork(cpu, fmt.Sprintf("worker%d", cpu), func(wp *orca.Proc) {
				for {
					res := wp.Invoke(queue, "get") // guarded: blocks until a job or close
					if !res[1].(bool) {
						break
					}
					n := res[0].(int)
					wp.Work(sim.Time(n) * sim.Millisecond) // simulate n ms of computing
					wp.Invoke(counter, "add", n)           // indivisible update
				}
				wp.Invoke(done, "arrive")
			})
		}

		for j := 1; j <= 10; j++ {
			p.Invoke(queue, "add", j)
		}
		p.Invoke(queue, "close")
		p.Invoke(done, "wait")
		total = p.InvokeI(counter, "value")
	})

	fmt.Printf("sum computed by 3 workers: %d (want 55)\n", total)
	fmt.Printf("virtual time: %v, wire messages: %d\n", report.Elapsed, report.Net.Messages)
	fmt.Println("reads were local replica accesses; writes were totally-ordered broadcasts")
}
