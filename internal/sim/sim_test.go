package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %v, want 30", e.Now())
	}
}

func TestEventTieBreakBySequence(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events out of scheduling order: %v", got)
		}
	}
}

func TestEventCancel(t *testing.T) {
	e := New(1)
	fired := false
	ev := e.At(10, func() { fired = true })
	e.At(5, func() { ev.Cancel() })
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New(1)
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestProcSleep(t *testing.T) {
	e := New(1)
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(42 * Microsecond)
		wake = p.Now()
	})
	e.Run()
	if wake != 42*Microsecond {
		t.Fatalf("woke at %v, want 42µs", wake)
	}
	if n := e.LiveProcs(); n != 0 {
		t.Fatalf("%d procs still live", n)
	}
}

func TestProcInterleaving(t *testing.T) {
	e := New(1)
	var trace []string
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for step := 0; step < 2; step++ {
				p.Sleep(Time(10 * (i + 1)))
				trace = append(trace, fmt.Sprintf("p%d@%d", i, p.Now()))
			}
		})
	}
	e.Run()
	// At t=20 both p1 (event scheduled at t=0) and p0 (scheduled at
	// t=10) are runnable; the earlier-scheduled event wins the tie.
	want := []string{"p0@10", "p1@20", "p0@20", "p2@30", "p1@40", "p2@60"}
	if len(trace) != len(want) {
		t.Fatalf("trace %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}

func TestCondFIFO(t *testing.T) {
	e := New(1)
	c := NewCond(e)
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			c.Wait(p)
			order = append(order, name)
		})
	}
	e.At(100, func() { c.Broadcast() })
	e.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("wake order %v, want [a b c]", order)
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	e := New(1)
	c := NewCond(e)
	woken := 0
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			c.Wait(p)
			woken++
		})
	}
	e.At(50, func() { c.Signal() })
	e.Run()
	if woken != 1 {
		t.Fatalf("woken = %d, want 1", woken)
	}
	if len(e.Blocked()) != 2 {
		t.Fatalf("blocked = %v, want 2 procs", e.Blocked())
	}
	e.Shutdown()
}

func TestResourceSerializes(t *testing.T) {
	e := New(1)
	r := NewResource(e)
	var done []Time
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			r.Use(p, 10*Microsecond)
			done = append(done, p.Now())
		})
	}
	e.Run()
	want := []Time{10 * Microsecond, 20 * Microsecond, 30 * Microsecond}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completion times %v, want %v", done, want)
		}
	}
	if r.BusyTime() != 30*Microsecond {
		t.Fatalf("busy = %v, want 30µs", r.BusyTime())
	}
}

func TestResourceAcquireFront(t *testing.T) {
	e := New(1)
	r := NewResource(e)
	var order []string
	e.Spawn("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(10)
		r.Release(p)
	})
	e.SpawnAt(1, "slow", func(p *Proc) {
		r.Use(p, 10)
		order = append(order, "slow")
	})
	e.SpawnAt(2, "intr", func(p *Proc) {
		r.UseFront(p, 10)
		order = append(order, "intr")
	})
	e.Run()
	if order[0] != "intr" || order[1] != "slow" {
		t.Fatalf("order = %v, want [intr slow]", order)
	}
}

func TestReleaseByNonHolderPanics(t *testing.T) {
	e := New(1)
	r := NewResource(e)
	e.Spawn("a", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(100)
		r.Release(p)
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(1)
		defer func() {
			if recover() == nil {
				t.Error("expected panic on Release by non-holder")
			}
		}()
		r.Release(p)
	})
	e.Run()
}

func TestQueueHandoff(t *testing.T) {
	e := New(1)
	q := NewQueue[int](e)
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 5; i++ {
			p.Sleep(10)
			q.Put(i)
		}
		p.Sleep(10)
		q.Close()
	})
	e.Run()
	if len(got) != 5 {
		t.Fatalf("got %v, want 5 items", got)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got %v, want [1 2 3 4 5]", got)
		}
	}
}

func TestQueueFIFOAcrossConsumers(t *testing.T) {
	e := New(1)
	q := NewQueue[int](e)
	var got []string
	for _, name := range []string{"c1", "c2"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			v, _ := q.Get(p)
			got = append(got, fmt.Sprintf("%s=%d", name, v))
		})
	}
	e.At(10, func() { q.Put(100) })
	e.At(20, func() { q.Put(200) })
	e.Run()
	if len(got) != 2 || got[0] != "c1=100" || got[1] != "c2=200" {
		t.Fatalf("got %v, want [c1=100 c2=200]", got)
	}
}

func TestQueueBufferThenDrain(t *testing.T) {
	e := New(1)
	q := NewQueue[int](e)
	q.Put(1)
	q.Put(2)
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	v, ok := q.TryGet()
	if !ok || v != 1 {
		t.Fatalf("TryGet = %d,%v want 1,true", v, ok)
	}
	var rest []int
	e.Spawn("drain", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			rest = append(rest, v)
		}
	})
	e.At(5, func() { q.Close() })
	e.Run()
	if len(rest) != 1 || rest[0] != 2 {
		t.Fatalf("rest = %v, want [2]", rest)
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	count := 0
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(10)
			count++
		}
	})
	e.RunUntil(55)
	if count != 5 {
		t.Fatalf("count = %d at t=55, want 5", count)
	}
	if e.Now() != 55 {
		t.Fatalf("Now = %v, want 55", e.Now())
	}
	e.Run()
	if count != 100 {
		t.Fatalf("count = %d after Run, want 100", count)
	}
}

func TestStop(t *testing.T) {
	e := New(1)
	n := 0
	e.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(10)
			n++
			if n == 3 {
				e.Stop()
			}
		}
	})
	e.Run()
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
	e.Shutdown()
}

func TestShutdownReapsBlockedProcs(t *testing.T) {
	e := New(1)
	c := NewCond(e)
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("stuck%d", i), func(p *Proc) {
			c.Wait(p)
			t.Error("stuck proc should never wake")
		})
	}
	e.Run()
	if len(e.Blocked()) != 4 {
		t.Fatalf("blocked = %v, want 4", e.Blocked())
	}
	e.Shutdown()
	if n := e.LiveProcs(); n != 0 {
		t.Fatalf("LiveProcs = %d after Shutdown, want 0", n)
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := New(1)
	var childTime Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(10)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(5)
			childTime = c.Now()
		})
		p.Sleep(100)
	})
	e.Run()
	if childTime != 15 {
		t.Fatalf("child finished at %v, want 15", childTime)
	}
}

// TestDeterminism drives a small random workload twice with the same
// seed and once with a different seed, and checks the traces are
// identical and (almost surely) different respectively.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) string {
		e := New(seed)
		r := NewResource(e)
		q := NewQueue[int](e)
		trace := ""
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
				for j := 0; j < 5; j++ {
					d := Time(e.Rand().Intn(50) + 1)
					p.Sleep(d)
					r.Use(p, Time(e.Rand().Intn(20)+1))
					q.Put(i)
					trace += fmt.Sprintf("%d@%d;", i, p.Now())
				}
			})
		}
		e.Run()
		return trace
	}
	a, b, c := run(7), run(7), run(8)
	if a != b {
		t.Fatal("same seed produced different traces")
	}
	if a == c {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}

// Property: for any set of sleep durations, processes complete in the
// order implied by their total virtual sleep time, with determinism.
func TestSleepCompletionOrderProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 || len(durs) > 20 {
			return true
		}
		e := New(1)
		type fin struct {
			idx int
			at  Time
		}
		var fins []fin
		for i, d := range durs {
			i, d := i, Time(d)+1
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(d)
				fins = append(fins, fin{i, p.Now()})
			})
		}
		e.Run()
		if len(fins) != len(durs) {
			return false
		}
		for k := 1; k < len(fins); k++ {
			if fins[k].at < fins[k-1].at {
				return false
			}
			if fins[k].at == fins[k-1].at && fins[k].idx < fins[k-1].idx {
				return false // ties must resolve in spawn order
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceBusyTimeWithHolder(t *testing.T) {
	e := New(1)
	r := NewResource(e)
	e.Spawn("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(100)
		if r.BusyTime() != 100 {
			t.Errorf("busy mid-hold = %v, want 100", r.BusyTime())
		}
		r.Release(p)
	})
	e.Run()
}
