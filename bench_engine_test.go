package repro

// Engine benchmark suite: microbenchmarks of the simulation kernel's
// hot paths, reporting events/sec alongside the usual wall-clock and
// allocation measurements. These isolate the scheduler itself — the
// ready queue, the event pool, the direct park/resume handoff, and the
// synchronization primitives — from the protocol stack above it, so a
// kernel regression is visible before it smears across every
// experiment. cmd/orca-bench -bench-json runs the same workloads and
// records them in BENCH_engine.json.

import (
	"testing"

	"repro/internal/sim"
)

// reportEvents attaches the events/sec metric from an environment's
// dispatch counter.
func reportEvents(b *testing.B, e *sim.Env) {
	b.ReportMetric(float64(e.Events())/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkEngineYield measures the same-instant wakeup path: a Yield
// is one ready-queue append plus one resume, the cheapest possible
// reschedule. With a single process every resume is a self-handoff
// that never touches a channel.
func BenchmarkEngineYield(b *testing.B) {
	e := sim.New(1)
	e.Spawn("yielder", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Yield()
		}
	})
	b.ResetTimer()
	e.Run()
	reportEvents(b, e)
	e.Shutdown()
}

// BenchmarkEngineYieldPingPong measures the cross-goroutine handoff:
// two processes alternating at the same instant, so every dispatch is
// a direct channel handoff between goroutines.
func BenchmarkEngineYieldPingPong(b *testing.B) {
	e := sim.New(1)
	for i := 0; i < 2; i++ {
		e.Spawn("ponger", func(p *sim.Proc) {
			for i := 0; i < b.N/2; i++ {
				p.Yield()
			}
		})
	}
	b.ResetTimer()
	e.Run()
	reportEvents(b, e)
	e.Shutdown()
}

// BenchmarkEngineSleep measures the timed path through the binary
// heap: staggered sleepers keep a populated heap, the worst case the
// ready queue cannot absorb.
func BenchmarkEngineSleep(b *testing.B) {
	e := sim.New(1)
	const procs = 16
	for i := 0; i < procs; i++ {
		d := sim.Time(i + 1)
		e.Spawn("sleeper", func(p *sim.Proc) {
			for i := 0; i < b.N/procs; i++ {
				p.Sleep(d)
			}
		})
	}
	b.ResetTimer()
	e.Run()
	reportEvents(b, e)
	e.Shutdown()
}

// BenchmarkEngineCondBroadcast measures condition-variable fan-out:
// one broadcaster repeatedly waking a pack of waiters, the pattern of
// guard re-evaluation after every applied write.
func BenchmarkEngineCondBroadcast(b *testing.B) {
	e := sim.New(1)
	c := sim.NewCond(e)
	const waiters = 8
	stop := false
	for i := 0; i < waiters; i++ {
		e.Spawn("waiter", func(p *sim.Proc) {
			for !stop {
				c.Wait(p)
			}
		})
	}
	e.Spawn("broadcaster", func(p *sim.Proc) {
		for i := 0; i < b.N/waiters; i++ {
			c.Broadcast()
			p.Yield()
		}
		stop = true
		c.Broadcast()
	})
	b.ResetTimer()
	e.Run()
	reportEvents(b, e)
	e.Shutdown()
}

// BenchmarkEngineQueue measures the mailbox handoff: a producer and a
// consumer alternating through a sim.Queue, the kernel's interrupt-
// and delivery-stream pattern.
func BenchmarkEngineQueue(b *testing.B) {
	e := sim.New(1)
	q := sim.NewQueue[int](e)
	e.Spawn("consumer", func(p *sim.Proc) {
		for {
			if _, ok := q.Get(p); !ok {
				return
			}
		}
	})
	e.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(i)
			p.Yield()
		}
		q.Close()
	})
	b.ResetTimer()
	e.Run()
	reportEvents(b, e)
	e.Shutdown()
}

// BenchmarkEngineResource measures contended CPU scheduling: several
// threads taking turns on one resource, each turn a sleep on the heap
// plus a wakeup on the ready queue.
func BenchmarkEngineResource(b *testing.B) {
	e := sim.New(1)
	r := sim.NewResource(e)
	const procs = 4
	for i := 0; i < procs; i++ {
		e.Spawn("user", func(p *sim.Proc) {
			for i := 0; i < b.N/procs; i++ {
				r.Use(p, sim.Microsecond)
			}
		})
	}
	b.ResetTimer()
	e.Run()
	reportEvents(b, e)
	e.Shutdown()
}

// BenchmarkEngineTimerCancel measures the cancellation path: arming
// and cancelling retransmission-style timers that never fire.
func BenchmarkEngineTimerCancel(b *testing.B) {
	e := sim.New(1)
	e.Spawn("armer", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			ev := p.Env().After(sim.Second, func() {})
			ev.Cancel()
			p.Yield()
		}
	})
	b.ResetTimer()
	e.Run()
	reportEvents(b, e)
	e.Shutdown()
}
