package rts

import (
	"fmt"

	"repro/internal/sim"
)

// Adaptive placement: objects that re-place themselves under live
// traffic. The paper argues the compiler/RTS should pick each object's
// implementation (replicated vs single-copy) from observed access
// patterns; PR 3 made that choice per object but froze it at creation.
// This file adds the per-object placement controller and the
// deterministic migration protocol that moves an object between the
// broadcast subsystem (fully replicated) and the point-to-point
// subsystem (primary copy) of a MixedRTS mid-run.
//
// The cut point for a broadcast<->primary transition is a sequenced
// migrate record through the broadcast total order: every member
// switches routing at the same position in the order, invocations
// sequenced before the record complete under the old placement, and
// invocations sequenced after it bounce with a private retry sentinel
// and re-issue under the new placement. Guard waiters parked on the
// old placement are bounced the same way, so they re-register on the
// new one. Primary re-homing (p2p -> p2p) uses the object's own
// serialization point — the primary's task queue — as its cut.
// DESIGN.md ("Adaptive placement") gives the full argument for why
// sequential consistency holds mid-flight and why double runs stay
// bit-identical.

// migrateRetry is the private bounce sentinel. An invocation that
// reaches an object's old placement after the migration cut completes
// with retrySlice instead of a result; the MixedRTS routing loop
// recognizes the pointer identity and re-issues the operation under
// the new placement. No legitimate operation result can collide with
// it: the pointer never escapes this package.
var migrateRetry = &struct{ _ byte }{}

// retrySlice is the shared bounce result. Callers only ever test it
// with isRetry and must not mutate it.
var retrySlice = []any{migrateRetry}

// isRetry reports whether an invocation result is the migration bounce
// sentinel.
func isRetry(res []any) bool { return len(res) == 1 && res[0] == migrateRetry }

// AdaptConfig parameterizes the placement controller. The zero value
// selects the defaults below.
type AdaptConfig struct {
	// SampleEvery is how many accesses accumulate between placement
	// decisions (the statistics window). Default 64.
	SampleEvery int
	// MinDwell is the minimum virtual time between two migrations of
	// the same object — the hysteresis that prevents flapping.
	// Default 20ms.
	MinDwell sim.Time
	// WriteHeavyFrac: a replicated object whose EWMA write fraction
	// reaches this (and has a dominant writer) becomes a primary copy.
	// Default 0.35.
	WriteHeavyFrac float64
	// ReadHeavyFrac: a primary-copy object whose EWMA write fraction
	// falls to this becomes replicated. Default 0.15. Must be below
	// WriteHeavyFrac or the controller would oscillate.
	ReadHeavyFrac float64
	// DominantFrac is the share of the window's writes one machine
	// must issue to be chosen as (or re-home) the primary.
	// Default 0.55.
	DominantFrac float64
	// Alpha is the EWMA smoothing factor applied per window.
	// Default 0.5.
	Alpha float64
}

// DefaultAdaptConfig returns the default controller parameters.
func DefaultAdaptConfig() AdaptConfig {
	return AdaptConfig{
		SampleEvery:    64,
		MinDwell:       20 * sim.Millisecond,
		WriteHeavyFrac: 0.35,
		ReadHeavyFrac:  0.15,
		DominantFrac:   0.55,
		Alpha:          0.5,
	}
}

// withDefaults fills zero fields with the default parameters.
func (c AdaptConfig) withDefaults() AdaptConfig {
	d := DefaultAdaptConfig()
	if c.SampleEvery <= 0 {
		c.SampleEvery = d.SampleEvery
	}
	if c.MinDwell <= 0 {
		c.MinDwell = d.MinDwell
	}
	if c.WriteHeavyFrac <= 0 {
		c.WriteHeavyFrac = d.WriteHeavyFrac
	}
	if c.ReadHeavyFrac <= 0 {
		c.ReadHeavyFrac = d.ReadHeavyFrac
	}
	if c.DominantFrac <= 0 {
		c.DominantFrac = d.DominantFrac
	}
	if c.Alpha <= 0 {
		c.Alpha = d.Alpha
	}
	return c
}

// adaptAction is a placement decision.
type adaptAction int

const (
	adaptStay adaptAction = iota
	adaptToPrimary
	adaptToReplicated
	adaptRehome
)

// String names the action for traces and tests.
func (a adaptAction) String() string {
	switch a {
	case adaptToPrimary:
		return "to-primary"
	case adaptToReplicated:
		return "to-replicated"
	case adaptRehome:
		return "rehome"
	default:
		return "stay"
	}
}

// adaptDecide is the pure placement decision over one statistics
// window: given the current placement, the smoothed write fraction,
// and the window's per-machine read/write counts, it returns the
// migration to perform (adaptStay if none) and the target machine.
// Pure so the property/fuzz tests can drive it with synthetic counter
// streams. Ties on the dominant writer break toward the lowest
// machine id, keeping the decision deterministic.
func adaptDecide(cfg AdaptConfig, replicated bool, primary int, ewmaWriteFrac float64, reads, writes []int64) (adaptAction, int) {
	var totalW int64
	dom, domW := -1, int64(0)
	for n, wn := range writes {
		totalW += wn
		if wn > domW {
			dom, domW = n, wn
		}
	}
	domShare := 0.0
	if totalW > 0 {
		domShare = float64(domW) / float64(totalW)
	}
	if replicated {
		// Replicated is only wrong when writes are frequent AND
		// concentrated: then every write pays a broadcast that one
		// machine could absorb locally.
		if ewmaWriteFrac >= cfg.WriteHeavyFrac && dom >= 0 && domShare >= cfg.DominantFrac {
			return adaptToPrimary, dom
		}
		return adaptStay, -1
	}
	// Primary copy is wrong when reads dominate (every remote read
	// pays an RPC that a replica would serve locally) ...
	if ewmaWriteFrac <= cfg.ReadHeavyFrac {
		return adaptToReplicated, -1
	}
	// ... or when the write traffic moved to another machine.
	if dom >= 0 && dom != primary && domShare >= cfg.DominantFrac {
		return adaptRehome, dom
	}
	return adaptStay, -1
}

// adaptInfo is the per-object controller state, plus the bookkeeping
// of an in-flight migration. One migration per object at a time.
type adaptInfo struct {
	cfg      AdaptConfig
	typ      *ObjectType
	ctorArgs []any
	ops      opCache

	// Statistics window.
	reads  []int64 // per-machine reads since the last decision
	writes []int64 // per-machine writes since the last decision
	seen   int     // accesses in the window
	ewma   float64 // smoothed write fraction
	primed bool    // first window seeds the EWMA directly

	// Migration bookkeeping.
	migrating bool     // a migration is in flight; bounced invokers wait on cond
	toBr      bool     // in-flight direction is p2p -> broadcast
	fromNode  int      // machine driving the in-flight migration
	cloned    State    // moveout state snapshot, kept for crash rescue
	decided   bool     // the globally-first delivery ran (flip or abort)
	aborted   bool     // the migration aborted (target machine crashed)
	start     sim.Time // initiation time, for MigrationVirtualUS
	last      sim.Time // completion time of the last migration (dwell)
	cond      *sim.Cond
}

// resetWindow clears the statistics window after a decision.
func (info *adaptInfo) resetWindow() {
	for i := range info.reads {
		info.reads[i] = 0
	}
	for i := range info.writes {
		info.writes[i] = 0
	}
	info.seen = 0
}

// CreateAdaptive creates an object under the adaptive placement
// controller: it starts fully replicated on the broadcast subsystem
// and re-places itself as the observed access pattern warrants.
// Adaptive objects are excluded from the write-combining pipeline —
// a combined write parked in a worker's buffer across the migration
// cut would be silently dropped by the moved replica.
func (m *MixedRTS) CreateAdaptive(w *Worker, typeName string, cfg AdaptConfig, args ...any) ObjID {
	t := m.br.reg.Lookup(typeName)
	id := m.br.Create(w, typeName, args...)
	m.owner[id] = m.br
	m.br.noBatch(id)
	if m.adapt == nil {
		m.adapt = make(map[ObjID]*adaptInfo)
	}
	m.adapt[id] = &adaptInfo{
		cfg:      cfg.withDefaults(),
		typ:      t,
		ctorArgs: append([]any(nil), args...),
		reads:    make([]int64, m.Nodes()),
		writes:   make([]int64, m.Nodes()),
		cond:     sim.NewCond(w.M.Env()),
	}
	return id
}

// AdaptivePlacements reports every adaptive object's current
// placement ("replicated" or "primary@N") for reports and tests.
func (m *MixedRTS) AdaptivePlacements() map[ObjID]string {
	if len(m.adapt) == 0 {
		return nil
	}
	out := make(map[ObjID]string, len(m.adapt))
	for id := range m.adapt {
		if m.owner[id] == System(m.br) {
			out[id] = "replicated"
		} else {
			out[id] = fmt.Sprintf("primary@%d", m.p2p.meta(id).primary)
		}
	}
	return out
}

// adaptCount records one access for the controller without running a
// decision (the typed local-read fast path uses it; reads never
// trigger a migration of a replicated object, and primary-copy reads
// take the Invoke path).
func (m *MixedRTS) adaptCount(w *Worker, id ObjID, kind OpKind) {
	info := m.adapt[id]
	if info == nil {
		return
	}
	if kind == Read {
		info.reads[w.Node()]++
	} else {
		info.writes[w.Node()]++
	}
	info.seen++
}

// adaptObserve records one completed Invoke-path access and, when a
// statistics window fills, runs the placement decision — migrating
// the object from the invoking worker's context if it fires.
func (m *MixedRTS) adaptObserve(w *Worker, id ObjID, opName string) {
	info := m.adapt[id]
	if info == nil {
		return
	}
	kind := info.ops.lookup(info.typ, opName).Kind
	if kind == Read {
		info.reads[w.Node()]++
	} else {
		info.writes[w.Node()]++
	}
	info.seen++
	if info.seen < info.cfg.SampleEvery || info.migrating {
		return
	}
	replicated := m.owner[id] == System(m.br)
	primary := -1
	if !replicated {
		primary = m.p2p.meta(id).primary
	}
	act, target := info.step(replicated, primary, w.M.Env().Now())
	if act == adaptStay {
		return
	}
	if act == adaptToPrimary || act == adaptRehome {
		if m.p2p.nodeDown(target) {
			return // never migrate toward a dead machine
		}
	}
	m.startMigration(w, id, info, act, target)
}

// step folds the completed statistics window into the EWMA and returns
// the migration to start, honoring the dwell-time hysteresis. Factored
// from adaptObserve so the property/fuzz tests can drive the
// controller with synthetic counter streams.
func (info *adaptInfo) step(replicated bool, primary int, now sim.Time) (adaptAction, int) {
	var r, wr int64
	for i := range info.reads {
		r += info.reads[i]
		wr += info.writes[i]
	}
	frac := 0.0
	if r+wr > 0 {
		frac = float64(wr) / float64(r+wr)
	}
	if !info.primed {
		info.ewma, info.primed = frac, true
	} else {
		info.ewma = info.cfg.Alpha*frac + (1-info.cfg.Alpha)*info.ewma
	}
	act, target := adaptDecide(info.cfg, replicated, primary, info.ewma, info.reads, info.writes)
	info.resetWindow()
	if act == adaptStay {
		return adaptStay, -1
	}
	if now-info.last < info.cfg.MinDwell {
		return adaptStay, -1 // hysteresis: too soon after the last migration
	}
	return act, target
}

// startMigration drives one migration from the invoking worker. It
// returns with the flip (or abort) complete, so the controller's
// dwell clock and the migrating flag are consistent when the worker
// continues.
func (m *MixedRTS) startMigration(w *Worker, id ObjID, info *adaptInfo, act adaptAction, target int) {
	env := w.M.Env()
	info.migrating = true
	info.toBr = false
	info.decided = false
	info.aborted = false
	info.cloned = nil
	info.fromNode = w.Node()
	info.start = env.Now()
	env.Tracef("rts: object %d migration %s (target %d) from node %d", id, act, target, w.Node())
	switch act {
	case adaptToPrimary:
		// Sequence the cut through the broadcast total order; the
		// globally-first delivery flips ownership (see handleMigrate).
		mgr := m.br.mgr(w.Node())
		mgr.syncBuf(w)
		w.Flush()
		uid := mgr.g.Broadcast(w.P, "rts-migrate", wireMigrate{Obj: id, Target: target}, 24)
		mgr.await(w.P, uid)
		if info.aborted {
			// Target crashed before the cut: the object stays
			// replicated and the dwell clock still advances, so the
			// controller re-evaluates against live statistics later.
			info.migrating = false
			info.last = env.Now()
			info.cond.Broadcast()
		}
	case adaptToReplicated:
		// The primary's task queue is the cut: a moveout task drops
		// every copy and hands the state to the broadcast group.
		m.p2p.nodes[w.Node()].submitMigrate(w, m.p2p.meta(id), "moveout", -1)
		m.awaitFlip(w, id, info, m.p2p)
	case adaptRehome:
		m.p2p.nodes[w.Node()].submitMigrate(w, m.p2p.meta(id), "rehome", target)
		info.migrating = false
		info.last = env.Now()
		m.migrations++
		m.migrationUS += float64(env.Now()-info.start) / float64(sim.Microsecond)
		info.cond.Broadcast()
	}
}

// finishMigration runs exactly once per broadcast-sequenced migration,
// at the globally-first delivery of its migrate record: it flips the
// owner, stamps the counters, and releases every bounced waiter.
func (m *MixedRTS) finishMigration(info *adaptInfo, id ObjID, to System, now sim.Time) {
	m.owner[id] = to
	info.migrating = false
	info.cloned = nil
	info.last = now
	m.migrations++
	m.migrationUS += float64(now-info.start) / float64(sim.Microsecond)
	info.cond.Broadcast()
}

// awaitFlip blocks until an in-flight migration moves the object away
// from the given subsystem (or aborts). If the machine driving a
// moveout dies after the cut but possibly before its migrate record
// reached the sequencer, the first waiter re-broadcasts the record
// from its own machine using the snapshot kept in info.cloned —
// duplicate records are idempotent at delivery.
func (m *MixedRTS) awaitFlip(w *Worker, id ObjID, info *adaptInfo, from System) {
	for info.migrating && m.sub(id) == from {
		if info.toBr && !info.decided && info.cloned != nil && m.p2p.nodeDown(info.fromNode) {
			mgr := m.br.mgr(w.Node())
			w.Flush()
			size := info.typ.stateSize(info.cloned) + 24
			uid := mgr.g.Broadcast(w.P, "rts-migrate", wireMigrate{Obj: id, Target: -1, State: info.cloned}, size)
			mgr.await(w.P, uid)
			continue
		}
		info.cond.Wait(w.P)
	}
	if m.sub(id) == System(m.br) {
		// The object is broadcast-owned but this node's replica may
		// still be the frozen pre-migration one: the flip runs at the
		// globally-first delivery of the install record, and this
		// node's own delivery — which replaces the frozen replica —
		// can lag it. Wait for the replacement so the retry reads live
		// state instead of bouncing forever.
		mgr := m.br.mgr(w.Node())
		for {
			inst, ok := mgr.insts[id]
			if ok && !inst.moved {
				return
			}
			mgr.instCond.Wait(w.P)
		}
	}
}

// handleMigrate applies one delivery of a sequenced migrate record —
// the cut point of a broadcast<->primary migration. Global decisions
// (the ownership flip, the target-crashed abort) run exactly once, at
// the globally-first delivery; per-manager effects (marking the local
// replica moved, bouncing its guard waiters, installing a fresh
// replica) run at every manager, each at its own position in the
// total order.
func (m *MixedRTS) handleMigrate(p *sim.Proc, mgr *bcastManager, uid int64, src int, wm wireMigrate) {
	info := m.adapt[wm.Obj]
	if info == nil {
		panic(fmt.Sprintf("rts: migrate record for non-adaptive object %d", wm.Obj))
	}
	now := mgr.m.Env().Now()
	if wm.State != nil {
		// p2p -> broadcast: install a replica holding the carried
		// snapshot. A live (non-moved) replica means this record is a
		// crash-rescue duplicate: skip, preserving writes applied
		// since the first record.
		if old, ok := mgr.insts[wm.Obj]; !ok || old.moved {
			if ok {
				old.seg.Free()
			}
			t := info.typ
			st := t.Clone(wm.State)
			mgr.charge(p, m.br.costs.Create)
			inst := &bcastInstance{
				typ:   t,
				state: st,
				seg:   mgr.m.AllocSegment(int64(t.stateSize(st))),
			}
			mgr.insts[wm.Obj] = inst
			if mgr.lastID == wm.Obj {
				mgr.lastInst = inst
			}
			mgr.instCond.Broadcast()
		}
		if !info.decided {
			info.decided = true
			m.finishMigration(info, wm.Obj, m.br, now)
		}
		mgr.complete(p, uid, src, nil)
		return
	}
	// broadcast -> primary copy at wm.Target.
	if !info.decided {
		info.decided = true
		if m.p2p.nodeDown(wm.Target) {
			// The target died before the cut. Decided exactly once, at
			// the globally-first delivery, so every manager (and the
			// initiator) observes the same abort.
			info.aborted = true
		} else {
			// Clone this manager's replica: it sits exactly at the cut
			// position of the total order, as every replica does at
			// its own delivery of this record.
			inst := mgr.insts[wm.Obj]
			m.installPrimary(wm.Obj, info, wm.Target, info.typ.Clone(inst.state))
			m.finishMigration(info, wm.Obj, m.p2p, now)
		}
	}
	if !info.aborted {
		// Freeze the local replica: writes sequenced after the cut
		// bounce (applyWrite), parked guard writes bounce here, and
		// guard-blocked readers wake to bounce (localRead).
		inst := mgr.insts[wm.Obj]
		inst.moved = true
		for _, pw := range inst.pending {
			mgr.complete(p, pw.uid, pw.src, retrySlice)
		}
		inst.pending = nil
		inst.cond.Broadcast()
	}
	mgr.complete(p, uid, src, nil)
}

// installPrimary places a migrated state as a single primary copy on
// the target machine's point-to-point runtime, reusing the object's
// meta and primary thread if the object lived there before.
func (m *MixedRTS) installPrimary(id ObjID, info *adaptInfo, target int, st State) {
	r := m.p2p
	tn := r.nodes[target]
	tn.installCopy(id, info.typ, st)
	inst := tn.insts[id]
	inst.primary = true
	inst.copyset = make(map[int]bool)
	meta, ok := r.objs[id]
	if !ok {
		meta = &p2pMeta{id: id, typ: info.typ, ctorArgs: info.ctorArgs}
		r.objs[id] = meta
	}
	meta.primary = target
	meta.protocol = Update
	meta.placement = SingleCopy
	meta.moved = false
	if _, ok := tn.queues[id]; !ok {
		q := sim.NewQueue[*p2pTask](tn.m.Env())
		tn.queues[id] = q
		tn.m.SpawnThread(fmt.Sprintf("obj%d", id), func(pp *sim.Proc) { tn.objectLoop(pp, id, q) })
	}
}
