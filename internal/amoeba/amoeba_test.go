package amoeba

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// cluster boots n machines on a default network.
func cluster(t *testing.T, n int, mutate func(*netsim.Params)) (*sim.Env, *netsim.Network, []*Machine) {
	t.Helper()
	env := sim.New(7)
	p := netsim.DefaultParams()
	if mutate != nil {
		mutate(&p)
	}
	nw := netsim.New(env, n, p)
	ms := make([]*Machine, n)
	for i := 0; i < n; i++ {
		ms[i] = NewMachine(env, nw, i, DefaultCosts())
	}
	return env, nw, ms
}

func TestPortDispatch(t *testing.T) {
	env, _, ms := cluster(t, 2, nil)
	var got []string
	ms[1].Bind("echo", func(p *sim.Proc, from int, pkt Packet) {
		got = append(got, fmt.Sprintf("%s from %d", pkt.Body.(string), from))
	})
	ms[0].SpawnThread("sender", func(p *sim.Proc) {
		ms[0].Send(p, 1, Packet{Port: "echo", Kind: "test", Body: "hi", Size: 16})
	})
	env.Run()
	if len(got) != 1 || got[0] != "hi from 0" {
		t.Fatalf("got %v", got)
	}
	env.Shutdown()
}

func TestDoubleBindPanics(t *testing.T) {
	_, _, ms := cluster(t, 1, nil)
	ms[0].Bind("p", func(*sim.Proc, int, Packet) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double bind")
		}
	}()
	ms[0].Bind("p", func(*sim.Proc, int, Packet) {})
}

func TestInterruptChargesCPU(t *testing.T) {
	env, _, ms := cluster(t, 2, nil)
	ms[1].Bind("sink", func(p *sim.Proc, from int, pkt Packet) {})
	ms[0].SpawnThread("sender", func(p *sim.Proc) {
		// 3000 bytes -> 2 fragments
		ms[0].Send(p, 1, Packet{Port: "sink", Kind: "big", Body: nil, Size: 3000})
	})
	env.Run()
	costs := DefaultCosts()
	want := 2*costs.Interrupt + costs.Protocol
	if got := ms[1].CPU().BusyTime(); got != want {
		t.Fatalf("receiver CPU busy = %v, want %v", got, want)
	}
	env.Shutdown()
}

func TestComputeSerializesOnCPU(t *testing.T) {
	env, _, ms := cluster(t, 1, nil)
	var done []sim.Time
	for i := 0; i < 2; i++ {
		ms[0].SpawnThread(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
			ms[0].Compute(p, sim.Millisecond)
			done = append(done, p.Now())
		})
	}
	env.Run()
	if done[0] != sim.Millisecond || done[1] != 2*sim.Millisecond {
		t.Fatalf("completions %v, want [1ms 2ms]", done)
	}
	if ms[0].AppBusy() != 2*sim.Millisecond {
		t.Fatalf("AppBusy = %v", ms[0].AppBusy())
	}
	env.Shutdown()
}

func TestRPCBasic(t *testing.T) {
	env, _, ms := cluster(t, 2, nil)
	srv := NewServer(ms[1], "adder")
	ms[1].SpawnThread("server", func(p *sim.Proc) {
		for {
			r, ok := srv.GetRequest(p)
			if !ok {
				return
			}
			srv.PutReply(p, r, r.Body.(int)+1, 8)
		}
	})
	c := NewClient(ms[0], DefaultRPCPolicy())
	var got any
	var err error
	ms[0].SpawnThread("client", func(p *sim.Proc) {
		got, err = c.Trans(p, 1, "adder", "inc", 41, 8)
	})
	env.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.(int) != 42 {
		t.Fatalf("got %v, want 42", got)
	}
	env.Shutdown()
}

func TestRPCLatencyInAmoebaRange(t *testing.T) {
	env, _, ms := cluster(t, 2, nil)
	srv := NewServer(ms[1], "null")
	ms[1].SpawnThread("server", func(p *sim.Proc) {
		for {
			r, ok := srv.GetRequest(p)
			if !ok {
				return
			}
			srv.PutReply(p, r, nil, 0)
		}
	})
	c := NewClient(ms[0], DefaultRPCPolicy())
	var rtt sim.Time
	ms[0].SpawnThread("client", func(p *sim.Proc) {
		start := p.Now()
		if _, err := c.Trans(p, 1, "null", "nop", nil, 0); err != nil {
			t.Error(err)
		}
		rtt = p.Now() - start
	})
	env.Run()
	// Amoeba reported null RPC around 1.2-1.4 ms on this hardware
	// class; the model should land in the same regime.
	if rtt < 800*sim.Microsecond || rtt > 3*sim.Millisecond {
		t.Fatalf("null RPC rtt = %v, want ~1ms regime", rtt)
	}
	env.Shutdown()
}

func TestRPCRetransmissionOnLossyNet(t *testing.T) {
	env, _, ms := cluster(t, 2, func(p *netsim.Params) { p.DropProb = 0.3 })
	srv := NewServer(ms[1], "svc")
	served := 0
	ms[1].SpawnThread("server", func(p *sim.Proc) {
		for {
			r, ok := srv.GetRequest(p)
			if !ok {
				return
			}
			served++
			srv.PutReply(p, r, r.Body, 8)
		}
	})
	c := NewClient(ms[0], RPCDefaults{Timeout: 50 * sim.Millisecond, Retries: 20})
	okCount := 0
	ms[0].SpawnThread("client", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			got, err := c.Trans(p, 1, "svc", "echo", i, 8)
			if err != nil {
				t.Errorf("rpc %d failed: %v", i, err)
				return
			}
			if got.(int) != i {
				t.Errorf("rpc %d: got %v", i, got)
				return
			}
			okCount++
		}
	})
	env.Run()
	if okCount != 50 {
		t.Fatalf("completed %d of 50 RPCs on lossy net", okCount)
	}
	env.Shutdown()
}

func TestRPCAtMostOnce(t *testing.T) {
	// Force duplicate requests by making the first reply always lost:
	// use a high drop rate and count executions vs completions.
	env, _, ms := cluster(t, 2, func(p *netsim.Params) { p.DropProb = 0.4 })
	srv := NewServer(ms[1], "ctr")
	execs := 0
	ms[1].SpawnThread("server", func(p *sim.Proc) {
		for {
			r, ok := srv.GetRequest(p)
			if !ok {
				return
			}
			execs++
			srv.PutReply(p, r, execs, 8)
		}
	})
	c := NewClient(ms[0], RPCDefaults{Timeout: 30 * sim.Millisecond, Retries: 30})
	done := 0
	ms[0].SpawnThread("client", func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			if _, err := c.Trans(p, 1, "ctr", "bump", nil, 4); err != nil {
				t.Errorf("rpc failed: %v", err)
				return
			}
			done++
		}
	})
	env.Run()
	if done != 30 {
		t.Fatalf("done = %d", done)
	}
	if execs != 30 {
		t.Fatalf("server executed %d ops for 30 RPCs; at-most-once violated", execs)
	}
	env.Shutdown()
}

func TestRPCFailsFastOnCrashedServer(t *testing.T) {
	// A destination known to be down fails the transaction with
	// ErrCrashed instead of burning the retry budget.
	env, _, ms := cluster(t, 2, nil)
	NewServer(ms[1], "dead")
	ms[1].Crash()
	c := NewClient(ms[0], RPCDefaults{Timeout: 10 * sim.Millisecond, Retries: 1 << 20})
	var err error
	var took sim.Time
	ms[0].SpawnThread("client", func(p *sim.Proc) {
		start := p.Now()
		_, err = c.Trans(p, 1, "dead", "nop", nil, 0)
		took = p.Now() - start
	})
	env.Run()
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if took > 20*sim.Millisecond {
		t.Fatalf("fail-fast took %v", took)
	}
	env.Shutdown()
}

func TestRPCCrashMidTransaction(t *testing.T) {
	// The server dies while the request is in flight: the client's next
	// timeout notices the down destination and fails with ErrCrashed.
	env, _, ms := cluster(t, 2, nil)
	NewServer(ms[1], "slow") // bound, but nobody serves requests
	c := NewClient(ms[0], RPCDefaults{Timeout: 10 * sim.Millisecond, Retries: 1 << 20})
	var err error
	ms[0].SpawnThread("client", func(p *sim.Proc) {
		_, err = c.Trans(p, 1, "slow", "nop", nil, 0)
	})
	env.At(15*sim.Millisecond, func() { ms[1].Crash() })
	env.Run()
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	env.Shutdown()
}

func TestRPCTimeoutWithoutCrash(t *testing.T) {
	// An unresponsive-but-alive server still yields ErrRPCTimeout once
	// retries are exhausted.
	env, _, ms := cluster(t, 2, nil)
	NewServer(ms[1], "mute") // bound, but nobody serves requests
	c := NewClient(ms[0], RPCDefaults{Timeout: 10 * sim.Millisecond, Retries: 2})
	var err error
	ms[0].SpawnThread("client", func(p *sim.Proc) {
		_, err = c.Trans(p, 1, "mute", "nop", nil, 0)
	})
	env.Run()
	if !errors.Is(err, ErrRPCTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
	env.Shutdown()
}

func TestSegmentsAccounting(t *testing.T) {
	_, _, ms := cluster(t, 1, nil)
	s1 := ms[0].AllocSegment(4096)
	s2 := ms[0].AllocSegment(8192)
	if ms[0].MemInUse() != 12288 {
		t.Fatalf("MemInUse = %d", ms[0].MemInUse())
	}
	s1.Map()
	if !s1.Mapped() {
		t.Fatal("segment not mapped")
	}
	s1.Unmap()
	s2.Resize(1024)
	if ms[0].MemInUse() != 4096+1024 {
		t.Fatalf("MemInUse after resize = %d", ms[0].MemInUse())
	}
	s1.Free()
	s2.Free()
	if ms[0].MemInUse() != 0 {
		t.Fatalf("MemInUse after frees = %d", ms[0].MemInUse())
	}
	if ms[0].MemPeak() != 12288 {
		t.Fatalf("MemPeak = %d", ms[0].MemPeak())
	}
}

func TestSegmentDoubleFreePanics(t *testing.T) {
	_, _, ms := cluster(t, 1, nil)
	s := ms[0].AllocSegment(100)
	s.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double free")
		}
	}()
	s.Free()
}

func TestProcessThreads(t *testing.T) {
	env, _, ms := cluster(t, 1, nil)
	pr := ms[0].NewProcess("app")
	ran := 0
	pr.SpawnThread("t1", func(p *sim.Proc) { ran++ })
	pr.SpawnThread("t2", func(p *sim.Proc) { ran++ })
	env.Run()
	if ran != 2 || pr.Threads() != 2 {
		t.Fatalf("ran=%d threads=%d", ran, pr.Threads())
	}
	env.Shutdown()
}

func TestDeferRunsOnInterruptThread(t *testing.T) {
	env, _, ms := cluster(t, 1, nil)
	ran := false
	ms[0].After(5*sim.Millisecond, func(p *sim.Proc) {
		ran = true
		ms[0].Compute(p, sim.Microsecond) // must be legal in kernel context
	})
	env.Run()
	if !ran {
		t.Fatal("deferred fn did not run")
	}
	env.Shutdown()
}

func TestCrashStopsService(t *testing.T) {
	env, _, ms := cluster(t, 2, nil)
	got := 0
	ms[1].Bind("sink", func(p *sim.Proc, from int, pkt Packet) { got++ })
	ms[0].SpawnThread("sender", func(p *sim.Proc) {
		ms[0].Send(p, 1, Packet{Port: "sink", Size: 8})
		p.Sleep(10 * sim.Millisecond)
		ms[1].Crash()
		ms[0].Send(p, 1, Packet{Port: "sink", Size: 8})
	})
	env.Run()
	if got != 1 {
		t.Fatalf("crashed machine serviced %d packets, want 1", got)
	}
	env.Shutdown()
}

func TestServiceIDUnique(t *testing.T) {
	_, _, ms := cluster(t, 2, nil)
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		for _, m := range ms {
			id := m.ServiceID()
			if seen[id] {
				t.Fatalf("duplicate service id %d", id)
			}
			seen[id] = true
		}
	}
}
