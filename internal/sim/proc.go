package sim

import "runtime"

// Proc is a cooperatively scheduled simulated process. A Proc runs on
// its own goroutine, but the scheduler guarantees that at most one Proc
// (or event handler) executes at a time, handing control back and forth
// through channel handshakes. Blocking primitives (Sleep, Cond.Wait,
// Resource.Acquire, ...) park the process and return control to the
// scheduler.
type Proc struct {
	env        *Env
	name       string
	resume     chan struct{}
	terminated bool
	killed     bool
	reaped     bool // unwound via Goexit; must not touch scheduler state
}

// Spawn creates a process named name running fn and schedules it to
// start at the current virtual time. It may be called before Run (to
// seed the simulation) or from simulation context (to fork).
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt is Spawn with an explicit start time.
func (e *Env) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.live[p] = struct{}{}
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		<-p.resume // wait for the start event
		if p.killed {
			return
		}
		defer func() {
			if p.reaped {
				// This goroutine is being reaped via Goexit (Shutdown,
				// or a mid-run Kill caught at a park); the reaper owns
				// the scheduler state, and several reaped goroutines
				// run concurrently, so no shared state may be touched
				// here.
				return
			}
			// A process that was killed while executing but ran to
			// completion still holds the scheduling baton and must
			// pass it on like a normal termination.
			p.terminated = true
			delete(e.live, p)
			// Pass the scheduling baton onward one last time: the
			// dying goroutine dispatches until control lands on
			// another process (or the run's caller) and then exits.
			e.advance(p)
		}()
		fn(p)
	}()
	e.wakeAt(t, p)
	return p
}

// Name reports the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// park suspends the process until another chain of control resumes
// it. All blocking primitives funnel through here. The parking
// goroutine first advances the dispatch loop itself (see Env.advance);
// if its own resume event comes up it returns without ever blocking,
// otherwise control was handed off and it waits on its resume channel.
func (p *Proc) park() {
	if !p.env.advance(p) {
		<-p.resume
	}
	if p.killed {
		// Killed (machine crash mid-run, or Shutdown reaping): unwind
		// this goroutine. Deferred handlers must not touch the
		// scheduler on this path — the baton was already handed off
		// before the park blocked.
		p.reaped = true
		runtime.Goexit()
	}
}

// Killed reports whether the process has been killed (its machine
// crashed, or Shutdown reaped it). Cleanup code that may run while the
// process unwinds uses it to avoid touching shared state.
func (p *Proc) Killed() bool { return p.killed }

// Terminated reports whether the process body has returned. The
// kernel layer uses it to prune dead threads from its bookkeeping.
func (p *Proc) Terminated() bool { return p.terminated }

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	if d == 0 {
		p.Yield()
		return
	}
	p.env.wakeAt(p.env.now+d, p)
	p.park()
}

// Yield reschedules the process at the current time, letting any other
// event already queued for this instant run first.
func (p *Proc) Yield() {
	p.env.wake(p)
	p.park()
}
