package std_test

// Sizing-path regression tests: every registered std and app object
// state must size through a direct WireSize/SizeOf computation, never
// through the gob estimator. The gob fallback is ~100× slower and sits
// on the execWrite hot path (segment resizing) and the p2p
// state-transfer path (fetch/install message sizes), so a state type
// silently losing its direct size would tax every write in every
// experiment.

import (
	"testing"

	"repro/internal/apps/acp"
	"repro/internal/orca/std"
	"repro/internal/rts"
)

// sampleArgs supplies valid constructor arguments per registered type.
var sampleArgs = map[string][]any{
	std.IntObj:       {7},
	std.JobQueueObj:  nil,
	std.BarrierObj:   {4},
	std.FlagObj:      {true},
	std.BoolArrayObj: {32, true},
	std.TableObj:     {64},
	std.KillerObj:    {16},
	std.BitSetObj:    {256},
	std.AccumObj:     nil,
	acp.DomainObj:    {8, uint64(0xFF)},
	acp.WorkObj:      {8, 4},
}

// TestStateSizingNeverHitsGob constructs one instance of every
// registered std and ACP object state and checks that both the
// type-level stateSize path (SizeOf) and the generic SizeOfValue path
// (which the RPC layer uses for payloads) resolve without reaching
// the gob estimator.
func TestStateSizingNeverHitsGob(t *testing.T) {
	reg := rts.NewRegistry()
	std.Register(reg)
	acp.RegisterTypes(reg)

	reg.Each(func(typ *rts.ObjectType) {
		args, ok := sampleArgs[typ.Name]
		if !ok {
			t.Fatalf("no sample constructor args for registered type %q; add it to sampleArgs", typ.Name)
		}
		state := typ.New(args)

		if typ.SizeOf == nil {
			t.Errorf("type %q has no SizeOf: every registered state must size directly", typ.Name)
			return
		}

		before := rts.GobSizings()
		direct := typ.SizeOf(state)
		generic := rts.SizeOfValue(state)
		if got := rts.GobSizings() - before; got != 0 {
			t.Errorf("type %q: sizing reached the gob fallback %d times", typ.Name, got)
		}
		if direct <= 0 {
			t.Errorf("type %q: SizeOf = %d, want > 0", typ.Name, direct)
		}
		if generic != direct {
			t.Errorf("type %q: SizeOfValue(state) = %d, SizeOf = %d; WireSize and SizedBy disagree",
				typ.Name, generic, direct)
		}
	})
}

// TestQueueIncrementalSizing checks the job queue's O(1) cached size
// stays in lockstep with a from-scratch recount across adds and gets.
func TestQueueIncrementalSizing(t *testing.T) {
	reg := rts.NewRegistry()
	std.Register(reg)
	typ := reg.Lookup(std.JobQueueObj)
	state := typ.New(nil)

	recount := func() int {
		// A fresh clone sizes from the same cached counter; compare
		// against summing the queued jobs directly through get.
		n := 16
		c := typ.Clone(state)
		for {
			res := typ.Op("get").Apply(c, nil)
			if res[1] == false {
				break
			}
			n += rts.SizeOfValue(res[0])
		}
		return n
	}

	add, get := typ.Op("add"), typ.Op("get")
	jobs := []any{"alpha", []int{1, 2, 3}, 42, "a-longer-string-payload"}
	for i, j := range jobs {
		add.Apply(state, []any{j})
		if got, want := typ.SizeOf(state), recount(); got != want {
			t.Fatalf("after add %d: cached size %d, recount %d", i, got, want)
		}
	}
	for i := range jobs {
		get.Apply(state, nil)
		if got, want := typ.SizeOf(state), recount(); got != want {
			t.Fatalf("after get %d: cached size %d, recount %d", i, got, want)
		}
	}
	if got := typ.SizeOf(state); got != 16 {
		t.Fatalf("drained queue size = %d, want 16", got)
	}
}
