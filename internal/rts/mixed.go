package rts

import (
	"fmt"

	"repro/internal/sim"
)

// MixedRTS hosts the broadcast runtime and the point-to-point runtime
// on the same simulated machines and group members, so one program can
// place each object under the strategy its access pattern wants — the
// paper's observation that TSP's write-mostly job queue "would be
// better off" as a single copy while the bound stays fully replicated
// becomes expressible inside a single run instead of requiring two.
//
// Every object is created through the composite, which allocates ids
// from one shared counter (so ids are unique across both subsystems),
// records which subsystem owns each object, and routes Create, Invoke,
// PeekState, and LocalReadState by ObjID. Inside a subsystem nothing
// changes: a broadcast object's writes travel the total order exactly
// as under a pure BroadcastRTS, and a primary-copy object runs the
// invalidation or update protocol exactly as under a pure P2PRTS. The
// two share the wire and the CPUs — which is the point: the composite
// measures mixed strategies under honest contention.
type MixedRTS struct {
	br  *BroadcastRTS
	p2p *P2PRTS
	def System // where Default-policy objects go (br or p2p)

	// owner maps every object to the subsystem that hosts it. The
	// simulation is single-threaded, so no locking.
	owner map[ObjID]System

	// adapt holds the placement controller of every adaptive object
	// (see adapt.go); nil when no adaptive objects exist.
	adapt map[ObjID]*adaptInfo

	// Migration counters (see RTSStats).
	migrations  int64
	migrationUS float64
}

var (
	_ System      = (*MixedRTS)(nil)
	_ LocalReader = (*MixedRTS)(nil)
	_ StatsSource = (*MixedRTS)(nil)
)

// idAlloc hands out object ids. Each runtime system owns one; a
// MixedRTS rewires its two subsystems to share a single allocator so
// ids are unique across the composite and routing by ObjID is
// unambiguous.
type idAlloc struct{ next ObjID }

func (a *idAlloc) alloc() ObjID { a.next++; return a.next }

// peek reports the id the next alloc will return without consuming it;
// the ShardedRTS uses it to pick an object's shard before the shard's
// Create allocates that same id.
func (a *idAlloc) peek() ObjID { return a.next + 1 }

// RTSStats is the unified runtime-counter snapshot. A pure broadcast
// runtime fills the broadcast fields, a pure point-to-point runtime the
// p2p fields, and a MixedRTS merges both — one schema for reports,
// experiment tables, and BENCH_engine.json regardless of runtime kind.
type RTSStats struct {
	// Broadcast-runtime counters.
	LocalReads  int64 `json:"local_reads,omitempty"`  // reads served from a local replica (both runtimes)
	BcastWrites int64 `json:"bcast_writes,omitempty"` // writes shipped through the total order
	GuardWaits  int64 `json:"guard_waits,omitempty"`  // guard suspensions (both runtimes)
	Forwarded   int64 `json:"forwarded,omitempty"`    // ops forwarded to a partial-replication holder

	// Batching counters (see BroadcastRTS.EnableBatching): ops
	// submitted through per-worker combining buffers, and the batch
	// frames that carried them — Frames << BatchedOps is the
	// amortization experiments report.
	BatchedOps int64 `json:"batched_ops,omitempty"`  // ops submitted through a combining buffer
	Frames     int64 `json:"batch_frames,omitempty"` // combining-buffer flushes (batched frames sent)

	// Point-to-point-runtime counters.
	RemoteReads   int64 `json:"remote_reads,omitempty"`  // reads RPC'd to the primary
	P2PWrites     int64 `json:"p2p_writes,omitempty"`    // writes routed to a primary copy
	Fetches       int64 `json:"fetches,omitempty"`       // secondary copies installed
	Discards      int64 `json:"discards,omitempty"`      // secondary copies dropped by the ratio heuristic
	Invalidations int64 `json:"invalidations,omitempty"` // invalidation messages sent
	Updates       int64 `json:"updates,omitempty"`       // update messages sent

	// Cross-shard counters (see ShardedRTS): write operations applied
	// through a pausing cross-shard fence.
	FencedOps int64 `json:"fenced_ops,omitempty"`

	// Adaptive-placement counters (see adapt.go): completed online
	// migrations (including primary re-homes) and the total virtual
	// time objects spent mid-migration.
	Migrations         int64   `json:"migrations,omitempty"`
	MigrationVirtualUS float64 `json:"migration_virtual_us,omitempty"`

	// Fault-tolerance counters (see CrashAware).
	Crashes    int64 `json:"crashes,omitempty"`     // machine crashes observed by the runtime
	OpsRetried int64 `json:"ops_retried,omitempty"` // operations retried after a crash broke their first attempt
	Rehomed    int64 `json:"rehomed,omitempty"`     // objects re-homed or restarted on a new primary

	// Sequencer-recovery counters from the group layer: election
	// rounds (elected-sequencer protocol), consensus takeovers, slots
	// re-proposed after a leader change, and the worst member's
	// virtual time spent with recovery in progress (suspicion to first
	// post-recovery delivery). Elections, Takeovers, and the recovery
	// time merge by max — concurrent members observe the same logical
	// recovery — while Reproposals sums.
	Elections         int64   `json:"elections,omitempty"`
	Takeovers         int64   `json:"takeovers,omitempty"`
	Reproposals       int64   `json:"reproposals,omitempty"`
	RecoveryVirtualUS float64 `json:"recovery_virtual_us,omitempty"`
}

// Merge combines counter snapshots from independent runtime subsystems
// hosted on the same machines (a MixedRTS's two runtimes, a
// ShardedRTS's N sequencer groups) into one. Work counters sum — each
// subsystem performed its share of the reads, writes, frames, and
// retries. Whole-machine observations merge by max: every subsystem
// observes the same crash (NodeCrashed is forwarded to all), and
// concurrent subsystems on the same machines observe the same logical
// sequencer recovery, so Crashes, Elections, Takeovers, and the
// recovery outage would double-count under a sum.
func Merge(snaps ...RTSStats) RTSStats {
	var s RTSStats
	for _, o := range snaps {
		s.LocalReads += o.LocalReads
		s.BcastWrites += o.BcastWrites
		s.GuardWaits += o.GuardWaits
		s.Forwarded += o.Forwarded
		s.BatchedOps += o.BatchedOps
		s.Frames += o.Frames
		s.RemoteReads += o.RemoteReads
		s.P2PWrites += o.P2PWrites
		s.Fetches += o.Fetches
		s.Discards += o.Discards
		s.Invalidations += o.Invalidations
		s.Updates += o.Updates
		s.FencedOps += o.FencedOps
		s.Migrations += o.Migrations
		s.MigrationVirtualUS += o.MigrationVirtualUS
		if o.Crashes > s.Crashes {
			s.Crashes = o.Crashes
		}
		s.OpsRetried += o.OpsRetried
		s.Rehomed += o.Rehomed
		if o.Elections > s.Elections {
			s.Elections = o.Elections
		}
		if o.Takeovers > s.Takeovers {
			s.Takeovers = o.Takeovers
		}
		s.Reproposals += o.Reproposals
		if o.RecoveryVirtualUS > s.RecoveryVirtualUS {
			s.RecoveryVirtualUS = o.RecoveryVirtualUS
		}
	}
	return s
}

// CrashAware is implemented by runtime systems that recover from
// machine crashes. The layer that detects (or injects) a crash — the
// orca runtime executing a fault plan — notifies the runtime system,
// which drops the dead machine from its routing decisions: the
// broadcast runtime stops forwarding to dead replica holders, and the
// point-to-point runtime re-homes objects whose primary died.
type CrashAware interface {
	NodeCrashed(node int)
}

var (
	_ CrashAware = (*BroadcastRTS)(nil)
	_ CrashAware = (*P2PRTS)(nil)
	_ CrashAware = (*MixedRTS)(nil)
)

// NodeCrashed implements CrashAware, forwarding to both subsystems.
// It also wakes waiters of any moveout whose driving machine just
// died, so one of them can rescue the migration by re-broadcasting
// the snapshot (see awaitFlip in adapt.go). Objects are visited in id
// order for determinism.
func (m *MixedRTS) NodeCrashed(node int) {
	m.br.NodeCrashed(node)
	m.p2p.NodeCrashed(node)
	if m.adapt == nil {
		return
	}
	ids := make([]ObjID, 0, len(m.adapt))
	for id, info := range m.adapt {
		if info.migrating && info.toBr && !info.decided && info.fromNode == node {
			ids = append(ids, id)
		}
	}
	sortObjIDs(ids)
	for _, id := range ids {
		m.adapt[id].cond.Broadcast()
	}
}

// StatsSource is implemented by every runtime system: a unified
// counter snapshot independent of the runtime kind.
type StatsSource interface {
	Counters() RTSStats
}

var (
	_ StatsSource = (*BroadcastRTS)(nil)
	_ StatsSource = (*P2PRTS)(nil)
)

// NewMixedRTS composes an already-constructed broadcast runtime and
// point-to-point runtime over the same machines. defaultIsBroadcast
// picks where Default-policy creations go. The subsystems' id
// allocators are fused, so objects created through either carry
// composite-unique ids.
func NewMixedRTS(br *BroadcastRTS, p2p *P2PRTS, defaultIsBroadcast bool) *MixedRTS {
	if br.Nodes() != p2p.Nodes() {
		panic(fmt.Sprintf("rts: mixed runtime over mismatched machines (%d vs %d)", br.Nodes(), p2p.Nodes()))
	}
	p2p.ids = br.ids
	m := &MixedRTS{br: br, p2p: p2p, owner: make(map[ObjID]System)}
	if defaultIsBroadcast {
		m.def = br
	} else {
		m.def = p2p
	}
	// Adaptive-placement plumbing (see adapt.go): sequenced migrate
	// records in the broadcast stream route to the composite, and a
	// point-to-point moveout hands its snapshot to the broadcast order.
	br.migrate = m.handleMigrate
	p2p.moveSnap = func(node int, id ObjID, state State) {
		info := m.adapt[id]
		info.toBr = true
		info.fromNode = node
		info.cloned = state
	}
	p2p.mover = func(p *sim.Proc, node int, id ObjID, state State) {
		mgr := br.mgr(node)
		size := m.adapt[id].typ.stateSize(state) + 24
		uid := mgr.g.Broadcast(p, "rts-migrate", wireMigrate{Obj: id, Target: -1, State: state}, size)
		mgr.await(p, uid)
	}
	p2p.recoverState = func(meta *p2pMeta) State {
		info := m.adapt[meta.id]
		if info == nil {
			return nil
		}
		// Every live machine's frozen broadcast replica holds the same
		// state — the prefix of the total order up to the br->p2p cut —
		// so the lowest-numbered one is as good as any and the choice
		// is deterministic.
		for n := 0; n < br.Nodes(); n++ {
			mgr := br.mgr(n)
			if mgr == nil || mgr.m.Crashed() {
				continue
			}
			if inst, ok := mgr.insts[meta.id]; ok && inst.moved {
				return info.typ.Clone(inst.state)
			}
		}
		return nil
	}
	return m
}

// Broadcast exposes the broadcast subsystem (statistics, tests).
func (m *MixedRTS) Broadcast() *BroadcastRTS { return m.br }

// P2P exposes the point-to-point subsystem (statistics, tests).
func (m *MixedRTS) P2P() *P2PRTS { return m.p2p }

// Nodes implements System.
func (m *MixedRTS) Nodes() int { return m.br.Nodes() }

// sub resolves the subsystem hosting an object.
func (m *MixedRTS) sub(id ObjID) System {
	s, ok := m.owner[id]
	if !ok {
		panic(fmt.Sprintf("rts: unknown object %d", id))
	}
	return s
}

// Create implements System: a Default-policy creation, hosted by the
// runtime the program's configuration selects.
func (m *MixedRTS) Create(w *Worker, typeName string, args ...any) ObjID {
	if m.def != m.br {
		w.SyncShared() // order after any buffered broadcast writes
	}
	id := m.def.Create(w, typeName, args...)
	m.owner[id] = m.def
	return id
}

// CreateReplicated creates an object on the broadcast subsystem,
// replicated on every machine (nodes == nil) or on the given subset.
func (m *MixedRTS) CreateReplicated(w *Worker, typeName string, nodes []int, args ...any) ObjID {
	id := m.br.CreateOn(w, typeName, nodes, args...)
	m.owner[id] = m.br
	return id
}

// CreatePrimaryCopy creates an object on the point-to-point subsystem
// under the given consistency protocol and placement policy. The
// primary copy lives on the creating machine.
func (m *MixedRTS) CreatePrimaryCopy(w *Worker, typeName string, protocol P2PProtocol, placement Placement, args ...any) ObjID {
	w.SyncShared() // order after any buffered broadcast writes
	id := m.p2p.CreateWith(w, typeName, protocol, placement, args...)
	m.owner[id] = m.p2p
	return id
}

// Invoke implements System, routing by object. An invocation that
// bounces off an object's old placement mid-migration (the retry
// sentinel, see adapt.go) waits for the ownership flip and re-issues
// under the new placement — at most once per migration, and the
// re-issued operation executes exactly once, after the cut.
func (m *MixedRTS) Invoke(w *Worker, id ObjID, op string, args ...any) []any {
	for {
		s := m.sub(id)
		if s != System(m.br) {
			// An op leaving the broadcast subsystem must observe the
			// worker's buffered broadcast writes in program order.
			w.SyncShared()
		}
		res := s.Invoke(w, id, op, args...)
		if !isRetry(res) {
			if m.adapt != nil {
				m.adaptObserve(w, id, op)
			}
			return res
		}
		info := m.adapt[id]
		if info == nil {
			panic(fmt.Sprintf("rts: migration bounce on non-adaptive object %d", id))
		}
		m.awaitFlip(w, id, info, s)
	}
}

// PeekState implements System, routing by object.
func (m *MixedRTS) PeekState(node int, id ObjID) (State, bool) {
	s, ok := m.owner[id]
	if !ok {
		return nil, false
	}
	return s.PeekState(node, id)
}

// LocalReadState implements LocalReader: broadcast-hosted objects keep
// the typed local-read fast path; primary-copy objects decline, so
// their reads take the general Invoke path (local copy, lock, or RPC).
func (m *MixedRTS) LocalReadState(w *Worker, id ObjID, op *OpDef) (State, bool) {
	if m.owner[id] == m.br {
		st, ok := m.br.LocalReadState(w, id, op)
		if ok && m.adapt != nil {
			m.adaptCount(w, id, Read)
		}
		return st, ok
	}
	return nil, false
}

// Counters implements StatsSource, merging both subsystems' counters
// into one snapshot, plus the composite's own migration counters.
func (m *MixedRTS) Counters() RTSStats {
	s := Merge(m.br.Counters(), m.p2p.Counters())
	s.Migrations = m.migrations
	s.MigrationVirtualUS = m.migrationUS
	return s
}
