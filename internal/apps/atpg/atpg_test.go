package atpg

import (
	"testing"
	"testing/quick"

	"repro/internal/orca"
)

func TestGateEval3Valued(t *testing.T) {
	cases := []struct {
		t    GateType
		a, b V5
		want V5
	}{
		{And, One, One, One},
		{And, One, Zero, Zero},
		{And, Zero, Xv, Zero}, // controlling value dominates X
		{And, One, Xv, Xv},
		{Or, Zero, Zero, Zero},
		{Or, One, Xv, One},
		{Or, Zero, Xv, Xv},
		{Nand, One, One, Zero},
		{Nor, Zero, Zero, One},
		{Xor, One, Zero, One},
		{Xor, One, Xv, Xv},
		{And, Dv, One, Dv},    // D propagates through sensitized AND
		{And, Dv, Zero, Zero}, // blocked by controlling value
		{Not, Dv, Zero, Dbar}, // argument b unused for NOT
		{Or, Dbar, Zero, Dbar},
		{Xor, Dv, Dbar, One}, // good: 1^0=1, faulty: 0^1=1
	}
	for i, tc := range cases {
		ins := []V5{tc.a, tc.b}
		if tc.t == Not {
			ins = ins[:1]
		}
		if got := EvalGate(tc.t, ins); got != tc.want {
			t.Errorf("case %d: %v(%v,%v) = %v, want %v", i, tc.t, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestRippleAdderSimulation(t *testing.T) {
	const n = 4
	c := RippleAdder(n)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Exhaustive check against integer addition.
	for a := 0; a < 1<<n; a++ {
		for b := 0; b < 1<<n; b++ {
			for cin := 0; cin < 2; cin++ {
				inputs := make([]V3, c.NumInputs)
				for i := 0; i < n; i++ {
					if a&(1<<i) != 0 {
						inputs[i] = T3
					}
					if b&(1<<i) != 0 {
						inputs[n+i] = T3
					}
				}
				if cin == 1 {
					inputs[2*n] = T3
				}
				vals := SimulateGood(c, inputs, nil)
				got := 0
				for i, out := range c.Outputs {
					if vals[out] == T3 {
						got |= 1 << i
					}
				}
				if want := a + b + cin; got != want {
					t.Fatalf("adder(%d,%d,%d) = %d, want %d", a, b, cin, got, want)
				}
			}
		}
	}
}

func TestGeneratedCircuitValid(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		c := Generate(16, 8, 40, seed)
		if err := c.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(c.Outputs) == 0 {
			t.Fatal("no outputs")
		}
	}
}

// TestPodemPatternsActuallyDetect is the key PODEM correctness check:
// every generated pattern must be confirmed by independent fault
// simulation.
func TestPodemPatternsActuallyDetect(t *testing.T) {
	c := Generate(16, 6, 30, 3)
	faults := AllFaults(c)
	detected, aborted := 0, 0
	for _, f := range faults {
		pr := Podem(c, f, 50)
		if pr.Detected {
			detected++
			if !DetectedBy(c, pr.Pattern, f, nil) {
				t.Fatalf("PODEM pattern for %v does not detect it", f)
			}
		} else if pr.Aborted {
			aborted++
		}
	}
	if detected == 0 {
		t.Fatal("PODEM detected nothing")
	}
	// Random circuits have mostly testable faults.
	if detected < len(faults)/2 {
		t.Fatalf("only %d/%d faults detected", detected, len(faults))
	}
	t.Logf("detected %d/%d (aborted %d)", detected, len(faults), aborted)
}

func TestPodemOnAdderFullCoverage(t *testing.T) {
	c := RippleAdder(3)
	faults := AllFaults(c)
	for _, f := range faults {
		pr := Podem(c, f, 200)
		if !pr.Detected {
			t.Fatalf("fault %v not detected on adder (aborted=%v); adders are fully testable", f, pr.Aborted)
		}
		if !DetectedBy(c, pr.Pattern, f, nil) {
			t.Fatalf("pattern for %v fails verification", f)
		}
	}
}

// Property: the event-driven fault simulator agrees with full
// five-valued simulation for random patterns and faults.
func TestFaultSimulatorAgreesWithFullSim(t *testing.T) {
	c := Generate(12, 6, 24, 9)
	f := func(patBits uint16, lineRaw uint16, sa bool) bool {
		pattern := make([]V3, c.NumInputs)
		for i := range pattern {
			if patBits&(1<<uint(i%16)) != 0 {
				pattern[i] = T3
			}
			patBits = patBits>>1 | patBits<<15
		}
		fault := Fault{Line: int(lineRaw) % c.Lines()}
		if sa {
			fault.StuckAt = 1
		}
		fs := NewFaultSimulator(c, pattern)
		return fs.Detects(fault) == DetectedBy(c, pattern, fault, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultSimulatorReuse(t *testing.T) {
	c := RippleAdder(3)
	pattern := make([]V3, c.NumInputs)
	for i := range pattern {
		pattern[i] = V3(i % 2)
	}
	fs := NewFaultSimulator(c, pattern)
	// Query many faults on the same simulator; results must match
	// fresh full simulations (scratch state fully reset).
	for _, f := range AllFaults(c) {
		if fs.Detects(f) != DetectedBy(c, pattern, f, nil) {
			t.Fatalf("reused simulator wrong for %v", f)
		}
	}
}

func TestSolveSeqFaultSimImprovesPatterns(t *testing.T) {
	c := Generate(16, 6, 40, 5)
	faults := AllFaults(c)
	noFS := SolveSeq(c, faults, 30, false)
	withFS := SolveSeq(c, faults, 30, true)
	if withFS.Patterns >= noFS.Patterns {
		t.Fatalf("fault sim should reduce patterns: %d vs %d", withFS.Patterns, noFS.Patterns)
	}
	if withFS.GateEvals >= noFS.GateEvals {
		t.Fatalf("fault sim should reduce total work: %d vs %d evals", withFS.GateEvals, noFS.GateEvals)
	}
	if withFS.Detected < noFS.Detected {
		t.Fatalf("fault sim lost coverage: %d vs %d", withFS.Detected, noFS.Detected)
	}
}

func TestOrcaStaticMatchesSeq(t *testing.T) {
	c := Generate(12, 5, 20, 7)
	faults := AllFaults(c)
	seq := SolveSeq(c, faults, 30, false)
	par := RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1}, c, faults,
		Params{Mode: Static})
	if par.Report.TimedOut {
		t.Fatalf("timed out; blocked: %v", par.Report.Blocked)
	}
	if par.Detected != seq.Detected || par.Untestable != seq.Untestable {
		t.Fatalf("parallel static (%d det, %d untestable) != seq (%d, %d)",
			par.Detected, par.Untestable, seq.Detected, seq.Untestable)
	}
}

func TestOrcaFaultSimCoverageMatches(t *testing.T) {
	c := Generate(12, 5, 20, 11)
	faults := AllFaults(c)
	seq := SolveSeq(c, faults, 30, true)
	par := RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 2}, c, faults,
		Params{Mode: StaticFaultSim})
	if par.Report.TimedOut {
		t.Fatalf("timed out; blocked: %v", par.Report.Blocked)
	}
	// Coverage tracks the sequential fault-sim flow closely; exact
	// counts may differ because different interleavings generate
	// different pattern sets, which cover aborted faults differently.
	if diff := par.Detected - seq.Detected; diff < -5 || diff > 5 {
		t.Fatalf("parallel FS coverage %d far from seq %d", par.Detected, seq.Detected)
	}
	if par.Patterns > seq.Patterns*2 {
		t.Fatalf("parallel generated far more patterns: %d vs %d", par.Patterns, seq.Patterns)
	}
}

func TestOrcaDynamicQueueWorks(t *testing.T) {
	c := Generate(12, 5, 20, 13)
	faults := AllFaults(c)
	seq := SolveSeq(c, faults, 30, true)
	par := RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 3}, c, faults,
		Params{Mode: DynamicFaultSim})
	if par.Report.TimedOut {
		t.Fatalf("timed out; blocked: %v", par.Report.Blocked)
	}
	if diff := par.Detected - seq.Detected; diff < -5 || diff > 5 {
		t.Fatalf("dynamic FS coverage %d far from seq %d", par.Detected, seq.Detected)
	}
}

func TestOrcaDeterministic(t *testing.T) {
	c := Generate(10, 4, 16, 17)
	faults := AllFaults(c)
	run := func() (int, int64) {
		r := RunOrca(orca.Config{Processors: 3, RTS: orca.Broadcast, Seed: 5}, c, faults,
			Params{Mode: StaticFaultSim})
		return r.Detected, int64(r.Report.Elapsed)
	}
	d1, e1 := run()
	d2, e2 := run()
	if d1 != d2 || e1 != e2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", d1, e1, d2, e2)
	}
}
