package amoeba

import (
	"fmt"

	"repro/internal/sim"
)

// Segment is a block of machine memory, Amoeba's unit of low-level
// memory management. Segments are memory-resident (the paper:
// "To provide maximum communication performance, all segments are
// memory resident"), so allocation directly reserves machine memory.
// The runtime system uses segments to hold object replicas, which lets
// experiments report per-machine replica storage.
type Segment struct {
	m      *Machine
	id     int
	size   int64
	mapped bool
	freed  bool
}

// AllocSegment reserves a memory segment of size bytes.
func (m *Machine) AllocSegment(size int64) *Segment {
	if size < 0 {
		panic("amoeba: negative segment size")
	}
	m.nextSegID++
	m.memInUse += size
	if m.memInUse > m.memPeak {
		m.memPeak = m.memInUse
	}
	return &Segment{m: m, id: m.nextSegID, size: size}
}

// Resize grows or shrinks the segment, adjusting machine memory
// accounting.
func (s *Segment) Resize(size int64) {
	if s.freed {
		panic("amoeba: resize of freed segment")
	}
	s.m.memInUse += size - s.size
	if s.m.memInUse > s.m.memPeak {
		s.m.memPeak = s.m.memInUse
	}
	s.size = size
}

// Map marks the segment mapped into an address space.
func (s *Segment) Map() {
	if s.freed {
		panic("amoeba: map of freed segment")
	}
	s.mapped = true
}

// Unmap removes the segment from the address space; the memory stays
// reserved until Free.
func (s *Segment) Unmap() { s.mapped = false }

// Mapped reports whether the segment is currently mapped.
func (s *Segment) Mapped() bool { return s.mapped }

// Size reports the segment size in bytes.
func (s *Segment) Size() int64 { return s.size }

// Free releases the segment's memory. Freeing twice panics.
func (s *Segment) Free() {
	if s.freed {
		panic(fmt.Sprintf("amoeba: double free of segment %d", s.id))
	}
	s.freed = true
	s.m.memInUse -= s.size
}

// MemInUse reports bytes currently reserved by segments on the machine.
func (m *Machine) MemInUse() int64 { return m.memInUse }

// MemPeak reports the high-water mark of segment memory on the machine.
func (m *Machine) MemPeak() int64 { return m.memPeak }

// Process is an Amoeba process: an address space with one or more
// threads. The Orca runtime creates one process per machine per
// program and forks worker threads into it.
type Process struct {
	m       *Machine
	name    string
	threads int
	segs    []*Segment
}

// NewProcess creates a process on the machine.
func (m *Machine) NewProcess(name string) *Process {
	return &Process{m: m, name: name}
}

// Machine returns the machine hosting the process.
func (pr *Process) Machine() *Machine { return pr.m }

// Name reports the process name.
func (pr *Process) Name() string { return pr.name }

// SpawnThread starts a thread in the process's address space.
func (pr *Process) SpawnThread(name string, fn func(p *sim.Proc)) *sim.Proc {
	pr.threads++
	return pr.m.SpawnThread(pr.name+"/"+name, fn)
}

// Threads reports how many threads have been spawned in the process.
func (pr *Process) Threads() int { return pr.threads }

// AllocSegment reserves a segment owned by the process.
func (pr *Process) AllocSegment(size int64) *Segment {
	s := pr.m.AllocSegment(size)
	pr.segs = append(pr.segs, s)
	return s
}
