package group

// Frame packing (Config.Batch): amortizing the ordering protocol over
// many operations per network frame.
//
// The unbatched protocol pays one request frame and one sequenced
// data frame per broadcast, so the sequencer's frame rate is the
// throughput ceiling. With batching enabled:
//
//   - The sequencer runs a frame packer: incoming requests (and its
//     own submissions) queue in a pack buffer that flushes into ONE
//     sequenced multi-op frame — each op keeps its own sequence
//     number, the batch occupies consecutive numbers, and the frame
//     is broadcast once. Flush triggers: MaxOps ops queued, MaxBytes
//     of payload queued, or Linger elapsed since the first queued op.
//   - A sender packs ops submitted in the same virtual instant into
//     one request frame (the cross-instant combining lives above, in
//     the RTS write buffer, which hands whole batches down).
//   - The BB variant packs accepts: senders broadcast (possibly
//     batched) data frames as usual, and the sequencer assigns a
//     batch of consecutive sequence numbers in one short accept
//     frame.
//
// Retransmission stays per-op: the history ring records each op of a
// batch under its own sequence number, so a member that lost a batch
// frame recovers exactly the ops it is missing through the ordinary
// gap machinery, and a sender re-sends only its still-unacknowledged
// items. Batch framing is deliberately NOT load-bearing for
// correctness — it only changes how many ops share a frame. The More
// flag each op carries (assigned at sequencing time, stable across
// retransmission) tells consumers where frames end, which the RTS
// uses to run one guard-retry sweep per frame.

import (
	"repro/internal/amoeba"
	"repro/internal/sim"
)

// batchItem is one operation inside a packed frame.
type batchItem struct {
	UID    int64
	Src    int
	SrcSeq int64
	Kind   string
	Body   any
	Size   int
}

// Batched wire bodies (all on the "grp" port, by pointer).
type (
	// reqBatchMsg is sender-side packing of PB requests: several ops
	// from one member, unicast to the sequencer in one frame.
	reqBatchMsg struct {
		Items []batchItem
		Size  int
	}
	// dataBatchMsg is the sequencer's packed sequenced frame: item i
	// carries sequence number Seq+i.
	dataBatchMsg struct {
		Seq   int64
		Items []batchItem
		Size  int
		Epoch int
	}
	// bbBatchMsg is BB sender-side packing: unsequenced multi-op
	// data, broadcast by the sender.
	bbBatchMsg struct {
		Items []batchItem
		Size  int
	}
	// acceptBatchMsg assigns consecutive sequence numbers to several
	// BB ops in one short frame: UIDs[i] gets Seq+i.
	acceptBatchMsg struct {
		Seq   int64
		UIDs  []int64
		Epoch int
	}
)

// BatchOp is one application operation submitted through
// BroadcastBatch for sender-side packing.
type BatchOp struct {
	Kind string
	Body any
	Size int
}

// BroadcastBatch submits several ops in one call, appending their
// uids to dst and returning it. With batching enabled the ops leave
// this member packed into as few frames as the configuration allows;
// otherwise each op broadcasts individually, exactly like Broadcast.
// Op order is preserved within the batch.
func (g *Member) BroadcastBatch(p *sim.Proc, ops []BatchOp, dst []int64) []int64 {
	for _, op := range ops {
		dst = append(dst, g.Broadcast(p, op.Kind, op.Body, op.Size))
	}
	return dst
}

// submitOp is Broadcast with batching enabled: the op joins the
// sequencer's pack buffer directly (when this member sequences) or
// the sender-side pack buffer.
func (g *Member) submitOp(p *sim.Proc, kind string, body any, size int) int64 {
	uid := g.m.ServiceID()
	g.sendSeq++
	g.stats.Sent++
	it := batchItem{UID: uid, Src: g.m.ID(), SrcSeq: g.sendSeq, Kind: kind, Body: body, Size: size}
	if g.isSeq && g.installed {
		g.enqueuePack(p, it)
	} else {
		g.enqueueSend(p, it)
	}
	return uid
}

// ---------------------------------------------------------------------
// Sequencer-side packer (PB data frames).

// enqueuePack queues one op for the next packed sequenced frame,
// flushing on MaxOps/MaxBytes and arming the Linger deadline
// otherwise. The op is pre-marked in the dedup window (seq -1 =
// "queued, not yet sequenced") so a retransmitted copy arriving
// before the flush cannot be sequenced twice.
func (g *Member) enqueuePack(p *sim.Proc, it batchItem) {
	g.noteSeen(it.Src, it.SrcSeq, -1)
	g.packQ = append(g.packQ, it)
	g.packBytes += it.Size + hdrItem
	b := g.cfg.Batch
	if len(g.packQ) >= b.MaxOps || (b.MaxBytes > 0 && g.packBytes >= b.MaxBytes) {
		g.flushPack(p)
		return
	}
	if g.packTimer == nil {
		g.packTimer = g.m.After(b.Linger, func(tp *sim.Proc) {
			g.packTimer = nil
			g.flushPack(tp)
		})
	}
}

// detachPack cancels a packer's timer and detaches its queue. When
// this member no longer sequences (it lost an election with ops still
// queued), its own items re-enter the sender path — other members'
// requests are re-sent by their own retransmission timers — and nil
// is returned.
func (g *Member) detachPack(p *sim.Proc, q *[]batchItem, timer **sim.Event) []batchItem {
	if *timer != nil {
		(*timer).Cancel()
		*timer = nil
	}
	items := *q
	if len(items) == 0 {
		return nil
	}
	*q = nil
	if !g.isSeq || !g.installed {
		for _, it := range items {
			if it.Src == g.m.ID() {
				g.enqueueSend(p, it)
			}
		}
		return nil
	}
	return items
}

// sequenceBatch assigns consecutive sequence numbers to items and
// records each op in the history ring; every op but the last carries
// the More (mid-frame) flag.
func (g *Member) sequenceBatch(items []batchItem) []*dataMsg {
	ds := make([]*dataMsg, len(items))
	for i, it := range items {
		d := &dataMsg{Seq: g.nextSeqNum(), UID: it.UID, Src: it.Src, SrcSeq: it.SrcSeq, Kind: it.Kind,
			Body: it.Body, Size: it.Size, Epoch: g.epoch, More: i < len(items)-1}
		g.recordHistory(d)
		ds[i] = d
	}
	return ds
}

// flushPack sequences and broadcasts the queued ops as one frame.
func (g *Member) flushPack(p *sim.Proc) {
	items := g.detachPack(p, &g.packQ, &g.packTimer)
	g.packBytes = 0
	if items == nil {
		return
	}
	ds := g.sequenceBatch(items)
	if g.cfg.Protocol == Consensus {
		// The packed frame becomes one multi-slot proposal: the whole
		// batch is accepted atomically per member, which is what keeps
		// More boundaries stable across a re-proposal.
		if len(items) > 1 {
			g.stats.Batches++
			g.stats.BatchedOps += int64(len(items))
		}
		g.propose(p, ds)
		return
	}
	g.stats.PBSends++
	if len(items) == 1 {
		g.cast(p, amoeba.Packet{Port: g.port, Kind: "grp-data", Body: ds[0], Size: ds[0].Size + hdrData})
	} else {
		size := 0
		for _, it := range items {
			size += it.Size + hdrItem
		}
		g.stats.Batches++
		g.stats.BatchedOps += int64(len(items))
		g.cast(p, amoeba.Packet{Port: g.port, Kind: "grp-bdata",
			Body: &dataBatchMsg{Seq: ds[0].Seq, Items: items, Size: size, Epoch: g.epoch}, Size: size + hdrData})
	}
	for _, d := range ds {
		g.processData(p, d)
	}
}

// onDataBatch unpacks a sequenced multi-op frame at a member. Each op
// runs through the ordinary ordered-delivery core under its own
// sequence number.
func (g *Member) onDataBatch(p *sim.Proc, b *dataBatchMsg) {
	for i := range b.Items {
		it := &b.Items[i]
		g.processData(p, &dataMsg{Seq: b.Seq + int64(i), UID: it.UID, Src: it.Src, SrcSeq: it.SrcSeq,
			Kind: it.Kind, Body: it.Body, Size: it.Size, Epoch: b.Epoch, More: i < len(b.Items)-1})
	}
}

// ---------------------------------------------------------------------
// Sequencer-side packer, BB variant (packed accepts).

// enqueueAccept queues a BB op (whose data the members already hold)
// for the next packed accept frame.
func (g *Member) enqueueAccept(p *sim.Proc, it batchItem) {
	g.noteSeen(it.Src, it.SrcSeq, -1)
	g.accQ = append(g.accQ, it)
	if len(g.accQ) >= g.cfg.Batch.MaxOps {
		g.flushAccepts(p)
		return
	}
	if g.accTimer == nil {
		g.accTimer = g.m.After(g.cfg.Batch.Linger, func(tp *sim.Proc) {
			g.accTimer = nil
			g.flushAccepts(tp)
		})
	}
}

// flushAccepts sequences the queued BB ops and broadcasts one short
// accept frame assigning their consecutive sequence numbers (the
// members already hold the data).
func (g *Member) flushAccepts(p *sim.Proc) {
	items := g.detachPack(p, &g.accQ, &g.accTimer)
	if items == nil {
		return
	}
	ds := g.sequenceBatch(items)
	if len(items) == 1 {
		g.cast(p, amoeba.Packet{Port: g.port, Kind: "grp-accept",
			Body: acceptMsg{Seq: ds[0].Seq, UID: ds[0].UID, Epoch: g.epoch}, Size: hdrAccept})
	} else {
		uids := make([]int64, len(items))
		for i := range items {
			uids[i] = items[i].UID
		}
		g.stats.Batches++
		g.stats.BatchedOps += int64(len(items))
		g.cast(p, amoeba.Packet{Port: g.port, Kind: "grp-baccept",
			Body: &acceptBatchMsg{Seq: ds[0].Seq, UIDs: uids, Epoch: g.epoch}, Size: hdrAccept + 8*len(uids)})
	}
	for _, d := range ds {
		g.processData(p, d)
	}
}

// onAcceptBatch handles a packed accept at a non-sequencer member:
// each (Seq+i, UIDs[i]) pair runs the single-accept logic.
func (g *Member) onAcceptBatch(p *sim.Proc, a *acceptBatchMsg) {
	if a.Epoch < g.epoch {
		return // stale sequencer's stream
	}
	if a.Epoch > g.epoch {
		g.epoch = a.Epoch // adopt the newer view's stream
		g.electing = false
	}
	for i, uid := range a.UIDs {
		seq := a.Seq + int64(i)
		if seq < g.nextSeq {
			delete(g.pendingBB, uid) // late duplicate; GC the stashed data
			continue
		}
		if bb, ok := g.pendingBB[uid]; ok {
			delete(g.pendingBB, uid)
			g.processData(p, &dataMsg{Seq: seq, UID: uid, Src: bb.Src, SrcSeq: bb.SrcSeq, Kind: bb.Kind,
				Body: bb.Body, Size: bb.Size, Epoch: g.epoch, More: i < len(a.UIDs)-1})
			continue
		}
		// Data frame lost: remember the accept and fetch the payload
		// from the sequencer's history via the gap machinery.
		g.acceptedBB[seq] = bbAccept{uid: uid, more: i < len(a.UIDs)-1}
		if seq > g.maxSeen {
			g.maxSeen = seq
		}
		g.armGapTimer()
	}
}

// ---------------------------------------------------------------------
// Sender-side packer.

// enqueueSend queues one op for the next request frame and arms a
// same-instant flush: every op submitted in the current virtual
// instant leaves in one frame (cross-instant combining is the RTS
// write buffer's job). MaxOps/MaxBytes flush early so one frame never
// carries more than a configured batch.
func (g *Member) enqueueSend(p *sim.Proc, it batchItem) {
	g.sendQ = append(g.sendQ, it)
	g.sendBytes += it.Size + hdrItem
	b := g.cfg.Batch
	if len(g.sendQ) >= b.MaxOps || (b.MaxBytes > 0 && g.sendBytes >= b.MaxBytes) {
		g.flushSend(p)
		return
	}
	if !g.sendArmed {
		g.sendArmed = true
		g.m.After(0, func(tp *sim.Proc) {
			g.sendArmed = false
			g.flushSend(tp)
		})
	}
}

// flushSend transmits the queued ops as one outstanding send.
func (g *Member) flushSend(p *sim.Proc) {
	items := g.sendQ
	if len(items) == 0 {
		return
	}
	g.sendQ = nil
	g.sendBytes = 0
	if g.isSeq && g.installed {
		// Became the sequencer while ops were queued: sequence them
		// directly.
		for _, it := range items {
			g.enqueuePack(p, it)
		}
		return
	}
	if len(items) == 1 {
		it := items[0]
		st := &sendState{uid: it.UID, srcSeq: it.SrcSeq, kind: it.Kind, body: it.Body, size: it.Size, method: g.resolveMethod(it.Size)}
		g.outstanding[it.UID] = st
		g.transmit(p, st)
		g.armSenderTimer(st)
		return
	}
	size := 0
	for _, it := range items {
		size += it.Size + hdrItem
	}
	st := &sendState{items: items, size: size, method: g.resolveMethod(size)}
	for i := range items {
		g.outstanding[items[i].UID] = st
	}
	g.stats.Batches++
	g.stats.BatchedOps += int64(len(items))
	g.transmit(p, st)
	g.armSenderTimer(st)
}

// transmitBatch performs one send attempt for a batched send. Only
// the still-outstanding items travel; a retransmission after a
// partial acknowledgment shrinks the frame.
func (g *Member) transmitBatch(p *sim.Proc, st *sendState) {
	live := make([]batchItem, 0, len(st.items))
	size := 0
	for i := range st.items {
		if g.outstanding[st.items[i].UID] == st {
			live = append(live, st.items[i])
			size += st.items[i].Size + hdrItem
		}
	}
	if len(live) == 0 {
		return
	}
	switch st.method {
	case ForcePB:
		g.stats.PBSends++
		g.m.Send(p, g.seqNode, amoeba.Packet{Port: g.port, Kind: "grp-breq",
			Body: &reqBatchMsg{Items: live, Size: size}, Size: size + hdrData})
	case ForceBB:
		g.stats.BBSends++
		for i := range live {
			it := live[i]
			g.pendingBB[it.UID] = &bbDataMsg{UID: it.UID, Src: it.Src, SrcSeq: it.SrcSeq, Kind: it.Kind, Body: it.Body, Size: it.Size}
		}
		g.cast(p, amoeba.Packet{Port: g.port, Kind: "grp-bb-bdata",
			Body: &bbBatchMsg{Items: live, Size: size}, Size: size + hdrData})
	}
}

// onReqBatch handles a packed request frame at the sequencer: each
// item dedups individually and joins the pack buffer.
func (g *Member) onReqBatch(p *sim.Proc, b *reqBatchMsg) {
	if !g.isSeq || !g.installed {
		return // stale or uninstalled view; the sender will retry
	}
	for i := range b.Items {
		it := b.Items[i]
		if seq, dup := g.seenSeq(it.Src, it.SrcSeq); dup {
			if d := g.history.get(seq); d != nil && (g.cfg.Protocol != Consensus || seq <= g.committed) {
				g.cast(p, amoeba.Packet{Port: g.port, Kind: "grp-data", Body: d, Size: d.Size + hdrData})
			}
			continue
		}
		g.enqueuePack(p, it)
	}
}

// onBBBatch unpacks a batched BB data frame: each item runs the
// single-item BB logic (accept-packing at the sequencer, stashing or
// completion at a member).
func (g *Member) onBBBatch(p *sim.Proc, b *bbBatchMsg) {
	for i := range b.Items {
		it := b.Items[i]
		g.onBBData(p, &bbDataMsg{UID: it.UID, Src: it.Src, SrcSeq: it.SrcSeq, Kind: it.Kind, Body: it.Body, Size: it.Size})
	}
}
