package tsp

import (
	"math"
	"testing"

	"repro/internal/orca"
)

// bruteForce computes the exact optimum by enumerating permutations.
func bruteForce(inst *Instance) int {
	n := inst.N
	perm := make([]int, 0, n)
	used := make([]bool, n)
	best := math.MaxInt
	var rec func(last, length int)
	rec = func(last, length int) {
		if length >= best {
			return
		}
		if len(perm) == n-1 {
			if t := length + inst.Dist[last][0]; t < best {
				best = t
			}
			return
		}
		for c := 1; c < n; c++ {
			if used[c] {
				continue
			}
			used[c] = true
			perm = append(perm, c)
			rec(c, length+inst.Dist[last][c])
			perm = perm[:len(perm)-1]
			used[c] = false
		}
	}
	rec(0, 0)
	return best
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(10, 42)
	b := Generate(10, 42)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if a.Dist[i][j] != b.Dist[i][j] {
				t.Fatal("instance generation not deterministic")
			}
		}
	}
	c := Generate(10, 43)
	same := true
	for i := 0; i < 10 && same; i++ {
		for j := 0; j < 10; j++ {
			if a.Dist[i][j] != c.Dist[i][j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical instances")
	}
}

func TestInstanceSymmetric(t *testing.T) {
	inst := Generate(12, 7)
	for i := 0; i < 12; i++ {
		if inst.Dist[i][i] != 0 {
			t.Fatalf("Dist[%d][%d] = %d", i, i, inst.Dist[i][i])
		}
		for j := 0; j < 12; j++ {
			if inst.Dist[i][j] != inst.Dist[j][i] {
				t.Fatal("distance matrix not symmetric")
			}
		}
	}
}

func TestSolveSeqMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		inst := Generate(9, seed)
		want := bruteForce(inst)
		got, nodes := SolveSeq(inst)
		if got != want {
			t.Fatalf("seed %d: SolveSeq = %d, brute force = %d", seed, got, want)
		}
		if nodes == 0 {
			t.Fatal("no nodes expanded")
		}
	}
}

func TestGenerateJobsCoverSearchSpace(t *testing.T) {
	inst := Generate(8, 3)
	jobs := GenerateJobs(inst, 3)
	// 7 choices for position 2, 6 for position 3.
	if len(jobs) != 42 {
		t.Fatalf("jobs = %d, want 42", len(jobs))
	}
	seen := map[[2]int]bool{}
	for _, j := range jobs {
		if len(j.Route) != 3 || j.Route[0] != 0 {
			t.Fatalf("bad job route %v", j.Route)
		}
		key := [2]int{j.Route[1], j.Route[2]}
		if seen[key] {
			t.Fatalf("duplicate job %v", j.Route)
		}
		seen[key] = true
		if want := inst.Dist[0][j.Route[1]] + inst.Dist[j.Route[1]][j.Route[2]]; j.Len != want {
			t.Fatalf("job length %d, want %d", j.Len, want)
		}
	}
}

func TestSearchJobEquivalentToSeq(t *testing.T) {
	inst := Generate(9, 5)
	want, _ := SolveSeq(inst)
	best := math.MaxInt
	for _, job := range GenerateJobs(inst, 3) {
		SearchJob(inst, job,
			func() int { return best },
			func(total int) {
				if total < best {
					best = total
				}
			},
			func(int64) {})
	}
	if best != want {
		t.Fatalf("job-split search = %d, want %d", best, want)
	}
}

func TestRunOrcaFindsOptimum(t *testing.T) {
	inst := Generate(10, 11)
	want, _ := SolveSeq(inst)
	res := RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1}, inst, Params{})
	if res.Report.TimedOut {
		t.Fatal("run timed out")
	}
	if res.Best != want {
		t.Fatalf("parallel best = %d, want %d", res.Best, want)
	}
	if res.Nodes == 0 {
		t.Fatal("no nodes accounted")
	}
}

func TestRunOrcaSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup run in -short mode")
	}
	inst := Generate(12, 11)
	t1 := RunOrca(orca.Config{Processors: 1, RTS: orca.Broadcast, Seed: 1}, inst, Params{})
	t4 := RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1}, inst, Params{})
	if t1.Best != t4.Best {
		t.Fatalf("different optima: %d vs %d", t1.Best, t4.Best)
	}
	speedup := float64(t1.Report.Elapsed) / float64(t4.Report.Elapsed)
	if speedup < 2.5 {
		t.Fatalf("speedup on 4 CPUs = %.2f, want > 2.5", speedup)
	}
}

func TestRunOrcaDeterministic(t *testing.T) {
	inst := Generate(9, 13)
	a := RunOrca(orca.Config{Processors: 3, RTS: orca.Broadcast, Seed: 9}, inst, Params{})
	b := RunOrca(orca.Config{Processors: 3, RTS: orca.Broadcast, Seed: 9}, inst, Params{})
	if a.Report.Elapsed != b.Report.Elapsed || a.Nodes != b.Nodes || a.Best != b.Best {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}
