package chess

import (
	"fmt"
	"sort"

	"repro/internal/orca"
	"repro/internal/orca/std"
	"repro/internal/sim"
)

// Oracol's parallel search partitions the search tree dynamically
// among the processors (§4.3). The algorithm is principal-variation
// splitting (Marsland & Campbell, the paper's reference [13]): the
// manager walks the leftmost line of the tree; at each node on that
// spine, the first successor is searched recursively (establishing a
// sound bound) and the remaining successors fan out to the workers
// through a job queue, pruned against a shared per-level bound object.
// Only the leftmost walk is serial, which is what bounds alpha-beta's
// parallel speedup — the paper measures 4.5-5.5 on 10 CPUs.
//
// The killer and transposition tables can be process-local or shared
// objects: the experiment of §4.3 ("In Orca, it is particularly easy
// to implement both versions and see which one is best").

// Params configures an Oracol run.
type Params struct {
	// MaxDepth is the iterative-deepening limit in plies.
	MaxDepth int
	// SharedTT shares the transposition table across processes.
	SharedTT bool
	// SharedKiller shares the killer table across processes.
	SharedKiller bool
	// TTBuckets sizes the transposition table (default 8192).
	TTBuckets int
	// TTMinDepth throttles shared stores: only subtrees at least this
	// deep are broadcast (default 3). Local stores always happen.
	TTMinDepth int
	// KillerMaxPly shares killers only for plies below this (default
	// 4); deep-ply killers churn too fast to be worth broadcasting.
	KillerMaxPly int
	// SplitMinDepth stops splitting: subtrees at most this deep are
	// one job (default 2).
	SplitMinDepth int
	// Workers overrides the worker count (default: one per CPU).
	Workers int
}

func (p *Params) fill() {
	if p.MaxDepth == 0 {
		p.MaxDepth = 5
	}
	if p.TTBuckets == 0 {
		p.TTBuckets = 8192
	}
	if p.TTMinDepth == 0 {
		p.TTMinDepth = 3
	}
	if p.KillerMaxPly == 0 {
		p.KillerMaxPly = 4
	}
	if p.SplitMinDepth == 0 {
		p.SplitMinDepth = 2
	}
}

// Result of an Oracol run.
type Result struct {
	BestMove Move
	Score    int
	Nodes    int64
	Report   orca.Report
	Runtime  *orca.Runtime
}

// searchJob asks a worker to search the position reached by Path
// (encoded moves from the root) to Depth. Level is the spine level
// whose bound object prunes this subtree; RootIdx >= 0 tags level-0
// jobs with their root-move index so scores can be collected.
type searchJob struct {
	Path    []int
	Depth   int
	Level   int
	RootIdx int
}

// WireSize reports the job size on the wire.
func (j searchJob) WireSize() int { return 24 + 4*len(j.Path) }

// sharedTables implements Tables over shared objects with a local
// overlay: lookups hit the local map first, then the replicated shared
// object (still a local read — no communication); stores above the
// depth threshold are broadcast.
type sharedTables struct {
	wp           *orca.Proc
	local        *LocalTables
	tt           orca.Object
	killer       orca.Object
	useTT        bool
	useKiller    bool
	ttMinDepth   int
	killerMaxPly int
}

// TTLookup implements Tables.
func (t *sharedTables) TTLookup(key uint64) (int64, bool) {
	if e, ok := t.local.TTLookup(key); ok {
		return e, ok
	}
	if !t.useTT {
		return 0, false
	}
	res := t.wp.Invoke(t.tt, "lookup", key)
	return res[0].(int64), res[1].(bool)
}

// TTStore implements Tables.
func (t *sharedTables) TTStore(key uint64, entry int64, depth int) {
	t.local.TTStore(key, entry, depth)
	if t.useTT && depth >= t.ttMinDepth {
		t.wp.Invoke(t.tt, "store", key, entry)
	}
}

// Killers implements Tables.
func (t *sharedTables) Killers(ply int) (int, int) {
	if t.useKiller && ply < t.killerMaxPly {
		res := t.wp.Invoke(t.killer, "get", ply)
		return res[0].(int), res[1].(int)
	}
	return t.local.Killers(ply)
}

// AddKiller implements Tables.
func (t *sharedTables) AddKiller(ply int, move int) {
	if t.useKiller && ply < t.killerMaxPly {
		t.wp.Invoke(t.killer, "add", ply, move)
		return
	}
	t.local.AddKiller(ply, move)
}

// applyPath replays encoded moves from the root.
func applyPath(b *Board, path []int) *Board {
	c := b.Clone()
	for _, em := range path {
		c.MakeMove(DecodeMove(em))
	}
	return c
}

// RunOrca executes the parallel Oracol search on the simulated
// machine and returns the chosen move.
func RunOrca(cfg orca.Config, b *Board, params Params) Result {
	params.fill()
	workers := params.Workers
	if workers == 0 {
		workers = cfg.Processors
	}
	rootMoves := b.LegalMoves()
	res := Result{}
	if len(rootMoves) == 0 {
		return res
	}
	rt := orca.New(cfg, std.Register)
	rep := rt.Run(func(p *orca.Proc) {
		queue := p.New(std.JobQueue)
		scores := p.New(std.Table, 512)
		done := p.New(std.IntObj, 0)
		nodesAcc := p.New(std.Accum)
		tt := p.New(std.Table, params.TTBuckets)
		killer := p.New(std.Killer, 64)
		fin := p.New(std.Barrier, workers)
		// One bound object per spine level; siblings at level L are
		// pruned against levelBest[L] (the paper's shared-object idiom
		// for dynamic tree partitioning).
		levelBest := make([]orca.Object, params.MaxDepth+1)
		for i := range levelBest {
			levelBest[i] = p.New(std.IntObj, -Infinity)
		}

		for wdx := 0; wdx < workers; wdx++ {
			cpu := wdx % cfg.Processors
			p.Fork(cpu, fmt.Sprintf("oracol%d", wdx), func(wp *orca.Proc) {
				tabs := &sharedTables{
					wp: wp, local: NewLocalTables(),
					tt: tt, killer: killer,
					useTT: params.SharedTT, useKiller: params.SharedKiller,
					ttMinDepth: params.TTMinDepth, killerMaxPly: params.KillerMaxPly,
				}
				var total int64
				for {
					got := wp.Invoke(queue, "get")
					if !got[1].(bool) {
						break
					}
					job := got[0].(searchJob)
					s := NewSearcher(applyPath(b, job.Path), tabs)
					s.Charge = func(n int64) { wp.Work(sim.Time(n) * NodeCost) }
					// The parent's bound is a local read of the
					// replicated level object.
					parentBound := wp.InvokeI(levelBest[job.Level], "value")
					v := s.AlphaBeta(job.Depth, -Infinity, -parentBound, len(job.Path))
					cand := -v
					if cand > parentBound {
						wp.Invoke(levelBest[job.Level], "max", cand)
					}
					if job.RootIdx >= 0 {
						wp.Invoke(scores, "store", uint64(job.RootIdx), int64(cand))
					}
					s.flush()
					total += s.Nodes
					s.Nodes, s.lastChg = 0, 0
					wp.Invoke(done, "inc")
				}
				wp.Invoke(nodesAcc, "add", int(total))
				wp.Invoke(fin, "arrive")
			})
		}

		// Manager: iterative deepening over PV-split rounds.
		finished := 0
		await := func(n int) {
			finished += n
			p.Invoke(done, "awaitGE", finished)
		}
		// hashMoveFor consults the shared transposition table (a local
		// read) to order the spine like the previous iteration.
		hashMoveFor := func(pos *Board) Move {
			if !params.SharedTT {
				return Move{}
			}
			got := p.Invoke(tt, "lookup", pos.Hash())
			if !got[1].(bool) {
				return Move{}
			}
			_, _, _, mv := UnpackTT(got[0].(int64))
			return mv
		}

		order := make([]int, len(rootMoves))
		for i := range order {
			order[i] = i
		}
		lastScores := make([]int, len(rootMoves))

		// pvsplit returns the negamax value of pos (side to move's
		// view), searched to depth, splitting siblings at each spine
		// level. path is the move list from the root; level 0 tags
		// jobs with root indices. rootOrder supplies the move order
		// at the root (from the previous iteration's scores).
		var pvsplit func(pos *Board, path []int, depth, level int) int
		pvsplit = func(pos *Board, path []int, depth, level int) int {
			moves := pos.LegalMoves()
			p.Work(sim.Time(len(moves)+8) * 40 * sim.Microsecond) // spine movegen
			if len(moves) == 0 {
				if pos.InCheck() {
					return -MateScore + level
				}
				return 0
			}
			if level == 0 {
				reordered := make([]Move, len(moves))
				for i, idx := range order {
					reordered[i] = rootMoves[idx]
				}
				moves = reordered
			} else {
				OrderMoves(pos, moves, hashMoveFor(pos), 0, 0)
			}
			// Leftmost successor: recurse (or a single job when the
			// subtree is too small to split further).
			first := moves[0]
			child := pos.Clone()
			child.MakeMove(first)
			var v0 int
			if depth-1 <= params.SplitMinDepth {
				ri := -1
				if level == 0 {
					ri = order[0]
				}
				p.Invoke(levelBest[level], "assign", -Infinity)
				p.Invoke(queue, "add", searchJob{
					Path:  append(append([]int(nil), path...), first.Encode()),
					Depth: depth - 1, Level: level, RootIdx: ri,
				})
				await(1)
				v0 = p.InvokeI(levelBest[level], "value")
			} else {
				v0 = -pvsplit(child, append(append([]int(nil), path...), first.Encode()), depth-1, level+1)
				p.Invoke(levelBest[level], "assign", v0)
				if level == 0 {
					p.Invoke(scores, "store", uint64(order[0]), int64(v0))
				}
			}
			// Remaining successors fan out to the workers, pruned
			// against this level's bound.
			if len(moves) > 1 {
				for i := 1; i < len(moves); i++ {
					ri := -1
					if level == 0 {
						ri = order[i]
					}
					p.Invoke(queue, "add", searchJob{
						Path:  append(append([]int(nil), path...), moves[i].Encode()),
						Depth: depth - 1, Level: level, RootIdx: ri,
					})
				}
				await(len(moves) - 1)
			}
			return p.InvokeI(levelBest[level], "value")
		}

		for d := 1; d <= params.MaxDepth; d++ {
			score := pvsplit(b, nil, d, 0)
			for i := range rootMoves {
				got := p.Invoke(scores, "lookup", uint64(i))
				lastScores[i] = int(got[0].(int64))
			}
			sort.SliceStable(order, func(a, c int) bool {
				return lastScores[order[a]] > lastScores[order[c]]
			})
			res.Score = score
			res.BestMove = rootMoves[order[0]]
			if IsMateScore(score) {
				break
			}
		}
		p.Invoke(queue, "close")
		p.Invoke(fin, "wait")
		res.Nodes = int64(p.InvokeI(nodesAcc, "value"))
	})
	res.Report = rep
	res.Runtime = rt
	return res
}
