package harness

import (
	"fmt"
	"io"

	"repro/internal/amoeba"
	"repro/internal/apps/tsp"
	"repro/internal/orca"
	"repro/internal/sim"
)

// PartReplExperiment is the ablation for the paper's remark on TSP's
// job queue: "The RTS described in this paper (the original one),
// replicates it on all machines, although keeping a single copy would
// be better." It compares the fully replicated queue against the
// partial-replication extension keeping one copy on the manager's
// machine.
func PartReplExperiment(w io.Writer, scale Scale) {
	cities := 13
	procs := []int{4, 8, 16}
	if scale == Quick {
		cities = 11
		procs = []int{4}
	}
	inst := tsp.Generate(cities, 5)
	fmt.Fprintf(w, "== PARTREPL: replicated vs single-copy job queue (TSP, %d cities) ==\n", cities)
	var rows [][]string
	for _, p := range procs {
		repl := tsp.RunOrca(orca.Config{Processors: p, RTS: orca.Broadcast, Seed: 1}, inst, tsp.Params{})
		single := tsp.RunOrca(orca.Config{Processors: p, RTS: orca.Broadcast, Seed: 1}, inst,
			tsp.Params{SingleCopyQueue: true})
		rows = append(rows, []string{
			fmt.Sprint(p),
			fmtTime(repl.Report.Elapsed), fmt.Sprint(repl.Report.Net.CountsByKind["grp-data"]),
			fmtTime(single.Report.Elapsed), fmt.Sprint(single.Report.Net.CountsByKind["grp-data"]),
			fmt.Sprintf("%.1f%%", 100*(1-float64(single.Report.Elapsed)/float64(repl.Report.Elapsed))),
		})
	}
	Table(w, []string{"procs", "replicated time", "bcasts", "single-copy time", "bcasts", "time saved"}, rows)
	fmt.Fprintln(w, "Paper: keeping a single copy of the (write-mostly) job queue would")
	fmt.Fprintln(w, "be better than replicating it on all machines.")
	fmt.Fprintln(w)
}

// InterruptCostExperiment is a sensitivity ablation on the kernel
// cost model: the ACP speedup bend is driven by the per-message
// interrupt/handler cost the paper identifies; scaling that cost
// moves the knee.
func InterruptCostExperiment(w io.Writer, scale Scale) {
	cities := 12
	procs := 8
	if scale == Quick {
		cities = 10
		procs = 4
	}
	inst := tsp.Generate(cities, 5)
	fmt.Fprintln(w, "== INTRCOST: sensitivity of speedup to per-message CPU cost ==")
	var rows [][]string
	for _, mult := range []int{0, 1, 4, 16} {
		costs := amoeba.DefaultCosts()
		costs.Interrupt *= sim.Time(mult)
		costs.Protocol *= sim.Time(mult)
		run := func(p int) tsp.Result {
			return tsp.RunOrca(orca.Config{
				Processors: p, RTS: orca.Broadcast, Seed: 1, KernelCosts: &costs,
			}, inst, tsp.Params{})
		}
		t1 := run(1)
		tp := run(procs)
		rows = append(rows, []string{
			fmt.Sprintf("%dx", mult),
			fmtTime(tp.Report.Elapsed),
			fmt.Sprintf("%.2f", float64(t1.Report.Elapsed)/float64(tp.Report.Elapsed)),
		})
	}
	Table(w, []string{"interrupt cost", "time (P=" + fmt.Sprint(procs) + ")", "speedup"}, rows)
	fmt.Fprintln(w, "Replication's economics depend on message-handling CPU cost: as the")
	fmt.Fprintln(w, "per-message tax grows, the same program's speedup erodes.")
	fmt.Fprintln(w)
}
