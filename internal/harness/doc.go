// Package harness drives the experiments that regenerate every table
// and figure of the paper's evaluation, plus the protocol analyses of
// §3 and the fault-injection scenarios. Each experiment returns a
// structured result and can render itself as text (tables and ASCII
// speedup curves in the style of the paper's figures); several panic
// on wrong answers so CI smoke runs double as correctness checks.
//
// Downward: experiments run the applications in internal/apps on
// orca runtimes. Upward: cmd/orca-bench is the command-line driver,
// and EXPERIMENTS.md records a full run. PAPER_MAP.md maps each
// experiment back to the paper section it reproduces.
package harness
