package rts

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync/atomic"

	"repro/internal/sim"
)

// ObjID identifies a shared object across all machines.
type ObjID int64

// OpKind classifies operations. Reads execute locally on a replica
// without network traffic; writes are propagated by the runtime.
type OpKind int

const (
	// Read is an operation that does not change the object state.
	Read OpKind = iota
	// Write is an operation that (potentially) changes the state.
	Write
)

// String names the operation kind.
func (k OpKind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// State is an object's encapsulated data. Replicas never share State
// values: each machine holds its own copy, kept consistent by applying
// the same deterministic operations in the same order.
type State any

// OpDef defines one operation of an object type.
type OpDef struct {
	// Name is the operation name used in Invoke.
	Name string
	// Kind classifies the operation; the runtime trusts it (as the
	// Orca compiler determined it statically).
	Kind OpKind
	// Guard, if non-nil, must return true for the operation to
	// execute; otherwise the invocation suspends until a write makes
	// the guard true. Guards must be side-effect free.
	Guard func(s State, args []any) bool
	// Apply executes the operation and returns its results. Write
	// operations may mutate s; they must be deterministic, because
	// the broadcast runtime ships the operation (function shipping)
	// and every replica applies it independently.
	Apply func(s State, args []any) []any
	// ApplyInto, when non-nil, is Apply in append form: it appends the
	// results to dst and returns the extended slice. The runtimes use
	// it on local-read fast paths with a per-worker scratch buffer, so
	// a read costs no result allocation. Optional; the typed builder
	// layer always provides it.
	ApplyInto func(s State, args []any, dst []any) []any
	// NoResult declares that Apply always returns an empty result
	// list (the typed DefUpdate* descriptors set it). Unguarded
	// no-result writes are the ops a batching runtime may submit
	// through a combining buffer, completing them asynchronously —
	// there is no result the invoker could observe.
	NoResult bool
	// CPUCost is the virtual CPU time one execution takes, beyond the
	// runtime's fixed overheads. Zero means DefaultOpCost.
	CPUCost sim.Time
}

// ObjectType is an abstract data type: a constructor plus operations.
type ObjectType struct {
	// Name identifies the type in the global registry.
	Name string
	// New creates the initial state from constructor arguments.
	New func(args []any) State
	// Clone deep-copies a state. The point-to-point runtime uses it
	// to transfer copies between machines; it must produce a state
	// disjoint from the original.
	Clone func(s State) State
	// SizeOf reports the state's wire/storage size in bytes, used for
	// replica segments and state-transfer message sizes. If nil, a
	// gob-based estimate is used.
	SizeOf func(s State) int
	// SizeFixed declares that SizeOf is constant over the object's
	// lifetime, letting the runtimes skip per-write segment resizing.
	SizeFixed bool
	// Ops maps operation names to definitions.
	Ops map[string]*OpDef
}

// Op returns the named operation or panics: invoking an undefined
// operation is a program bug, as it would be a compile error in Orca.
func (t *ObjectType) Op(name string) *OpDef {
	op, ok := t.Ops[name]
	if !ok {
		panic(fmt.Sprintf("rts: type %s has no operation %q", t.Name, name))
	}
	return op
}

// stateSize reports the storage size of s using the type's SizeOf or
// the generic estimator.
func (t *ObjectType) stateSize(s State) int {
	if t.SizeOf != nil {
		return t.SizeOf(s)
	}
	return SizeOfValue(s)
}

// Registry maps type names to object types so every machine's runtime
// can instantiate replicas from wire messages.
type Registry struct {
	types map[string]*ObjectType
}

// NewRegistry creates an empty type registry.
func NewRegistry() *Registry { return &Registry{types: make(map[string]*ObjectType)} }

// Register adds a type. Registering a duplicate name panics.
func (r *Registry) Register(t *ObjectType) {
	if _, dup := r.types[t.Name]; dup {
		panic(fmt.Sprintf("rts: duplicate type %q", t.Name))
	}
	r.types[t.Name] = t
}

// Each calls fn for every registered type, in unspecified order.
func (r *Registry) Each(fn func(*ObjectType)) {
	for _, t := range r.types {
		fn(t)
	}
}

// Lookup returns the named type or panics.
func (r *Registry) Lookup(name string) *ObjectType {
	t, ok := r.types[name]
	if !ok {
		panic(fmt.Sprintf("rts: unknown type %q", name))
	}
	return t
}

// opCache is a two-entry MRU cache over an ObjectType's Ops map.
// Operation names at call sites are string constants, so a hit is a
// pointer-equality compare; two entries keep the classic
// read-then-write alternation (value/min, get/add) from thrashing.
// Purely a dispatch cache: the map stays the source of truth and the
// (deterministic) results are identical. The simulation is
// single-threaded, so no locking is needed even on shared records.
type opCache struct {
	name0, name1 string
	op0, op1     *OpDef
}

// lookup resolves an operation name through the cache, consulting t on
// a miss.
func (c *opCache) lookup(t *ObjectType, name string) *OpDef {
	if c.name0 == name {
		return c.op0
	}
	if c.name1 == name {
		c.name0, c.name1 = c.name1, c.name0
		c.op0, c.op1 = c.op1, c.op0
		return c.op0
	}
	op := t.Op(name)
	c.name1, c.op1 = c.name0, c.op0
	c.name0, c.op0 = name, op
	return op
}

// Sized lets values report their own wire size, avoiding the gob
// estimator on hot paths.
type Sized interface{ WireSize() int }

// SizeOfValue estimates the wire size of v in bytes. Known scalar and
// slice shapes are computed directly; other values fall back to gob
// encoding, which is accurate but slower.
func SizeOfValue(v any) int {
	switch x := v.(type) {
	case nil:
		return 1
	case Sized:
		return x.WireSize()
	case bool:
		return 1
	case int, int64, uint64, float64, sim.Time:
		return 8
	case int32, uint32, float32:
		return 4
	case string:
		return 4 + len(x)
	case []byte:
		return 4 + len(x)
	case []int:
		return 4 + 8*len(x)
	case []int64:
		return 4 + 8*len(x)
	case []bool:
		return 4 + len(x)
	case []any:
		n := 4
		for _, e := range x {
			n += SizeOfValue(e)
		}
		return n
	}
	gobSizings.Add(1)
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(&v); err != nil {
		// Unencodable exotic value: charge a conservative default.
		return 64
	}
	return buf.Len()
}

// gobSizings counts how often SizeOfValue fell back to gob encoding.
// The fallback is accurate but ~100× slower than a direct size, so the
// hot-path types all carry WireSize implementations; the counter lets
// tests prove they never miss.
var gobSizings atomic.Int64

// GobSizings reports how many SizeOfValue calls reached the gob
// fallback since process start.
func GobSizings() int64 { return gobSizings.Load() }

// SizeOfArgs sums the wire sizes of an argument list.
func SizeOfArgs(args []any) int {
	n := 4
	for _, a := range args {
		n += SizeOfValue(a)
	}
	return n
}

// Costs are the runtime-system CPU overheads, separate from kernel
// costs. They represent the object-manager bookkeeping around each
// operation.
type Costs struct {
	// ReadLocal is charged for a local read (lock check, dispatch).
	ReadLocal sim.Time
	// WriteApply is charged at every machine that applies a write.
	WriteApply sim.Time
	// GuardCheck is charged per guard evaluation.
	GuardCheck sim.Time
	// Create is charged when instantiating a replica.
	Create sim.Time
	// DefaultOp is the default operation execution cost when an OpDef
	// does not specify one.
	DefaultOp sim.Time
}

// DefaultCosts returns RTS overheads for the 68030-class testbed.
func DefaultCosts() Costs {
	return Costs{
		ReadLocal:  5 * sim.Microsecond,
		WriteApply: 15 * sim.Microsecond,
		GuardCheck: 3 * sim.Microsecond,
		Create:     40 * sim.Microsecond,
		DefaultOp:  5 * sim.Microsecond,
	}
}

// opCost resolves an operation's execution cost.
func (c Costs) opCost(op *OpDef) sim.Time {
	if op.CPUCost > 0 {
		return op.CPUCost
	}
	return c.DefaultOp
}
