package tsp

import (
	"fmt"
	"testing"

	"repro/internal/orca"
)

// shardedGolden is the pinned outcome fingerprint of the reference
// sharded TSP run below. It locks the sharded runtime's schedule
// bit-for-bit: any change to shard routing, the fork fence, or the
// per-shard sequencing that shifts a single virtual timestamp or
// message shows up here. Update it only for an intentional,
// understood schedule change.
const shardedGolden = "best=2621 elapsed=408437200 msgs=708 frames=708"

// TestShardedGoldenFingerprint: the reference sharded TSP run (11
// cities, P=8, 4 sequencer groups) reproduces its pinned fingerprint,
// and its optimum matches the unsharded broadcast runtime's on the
// same instance — sharding the total order must not change what the
// program computes, only how it is sequenced.
func TestShardedGoldenFingerprint(t *testing.T) {
	inst := Generate(11, 5)
	cfg := orca.Config{Processors: 8, RTS: orca.Broadcast, Shards: 4, Seed: 1}
	r := RunOrca(cfg, inst, Params{})
	if r.Report.TimedOut {
		t.Fatalf("sharded run timed out (blocked: %v)", r.Report.Blocked)
	}
	got := fmt.Sprintf("best=%d elapsed=%d msgs=%d frames=%d",
		r.Best, int64(r.Report.Elapsed), r.Report.Net.Messages, r.Report.Net.Frames)
	if got != shardedGolden {
		t.Fatalf("sharded fingerprint drifted:\n got  %s\n want %s", got, shardedGolden)
	}
	base := RunOrca(orca.Config{Processors: 8, RTS: orca.Broadcast, Seed: 1}, inst, Params{})
	if base.Best != r.Best {
		t.Fatalf("sharded optimum %d != unsharded optimum %d", r.Best, base.Best)
	}
}
