package netsim

import (
	"testing"

	"repro/internal/sim"
)

func TestFaultPlanCrashSchedule(t *testing.T) {
	env, nw := testNet(3, nil)
	var crashed []int
	nw.InstallFaults(&FaultPlan{Crashes: []Crash{
		{Node: 2, At: 10 * sim.Millisecond},
		{Node: 1, At: 20 * sim.Millisecond},
	}}, func(node int) {
		crashed = append(crashed, node)
		nw.SetDown(node, true)
	})
	got := 0
	nw.Handle(1, func(d Delivery) { got++ })
	env.At(15*sim.Millisecond, func() {
		nw.SendFrame(Frame{Src: 0, Dst: 1, Kind: "t", Size: 10})
	})
	env.At(25*sim.Millisecond, func() {
		nw.SendFrame(Frame{Src: 0, Dst: 1, Kind: "t", Size: 10})
	})
	env.Run()
	if len(crashed) != 2 || crashed[0] != 2 || crashed[1] != 1 {
		t.Fatalf("crash order = %v, want [2 1]", crashed)
	}
	if got != 1 {
		t.Fatalf("node 1 received %d frames, want 1 (alive at 15ms, down at 25ms)", got)
	}
}

func TestFaultPlanCrashDefaultsToSetDown(t *testing.T) {
	env, nw := testNet(2, nil)
	nw.InstallFaults(&FaultPlan{Crashes: []Crash{{Node: 1, At: sim.Millisecond}}}, nil)
	env.Run()
	if !nw.Down(1) {
		t.Fatal("node 1 not marked down by the default crash action")
	}
}

func TestPartitionWindowCutsAndHeals(t *testing.T) {
	env, nw := testNet(4, nil)
	recv := make([]int, 4)
	for i := range recv {
		i := i
		nw.Handle(i, func(d Delivery) { recv[i]++ })
	}
	nw.InstallFaults(&FaultPlan{Partitions: []Partition{
		{A: []int{0, 1}, B: []int{2, 3}, From: 10 * sim.Millisecond, Until: 30 * sim.Millisecond},
	}}, nil)
	send := func() {
		nw.SendFrame(Frame{Src: 0, Dst: 2, Kind: "cross", Size: 10}) // crosses the cut
		nw.SendFrame(Frame{Src: 0, Dst: 1, Kind: "within", Size: 10})
		nw.BroadcastFrame(Frame{Src: 3, Kind: "bcast", Size: 10})
	}
	env.At(5*sim.Millisecond, send)  // before the window
	env.At(15*sim.Millisecond, send) // inside it
	env.At(35*sim.Millisecond, send) // healed
	env.Run()
	// Node 2 hears 0's unicast except during the window: 2 of 3. The
	// broadcast from 3 reaches 2 always (same side): 3 more.
	if recv[2] != 2+3 {
		t.Fatalf("node 2 received %d, want 5", recv[2])
	}
	// Node 1 hears 0's unicast always (same side), and 3's broadcast
	// except during the window.
	if recv[1] != 3+2 {
		t.Fatalf("node 1 received %d, want 5", recv[1])
	}
	st := nw.Stats()
	if st.FaultDrops != 3 { // 0->2 unicast, 3->0 and 3->1 broadcast legs
		t.Fatalf("FaultDrops = %d, want 3", st.FaultDrops)
	}
}

func TestLossWindowDropsProbabilistically(t *testing.T) {
	env, nw := testNet(2, nil)
	got := 0
	nw.Handle(1, func(d Delivery) { got++ })
	nw.InstallFaults(&FaultPlan{Losses: []LossWindow{
		{Src: AnyNode, Dst: 1, From: 0, Until: sim.Second, Prob: 0.5},
	}}, nil)
	const sends = 200
	for i := 0; i < sends; i++ {
		at := sim.Time(i) * sim.Millisecond
		env.At(at, func() { nw.SendFrame(Frame{Src: 0, Dst: 1, Kind: "t", Size: 10}) })
	}
	env.Run()
	st := nw.Stats()
	if got+int(st.FaultDrops) != sends {
		t.Fatalf("received %d + dropped %d != %d sent", got, st.FaultDrops, sends)
	}
	if got < sends/4 || got > 3*sends/4 {
		t.Fatalf("received %d of %d at p=0.5; loss window not applying", got, sends)
	}
	// After the window, delivery is certain again.
	got = 0
	env2, nw2 := testNet(2, nil)
	nw2.Handle(1, func(d Delivery) { got++ })
	nw2.InstallFaults(&FaultPlan{Losses: []LossWindow{
		{Src: AnyNode, Dst: 1, From: 0, Until: sim.Millisecond, Prob: 1},
	}}, nil)
	env2.At(5*sim.Millisecond, func() { nw2.SendFrame(Frame{Src: 0, Dst: 1, Kind: "t", Size: 10}) })
	env2.Run()
	if got != 1 {
		t.Fatalf("frame after the loss window dropped (got %d)", got)
	}
}

func TestLossWindowsAreSeedDeterministic(t *testing.T) {
	run := func() (int, int64) {
		env, nw := testNet(2, nil)
		got := 0
		nw.Handle(1, func(d Delivery) { got++ })
		nw.InstallFaults(&FaultPlan{Losses: []LossWindow{
			{Src: 0, Dst: 1, From: 0, Until: sim.Second, Prob: 0.3},
		}}, nil)
		for i := 0; i < 100; i++ {
			at := sim.Time(i) * sim.Millisecond
			env.At(at, func() { nw.SendFrame(Frame{Src: 0, Dst: 1, Kind: "t", Size: 10}) })
		}
		env.Run()
		return got, nw.Stats().FaultDrops
	}
	g1, d1 := run()
	g2, d2 := run()
	if g1 != g2 || d1 != d2 {
		t.Fatalf("same seed, different loss outcomes: (%d,%d) vs (%d,%d)", g1, d1, g2, d2)
	}
}

func TestHealthyRunsIgnoreNilPlan(t *testing.T) {
	env, nw := testNet(2, nil)
	nw.InstallFaults(nil, nil) // no-op
	got := 0
	nw.Handle(1, func(d Delivery) { got++ })
	nw.SendFrame(Frame{Src: 0, Dst: 1, Kind: "t", Size: 10})
	env.Run()
	if got != 1 || nw.Stats().FaultDrops != 0 {
		t.Fatalf("nil plan changed behavior: got=%d drops=%d", got, nw.Stats().FaultDrops)
	}
}
