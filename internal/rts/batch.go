package rts

// Write combining for the broadcast runtime (see
// BroadcastRTS.EnableBatching).
//
// Each worker owns a combining buffer. An unguarded, no-result write
// (the DefUpdate* shapes: queue add, counter assign, flag set) does
// not broadcast individually: it is appended to the buffer and the
// invoker continues immediately. The buffer leaves as ONE group
// frame — a batch the group layer's packers keep together — when it
// reaches Batch.MaxOps/MaxBytes, when its Linger deadline fires, or
// when the pipeline continuation sends it (see below).
//
// Semantics are preserved by flushing at every point where buffering
// could become observable:
//
//   - read-own-write: a local read of an object with a buffered or
//     in-flight write first syncs (flushes and waits until the writes
//     applied locally), so the invoker always sees its own writes;
//   - guards: any guarded operation syncs first — a guard may depend
//     on the invoker's earlier writes, and suspending with unsent
//     writes could deadlock the program;
//   - ordering: any operation that leaves the combining path (a
//     result-bearing write, a create, a forward, a direct write, a
//     fork, an op routed to the point-to-point subsystem) syncs
//     first, so the total order observes program order;
//   - process exit and Sleep flush (exit syncs).
//
// A buffer keeps at most ONE batch in flight (depth-1 pipelining):
// the next batch is not sent until the previous one has been applied
// locally, which — combined with the group layer's per-source
// FIFO — preserves the worker's program order even when a batch frame
// is lost and retransmitted. While a batch is in flight the worker
// keeps filling the buffer; when the flight completes, the manager
// sends the accumulated next batch immediately (the continuation
// flush), so a streaming writer settles into one frame per
// round-trip, MaxOps ops at a time.

import (
	"repro/internal/group"
	"repro/internal/sim"
)

// batchFlight tracks one in-flight batch: how many of its ops have
// not yet been applied on the submitting machine.
type batchFlight struct {
	remaining int
	buf       *writeBuf
	insts     []*bcastInstance // objects with writes in this flight
	cond      sim.Cond
}

// writeBuf is a worker's combining buffer.
type writeBuf struct {
	mgr    *bcastManager
	ops    []group.BatchOp
	insts  []*bcastInstance // objects with buffered writes
	bytes  int
	uids   []int64 // scratch for BroadcastBatch
	flight *batchFlight
	fl0    batchFlight // the pooled flight record (one in flight max)
	timer  *sim.Event

	// spare buffers ping-pong with ops/insts across flushes: a flush
	// detaches the filled buffers before broadcasting (the broadcast
	// blocks on the CPU, and the worker may buffer more ops
	// meanwhile) and returns them cleared afterwards.
	opsSpare   []group.BatchOp
	instsSpare []*bcastInstance
}

// holds reports whether the buffer (or its in-flight batch) carries a
// write to inst — the read-own-write test. Buffers hold at most
// MaxOps ops, so the scan is a handful of pointer compares.
func (b *writeBuf) holds(inst *bcastInstance) bool {
	for _, x := range b.insts {
		if x == inst {
			return true
		}
	}
	if fl := b.flight; fl != nil {
		for _, x := range fl.insts {
			if x == inst {
				return true
			}
		}
	}
	return false
}

// bufferWrite appends one unguarded no-result write to w's combining
// buffer, flushing or arming the linger deadline per the batch
// configuration.
func (mgr *bcastManager) bufferWrite(w *Worker, id ObjID, inst *bcastInstance, opName string, args []any) {
	b := w.batch
	if b == nil {
		b = &writeBuf{mgr: mgr}
		w.batch = b
	}
	r := mgr.rts
	bc := r.batch
	if b.flight != nil && len(b.ops) >= bc.MaxOps {
		// Depth-1 pipeline backpressure: the buffer is full and the
		// previous batch is still in flight — wait for it.
		b.waitFlight(w.P)
	}
	size := SizeOfArgs(args) + len(opName) + 16
	b.ops = append(b.ops, group.BatchOp{Kind: "rts-op", Body: wireOp{Obj: id, Op: opName, Args: args}, Size: size})
	b.bytes += size
	found := false
	for _, x := range b.insts {
		if x == inst {
			found = true
			break
		}
	}
	if !found {
		b.insts = append(b.insts, inst)
	}
	r.batchedOps++
	if len(b.ops) >= bc.MaxOps || (bc.MaxBytes > 0 && b.bytes >= bc.MaxBytes) {
		if b.flight != nil {
			b.waitFlight(w.P)
		}
		b.flush(w.P)
		return
	}
	if b.timer == nil && bc.Linger > 0 {
		b.timer = mgr.m.After(bc.Linger, func(tp *sim.Proc) {
			b.timer = nil
			// A linger flush must not block, so it defers to the
			// continuation flush when a batch is in flight.
			b.flush(tp)
		})
	}
}

// flush sends the buffered ops as one batch, if none is in flight.
//
// The broadcast below blocks on the machine's CPU, and arbitrary
// simulation activity runs meanwhile: the worker may buffer more ops
// (when the flush runs in manager or timer context), another flush
// attempt may fire, and the local manager may already apply some of
// the batch. So the flight is installed FIRST (making any concurrent
// flush a no-op and keeping read-own-write checks truthful), the op
// buffer is detached before broadcasting, and completions that beat
// the uid registration are reconciled from the early-completion
// buffer afterwards.
func (b *writeBuf) flush(p *sim.Proc) {
	if len(b.ops) == 0 || b.flight != nil {
		return
	}
	mgr := b.mgr
	if b.timer != nil {
		b.timer.Cancel()
		b.timer = nil
	}
	fl := &b.fl0 // at most one flight exists; the record is pooled
	fl.buf = b
	fl.remaining = len(b.ops) // provisional until the uids register
	fl.insts = append(fl.insts[:0], b.insts...)
	b.flight = fl
	ops := b.ops
	insts := b.insts
	b.ops = b.opsSpare[:0]
	b.insts = b.instsSpare[:0]
	b.bytes = 0
	mgr.rts.batchFrames++
	b.uids = mgr.g.BroadcastBatch(p, ops, b.uids[:0])
	for _, uid := range b.uids {
		if _, done := mgr.early[uid]; done {
			delete(mgr.early, uid)
			fl.remaining--
			continue
		}
		mgr.flights[uid] = fl
	}
	clear(ops)
	b.opsSpare = ops[:0]
	clear(insts)
	b.instsSpare = insts[:0]
	if fl.remaining == 0 {
		b.flight = nil
		fl.cond.Broadcast()
		if len(b.ops) > 0 {
			b.flush(p) // ops buffered during the broadcast
		}
	}
}

// waitFlight blocks until the current in-flight batch (if any) has
// been applied locally.
func (b *writeBuf) waitFlight(p *sim.Proc) {
	for b.flight != nil && b.flight.remaining > 0 {
		b.flight.cond.Wait(p)
	}
}

// sync flushes everything and waits until every buffered op has been
// applied on this machine: afterwards the worker's reads observe all
// its writes and the total order contains them before anything the
// worker does next.
func (b *writeBuf) sync(w *Worker) {
	for {
		if b.flight != nil {
			b.waitFlight(w.P)
			continue
		}
		if len(b.ops) > 0 {
			b.flush(w.P)
			continue
		}
		return
	}
}

// syncBuf is the manager-side hook: flush-and-wait the worker's
// buffer before an operation that must observe program order.
func (mgr *bcastManager) syncBuf(w *Worker) {
	if w.batch != nil {
		w.batch.sync(w)
	}
}

// completeFlight finishes one async op. It reports whether uid
// belonged to a flight (otherwise the caller falls through to the
// synchronous waiter path).
func (mgr *bcastManager) completeFlight(p *sim.Proc, uid int64) bool {
	fl, ok := mgr.flights[uid]
	if !ok {
		return false
	}
	delete(mgr.flights, uid)
	fl.remaining--
	if fl.remaining == 0 {
		b := fl.buf
		if b.flight == fl {
			b.flight = nil
		}
		fl.cond.Broadcast()
		if len(b.ops) > 0 {
			// Continuation flush: ops accumulated while the batch was
			// in flight leave immediately — the pipeline's steady
			// state.
			b.flush(p)
		}
	}
	return true
}
