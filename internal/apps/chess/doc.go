// Package chess implements Oracol, the paper's chess problem solver
// (§4.3): alpha-beta search with iterative deepening and quiescence,
// a killer table, and a transposition table, parallelized by
// partitioning the search tree among processors. It solves
// "mate-in-N-moves" and tactical problems; positional play is out of
// scope, as in the paper.
//
// The shared objects are the transposition table and the killer table
// (std.Table, std.Killer); the paper reports shared tables — the
// killer table especially — as the most efficient configuration, which
// the harness experiment reproduces.
//
// Downward: built on package orca and the std object types. Upward:
// internal/harness reproduces the §4.3 speedup comparison from this
// package.
package chess
