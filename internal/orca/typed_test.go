package orca

// Tests of the typed API v2 layer itself: the TypeBuilder, the op
// descriptors, guard attachment, and the interop guarantee that typed
// descriptors and the untyped Invoke dispatch to the same registered
// definitions. (The std wrappers get their own tests in orca/std;
// this file uses a purpose-built type so package orca's internal test
// needs no imports back into std.)

import (
	"testing"

	"repro/internal/rts"
	"repro/internal/sim"
)

// cellsState is a tiny array-of-ints object used only by these tests.
type cellsState struct{ vals []int }

var (
	cellsB = NewType("test.cells", func(args []any) *cellsState {
		return &cellsState{vals: make([]int, args[0].(int))}
	}).
		CloneWith(func(s *cellsState) *cellsState {
			return &cellsState{vals: append([]int(nil), s.vals...)}
		}).
		SizedBy(func(s *cellsState) int { return 8 + 8*len(s.vals) })

	cellsSet = DefUpdate2(cellsB, "set", func(s *cellsState, i, v int) { s.vals[i] = v })
	cellsGet = DefRead(cellsB, "get", func(s *cellsState, i int) int { return s.vals[i] })
	cellsSum = DefRead0(cellsB, "sum", func(s *cellsState) int {
		n := 0
		for _, v := range s.vals {
			n += v
		}
		return n
	}).Cost(20 * sim.Microsecond)
	// awaitSum blocks until the sum reaches the argument.
	cellsAwaitSum = DefRead(cellsB, "awaitSum", func(s *cellsState, _ int) int {
		n := 0
		for _, v := range s.vals {
			n += v
		}
		return n
	}).Guard(func(s *cellsState, want int) bool {
		n := 0
		for _, v := range s.vals {
			n += v
		}
		return n >= want
	})
	// popMax removes and returns the largest value (guarded on any
	// value being present), exercising the two-result write shape.
	cellsPopMax = DefWrite0x2(cellsB, "popMax", func(s *cellsState) (int, bool) {
		best, at := 0, -1
		for i, v := range s.vals {
			if v > best {
				best, at = v, i
			}
		}
		if at < 0 {
			return 0, false
		}
		s.vals[at] = 0
		return best, true
	}).Guard(func(s *cellsState) bool {
		for _, v := range s.vals {
			if v > 0 {
				return true
			}
		}
		return false
	})
)

func cellsSetup(reg *rts.Registry) { cellsB.Register(reg) }

func TestTypedOpsRoundTrip(t *testing.T) {
	rt := New(Config{Processors: 2, RTS: Broadcast, Seed: 31}, cellsSetup)
	rt.Run(func(p *Proc) {
		h := cellsB.New(p, 4)
		cellsSet.Call(p, h, 0, 7)
		cellsSet.Call(p, h, 3, 5)
		if got := cellsGet.Call(p, h, 3); got != 5 {
			t.Errorf("get(3) = %d, want 5", got)
		}
		if got := cellsSum.Call(p, h); got != 12 {
			t.Errorf("sum = %d, want 12", got)
		}
		v, ok := cellsPopMax.Call(p, h)
		if !ok || v != 7 {
			t.Errorf("popMax = (%d, %v), want (7, true)", v, ok)
		}
		if got := cellsSum.Call(p, h); got != 5 {
			t.Errorf("sum after pop = %d, want 5", got)
		}
	})
}

// TestTypedUntypedInterop checks the facade property: a typed
// descriptor and an untyped Invoke under the registered name hit the
// same operation on the same object.
func TestTypedUntypedInterop(t *testing.T) {
	rt := New(Config{Processors: 2, RTS: Broadcast, Seed: 32}, cellsSetup)
	rt.Run(func(p *Proc) {
		h := cellsB.New(p, 2)
		p.Invoke(h.Untyped(), "set", 1, 9) // untyped write...
		if got := cellsGet.Call(p, h, 1); got != 9 {
			t.Errorf("typed read after untyped write = %d, want 9", got)
		}
		cellsSet.Call(p, h, 0, 4) // ...and typed write, untyped read
		if got := p.InvokeI(h.Untyped(), "sum"); got != 13 {
			t.Errorf("untyped sum = %d, want 13", got)
		}
		if h.ID() != h.Untyped().ID() {
			t.Error("handle ids disagree")
		}
	})
}

// TestArgDecodingStrict checks the argument decoder keeps the
// untyped layer's checking: wrong types and illegal nils panic (as
// the hand-written []any assertions of the v1 types did), while nil
// stays legal for interface-typed parameters and results map nil to
// zero values.
func TestArgDecodingStrict(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	if got := argAs[int](7); got != 7 {
		t.Errorf("argAs[int](7) = %d", got)
	}
	if got := argAs[any](nil); got != nil {
		t.Errorf("argAs[any](nil) = %v, want nil", got)
	}
	mustPanic("argAs[int] of string", func() { argAs[int]("zero") })
	mustPanic("argAs[int] of nil", func() { argAs[int](nil) })
	mustPanic("argAs[[]int] of nil", func() { argAs[[]int](nil) })
	// Results, by contrast, map nil to the zero value (absent slots).
	if got := as[int](nil); got != 0 {
		t.Errorf("as[int](nil) = %d, want 0", got)
	}
}

// TestTypedGuardBlocksUntilWrite checks that a guarded typed read
// suspends and wakes only after the enabling write, on a remote
// processor (i.e. through the real runtime, not a local shortcut).
func TestTypedGuardBlocksUntilWrite(t *testing.T) {
	rt := New(Config{Processors: 2, RTS: Broadcast, Seed: 33}, cellsSetup)
	var woke, wrote sim.Time
	var got int
	rt.Run(func(p *Proc) {
		h := cellsB.New(p, 3)
		p.Fork(1, "waiter", func(wp *Proc) {
			got = cellsAwaitSum.Call(wp, h, 10)
			woke = wp.Now()
		})
		p.Sleep(200 * sim.Millisecond)
		cellsSet.Call(p, h, 0, 6)
		p.Sleep(100 * sim.Millisecond)
		wrote = p.Now()
		cellsSet.Call(p, h, 1, 6)
	})
	if got < 10 {
		t.Errorf("awaitSum returned %d, want >= 10", got)
	}
	if woke < wrote {
		t.Errorf("guard woke at %v, before the enabling write at %v", woke, wrote)
	}
}

// TestGuardedWriteAcrossKinds runs the guarded two-result write on
// every runtime kind, checking identical results.
func TestGuardedWriteAcrossKinds(t *testing.T) {
	for _, kind := range []RTSKind{Broadcast, P2PUpdate, P2PInvalidate} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rt := New(Config{Processors: 2, RTS: kind, Seed: 34}, cellsSetup)
			var sum int
			rt.Run(func(p *Proc) {
				h := cellsB.New(p, 4)
				p.Fork(1, "popper", func(wp *Proc) {
					for i := 0; i < 3; i++ {
						v, ok := cellsPopMax.Call(wp, h)
						if !ok {
							t.Errorf("popMax reported empty")
							return
						}
						sum += v
					}
				})
				p.Sleep(50 * sim.Millisecond)
				cellsSet.Call(p, h, 0, 1)
				p.Sleep(50 * sim.Millisecond)
				cellsSet.Call(p, h, 1, 2)
				p.Sleep(50 * sim.Millisecond)
				cellsSet.Call(p, h, 2, 3)
			})
			if sum != 6 {
				t.Errorf("popped sum = %d, want 6", sum)
			}
		})
	}
}

// TestDuplicateOpPanics checks the builder refuses two operations
// with one name, as the registry would be silently ambiguous.
func TestDuplicateOpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate op name")
		}
	}()
	b := NewType("test.dup", func([]any) *cellsState { return &cellsState{} })
	DefRead0(b, "x", func(*cellsState) int { return 0 })
	DefRead0(b, "x", func(*cellsState) int { return 1 })
}

// TestCostPropagates checks the fluent Cost setter lands in the
// underlying OpDef (the simulator charges it per execution).
func TestCostPropagates(t *testing.T) {
	if got := cellsB.Type().Op("sum").CPUCost; got != 20*sim.Microsecond {
		t.Fatalf("sum CPUCost = %v, want 20µs", got)
	}
	if cellsB.Type().Op("awaitSum").Guard == nil {
		t.Fatal("awaitSum lost its guard")
	}
	if cellsB.Type().Op("set").Kind != rts.Write || cellsB.Type().Op("get").Kind != rts.Read {
		t.Fatal("op kinds misclassified")
	}
}
