package harness

import (
	"fmt"
	"io"

	"repro/internal/apps/acp"
	"repro/internal/apps/atpg"
	"repro/internal/apps/chess"
	"repro/internal/apps/tsp"
	"repro/internal/orca"
)

// Scale trims the processor sweeps (for quick runs and benchmarks).
type Scale int

// Scales.
const (
	Full  Scale = iota // the paper's full sweeps
	Quick              // a few points, small inputs
)

func sweep(scale Scale, max int) []int {
	if scale == Quick {
		return []int{1, 2, 4}
	}
	var ps []int
	for p := 1; p <= max; p++ {
		ps = append(ps, p)
	}
	return ps
}

// Fig2TSP reproduces Figure 2: TSP speedup on a 14-city problem,
// 1..16 processors, broadcast runtime.
func Fig2TSP(w io.Writer, scale Scale) Series {
	cities, seed := 14, int64(5)
	if scale == Quick {
		cities = 11
	}
	inst := tsp.Generate(cities, seed)
	s := Series{Name: fmt.Sprintf("TSP %d cities", cities)}
	var base orca.Report
	var rows [][]string
	for _, p := range sweep(scale, 16) {
		r := tsp.RunOrca(orca.Config{Processors: p, RTS: orca.Broadcast, Seed: 1}, inst, tsp.Params{})
		if p == 1 {
			base = r.Report
		}
		pt := SpeedupPoint{
			Procs: p, Elapsed: r.Report.Elapsed,
			Speedup:  float64(base.Elapsed) / float64(r.Report.Elapsed),
			Messages: r.Report.Net.Messages,
		}
		s.Points = append(s.Points, pt)
		rows = append(rows, []string{
			fmt.Sprint(p), fmtTime(r.Report.Elapsed), fmt.Sprintf("%.2f", pt.Speedup),
			fmt.Sprint(r.Nodes), fmt.Sprint(r.Best), fmt.Sprint(pt.Messages),
		})
	}
	fmt.Fprintf(w, "== FIG2: Traveling Salesman Problem (%d cities, branch and bound, broadcast RTS) ==\n", cities)
	Table(w, []string{"procs", "time", "speedup", "nodes", "best", "messages"}, rows)
	fmt.Fprintln(w)
	RenderCurve(w, "Fig. 2 — Speedup for the Traveling Salesman Problem", []Series{s}, 16)
	return s
}

// Fig3ACP reproduces Figure 3: Arc Consistency speedup with 64
// variables, workers on processors 2..16 (the master has its own).
func Fig3ACP(w io.Writer, scale Scale) Series {
	nVars, dom, extra, seed := 64, 64, 40, int64(2)
	if scale == Quick {
		nVars, dom, extra = 24, 24, 16
	}
	inst := acp.GeneratePropagation(nVars, dom, extra, seed)
	s := Series{Name: fmt.Sprintf("ACP %d variables", nVars)}
	var base orca.Report
	var rows [][]string
	for _, p := range sweep(scale, 16) {
		r := acp.RunOrca(orca.Config{Processors: p, RTS: orca.Broadcast, Seed: 1}, inst, acp.Params{})
		if p == 1 {
			base = r.Report
		}
		pt := SpeedupPoint{
			Procs: p, Elapsed: r.Report.Elapsed,
			Speedup:  float64(base.Elapsed) / float64(r.Report.Elapsed),
			Messages: r.Report.Net.Messages,
		}
		s.Points = append(s.Points, pt)
		rows = append(rows, []string{
			fmt.Sprint(p), fmtTime(r.Report.Elapsed), fmt.Sprintf("%.2f", pt.Speedup),
			fmt.Sprint(r.Revisions), fmt.Sprint(pt.Messages),
		})
	}
	fmt.Fprintf(w, "== FIG3: Arc Consistency Problem (%d variables, static partition, broadcast RTS) ==\n", nVars)
	Table(w, []string{"procs", "time", "speedup", "revisions", "messages"}, rows)
	fmt.Fprintln(w)
	RenderCurve(w, "Fig. 3 — Speedup for the Arc Consistency Problem", []Series{s}, 16)
	return s
}

// ChessExperiment reproduces §4.3: Oracol speedups (the paper reports
// 4.5-5.5 on 10 CPUs) and the shared-vs-local table comparison.
func ChessExperiment(w io.Writer, scale Scale) []Series {
	fen := "r1bq1rk1/pp1n1ppp/2pbpn2/3p4/2PP4/2NBPN2/PP3PPP/R1BQ1RK1 w - - 0 1"
	depth := 6
	procs := []int{1, 2, 4, 6, 8, 10}
	if scale == Quick {
		depth = 4
		procs = []int{1, 2, 4}
	}
	b, err := chess.FromFEN(fen)
	if err != nil {
		panic(err)
	}
	var out []Series
	var rows [][]string
	for _, shared := range []bool{true, false} {
		name := "local tables"
		if shared {
			name = "shared tables"
		}
		s := Series{Name: name}
		var base orca.Report
		for _, p := range procs {
			r := chess.RunOrca(orca.Config{Processors: p, RTS: orca.Broadcast, Seed: 1}, b,
				chess.Params{MaxDepth: depth, SharedTT: shared, SharedKiller: shared, SplitMinDepth: 1})
			if p == procs[0] {
				base = r.Report
			}
			pt := SpeedupPoint{
				Procs: p, Elapsed: r.Report.Elapsed,
				Speedup:  float64(base.Elapsed) / float64(r.Report.Elapsed),
				Messages: r.Report.Net.Messages,
			}
			s.Points = append(s.Points, pt)
			rows = append(rows, []string{
				name, fmt.Sprint(p), fmtTime(r.Report.Elapsed),
				fmt.Sprintf("%.2f", pt.Speedup), fmt.Sprint(r.Nodes), fmt.Sprint(pt.Messages),
			})
		}
		out = append(out, s)
	}
	fmt.Fprintf(w, "== CHESS: Oracol parallel alpha-beta (depth %d, PV-splitting) ==\n", depth)
	Table(w, []string{"tables", "procs", "time", "speedup", "nodes", "messages"}, rows)
	fmt.Fprintln(w)
	RenderCurve(w, "§4.3 — Oracol speedup, shared vs local tables", out, 10)
	fmt.Fprintln(w, "Paper: speedups between 4.5 and 5.5 on 10 CPUs; almost all overhead")
	fmt.Fprintln(w, "is search overhead. Shared tables are most efficient, especially the")
	fmt.Fprintln(w, "killer table.")
	return out
}

// ATPGExperiment reproduces §4.4: near-linear speedup without fault
// simulation; with fault simulation about 3x faster in absolute terms
// but inferior speedup. The dynamic work distribution the paper lists
// as future work is included.
func ATPGExperiment(w io.Writer, scale Scale) []Series {
	inputs, layers, width, seed := 24, 10, 60, int64(42)
	if scale == Quick {
		inputs, layers, width = 12, 5, 20
	}
	c := atpg.Generate(inputs, layers, width, seed)
	faults := atpg.AllFaults(c)
	procs := []int{1, 2, 4, 8, 12, 16}
	if scale == Quick {
		procs = []int{1, 2, 4}
	}
	fmt.Fprintf(w, "== ATPG: PODEM on a generated circuit (%d lines, %d faults) ==\n", c.Lines(), len(faults))
	var out []Series
	var rows [][]string
	for _, mode := range []atpg.Mode{atpg.Static, atpg.StaticFaultSim, atpg.DynamicFaultSim} {
		s := Series{Name: mode.String()}
		var base orca.Report
		for _, p := range procs {
			r := atpg.RunOrca(orca.Config{Processors: p, RTS: orca.Broadcast, Seed: 1}, c, faults,
				atpg.Params{Mode: mode})
			if p == procs[0] {
				base = r.Report
			}
			pt := SpeedupPoint{
				Procs: p, Elapsed: r.Report.Elapsed,
				Speedup:  float64(base.Elapsed) / float64(r.Report.Elapsed),
				Messages: r.Report.Net.Messages,
			}
			s.Points = append(s.Points, pt)
			rows = append(rows, []string{
				mode.String(), fmt.Sprint(p), fmtTime(r.Report.Elapsed),
				fmt.Sprintf("%.2f", pt.Speedup), fmt.Sprint(r.Detected),
				fmt.Sprint(r.Patterns), fmt.Sprint(pt.Messages),
			})
		}
		out = append(out, s)
	}
	Table(w, []string{"mode", "procs", "time", "speedup", "detected", "patterns", "messages"}, rows)
	fmt.Fprintln(w)
	RenderCurve(w, "§4.4 — ATPG speedup by mode", out, 16)
	fmt.Fprintln(w, "Paper: the basic program achieves speedups close to linear; the")
	fmt.Fprintln(w, "fault-simulation version is about 3x faster in absolute speed but")
	fmt.Fprintln(w, "obtains inferior speedups (communication overhead, load imbalance).")
	return out
}
