package group

import (
	"repro/internal/amoeba"
	"repro/internal/sim"
)

// handle is the kernel port handler: it demultiplexes every group
// protocol packet. It runs on the machine's interrupt thread, after
// interrupt/protocol CPU costs have been charged.
func (g *Member) handle(p *sim.Proc, from int, pkt amoeba.Packet) {
	switch b := pkt.Body.(type) {
	case reqMsg:
		g.onRequest(p, b)
	case *reqBatchMsg:
		g.onReqBatch(p, b)
	case *dataMsg:
		// Sequenced data travels by pointer: every receiver (and the
		// sequencer's own history) shares one record, which is never
		// mutated after sequencing.
		g.processData(p, b)
	case dataMsg:
		// Retransmissions are restamped copies and travel by value.
		g.processData(p, &b)
	case *dataBatchMsg:
		g.onDataBatch(p, b)
	case *bbDataMsg:
		g.onBBData(p, b)
	case *bbBatchMsg:
		g.onBBBatch(p, b)
	case acceptMsg:
		g.onAccept(p, b)
	case *acceptBatchMsg:
		g.onAcceptBatch(p, b)
	case retxReq:
		g.onRetxReq(p, b)
	case statusMsg:
		g.onStatus(b)
	case electMsg:
		g.onElect(p, b)
	case coordMsg:
		g.onCoord(p, b)
	case coordAck:
		g.onCoordAck(p, b)
	case coordNack:
		g.onCoordNack(p, b)
	case hbMsg:
		g.onHeartbeat(b)
	case *propMsg:
		g.onPropose(p, from, b)
	case paccMsg:
		g.onPAcc(p, b)
	case pcmtMsg:
		g.onPcmt(p, from, b)
	case pnackMsg:
		g.onPNack(p, b)
	case prepMsg:
		g.onPrep(p, from, b)
	case *promMsg:
		g.onProm(p, b)
	case joinReadMsg:
		g.onJoinRead(p, from, b)
	case joinInfoMsg:
		g.onJoinInfo(b)
	}
}

// onHeartbeat learns the sequencer's progress; if this member is
// behind, gap recovery kicks in.
func (g *Member) onHeartbeat(h hbMsg) {
	if h.Epoch < g.epoch || g.electing {
		return
	}
	g.seqNode = h.Node
	if h.HighSeq > g.maxSeen {
		g.maxSeen = h.HighSeq
	}
	if g.cfg.Protocol == Consensus {
		g.leaderSeen = g.m.Env().Now()
		if h.HighSeq > g.committed {
			// The heartbeat announces the leader's commit watermark:
			// everything up to it is chosen and safe to fetch.
			g.committed = h.HighSeq
		}
	}
	if g.nextSeq <= g.maxSeen {
		g.armGapTimer()
	}
}

// onRequest handles PB's RequestForBroadcast at the sequencer.
func (g *Member) onRequest(p *sim.Proc, r reqMsg) {
	if !g.isSeq || !g.installed {
		return // stale or uninstalled view; the sender will retry
	}
	if seq, dup := g.seenSeq(r.Src, r.SrcSeq); dup {
		// Retransmitted request: rebroadcast the sequenced message so
		// the sender (and anyone else who missed it) sees it. Under
		// consensus only chosen slots may travel as direct data — an
		// uncommitted slot is covered by the re-propose timer.
		if d := g.history.get(seq); d != nil && (g.cfg.Protocol != Consensus || seq <= g.committed) {
			g.cast(p, amoeba.Packet{Port: g.port, Kind: "grp-data", Body: d, Size: d.Size + hdrData})
		}
		return
	}
	if g.cfg.Batch.Enabled() {
		g.enqueuePack(p, batchItem{UID: r.UID, Src: r.Src, SrcSeq: r.SrcSeq, Kind: r.Kind, Body: r.Body, Size: r.Size})
		return
	}
	d := &dataMsg{Seq: g.nextSeqNum(), UID: r.UID, Src: r.Src, SrcSeq: r.SrcSeq, Kind: r.Kind, Body: r.Body, Size: r.Size, Epoch: g.epoch}
	g.recordHistory(d)
	if g.cfg.Protocol == Consensus {
		g.propose(p, []*dataMsg{d})
		return
	}
	g.cast(p, amoeba.Packet{Port: g.port, Kind: "grp-data", Body: d, Size: d.Size + hdrData})
	g.processData(p, d)
}

// onBBData handles BB's data broadcast at every member.
func (g *Member) onBBData(p *sim.Proc, b *bbDataMsg) {
	if g.isSeq && g.installed {
		if seq, dup := g.seenSeq(b.Src, b.SrcSeq); dup {
			// Retransmission: the accept may have been lost. Recover
			// the frame-boundary flag from the sequenced record so the
			// receiver reconstructs the boundary every replica saw.
			more := false
			if d := g.history.get(seq); d != nil {
				more = d.More
			}
			g.cast(p, amoeba.Packet{Port: g.port, Kind: "grp-accept",
				Body: acceptMsg{Seq: seq, UID: b.UID, Epoch: g.epoch, More: more}, Size: hdrAccept})
			return
		}
		if g.cfg.Batch.Enabled() {
			g.enqueueAccept(p, batchItem{UID: b.UID, Src: b.Src, SrcSeq: b.SrcSeq, Kind: b.Kind, Body: b.Body, Size: b.Size})
			return
		}
		d := &dataMsg{Seq: g.nextSeqNum(), UID: b.UID, Src: b.Src, SrcSeq: b.SrcSeq, Kind: b.Kind, Body: b.Body, Size: b.Size, Epoch: g.epoch}
		g.recordHistory(d)
		g.cast(p, amoeba.Packet{Port: g.port, Kind: "grp-accept",
			Body: acceptMsg{Seq: d.Seq, UID: b.UID, Epoch: g.epoch}, Size: hdrAccept})
		g.processData(p, d)
		return
	}
	if g.isSeq {
		// Not installed yet: stash the data; the sender will retry.
		g.pendingBB[b.UID] = b
		return
	}
	if acc, accepted := g.acceptedUID(b.UID); accepted {
		// Accept arrived before the data: complete it now.
		g.processData(p, &dataMsg{Seq: acc.seq, UID: b.UID, Src: b.Src, SrcSeq: b.SrcSeq, Kind: b.Kind, Body: b.Body, Size: b.Size, Epoch: g.epoch, More: acc.more})
		return
	}
	g.pendingBB[b.UID] = b
}

// acceptedRec is an accept matched back to its data by uid.
type acceptedRec struct {
	seq  int64
	more bool
}

// acceptedUID reports whether an accept for uid is waiting for data.
func (g *Member) acceptedUID(uid int64) (acceptedRec, bool) {
	for seq, a := range g.acceptedBB {
		if a.uid == uid {
			delete(g.acceptedBB, seq)
			return acceptedRec{seq: seq, more: a.more}, true
		}
	}
	return acceptedRec{}, false
}

// onAccept handles BB's Accept at a non-sequencer member.
func (g *Member) onAccept(p *sim.Proc, a acceptMsg) {
	if a.Epoch < g.epoch {
		return // stale sequencer's stream
	}
	if a.Epoch > g.epoch {
		g.epoch = a.Epoch // adopt the newer view's stream
		g.electing = false
	}
	if a.Seq < g.nextSeq {
		delete(g.pendingBB, a.UID) // late duplicate; GC the stashed data
		return
	}
	if bb, ok := g.pendingBB[a.UID]; ok {
		delete(g.pendingBB, a.UID)
		g.processData(p, &dataMsg{Seq: a.Seq, UID: a.UID, Src: bb.Src, SrcSeq: bb.SrcSeq, Kind: bb.Kind, Body: bb.Body, Size: bb.Size, Epoch: g.epoch, More: a.More})
		return
	}
	// Data frame lost: remember the accept and fetch the payload from
	// the sequencer's history via the gap machinery.
	g.acceptedBB[a.Seq] = bbAccept{uid: a.UID, more: a.More}
	if a.Seq > g.maxSeen {
		g.maxSeen = a.Seq
	}
	g.armGapTimer()
}

// onRetxReq serves retransmissions out of the sequencer history.
func (g *Member) onRetxReq(p *sim.Proc, r retxReq) {
	g.noteStatus(r.Node, r.Delivered)
	if !g.isSeq {
		if g.cfg.Protocol == Consensus {
			// Chosen slots are quorum-backed and immutable, so any
			// member that delivered them can serve them from its cache:
			// after a leader death the committed log must not depend on
			// one machine being up and installed.
			to := r.To
			if to > g.committed {
				to = g.committed
			}
			if len(g.cache) == 0 {
				return
			}
			for s := r.From; s <= to; s++ {
				if c := g.cache[int(s)%len(g.cache)]; c != nil && c.Seq == s {
					rd := *c
					rd.Epoch = g.epoch
					g.m.Send(p, r.Node, amoeba.Packet{Port: g.port, Kind: "grp-retx", Body: rd, Size: rd.Size + hdrData})
				}
			}
		}
		return
	}
	to := r.To
	if to > g.maxSeen {
		to = g.maxSeen
	}
	if g.cfg.Protocol == Consensus && to > g.committed {
		// Unchosen slots must never travel as direct data: a member
		// would deliver them without quorum backing.
		to = g.committed
	}
	for s := r.From; s <= to; s++ {
		if d := g.history.get(s); d != nil {
			// Restamp with the current epoch: history may hold
			// messages sequenced under a previous view that are still
			// part of the (unchanged) prefix this view vouches for.
			rd := *d
			rd.Epoch = g.epoch
			g.m.Send(p, r.Node, amoeba.Packet{Port: g.port, Kind: "grp-retx", Body: rd, Size: d.Size + hdrData})
		}
	}
}

// onStatus records a member's delivery progress.
func (g *Member) onStatus(s statusMsg) {
	g.noteStatus(s.Node, s.Delivered)
}

// processData runs the ordered-delivery core: acknowledge own sends,
// buffer out-of-order messages, deliver in strict sequence order, and
// arm gap recovery when holes remain.
func (g *Member) processData(p *sim.Proc, d *dataMsg) {
	if d.Epoch < g.epoch {
		return // stale sequencer's stream
	}
	if d.Epoch > g.epoch {
		g.epoch = d.Epoch // adopt the newer view's stream
		g.electing = false
	}
	if st, mine := g.outstanding[d.UID]; mine {
		delete(g.outstanding, d.UID)
		delete(g.pendingBB, d.UID)
		if st.timer != nil && !st.live(g) {
			st.timer.Cancel()
		}
	}
	if d.Seq > g.maxSeen {
		g.maxSeen = d.Seq
	}
	if d.Seq < g.nextSeq {
		return // duplicate
	}
	g.buffered.set(d.Seq, d)
	for {
		nd := g.buffered.get(g.nextSeq)
		if nd == nil {
			break
		}
		g.buffered.del(g.nextSeq)
		g.deliver(p, nd)
		g.nextSeq++
		g.buffered.advanceTo(g.nextSeq)
	}
	if g.nextSeq <= g.maxSeen {
		g.armGapTimer()
	} else if g.gapTimer != nil {
		g.gapTimer.Cancel()
		g.gapTimer = nil
	}
}

// deliver hands one sequenced message to the application stream and
// maintains the delivered cache, per-source dedup windows, and status
// reporting. Everything here is O(1) per delivery.
func (g *Member) deliver(p *sim.Proc, d *dataMsg) {
	g.seqAlive = p.Now()
	delete(g.acceptedBB, d.Seq)
	delete(g.pendingBB, d.UID)
	if len(g.cache) > 0 {
		g.cache[int(d.Seq)%len(g.cache)] = d
	}
	if g.recoveryStart != 0 {
		g.stats.RecoveryTime += p.Now() - g.recoveryStart
		g.recoveryStart = 0
	}
	if d.Src < 0 {
		// Consensus noop filler: it occupies its slot so the log stays
		// dense, but carries nothing for the application.
		return
	}
	if g.dupDelivery(d.Src, d.SrcSeq) {
		// Re-sequenced duplicate after an election. Under batching the
		// consumer still needs the frame boundary this sequence slot
		// occupies (a frame whose tail is a suppressed duplicate would
		// otherwise never close its per-frame sweep), so a Dup-marked
		// record travels in its place; the payload is never re-applied.
		if g.cfg.Batch.Enabled() {
			g.outQ.Put(Delivery{Seq: d.Seq, UID: d.UID, Src: d.Src, Kind: d.Kind, Size: d.Size, More: d.More, Dup: true})
		}
		return
	}
	g.noteDelivered(d.Src, d.SrcSeq, d.Seq)
	g.stats.Delivered++
	g.outQ.Put(Delivery{Seq: d.Seq, UID: d.UID, Src: d.Src, Kind: d.Kind, Body: d.Body, Size: d.Size, More: d.More})
	if !g.isSeq && g.cfg.StatusEvery > 0 && g.stats.Delivered%int64(g.cfg.StatusEvery) == 0 {
		g.m.Send(p, g.seqNode, amoeba.Packet{Port: g.port, Kind: "grp-status",
			Body: statusMsg{Node: g.m.ID(), Delivered: g.nextSeq}, Size: hdrSmall})
	}
}

// armGapTimer starts periodic retransmission requests while sequence
// holes exist. Repeated stalls without progress make the member
// suspect the sequencer and call an election.
func (g *Member) armGapTimer() {
	if g.gapTimer != nil {
		return
	}
	if g.cfg.Protocol == Consensus && g.isSeq {
		// The leader's assigned-but-unchosen slots are not gaps: they
		// deliver when a quorum accepts them (see armPropTimer).
		return
	}
	lastNext := g.nextSeq
	lastEpoch := g.epoch
	stalls := 0
	var arm func()
	arm = func() {
		g.gapTimer = g.m.After(g.cfg.GapTimeout, func(p *sim.Proc) {
			g.gapTimer = nil
			if g.nextSeq > g.maxSeen {
				return // caught up
			}
			if g.epoch != lastEpoch {
				// A new view installed since the last round: give its
				// sequencer a full suspicion window to start serving.
				// Stalls carried across the view change count the
				// election itself against the new sequencer and tear it
				// down before its first retransmission arrives.
				lastEpoch, stalls = g.epoch, 0
			}
			if g.nextSeq == lastNext {
				stalls++
			} else {
				lastNext, stalls = g.nextSeq, 0
			}
			if stalls > g.cfg.SenderRetries {
				g.suspectSequencer(p)
				stalls = 0
			}
			g.stats.GapRequests++
			to := g.nextSeq + 31
			if to > g.maxSeen {
				to = g.maxSeen
			}
			g.m.Send(p, g.seqNode, amoeba.Packet{Port: g.port, Kind: "grp-retx-req",
				Body: retxReq{From: g.nextSeq, To: to, Node: g.m.ID(), Delivered: g.nextSeq - 1},
				Size: hdrSmall})
			arm()
		})
	}
	arm()
}
