// Package kv is the serving-shaped application: a sharded KV/session
// store built on the typed shared-object API, driven by open-loop or
// closed-loop traffic from internal/workload.
//
// Unlike the paper's batch-parallel solvers (tsp, acp, chess, atpg),
// nothing here "runs to completion" by solving a problem: clients
// serve a trace of get/put/update requests against many small shard
// objects and the interesting outputs are throughput and the
// p50/p95/p99 virtual-latency percentiles (Report.Latency). Each
// shard is one shared object whose placement policy is chosen per
// shard — fully Replicated (local reads everywhere, writes through
// the total order), PrimaryCopy (single copy on its home machine,
// reads RPC to the primary), or Mixed (alternating) — so the same
// trace compares the paper's §3.2.1 and §3.2.2 strategies under
// skewed, read-heavy load. The paper's object-distribution argument
// (replicate what you read, keep a single copy of what you write) is
// exactly the knob the Policy field turns.
//
// The store runs under Config.Faults crash schedules: clients on a
// crashed machine die mid-request, the survivors keep serving, and
// the post-run audit proves no acknowledged write was lost (every put
// a client saw complete is still visible at its recorded version).
//
// Stack: internal/workload generates the traces; internal/harness
// renders the sweeps (-exp kv); internal/orca/std supplies the
// barrier and liveness objects.
package kv
