// Package group implements Amoeba's totally-ordered reliable
// broadcast (Kaashoek's group-communication protocol) as the paper
// describes it: a sequencer orders all broadcasts; the PB method
// (Point-to-point, then Broadcast) sends the message to the sequencer
// which broadcasts it with a sequence number, while the BB method
// (Broadcast, then Broadcast) broadcasts the message directly and the
// sequencer broadcasts a short Accept. PB costs 2m bandwidth and one
// interrupt per machine; BB costs m plus a tiny accept and two
// interrupts. The implementation dynamically picks PB for messages
// that fit one packet and BB for longer ones, exactly as the paper
// states.
//
// Reliability: the sequencer keeps a history buffer; members detect
// sequence gaps and request retransmission; senders retransmit
// unacknowledged requests. If the sequencer crashes, surviving
// members elect a new one (the candidate that has seen the most
// messages wins) and resynchronize from its rebuilt history — the
// paper's "committee electing a chairman", re-run on failure.
//
// Downward: members speak kernel ports and timers from package
// amoeba. Upward: the broadcast runtime in package rts consumes each
// member's totally-ordered delivery stream.
package group
