package tsp

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/sim"
)

// Instance is a symmetric TSP instance.
type Instance struct {
	N    int
	Dist [][]int
	// Xs, Ys are the generating coordinates (for display).
	Xs, Ys []int
}

// Generate creates a random Euclidean instance of n cities on a
// 1000x1000 grid, deterministically from seed. The paper's Fig. 2 uses
// a 14-city problem.
func Generate(n int, seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	inst := &Instance{
		N:    n,
		Dist: make([][]int, n),
		Xs:   make([]int, n),
		Ys:   make([]int, n),
	}
	for i := 0; i < n; i++ {
		inst.Xs[i] = rng.Intn(1000)
		inst.Ys[i] = rng.Intn(1000)
	}
	for i := 0; i < n; i++ {
		inst.Dist[i] = make([]int, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dx := float64(inst.Xs[i] - inst.Xs[j])
			dy := float64(inst.Ys[i] - inst.Ys[j])
			inst.Dist[i][j] = int(math.Round(math.Sqrt(dx*dx + dy*dy)))
		}
	}
	return inst
}

// Job is a partial initial route handed to workers. It satisfies
// rts.Sized so the runtime can model its wire size.
type Job struct {
	Route []int // visited cities, starting at 0
	Len   int   // length of the partial route
}

// WireSize reports the job's size on the wire.
func (j Job) WireSize() int { return 8 + 8*len(j.Route) }

// NodeCost is the virtual CPU time to expand one search-tree node on
// the simulated 68030 (distance add, bound compare, loop bookkeeping).
const NodeCost = 12 * sim.Microsecond

// BoundReadCost is the extra virtual CPU for consulting the shared
// bound at a node, beyond the runtime's read overhead.
const BoundReadCost = 2 * sim.Microsecond

// MinOut precomputes each city's cheapest outgoing edge, used in the
// branch-and-bound lower bound: a partial route can be pruned when its
// length plus the cheapest possible departure from every remaining
// city already reaches the global bound. (The paper's program prunes
// on route length alone; the added admissible bound keeps the search
// tractable at simulation speed while preserving the object access
// pattern — the bound object is still read at every node and written
// only when a better route is found.)
func (inst *Instance) MinOut() []int {
	mo := make([]int, inst.N)
	for i := 0; i < inst.N; i++ {
		mo[i] = math.MaxInt
		for j := 0; j < inst.N; j++ {
			if i != j && inst.Dist[i][j] < mo[i] {
				mo[i] = inst.Dist[i][j]
			}
		}
	}
	return mo
}

// NearestNeighbor computes a greedy tour, returned as a city order
// starting at city 0.
func NearestNeighbor(inst *Instance) []int {
	n := inst.N
	visited := make([]bool, n)
	visited[0] = true
	tour := make([]int, 1, n)
	cur := 0
	for step := 1; step < n; step++ {
		best, bestD := -1, math.MaxInt
		for j := 0; j < n; j++ {
			if !visited[j] && inst.Dist[cur][j] < bestD {
				best, bestD = j, inst.Dist[cur][j]
			}
		}
		visited[best] = true
		tour = append(tour, best)
		cur = best
	}
	return tour
}

// TourLength sums a tour's edges, closing the cycle.
func TourLength(inst *Instance, tour []int) int {
	total := 0
	for i := range tour {
		total += inst.Dist[tour[i]][tour[(i+1)%len(tour)]]
	}
	return total
}

// TwoOpt improves a tour with 2-opt moves until no improvement
// remains. Nearest-neighbor plus 2-opt gives an initial bound within a
// few percent of the optimum, so branch-and-bound mostly proves
// optimality and its node count barely depends on execution order —
// the precondition for the near-perfect parallel speedup of Fig. 2.
func TwoOpt(inst *Instance, tour []int) []int {
	t := append([]int(nil), tour...)
	n := len(t)
	for improved := true; improved; {
		improved = false
		for i := 0; i < n-1; i++ {
			for j := i + 2; j < n; j++ {
				if i == 0 && j == n-1 {
					continue
				}
				a, b := t[i], t[i+1]
				c, d := t[j], t[(j+1)%n]
				delta := inst.Dist[a][c] + inst.Dist[b][d] - inst.Dist[a][b] - inst.Dist[c][d]
				if delta < 0 {
					for lo, hi := i+1, j; lo < hi; lo, hi = lo+1, hi-1 {
						t[lo], t[hi] = t[hi], t[lo]
					}
					improved = true
				}
			}
		}
	}
	return t
}

// InitialBound computes the heuristic upper bound that seeds the
// shared bound object: a 2-opt-improved nearest-neighbor tour.
func InitialBound(inst *Instance) int {
	return TourLength(inst, TwoOpt(inst, NearestNeighbor(inst)))
}

// SolveSeq is the sequential branch-and-bound baseline: same pruning
// rule as the parallel program, single local bound seeded with the
// nearest-neighbor tour. It returns the optimum length and the number
// of search nodes expanded.
func SolveSeq(inst *Instance) (best int, nodes int64) {
	n := inst.N
	minOut := inst.MinOut()
	visited := make([]bool, n)
	visited[0] = true
	best = InitialBound(inst) + 1
	var rest int
	for i := 1; i < n; i++ {
		rest += minOut[i]
	}
	var dfs func(last, length, depth int)
	dfs = func(last, length, depth int) {
		nodes++
		if best < math.MaxInt && length+rest+minOut[last] >= best {
			return
		}
		if depth == n {
			total := length + inst.Dist[last][0]
			if total < best {
				best = total
			}
			return
		}
		for next := 1; next < n; next++ {
			if visited[next] {
				continue
			}
			visited[next] = true
			rest -= minOut[next]
			dfs(next, length+inst.Dist[last][next], depth+1)
			rest += minOut[next]
			visited[next] = false
		}
	}
	dfs(0, 0, 1)
	return best, nodes
}

// GenerateJobs expands the first jobDepth levels of the search tree
// into jobs, each a partial route starting at city 0. The paper: "The
// problem is split up into a large number of small jobs, each
// containing a partial (initial) route for the salesman."
//
// Jobs are sorted by ascending lower bound (best-first): promising
// prefixes are searched first, which both tightens the global bound
// early and schedules the largest subtrees before the tail of the run,
// avoiding stragglers.
func GenerateJobs(inst *Instance, jobDepth int) []Job {
	minOut := inst.MinOut()
	restAll := 0
	for i := 1; i < inst.N; i++ {
		restAll += minOut[i]
	}
	var jobs []Job
	var expand func(route []int, length, rest int)
	expand = func(route []int, length, rest int) {
		if len(route) >= jobDepth {
			jobs = append(jobs, Job{Route: append([]int(nil), route...), Len: length})
			return
		}
		last := route[len(route)-1]
		for next := 1; next < inst.N; next++ {
			seen := false
			for _, c := range route {
				if c == next {
					seen = true
					break
				}
			}
			if seen {
				continue
			}
			expand(append(route, next), length+inst.Dist[last][next], rest-minOut[next])
		}
	}
	expand([]int{0}, 0, restAll)
	lb := func(j Job) int {
		r := restAll
		for _, c := range j.Route {
			if c != 0 {
				r -= minOut[c]
			}
		}
		return j.Len + r + minOut[j.Route[len(j.Route)-1]]
	}
	sort.SliceStable(jobs, func(i, k int) bool { return lb(jobs[i]) < lb(jobs[k]) })
	return jobs
}

// SearchJob runs the branch-and-bound search under one job. The
// caller supplies the bound interactions, so the same search core
// serves the sequential tests and the Orca workers:
//
//   - readBound returns the current global bound (read very often),
//   - foundRoute reports a complete route (rare write), returning the
//     updated bound to continue with,
//   - charge accounts virtual CPU per expanded node.
//
// It returns the number of nodes expanded.
func SearchJob(inst *Instance, job Job, readBound func() int, foundRoute func(total int), charge func(n int64)) int64 {
	n := inst.N
	minOut := inst.MinOut()
	visited := make([]bool, n)
	rest := 0
	for i := 1; i < n; i++ {
		rest += minOut[i]
	}
	for _, c := range job.Route {
		visited[c] = true
		if c != 0 {
			rest -= minOut[c]
		}
	}
	var nodes int64
	var dfs func(last, length, depth int)
	dfs = func(last, length, depth int) {
		nodes++
		if nodes%64 == 0 {
			charge(64)
		}
		// The bound object is read at every node; reads are local on
		// a replicated object, so this is cheap — the heart of the
		// paper's argument for replication.
		if length+rest+minOut[last] >= readBound() {
			return
		}
		if depth == n {
			foundRoute(length + inst.Dist[last][0])
			return
		}
		for next := 1; next < n; next++ {
			if visited[next] {
				continue
			}
			visited[next] = true
			rest -= minOut[next]
			dfs(next, length+inst.Dist[last][next], depth+1)
			rest += minOut[next]
			visited[next] = false
		}
	}
	last := job.Route[len(job.Route)-1]
	dfs(last, job.Len, len(job.Route))
	charge(nodes % 64)
	return nodes
}
