package netsim

import (
	"fmt"

	"repro/internal/sim"
)

// Fault injection. A FaultPlan is a declarative schedule of failures —
// machine crashes, transient partitions, per-link loss windows — that
// is installed before a run and replayed from virtual time, so a
// faulty run is exactly as deterministic as a healthy one: same seed,
// same plan, same simulation. The plan expresses the failure models
// the paper's fault-tolerance claims are about ("if the sequencer
// machine subsequently crashes, the remaining members elect a new
// one") plus the transient network faults the reliability machinery of
// the group layer is built to mask.

// Crash takes a node off the network permanently at a virtual instant.
// The network only marks the node down; the crash callback given to
// InstallFaults is responsible for killing the machine above it.
type Crash struct {
	// Node is the crashing node id.
	Node int
	// At is the virtual time of the crash.
	At sim.Time
}

// Partition cuts all links between node set A and node set B during
// [From, Until). Traffic within each side is unaffected. A healed
// partition simply stops cutting: recovering from the lost frames is
// the job of the protocols above.
type Partition struct {
	A, B        []int
	From, Until sim.Time
}

// cuts reports whether the partition separates src from dst at time t.
func (pt *Partition) cuts(src, dst int, t sim.Time) bool {
	if t < pt.From || t >= pt.Until {
		return false
	}
	return (contains(pt.A, src) && contains(pt.B, dst)) ||
		(contains(pt.B, src) && contains(pt.A, dst))
}

// LossWindow adds fragment loss probability Prob on the Src→Dst link
// during [From, Until). Src or Dst set to AnyNode matches every
// sender or receiver. Loss rolls draw from the simulation's seeded
// random source, so they are deterministic per (seed, plan).
type LossWindow struct {
	Src, Dst    int
	From, Until sim.Time
	Prob        float64
}

// AnyNode is the wildcard for LossWindow endpoints.
const AnyNode = -1

// prob reports the window's loss probability for src→dst at time t
// (zero when the window does not apply).
func (lw *LossWindow) prob(src, dst int, t sim.Time) float64 {
	if t < lw.From || t >= lw.Until {
		return 0
	}
	if lw.Src != AnyNode && lw.Src != src {
		return 0
	}
	if lw.Dst != AnyNode && lw.Dst != dst {
		return 0
	}
	return lw.Prob
}

// FaultPlan is a failure schedule for one run.
type FaultPlan struct {
	Crashes    []Crash
	Partitions []Partition
	Losses     []LossWindow
}

// CrashOf returns the crash entry for a node, if the plan has one.
func (fp *FaultPlan) CrashOf(node int) (Crash, bool) {
	for _, c := range fp.Crashes {
		if c.Node == node {
			return c, true
		}
	}
	return Crash{}, false
}

// InstallFaults arms a fault plan on the network. Each crash entry is
// scheduled at its instant; onCrash, when non-nil, performs the actual
// crash (the kernel layer passes a callback that kills the machine),
// otherwise the node is only marked down at the wire. Partitions and
// loss windows become link filters consulted on every delivery.
// Installing a plan on a network that already has one panics; a nil
// plan is a no-op, and a healthy run with no plan takes exactly the
// pre-fault code paths (bit-identical schedules).
func (nw *Network) InstallFaults(plan *FaultPlan, onCrash func(node int)) {
	if plan == nil {
		return
	}
	if nw.faults != nil {
		panic("netsim: fault plan already installed")
	}
	nw.faults = plan
	for _, c := range plan.Crashes {
		if c.Node < 0 || c.Node >= nw.n {
			panic(fmt.Sprintf("netsim: fault plan crashes unknown node %d", c.Node))
		}
		node := c.Node
		nw.env.At(c.At, func() {
			if onCrash != nil {
				onCrash(node)
				return
			}
			nw.SetDown(node, true)
		})
	}
}

// faultsActive reports whether any link fault (partition or loss
// window) can apply at time t. The broadcast fast path checks it to
// fall back to per-receiver delivery during fault windows.
func (nw *Network) faultsActive(t sim.Time) bool {
	if nw.faults == nil {
		return false
	}
	for i := range nw.faults.Partitions {
		pt := &nw.faults.Partitions[i]
		if t >= pt.From && t < pt.Until {
			return true
		}
	}
	for i := range nw.faults.Losses {
		lw := &nw.faults.Losses[i]
		if t >= lw.From && t < lw.Until {
			return true
		}
	}
	return false
}

// linkCut reports whether a partition severs src→dst at time t.
func (nw *Network) linkCut(src, dst int, t sim.Time) bool {
	if nw.faults == nil {
		return false
	}
	for i := range nw.faults.Partitions {
		if nw.faults.Partitions[i].cuts(src, dst, t) {
			return true
		}
	}
	return false
}

// linkLoss returns the extra per-fragment loss probability injected on
// src→dst at time t (on top of Params.DropProb).
func (nw *Network) linkLoss(src, dst int, t sim.Time) float64 {
	if nw.faults == nil {
		return 0
	}
	p := 0.0
	for i := range nw.faults.Losses {
		if q := nw.faults.Losses[i].prob(src, dst, t); q > p {
			p = q
		}
	}
	return p
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
