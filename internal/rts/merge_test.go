package rts

import "testing"

// TestMergeSumsWorkMaxesObservations: Merge adds the per-subsystem work
// counters but takes the max of whole-machine observations (crashes,
// elections, takeovers, recovery outage) — every subsystem on the same
// machines witnesses the same crash and the same logical recovery, so a
// sum would double-count them.
func TestMergeSumsWorkMaxesObservations(t *testing.T) {
	a := RTSStats{
		LocalReads: 10, BcastWrites: 5, GuardWaits: 1, Forwarded: 2,
		BatchedOps: 8, Frames: 3, RemoteReads: 4, P2PWrites: 6,
		Fetches: 1, Discards: 1, Invalidations: 2, Updates: 3,
		FencedOps: 4, Crashes: 2, OpsRetried: 1, Rehomed: 1,
		Elections: 1, Takeovers: 2, Reproposals: 5, RecoveryVirtualUS: 100,
	}
	b := RTSStats{
		LocalReads: 1, BcastWrites: 2, GuardWaits: 3, Forwarded: 4,
		BatchedOps: 5, Frames: 6, RemoteReads: 7, P2PWrites: 8,
		Fetches: 9, Discards: 10, Invalidations: 11, Updates: 12,
		FencedOps: 13, Crashes: 1, OpsRetried: 14, Rehomed: 15,
		Elections: 3, Takeovers: 1, Reproposals: 16, RecoveryVirtualUS: 40,
	}
	got := Merge(a, b)
	want := RTSStats{
		LocalReads: 11, BcastWrites: 7, GuardWaits: 4, Forwarded: 6,
		BatchedOps: 13, Frames: 9, RemoteReads: 11, P2PWrites: 14,
		Fetches: 10, Discards: 11, Invalidations: 13, Updates: 15,
		FencedOps: 17, Crashes: 2, OpsRetried: 15, Rehomed: 16,
		Elections: 3, Takeovers: 2, Reproposals: 21, RecoveryVirtualUS: 100,
	}
	if got != want {
		t.Fatalf("Merge mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestMergeEmptyAndIdentity: merging nothing is the zero snapshot, and
// merging a single snapshot returns it unchanged.
func TestMergeEmptyAndIdentity(t *testing.T) {
	if got := Merge(); got != (RTSStats{}) {
		t.Fatalf("Merge() = %+v, want zero", got)
	}
	one := RTSStats{LocalReads: 3, Crashes: 1, Elections: 2}
	if got := Merge(one); got != one {
		t.Fatalf("Merge(one) = %+v, want %+v", got, one)
	}
}
