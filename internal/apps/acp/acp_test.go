package acp

import (
	"math/bits"
	"testing"
	"testing/quick"

	"repro/internal/orca"
)

func TestConstraintHolds(t *testing.T) {
	cases := []struct {
		c    Constraint
		a, b int
		want bool
	}{
		{Constraint{Rel: RelLt, K: 0}, 1, 2, true},
		{Constraint{Rel: RelLt, K: 0}, 2, 2, false},
		{Constraint{Rel: RelLt, K: 3}, 4, 2, true},
		{Constraint{Rel: RelNeq, K: 0}, 3, 3, false},
		{Constraint{Rel: RelNeq, K: 1}, 4, 3, false},
		{Constraint{Rel: RelNeq, K: 1}, 3, 3, true},
		{Constraint{Rel: RelAbsGe, K: 2}, 5, 3, true},
		{Constraint{Rel: RelAbsGe, K: 3}, 5, 3, false},
		{Constraint{Rel: RelAbsLe, K: 2}, 5, 3, true},
		{Constraint{Rel: RelAbsLe, K: 1}, 5, 3, false},
	}
	for i, tc := range cases {
		if got := tc.c.Holds(tc.a, tc.b); got != tc.want {
			t.Errorf("case %d: Holds(%d,%d) = %v", i, tc.a, tc.b, got)
		}
	}
}

// reviseNaive is an oracle: keep a iff some b satisfies the
// constraint.
func reviseNaive(c Constraint, v int, dv, dother uint64, ds int) uint64 {
	var out uint64
	for a := 0; a < ds; a++ {
		if dv&(1<<uint(a)) == 0 {
			continue
		}
		for b := 0; b < ds; b++ {
			if dother&(1<<uint(b)) == 0 {
				continue
			}
			var ok bool
			if v == c.I {
				ok = c.Holds(a, b)
			} else {
				ok = c.Holds(b, a)
			}
			if ok {
				out |= 1 << uint(a)
				break
			}
		}
	}
	return out
}

func TestReviseProperties(t *testing.T) {
	f := func(relRaw uint8, k int8, dv, dother uint64) bool {
		const ds = 16
		full := uint64(1<<ds) - 1
		dv &= full
		dother &= full
		c := Constraint{I: 0, J: 1, Rel: RelKind(relRaw % 4), K: int(k % 8)}
		nv := Revise(c, 0, dv, dother, ds)
		if nv&^dv != 0 {
			return false // revise must only remove values
		}
		if dother == 0 && nv != 0 {
			return false // nothing can be supported by an empty set
		}
		return nv == reviseNaive(c, 0, dv, dother, ds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSeqFixpoint(t *testing.T) {
	inst := Generate(24, 12, 24, 3)
	res := SolveSeq(inst)
	if res.NoSolution {
		t.Skip("instance unsatisfiable; pick different seed")
	}
	// At the fixpoint, no revise changes anything.
	for _, c := range inst.Constraints {
		for _, v := range []int{c.I, c.J} {
			other := c.I + c.J - v
			nv := Revise(c, v, res.Domains[v], res.Domains[other], inst.DomainSize)
			if nv != res.Domains[v] {
				t.Fatalf("fixpoint violated at constraint %+v side %d", c, v)
			}
		}
	}
}

func TestSolveSeqDetectsWipeout(t *testing.T) {
	// x < y, y < x is unsatisfiable.
	inst := &Instance{NVars: 2, DomainSize: 4, Constraints: []Constraint{
		{I: 0, J: 1, Rel: RelLt, K: 0},
		{I: 1, J: 0, Rel: RelLt, K: 0},
	}}
	inst.buildAdj()
	res := SolveSeq(inst)
	if !res.NoSolution {
		t.Fatal("wipeout not detected")
	}
}

func TestGenerateConnectedDeterministic(t *testing.T) {
	a := Generate(16, 8, 10, 5)
	b := Generate(16, 8, 10, 5)
	if len(a.Constraints) != len(b.Constraints) {
		t.Fatal("nondeterministic generation")
	}
	for i := range a.Constraints {
		if a.Constraints[i] != b.Constraints[i] {
			t.Fatal("nondeterministic constraints")
		}
	}
	// Connectivity: union-find over constraint edges.
	parent := make([]int, a.NVars)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, c := range a.Constraints {
		parent[find(c.I)] = find(c.J)
	}
	root := find(0)
	for v := 1; v < a.NVars; v++ {
		if find(v) != root {
			t.Fatal("constraint graph not connected")
		}
	}
}

func TestOrcaMatchesSequential(t *testing.T) {
	inst := Generate(20, 10, 20, 7)
	want := SolveSeq(inst)
	got := RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1}, inst, Params{})
	if got.Report.TimedOut {
		t.Fatalf("timed out; blocked: %v", got.Report.Blocked)
	}
	if got.NoSolution != want.NoSolution {
		t.Fatalf("NoSolution = %v, want %v", got.NoSolution, want.NoSolution)
	}
	if !want.NoSolution {
		for v := range want.Domains {
			if got.Domains[v] != want.Domains[v] {
				t.Fatalf("var %d: parallel %b, sequential %b", v, got.Domains[v], want.Domains[v])
			}
		}
	}
}

func TestOrcaWipeoutTerminates(t *testing.T) {
	inst := &Instance{NVars: 2, DomainSize: 4, Constraints: []Constraint{
		{I: 0, J: 1, Rel: RelLt, K: 0},
		{I: 1, J: 0, Rel: RelLt, K: 0},
	}}
	inst.buildAdj()
	got := RunOrca(orca.Config{Processors: 3, RTS: orca.Broadcast, Seed: 2}, inst, Params{})
	if got.Report.TimedOut {
		t.Fatalf("timed out; blocked: %v", got.Report.Blocked)
	}
	if !got.NoSolution {
		t.Fatal("wipeout not detected by parallel program")
	}
}

func TestOrcaDeterministic(t *testing.T) {
	inst := Generate(16, 8, 16, 9)
	a := RunOrca(orca.Config{Processors: 3, RTS: orca.Broadcast, Seed: 5}, inst, Params{})
	b := RunOrca(orca.Config{Processors: 3, RTS: orca.Broadcast, Seed: 5}, inst, Params{})
	if a.Report.Elapsed != b.Report.Elapsed || a.Revisions != b.Revisions {
		t.Fatalf("non-deterministic: %v/%d vs %v/%d",
			a.Report.Elapsed, a.Revisions, b.Report.Elapsed, b.Revisions)
	}
}

func TestOrcaSingleProcessor(t *testing.T) {
	inst := Generate(16, 8, 16, 11)
	want := SolveSeq(inst)
	got := RunOrca(orca.Config{Processors: 1, RTS: orca.Broadcast, Seed: 1}, inst, Params{})
	if got.Report.TimedOut {
		t.Fatalf("timed out; blocked: %v", got.Report.Blocked)
	}
	for v := range want.Domains {
		if got.Domains[v] != want.Domains[v] {
			t.Fatalf("var %d mismatch on single processor", v)
		}
	}
}

func TestDomainSizes(t *testing.T) {
	sizes := DomainSizes([]uint64{0b1011, 0, ^uint64(0)})
	if sizes[0] != 3 || sizes[1] != 0 || sizes[2] != 64 {
		t.Fatalf("sizes = %v", sizes)
	}
	if bits.OnesCount64(0b1011) != 3 {
		t.Fatal("sanity")
	}
}
