package rts

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// Crash-recovery tests for both runtime systems. The rts layer is
// notified of crashes explicitly here (NodeCrashed); in the full stack
// the orca runtime does that while executing a fault plan.

// crash kills a machine and notifies the runtime, as the orca crash
// cascade would.
func (b *tb) crash(node int, ca CrashAware) {
	b.ms[node].Crash()
	ca.NodeCrashed(node)
}

// blockedApp filters Blocked() down to interesting parked threads:
// anything on the given dead node (its threads must have been reaped,
// not parked) plus the named application threads. Kernel service
// threads (netisr, objmgr, objsvc, objfwd, per-object loops) park
// between work items by design and are ignored.
func (b *tb) blockedApp(deadNode string, appNames ...string) []string {
	var out []string
	for _, name := range b.env.Blocked() {
		if deadNode != "" && strings.HasPrefix(name, "node"+deadNode+"/") {
			out = append(out, name)
			continue
		}
		for _, app := range appNames {
			if strings.HasSuffix(name, "/"+app) {
				out = append(out, name)
			}
		}
	}
	return out
}

func TestBcastGuardWaiterOnDeadNodeReaped(t *testing.T) {
	// A worker on node 2 suspends on a guarded dequeue; its machine
	// crashes; the survivors keep operating the queue. The dead
	// worker's guarded write still fires in total order (it was
	// broadcast before the crash) but nobody hangs: its waiter died
	// with the machine and is not reported as blocked.
	b, r := newBcastTB(t, 11, 3, nil)
	var qid ObjID
	b.spawn(0, "creator", func(w *Worker) {
		qid = r.Create(w, "queue")
	})
	b.spawn(2, "doomed", func(w *Worker) {
		w.P.Sleep(50 * sim.Millisecond) // let the create complete
		r.Invoke(w, qid, "get")
		t.Error("doomed worker's get returned on a crashed machine")
	})
	gotOne := false
	b.spawn(1, "survivor", func(w *Worker) {
		w.P.Sleep(300 * sim.Millisecond) // crash happens at 200ms
		r.Invoke(w, qid, "put", 1)
		r.Invoke(w, qid, "put", 2)
		res := r.Invoke(w, qid, "get")
		if res[0] == nil {
			t.Error("survivor got nil item")
		}
		gotOne = true
	})
	b.env.At(200*sim.Millisecond, func() { b.crash(2, r) })
	b.run(30 * sim.Second)
	if !gotOne {
		t.Fatal("survivor never completed its dequeue")
	}
	if got := b.blockedApp("2", "doomed", "survivor", "creator"); len(got) != 0 {
		t.Fatalf("blocked after run: %v (dead node's waiters must be reaped, not parked)", got)
	}
	if c := r.Counters(); c.Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1", c.Crashes)
	}
	b.done()
}

func TestBcastForwardReroutesAroundDeadHolder(t *testing.T) {
	// A partially replicated object with holders {1, 2}: node 0
	// forwards its operations. When holder 1 dies, forwarded work must
	// re-route to holder 2.
	b, r := newBcastTB(t, 13, 3, nil)
	var id ObjID
	b.spawn(1, "creator", func(w *Worker) {
		id = r.CreateOn(w, "intcell", []int{1, 2}, 7)
	})
	var before, after int
	b.spawn(0, "outsider", func(w *Worker) {
		w.P.Sleep(100 * sim.Millisecond)
		before = r.Invoke(w, id, "get")[0].(int)
		w.P.Sleep(400 * sim.Millisecond) // holder 1 crashes at 300ms
		r.Invoke(w, id, "set", 99)
		after = r.Invoke(w, id, "get")[0].(int)
	})
	b.env.At(300*sim.Millisecond, func() { b.crash(1, r) })
	b.run(60 * sim.Second)
	if before != 7 {
		t.Fatalf("pre-crash forwarded read = %d, want 7", before)
	}
	if after != 99 {
		t.Fatalf("post-crash forwarded read = %d, want 99", after)
	}
	c := r.Counters()
	if c.Forwarded < 3 {
		t.Fatalf("expected forwarded traffic with rerouting, counters %+v", c)
	}
	if got := b.blockedApp("1", "outsider", "creator"); len(got) != 0 {
		t.Fatalf("blocked after run: %v", got)
	}
	b.done()
}

func TestP2PRehomePreservesSurvivingCopy(t *testing.T) {
	// Full replication: every machine holds a copy. When the primary
	// dies, the object must re-home onto a survivor with its state
	// intact, and writes must keep going.
	cfg := DefaultP2PConfig()
	cfg.Placement = FullReplication
	b, r := newP2PTB(t, 17, 3, cfg)
	var id ObjID
	b.spawn(0, "creator", func(w *Worker) {
		id = r.Create(w, "intcell", 0)
	})
	var final int
	b.spawn(1, "writer", func(w *Worker) {
		w.P.Sleep(100 * sim.Millisecond)
		for i := 0; i < 5; i++ {
			r.Invoke(w, id, "inc")
		}
		w.P.Sleep(500 * sim.Millisecond) // primary crashes at 400ms
		for i := 0; i < 5; i++ {
			r.Invoke(w, id, "inc")
		}
		final = r.Invoke(w, id, "get")[0].(int)
	})
	b.env.At(400*sim.Millisecond, func() { b.crash(0, r) })
	b.run(120 * sim.Second)
	if final != 10 {
		t.Fatalf("counter = %d after re-home, want 10 (state must survive)", final)
	}
	st := r.Stats()
	if st.Rehomed != 1 {
		t.Fatalf("Rehomed = %d, want 1", st.Rehomed)
	}
	if st.OpsRetried == 0 {
		t.Fatalf("OpsRetried = 0, want > 0 (the first post-crash write must have failed over)")
	}
	if p := r.Primary(id); p == 0 || r.nodes[p].m.Crashed() {
		t.Fatalf("primary = %d, want a live survivor", p)
	}
	b.done()
}

func TestP2PRestartWhenOnlyCopyDies(t *testing.T) {
	// Single copy: the object's only state dies with its machine. The
	// runtime restarts it from the creation arguments on a survivor —
	// with data loss, which is the documented semantics for
	// unreplicated objects.
	cfg := DefaultP2PConfig()
	cfg.Placement = SingleCopy
	b, r := newP2PTB(t, 19, 3, cfg)
	var id ObjID
	b.spawn(0, "creator", func(w *Worker) {
		id = r.Create(w, "intcell", 42)
	})
	var preCrash, postCrash int
	b.spawn(1, "client", func(w *Worker) {
		w.P.Sleep(100 * sim.Millisecond)
		r.Invoke(w, id, "inc")
		preCrash = r.Invoke(w, id, "get")[0].(int)
		w.P.Sleep(500 * sim.Millisecond) // primary crashes at 400ms
		postCrash = r.Invoke(w, id, "get")[0].(int)
	})
	b.env.At(400*sim.Millisecond, func() { b.crash(0, r) })
	b.run(120 * sim.Second)
	if preCrash != 43 {
		t.Fatalf("pre-crash value = %d, want 43", preCrash)
	}
	if postCrash != 42 {
		t.Fatalf("post-crash value = %d, want 42 (restarted from creation args)", postCrash)
	}
	if st := r.Stats(); st.Rehomed != 1 {
		t.Fatalf("Rehomed = %d, want 1", st.Rehomed)
	}
	b.done()
}

func TestP2PSecondaryCrashPrunedFromCopyset(t *testing.T) {
	// Update protocol, full replication: a *secondary* dies. The next
	// write at the primary must prune it from the copyset and commit
	// against the survivors instead of hanging on its ack.
	cfg := DefaultP2PConfig()
	cfg.Placement = FullReplication
	b, r := newP2PTB(t, 23, 3, cfg)
	var id ObjID
	var final int
	b.spawn(0, "creator", func(w *Worker) {
		id = r.Create(w, "intcell", 0)
		w.P.Sleep(500 * sim.Millisecond) // node 2 crashes at 300ms
		for i := 0; i < 3; i++ {
			r.Invoke(w, id, "inc")
		}
		final = r.Invoke(w, id, "get")[0].(int)
	})
	b.env.At(300*sim.Millisecond, func() { b.crash(2, r) })
	b.run(60 * sim.Second)
	if final != 3 {
		t.Fatalf("counter = %d, want 3 (writes must commit against survivors)", final)
	}
	if r.HasCopy(2, id) {
		t.Fatal("dead machine still counted as a copy holder")
	}
	if got := b.blockedApp("2", "creator"); len(got) != 0 {
		t.Fatalf("blocked after run: %v (the primary must not wait on a dead secondary's ack)", got)
	}
	b.done()
}
