package chess

import "repro/internal/sim"

// Scores are centipawns from the side-to-move's perspective
// (negamax). Mate scores leave room to prefer faster mates.
const (
	MateScore = 30000
	Infinity  = 32000
)

// NodeCost is the virtual CPU time to search one node on the simulated
// 68030 (move generation, make/unmake, evaluation). Late-80s
// micro chess programs ran on the order of a thousand nodes per
// second on this hardware class.
const NodeCost = 700 * sim.Microsecond

var pieceValue = [7]int{0, 100, 320, 330, 500, 900, 0}

// centerBonus rewards central squares slightly, stabilizing move
// ordering; tactical solving needs no positional knowledge beyond it.
func centerBonus(s int) int {
	f, r := FileOf(s), RankOf(s)
	df, dr := f, r
	if df > 3 {
		df = 7 - df
	}
	if dr > 3 {
		dr = 7 - dr
	}
	return df + dr
}

// Eval returns the static evaluation from the side to move's
// perspective: material plus a small centralization term.
func Eval(b *Board) int {
	score := 0
	for s := 0; s < 128; s++ {
		if !OnBoard(s) {
			continue
		}
		p := b.Sq[s]
		if p == Empty {
			continue
		}
		v := pieceValue[p.Kind()] + centerBonus(s)
		if p.White() {
			score += v
		} else {
			score -= v
		}
	}
	if !b.WhiteToMove {
		score = -score
	}
	return score
}

// Tables abstracts the killer and transposition tables so the search
// runs unchanged over process-local tables or shared objects — the
// paper: "In Orca, it is particularly easy to implement both versions
// and see which one is best. [...] The two versions differ in only a
// few lines of code."
type Tables interface {
	// TTLookup returns the packed entry for a position key.
	TTLookup(key uint64) (entry int64, ok bool)
	// TTStore records a packed entry. depth lets implementations
	// throttle shallow stores (shared tables pay communication per
	// store).
	TTStore(key uint64, entry int64, depth int)
	// Killers returns the two killer moves for a ply.
	Killers(ply int) (int, int)
	// AddKiller records a cutoff move at a ply.
	AddKiller(ply int, move int)
}

// TT entry packing: score (16 bits, biased), depth (6 bits), flag
// (2 bits), move (17 bits).
const (
	ttExact = 0
	ttLower = 1
	ttUpper = 2
)

// PackTT builds a packed transposition entry.
func PackTT(score, depth, flag int, move Move) int64 {
	return int64(uint64(uint16(int16(score)))) |
		int64(depth&0x3F)<<16 |
		int64(flag&0x3)<<22 |
		int64(move.Encode())<<24
}

// UnpackTT splits a packed entry.
func UnpackTT(e int64) (score, depth, flag int, move Move) {
	score = int(int16(uint16(e & 0xFFFF)))
	depth = int((e >> 16) & 0x3F)
	flag = int((e >> 22) & 0x3)
	move = DecodeMove(int((e >> 24) & 0x1FFFF))
	return
}

// LocalTables is the process-local implementation of Tables.
type LocalTables struct {
	tt      map[uint64]int64
	killers [64][2]int
}

// NewLocalTables creates empty local tables.
func NewLocalTables() *LocalTables {
	return &LocalTables{tt: make(map[uint64]int64)}
}

// TTLookup implements Tables.
func (t *LocalTables) TTLookup(key uint64) (int64, bool) {
	e, ok := t.tt[key]
	return e, ok
}

// TTStore implements Tables.
func (t *LocalTables) TTStore(key uint64, entry int64, depth int) { t.tt[key] = entry }

// Killers implements Tables.
func (t *LocalTables) Killers(ply int) (int, int) {
	if ply >= len(t.killers) {
		return 0, 0
	}
	return t.killers[ply][0], t.killers[ply][1]
}

// AddKiller implements Tables.
func (t *LocalTables) AddKiller(ply int, move int) {
	if ply >= len(t.killers) {
		return
	}
	if t.killers[ply][0] != move {
		t.killers[ply][1] = t.killers[ply][0]
		t.killers[ply][0] = move
	}
}

// Searcher runs alpha-beta with iterative deepening, quiescence,
// killer moves, and a transposition table.
type Searcher struct {
	B      *Board
	Tables Tables
	// Charge, if set, is called periodically with node counts so the
	// simulation can account CPU time.
	Charge func(nodes int64)
	// Abort, if set, is polled; a true return unwinds the search.
	Abort func() bool

	Nodes   int64
	lastChg int64
	aborted bool
	buf     [64][]Move
}

// NewSearcher creates a searcher over a board copy.
func NewSearcher(b *Board, tables Tables) *Searcher {
	return &Searcher{B: b.Clone(), Tables: tables}
}

func (s *Searcher) visit() {
	s.Nodes++
	if s.Nodes-s.lastChg >= 32 {
		if s.Charge != nil {
			s.Charge(s.Nodes - s.lastChg)
		}
		s.lastChg = s.Nodes
		if s.Abort != nil && s.Abort() {
			s.aborted = true
		}
	}
}

// flush charges any remaining uncharged nodes.
func (s *Searcher) flush() {
	if s.Charge != nil && s.Nodes > s.lastChg {
		s.Charge(s.Nodes - s.lastChg)
	}
	s.lastChg = s.Nodes
}

// quiesce searches captures until the position is quiet.
func (s *Searcher) quiesce(alpha, beta, ply int) int {
	s.visit()
	if s.aborted {
		return alpha
	}
	stand := Eval(s.B)
	if stand >= beta {
		return stand
	}
	if stand > alpha {
		alpha = stand
	}
	moves := s.B.GenMoves(s.movebuf(ply), true)
	s.orderMoves(moves, Move{}, ply)
	white := s.B.WhiteToMove
	for _, m := range moves {
		if s.B.Sq[m.To].Kind() == WK {
			return MateScore - ply // capturing the king: illegal position
		}
		u := s.B.MakeMove(m)
		if s.B.Attacked(s.B.KingSquare(white), !white) {
			s.B.UnmakeMove(u)
			continue
		}
		score := -s.quiesce(-beta, -alpha, ply+1)
		s.B.UnmakeMove(u)
		if s.aborted {
			return alpha
		}
		if score >= beta {
			return score
		}
		if score > alpha {
			alpha = score
		}
	}
	return alpha
}

// movebuf reuses per-ply move slices to avoid allocation churn.
func (s *Searcher) movebuf(ply int) []Move {
	if ply >= len(s.buf) {
		return nil
	}
	s.buf[ply] = s.buf[ply][:0]
	return s.buf[ply]
}

// orderMoves sorts in place: hash move, captures (most valuable victim
// first), killers, quiets.
func (s *Searcher) orderMoves(moves []Move, hashMove Move, ply int) {
	k1, k2 := 0, 0
	if s.Tables != nil {
		k1, k2 = s.Tables.Killers(ply)
	}
	OrderMoves(s.B, moves, hashMove, k1, k2)
}

// OrderMoves sorts a move list in place: hash move, captures (most
// valuable victim first), killers, quiets. It is shared by the
// searcher and by the parallel manager's spine walk.
func OrderMoves(b *Board, moves []Move, hashMove Move, k1, k2 int) {
	score := func(m Move) int {
		switch {
		case m == hashMove:
			return 1 << 20
		case b.Sq[m.To] != Empty:
			return 1<<16 + pieceValue[b.Sq[m.To].Kind()]*16 - pieceValue[b.Sq[m.From].Kind()]
		case m.Encode() == k1:
			return 1 << 15
		case m.Encode() == k2:
			return 1<<15 - 1
		}
		return centerBonus(m.To)
	}
	// Insertion sort: move lists are short and mostly ordered.
	for i := 1; i < len(moves); i++ {
		m := moves[i]
		sc := score(m)
		j := i - 1
		for j >= 0 && score(moves[j]) < sc {
			moves[j+1] = moves[j]
			j--
		}
		moves[j+1] = m
	}
}

// AlphaBeta searches to the given depth and returns the negamax score.
func (s *Searcher) AlphaBeta(depth, alpha, beta, ply int) int {
	s.visit()
	if s.aborted {
		return alpha
	}
	if depth <= 0 {
		return s.quiesce(alpha, beta, ply)
	}
	alphaOrig := alpha
	key := s.B.Hash()
	var hashMove Move
	if s.Tables != nil {
		if e, ok := s.Tables.TTLookup(key); ok {
			score, d, flag, mv := UnpackTT(e)
			hashMove = mv
			if d >= depth {
				switch flag {
				case ttExact:
					return score
				case ttLower:
					if score > alpha {
						alpha = score
					}
				case ttUpper:
					if score < beta {
						beta = score
					}
				}
				if alpha >= beta {
					return score
				}
			}
		}
	}
	moves := s.B.GenMoves(s.movebuf(ply), false)
	s.orderMoves(moves, hashMove, ply)
	white := s.B.WhiteToMove
	best := -Infinity
	var bestMove Move
	legal := 0
	for _, m := range moves {
		u := s.B.MakeMove(m)
		if s.B.Attacked(s.B.KingSquare(white), !white) {
			s.B.UnmakeMove(u)
			continue
		}
		legal++
		score := -s.AlphaBeta(depth-1, -beta, -alpha, ply+1)
		s.B.UnmakeMove(u)
		if s.aborted {
			return alpha
		}
		if score > best {
			best = score
			bestMove = m
		}
		if score > alpha {
			alpha = score
		}
		if alpha >= beta {
			if s.B.Sq[m.To] == Empty && s.Tables != nil {
				s.Tables.AddKiller(ply, m.Encode())
			}
			break
		}
	}
	if legal == 0 {
		if s.B.InCheck() {
			return -MateScore + ply
		}
		return 0 // stalemate
	}
	if s.Tables != nil {
		flag := ttExact
		switch {
		case best <= alphaOrig:
			flag = ttUpper
		case best >= beta:
			flag = ttLower
		}
		s.Tables.TTStore(key, PackTT(best, depth, flag, bestMove), depth)
	}
	return best
}

// SearchResult is the outcome of an iterative-deepening search.
type SearchResult struct {
	BestMove Move
	Score    int
	Nodes    int64
	Depth    int
}

// IsMateScore reports whether score announces a forced mate.
func IsMateScore(score int) bool {
	return score > MateScore-100 || score < -MateScore+100
}

// MovesToMate converts a mate score to full moves until mate.
func MovesToMate(score int) int {
	if score > 0 {
		return (MateScore - score + 1) / 2
	}
	return (MateScore + score + 1) / 2
}

// SearchRoot runs iterative deepening to maxDepth and returns the best
// move. It is the sequential baseline solver.
func SearchRoot(b *Board, maxDepth int, tables Tables, charge func(int64)) SearchResult {
	s := NewSearcher(b, tables)
	s.Charge = charge
	var res SearchResult
	for d := 1; d <= maxDepth; d++ {
		score := s.AlphaBeta(d, -Infinity, Infinity, 0)
		key := s.B.Hash()
		if e, ok := tables.TTLookup(key); ok {
			_, _, _, mv := UnpackTT(e)
			res.BestMove = mv
		}
		res.Score = score
		res.Depth = d
		if IsMateScore(score) {
			break
		}
	}
	s.flush()
	res.Nodes = s.Nodes
	return res
}
