package harness

import (
	"fmt"
	"io"

	"repro/internal/apps/acp"
	"repro/internal/apps/tsp"
	"repro/internal/netsim"
	"repro/internal/orca"
	"repro/internal/sim"
)

// FaultsExperiment exercises the paper's fault-tolerance claim end to
// end: "if the sequencer machine subsequently crashes, the remaining
// members elect a new one" — and, above the group layer, the whole
// stack keeps computing. Three crash scenarios run against a no-fault
// baseline:
//
//   - tsp worker crash: a worker machine dies mid-search; the
//     crash-aware manager requeues its claimed jobs and the run must
//     report the same optimum as the baseline.
//   - tsp sequencer crash: the crashed machine also hosts the group
//     sequencer, so the survivors must elect a new one before any
//     further broadcast commits.
//   - acp participant crash: an arc-consistency participant dies; its
//     variables join the orphan pool and the survivors must reach the
//     identical fixpoint.
//
// Every scenario runs twice and panics if the two fingerprints differ:
// crashes are scheduled events, so a faulty run is exactly as
// deterministic as a healthy one.
func FaultsExperiment(w io.Writer, scale Scale) {
	cities, procs := 13, 8
	nVars, dom, extra := 32, 32, 20
	if scale == Quick {
		cities, procs = 11, 4
		nVars, dom, extra = 20, 20, 12
	}
	crashNode := procs - 1

	fmt.Fprintf(w, "== FAULTS: crash-surviving runs (TSP %d cities on P=%d, ACP %d variables) ==\n",
		cities, procs, nVars)

	inst := tsp.Generate(cities, 5)
	type row struct {
		name                string
		elapsed             sim.Time
		result              string
		elections           int64
		reproposals         int64
		recoveryUS          float64
		crashes, killed     int
		retried, guardWaits int64
	}
	var rows []row

	runTSP := func(name string, seqOn int, crashAt sim.Time) tsp.Result {
		cfg := orca.Config{Processors: procs, RTS: orca.Broadcast, Seed: 1, Sequencer: seqOn}
		if crashAt > 0 {
			cfg.Faults = &netsim.FaultPlan{Crashes: []netsim.Crash{{Node: crashNode, At: crashAt}}}
		}
		fp := ""
		var r tsp.Result
		for i := 0; i < 2; i++ {
			r = tsp.RunOrca(cfg, inst, tsp.Params{FaultTolerant: true})
			if r.Report.TimedOut {
				panic(fmt.Sprintf("harness: faults %s run timed out (blocked: %v)", name, r.Report.Blocked))
			}
			got := fmt.Sprintf("best=%d elapsed=%d msgs=%d", r.Best, int64(r.Report.Elapsed), r.Report.Net.Messages)
			if fp == "" {
				fp = got
			} else if fp != got {
				panic(fmt.Sprintf("harness: faults %s not deterministic:\n  %s\n  %s", name, fp, got))
			}
		}
		var elections int64
		for i, gs := range r.Runtime.GroupStats() {
			if i != crashNode || crashAt == 0 {
				elections += gs.Elections
			}
		}
		killed := 0
		for _, c := range r.Report.Crashes {
			killed += c.ProcsKilled
		}
		rows = append(rows, row{
			name: name, elapsed: r.Report.Elapsed,
			result: fmt.Sprint(r.Best), elections: elections,
			reproposals: r.Report.RTS.Reproposals, recoveryUS: r.Report.RTS.RecoveryVirtualUS,
			crashes: len(r.Report.Crashes), killed: killed,
			retried: r.Report.RTS.OpsRetried, guardWaits: r.Report.RTS.GuardWaits,
		})
		return r
	}

	base := runTSP("tsp/no-fault", 0, 0)
	crashAt := base.Report.Elapsed / 2
	worker := runTSP("tsp/worker-crash", 0, crashAt)
	seq := runTSP("tsp/sequencer-crash", crashNode, crashAt)
	for _, r := range []tsp.Result{worker, seq} {
		if r.Best != base.Best {
			panic(fmt.Sprintf("harness: crash run found %d, baseline optimum %d", r.Best, base.Best))
		}
	}

	// ACP: participant loss must reproduce the baseline fixpoint.
	ainst := acp.GeneratePropagation(nVars, dom, extra, 2)
	acfg := orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1}
	abase := acp.RunOrca(acfg, ainst, acp.Params{FaultTolerant: true})
	acfg.Faults = &netsim.FaultPlan{Crashes: []netsim.Crash{{Node: 2, At: abase.Report.Elapsed / 3}}}
	fp := ""
	var acrash acp.Result
	for i := 0; i < 2; i++ {
		acrash = acp.RunOrca(acfg, ainst, acp.Params{FaultTolerant: true})
		if acrash.Report.TimedOut {
			panic("harness: faults acp crash run timed out")
		}
		got := fmt.Sprintf("rev=%d elapsed=%d", acrash.Revisions, int64(acrash.Report.Elapsed))
		if fp == "" {
			fp = got
		} else if fp != got {
			panic("harness: faults acp run not deterministic")
		}
	}
	for i := range abase.Domains {
		if acrash.Domains[i] != abase.Domains[i] {
			panic(fmt.Sprintf("harness: acp crash run fixpoint differs at variable %d", i))
		}
	}
	rows = append(rows,
		row{name: "acp/no-fault", elapsed: abase.Report.Elapsed, result: fmt.Sprintf("rev=%d", abase.Revisions)},
		row{name: "acp/participant-crash", elapsed: acrash.Report.Elapsed,
			result:      fmt.Sprintf("rev=%d", acrash.Revisions),
			reproposals: acrash.Report.RTS.Reproposals, recoveryUS: acrash.Report.RTS.RecoveryVirtualUS,
			crashes: len(acrash.Report.Crashes), killed: acrash.Report.Crashes[0].ProcsKilled,
			retried: acrash.Report.RTS.OpsRetried, guardWaits: acrash.Report.RTS.GuardWaits,
		})

	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.name, fmtTime(r.elapsed), r.result,
			fmt.Sprint(r.crashes), fmt.Sprint(r.killed),
			fmt.Sprint(r.elections), fmt.Sprint(r.reproposals), fmt.Sprintf("%.0fus", r.recoveryUS),
			fmt.Sprint(r.retried), fmt.Sprint(r.guardWaits),
		})
	}
	Table(w, []string{"scenario", "time", "result", "crashes", "procs killed", "elections",
		"reproposals", "recovery", "ops retried", "guard waits"}, cells)
	fmt.Fprintln(w, "Every crash run is executed twice with identical fingerprints; the")
	fmt.Fprintln(w, "TSP crash scenarios report the baseline optimum and the ACP crash")
	fmt.Fprintln(w, "scenario reproduces the baseline fixpoint bit for bit. The sequencer")
	fmt.Fprintln(w, "scenario additionally forces an election, as the paper describes.")
	fmt.Fprintln(w)
}
