package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since the start of
// the simulation.
type Time int64

// Duration constants for building virtual times. These mirror
// time.Duration but are deliberately a distinct type: virtual time
// never mixes with wall-clock time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds reports t as a floating-point number of virtual seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t as a floating-point number of virtual
// milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds reports t as a floating-point number of virtual
// microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// String formats t with a unit chosen by magnitude, e.g. "1.500ms".
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", t.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}
