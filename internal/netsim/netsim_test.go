package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testNet(n int, mutate func(*Params)) (*sim.Env, *Network) {
	env := sim.New(42)
	p := DefaultParams()
	if mutate != nil {
		mutate(&p)
	}
	return env, New(env, n, p)
}

func TestUnicastDelivery(t *testing.T) {
	env, nw := testNet(3, nil)
	var got []Delivery
	nw.Handle(1, func(d Delivery) { got = append(got, d) })
	nw.SendFrame(Frame{Src: 0, Dst: 1, Kind: "test", Size: 100, Payload: "hello"})
	env.Run()
	if len(got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(got))
	}
	if got[0].Frame.Payload.(string) != "hello" {
		t.Fatalf("payload = %v", got[0].Frame.Payload)
	}
	wantAt := nw.TxTime(100) + nw.Params().PropDelay
	if got[0].At != wantAt {
		t.Fatalf("delivered at %v, want %v", got[0].At, wantAt)
	}
}

func TestBroadcastReachesAllButSender(t *testing.T) {
	env, nw := testNet(4, nil)
	recv := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		nw.Handle(i, func(d Delivery) { recv[i]++ })
	}
	nw.BroadcastFrame(Frame{Src: 2, Kind: "bcast", Size: 64})
	env.Run()
	for i := 0; i < 4; i++ {
		want := 1
		if i == 2 {
			want = 0
		}
		if recv[i] != want {
			t.Fatalf("node %d received %d, want %d", i, recv[i], want)
		}
	}
}

func TestBandwidthSerialization(t *testing.T) {
	env, nw := testNet(2, nil)
	var times []sim.Time
	nw.Handle(1, func(d Delivery) { times = append(times, d.At) })
	// Two back-to-back frames: second waits for the bus.
	nw.SendFrame(Frame{Src: 0, Dst: 1, Size: 1000})
	nw.SendFrame(Frame{Src: 0, Dst: 1, Size: 1000})
	env.Run()
	if len(times) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(times))
	}
	tx := nw.TxTime(1000)
	if times[0] != tx+nw.Params().PropDelay {
		t.Fatalf("first delivery at %v, want %v", times[0], tx+nw.Params().PropDelay)
	}
	if times[1] != 2*tx+nw.Params().PropDelay {
		t.Fatalf("second delivery at %v, want %v (bus serialization)", times[1], 2*tx+nw.Params().PropDelay)
	}
}

func TestFragmentation(t *testing.T) {
	env, nw := testNet(2, nil)
	var frags int
	nw.Handle(1, func(d Delivery) { frags = d.Fragments })
	nw.SendFrame(Frame{Src: 0, Dst: 1, Size: 4000}) // 1500-byte MTU -> 3 frames
	env.Run()
	if frags != 3 {
		t.Fatalf("fragments = %d, want 3", frags)
	}
	s := nw.Stats()
	if s.Frames != 3 {
		t.Fatalf("stats frames = %d, want 3", s.Frames)
	}
	wantWire := int64(4000 + 3*nw.Params().FrameOverhead)
	if s.WireBytes != wantWire {
		t.Fatalf("wire bytes = %d, want %d", s.WireBytes, wantWire)
	}
}

func TestInterruptAccounting(t *testing.T) {
	env, nw := testNet(3, nil)
	for i := 0; i < 3; i++ {
		nw.Handle(i, func(d Delivery) {})
	}
	nw.BroadcastFrame(Frame{Src: 0, Size: 3000}) // 2 fragments
	env.Run()
	s := nw.Stats()
	if s.Interrupts[0] != 0 {
		t.Fatalf("sender interrupts = %d, want 0", s.Interrupts[0])
	}
	for i := 1; i < 3; i++ {
		if s.Interrupts[i] != 2 {
			t.Fatalf("node %d interrupts = %d, want 2 (one per fragment)", i, s.Interrupts[i])
		}
	}
}

func TestDropInjection(t *testing.T) {
	env, nw := testNet(2, func(p *Params) { p.DropProb = 0.5 })
	delivered := 0
	nw.Handle(1, func(d Delivery) { delivered++ })
	const total = 1000
	for i := 0; i < total; i++ {
		nw.SendFrame(Frame{Src: 0, Dst: 1, Size: 100})
	}
	env.Run()
	if delivered == 0 || delivered == total {
		t.Fatalf("delivered = %d of %d; drop injection not working", delivered, total)
	}
	s := nw.Stats()
	if s.Drops != int64(total-delivered) {
		t.Fatalf("drops = %d, want %d", s.Drops, total-delivered)
	}
	// With p=0.5 the delivered count should be within 5 sigma of 500.
	if delivered < 400 || delivered > 600 {
		t.Fatalf("delivered = %d, improbable for p=0.5", delivered)
	}
}

func TestDownNodeReceivesNothing(t *testing.T) {
	env, nw := testNet(3, nil)
	recv := 0
	nw.Handle(1, func(d Delivery) { recv++ })
	nw.Handle(2, func(d Delivery) { recv++ })
	nw.SetDown(1, true)
	nw.BroadcastFrame(Frame{Src: 0, Size: 10})
	env.Run()
	if recv != 1 {
		t.Fatalf("deliveries = %d, want 1 (node 1 is down)", recv)
	}
}

func TestDownNodeCannotSend(t *testing.T) {
	env, nw := testNet(2, nil)
	recv := 0
	nw.Handle(1, func(d Delivery) { recv++ })
	nw.SetDown(0, true)
	nw.SendFrame(Frame{Src: 0, Dst: 1, Size: 10})
	env.Run()
	if recv != 0 {
		t.Fatalf("down node managed to send")
	}
}

func TestBroadcastOnP2PNetworkPanics(t *testing.T) {
	_, nw := testNet(2, func(p *Params) { p.BroadcastCapable = false })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic broadcasting on point-to-point network")
		}
	}()
	nw.BroadcastFrame(Frame{Src: 0, Size: 10})
}

func TestStatsByKind(t *testing.T) {
	env, nw := testNet(2, nil)
	nw.Handle(1, func(d Delivery) {})
	nw.SendFrame(Frame{Src: 0, Dst: 1, Kind: "rpc-req", Size: 128})
	nw.SendFrame(Frame{Src: 0, Dst: 1, Kind: "rpc-req", Size: 128})
	nw.SendFrame(Frame{Src: 0, Dst: 1, Kind: "rpc-rep", Size: 64})
	env.Run()
	s := nw.Stats()
	if s.CountsByKind["rpc-req"] != 2 || s.CountsByKind["rpc-rep"] != 1 {
		t.Fatalf("counts by kind = %v", s.CountsByKind)
	}
}

// Property: fragmentation covers the payload with the minimum number of
// MTU-sized frames and TxTime is monotone in size.
func TestFragmentationProperty(t *testing.T) {
	_, nw := testNet(2, nil)
	mtu := nw.Params().MTU
	f := func(size uint16) bool {
		n := nw.FragmentsFor(int(size))
		if size == 0 {
			return n == 1
		}
		if n*mtu < int(size) {
			return false // does not cover payload
		}
		if (n-1)*mtu >= int(size) {
			return false // not minimal
		}
		return nw.TxTime(int(size)) >= nw.TxTime(int(size)-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestResetStats(t *testing.T) {
	env, nw := testNet(2, nil)
	nw.Handle(1, func(d Delivery) {})
	nw.SendFrame(Frame{Src: 0, Dst: 1, Size: 100})
	env.Run()
	nw.ResetStats()
	s := nw.Stats()
	if s.Frames != 0 || s.WireBytes != 0 || s.Interrupts[1] != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
}
