package group

// seqRing is a buffer indexed by a dense, monotonically advancing
// sequence number. It replaces the hot-path maps of the protocol
// (sequencer history, per-source dedup windows, the out-of-order
// buffer): a lookup or store is an array index, a trim is a pointer
// walk over exactly the dropped entries, and nothing ever iterates a
// hash table on the delivery path.
//
// The window [lo, hi) holds the retained indices; entries below lo are
// forgotten, the zero value of T means "absent". A ring with max > 0
// caps the window at max entries and silently forgets the oldest when
// a store would exceed it (the sequencer history cap); max == 0 grows
// the backing array instead (the out-of-order buffer, whose window is
// bounded by gap recovery).
type seqRing[T comparable] struct {
	vals []T
	lo   int64 // lowest retained index
	hi   int64 // one past the highest index ever stored
	max  int   // window cap; 0 = grow on demand
}

// reset empties the ring and rebases the window at lo.
func (r *seqRing[T]) reset(lo int64) {
	clear(r.vals)
	r.lo, r.hi = lo, lo
}

// get returns the value stored at index i, or T's zero value if i is
// outside the window or was never stored.
func (r *seqRing[T]) get(i int64) T {
	var zero T
	if i < r.lo || i >= r.hi {
		return zero
	}
	return r.vals[int(i%int64(len(r.vals)))]
}

// set stores v at index i. Stores below lo are ignored (the window has
// moved on); stores that would widen a capped window past max advance
// lo first, forgetting the oldest entries.
func (r *seqRing[T]) set(i int64, v T) {
	if i < r.lo {
		return
	}
	need := i - r.lo + 1
	if r.max > 0 && need > int64(r.max) {
		r.advanceTo(i - int64(r.max) + 1)
		need = int64(r.max)
	}
	if int64(len(r.vals)) < need {
		r.grow(need)
	}
	r.vals[int(i%int64(len(r.vals)))] = v
	if i >= r.hi {
		r.hi = i + 1
	}
}

// del clears the entry at index i without moving the window.
func (r *seqRing[T]) del(i int64) {
	if i < r.lo || i >= r.hi {
		return
	}
	var zero T
	r.vals[int(i%int64(len(r.vals)))] = zero
}

// advanceTo forgets every entry below newLo.
func (r *seqRing[T]) advanceTo(newLo int64) {
	if newLo <= r.lo {
		return
	}
	var zero T
	top := newLo
	if top > r.hi {
		top = r.hi
	}
	for i := r.lo; i < top; i++ {
		r.vals[int(i%int64(len(r.vals)))] = zero
	}
	r.lo = newLo
	if r.hi < newLo {
		r.hi = newLo
	}
}

// clearAbove forgets every entry at indices > n, shrinking the window
// from the top (used when a new view discards unsequenceable tails).
func (r *seqRing[T]) clearAbove(n int64) {
	var zero T
	from := n + 1
	if from < r.lo {
		from = r.lo
	}
	for i := from; i < r.hi; i++ {
		r.vals[int(i%int64(len(r.vals)))] = zero
	}
	if r.hi > from {
		r.hi = from
	}
}

// span reports the width of the retained window.
func (r *seqRing[T]) span() int { return int(r.hi - r.lo) }

// grow reallocates the backing array to hold at least need entries,
// re-placing the live window under the new modulus.
func (r *seqRing[T]) grow(need int64) {
	n := int64(16)
	for n < need {
		n *= 2
	}
	nv := make([]T, n)
	for i := r.lo; i < r.hi; i++ {
		nv[int(i%n)] = r.vals[int(i%int64(len(r.vals)))]
	}
	r.vals = nv
}
