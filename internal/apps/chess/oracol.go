package chess

import (
	"fmt"
	"sort"

	"repro/internal/orca"
	"repro/internal/orca/std"
	"repro/internal/sim"
)

// Oracol's parallel search partitions the search tree dynamically
// among the processors (§4.3). The algorithm is principal-variation
// splitting (Marsland & Campbell, the paper's reference [13]): the
// manager walks the leftmost line of the tree; at each node on that
// spine, the first successor is searched recursively (establishing a
// sound bound) and the remaining successors fan out to the workers
// through a job queue, pruned against a shared per-level bound object.
// Only the leftmost walk is serial, which is what bounds alpha-beta's
// parallel speedup — the paper measures 4.5-5.5 on 10 CPUs.
//
// The killer and transposition tables can be process-local or shared
// objects: the experiment of §4.3 ("In Orca, it is particularly easy
// to implement both versions and see which one is best").

// Params configures an Oracol run.
type Params struct {
	// MaxDepth is the iterative-deepening limit in plies.
	MaxDepth int
	// SharedTT shares the transposition table across processes.
	SharedTT bool
	// SharedKiller shares the killer table across processes.
	SharedKiller bool
	// TTBuckets sizes the transposition table (default 8192).
	TTBuckets int
	// TTMinDepth throttles shared stores: only subtrees at least this
	// deep are broadcast (default 3). Local stores always happen.
	TTMinDepth int
	// KillerMaxPly shares killers only for plies below this (default
	// 4); deep-ply killers churn too fast to be worth broadcasting.
	KillerMaxPly int
	// SplitMinDepth stops splitting: subtrees at most this deep are
	// one job (default 2).
	SplitMinDepth int
	// Workers overrides the worker count (default: one per CPU).
	Workers int
}

func (p *Params) fill() {
	if p.MaxDepth == 0 {
		p.MaxDepth = 5
	}
	if p.TTBuckets == 0 {
		p.TTBuckets = 8192
	}
	if p.TTMinDepth == 0 {
		p.TTMinDepth = 3
	}
	if p.KillerMaxPly == 0 {
		p.KillerMaxPly = 4
	}
	if p.SplitMinDepth == 0 {
		p.SplitMinDepth = 2
	}
}

// Result of an Oracol run.
type Result struct {
	BestMove Move
	Score    int
	Nodes    int64
	Report   orca.Report
	Runtime  *orca.Runtime
}

// searchJob asks a worker to search the position reached by Path
// (encoded moves from the root) to Depth. Level is the spine level
// whose bound object prunes this subtree; RootIdx >= 0 tags level-0
// jobs with their root-move index so scores can be collected.
type searchJob struct {
	Path    []int
	Depth   int
	Level   int
	RootIdx int
}

// WireSize reports the job size on the wire.
func (j searchJob) WireSize() int { return 24 + 4*len(j.Path) }

// sharedTables implements Tables over shared objects with a local
// overlay: lookups hit the local map first, then the replicated shared
// object (still a local read — no communication); stores above the
// depth threshold are broadcast.
type sharedTables struct {
	wp           *orca.Proc
	local        *LocalTables
	tt           std.Table
	killer       std.Killer
	useTT        bool
	useKiller    bool
	ttMinDepth   int
	killerMaxPly int
}

// TTLookup implements Tables.
func (t *sharedTables) TTLookup(key uint64) (int64, bool) {
	if e, ok := t.local.TTLookup(key); ok {
		return e, ok
	}
	if !t.useTT {
		return 0, false
	}
	return t.tt.Lookup(t.wp, key)
}

// TTStore implements Tables.
func (t *sharedTables) TTStore(key uint64, entry int64, depth int) {
	t.local.TTStore(key, entry, depth)
	if t.useTT && depth >= t.ttMinDepth {
		t.tt.Store(t.wp, key, entry)
	}
}

// Killers implements Tables.
func (t *sharedTables) Killers(ply int) (int, int) {
	if t.useKiller && ply < t.killerMaxPly {
		return t.killer.Get(t.wp, ply)
	}
	return t.local.Killers(ply)
}

// AddKiller implements Tables.
func (t *sharedTables) AddKiller(ply int, move int) {
	if t.useKiller && ply < t.killerMaxPly {
		t.killer.Add(t.wp, ply, move)
		return
	}
	t.local.AddKiller(ply, move)
}

// applyPath replays encoded moves from the root.
func applyPath(b *Board, path []int) *Board {
	c := b.Clone()
	for _, em := range path {
		c.MakeMove(DecodeMove(em))
	}
	return c
}

// RunOrca executes the parallel Oracol search on the simulated
// machine and returns the chosen move.
func RunOrca(cfg orca.Config, b *Board, params Params) Result {
	params.fill()
	workers := params.Workers
	if workers == 0 {
		workers = cfg.Processors
	}
	rootMoves := b.LegalMoves()
	res := Result{}
	if len(rootMoves) == 0 {
		return res
	}
	rt := orca.New(cfg, std.Register)
	rep := rt.Run(func(p *orca.Proc) {
		queue := std.NewQueue[searchJob](p)
		scores := std.NewTable(p, 512)
		done := std.NewCounter(p, 0)
		nodesAcc := std.NewAccum(p)
		tt := std.NewTable(p, params.TTBuckets)
		killer := std.NewKiller(p, 64)
		fin := std.NewBarrier(p, workers)
		// One bound object per spine level; siblings at level L are
		// pruned against levelBest[L] (the paper's shared-object idiom
		// for dynamic tree partitioning).
		levelBest := make([]std.Counter, params.MaxDepth+1)
		for i := range levelBest {
			levelBest[i] = std.NewCounter(p, -Infinity)
		}

		for wdx := 0; wdx < workers; wdx++ {
			cpu := wdx % cfg.Processors
			p.Fork(cpu, fmt.Sprintf("oracol%d", wdx), func(wp *orca.Proc) {
				tabs := &sharedTables{
					wp: wp, local: NewLocalTables(),
					tt: tt, killer: killer,
					useTT: params.SharedTT, useKiller: params.SharedKiller,
					ttMinDepth: params.TTMinDepth, killerMaxPly: params.KillerMaxPly,
				}
				var total int64
				for {
					job, ok := queue.Get(wp)
					if !ok {
						break
					}
					s := NewSearcher(applyPath(b, job.Path), tabs)
					s.Charge = func(n int64) { wp.Work(sim.Time(n) * NodeCost) }
					// The parent's bound is a local read of the
					// replicated level object.
					parentBound := levelBest[job.Level].Value(wp)
					v := s.AlphaBeta(job.Depth, -Infinity, -parentBound, len(job.Path))
					cand := -v
					if cand > parentBound {
						levelBest[job.Level].Max(wp, cand)
					}
					if job.RootIdx >= 0 {
						scores.Store(wp, uint64(job.RootIdx), int64(cand))
					}
					s.flush()
					total += s.Nodes
					s.Nodes, s.lastChg = 0, 0
					done.Inc(wp)
				}
				nodesAcc.Add(wp, int(total))
				fin.Arrive(wp)
			})
		}

		// Manager: iterative deepening over PV-split rounds.
		finished := 0
		await := func(n int) {
			finished += n
			done.AwaitGE(p, finished)
		}
		// hashMoveFor consults the shared transposition table (a local
		// read) to order the spine like the previous iteration.
		hashMoveFor := func(pos *Board) Move {
			if !params.SharedTT {
				return Move{}
			}
			entry, ok := tt.Lookup(p, pos.Hash())
			if !ok {
				return Move{}
			}
			_, _, _, mv := UnpackTT(entry)
			return mv
		}

		order := make([]int, len(rootMoves))
		for i := range order {
			order[i] = i
		}
		lastScores := make([]int, len(rootMoves))

		// pvsplit returns the negamax value of pos (side to move's
		// view), searched to depth, splitting siblings at each spine
		// level. path is the move list from the root; level 0 tags
		// jobs with root indices. rootOrder supplies the move order
		// at the root (from the previous iteration's scores).
		var pvsplit func(pos *Board, path []int, depth, level int) int
		pvsplit = func(pos *Board, path []int, depth, level int) int {
			moves := pos.LegalMoves()
			p.Work(sim.Time(len(moves)+8) * 40 * sim.Microsecond) // spine movegen
			if len(moves) == 0 {
				if pos.InCheck() {
					return -MateScore + level
				}
				return 0
			}
			if level == 0 {
				reordered := make([]Move, len(moves))
				for i, idx := range order {
					reordered[i] = rootMoves[idx]
				}
				moves = reordered
			} else {
				OrderMoves(pos, moves, hashMoveFor(pos), 0, 0)
			}
			// Leftmost successor: recurse (or a single job when the
			// subtree is too small to split further).
			first := moves[0]
			child := pos.Clone()
			child.MakeMove(first)
			var v0 int
			if depth-1 <= params.SplitMinDepth {
				ri := -1
				if level == 0 {
					ri = order[0]
				}
				levelBest[level].Assign(p, -Infinity)
				queue.Add(p, searchJob{
					Path:  append(append([]int(nil), path...), first.Encode()),
					Depth: depth - 1, Level: level, RootIdx: ri,
				})
				await(1)
				v0 = levelBest[level].Value(p)
			} else {
				v0 = -pvsplit(child, append(append([]int(nil), path...), first.Encode()), depth-1, level+1)
				levelBest[level].Assign(p, v0)
				if level == 0 {
					scores.Store(p, uint64(order[0]), int64(v0))
				}
			}
			// Remaining successors fan out to the workers, pruned
			// against this level's bound.
			if len(moves) > 1 {
				for i := 1; i < len(moves); i++ {
					ri := -1
					if level == 0 {
						ri = order[i]
					}
					queue.Add(p, searchJob{
						Path:  append(append([]int(nil), path...), moves[i].Encode()),
						Depth: depth - 1, Level: level, RootIdx: ri,
					})
				}
				await(len(moves) - 1)
			}
			return levelBest[level].Value(p)
		}

		for d := 1; d <= params.MaxDepth; d++ {
			score := pvsplit(b, nil, d, 0)
			for i := range rootMoves {
				sc, _ := scores.Lookup(p, uint64(i))
				lastScores[i] = int(sc)
			}
			sort.SliceStable(order, func(a, c int) bool {
				return lastScores[order[a]] > lastScores[order[c]]
			})
			res.Score = score
			res.BestMove = rootMoves[order[0]]
			if IsMateScore(score) {
				break
			}
		}
		queue.Close(p)
		fin.Wait(p)
		res.Nodes = int64(nodesAcc.Value(p))
	})
	res.Report = rep
	res.Runtime = rt
	return res
}
