package netsim

import (
	"fmt"

	"repro/internal/sim"
)

// Broadcast is the destination address meaning "all nodes but the
// sender".
const Broadcast = -1

// Params configures the physical network.
type Params struct {
	// BandwidthBps is the raw signalling rate. The paper's Ethernet
	// runs at 10 Mb/s.
	BandwidthBps int64
	// PropDelay is the one-way propagation plus controller latency.
	PropDelay sim.Time
	// FrameOverhead is per-frame wire overhead in bytes (preamble,
	// header, CRC, interframe gap).
	FrameOverhead int
	// MTU is the maximum payload per frame; larger messages fragment.
	MTU int
	// DropProb is the probability that a given receiver loses a given
	// fragment (buffer overrun, CRC error). Zero for a perfect net.
	DropProb float64
	// BroadcastCapable reports whether the hardware supports
	// broadcast. The point-to-point runtime system is measured on
	// networks without it; calling BroadcastFrame then panics so an
	// experiment cannot accidentally cheat.
	BroadcastCapable bool
}

// DefaultParams returns the testbed network of the paper: 10 Mb/s
// Ethernet, 1500-byte MTU, broadcast-capable, lossless.
func DefaultParams() Params {
	return Params{
		BandwidthBps:     10_000_000,
		PropDelay:        50 * sim.Microsecond,
		FrameOverhead:    42, // preamble 8 + MAC header/CRC 22 + IFG 12
		MTU:              1500,
		DropProb:         0,
		BroadcastCapable: true,
	}
}

// Frame is a message handed to the network. Payload travels by
// reference (the simulation shares memory); Size is the number of
// payload bytes the frame occupies on the wire and is what the
// bandwidth model uses.
type Frame struct {
	Src     int
	Dst     int // node id, or Broadcast
	Kind    string
	Size    int
	Payload any
}

// Delivery is what a node's handler receives: the frame plus the
// number of wire fragments it arrived in, which the kernel charges one
// interrupt each.
type Delivery struct {
	Frame     Frame
	Fragments int
	At        sim.Time
}

// Handler consumes deliveries for one node. Handlers run in event
// context and must not block; kernels enqueue into their own interrupt
// queues.
type Handler func(d Delivery)

// Stats aggregates wire-level measurements.
type Stats struct {
	Frames        int64 // fragments placed on the wire
	Messages      int64 // logical sends
	WireBytes     int64 // bytes on the wire including overhead
	PayloadBytes  int64
	Drops         int64 // per-receiver fragment losses
	FaultDrops    int64 // deliveries suppressed by an installed fault plan
	Interrupts    []int64
	BytesByKind   map[string]int64
	CountsByKind  map[string]int64
	BusBusy       sim.Time
	lastBusSample sim.Time
}

// Network is the shared bus connecting n nodes.
type Network struct {
	env       *sim.Env
	params    Params
	n         int
	handlers  []Handler
	down      []bool
	downCount int
	busFreeAt sim.Time
	faults    *FaultPlan
	stats     Stats
}

// New creates a network of n nodes with the given parameters.
func New(env *sim.Env, n int, params Params) *Network {
	if params.BandwidthBps <= 0 {
		panic("netsim: bandwidth must be positive")
	}
	if params.MTU <= 0 {
		panic("netsim: MTU must be positive")
	}
	return &Network{
		env:      env,
		params:   params,
		n:        n,
		handlers: make([]Handler, n),
		down:     make([]bool, n),
		stats: Stats{
			Interrupts:   make([]int64, n),
			BytesByKind:  map[string]int64{},
			CountsByKind: map[string]int64{},
		},
	}
}

// Nodes reports the number of attached nodes.
func (nw *Network) Nodes() int { return nw.n }

// Params returns the network configuration.
func (nw *Network) Params() Params { return nw.params }

// Handle registers the delivery handler for node.
func (nw *Network) Handle(node int, h Handler) {
	nw.handlers[node] = h
}

// SetDown marks a node crashed (true) or recovered (false). Down nodes
// neither send nor receive.
func (nw *Network) SetDown(node int, down bool) {
	if nw.down[node] != down {
		if down {
			nw.downCount++
		} else {
			nw.downCount--
		}
	}
	nw.down[node] = down
}

// Down reports whether node is marked crashed.
func (nw *Network) Down(node int) bool { return nw.down[node] }

// fragments reports how many wire frames a payload of size bytes needs.
func (nw *Network) fragments(size int) int {
	if size <= 0 {
		return 1
	}
	return (size + nw.params.MTU - 1) / nw.params.MTU
}

// FragmentsFor exposes the fragmentation rule; the group layer uses it
// to pick between the PB and BB methods ("over 1 packet").
func (nw *Network) FragmentsFor(size int) int { return nw.fragments(size) }

// transmit reserves the bus and returns the delivery time and fragment
// count.
func (nw *Network) transmit(f Frame) (deliverAt sim.Time, frags int) {
	frags = nw.fragments(f.Size)
	wireBytes := int64(f.Size) + int64(frags*nw.params.FrameOverhead)
	txDur := sim.Time(wireBytes * 8 * int64(sim.Second) / nw.params.BandwidthBps)
	start := nw.env.Now()
	if nw.busFreeAt > start {
		start = nw.busFreeAt
	}
	nw.busFreeAt = start + txDur
	nw.stats.BusBusy += txDur
	nw.stats.Frames += int64(frags)
	nw.stats.Messages++
	nw.stats.WireBytes += wireBytes
	nw.stats.PayloadBytes += int64(f.Size)
	nw.stats.BytesByKind[f.Kind] += wireBytes
	nw.stats.CountsByKind[f.Kind]++
	return nw.busFreeAt + nw.params.PropDelay, frags
}

// deliver schedules the frame's arrival at dst, applying loss.
func (nw *Network) deliver(f Frame, dst int, at sim.Time, frags int) {
	if nw.down[dst] || nw.handlers[dst] == nil {
		return
	}
	if nw.faults != nil {
		now := nw.env.Now()
		if nw.linkCut(f.Src, dst, now) {
			nw.stats.FaultDrops++
			nw.env.Tracef("net: partition cut %s %d->%d", f.Kind, f.Src, dst)
			return
		}
		if p := nw.linkLoss(f.Src, dst, now); p > 0 {
			for i := 0; i < frags; i++ {
				if nw.env.Rand().Float64() < p {
					nw.stats.FaultDrops++
					nw.env.Tracef("net: fault loss %s %d->%d", f.Kind, f.Src, dst)
					return
				}
			}
		}
	}
	// A message is lost to a receiver if any fragment is lost.
	if nw.params.DropProb > 0 {
		for i := 0; i < frags; i++ {
			if nw.env.Rand().Float64() < nw.params.DropProb {
				nw.stats.Drops++
				nw.env.Tracef("net: drop %s %d->%d", f.Kind, f.Src, dst)
				return
			}
		}
	}
	// Pooled schedule: nobody cancels an in-flight frame, so the event
	// comes from the scheduler's free list instead of the heap's churn.
	nw.env.Schedule(at, func() {
		if nw.down[dst] || nw.handlers[dst] == nil {
			return
		}
		nw.stats.Interrupts[dst] += int64(frags)
		nw.handlers[dst](Delivery{Frame: f, Fragments: frags, At: at})
	})
}

// SendFrame transmits a unicast frame. The send is fire-and-forget;
// reliability belongs to the protocols above.
func (nw *Network) SendFrame(f Frame) {
	if f.Dst == Broadcast {
		nw.BroadcastFrame(f)
		return
	}
	if f.Dst < 0 || f.Dst >= nw.n {
		panic(fmt.Sprintf("netsim: bad destination %d", f.Dst))
	}
	if nw.down[f.Src] {
		return
	}
	at, frags := nw.transmit(f)
	nw.deliver(f, f.Dst, at, frags)
}

// BroadcastFrame transmits a frame to every node except the sender.
// It panics if the hardware is not broadcast-capable, so experiments
// on point-to-point networks cannot accidentally use it.
func (nw *Network) BroadcastFrame(f Frame) {
	if !nw.params.BroadcastCapable {
		panic("netsim: broadcast on non-broadcast network")
	}
	if nw.down[f.Src] {
		return
	}
	f.Dst = Broadcast
	at, frags := nw.transmit(f)
	if nw.params.DropProb > 0 || nw.downCount > 0 || nw.faultsActive(nw.env.Now()) {
		// Per-receiver loss rolls, and the schedule-time down-node
		// filter (a node down at transmit time must not hear the frame
		// even if it recovers before the arrival instant), need the
		// general path.
		for dst := 0; dst < nw.n; dst++ {
			if dst == f.Src {
				continue
			}
			nw.deliver(f, dst, at, frags)
		}
		return
	}
	// Healthy lossless fast path: all receivers hear the frame at the
	// same instant, so one pooled event fans out to every handler in
	// node order — identical delivery order to the per-receiver events
	// it replaces, at a third of the event traffic.
	nw.env.Schedule(at, func() {
		for dst := 0; dst < nw.n; dst++ {
			if dst == f.Src || nw.down[dst] || nw.handlers[dst] == nil {
				continue
			}
			nw.stats.Interrupts[dst] += int64(frags)
			nw.handlers[dst](Delivery{Frame: f, Fragments: frags, At: at})
		}
	})
}

// MulticastFrame transmits a frame to the listed member nodes except
// the sender, modeling hardware multicast (the Amoeba testbed's
// Ethernet filtered multicast addresses in the controller): the bus is
// occupied exactly once, and only member NICs raise receive
// interrupts — every other node's hardware drops the frame for free.
// members must be sorted ascending so delivery order is deterministic.
func (nw *Network) MulticastFrame(f Frame, members []int) {
	if !nw.params.BroadcastCapable {
		panic("netsim: multicast on non-broadcast network")
	}
	if nw.down[f.Src] {
		return
	}
	f.Dst = Broadcast
	at, frags := nw.transmit(f)
	if nw.params.DropProb > 0 || nw.downCount > 0 || nw.faultsActive(nw.env.Now()) {
		for _, dst := range members {
			if dst == f.Src {
				continue
			}
			nw.deliver(f, dst, at, frags)
		}
		return
	}
	// Healthy lossless fast path, mirroring BroadcastFrame: one pooled
	// event fans out to the member handlers in node order.
	nw.env.Schedule(at, func() {
		for _, dst := range members {
			if dst == f.Src || nw.down[dst] || nw.handlers[dst] == nil {
				continue
			}
			nw.stats.Interrupts[dst] += int64(frags)
			nw.handlers[dst](Delivery{Frame: f, Fragments: frags, At: at})
		}
	})
}

// Stats returns a snapshot of the wire statistics.
func (nw *Network) Stats() Stats {
	s := nw.stats
	s.Interrupts = append([]int64(nil), nw.stats.Interrupts...)
	s.BytesByKind = map[string]int64{}
	for k, v := range nw.stats.BytesByKind {
		s.BytesByKind[k] = v
	}
	s.CountsByKind = map[string]int64{}
	for k, v := range nw.stats.CountsByKind {
		s.CountsByKind[k] = v
	}
	return s
}

// ResetStats zeroes the statistics, e.g. after a warm-up phase.
func (nw *Network) ResetStats() {
	nw.stats = Stats{
		Interrupts:   make([]int64, nw.n),
		BytesByKind:  map[string]int64{},
		CountsByKind: map[string]int64{},
	}
}

// TxTime reports how long a payload of size bytes occupies the bus,
// useful for analytical checks in tests.
func (nw *Network) TxTime(size int) sim.Time {
	frags := nw.fragments(size)
	wireBytes := int64(size) + int64(frags*nw.params.FrameOverhead)
	return sim.Time(wireBytes * 8 * int64(sim.Second) / nw.params.BandwidthBps)
}
