package tsp

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/orca"
	"repro/internal/sim"
)

// Crash-survival tests for the fault-tolerant TSP variant: a fault
// plan kills a worker machine mid-search and the run must still report
// the optimum a healthy run finds.

func ftConfig(seqOn int, crashes ...netsim.Crash) orca.Config {
	cfg := orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1, Sequencer: seqOn}
	if len(crashes) > 0 {
		cfg.Faults = &netsim.FaultPlan{Crashes: crashes}
	}
	return cfg
}

func TestFaultTolerantMatchesPlain(t *testing.T) {
	inst := Generate(12, 5)
	plain := RunOrca(ftConfig(0), inst, Params{})
	ft := RunOrca(ftConfig(0), inst, Params{FaultTolerant: true})
	if ft.Best != plain.Best {
		t.Fatalf("fault-tolerant run found %d, plain run %d", ft.Best, plain.Best)
	}
	if ft.Report.TimedOut {
		t.Fatal("fault-tolerant run timed out")
	}
}

func TestWorkerCrashStillFindsOptimum(t *testing.T) {
	inst := Generate(12, 5)
	plain := RunOrca(ftConfig(0), inst, Params{})
	half := plain.Report.Elapsed / 2
	r := RunOrca(ftConfig(0, netsim.Crash{Node: 3, At: half}), inst, Params{FaultTolerant: true})
	if r.Report.TimedOut {
		t.Fatalf("crash run timed out; blocked: %v", r.Report.Blocked)
	}
	if r.Best != plain.Best {
		t.Fatalf("crash run found %d, want optimum %d", r.Best, plain.Best)
	}
	if len(r.Report.Crashes) != 1 || r.Report.Crashes[0].Node != 3 {
		t.Fatalf("crash report = %+v", r.Report.Crashes)
	}
	if r.Report.Crashes[0].ProcsKilled != 1 {
		t.Fatalf("ProcsKilled = %d, want 1 (the node-3 worker)", r.Report.Crashes[0].ProcsKilled)
	}
	if r.Report.RTS.Crashes != 1 {
		t.Fatalf("RTS crash counter = %d", r.Report.RTS.Crashes)
	}
}

func TestSequencerCrashElectsAndFindsOptimum(t *testing.T) {
	// Put the group sequencer on the crashed machine: the survivors
	// must elect a new one and the search must still complete with the
	// true optimum.
	inst := Generate(12, 5)
	plain := RunOrca(ftConfig(0), inst, Params{})
	half := plain.Report.Elapsed / 2
	r := RunOrca(ftConfig(3, netsim.Crash{Node: 3, At: half}), inst, Params{FaultTolerant: true})
	if r.Report.TimedOut {
		t.Fatalf("sequencer-crash run timed out; blocked: %v", r.Report.Blocked)
	}
	if r.Best != plain.Best {
		t.Fatalf("sequencer-crash run found %d, want optimum %d", r.Best, plain.Best)
	}
	var elections int64
	for i, gs := range r.Runtime.GroupStats() {
		if i != 3 {
			elections += gs.Elections
		}
	}
	if elections == 0 {
		t.Fatal("no elections after the sequencer crashed")
	}
}

func TestCrashRunsAreDeterministic(t *testing.T) {
	inst := Generate(12, 5)
	run := func() (int, sim.Time, int64) {
		r := RunOrca(ftConfig(3, netsim.Crash{Node: 3, At: 800 * sim.Millisecond}), inst,
			Params{FaultTolerant: true})
		return r.Best, r.Report.Elapsed, r.Report.Net.Messages
	}
	b1, e1, m1 := run()
	b2, e2, m2 := run()
	if b1 != b2 || e1 != e2 || m1 != m2 {
		t.Fatalf("same seed, same fault plan, different runs: (%d,%v,%d) vs (%d,%v,%d)",
			b1, e1, m1, b2, e2, m2)
	}
}
