// Package examples_test keeps the example programs honest: every
// main under examples/ must keep building (and passing vet) against
// the current API, so API changes cannot silently rot the examples.
package examples_test

import (
	"os/exec"
	"testing"
)

// TestExamplesBuild vets (and therefore type-checks and builds) all
// example mains. `go test ./...` compiles them too, but only this
// test fails loudly with the compiler output when one drifts.
func TestExamplesBuild(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	out, err := exec.Command(goBin, "vet", "./...").CombinedOutput()
	if err != nil {
		t.Fatalf("go vet ./examples/...: %v\n%s", err, out)
	}
}
