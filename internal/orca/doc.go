// Package orca provides the programming model of the Orca language as
// an embedded Go API: processes and shared data-objects.
//
// The paper's Orca is a procedural language whose parallel constructs
// are `fork` (create a process, optionally on a chosen processor,
// passing shared objects by reference) and operations on shared
// objects, which are sequentially consistent and indivisible, with
// guarded operations for condition synchronization. This package
// reproduces exactly that semantic model; what a compiler front-end
// would add is syntax, not behaviour (see DESIGN.md for the
// substitution argument). The typed layer (typed.go) plays the role
// of Orca's static type checking: object types are built with a
// fluent TypeBuilder and operations are typed descriptors.
//
// A program is a function run as the main process on processor 0 of a
// simulated Amoeba multicomputer. It creates objects (Proc.New, or
// NewWith for per-object placement policies), forks workers
// (Proc.Fork), performs operations, and charges its computation in
// virtual time (Proc.Work). The runtime beneath is selected by
// Config.RTS; with Config.Mixed both runtimes share the machines.
// Config.Faults schedules machine crashes the run must survive, and
// Report.Crashes accounts for them.
//
// Downward: programs run against the package rts runtime systems on
// simulated amoeba machines. Upward: internal/orca/std provides the
// standard object types and internal/apps/* are the paper's four
// applications.
package orca
