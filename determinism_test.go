package repro

// Cross-app determinism regression tests. Every simulation is a pure
// function of its seed: running the same program twice must produce
// bit-identical virtual times and runtime counters. These tests guard
// the scheduler's (time, seq) total order — a refactor that silently
// perturbs event ordering shows up here as a fingerprint mismatch long
// before anyone notices a skewed speedup curve.
//
// The pinned fingerprints below were recorded before the fast-path
// scheduler rework (ready queue, event pool, cached op dispatch), so
// they also prove that rework preserves virtual-time results exactly.

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/apps/acp"
	"repro/internal/apps/atpg"
	"repro/internal/apps/chess"
	"repro/internal/apps/kv"
	"repro/internal/apps/tsp"
	"repro/internal/group"
	"repro/internal/netsim"
	"repro/internal/orca"
	"repro/internal/rts"
	"repro/internal/sim"
	"repro/internal/workload"
)

// fingerprint summarizes one run: virtual elapsed time, wire traffic,
// and the runtime counters that depend on event ordering. Crash runs
// additionally pin their crash records: a drifting crash instant or
// kill count is an ordering change like any other.
func fingerprint(rep orca.Report, rt *orca.Runtime) string {
	s := fmt.Sprintf("elapsed=%d frames=%d msgs=%d wire=%d payload=%d",
		int64(rep.Elapsed), rep.Net.Frames, rep.Net.Messages, rep.Net.WireBytes, rep.Net.PayloadBytes)
	for _, c := range rep.Crashes {
		s += fmt.Sprintf(" crash=%d@%d/%d", c.Node, int64(c.At), c.ProcsKilled)
	}
	if br, ok := rt.System().(*rts.BroadcastRTS); ok {
		lr, bw, gw := br.Stats()
		s += fmt.Sprintf(" reads=%d writes=%d guardwaits=%d", lr, bw, gw)
		if c := br.Counters(); c.BatchedOps > 0 {
			// Batched runs pin their combining-pipeline counters too;
			// unbatched runs keep the exact historical format.
			s += fmt.Sprintf(" batched=%d bframes=%d", c.BatchedOps, c.Frames)
		}
	}
	if mx, ok := rt.System().(*rts.MixedRTS); ok {
		c := mx.Counters()
		s += fmt.Sprintf(" reads=%d bwrites=%d guardwaits=%d rreads=%d pwrites=%d updates=%d",
			c.LocalReads, c.BcastWrites, c.GuardWaits, c.RemoteReads, c.P2PWrites, c.Updates)
	}
	for _, busy := range rep.CPUBusy {
		s += fmt.Sprintf(" cpu=%d", int64(busy))
	}
	if len(rep.Latency) > 0 {
		// Serving runs pin their full latency accounting: sample count,
		// virtual-time sum, and tail. Rendered in sorted name order —
		// appended after the historical fields so apps without
		// histograms keep their exact golden strings.
		names := make([]string, 0, len(rep.Latency))
		for n := range rep.Latency {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			h := rep.Latency[n]
			s += fmt.Sprintf(" %s=%d/%d/%d/%d", n, h.Count(), h.Sum(),
				int64(h.Percentile(0.99)), int64(h.Max()))
		}
	}
	return s
}

// apps is the cross-app determinism matrix: each entry runs a reduced
// instance of one paper application on 4 processors, seed 1.
var determinismApps = []struct {
	name string
	run  func() string
}{
	{"tsp", func() string {
		inst := tsp.Generate(10, 5)
		r := tsp.RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1}, inst, tsp.Params{})
		return fingerprint(r.Report, r.Runtime)
	}},
	{"tsp-p2p", func() string {
		inst := tsp.Generate(10, 5)
		r := tsp.RunOrca(orca.Config{Processors: 4, RTS: orca.P2PUpdate, Seed: 1}, inst, tsp.Params{})
		return fingerprint(r.Report, r.Runtime)
	}},
	{"tsp-mixed", func() string {
		inst := tsp.Generate(10, 5)
		r := tsp.RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Mixed: true, Seed: 1}, inst,
			tsp.Params{PrimaryCopyQueue: true})
		return fingerprint(r.Report, r.Runtime)
	}},
	{"tsp-batched", func() string {
		// TSP under the batching pipeline (sequencer frame packing +
		// write combining): virtual timings legitimately differ from
		// the unbatched run, so the variant pins its own golden. The
		// optimum must match the unbatched run's — the scale harness
		// asserts that; this test pins the full schedule.
		inst := tsp.Generate(10, 5)
		r := tsp.RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1,
			Batching: orca.DefaultBatching()}, inst, tsp.Params{})
		return fingerprint(r.Report, r.Runtime)
	}},
	{"tsp-crash", func() string {
		// Fault-tolerant TSP losing the worker-and-sequencer machine
		// mid-search: elections, job requeueing, and the recovery paths
		// of every layer are all under this fingerprint.
		inst := tsp.Generate(10, 5)
		r := tsp.RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1, Sequencer: 3,
			Faults: &netsim.FaultPlan{Crashes: []netsim.Crash{{Node: 3, At: 150 * sim.Millisecond}}}},
			inst, tsp.Params{FaultTolerant: true})
		return fingerprint(r.Report, r.Runtime)
	}},
	{"tsp-consensus-crash", func() string {
		// The same crash schedule under consensus sequencing: the
		// takeover ladder, quorum re-proposal, and noop filling replace
		// the election, and the whole recovery must replay bit-identically.
		inst := tsp.Generate(10, 5)
		r := tsp.RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1, Sequencer: 3,
			Protocol: group.Consensus,
			Faults:   &netsim.FaultPlan{Crashes: []netsim.Crash{{Node: 3, At: 150 * sim.Millisecond}}}},
			inst, tsp.Params{FaultTolerant: true})
		return fingerprint(r.Report, r.Runtime)
	}},
	{"acp", func() string {
		inst := acp.GeneratePropagation(16, 16, 12, 2)
		r := acp.RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1}, inst, acp.Params{})
		return fingerprint(r.Report, r.Runtime)
	}},
	{"acp-crash", func() string {
		// Fault-tolerant ACP losing a participant: retirement, orphan
		// claiming, and supervised termination under one fingerprint.
		inst := acp.GeneratePropagation(16, 16, 12, 2)
		r := acp.RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1,
			Faults: &netsim.FaultPlan{Crashes: []netsim.Crash{{Node: 2, At: 120 * sim.Millisecond}}}},
			inst, acp.Params{FaultTolerant: true})
		return fingerprint(r.Report, r.Runtime)
	}},
	{"chess", func() string {
		board, err := chess.FromFEN("r1bq1rk1/pp1n1ppp/2pbpn2/3p4/2PP4/2NBPN2/PP3PPP/R1BQ1RK1 w - - 0 1")
		if err != nil {
			panic(err)
		}
		r := chess.RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1},
			board, chess.Params{MaxDepth: 3, SharedTT: true, SharedKiller: true})
		return fingerprint(r.Report, r.Runtime)
	}},
	{"atpg", func() string {
		c := atpg.Generate(12, 5, 20, 42)
		r := atpg.RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1},
			c, atpg.AllFaults(c), atpg.Params{Mode: atpg.StaticFaultSim})
		return fingerprint(r.Report, r.Runtime)
	}},
	{"kv", func() string {
		// The serving store: open-loop Zipf traffic against mixed-policy
		// shards. The fingerprint additionally pins the full latency
		// histograms — count, virtual sum, p99, max per op class.
		r := kv.Run(orca.Config{Processors: 4, RTS: orca.Broadcast, Mixed: true, Seed: 1},
			kv.Params{Policy: kv.PolicyMixed, Workload: workload.Config{
				Keys: 512, Dist: workload.Zipf, Theta: 0.99,
				ReadFrac: 0.9, UpdateFrac: 0.05, Seed: 1,
				Rate: 4000, Duration: 50 * sim.Millisecond,
			}})
		return fmt.Sprintf("ops=%d acked=%d lost=%d ", r.Ops, r.AckedPuts, r.LostAcked) +
			fingerprint(r.Report, r.Runtime)
	}},
	{"kv-adaptive", func() string {
		// The adaptive placement controller on the phase-shift affinity
		// trace: shards migrate broadcast->primary mid-run and re-home
		// when the write traffic rotates. The migration count rides in
		// the fingerprint next to the usual schedule and histograms.
		r := kv.Run(orca.Config{Processors: 4, RTS: orca.Broadcast, Mixed: true, Seed: 1},
			kv.Params{Policy: kv.PolicyAdaptive, Shards: 4, AffineKeys: true,
				Adapt: rts.AdaptConfig{SampleEvery: 32, MinDwell: 10 * sim.Millisecond},
				Workload: workload.Config{
					Keys: 512, Dist: workload.Uniform,
					ReadFrac: 0.5, UpdateFrac: 0.25, Seed: 7,
					Rate: 6000, Duration: 200 * sim.Millisecond,
					ShiftFrac: 0.5, Partitions: 4, LocalFrac: 0.9,
				}})
		return fmt.Sprintf("ops=%d acked=%d lost=%d mig=%d ", r.Ops, r.AckedPuts, r.LostAcked, r.Report.RTS.Migrations) +
			fingerprint(r.Report, r.Runtime)
	}},
	{"kv-crash", func() string {
		// The serving store losing a client machine mid-run, replicated
		// shards: the audit must find every acknowledged write, and the
		// whole schedule (including the crash) must replay bit-identically.
		r := kv.Run(orca.Config{Processors: 4, RTS: orca.Broadcast, Mixed: true, Seed: 1,
			Faults: &netsim.FaultPlan{Crashes: []netsim.Crash{{Node: 3, At: 25 * sim.Millisecond}}}},
			kv.Params{Policy: kv.PolicyReplicated, Workload: workload.Config{
				Keys: 512, Dist: workload.Zipf, Theta: 0.99,
				ReadFrac: 0.9, UpdateFrac: 0.05, Seed: 1,
				Rate: 4000, Duration: 50 * sim.Millisecond,
			}})
		return fmt.Sprintf("ops=%d acked=%d lost=%d ", r.Ops, r.AckedPuts, r.LostAcked) +
			fingerprint(r.Report, r.Runtime)
	}},
}

// TestCrossAppDeterminism runs each application twice with the same
// seed and requires identical fingerprints.
func TestCrossAppDeterminism(t *testing.T) {
	for _, app := range determinismApps {
		app := app
		t.Run(app.name, func(t *testing.T) {
			a, b := app.run(), app.run()
			if a != b {
				t.Fatalf("same seed, different runs:\n  first:  %s\n  second: %s", a, b)
			}
			t.Logf("fingerprint: %s", a)
		})
	}
}

// goldenFingerprints pins the exact pre-refactor virtual-time results
// (tsp-mixed: as recorded when the mixed runtime was introduced). A
// mismatch means the scheduler or runtime changed the simulated
// outcome, not just its wall-clock cost. Update these only with a
// change that is *meant* to alter simulated timing, and say so in the
// commit message.
var goldenFingerprints = map[string]string{
	"tsp-batched":         "elapsed=306115400 frames=203 msgs=203 wire=43248 payload=34722 reads=36630 writes=111 guardwaits=3 batched=103 bframes=26 cpu=304238000 cpu=246272000 cpu=246556000 cpu=247192000",
	"tsp-consensus-crash": "elapsed=1980147200 frames=973 msgs=973 wire=107714 payload=66848 crash=3@150000000/1 reads=36683 writes=310 guardwaits=0 cpu=488382000 cpu=401386000 cpu=424276000 cpu=1922636600",
	"tsp-crash":           "elapsed=2170459800 frames=528 msgs=528 wire=78977 payload=56801 crash=3@150000000/1 reads=36684 writes=310 guardwaits=0 cpu=425614000 cpu=327868000 cpu=328374000 cpu=2141755600",
	"acp-crash":           "elapsed=302651400 frames=826 msgs=826 wire=107269 payload=72577 crash=2@120000000/1 reads=993 writes=402 guardwaits=0 cpu=169739000 cpu=192209000 cpu=268015400 cpu=195733800",
	"tsp-p2p":             "elapsed=309479400 frames=254 msgs=254 wire=34536 payload=23868 cpu=305882000 cpu=234152000 cpu=233448000 cpu=234660000",
	"tsp-mixed":           "elapsed=317604000 frames=157 msgs=157 wire=25941 payload=19347 reads=36616 bwrites=12 guardwaits=8 rreads=0 pwrites=201 updates=0 cpu=317009000 cpu=222118000 cpu=219396000 cpu=215382000",
	"tsp":                 "elapsed=324031600 frames=315 msgs=315 wire=48906 payload=35676 reads=36628 writes=213 guardwaits=2 cpu=323777000 cpu=271226000 cpu=268632000 cpu=266272000",
	"acp":                 "elapsed=279995800 frames=913 msgs=913 wire=116504 payload=78158 reads=983 writes=441 guardwaits=3 cpu=187486000 cpu=187704400 cpu=185154000 cpu=188186000",
	"chess":               "elapsed=1958225600 frames=847 msgs=847 wire=82539 payload=46965 reads=931 writes=516 guardwaits=87 cpu=1537858000 cpu=1090096000 cpu=1094636000 cpu=1464496000",
	"atpg":                "elapsed=69011200 frames=82 msgs=82 wire=15233 payload=11789 reads=5358 writes=43 guardwaits=4 cpu=48903000 cpu=49534000 cpu=56598000 cpu=40530000",
	"kv":                  "ops=208 acked=9 lost=0 elapsed=83656200 frames=228 msgs=228 wire=21297 payload=11721 reads=118 bwrites=20 guardwaits=4 rreads=83 pwrites=10 updates=0 cpu=22485000 cpu=38680000 cpu=19740000 cpu=31860000 kv.all=208/327430733/5767167/6376104 kv.get=186/290239671/5767167/6376104 kv.put=9/11467954/2630741/2630741 kv.update=13/25723108/4296403/4296403",
	"kv-adaptive":         "ops=1201 acked=316 lost=0 mig=8 elapsed=430296246 frames=901 msgs=901 wire=84479 payload=46637 reads=579 bwrites=76 guardwaits=4 rreads=278 pwrites=532 updates=0 cpu=147070000 cpu=102865000 cpu=97335000 cpu=91545000 kv.all=1201/2674052400/17825791/21321934 kv.get=603/1295845426/17825791/21321934 kv.put=316/685116982/15728639/18560386 kv.update=282/693089992/17825791/21107934",
	"kv-crash":            "ops=172 acked=6 lost=0 elapsed=81301295 frames=62 msgs=62 wire=6210 payload=3606 crash=3@25000000/1 reads=169 bwrites=24 guardwaits=4 rreads=0 pwrites=0 updates=0 cpu=13295000 cpu=11540000 cpu=11150000 cpu=7230000 kv.all=172/24418859/1835007/2113896 kv.get=155/10057938/950271/1810602 kv.put=6/3894539/1078000/1078000 kv.update=11/10466382/2113896/2113896",
}

// TestGoldenFingerprints compares each app's fingerprint against the
// pinned pre-refactor value.
func TestGoldenFingerprints(t *testing.T) {
	for _, app := range determinismApps {
		app := app
		t.Run(app.name, func(t *testing.T) {
			want := goldenFingerprints[app.name]
			if want == "" {
				t.Skip("no golden fingerprint recorded")
			}
			if got := app.run(); got != want {
				t.Fatalf("fingerprint drifted from pre-refactor golden:\n  got:  %s\n  want: %s", got, want)
			}
		})
	}
}
