package repro

// Documentation checks: every relative markdown link must resolve,
// every repo path PAPER_MAP.md names must exist, and every test it
// cites must still be defined. The CI markdown step runs exactly this
// test, so the docs cannot rot silently.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var (
	mdLinkRe   = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	codePathRe = regexp.MustCompile("`((?:internal|examples|cmd)/[A-Za-z0-9_./-]*)`")
	testNameRe = regexp.MustCompile("`(Test[A-Za-z0-9_]+)`")
)

// TestMarkdownLinks verifies that relative links in all top-level
// *.md files point at files or directories that exist.
func TestMarkdownLinks(t *testing.T) {
	mds, err := filepath.Glob("*.md")
	if err != nil || len(mds) == 0 {
		t.Fatalf("no markdown files found (%v)", err)
	}
	for _, md := range mds {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLinkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.FromSlash(target)); err != nil {
				t.Errorf("%s: broken relative link %q", md, m[1])
			}
		}
	}
}

// TestPaperMapReferences keeps PAPER_MAP.md honest: every repo path
// it names in backticks must exist, and every `TestXxx` it cites must
// be defined in some _test.go file.
func TestPaperMapReferences(t *testing.T) {
	data, err := os.ReadFile("PAPER_MAP.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, m := range codePathRe.FindAllStringSubmatch(text, -1) {
		p := filepath.FromSlash(m[1])
		if _, err := os.Stat(p); err != nil {
			t.Errorf("PAPER_MAP.md names %q, which does not exist", m[1])
		}
	}

	defined := map[string]bool{}
	funcRe := regexp.MustCompile(`func (Test[A-Za-z0-9_]+)\(`)
	err = filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, "_test.go") {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range funcRe.FindAllStringSubmatch(string(src), -1) {
			defined[m[1]] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range testNameRe.FindAllStringSubmatch(text, -1) {
		if !defined[m[1]] {
			t.Errorf("PAPER_MAP.md cites %s, which is not defined in any _test.go", m[1])
		}
	}
}
