package group

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/amoeba"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// consensusCfg selects the replicated-log protocol with tight
// recovery timers.
func consensusCfg(c *Config) {
	c.Protocol = Consensus
	c.SenderTimeout = 50 * sim.Millisecond
	c.SenderRetries = 3
	c.GapTimeout = 25 * sim.Millisecond
	c.Heartbeat = 100 * sim.Millisecond
	c.ProposeTimeout = 20 * sim.Millisecond
}

func TestConsensusTotalOrderLossless(t *testing.T) {
	h := newHarness(11, 4, nil, consensusCfg)
	const perNode = 25
	for i := range h.ms {
		i := i
		h.ms[i].SpawnThread("producer", func(p *sim.Proc) {
			for k := 0; k < perNode; k++ {
				h.gs[i].Broadcast(p, "msg", fmt.Sprintf("n%d-%d", i, k), 100)
				p.Sleep(sim.Time(1+i) * sim.Millisecond)
			}
		})
	}
	h.env.RunUntil(20 * sim.Second)
	h.checkAgreement(t, 4*perNode, nil)
	h.checkNoDuplicates(t, nil)
	st := h.gs[1].Stats()
	if st.Takeovers != 0 || st.Elections != 0 {
		t.Fatalf("healthy run recovered: takeovers=%d elections=%d", st.Takeovers, st.Elections)
	}
	h.env.Stop()
	h.env.Shutdown()
}

// TestConsensusQuorumGatesDelivery: a slot must be replicated on a
// majority before anyone applies it. With every member but the leader
// unreachable, nothing may be delivered — the elected-sequencer
// protocol would happily deliver locally.
func TestConsensusQuorumGatesDelivery(t *testing.T) {
	h := newHarness(17, 4, nil, consensusCfg)
	h.net.InstallFaults(&netsim.FaultPlan{Partitions: []netsim.Partition{
		{A: []int{0}, B: []int{1, 2, 3}, From: 0, Until: 400 * sim.Millisecond},
	}}, nil)
	h.ms[0].SpawnThread("producer", func(p *sim.Proc) {
		h.gs[0].Broadcast(p, "msg", "isolated", 100)
		p.Sleep(300 * sim.Millisecond)
		if len(h.logs[0]) != 0 {
			t.Errorf("leader delivered %d messages without a quorum", len(h.logs[0]))
		}
	})
	h.env.RunUntil(10 * sim.Second)
	// After the partition heals the op commits everywhere.
	h.checkAgreement(t, 1, nil)
	h.env.Stop()
	h.env.Shutdown()
}

func TestConsensusLeaderCrashTakeover(t *testing.T) {
	h := newHarness(31, 4, nil, consensusCfg)
	for i := 1; i < 4; i++ {
		i := i
		h.ms[i].SpawnThread("producer", func(p *sim.Proc) {
			for k := 0; k < 10; k++ {
				h.gs[i].Broadcast(p, "pre", k, 100)
				p.Sleep(2 * sim.Millisecond)
			}
			p.Sleep(100 * sim.Millisecond)
			if i == 1 {
				h.ms[0].Crash()
			}
			for k := 0; k < 10; k++ {
				h.gs[i].Broadcast(p, "post", k, 100)
				p.Sleep(2 * sim.Millisecond)
			}
		})
	}
	h.env.RunUntil(30 * sim.Second)
	skip := map[int]bool{0: true}
	h.checkAgreement(t, 60, skip)
	h.checkNoDuplicates(t, skip)
	var takeovers, elections, reproposals int64
	var recovery sim.Time
	newLeader := -1
	for i := 1; i < 4; i++ {
		st := h.gs[i].Stats()
		takeovers += st.Takeovers
		elections += st.Elections
		reproposals += st.Reproposals
		if st.RecoveryTime > recovery {
			recovery = st.RecoveryTime
		}
		if h.gs[i].IsSequencer() {
			newLeader = i
		}
	}
	if takeovers == 0 {
		t.Fatal("no survivor took the log over")
	}
	if elections != 0 {
		t.Fatalf("consensus crash recovery ran %d elections", elections)
	}
	if reproposals == 0 {
		t.Fatal("takeover re-proposed nothing; in-flight slots should have been re-proposed")
	}
	if recovery == 0 {
		t.Fatal("no recovery time accounted")
	}
	if newLeader == -1 {
		t.Fatal("no live member leads after the crash")
	}
	for i := 1; i < 4; i++ {
		if got := h.gs[i].Sequencer(); got != newLeader {
			t.Fatalf("node %d thinks the leader is %d, want %d", i, got, newLeader)
		}
	}
	h.env.Stop()
	h.env.Shutdown()
}

// TestConsensusBatchCrashFrames: the leader crashes with packed
// frames partially replicated; the takeover re-proposes the surviving
// partial frame and every survivor observes identical More boundaries.
func TestConsensusBatchCrashFrames(t *testing.T) {
	h := newHarness(31, 4, nil, func(c *Config) {
		consensusCfg(c)
		batchCfg(4, 1<<20, sim.Millisecond)(c)
	})
	for i := 1; i < 4; i++ {
		i := i
		h.ms[i].SpawnThread("producer", func(p *sim.Proc) {
			send := func(tag string, k int) {
				ops := make([]BatchOp, 3)
				for j := range ops {
					ops[j] = BatchOp{Kind: "msg", Body: fmt.Sprintf("n%d-%s%d-%d", i, tag, k, j), Size: 100}
				}
				h.gs[i].BroadcastBatch(p, ops, nil)
			}
			for k := 0; k < 4; k++ {
				send("pre", k)
				p.Sleep(2 * sim.Millisecond)
			}
			if i == 1 {
				h.ms[0].Crash()
			}
			for k := 0; k < 4; k++ {
				send("post", k)
				p.Sleep(2 * sim.Millisecond)
			}
		})
	}
	h.env.RunUntil(30 * sim.Second)
	skip := map[int]bool{0: true}
	h.checkAgreement(t, 3*8*3, skip)
	h.checkFrameAgreement(t, skip)
	h.checkNoDuplicates(t, skip)
	h.env.Stop()
	h.env.Shutdown()
}

// consensusRunFingerprint replays one seed through a partition window
// that overlaps a sequencer crash — the fault-matrix cell no other
// test covered — and fingerprints the full outcome.
func consensusRunFingerprint(t *testing.T, seed int64, protocol Protocol) string {
	t.Helper()
	h := newHarness(seed, 4, nil, func(c *Config) {
		c.SenderTimeout = 50 * sim.Millisecond
		c.SenderRetries = 3
		c.GapTimeout = 25 * sim.Millisecond
		c.Heartbeat = 100 * sim.Millisecond
		c.ElectionWait = 60 * sim.Millisecond
		c.Protocol = protocol
	})
	// The partition separates {1} from {2,3} while the sequencer (0)
	// crashes mid-window: recovery must wait for a quorum to be
	// mutually reachable again and still lose nothing.
	h.net.InstallFaults(&netsim.FaultPlan{
		Crashes: []netsim.Crash{{Node: 0, At: 80 * sim.Millisecond}},
		Partitions: []netsim.Partition{
			{A: []int{1}, B: []int{2, 3}, From: 60 * sim.Millisecond, Until: 400 * sim.Millisecond},
		},
	}, func(node int) { h.ms[node].Crash() })
	for i := 1; i < 4; i++ {
		i := i
		h.ms[i].SpawnThread("producer", func(p *sim.Proc) {
			for k := 0; k < 12; k++ {
				h.gs[i].Broadcast(p, "m", fmt.Sprintf("n%d-%d", i, k), 100)
				p.Sleep(sim.Time(5+3*i) * sim.Millisecond)
			}
		})
	}
	h.env.RunUntil(120 * sim.Second)
	skip := map[int]bool{0: true}
	h.checkAgreement(t, 36, skip)
	h.checkNoDuplicates(t, skip)
	var fp strings.Builder
	fmt.Fprintf(&fp, "uids=%v", h.uidLogs[1])
	for i := 1; i < 4; i++ {
		st := h.gs[i].Stats()
		fmt.Fprintf(&fp, " n%d=(d%d,e%d,t%d)", i, st.Delivered, st.Elections, st.Takeovers)
	}
	h.env.Stop()
	h.env.Shutdown()
	return fp.String()
}

// TestPartitionOverlappingCrash: both recovery paths (election and
// consensus takeover) survive a partition window overlapping the
// sequencer crash, and both are bit-deterministic across re-runs.
func TestPartitionOverlappingCrash(t *testing.T) {
	for _, pr := range []Protocol{ElectedSequencer, Consensus} {
		pr := pr
		t.Run(pr.String(), func(t *testing.T) {
			a := consensusRunFingerprint(t, 77, pr)
			b := consensusRunFingerprint(t, 77, pr)
			if a != b {
				t.Fatalf("non-deterministic recovery:\n run1 %s\n run2 %s", a, b)
			}
		})
	}
}

// TestConsensusLateJoin: with AllowJoin, a member configured in the
// group but started late bootstraps its log position with a majority
// read and catches up to the full stream.
func TestConsensusLateJoin(t *testing.T) {
	env := sim.New(91)
	nw := netsim.New(env, 4, netsim.DefaultParams())
	cfg := DefaultConfig([]int{0, 1, 2, 3})
	consensusCfg(&cfg)
	cfg.AllowJoin = true
	ms := make([]*amoeba.Machine, 4)
	gs := make([]*Member, 4)
	logs := make([][]Delivery, 4)
	consume := func(i int) {
		ms[i].SpawnThread("consumer", func(p *sim.Proc) {
			for {
				d, ok := gs[i].Deliveries().Get(p)
				if !ok {
					return
				}
				logs[i] = append(logs[i], d)
			}
		})
	}
	for i := 0; i < 3; i++ {
		ms[i] = amoeba.NewMachine(env, nw, i, amoeba.DefaultCosts())
		gs[i] = Join(ms[i], cfg)
		consume(i)
	}
	ms[1].SpawnThread("producer", func(p *sim.Proc) {
		for k := 0; k < 30; k++ {
			gs[1].Broadcast(p, "m", k, 64)
			p.Sleep(5 * sim.Millisecond)
		}
	})
	env.At(80*sim.Millisecond, func() {
		ms[3] = amoeba.NewMachine(env, nw, 3, amoeba.DefaultCosts())
		gs[3] = JoinLate(ms[3], cfg)
		consume(3)
	})
	env.RunUntil(30 * sim.Second)
	if len(logs[0]) != 30 {
		t.Fatalf("node 0 delivered %d, want 30", len(logs[0]))
	}
	// The joiner adopts the whole log: history is retained for it
	// until its first status report, so it replays from slot 1.
	if len(logs[3]) != 30 {
		t.Fatalf("late joiner delivered %d, want 30", len(logs[3]))
	}
	for k := range logs[0] {
		if logs[3][k].UID != logs[0][k].UID {
			t.Fatalf("joiner diverges at %d", k)
		}
	}
	env.Stop()
	env.Shutdown()
}

// TestConfigValidate: invalid configurations fail fast, before any
// machine state exists.
func TestConfigValidate(t *testing.T) {
	base := func() Config { return DefaultConfig([]int{0, 1, 2}) }
	cases := []struct {
		name string
		mut  func(*Config)
		want string // substring of the error; "" = valid
	}{
		{"default", func(c *Config) {}, ""},
		{"consensus", func(c *Config) { c.Protocol = Consensus }, ""},
		{"empty-membership", func(c *Config) { c.Members = nil }, "empty membership"},
		{"negative-member", func(c *Config) { c.Members = []int{0, -2, 1} }, "negative member"},
		{"duplicate-member", func(c *Config) { c.Members = []int{0, 1, 1} }, "duplicate member"},
		{"bad-method", func(c *Config) { c.Method = Method(9) }, "unknown method"},
		{"bad-protocol", func(c *Config) { c.Protocol = Protocol(9) }, "unknown protocol"},
		{"consensus-bb", func(c *Config) { c.Protocol = Consensus; c.Method = ForceBB },
			"ForceBB is incompatible"},
		{"consensus-no-timeout", func(c *Config) { c.Protocol = Consensus; c.ProposeTimeout = 0 },
			"positive ProposeTimeout"},
		{"join-without-consensus", func(c *Config) { c.AllowJoin = true },
			"AllowJoin requires"},
		{"negative-batch", func(c *Config) { c.Batch = BatchConfig{MaxOps: -1} }, "batch"},
		{"batch-no-linger", func(c *Config) { c.Batch = BatchConfig{MaxOps: 4, MaxBytes: 1 << 20} },
			"positive Linger"},
		{"sharded", func(c *Config) { c.Shard = 2; c.ShardCount = 3 }, ""},
		{"negative-shard-count", func(c *Config) { c.ShardCount = -1 }, "negative shard count"},
		{"shard-out-of-range", func(c *Config) { c.Shard = 3; c.ShardCount = 3 }, "out of range"},
		{"shard-without-count", func(c *Config) { c.Shard = 1 }, "without a shard count"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			err := cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestJoinValidatePanics: Join refuses an invalid config outright.
func TestJoinValidatePanics(t *testing.T) {
	env := sim.New(1)
	nw := netsim.New(env, 2, netsim.DefaultParams())
	m := amoeba.NewMachine(env, nw, 0, amoeba.DefaultCosts())
	defer func() {
		if recover() == nil {
			t.Fatal("Join accepted an invalid config")
		}
		env.Stop()
		env.Shutdown()
	}()
	cfg := DefaultConfig([]int{0, 1})
	cfg.Protocol = Consensus
	cfg.Method = ForceBB
	Join(m, cfg)
}
