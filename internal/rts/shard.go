package rts

import (
	"errors"
	"fmt"

	"repro/internal/amoeba"
	"repro/internal/group"
	"repro/internal/sim"
)

// Sharded total order — N independent sequencer groups on the same
// simulated machines, with broadcast objects sharded across them.
//
// One sequencer group gives one total order for every shared object,
// which caps scale-out no matter how well the sequencer batches: every
// write in the program funnels through a single ordering pipe. A
// ShardedRTS hosts N BroadcastRTS instances ("shards"), each over its
// own group.Member set bound to a distinct kernel port, and assigns
// every object to exactly one shard at creation — by hash of the
// object id, or explicitly through the policy API. Per-object
// operations route to the owning shard, so each object keeps the exact
// sequential-consistency guarantees of a solitary BroadcastRTS while
// unrelated objects sequence concurrently through independent
// sequencers.
//
// Each shard may span a subset of the machines (its replication
// domain): the group multicast then interrupts only domain NICs, the
// domain's machines are the only ones applying the shard's writes, and
// machines outside a domain reach its objects through the forwarder
// RPC. Domains are what turn sharding into real scale-out — with
// all-machine spans every machine still pays the receive-and-apply
// cost of every write in the program, and sharding only distributes
// the sequencers' own work.
//
// Cross-shard operations (forks, multi-object transactions spanning
// shards) stay deterministic through a sequenced fence: a two-phase
// "reserve a slot in every touched shard in ascending shard order,
// release when the last reservation delivers" barrier (see
// InvokeFenced and ForkFence below).
type ShardedRTS struct {
	subs     []*BroadcastRTS
	machines []*amoeba.Machine
	ids      *idAlloc      // shared: ids unique across shards
	owner    map[ObjID]int // object -> shard
	inSpan   [][]bool      // [shard][node]

	extra func(node int, body any)

	// fences holds the per-machine in-flight fence records, keyed by
	// fence id. fenceAborted marks fences presumed aborted after their
	// initiator crashed mid-reservation: late deliveries of an aborted
	// fence complete without pausing or applying (see NodeCrashed).
	fences       []map[int64]*fenceRec
	fenceAborted []map[int64]bool
	fenceSeq     int64

	fencedOps int64
}

var (
	_ System      = (*ShardedRTS)(nil)
	_ LocalReader = (*ShardedRTS)(nil)
	_ StatsSource = (*ShardedRTS)(nil)
	_ CrashAware  = (*ShardedRTS)(nil)
)

// ShardDef describes one sequencer group of a ShardedRTS: the group
// endpoints (already joined, on a port distinct per shard) and the
// global node ids they live on, ascending. Members[i] must be joined
// on node Span[i].
type ShardDef struct {
	Members []*group.Member
	Span    []int
}

// FencedOp is one write of a cross-shard fenced invocation (see
// InvokeFenced).
type FencedOp struct {
	ID   ObjID
	Op   string
	Args []any
}

// wireFence is the fence message sequenced into every covered shard's
// stream. A pausing fence (Pause) carries the fenced writes; a barrier
// fence carries an opaque body handed to the extra handler on the
// target machine when the last covered shard delivers there.
type wireFence struct {
	FID    int64
	Shards []int // covered shards, ascending
	Target int   // barrier: machine whose extra handler fires (-1: pausing)
	Body   any   // barrier payload
	Ops    []FencedOp
	Pause  bool
}

// fenceRec tracks one fence's arrivals on one machine.
type fenceRec struct {
	expect  int // covered shards spanning this machine
	arrived int
	src     int // initiating machine (pausing fences; -1 until known)
	done    bool
	aborted bool
	cond    sim.Cond
}

// NewShardedRTS builds the sharded runtime over machines (all nodes of
// the simulation, by node id) and one ShardDef per sequencer group.
// Every machine must lie in at least one shard's span, so creations
// and fence-routed forks always have a local group to travel.
func NewShardedRTS(reg *Registry, costs Costs, machines []*amoeba.Machine, shards []ShardDef) *ShardedRTS {
	if len(shards) < 2 {
		panic("rts: a sharded runtime needs at least two shards (use BroadcastRTS for one)")
	}
	s := &ShardedRTS{
		machines:     machines,
		owner:        make(map[ObjID]int),
		fences:       make([]map[int64]*fenceRec, len(machines)),
		fenceAborted: make([]map[int64]bool, len(machines)),
	}
	for i := range s.fences {
		s.fences[i] = make(map[int64]*fenceRec)
		s.fenceAborted[i] = make(map[int64]bool)
	}
	covered := make([]bool, len(machines))
	for k, def := range shards {
		sub := make([]*amoeba.Machine, len(def.Span))
		in := make([]bool, len(machines))
		for i, id := range def.Span {
			if i > 0 && def.Span[i-1] >= id {
				panic(fmt.Sprintf("rts: shard %d span %v not ascending", k, def.Span))
			}
			sub[i] = machines[id]
			in[id] = true
			covered[id] = true
		}
		br := newBroadcastRTSAt(reg, costs, sub, def.Members, def.Span, fmt.Sprintf("%s%d", fwdPort, k))
		br.fence = s.handleFence
		if s.ids == nil {
			s.ids = br.ids
		} else {
			br.ids = s.ids // fuse: ids unique across all shards
		}
		s.subs = append(s.subs, br)
		s.inSpan = append(s.inSpan, in)
	}
	for id, ok := range covered {
		if !ok {
			panic(fmt.Sprintf("rts: node %d lies in no shard span", id))
		}
	}
	return s
}

// Shards reports the sequencer-group count.
func (s *ShardedRTS) Shards() int { return len(s.subs) }

// Shard exposes one sequencer group's runtime (statistics, tests).
func (s *ShardedRTS) Shard(k int) *BroadcastRTS { return s.subs[k] }

// ShardOf reports the shard hosting an object.
func (s *ShardedRTS) ShardOf(id ObjID) int {
	k, ok := s.owner[id]
	if !ok {
		panic(fmt.Sprintf("rts: unknown object %d", id))
	}
	return k
}

// Nodes implements System: the total machine count.
func (s *ShardedRTS) Nodes() int { return len(s.machines) }

// EnableBatching turns on the write-combining pipeline in every shard
// (see BroadcastRTS.EnableBatching).
func (s *ShardedRTS) EnableBatching(bc group.BatchConfig) {
	for _, sub := range s.subs {
		sub.EnableBatching(bc)
	}
}

// SetExtraHandler installs the callback for unrecognized group bodies
// and barrier-fence payloads (the Orca layer's fork messages).
func (s *ShardedRTS) SetExtraHandler(h func(node int, body any)) {
	s.extra = h
	for _, sub := range s.subs {
		sub.SetExtraHandler(h)
	}
}

// NodeCrashed implements CrashAware, forwarding to every shard. A
// crash of one shard's sequencer is that shard's problem alone: the
// other groups' sequencers are distinct machines (or at least distinct
// elections), so their streams keep delivering while the crashed
// shard recovers.
func (s *ShardedRTS) NodeCrashed(node int) {
	for _, sub := range s.subs {
		sub.NodeCrashed(node)
	}
	s.presumeAbort(node)
}

// fenceAbortGrace is how long a pausing fence whose initiator crashed
// may stay incomplete before it is presumed aborted. The grace must
// exceed the sequencing latency of the initiator's last in-flight
// reservation broadcast: after that long, a still-missing arrival can
// only mean the initiator died between reservations and the fence can
// never complete.
const fenceAbortGrace = 250 * sim.Millisecond

// presumeAbort scans for pausing fences initiated by the crashed
// machine and, if any are still incomplete after fenceAbortGrace,
// releases the shards they paused without applying the fenced writes.
// The decision is made once, globally — modelling the abort record a
// real shard sequencer would time out and broadcast, without
// simulating its messages (the same modelling rehome uses for the
// point-to-point recovery round). A single global decision point keeps
// the outcome consistent: a fence either executes on every machine or
// on none.
func (s *ShardedRTS) presumeAbort(node int) {
	watch := -1
	for i, m := range s.machines {
		if !m.Crashed() {
			watch = i
			break
		}
	}
	if watch == -1 {
		return
	}
	s.machines[watch].SpawnThread("fence-abort", func(p *sim.Proc) {
		// The scan waits out the grace rather than running at the crash
		// instant: the initiator's last reservation broadcast may still
		// be in flight when the machine dies, so its record only shows
		// up in the fence tables after delivery. A fence found
		// incomplete this long after the crash can never complete — a
		// fully sequenced fence finishes on every machine within normal
		// delivery latency of the crash, far inside the grace.
		p.Sleep(fenceAbortGrace)
		var fids []int64
		seen := make(map[int64]bool)
		for _, m := range s.fences {
			for fid, rec := range m {
				if rec.src == node && !rec.done && !seen[fid] {
					fids = append(fids, fid)
					seen[fid] = true
				}
			}
		}
		sortInt64s(fids)
		for _, fid := range fids {
			for i := range s.fences {
				s.fenceAborted[i][fid] = true
				if r, ok := s.fences[i][fid]; ok {
					r.aborted = true
					r.done = true
					r.cond.Broadcast()
					delete(s.fences[i], fid)
				}
			}
			p.Env().Tracef("rts: fence %d presumed aborted (initiator %d crashed mid-reservation)", fid, node)
		}
	})
}

// sortInt64s sorts a small int64 slice (insertion sort, like sortInts).
func sortInt64s(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// hashShard spreads object ids over n shards (Fibonacci hashing; ids
// are sequential, so the low bits alone would stripe, not spread).
func hashShard(id ObjID, n int) int {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return int((h >> 33) % uint64(n))
}

// sub resolves the shard runtime hosting an object.
func (s *ShardedRTS) sub(id ObjID) *BroadcastRTS {
	return s.subs[s.ShardOf(id)]
}

// syncSwitch re-points the worker's write-combining buffer when an
// operation targets a different shard than the buffered writes: the
// buffer drains into its own shard first (program order must reach the
// total order before the cross-shard op), then follows the worker to
// the new shard's manager. A worker streaming into one shard never
// pays this; ping-ponging across shards degrades to one frame per
// switch — placement, not the runtime, is the lever there.
func (s *ShardedRTS) syncSwitch(w *Worker, sub *BroadcastRTS) {
	b := w.batch
	if b == nil || b.mgr == nil || b.mgr.rts == sub {
		return
	}
	b.sync(w)
	if mg := sub.mgr(w.Node()); mg != nil {
		b.mgr = mg
	}
}

// Create implements System: the object lands on the shard its id
// hashes to, among the shards whose span contains the creator.
func (s *ShardedRTS) Create(w *Worker, typeName string, args ...any) ObjID {
	return s.CreateSharded(w, typeName, -1, nil, args...)
}

// CreateSharded creates a broadcast object on the given sequencer
// group (shard < 0: hash of the object id over the shards whose span
// contains the creator), optionally replicated on only the given
// nodes (nil: the whole shard span). The creator must lie in the
// chosen shard's span.
func (s *ShardedRTS) CreateSharded(w *Worker, typeName string, shard int, nodes []int, args ...any) ObjID {
	node := w.Node()
	if shard < 0 {
		var elig []int
		for k := range s.subs {
			if s.inSpan[k][node] {
				elig = append(elig, k)
			}
		}
		shard = elig[hashShard(s.ids.peek(), len(elig))]
	} else {
		if shard >= len(s.subs) {
			panic(fmt.Sprintf("rts: shard %d out of range [0,%d)", shard, len(s.subs)))
		}
		if !s.inSpan[shard][node] {
			panic(fmt.Sprintf("rts: create on shard %d from node %d outside its span %v", shard, node, s.subs[shard].span))
		}
	}
	sub := s.subs[shard]
	s.syncSwitch(w, sub)
	want := s.ids.peek()
	var id ObjID
	if nodes != nil {
		id = sub.CreateOn(w, typeName, nodes, args...)
	} else {
		id = sub.Create(w, typeName, args...)
	}
	if id != want {
		panic("rts: sharded id allocation raced")
	}
	s.owner[id] = shard
	return id
}

// Invoke implements System, routing to the owning shard. Machines
// outside the shard's span forward over RPC to a span holder, exactly
// as partial replication forwards within a single group.
func (s *ShardedRTS) Invoke(w *Worker, id ObjID, op string, args ...any) []any {
	sub := s.sub(id)
	s.syncSwitch(w, sub)
	if sub.mgr(w.Node()) == nil {
		return s.forwardOp(w, sub, id, op, args)
	}
	return sub.Invoke(w, id, op, args...)
}

// LocalReadState implements LocalReader, routing to the owning shard.
func (s *ShardedRTS) LocalReadState(w *Worker, id ObjID, op *OpDef) (State, bool) {
	return s.sub(id).LocalReadState(w, id, op)
}

// PeekState implements System, routing to the owning shard.
func (s *ShardedRTS) PeekState(node int, id ObjID) (State, bool) {
	k, ok := s.owner[id]
	if !ok {
		return nil, false
	}
	return s.subs[k].PeekState(node, id)
}

// forwardOp executes an operation at a machine of the owning shard's
// span on behalf of a machine outside it, reusing a local shard's RPC
// client (every machine lies in at least one span). Dead holders are
// skipped; the at-least-once retry caveat of the single-group forward
// path applies identically.
func (s *ShardedRTS) forwardOp(w *Worker, sub *BroadcastRTS, id ObjID, opName string, args []any) []any {
	w.Flush()
	sub.forwarded++
	var cl *amoeba.Client
	for _, local := range s.subs {
		if mg := local.mgr(w.Node()); mg != nil {
			cl = mg.fwdClient
			break
		}
	}
	holders := sub.placement(id)
	if holders == nil {
		holders = sub.span
	}
	first := true
	for _, holder := range holders {
		if sub.down[holder] || s.machines[w.Node()].Net().Down(holder) {
			continue
		}
		if !first {
			sub.opsRetried++
		}
		first = false
		rep, err := cl.Trans(w.P, holder, sub.fwdPort, opName,
			fwdOp{Obj: id, Op: opName, Args: args}, SizeOfArgs(args)+len(opName)+16)
		if err == nil {
			if rep == nil {
				return nil
			}
			return rep.([]any)
		}
		if !errors.Is(err, amoeba.ErrCrashed) {
			panic(fmt.Sprintf("rts: cross-shard op %s on object %d failed: %v", opName, id, err))
		}
	}
	panic(fmt.Sprintf("rts: no live span holder for object %d (shard span %v)", id, sub.span))
}

// Counters implements StatsSource, merging every shard's counters.
func (s *ShardedRTS) Counters() RTSStats {
	snaps := make([]RTSStats, 0, len(s.subs)+1)
	for _, sub := range s.subs {
		snaps = append(snaps, sub.Counters())
	}
	snaps = append(snaps, RTSStats{FencedOps: s.fencedOps})
	return Merge(snaps...)
}

// ShardStats reports each shard's own counter snapshot, in shard
// order — the per-shard breakdown Report.Shards surfaces.
func (s *ShardedRTS) ShardStats() []RTSStats {
	out := make([]RTSStats, len(s.subs))
	for k, sub := range s.subs {
		out[k] = sub.Counters()
	}
	return out
}

// fenceRec returns (or installs) the machine's record for a fence,
// expecting one arrival per covered shard whose span contains the
// machine.
func (s *ShardedRTS) fenceRec(node int, f wireFence) *fenceRec {
	m := s.fences[node]
	if rec, ok := m[f.FID]; ok {
		return rec
	}
	expect := 0
	for _, k := range f.Shards {
		if s.inSpan[k][node] {
			expect++
		}
	}
	rec := &fenceRec{expect: expect, src: -1}
	m[f.FID] = rec
	return rec
}

// handleFence consumes one fence delivery from a shard's stream
// (installed as every sub's fence hook; runs on the delivering
// manager's thread).
//
// Barrier fences only matter at the target machine: the last covered
// shard's delivery there fires the extra handler with the payload, so
// the payload (a fork) observes every write sequenced before the fence
// in every covered shard.
//
// Pausing fences first acknowledge the initiator's reservation (the
// uid completion InvokeFenced awaits), then every covered shard but
// the last PAUSES its delivery stream on this machine — nothing
// sequenced after the fence in that shard may apply before the fenced
// writes. The last arrival executes the fenced writes against the
// local replicas and releases the paused shards. Reservation in
// ascending shard order plus ack-before-pause makes concurrent fences
// acquire their shards in a consistent order, so two fences can never
// pause each other's completion path (see DESIGN.md).
func (s *ShardedRTS) handleFence(p *sim.Proc, mgr *bcastManager, d group.Delivery, f wireFence) {
	node := mgr.m.ID()
	if !f.Pause {
		if node != f.Target {
			return
		}
		rec := s.fenceRec(node, f)
		rec.arrived++
		if rec.arrived == rec.expect {
			delete(s.fences[node], f.FID)
			if s.extra != nil {
				s.extra(node, f.Body)
			}
		}
		return
	}
	mgr.complete(p, d.UID, d.Src, nil)
	if s.fenceAborted[node][f.FID] {
		// Presumed aborted: a straggling delivery applies nothing and
		// must not pause the stream again.
		return
	}
	rec := s.fenceRec(node, f)
	rec.src = d.Src
	rec.arrived++
	if rec.arrived < rec.expect {
		for !rec.done {
			rec.cond.Wait(p)
		}
		return
	}
	s.execFence(p, mgr, f)
	rec.done = true
	rec.cond.Broadcast()
	delete(s.fences[node], f.FID)
}

// execFence applies the fenced writes on this machine, in op order,
// each against its owning shard's replica. Costs charge through the
// delivering manager's frame accounting; touched replicas join their
// OWNING manager's guard-retry sweep, which runs at that manager's
// next frame boundary (its own delivery of this fence, at the latest).
func (s *ShardedRTS) execFence(p *sim.Proc, mgr *bcastManager, f wireFence) {
	node := mgr.m.ID()
	for i := range f.Ops {
		fo := &f.Ops[i]
		sub := s.subs[s.owner[fo.ID]]
		sm := sub.mgr(node)
		if sm == nil || !sub.replicatedOn(node, fo.ID) {
			continue
		}
		inst, ok := sm.insts[fo.ID]
		if !ok {
			panic(fmt.Sprintf("rts: fenced write to unknown object %d on node %d", fo.ID, node))
		}
		op := inst.op(fo.Op)
		mgr.charge(p, sub.costs.WriteApply+sub.costs.opCost(op))
		op.Apply(inst.state, fo.Args)
		inst.writes++
		if !inst.typ.SizeFixed {
			inst.seg.Resize(int64(inst.typ.stateSize(inst.state)))
		}
		inst.cond.Broadcast()
		if !inst.touched {
			inst.touched = true
			sm.touched = append(sm.touched, inst)
		}
	}
}

// InvokeFenced applies several write operations — possibly on objects
// in different shards — as one atomic, deterministically ordered step:
// on every machine, all of the writes apply at the same point of every
// covered shard's stream, and no operation sequenced after the fence
// in any covered shard observes a partial application. The two-phase
// protocol reserves a slot in every covered shard in ascending shard
// order (waiting for each reservation's local delivery before the
// next) and releases when the last covered shard delivers.
//
// The operations must be unguarded writes; results are discarded. The
// invoking machine must lie in every covered shard's span. The call
// returns once the writes have applied locally, so the invoker's
// subsequent reads observe them. An initiator that crashes between
// reservations is presumed aborted: the already-reserved shards stay
// paused for fenceAbortGrace and are then released without applying
// any of the fenced writes, so the fence is all-or-nothing under
// crashes too (see presumeAbort).
func (s *ShardedRTS) InvokeFenced(w *Worker, ops []FencedOp) {
	if len(ops) == 0 {
		return
	}
	node := w.Node()
	var shards []int
	size := 16
	for i := range ops {
		fo := &ops[i]
		k, ok := s.owner[fo.ID]
		if !ok {
			panic(fmt.Sprintf("rts: fenced op on unknown object %d", fo.ID))
		}
		mg := s.subs[k].mgr(node)
		if mg == nil {
			panic(fmt.Sprintf("rts: fenced op on object %d from node %d outside shard %d's span", fo.ID, node, k))
		}
		inst := mg.instance(w.P, fo.ID)
		op := inst.op(fo.Op)
		if op.Kind == Read {
			panic(fmt.Sprintf("rts: fenced operation %s is a read; fences carry writes", fo.Op))
		}
		if op.Guard != nil {
			panic(fmt.Sprintf("rts: fenced operation %s is guarded; fences carry unguarded writes", fo.Op))
		}
		size += SizeOfArgs(fo.Args) + len(fo.Op) + 16
		seen := false
		for _, sk := range shards {
			if sk == k {
				seen = true
				break
			}
		}
		if !seen {
			shards = append(shards, k)
		}
	}
	for i := 1; i < len(shards); i++ {
		for j := i; j > 0 && shards[j] < shards[j-1]; j-- {
			shards[j], shards[j-1] = shards[j-1], shards[j]
		}
	}
	if w.batch != nil {
		w.batch.sync(w) // program order reaches every shard before the fence
	}
	w.Flush()
	s.fenceSeq++
	f := wireFence{FID: s.fenceSeq, Shards: shards, Target: -1, Ops: ops, Pause: true}
	rec := s.fenceRec(node, f)
	for _, k := range shards {
		mgr := s.subs[k].mgr(node)
		uid := mgr.g.Broadcast(w.P, "rts-fence", f, size)
		mgr.await(w.P, uid)
	}
	for !rec.done {
		rec.cond.Wait(w.P)
	}
	s.fencedOps += int64(len(ops))
}

// ForkFence broadcasts a barrier fence carrying body into every shard
// whose span contains both the invoking machine and the target; the
// extra handler fires on the target once the LAST of those shards
// delivers there, so the payload observes every write the invoker
// sequenced before the fence, in every shard the target replicates.
// It reports false when no shard spans both machines (disjoint
// replication domains) — the caller falls back to a kernel message,
// accepting the weaker ordering a plain point-to-point fork has.
func (s *ShardedRTS) ForkFence(w *Worker, target int, body any, size int) bool {
	node := w.Node()
	var shards []int
	for k := range s.subs {
		if s.inSpan[k][node] && s.inSpan[k][target] {
			shards = append(shards, k)
		}
	}
	if len(shards) == 0 {
		return false
	}
	s.fenceSeq++
	f := wireFence{FID: s.fenceSeq, Shards: shards, Target: target, Body: body}
	for _, k := range shards {
		s.subs[k].mgr(node).g.Broadcast(w.P, "rts-fence", f, size+16)
	}
	return true
}
