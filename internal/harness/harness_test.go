package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rts"
)

// Smoke tests: every experiment must run at Quick scale and produce
// plausible output. These keep the figure-regeneration paths honest.

func TestFig2Quick(t *testing.T) {
	var buf bytes.Buffer
	s := Fig2TSP(&buf, Quick)
	if len(s.Points) != 3 {
		t.Fatalf("points = %d", len(s.Points))
	}
	if s.Points[0].Speedup != 1.0 {
		t.Fatalf("base speedup = %f", s.Points[0].Speedup)
	}
	last := s.Points[len(s.Points)-1]
	if last.Speedup < 1.5 {
		t.Fatalf("TSP quick speedup at P=%d is %f", last.Procs, last.Speedup)
	}
	if !strings.Contains(buf.String(), "FIG2") {
		t.Fatal("missing header")
	}
}

func TestFig3Quick(t *testing.T) {
	var buf bytes.Buffer
	s := Fig3ACP(&buf, Quick)
	if len(s.Points) != 3 {
		t.Fatalf("points = %d", len(s.Points))
	}
	if !strings.Contains(buf.String(), "Arc Consistency") {
		t.Fatal("missing header")
	}
}

func TestChessQuick(t *testing.T) {
	var buf bytes.Buffer
	series := ChessExperiment(&buf, Quick)
	if len(series) != 2 {
		t.Fatalf("series = %d, want shared+local", len(series))
	}
	out := buf.String()
	if !strings.Contains(out, "shared tables") || !strings.Contains(out, "local tables") {
		t.Fatal("missing table variants")
	}
}

func TestATPGQuick(t *testing.T) {
	var buf bytes.Buffer
	series := ATPGExperiment(&buf, Quick)
	if len(series) != 3 {
		t.Fatalf("series = %d, want 3 modes", len(series))
	}
}

func TestPBBBQuick(t *testing.T) {
	var buf bytes.Buffer
	PBBBExperiment(&buf, Quick)
	out := buf.String()
	for _, want := range []string{"PB wire", "BB wire", "auto"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing column %q", want)
		}
	}
}

func TestRTSCompareQuick(t *testing.T) {
	var buf bytes.Buffer
	RTSCompareExperiment(&buf, Quick)
	if !strings.Contains(buf.String(), "winner") {
		t.Fatal("missing winner column")
	}
}

func TestDynReplQuick(t *testing.T) {
	var buf bytes.Buffer
	DynReplExperiment(&buf, Quick)
	out := buf.String()
	for _, want := range []string{"single", "full", "dynamic"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing placement %q", want)
		}
	}
}

func TestMicroQuick(t *testing.T) {
	var buf bytes.Buffer
	MicroExperiment(&buf, Quick)
	if !strings.Contains(buf.String(), "null RPC") {
		t.Fatal("missing RPC measurement")
	}
}

func TestPartReplQuick(t *testing.T) {
	var buf bytes.Buffer
	PartReplExperiment(&buf, Quick)
	if !strings.Contains(buf.String(), "single-copy") {
		t.Fatal("missing single-copy column")
	}
}

func TestInterruptCostQuick(t *testing.T) {
	var buf bytes.Buffer
	InterruptCostExperiment(&buf, Quick)
	if !strings.Contains(buf.String(), "16x") {
		t.Fatal("missing multiplier rows")
	}
}

func TestShardQuick(t *testing.T) {
	var buf bytes.Buffer
	ShardExperiment(&buf, Quick)
	out := buf.String()
	if !strings.Contains(out, "vs 1 shard") {
		t.Fatal("missing shard speedup column")
	}
	if !strings.Contains(out, "not a stop-the-world event") {
		t.Fatal("missing crash-isolation verdict")
	}
}

func TestP2PWorkloadBothProtocols(t *testing.T) {
	for _, proto := range []rts.P2PProtocol{rts.Update, rts.Invalidation} {
		elapsed, msgs, _ := P2PWorkload(proto, rts.DynamicPlacement, 3, 4, 1, 2)
		if elapsed <= 0 {
			t.Fatalf("%v: no elapsed time", proto)
		}
		if msgs == 0 {
			t.Fatalf("%v: no messages", proto)
		}
	}
}

func TestRenderCurveAndTable(t *testing.T) {
	var buf bytes.Buffer
	RenderCurve(&buf, "test", []Series{{
		Name:   "s",
		Points: []SpeedupPoint{{Procs: 1, Speedup: 1}, {Procs: 4, Speedup: 3.5}},
	}}, 4)
	out := buf.String()
	if !strings.Contains(out, "perfect speedup") || !strings.Contains(out, "* = s") {
		t.Fatalf("curve rendering broken:\n%s", out)
	}
	buf.Reset()
	Table(&buf, []string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(buf.String(), "333") {
		t.Fatal("table rendering broken")
	}
}
