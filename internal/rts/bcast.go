package rts

import (
	"fmt"

	"repro/internal/amoeba"
	"repro/internal/group"
	"repro/internal/sim"
)

// BroadcastRTS is the paper's §3.2.1 runtime system, used when the
// network supports (reliable, totally-ordered) broadcasting. Every
// object is replicated on all machines. Reads are performed directly
// on the local replica, bypassing the object manager. Writes ship the
// operation code and parameters through the group layer; every
// machine's object manager applies incoming writes in strict sequence
// order, which enforces sequential consistency.
//
// Guarded writes whose guard is false at their position in the total
// order are queued and deterministically retried after each subsequent
// write — identically on every replica, so replicas never diverge.
type BroadcastRTS struct {
	reg    *Registry
	costs  Costs
	mgrs   []*bcastManager
	nextID ObjID

	// placements maps partially replicated objects to their replica
	// machines; absent means replicated everywhere (see CreateOn).
	placements map[ObjID][]int

	// Stats
	localReads  int64
	guardWaits  int64
	bcastWrites int64
	forwarded   int64
}

// System is the interface shared by the runtime systems; the Orca
// layer programs against it.
type System interface {
	// Create instantiates a shared object of a registered type and
	// returns its id. It blocks until the creating machine can use
	// the object.
	Create(w *Worker, typeName string, args ...any) ObjID
	// Invoke performs an operation on a shared object with the
	// sequential-consistency and indivisibility guarantees of the
	// shared data-object model. It blocks for guards, locks, and
	// write completion.
	Invoke(w *Worker, id ObjID, op string, args ...any) []any
	// Nodes reports the machine count.
	Nodes() int
	// PeekState returns a machine's current replica state (nil if the
	// machine holds no copy). It is an inspection hook for tests and
	// experiment harnesses, not part of the programming model.
	PeekState(node int, id ObjID) (State, bool)
}

var _ System = (*BroadcastRTS)(nil)

// Wire bodies for the group stream.
type (
	wireCreate struct {
		Obj  ObjID
		Type string
		Args []any
	}
	wireOp struct {
		Obj  ObjID
		Op   string
		Args []any
	}
)

// bcastManager is the per-machine object manager: it owns the local
// replicas and applies the totally-ordered write stream.
type bcastManager struct {
	rts      *BroadcastRTS
	m        *amoeba.Machine
	g        *group.Member
	insts    map[ObjID]*bcastInstance
	waiters  map[int64]*opWaiter
	early    map[int64][]any // completions that beat their waiter
	instCond *sim.Cond       // signalled when a replica is instantiated
	extra    func(node int, body any)

	// Partial replication plumbing (see bcast_partial.go).
	fwdSrv    *amoeba.Server
	fwdClient *amoeba.Client
}

// bcastInstance is one local replica.
type bcastInstance struct {
	typ     *ObjectType
	state   State
	cond    *sim.Cond // wakes guard-blocked readers after each write
	pending []*pendingWrite
	seg     *amoeba.Segment
	reads   int64
	writes  int64
}

// pendingWrite is a guarded write waiting for its guard, in total
// order position.
type pendingWrite struct {
	uid  int64
	src  int
	op   *OpDef
	args []any
}

// opWaiter lets the invoking thread sleep until its own write has been
// applied locally (which, given total order, is the linearization
// point visible to it).
type opWaiter struct {
	cond *sim.Cond
	done bool
	res  []any
}

// NewBroadcastRTS builds the runtime over one group member per
// machine. machines[i] and members[i] must be node i.
func NewBroadcastRTS(reg *Registry, costs Costs, machines []*amoeba.Machine, members []*group.Member) *BroadcastRTS {
	r := &BroadcastRTS{reg: reg, costs: costs}
	for i, m := range machines {
		mgr := &bcastManager{
			rts:      r,
			m:        m,
			g:        members[i],
			insts:    make(map[ObjID]*bcastInstance),
			waiters:  make(map[int64]*opWaiter),
			early:    make(map[int64][]any),
			instCond: sim.NewCond(m.Env()),
		}
		r.mgrs = append(r.mgrs, mgr)
		m.SpawnThread("objmgr", mgr.run)
	}
	r.startForwarders(machines)
	return r
}

// Nodes reports the machine count.
func (r *BroadcastRTS) Nodes() int { return len(r.mgrs) }

// Stats reports aggregate runtime counters: local reads served without
// communication, broadcast writes, and guard suspensions.
func (r *BroadcastRTS) Stats() (localReads, bcastWrites, guardWaits int64) {
	return r.localReads, r.bcastWrites, r.guardWaits
}

// Create broadcasts object creation so every machine instantiates a
// replica, and waits until the local replica exists.
func (r *BroadcastRTS) Create(w *Worker, typeName string, args ...any) ObjID {
	t := r.reg.Lookup(typeName) // validate before broadcasting
	r.nextID++
	id := r.nextID
	w.Flush()
	mgr := r.mgrs[w.Node()]
	body := wireCreate{Obj: id, Type: t.Name, Args: args}
	uid := mgr.g.Broadcast(w.P, "rts-create", body, SizeOfArgs(args)+len(typeName)+16)
	mgr.await(w.P, uid)
	return id
}

// Invoke implements System.
func (r *BroadcastRTS) Invoke(w *Worker, id ObjID, opName string, args ...any) []any {
	mgr := r.mgrs[w.Node()]
	if pl := r.placement(id); pl != nil && !r.replicatedOn(w.Node(), id) {
		// No local replica: forward the operation to a holder.
		return mgr.forward(w, id, pl, opName, args)
	}
	inst := mgr.instance(w.P, id)
	op := inst.typ.Op(opName)
	if op.Kind == Read {
		return mgr.localRead(w, inst, op, args)
	}
	if pl := r.placement(id); len(pl) == 1 {
		// Single-copy object at its only holder: apply directly, no
		// broadcast needed.
		return mgr.directWrite(w, inst, op, args)
	}
	// Write: ship the operation through the total order and wait for
	// it to be applied on this machine.
	w.Flush()
	r.bcastWrites++
	body := wireOp{Obj: id, Op: opName, Args: args}
	uid := mgr.g.Broadcast(w.P, "rts-op", body, SizeOfArgs(args)+len(opName)+16)
	return mgr.await(w.P, uid)
}

// PeekState implements System.
func (r *BroadcastRTS) PeekState(node int, id ObjID) (State, bool) {
	inst, ok := r.mgrs[node].insts[id]
	if !ok {
		return nil, false
	}
	return inst.state, true
}

// PendingWrites reports how many guarded writes are queued on a
// machine's replica; exposed for tests.
func (r *BroadcastRTS) PendingWrites(node int, id ObjID) int {
	inst, ok := r.mgrs[node].insts[id]
	if !ok {
		return 0
	}
	return len(inst.pending)
}

// instance returns the local replica, waiting for the creation
// broadcast if it has not arrived yet (a freshly forked worker can
// race the create message).
func (mgr *bcastManager) instance(p *sim.Proc, id ObjID) *bcastInstance {
	for {
		if inst, ok := mgr.insts[id]; ok {
			return inst
		}
		mgr.instCond.Wait(p)
	}
}

// localRead performs a read on the local replica: no network traffic,
// just accumulated CPU. Guard-blocked reads wait on the replica's
// condition and re-check after every applied write.
func (mgr *bcastManager) localRead(w *Worker, inst *bcastInstance, op *OpDef, args []any) []any {
	r := mgr.rts
	if op.Guard == nil {
		r.localReads++
		inst.reads++
		w.Charge(r.costs.ReadLocal + r.costs.opCost(op))
		return op.Apply(inst.state, args)
	}
	for {
		// Flush before evaluating the guard: flushing blocks on the
		// CPU, and a wakeup that fires while this thread is neither
		// checking the guard nor on the wait queue would be lost.
		// Between the guard check and Wait (or Apply) nothing may
		// block, so costs are accrued, not charged.
		w.Flush()
		w.Accrue(r.costs.GuardCheck)
		if !op.Guard(inst.state, args) {
			r.guardWaits++
			inst.cond.Wait(w.P)
			continue
		}
		r.localReads++
		inst.reads++
		w.Accrue(r.costs.ReadLocal + r.costs.opCost(op))
		return op.Apply(inst.state, args)
	}
}

// await blocks until the manager applies the message with this uid
// locally and returns its results. The apply can race ahead of the
// invoker (broadcasting blocks on the CPU, and the manager may apply
// the local delivery meanwhile), so completions that arrive before the
// waiter registers are buffered in mgr.early.
func (mgr *bcastManager) await(p *sim.Proc, uid int64) []any {
	if res, done := mgr.early[uid]; done {
		delete(mgr.early, uid)
		return res
	}
	wt := &opWaiter{cond: sim.NewCond(mgr.m.Env())}
	mgr.waiters[uid] = wt
	for !wt.done {
		wt.cond.Wait(p)
	}
	delete(mgr.waiters, uid)
	return wt.res
}

// complete finishes a waiting invocation. src is the originating node:
// completions for locally originated messages with no registered
// waiter yet are buffered until await claims them.
func (mgr *bcastManager) complete(uid int64, src int, res []any) {
	if wt, ok := mgr.waiters[uid]; ok {
		wt.done = true
		wt.res = res
		wt.cond.Broadcast()
		return
	}
	if src == mgr.m.ID() {
		mgr.early[uid] = res
	}
}

// SetExtraHandler installs a callback for group messages the runtime
// does not recognize. The Orca layer uses it to order process creation
// within the same total order as object writes, which is what makes a
// freshly forked process observe all writes its parent issued before
// the fork.
func (r *BroadcastRTS) SetExtraHandler(h func(node int, body any)) {
	for _, mgr := range r.mgrs {
		mgr.extra = h
	}
}

// run is the object-manager thread: it consumes the totally-ordered
// delivery stream and applies creations and writes.
func (mgr *bcastManager) run(p *sim.Proc) {
	for {
		d, ok := mgr.g.Deliveries().Get(p)
		if !ok {
			return
		}
		switch body := d.Body.(type) {
		case wireCreate:
			mgr.applyCreate(p, d.UID, d.Src, body)
		case wireOp:
			mgr.applyWrite(p, d.UID, d.Src, body)
		default:
			if mgr.extra == nil {
				panic(fmt.Sprintf("rts: unexpected group message %T", d.Body))
			}
			mgr.extra(mgr.m.ID(), d.Body)
		}
	}
}

// applyCreate instantiates the replica (on replica holders only, for
// partially replicated objects).
func (mgr *bcastManager) applyCreate(p *sim.Proc, uid int64, src int, c wireCreate) {
	r := mgr.rts
	if !r.replicatedOn(mgr.m.ID(), c.Obj) {
		mgr.complete(uid, src, nil)
		return
	}
	t := r.reg.Lookup(c.Type)
	mgr.m.Compute(p, r.costs.Create)
	state := t.New(c.Args)
	inst := &bcastInstance{
		typ:   t,
		state: state,
		cond:  sim.NewCond(mgr.m.Env()),
		seg:   mgr.m.AllocSegment(int64(t.stateSize(state))),
	}
	mgr.insts[c.Obj] = inst
	mgr.instCond.Broadcast()
	mgr.complete(uid, src, nil)
}

// applyWrite executes one write from the total order: check the guard
// (queue if false), apply, complete the local invoker, retry pending
// guarded writes, and wake guard-blocked readers.
func (mgr *bcastManager) applyWrite(p *sim.Proc, uid int64, src int, wo wireOp) {
	r := mgr.rts
	inst, ok := mgr.insts[wo.Obj]
	if !ok {
		if !mgr.rts.replicatedOn(mgr.m.ID(), wo.Obj) {
			return // not a replica holder: the write does not apply here
		}
		panic(fmt.Sprintf("rts: write to unknown object %d on node %d", wo.Obj, mgr.m.ID()))
	}
	op := inst.typ.Op(wo.Op)
	if op.Guard != nil {
		mgr.m.Compute(p, r.costs.GuardCheck)
		if !op.Guard(inst.state, wo.Args) {
			inst.pending = append(inst.pending, &pendingWrite{uid: uid, src: src, op: op, args: wo.Args})
			return
		}
	}
	mgr.execWrite(p, inst, uid, src, op, wo.Args)
	mgr.drainPending(p, inst)
}

// execWrite applies one write to the replica.
func (mgr *bcastManager) execWrite(p *sim.Proc, inst *bcastInstance, uid int64, src int, op *OpDef, args []any) {
	r := mgr.rts
	mgr.m.Compute(p, r.costs.WriteApply+r.costs.opCost(op))
	res := op.Apply(inst.state, args)
	inst.writes++
	inst.seg.Resize(int64(inst.typ.stateSize(inst.state)))
	mgr.complete(uid, src, res)
	inst.cond.Broadcast()
}

// drainPending retries queued guarded writes in arrival (sequence)
// order after each state change, looping until none can run. Every
// replica performs the identical retry sequence, preserving
// determinism.
func (mgr *bcastManager) drainPending(p *sim.Proc, inst *bcastInstance) {
	r := mgr.rts
	for progress := true; progress; {
		progress = false
		for i, pw := range inst.pending {
			mgr.m.Compute(p, r.costs.GuardCheck)
			if pw.op.Guard(inst.state, pw.args) {
				inst.pending = append(inst.pending[:i], inst.pending[i+1:]...)
				mgr.execWrite(p, inst, pw.uid, pw.src, pw.op, pw.args)
				progress = true
				break
			}
		}
	}
}
