package rts

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func dynCfg(proto P2PProtocol) P2PConfig {
	cfg := DefaultP2PConfig()
	cfg.Protocol = proto
	return cfg
}

func TestP2PCreateSingleCopy(t *testing.T) {
	b, r := newP2PTB(t, 1, 4, dynCfg(Update))
	var id ObjID
	b.spawn(2, "main", func(w *Worker) {
		id = r.Create(w, "intcell", 9)
	})
	b.run(sim.Second)
	defer b.done()
	if r.Primary(id) != 2 {
		t.Fatalf("primary = %d, want 2", r.Primary(id))
	}
	if n := r.CopyCount(id); n != 1 {
		t.Fatalf("copies = %d, want 1 (paper: one copy initially)", n)
	}
}

func TestP2PRemoteReadAndWrite(t *testing.T) {
	b, r := newP2PTB(t, 2, 3, dynCfg(Update))
	var got int
	b.spawn(0, "main", func(w *Worker) {
		id := r.Create(w, "intcell")
		b.spawn(2, "remote", func(w *Worker) {
			r.Invoke(w, id, "set", 13)
			got = r.Invoke(w, id, "get")[0].(int)
		})
	})
	b.run(10 * sim.Second)
	defer b.done()
	if got != 13 {
		t.Fatalf("remote read = %d, want 13", got)
	}
	st := r.Stats()
	if st.RemoteReads == 0 {
		t.Fatal("expected remote reads")
	}
}

func TestP2PDynamicFetchOnReadHeavyUse(t *testing.T) {
	b, r := newP2PTB(t, 3, 2, dynCfg(Update))
	var id ObjID
	b.spawn(0, "main", func(w *Worker) {
		id = r.Create(w, "intcell", 5)
		b.spawn(1, "reader", func(w *Worker) {
			for i := 0; i < 50; i++ {
				r.Invoke(w, id, "get")
			}
		})
	})
	b.run(30 * sim.Second)
	defer b.done()
	if !r.HasCopy(1, id) {
		t.Fatal("read-heavy node did not fetch a copy")
	}
	if r.Stats().Fetches == 0 {
		t.Fatal("no fetch recorded")
	}
	// Once the copy exists, reads must be local.
	if r.Stats().LocalReads == 0 {
		t.Fatal("no local reads after fetch")
	}
}

func TestP2PLocalReadsAfterFetchGenerateNoTraffic(t *testing.T) {
	b, r := newP2PTB(t, 4, 2, dynCfg(Update))
	b.spawn(0, "main", func(w *Worker) {
		id := r.Create(w, "intcell", 5)
		b.spawn(1, "reader", func(w *Worker) {
			for i := 0; i < 30; i++ { // drive the fetch
				r.Invoke(w, id, "get")
			}
			w.P.Sleep(100 * sim.Millisecond)
			before := b.net.Stats().Messages
			for i := 0; i < 500; i++ {
				r.Invoke(w, id, "get")
			}
			if after := b.net.Stats().Messages; after != before {
				t.Errorf("local reads generated %d messages", after-before)
			}
		})
	})
	b.run(60 * sim.Second)
	b.done()
}

func TestP2PInvalidationDropsCopies(t *testing.T) {
	b, r := newP2PTB(t, 5, 3, dynCfg(Invalidation))
	var id ObjID
	b.spawn(0, "main", func(w *Worker) {
		id = r.Create(w, "intcell")
		b.spawn(1, "reader", func(w *Worker) {
			for i := 0; i < 50; i++ {
				r.Invoke(w, id, "get")
			}
			// Now node 1 has a copy; a write from node 2 must
			// invalidate it.
			b.spawn(2, "writer", func(w *Worker) {
				r.Invoke(w, id, "set", 77)
			})
		})
	})
	b.run(30 * sim.Second)
	defer b.done()
	if r.HasCopy(1, id) {
		t.Fatal("secondary survived an invalidation write")
	}
	if n := r.CopyCount(id); n != 1 {
		t.Fatalf("copies after write = %d, want 1", n)
	}
	if r.Stats().Invalidations == 0 {
		t.Fatal("no invalidations recorded")
	}
	s, _ := r.PeekState(0, id)
	if s.(*intCellState).v != 77 {
		t.Fatalf("primary value = %d, want 77", s.(*intCellState).v)
	}
}

func TestP2PUpdateKeepsCopiesConsistent(t *testing.T) {
	b, r := newP2PTB(t, 6, 3, dynCfg(Update))
	var id ObjID
	b.spawn(0, "main", func(w *Worker) {
		id = r.Create(w, "intcell")
		b.spawn(1, "reader", func(w *Worker) {
			for i := 0; i < 50; i++ {
				r.Invoke(w, id, "get")
			}
			b.spawn(2, "writer", func(w *Worker) {
				for i := 0; i < 5; i++ {
					r.Invoke(w, id, "inc")
				}
			})
		})
	})
	b.run(60 * sim.Second)
	defer b.done()
	if !r.HasCopy(1, id) {
		t.Fatal("update protocol discarded the secondary")
	}
	s0, _ := r.PeekState(0, id)
	s1, _ := r.PeekState(1, id)
	if s0.(*intCellState).v != 5 || s1.(*intCellState).v != 5 {
		t.Fatalf("states diverged: primary=%d secondary=%d, want 5",
			s0.(*intCellState).v, s1.(*intCellState).v)
	}
	if r.Stats().Updates == 0 {
		t.Fatal("no update messages recorded")
	}
}

func TestP2PDiscardOnWriteHeavyUse(t *testing.T) {
	cfg := dynCfg(Update)
	b, r := newP2PTB(t, 7, 2, cfg)
	var id ObjID
	b.spawn(0, "main", func(w *Worker) {
		id = r.Create(w, "intcell")
		b.spawn(1, "worker", func(w *Worker) {
			// Phase 1: read-heavy, acquires a copy.
			for i := 0; i < 40; i++ {
				r.Invoke(w, id, "get")
			}
			if !r.HasCopy(1, id) {
				t.Error("no copy after read-heavy phase")
			}
			// Phase 2: write-heavy, should discard.
			for i := 0; i < 40; i++ {
				r.Invoke(w, id, "set", i)
			}
		})
	})
	b.run(60 * sim.Second)
	defer b.done()
	if r.HasCopy(1, id) {
		t.Fatal("write-heavy node kept its copy")
	}
	if r.Stats().Discards == 0 {
		t.Fatal("no discard recorded")
	}
}

func TestP2PFullReplicationPlacement(t *testing.T) {
	cfg := dynCfg(Update)
	cfg.Placement = FullReplication
	b, r := newP2PTB(t, 8, 4, cfg)
	var id ObjID
	b.spawn(0, "main", func(w *Worker) {
		id = r.Create(w, "intcell", 3)
	})
	b.run(5 * sim.Second)
	defer b.done()
	if n := r.CopyCount(id); n != 4 {
		t.Fatalf("copies = %d, want 4 under full replication", n)
	}
}

func TestP2PGuardedOpAcrossMachines(t *testing.T) {
	for _, proto := range []P2PProtocol{Invalidation, Update} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			b, r := newP2PTB(t, 9, 3, dynCfg(proto))
			var got []int
			b.spawn(0, "main", func(w *Worker) {
				q := r.Create(w, "queue")
				b.spawn(1, "consumer", func(w *Worker) {
					for i := 0; i < 3; i++ {
						got = append(got, r.Invoke(w, q, "get")[0].(int))
					}
				})
				b.spawn(2, "producer", func(w *Worker) {
					w.P.Sleep(300 * sim.Millisecond)
					for i := 0; i < 3; i++ {
						r.Invoke(w, q, "put", i*11)
					}
				})
			})
			b.run(60 * sim.Second)
			defer b.done()
			if len(got) != 3 {
				t.Fatalf("consumed %d, want 3", len(got))
			}
			for i, v := range got {
				if v != i*11 {
					t.Fatalf("got %v, want FIFO order", got)
				}
			}
		})
	}
}

func TestP2PIncLinearizable(t *testing.T) {
	for _, proto := range []P2PProtocol{Invalidation, Update} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			const nodes, perNode = 3, 15
			b, r := newP2PTB(t, 10, nodes, dynCfg(proto))
			var id ObjID
			results := make([][]int, nodes)
			b.spawn(0, "main", func(w *Worker) {
				id = r.Create(w, "intcell")
				for n := 0; n < nodes; n++ {
					n := n
					b.spawn(n, fmt.Sprintf("w%d", n), func(w *Worker) {
						for i := 0; i < perNode; i++ {
							old := r.Invoke(w, id, "inc")[0].(int)
							results[n] = append(results[n], old)
						}
					})
				}
			})
			b.run(120 * sim.Second)
			defer b.done()
			seen := map[int]bool{}
			total := 0
			for _, rs := range results {
				for _, v := range rs {
					if seen[v] {
						t.Fatalf("duplicate inc result %d", v)
					}
					seen[v] = true
					total++
				}
			}
			if total != nodes*perNode {
				t.Fatalf("total incs = %d, want %d", total, nodes*perNode)
			}
		})
	}
}

// Property: under either protocol with mixed random workloads, all
// surviving copies equal the primary at quiescence.
func TestP2PConvergenceProperty(t *testing.T) {
	f := func(seed int64, useUpdate bool) bool {
		proto := Invalidation
		if useUpdate {
			proto = Update
		}
		const nodes = 3
		b, r := newP2PTB(t, seed, nodes, dynCfg(proto))
		var id ObjID
		b.spawn(0, "main", func(w *Worker) {
			id = r.Create(w, "intcell")
			for n := 0; n < nodes; n++ {
				n := n
				b.spawn(n, fmt.Sprintf("w%d", n), func(w *Worker) {
					rng := b.env.Rand()
					for i := 0; i < 25; i++ {
						if rng.Intn(10) < 7 {
							r.Invoke(w, id, "get")
						} else {
							r.Invoke(w, id, "inc")
						}
					}
				})
			}
		})
		b.run(120 * sim.Second)
		defer b.done()
		prim, ok := r.PeekState(r.Primary(id), id)
		if !ok {
			return false
		}
		want := prim.(*intCellState).v
		for n := 0; n < nodes; n++ {
			if s, ok := r.PeekState(n, id); ok {
				if s.(*intCellState).v != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestP2PReadBlocksWhileLocked(t *testing.T) {
	// Use a slow write op so the update window is observable: the
	// secondary must not serve a read between phase 1 and phase 2.
	b, r := newP2PTB(t, 11, 2, dynCfg(Update))
	var readVal int
	var readAt sim.Time
	b.spawn(0, "main", func(w *Worker) {
		id := r.Create(w, "intcell")
		b.spawn(1, "reader", func(w *Worker) {
			for i := 0; i < 40; i++ { // acquire a copy
				r.Invoke(w, id, "get")
			}
			// Writer on primary starts a two-phase update.
			b.spawn(0, "writer", func(w *Worker) {
				r.Invoke(w, id, "set", 1)
			})
			w.P.Sleep(time500ms)
			readVal = r.Invoke(w, id, "get")[0].(int)
			readAt = w.P.Now()
		})
	})
	b.run(60 * sim.Second)
	defer b.done()
	if readVal != 1 {
		t.Fatalf("read %d after update committed, want 1", readVal)
	}
	if readAt == 0 {
		t.Fatal("read never completed")
	}
}

func TestP2PManyObjectsIndependentPrimaries(t *testing.T) {
	b, r := newP2PTB(t, 12, 4, dynCfg(Update))
	ids := make([]ObjID, 4)
	b.spawn(0, "boot", func(w *Worker) {
		for n := 0; n < 4; n++ {
			n := n
			b.spawn(n, fmt.Sprintf("creator%d", n), func(w *Worker) {
				ids[n] = r.Create(w, "intcell", n)
			})
		}
	})
	b.run(5 * sim.Second)
	for n := 0; n < 4; n++ {
		if r.Primary(ids[n]) != n {
			t.Fatalf("object %d primary = %d, want %d", n, r.Primary(ids[n]), n)
		}
	}
	b.done()
}
