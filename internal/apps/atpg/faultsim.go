package atpg

// Event-driven fault simulation: given the good-circuit values for a
// pattern, propagate only the differences a fault causes through its
// fanout cone. Typical faults touch a few dozen gates, which is what
// makes fault simulation so much cheaper than running PODEM for every
// fault — the optimization the paper evaluates ("If a test pattern has
// been computed for a certain gate, this pattern will probably test
// other gates in the circuit as well").

// FaultSimulator amortizes allocations across many fault checks for
// one pattern.
type FaultSimulator struct {
	c       *Circuit
	good    []V3
	faulty  []V3
	dirty   []bool
	touched []int
	// GateEvals accumulates evaluation counts for CPU accounting.
	GateEvals int64
}

// NewFaultSimulator prepares a simulator for one pattern (binary
// inputs). The good-circuit simulation is charged to GateEvals.
func NewFaultSimulator(c *Circuit, pattern []V3) *FaultSimulator {
	fs := &FaultSimulator{
		c:      c,
		faulty: make([]V3, c.Lines()),
		dirty:  make([]bool, c.Lines()),
	}
	fs.good = SimulateGood(c, pattern, &fs.GateEvals)
	return fs
}

// Good returns the fault-free line values for the pattern.
func (fs *FaultSimulator) Good() []V3 { return fs.good }

// Detects reports whether the pattern detects the fault, evaluating
// only gates in the changed cone.
func (fs *FaultSimulator) Detects(fault Fault) bool {
	stuck := V3(F3)
	if fault.StuckAt == 1 {
		stuck = T3
	}
	if fs.good[fault.Line] == stuck {
		return false // fault not activated by this pattern
	}
	c := fs.c
	// reset scratch from the previous query
	for _, li := range fs.touched {
		fs.dirty[li] = false
	}
	fs.touched = fs.touched[:0]

	mark := func(li int, v V3) {
		fs.faulty[li] = v
		fs.dirty[li] = true
		fs.touched = append(fs.touched, li)
	}
	mark(fault.Line, stuck)
	val := func(li int) V3 {
		if fs.dirty[li] {
			return fs.faulty[li]
		}
		return fs.good[li]
	}
	// Gates are topologically ordered, so a single ascending sweep
	// over gates fed by dirty lines is an event-driven simulation.
	var ins [8]V5
	for gi := fault.Line + 1; gi < c.Lines(); gi++ {
		g := c.Gates[gi]
		if g.Type == Input || fs.dirty[gi] {
			continue
		}
		affected := false
		for _, in := range g.Ins {
			if fs.dirty[in] {
				affected = true
				break
			}
		}
		if !affected {
			continue
		}
		vals := ins[:0]
		for _, in := range g.Ins {
			v := val(in)
			vals = append(vals, V5{v, v})
		}
		fs.GateEvals++
		nv := EvalGate(g.Type, vals).G
		if nv != fs.good[gi] {
			mark(gi, nv)
		}
	}
	for _, out := range c.Outputs {
		if fs.dirty[out] && fs.faulty[out] != fs.good[out] {
			return true
		}
	}
	return false
}

// SeqResult is the outcome of the sequential ATPG baseline.
type SeqResult struct {
	Detected   int
	Aborted    int
	Untestable int
	Patterns   int
	GateEvals  int64
}

// SolveSeq runs the sequential ATPG flow over all faults, optionally
// with fault simulation after each generated pattern.
func SolveSeq(c *Circuit, faults []Fault, maxBacktracks int, faultSim bool) SeqResult {
	res := SeqResult{}
	detected := make([]bool, len(faults))
	for fi, f := range faults {
		if detected[fi] {
			continue
		}
		pr := Podem(c, f, maxBacktracks)
		res.GateEvals += pr.GateEvals
		switch {
		case pr.Detected:
			res.Patterns++
			detected[fi] = true
			res.Detected++
			if faultSim {
				fs := NewFaultSimulator(c, pr.Pattern)
				for oi := range faults {
					if !detected[oi] && fs.Detects(faults[oi]) {
						detected[oi] = true
						res.Detected++
					}
				}
				res.GateEvals += fs.GateEvals
			}
		case pr.Aborted:
			res.Aborted++
		default:
			res.Untestable++
		}
	}
	return res
}
