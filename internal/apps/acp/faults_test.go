package acp

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/orca"
)

// Crash-survival tests for the fault-tolerant ACP variant: losing a
// participant mid-propagation must not change the computed fixpoint —
// arc consistency is confluent, so the survivors converge to exactly
// the domains a healthy run computes.

func TestParticipantCrashReachesSameFixpoint(t *testing.T) {
	inst := GeneratePropagation(24, 24, 16, 2)
	plain := RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1}, inst, Params{})
	if plain.NoSolution {
		t.Fatal("test instance unexpectedly has no solution")
	}
	crash := RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1,
		Faults: &netsim.FaultPlan{Crashes: []netsim.Crash{{Node: 2, At: plain.Report.Elapsed / 3}}}},
		inst, Params{FaultTolerant: true})
	if crash.Report.TimedOut {
		t.Fatalf("crash run timed out; blocked: %v", crash.Report.Blocked)
	}
	if len(crash.Report.Crashes) != 1 || crash.Report.Crashes[0].Node != 2 {
		t.Fatalf("crash report = %+v", crash.Report.Crashes)
	}
	if len(crash.Domains) != len(plain.Domains) {
		t.Fatalf("domain count %d != %d", len(crash.Domains), len(plain.Domains))
	}
	for i := range plain.Domains {
		if crash.Domains[i] != plain.Domains[i] {
			t.Fatalf("variable %d: crash-run domain %x != healthy %x", i, crash.Domains[i], plain.Domains[i])
		}
	}
}

func TestFaultTolerantNoCrashMatchesPlain(t *testing.T) {
	inst := GeneratePropagation(24, 24, 16, 2)
	plain := RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1}, inst, Params{})
	ft := RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1}, inst, Params{FaultTolerant: true})
	for i := range plain.Domains {
		if ft.Domains[i] != plain.Domains[i] {
			t.Fatalf("variable %d: fault-tolerant domain %x != plain %x", i, ft.Domains[i], plain.Domains[i])
		}
	}
	if ft.Report.TimedOut {
		t.Fatal("fault-tolerant run timed out")
	}
}
