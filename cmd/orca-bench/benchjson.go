package main

// The -bench-json mode: a self-contained engine benchmark runner that
// measures the simulation kernel and the object-runtime hot paths
// without the testing package, and records the results in
// BENCH_engine.json. The file is the performance trajectory baseline:
// each entry carries wall-ns/op, events/sec, and allocs/op, plus the
// virtual-time metrics for the runtime-level workloads (which must
// stay bit-identical across engine work — only the wall-clock numbers
// are allowed to move).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/amoeba"
	"repro/internal/apps/kv"
	"repro/internal/apps/tsp"
	"repro/internal/group"
	"repro/internal/netsim"
	"repro/internal/orca"
	"repro/internal/orca/std"
	"repro/internal/rts"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchResult is one benchmark's record in BENCH_engine.json.
type benchResult struct {
	Name         string  `json:"name"`
	Ops          int64   `json:"ops"`
	WallNsPerOp  float64 `json:"wall_ns_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	VirtualUsOp  float64 `json:"virtual_us_per_op,omitempty"`
	VirtualSec   float64 `json:"virtual_s,omitempty"`
	// Virtual-latency percentiles of the serving workloads (kv/*
	// entries): request->completion times measured from open-loop
	// arrival instants. Deterministic — they must stay bit-identical
	// across engine work, like the other virtual metrics.
	P50VirtUs float64 `json:"p50_virtual_us,omitempty"`
	P95VirtUs float64 `json:"p95_virtual_us,omitempty"`
	P99VirtUs float64 `json:"p99_virtual_us,omitempty"`
	// RecoveryVirtUs is the virtual crash-recovery stall of the
	// consensus crash entry (suspicion to the next delivery), another
	// deterministic figure that must reproduce exactly.
	RecoveryVirtUs float64 `json:"recovery_virtual_us,omitempty"`
	// RTS records the unified runtime-system counters of the workload
	// (runtime-level entries only). Like the virtual metrics they are
	// part of the reproduced result and must not move across engine
	// work.
	RTS *rts.RTSStats `json:"rts,omitempty"`
}

// benchFile is the schema of BENCH_engine.json.
type benchFile struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	NumCPU      int           `json:"num_cpu"`
	Results     []benchResult `json:"results"`
	Baseline    []benchResult `json:"pre_refactor_baseline"`
}

// preRefactorBaseline pins the runtime-level workloads as measured
// before the fast-path scheduler rework (central scheduler goroutine,
// heap-only event queue, a fresh Event and closure per wakeup, O(n)
// queue sizing), median of interleaved runs on the same host class.
// Every regeneration of BENCH_engine.json carries it, so the file
// always shows the trajectory against the fixed starting point. The
// virtual metrics are identical by construction — only wall-clock and
// allocation figures were allowed to move.
var preRefactorBaseline = []benchResult{
	{Name: "orca/local-read", WallNsPerOp: 69.4, AllocsPerOp: 1, VirtualUsOp: 10.01},
	{Name: "orca/broadcast-write", WallNsPerOp: 21700, AllocsPerOp: 62, VirtualUsOp: 209.0},
	{Name: "fig2/tsp-p8", WallNsPerOp: 72.0e6, AllocsPerOp: 836858, VirtualSec: 0.8889},
}

// measure runs fn(n) and fills in wall, alloc, and event rates. fn
// returns the environment (for the dispatch counter; nil to skip
// events/sec) after driving n operations.
func measure(name string, n int64, fn func(n int64) *sim.Env) benchResult {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	env := fn(n)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	r := benchResult{
		Name:        name,
		Ops:         n,
		WallNsPerOp: float64(wall.Nanoseconds()) / float64(n),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(n),
	}
	if env != nil {
		r.EventsPerSec = float64(env.Events()) / wall.Seconds()
	}
	return r
}

// runBenchJSON runs the engine suite and writes path.
func runBenchJSON(path string, quick bool) error {
	scale := int64(1)
	if quick {
		scale = 4
	}
	var results []benchResult

	// Kernel microbenchmarks (mirrors bench_engine_test.go).
	results = append(results, measure("engine/yield", 4_000_000/scale, func(n int64) *sim.Env {
		e := sim.New(1)
		e.Spawn("yielder", func(p *sim.Proc) {
			for i := int64(0); i < n; i++ {
				p.Yield()
			}
		})
		e.Run()
		e.Shutdown()
		return e
	}))
	results = append(results, measure("engine/yield-pingpong", 1_000_000/scale, func(n int64) *sim.Env {
		e := sim.New(1)
		for i := 0; i < 2; i++ {
			e.Spawn("ponger", func(p *sim.Proc) {
				for i := int64(0); i < n/2; i++ {
					p.Yield()
				}
			})
		}
		e.Run()
		e.Shutdown()
		return e
	}))
	results = append(results, measure("engine/sleep", 1_000_000/scale, func(n int64) *sim.Env {
		e := sim.New(1)
		const procs = 16
		for i := 0; i < procs; i++ {
			d := sim.Time(i + 1)
			e.Spawn("sleeper", func(p *sim.Proc) {
				for i := int64(0); i < n/procs; i++ {
					p.Sleep(d)
				}
			})
		}
		e.Run()
		e.Shutdown()
		return e
	}))
	results = append(results, measure("engine/queue", 500_000/scale, func(n int64) *sim.Env {
		e := sim.New(1)
		q := sim.NewQueue[int](e)
		e.Spawn("consumer", func(p *sim.Proc) {
			for {
				if _, ok := q.Get(p); !ok {
					return
				}
			}
		})
		e.Spawn("producer", func(p *sim.Proc) {
			for i := int64(0); i < n; i++ {
				q.Put(int(i))
				p.Yield()
			}
			q.Close()
		})
		e.Run()
		e.Shutdown()
		return e
	}))

	// Object-runtime primitives over the broadcast RTS (4 processors),
	// the workloads of BenchmarkOrcaOps. Their virtual-µs/op must not
	// move across engine changes (the batched variant pins its own
	// figures — batching changes virtual timing by design).
	orcaOp := func(name string, n int64, cfg orca.Config, op func(p *orca.Proc, c std.Counter, i int64)) benchResult {
		var rt *orca.Runtime
		var per sim.Time
		r := measure(name, n, func(n int64) *sim.Env {
			rt = orca.New(cfg, std.Register)
			rt.Run(func(p *orca.Proc) {
				c := std.NewCounter(p, 0)
				start := p.Now()
				for i := int64(0); i < n; i++ {
					op(p, c, i)
				}
				per = (p.Now() - start) / sim.Time(n)
			})
			return rt.Env()
		})
		r.VirtualUsOp = per.Microseconds()
		st := rt.Stats()
		r.RTS = &st
		return r
	}
	base4 := orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1}
	batched4 := base4
	batched4.Batching = orca.DefaultBatching()
	results = append(results, orcaOp("orca/local-read", 2_000_000/scale, base4,
		func(p *orca.Proc, c std.Counter, _ int64) { c.Value(p) }))
	results = append(results, orcaOp("orca/broadcast-write", 100_000/scale, base4,
		func(p *orca.Proc, c std.Counter, i int64) { c.Assign(p, int(i)) }))
	// The same op stream through the combining buffer: the ≥2×
	// wall-clock amortization target of the batching pipeline.
	results = append(results, orcaOp("orca/bcast-write-batched", 100_000/scale, batched4,
		func(p *orca.Proc, c std.Counter, i int64) { c.Assign(p, int(i)) }))

	// Full application runs on the 12-city instance at 8 processors:
	// the Figure 2 TSP workload, and its mixed-placement variant
	// (primary-copy job queue on the point-to-point runtime,
	// broadcast-replicated bound — the counters prove both runtimes
	// carried traffic). virtual_s and the rts counters are the
	// reproduced datapoints and must stay fixed; wall_ns_per_op tracks
	// the engine.
	tspEntry := func(name string, cfg orca.Config, params tsp.Params) benchResult {
		inst := tsp.Generate(12, 5)
		var virtual sim.Time
		var stats rts.RTSStats
		r := measure(name, 1, func(int64) *sim.Env {
			res := tsp.RunOrca(cfg, inst, params)
			virtual = res.Report.Elapsed
			stats = res.Report.RTS
			return res.Runtime.Env()
		})
		r.VirtualSec = virtual.Seconds()
		r.RTS = &stats
		return r
	}
	results = append(results,
		tspEntry("fig2/tsp-p8",
			orca.Config{Processors: 8, RTS: orca.Broadcast, Seed: 1}, tsp.Params{}),
		tspEntry("mixed/tsp-p8",
			orca.Config{Processors: 8, RTS: orca.Broadcast, Mixed: true, Seed: 1},
			tsp.Params{PrimaryCopyQueue: true}),
		// Large-P batched TSP: the scale-out datapoint BENCH_engine.json
		// tracks (32 processors, sequencer batching on; the rts block
		// records the batched-op/frame amortization).
		tspEntry("scale/tsp-p32",
			orca.Config{Processors: 32, RTS: orca.Broadcast, Seed: 1, Batching: orca.DefaultBatching()},
			tsp.Params{}),
		// The same batched scale-out run through the consensus-replicated
		// log: the steady-state overhead of quorum sequencing.
		tspEntry("consensus/tsp-p32",
			orca.Config{Processors: 32, RTS: orca.Broadcast, Seed: 1,
				Batching: orca.DefaultBatching(), Protocol: group.Consensus},
			tsp.Params{}))

	// Consensus crash recovery: the leader machine dies mid-search and
	// the survivors take over without an election. The recovery
	// watermark (recovery_virtual_us) is the pinned datapoint.
	crashEntry := tspEntry("consensus/tsp-crash-p8",
		orca.Config{Processors: 8, RTS: orca.Broadcast, Seed: 1,
			Protocol: group.Consensus, Sequencer: 7,
			Faults: &netsim.FaultPlan{Crashes: []netsim.Crash{{Node: 7, At: 150 * sim.Millisecond}}}},
		tsp.Params{FaultTolerant: true})
	crashEntry.RecoveryVirtUs = crashEntry.RTS.RecoveryVirtualUS
	results = append(results, crashEntry)

	// Serving workload: the sharded KV store under open-loop Zipf(0.99)
	// read-heavy traffic at 8 processors, replicated vs primary-copy
	// shards on the identical trace. The virtual percentiles and rts
	// counters are the reproduced datapoints; wall tracks the engine.
	kvEntry := func(name string, policy kv.Policy) benchResult {
		wl := workload.Config{
			Keys: 2048, Dist: workload.Zipf, Theta: 0.99,
			ReadFrac: 0.95, UpdateFrac: 0.02, Seed: 1,
			Rate: 16000, Duration: 100 * sim.Millisecond,
		}
		var res kv.Result
		r := measure(name, 1, func(int64) *sim.Env {
			res = kv.Run(orca.Config{Processors: 8, RTS: orca.Broadcast, Mixed: true, Seed: 1},
				kv.Params{Policy: policy, Workload: wl})
			return res.Runtime.Env()
		})
		r.VirtualSec = res.Report.Elapsed.Seconds()
		all := res.Report.Latency["kv.all"]
		r.P50VirtUs = all.Percentile(0.50).Microseconds()
		r.P95VirtUs = all.Percentile(0.95).Microseconds()
		r.P99VirtUs = all.Percentile(0.99).Microseconds()
		st := res.Report.RTS
		r.RTS = &st
		return r
	}
	results = append(results,
		kvEntry("kv/zipf-p8-repl", kv.PolicyReplicated),
		kvEntry("kv/zipf-p8-primary", kv.PolicyPrimary))

	// Adaptive placement at scale: the phase-shift affinity trace on 32
	// processors, every shard under the online placement controller.
	// Shards migrate to their dominant writers and re-home when the
	// write traffic rotates mid-run; the rts block pins the migration
	// count and virtual migration cost along with the percentiles.
	adaptEntry := func() benchResult {
		const p = 32
		wl := workload.Config{
			Keys: 4096, Dist: workload.Uniform,
			ReadFrac: 0.5, UpdateFrac: 0.25, Seed: 1,
			Rate: 200 * p, Duration: 200 * sim.Millisecond,
			ShiftFrac: 0.5, Partitions: p, LocalFrac: 0.9,
		}
		var res kv.Result
		r := measure("adapt/kv-shift-p32", 1, func(int64) *sim.Env {
			res = kv.Run(orca.Config{Processors: p, RTS: orca.Broadcast, Mixed: true, Seed: 1},
				kv.Params{Policy: kv.PolicyAdaptive, Shards: p, AffineKeys: true,
					Adapt:    rts.AdaptConfig{SampleEvery: 16, MinDwell: 10 * sim.Millisecond},
					Workload: wl})
			return res.Runtime.Env()
		})
		r.VirtualSec = res.Report.Elapsed.Seconds()
		all := res.Report.Latency["kv.all"]
		r.P50VirtUs = all.Percentile(0.50).Microseconds()
		r.P95VirtUs = all.Percentile(0.95).Microseconds()
		r.P99VirtUs = all.Percentile(0.99).Microseconds()
		st := res.Report.RTS
		r.RTS = &st
		return r
	}
	results = append(results, adaptEntry())

	// Sharded total order: the counter scale-out workload (every machine
	// streams assigns to a counter homed in its own shard's domain, 16
	// sequencer groups over 128 machines on the modern cost profile) and
	// the hash-spread sharded TSP run. virtual_s and the rts counters
	// are the reproduced datapoints; wall tracks the engine.
	shardCounter := func(name string, p, shards int, opsPer int64) benchResult {
		net := netsim.Params{
			BandwidthBps: 1_000_000_000, PropDelay: 5 * sim.Microsecond,
			FrameOverhead: 42, MTU: 1500, BroadcastCapable: true,
		}
		kern := amoeba.DefaultCosts()
		kern.Interrupt, kern.Protocol = 5*sim.Microsecond, 3*sim.Microsecond
		kern.Send, kern.Switch = 6*sim.Microsecond, 2*sim.Microsecond
		span := p / shards
		cfg := orca.Config{Processors: p, RTS: orca.Broadcast, Seed: 1,
			Shards: shards, ShardSpan: span,
			Net: &net, KernelCosts: &kern, Batching: orca.DefaultBatching()}
		var rt *orca.Runtime
		var virtual sim.Time
		r := measure(name, int64(p)*opsPer, func(int64) *sim.Env {
			rt = orca.New(cfg, std.Register)
			rep := rt.Run(func(pr *orca.Proc) {
				fin := std.NewBarrier(pr, p)
				for cpu := 0; cpu < p; cpu++ {
					cpu := cpu
					pr.Fork(cpu, "bench-shard-w", func(wp *orca.Proc) {
						c := std.NewCounter(wp, 0, orca.OnShard(cpu/span))
						for i := int64(0); i < opsPer; i++ {
							c.Assign(wp, int(i))
						}
						fin.Arrive(wp)
					})
				}
				fin.Wait(pr)
			})
			virtual = rep.Elapsed
			return rt.Env()
		})
		r.VirtualSec = virtual.Seconds()
		st := rt.Stats()
		r.RTS = &st
		return r
	}
	// opsPer is NOT scaled down under -quick: the run is sub-second and
	// a shorter stream would shift the fixed fork/create startup share
	// of ns/op, making quick CI runs incomparable to the pinned figure.
	results = append(results,
		shardCounter("shard/counter-p128-s16", 128, 16, 100),
		tspEntry("shard/tsp-p64-s8",
			orca.Config{Processors: 64, RTS: orca.Broadcast, Seed: 1,
				Shards: 8, Batching: orca.DefaultBatching()},
			tsp.Params{}))

	out := benchFile{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Results:     results,
		Baseline:    preRefactorBaseline,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%-22s %12.1f ns/op %14.0f events/s %8.1f allocs/op\n",
			r.Name, r.WallNsPerOp, r.EventsPerSec, r.AllocsPerOp)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
