package rts

import (
	"fmt"

	"repro/internal/sim"
)

// Crash recovery for the point-to-point runtime. The paper's §3.2.2
// RTS keeps one primary copy per object; a machine crash therefore
// threatens whole objects, not just replicas. Recovery re-homes each
// affected object onto a surviving machine the first time an operation
// trips over the dead primary:
//
//   - if any machine still holds a valid copy, the lowest-numbered
//     such machine is promoted to primary — the object's state (as of
//     the last update that reached that copy) survives;
//   - if the only copy died with the primary, the object is restarted
//     from its creation arguments on the lowest-numbered live machine
//     — the state is lost and the object begins again, which the
//     program must tolerate (Orca's fault-tolerance story for
//     unreplicated data is exactly this weak, which is why the paper's
//     broadcast RTS replicates everything).
//
// Writes interrupted by a crash are re-issued against the new primary,
// giving at-least-once execution: an update-protocol write that
// reached some secondaries before the primary died survives in the
// promoted copy and runs again on retry. DESIGN.md discusses why
// exactly-once would require write-ahead intentions the paper's RTS
// does not keep.

// nodeDown reports whether a machine has crashed.
func (r *P2PRTS) nodeDown(node int) bool { return r.nodes[node].m.Crashed() }

// NodeCrashed implements CrashAware: it counts the crash and releases
// copies the dead primary left locked mid-update, so local readers
// suspended on a locked copy re-check instead of sleeping forever.
// Object re-homing itself happens lazily, when the next operation
// against a dead primary fails.
func (r *P2PRTS) NodeCrashed(node int) {
	r.stats.Crashes++
	// Iterate objects in id order: waking suspended readers must happen
	// in a deterministic order, and the objs map iterates randomly.
	ids := make([]ObjID, 0, len(r.objs))
	for id, meta := range r.objs {
		if meta.primary == node {
			ids = append(ids, id)
		}
	}
	sortObjIDs(ids)
	for _, id := range ids {
		for _, n := range r.nodes {
			if n.m.Crashed() {
				continue
			}
			if inst, ok := n.insts[id]; ok && inst.valid && inst.locked {
				inst.locked = false
				inst.cond.Broadcast()
			}
		}
	}
}

// sortObjIDs sorts a small ObjID slice (insertion sort, like sortInts).
func sortObjIDs(a []ObjID) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// rehome moves an object whose primary crashed onto a surviving
// machine. It runs in the invoking thread's context, on whichever
// machine first observed the failure; the promotion mutates the global
// object table directly, modelling the recovery round a real RTS would
// run without simulating its messages (the cost of the failed attempts
// and retries is what the fault experiments measure). Idempotent: if
// another invoker already re-homed the object, this is a no-op.
func (r *P2PRTS) rehome(w *Worker, meta *p2pMeta) {
	if !r.nodeDown(meta.primary) {
		return // already re-homed by an earlier detector
	}
	// Prefer the lowest-numbered live machine holding a valid copy.
	target, restart, recovered := -1, false, false
	for _, n := range r.nodes {
		if n.m.Crashed() {
			continue
		}
		if inst, ok := n.insts[meta.id]; ok && inst.valid {
			target = n.m.ID()
			break
		}
	}
	if target == -1 {
		// Every copy died: restart from the creation arguments on the
		// lowest-numbered live machine.
		restart = true
		for _, n := range r.nodes {
			if !n.m.Crashed() {
				target = n.m.ID()
				break
			}
		}
		if target == -1 {
			panic(fmt.Sprintf("rts: no live machine to re-home object %d", meta.id))
		}
	}
	nn := r.nodes[target]
	inst, ok := nn.insts[meta.id]
	if !ok || !inst.valid {
		var st State
		if restart && r.recoverState != nil {
			// A mixed runtime may hold a frozen migration snapshot that
			// beats restarting from the creation arguments (see the
			// recoverState field).
			if st = r.recoverState(meta); st != nil {
				recovered = true
			}
		}
		if st == nil {
			st = meta.typ.New(meta.ctorArgs)
		}
		nn.installCopy(meta.id, meta.typ, st)
		inst = nn.insts[meta.id]
	}
	inst.primary = true
	inst.locked = false
	if inst.copyset == nil {
		inst.copyset = make(map[int]bool)
	}
	// Adopt the surviving secondaries and release any copy the dead
	// primary left locked between update phases.
	for _, n := range r.nodes {
		if n.m.Crashed() || n.m.ID() == target {
			continue
		}
		if sec, ok := n.insts[meta.id]; ok && sec.valid {
			inst.copyset[n.m.ID()] = true
			sec.primary = false
			sec.locked = false
			sec.cond.Broadcast()
		}
	}
	inst.cond.Broadcast()
	if _, ok := nn.queues[meta.id]; !ok {
		q := sim.NewQueue[*p2pTask](nn.m.Env())
		nn.queues[meta.id] = q
		id := meta.id
		nn.m.SpawnThread(fmt.Sprintf("obj%d", id), func(p *sim.Proc) { nn.objectLoop(p, id, q) })
	}
	old := meta.primary
	meta.primary = target
	r.stats.Rehomed++
	switch {
	case recovered:
		nn.m.Env().Tracef("rts: object %d recovered on node %d from its migration snapshot (primary %d died)", meta.id, target, old)
	case restart:
		nn.m.Env().Tracef("rts: object %d restarted on node %d (primary %d died with the only copy)", meta.id, target, old)
	default:
		nn.m.Env().Tracef("rts: object %d re-homed %d -> %d", meta.id, old, target)
	}
}
