package rts

import (
	"testing"

	"repro/internal/sim"
)

func TestPartialReplicationPlacement(t *testing.T) {
	b, r := newBcastTB(t, 21, 4, nil)
	var id ObjID
	b.spawn(0, "main", func(w *Worker) {
		id = r.CreateOn(w, "intcell", []int{0, 1}, 7)
	})
	b.run(5 * sim.Second)
	defer b.done()
	for node := 0; node < 4; node++ {
		_, ok := r.PeekState(node, id)
		want := node <= 1
		if ok != want {
			t.Fatalf("node %d has replica=%v, want %v", node, ok, want)
		}
	}
}

func TestPartialReplicationForwardedOps(t *testing.T) {
	b, r := newBcastTB(t, 22, 4, nil)
	var got int
	var id ObjID
	b.spawn(0, "main", func(w *Worker) {
		id = r.CreateOn(w, "intcell", []int{0, 1})
		b.spawn(3, "outsider", func(w *Worker) {
			// Node 3 holds no replica: both operations are forwarded.
			r.Invoke(w, id, "set", 42)
			got = r.Invoke(w, id, "get")[0].(int)
		})
	})
	b.run(10 * sim.Second)
	defer b.done()
	if got != 42 {
		t.Fatalf("forwarded read = %d, want 42", got)
	}
	if r.Forwarded() != 2 {
		t.Fatalf("forwarded ops = %d, want 2", r.Forwarded())
	}
	// The write must have reached both replica holders.
	for node := 0; node <= 1; node++ {
		s, _ := r.PeekState(node, id)
		if s.(*intCellState).v != 42 {
			t.Fatalf("replica on node %d = %d", node, s.(*intCellState).v)
		}
	}
}

func TestPartialReplicationLocalReadsStayLocal(t *testing.T) {
	b, r := newBcastTB(t, 23, 4, nil)
	b.spawn(0, "main", func(w *Worker) {
		id := r.CreateOn(w, "intcell", []int{0, 1}, 5)
		b.spawn(1, "holder", func(w *Worker) {
			w.P.Sleep(100 * sim.Millisecond)
			before := b.net.Stats().Messages
			for i := 0; i < 200; i++ {
				r.Invoke(w, id, "get")
			}
			if after := b.net.Stats().Messages; after != before {
				t.Errorf("replica holder generated %d messages for reads", after-before)
			}
		})
	})
	b.run(10 * sim.Second)
	b.done()
}

func TestPartialReplicationSavesMemory(t *testing.T) {
	b, r := newBcastTB(t, 24, 4, nil)
	b.spawn(0, "main", func(w *Worker) {
		r.CreateOn(w, "queue", []int{0})
	})
	b.run(2 * sim.Second)
	defer b.done()
	if b.ms[0].MemInUse() == 0 {
		t.Fatal("holder has no replica memory")
	}
	for node := 1; node < 4; node++ {
		if b.ms[node].MemInUse() != 0 {
			t.Fatalf("non-holder node %d reserves %d bytes", node, b.ms[node].MemInUse())
		}
	}
}

func TestPartialReplicationGuardedQueue(t *testing.T) {
	// A single-copy job queue — what the paper says would be better
	// than replicating it. Guarded gets forwarded from other nodes
	// must still block and then complete.
	b, r := newBcastTB(t, 25, 3, nil)
	var got []int
	b.spawn(0, "main", func(w *Worker) {
		q := r.CreateOn(w, "queue", []int{0})
		b.spawn(1, "consumer", func(w *Worker) {
			for i := 0; i < 3; i++ {
				got = append(got, r.Invoke(w, q, "get")[0].(int))
			}
		})
		b.spawn(2, "producer", func(w *Worker) {
			w.P.Sleep(200 * sim.Millisecond)
			for i := 0; i < 3; i++ {
				r.Invoke(w, q, "put", i*7)
			}
		})
	})
	b.run(30 * sim.Second)
	defer b.done()
	if len(got) != 3 {
		t.Fatalf("consumed %d items, want 3", len(got))
	}
	for i, v := range got {
		if v != i*7 {
			t.Fatalf("got %v, want FIFO of multiples of 7", got)
		}
	}
}

func TestCreateOnOutsidePlacementPanics(t *testing.T) {
	b, r := newBcastTB(t, 26, 3, nil)
	b.spawn(0, "main", func(w *Worker) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic creating outside placement")
			}
		}()
		r.CreateOn(w, "intcell", []int{1, 2})
	})
	b.run(2 * sim.Second)
	b.done()
}

func TestCreateOnEmptyPlacementIsFullReplication(t *testing.T) {
	b, r := newBcastTB(t, 27, 3, nil)
	var id ObjID
	b.spawn(0, "main", func(w *Worker) {
		id = r.CreateOn(w, "intcell", nil, 9)
	})
	b.run(2 * sim.Second)
	defer b.done()
	for node := 0; node < 3; node++ {
		if _, ok := r.PeekState(node, id); !ok {
			t.Fatalf("node %d missing replica under nil placement", node)
		}
	}
}
