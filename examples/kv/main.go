// Serving on shared objects: a sharded KV/session store under
// open-loop Zipf traffic, the same trace served twice with different
// placement policies. §3.2 frames replication strategy as a per-object
// decision driven by the read/write mix; a read-heavy serving workload
// is the clearest case. Replicated shards answer every get from the
// local copy and pay the total order only on writes; primary-copy
// shards write cheaply at their home but turn every remote get into an
// RPC — under 95% reads the clients saturate on their own synchronous
// reads and the latency tail explodes. The percentiles are virtual
// times measured from each request's scheduled arrival instant, so
// queueing delay is included (no coordinated omission).
package main

import (
	"fmt"

	"repro/internal/apps/kv"
	"repro/internal/orca"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	const procs = 8
	wl := workload.Config{
		Keys: 2048, Dist: workload.Zipf, Theta: 0.99,
		ReadFrac: 0.95, UpdateFrac: 0.02, Seed: 1,
		Rate: 2000 * procs, Duration: 100 * sim.Millisecond,
	}
	fmt.Printf("KV store, %d processors, Zipf(%.2f) over %d keys, %.0f%% reads, %.0f ops/s offered:\n\n",
		procs, wl.Theta, wl.Keys, wl.ReadFrac*100, wl.Rate)
	for _, pol := range []kv.Policy{kv.PolicyReplicated, kv.PolicyPrimary} {
		r := kv.Run(orca.Config{Processors: procs, RTS: orca.Broadcast, Mixed: true, Seed: 1},
			kv.Params{Policy: pol, Workload: wl})
		get, put := r.Report.Latency["kv.get"], r.Report.Latency["kv.put"]
		fmt.Printf("%-10s  %d ops at %.0f ops/s\n", pol, r.Ops, r.Throughput)
		fmt.Printf("            get p50=%v  p95=%v  p99=%v\n",
			get.Percentile(0.50), get.Percentile(0.95), get.Percentile(0.99))
		fmt.Printf("            put p50=%v  p99=%v   acked=%d lost=%d\n\n",
			put.Percentile(0.50), put.Percentile(0.99), r.AckedPuts, r.LostAcked)
	}
	fmt.Println("Same trace, same machines; only the shards' placement differs.")
	fmt.Println("Replication turns the read-heavy mix into local memory accesses,")
	fmt.Println("so the store absorbs the offered load; the primary-copy variant")
	fmt.Println("serializes on remote reads and falls behind its own arrivals.")
}
