// Quickstart: the shared data-object programming model in a dozen
// lines. Four processes on four simulated processors share a counter
// and a job queue; operations are sequentially consistent and guarded
// operations block, exactly as in Orca. The objects are typed: the
// queue is a Queue[int], the counter's methods take and return ints,
// and using them wrongly is a compile error — the role Orca's
// compiler played. Placement is per object: the read-mostly counter
// stays fully replicated while the write-mostly queue lives as a
// single primary copy on the point-to-point runtime.
package main

import (
	"fmt"

	"repro/internal/orca"
	"repro/internal/orca/std"
	"repro/internal/sim"
)

func main() {
	cfg := orca.Config{
		Processors: 4,              // a 4-machine Amoeba pool
		RTS:        orca.Broadcast, // default: replicated objects over total-order broadcast
		Mixed:      true,           // let individual objects opt onto the point-to-point runtime
		Seed:       1,
	}
	rt := orca.New(cfg, std.Register)

	var total int
	report := rt.Run(func(p *orca.Proc) {
		counter := std.NewCounter(p, 0) // Default policy: replicated on every machine
		queue := std.NewQueue[int](p, orca.With(orca.PrimaryCopy{
			Protocol: orca.Update, Placement: orca.SingleCopy,
		})) // write-mostly: one copy on this machine, no broadcasts
		done := std.NewBarrier(p, 3)

		// Fork one worker per remaining processor, sharing the
		// objects (Orca: fork worker(counter, queue) on cpu).
		for cpu := 1; cpu <= 3; cpu++ {
			p.Fork(cpu, fmt.Sprintf("worker%d", cpu), func(wp *orca.Proc) {
				for {
					n, ok := queue.Get(wp) // guarded: blocks until a job or close
					if !ok {
						break
					}
					wp.Work(sim.Time(n) * sim.Millisecond) // simulate n ms of computing
					counter.Add(wp, n)                     // indivisible update
				}
				done.Arrive(wp)
			})
		}

		for j := 1; j <= 10; j++ {
			queue.Add(p, j)
		}
		queue.Close(p)
		done.Wait(p)
		total = counter.Value(p)
	})

	fmt.Printf("sum computed by 3 workers: %d (want 55)\n", total)
	fmt.Printf("virtual time: %v, wire messages: %d\n", report.Elapsed, report.Net.Messages)
	fmt.Printf("program totals: %d local reads, %d broadcast writes, %d primary-copy writes\n",
		report.RTS.LocalReads, report.RTS.BcastWrites, report.RTS.P2PWrites)
	fmt.Println("every queue operation stayed off the broadcast; every counter read stayed local")
}
