package group

import (
	"fmt"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Additional failure-injection scenarios beyond the basic crash test.

func TestNonSequencerMemberCrash(t *testing.T) {
	// A crashed ordinary member must not stall the rest of the group
	// (history trimming skips it; delivery continues).
	h := newHarness(51, 4, nil, func(c *Config) {
		c.StatusEvery = 8
	})
	for i := 0; i < 4; i++ {
		i := i
		h.ms[i].SpawnThread("producer", func(p *sim.Proc) {
			for k := 0; k < 30; k++ {
				if h.ms[i].Crashed() {
					return
				}
				h.gs[i].Broadcast(p, "m", k, 64)
				p.Sleep(3 * sim.Millisecond)
			}
		})
	}
	h.env.At(40*sim.Millisecond, func() { h.ms[2].Crash() })
	h.env.RunUntil(30 * sim.Second)
	// Survivors must agree; node 2's deliveries stop at the crash.
	h.checkAgreement(t, -1, map[int]bool{2: true})
	if len(h.uidLogs[0]) < 90 {
		t.Fatalf("survivors delivered only %d messages", len(h.uidLogs[0]))
	}
	// Sequencer history must still be bounded (crashed member cannot
	// block trimming).
	if n := h.gs[0].historyLen(); n > 2048 {
		t.Fatalf("history grew to %d entries with a crashed member", n)
	}
	h.env.Stop()
	h.env.Shutdown()
}

func TestSequencerCrashUnderContinuousLoad(t *testing.T) {
	// Crash the sequencer while every member keeps broadcasting;
	// survivors must converge with no duplicates or losses of their
	// own messages.
	h := newHarness(53, 5, nil, func(c *Config) {
		c.SenderTimeout = 40 * sim.Millisecond
		c.SenderRetries = 2
		c.ElectionWait = 60 * sim.Millisecond
		c.Heartbeat = 80 * sim.Millisecond
	})
	sent := make([]int, 5)
	for i := 1; i < 5; i++ {
		i := i
		h.ms[i].SpawnThread("producer", func(p *sim.Proc) {
			for k := 0; k < 40; k++ {
				h.gs[i].Broadcast(p, "m", fmt.Sprintf("%d-%d", i, k), 80)
				sent[i]++
				p.Sleep(5 * sim.Millisecond)
			}
		})
	}
	h.env.At(70*sim.Millisecond, func() { h.ms[0].Crash() })
	h.env.RunUntil(120 * sim.Second)
	h.checkAgreement(t, -1, map[int]bool{0: true})
	want := sent[1] + sent[2] + sent[3] + sent[4]
	if got := len(h.uidLogs[1]); got != want {
		t.Fatalf("delivered %d messages, want %d (all survivor sends)", got, want)
	}
	h.env.Stop()
	h.env.Shutdown()
}

func TestTwoSuccessiveSequencerCrashes(t *testing.T) {
	h := newHarness(57, 5, nil, func(c *Config) {
		c.SenderTimeout = 30 * sim.Millisecond
		c.SenderRetries = 2
		c.ElectionWait = 50 * sim.Millisecond
		c.Heartbeat = 60 * sim.Millisecond
	})
	for i := 2; i < 5; i++ {
		i := i
		h.ms[i].SpawnThread("producer", func(p *sim.Proc) {
			// Two waves of traffic, so both crashes hit an active
			// group and both trigger elections.
			for k := 0; k < 15; k++ {
				h.gs[i].Broadcast(p, "m", k, 64)
				p.Sleep(8 * sim.Millisecond)
			}
			p.Sleep(600 * sim.Millisecond)
			for k := 15; k < 30; k++ {
				h.gs[i].Broadcast(p, "m", k, 64)
				p.Sleep(8 * sim.Millisecond)
			}
		})
	}
	h.env.At(50*sim.Millisecond, func() { h.ms[0].Crash() })
	// The likely new sequencer is node 1; kill it too.
	h.env.At(400*sim.Millisecond, func() { h.ms[1].Crash() })
	h.env.RunUntil(120 * sim.Second)
	h.checkAgreement(t, 90, map[int]bool{0: true, 1: true})
	seqr := h.gs[2].Sequencer()
	if seqr == 0 || seqr == 1 {
		t.Fatalf("sequencer is a crashed node: %d", seqr)
	}
	for i := 2; i < 5; i++ {
		if h.gs[i].Sequencer() != seqr {
			t.Fatalf("node %d disagrees on sequencer", i)
		}
	}
	h.env.Stop()
	h.env.Shutdown()
}

func TestCrashWithLossAndBBMethod(t *testing.T) {
	// The BB method under loss and a sequencer crash: data broadcasts
	// and accepts interleave with the election.
	h := newHarness(59, 4, func(p *netsim.Params) { p.DropProb = 0.08 },
		func(c *Config) {
			c.Method = ForceBB
			c.SenderTimeout = 40 * sim.Millisecond
			c.SenderRetries = 2
			c.GapTimeout = 20 * sim.Millisecond
			c.ElectionWait = 60 * sim.Millisecond
			c.Heartbeat = 70 * sim.Millisecond
		})
	for i := 1; i < 4; i++ {
		i := i
		h.ms[i].SpawnThread("producer", func(p *sim.Proc) {
			for k := 0; k < 20; k++ {
				h.gs[i].Broadcast(p, "m", k, 64)
				p.Sleep(6 * sim.Millisecond)
			}
		})
	}
	h.env.At(60*sim.Millisecond, func() { h.ms[0].Crash() })
	h.env.RunUntil(240 * sim.Second)
	h.checkAgreement(t, 60, map[int]bool{0: true})
	h.env.Stop()
	h.env.Shutdown()
}

func TestTransientPartitionHeals(t *testing.T) {
	// A fault-plan partition splits the group in two for a while:
	// messages from the minority side stall (their requests cannot
	// reach the sequencer), gap recovery kicks in on the far side, and
	// once the partition heals every member converges on one identical
	// delivery sequence with no losses of the senders' messages. The
	// window is shorter than the retry budget, so no election fires —
	// the reliability machinery alone must absorb the fault.
	h := newHarness(63, 4, nil, func(c *Config) {
		c.SenderTimeout = 80 * sim.Millisecond
		c.SenderRetries = 30
		c.GapTimeout = 40 * sim.Millisecond
	})
	h.net.InstallFaults(&netsim.FaultPlan{Partitions: []netsim.Partition{
		{A: []int{0, 1}, B: []int{2, 3}, From: 50 * sim.Millisecond, Until: 450 * sim.Millisecond},
	}}, nil)
	sent := 0
	for i := 0; i < 4; i++ {
		i := i
		h.ms[i].SpawnThread("producer", func(p *sim.Proc) {
			for k := 0; k < 25; k++ {
				h.gs[i].Broadcast(p, "m", k, 64)
				sent++
				p.Sleep(10 * sim.Millisecond)
			}
		})
	}
	h.env.RunUntil(60 * sim.Second)
	h.checkAgreement(t, -1, nil)
	if got := len(h.uidLogs[0]); got != sent {
		t.Fatalf("delivered %d messages, want all %d sends", got, sent)
	}
	if el := h.gs[2].Stats().Elections; el != 0 {
		t.Fatalf("partition (not crash) triggered %d elections; retry budget should have absorbed it", el)
	}
	h.env.Stop()
	h.env.Shutdown()
}

func TestStatsAccounting(t *testing.T) {
	h := newHarness(61, 3, nil, nil)
	h.ms[1].SpawnThread("producer", func(p *sim.Proc) {
		for k := 0; k < 10; k++ {
			h.gs[1].Broadcast(p, "m", k, 64)
			p.Sleep(sim.Millisecond)
		}
	})
	h.env.RunUntil(5 * sim.Second)
	st := h.gs[1].Stats()
	if st.Sent != 10 {
		t.Fatalf("sent = %d", st.Sent)
	}
	if st.Delivered != 10 {
		t.Fatalf("delivered = %d", st.Delivered)
	}
	if st.Retransmits != 0 || st.Elections != 0 {
		t.Fatalf("unexpected recovery activity on a clean run: %+v", st)
	}
	h.env.Stop()
	h.env.Shutdown()
}
