// Package workload generates deterministic, seedable serving traffic
// for the shared-object runtime: skewed (Zipf) or uniform key
// distributions, a configurable get/put/update mix, open-loop arrival
// at a target virtual rate (Poisson interarrivals) or closed-loop
// issue with think time, and an optional phase shift that rotates the
// hot key set mid-run.
//
// Every run of the same Config produces the same trace, operation for
// operation: the generator draws from one seeded source in a fixed
// order (arrival, key, kind), so traces can be double-run for
// determinism goldens and replayed byte-identically by different
// placement policies. The repo's batch apps (tsp, acp, chess, atpg)
// run to completion; this package supplies the open-loop, read-heavy,
// hot-key traffic shape a session store serves — the proving ground
// for the adaptive-placement and sharding work the ROADMAP queues.
//
// Stack: internal/apps/kv drives a sharded store from these traces;
// internal/harness renders the sweeps (-exp kv).
package workload
