// Package sim provides a deterministic discrete-event simulation
// kernel: a virtual clock, a (time, sequence) totally ordered event
// queue, and cooperatively scheduled processes.
//
// Exactly one simulated process (or event handler) executes at any
// instant, so simulations are fully deterministic and race-free by
// construction: the entire run is a single logical thread of control
// that hops between goroutines via channel handshakes. Because time
// is virtual, a 16-processor run is exact and repeatable on a
// single-core host, and injected faults (Env.Kill; see
// netsim.FaultPlan) replay exactly like any other event.
//
// This is the bottom of the stack. Upward: package netsim models the
// shared Ethernet on this clock, package amoeba boots simulated
// kernels whose threads are sim processes, and everything above
// (group, rts, orca, the applications) inherits determinism from
// here.
package sim
