package acp

import (
	"fmt"

	"repro/internal/orca"
	"repro/internal/orca/std"
	"repro/internal/rts"
)

// Result of one Orca ACP run.
type Result struct {
	Domains    []uint64
	NoSolution bool
	Revisions  int64
	Report     orca.Report
	Runtime    *orca.Runtime
}

// Params configures the parallel ACP program.
type Params struct {
	// Workers overrides the worker count. The default follows the
	// paper: one worker per processor except processor 0, which runs
	// the master ("the master process that distributes the work runs
	// on a separate processor"); with one processor, a single worker
	// shares it with the master.
	Workers int
	// FaultTolerant runs the crash-aware variant: the master
	// supervises worker liveness and retires dead participants, whose
	// variables join an orphan pool the survivors drain, so a fault
	// plan crashing worker machines still reaches the arc-consistent
	// fixpoint (see faults.go).
	FaultTolerant bool
}

// RunOrca executes the paper's parallel ACP program.
func RunOrca(cfg orca.Config, inst *Instance, params Params) Result {
	workers := params.Workers
	if workers == 0 {
		workers = cfg.Processors - 1
		if workers < 1 {
			workers = 1
		}
	}
	if params.FaultTolerant {
		return runOrcaFT(cfg, inst, workers)
	}
	rt := orca.New(cfg, registerAll)
	res := Result{}
	rep := rt.Run(func(p *orca.Proc) {
		domains := NewDomains(p, inst.NVars, inst.FullDomain())
		work := NewWork(p, inst.NVars, workers)
		result := std.NewBoolArray(p, workers, false)
		nosolution := std.NewFlag(p, false)
		revAcc := std.NewAccum(p)
		fin := std.NewBarrier(p, workers)

		parts := partition(inst.NVars, workers)
		for me := 0; me < workers; me++ {
			me := me
			p.Fork(workerCPU(me, cfg.Processors), fmt.Sprintf("acp-worker%d", me), func(wp *orca.Proc) {
				workerLoop(wp, inst, me, parts[me], domains, work, result, nosolution, revAcc)
				fin.Arrive(wp)
			})
		}

		fin.Wait(p)
		res.NoSolution = nosolution.Value(p)
		res.Revisions = int64(revAcc.Value(p))
		res.Domains = domains.Snapshot(p)
	})
	res.Report = rep
	res.Runtime = rt
	return res
}

// registerAll registers the std and ACP object types.
func registerAll(reg *rts.Registry) {
	std.Register(reg)
	RegisterTypes(reg)
}

// partition statically splits the variables among the workers.
func partition(nVars, workers int) [][]int {
	parts := make([][]int, workers)
	for v := 0; v < nVars; v++ {
		parts[v%workers] = append(parts[v%workers], v)
	}
	return parts
}

// workerCPU places worker me following the paper: workers start on
// processor 1 (the master has processor 0 to itself) and wrap.
func workerCPU(me, procs int) int {
	cpu := me + 1
	if cpu >= procs {
		cpu = me % procs
	}
	return cpu
}

// workerLoop is one ACP worker: claim a flagged variable (its own
// partition first, then the orphan pool), recheck its constraints, and
// participate in the distributed termination protocol. Shared by the
// plain and fault-tolerant variants.
func workerLoop(wp *orca.Proc, inst *Instance, me int, myVars []int,
	domains Domains, work Work, result std.BoolArray, nosolution std.Flag, revAcc std.Accum) {
	var revisions int64

	// process rechecks the constraints involving variable v, shrinking
	// v's set; returns false on wipeout. Work flags for neighbors are
	// marked once at the end, in a single indivisible operation.
	process := func(v int) bool {
		changed := false
		for _, ci := range inst.Incident(v) {
			c := inst.Constraints[ci]
			other := c.I
			if other == v {
				other = c.J
			}
			dv, do := domains.Get2(wp, v, other)
			nv := Revise(c, v, dv, do, inst.DomainSize)
			wp.Work(inst.ReviseCost())
			revisions++
			if nv == dv {
				continue
			}
			_, wipeout := domains.Remove(wp, v, dv&^nv)
			changed = true
			if wipeout {
				// Empty set: no solution exists.
				nosolution.Set(wp, true)
				work.Finish(wp)
				return false
			}
		}
		if changed {
			// Neighbors must be rechecked; so must v itself, since its
			// set changed.
			nbs := append([]int{v}, inst.Neighbors(v)...)
			work.Mark(wp, nbs)
		}
		return true
	}

	for {
		// "Each process reads the object before doing new work, and
		// quits if the value is true." (a local read on the replicated
		// flag)
		if nosolution.Value(wp) {
			break
		}
		v, done := work.Claim(wp, me, myVars)
		if done {
			break
		}
		if v >= 0 {
			if !process(v) {
				break
			}
			continue
		}
		// Out of work: declare willingness to terminate, then block
		// for more work or termination.
		result.Set(wp, me, true)
		if work.SetIdle(wp, me) {
			break
		}
		v, done = work.Await(wp, me, myVars)
		if done {
			break
		}
		result.Set(wp, me, false)
		if v >= 0 && !process(v) {
			break
		}
	}
	revAcc.Add(wp, int(revisions))
}
