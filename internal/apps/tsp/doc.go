// Package tsp implements the paper's first application (§4.1): the
// Traveling Salesman Problem solved by parallel branch-and-bound in
// the replicated worker style.
//
// "The parallel program keeps track of the best solution found so far
// by any worker process. This value is used as a bound. [...] The
// bound must be accessible to all workers, so it is stored in a shared
// object. This object is read very frequently and is written only when
// a new better route has been found. In practice, the object may be
// read millions of times and written only a few times."
//
// The program uses two shared objects: the global bound (a
// std.Counter, whose indivisible min operation checks the new value
// is actually smaller, preventing races) and a job queue filled by a
// manager with partial initial routes. Params selects queue placement
// variants (replicated, single-copy, primary-copy) and the
// fault-tolerant variant (faults.go), whose claim-tracking queue lets
// the manager requeue a crashed worker's jobs so the search still
// finds the optimum.
//
// Downward: built on package orca and the std object types. Upward:
// internal/harness reproduces Figure 2 and the fault scenarios from
// this package.
package tsp
