// Chess example: Oracol solving a mate-in-two, with the search tree
// dynamically partitioned over the processors and shared killer and
// transposition tables.
package main

import (
	"fmt"

	"repro/internal/apps/chess"
	"repro/internal/orca"
)

func main() {
	// White mates in two: 1.Kb6 (any) 2.Qg8#.
	b, err := chess.FromFEN("k7/8/8/1K6/8/8/6Q1/8 w - - 0 1")
	if err != nil {
		panic(err)
	}
	fmt.Println(b)
	fmt.Println()

	seq := chess.SearchRoot(b, 4, chess.NewLocalTables(), nil)
	fmt.Printf("sequential: best %v, mate in %d, %d nodes\n",
		seq.BestMove, chess.MovesToMate(seq.Score), seq.Nodes)

	res := chess.RunOrca(orca.Config{
		Processors: 4,
		RTS:        orca.Broadcast,
		Seed:       1,
	}, b, chess.Params{MaxDepth: 4, SharedTT: true, SharedKiller: true})
	fmt.Printf("parallel:   best %v, mate in %d, %d nodes, %v virtual\n",
		res.BestMove, chess.MovesToMate(res.Score), res.Nodes, res.Report.Elapsed)

	if !chess.IsMateScore(res.Score) {
		panic("parallel search missed the mate")
	}
	fmt.Println("\nthe killer and transposition tables are ordinary shared objects;")
	fmt.Println("switching between local and shared versions is a one-line change")
}
