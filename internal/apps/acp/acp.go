package acp

import (
	"math/bits"
	"math/rand"

	"repro/internal/sim"
)

// RelKind is the kind of a binary constraint between two variables.
type RelKind int

const (
	// RelLt is Vi < Vj + K.
	RelLt RelKind = iota
	// RelNeq is Vi != Vj + K.
	RelNeq
	// RelAbsGe is |Vi - Vj| >= K.
	RelAbsGe
	// RelAbsLe is |Vi - Vj| <= K.
	RelAbsLe
)

// Constraint is a binary constraint between variables I and J.
type Constraint struct {
	I, J int
	Rel  RelKind
	K    int
}

// Holds reports whether the constraint is satisfied by Vi=a, Vj=b.
func (c Constraint) Holds(a, b int) bool {
	switch c.Rel {
	case RelLt:
		return a < b+c.K
	case RelNeq:
		return a != b+c.K
	case RelAbsGe:
		d := a - b
		if d < 0 {
			d = -d
		}
		return d >= c.K
	case RelAbsLe:
		d := a - b
		if d < 0 {
			d = -d
		}
		return d <= c.K
	}
	return false
}

// Instance is an arc-consistency problem: NVars variables with domains
// {0..DomainSize-1} and binary constraints.
type Instance struct {
	NVars       int
	DomainSize  int
	Constraints []Constraint
	// adj[i] lists indices into Constraints incident on variable i.
	adj [][]int
}

// ReviseCostPerPair is the virtual CPU cost of one support check in
// revise; a full revise of a domain of size d against another costs
// about d*d of these.
const ReviseCostPerPair = 800 * sim.Nanosecond

// ReviseCost reports the virtual CPU cost of one revise call.
func (inst *Instance) ReviseCost() sim.Time {
	return sim.Time(inst.DomainSize*inst.DomainSize) * ReviseCostPerPair
}

// Generate builds a random connected constraint network with the given
// variable count and domain size (<= 64 values, stored as bitmasks).
// extraEdges adds density beyond the random spanning tree. The paper's
// Fig. 3 input has 64 variables.
func Generate(nVars, domainSize int, extraEdges int, seed int64) *Instance {
	if domainSize > 64 {
		panic("acp: domain size > 64")
	}
	rng := rand.New(rand.NewSource(seed))
	inst := &Instance{NVars: nVars, DomainSize: domainSize}
	randomRel := func() (RelKind, int) {
		switch rng.Intn(4) {
		case 0:
			return RelLt, rng.Intn(domainSize/2) + 1
		case 1:
			return RelNeq, rng.Intn(5) - 2
		case 2:
			return RelAbsGe, rng.Intn(domainSize/4) + 1
		default:
			return RelAbsLe, domainSize/2 + rng.Intn(domainSize/2)
		}
	}
	// Spanning tree for connectivity.
	perm := rng.Perm(nVars)
	for k := 1; k < nVars; k++ {
		i := perm[k]
		j := perm[rng.Intn(k)]
		rel, K := randomRel()
		inst.Constraints = append(inst.Constraints, Constraint{I: i, J: j, Rel: rel, K: K})
	}
	for e := 0; e < extraEdges; e++ {
		i, j := rng.Intn(nVars), rng.Intn(nVars)
		if i == j {
			continue
		}
		rel, K := randomRel()
		inst.Constraints = append(inst.Constraints, Constraint{I: i, J: j, Rel: rel, K: K})
	}
	inst.buildAdj()
	return inst
}

// GeneratePropagation builds an instance designed for long
// arc-consistency propagation: the variables form a cycle of ordering
// constraints whose slack tightens the domains wave after wave, plus
// random cross constraints. This models the paper's "interesting"
// inputs, where the fixpoint takes many rounds and workers genuinely
// exchange domain updates.
func GeneratePropagation(nVars, domainSize, extraEdges int, seed int64) *Instance {
	if domainSize > 64 {
		panic("acp: domain size > 64")
	}
	if domainSize < nVars {
		panic("acp: propagation instances need domainSize >= nVars")
	}
	rng := rand.New(rand.NewSource(seed))
	inst := &Instance{NVars: nVars, DomainSize: domainSize}
	perm := rng.Perm(nVars) // perm[pos] = variable at chain position pos
	// Strict ordering chain: the variable at position p must be less
	// than the one at p+1. Arc consistency erodes the domains one
	// value per wave, so the fixpoint takes many rounds.
	for pos := 0; pos+1 < nVars; pos++ {
		inst.Constraints = append(inst.Constraints,
			Constraint{I: perm[pos], J: perm[pos+1], Rel: RelLt, K: 0})
	}
	// Extras keep the witness x[perm[pos]] = pos satisfiable:
	// reverse bounds pin position differences (more back-propagation)
	// and disequalities add cross traffic.
	for e := 0; e < extraEdges; e++ {
		a := rng.Intn(nVars - 1)
		b := a + 1 + rng.Intn(nVars-a-1)
		if rng.Intn(2) == 0 {
			// x[perm[b]] < x[perm[a]] + (b-a+1): together with the
			// chain this forces the difference to exactly b-a.
			inst.Constraints = append(inst.Constraints,
				Constraint{I: perm[b], J: perm[a], Rel: RelLt, K: b - a + 1})
		} else {
			k := rng.Intn(domainSize/2) + 1
			if k == a-b { // would contradict the witness
				k++
			}
			inst.Constraints = append(inst.Constraints,
				Constraint{I: perm[a], J: perm[b], Rel: RelNeq, K: k})
		}
	}
	inst.buildAdj()
	return inst
}

func (inst *Instance) buildAdj() {
	inst.adj = make([][]int, inst.NVars)
	for ci, c := range inst.Constraints {
		inst.adj[c.I] = append(inst.adj[c.I], ci)
		inst.adj[c.J] = append(inst.adj[c.J], ci)
	}
}

// Incident returns the constraint indices touching variable v.
func (inst *Instance) Incident(v int) []int { return inst.adj[v] }

// Neighbors returns the variables sharing a constraint with v.
func (inst *Instance) Neighbors(v int) []int {
	seen := map[int]bool{}
	var out []int
	for _, ci := range inst.adj[v] {
		c := inst.Constraints[ci]
		o := c.I
		if o == v {
			o = c.J
		}
		if o != v && !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}

// FullDomain returns the bitmask of all values.
func (inst *Instance) FullDomain() uint64 {
	if inst.DomainSize == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(inst.DomainSize)) - 1
}

// Revise computes the new domain of the constraint-side variable v
// given the other side's domain: values of v without support are
// removed. v must be c.I or c.J.
func Revise(c Constraint, v int, dv, dother uint64, domainSize int) uint64 {
	var out uint64
	for a := 0; a < domainSize; a++ {
		if dv&(1<<uint(a)) == 0 {
			continue
		}
		for b := 0; b < domainSize; b++ {
			if dother&(1<<uint(b)) == 0 {
				continue
			}
			ok := false
			if v == c.I {
				ok = c.Holds(a, b)
			} else {
				ok = c.Holds(b, a)
			}
			if ok {
				out |= 1 << uint(a)
				break
			}
		}
	}
	return out
}

// SeqResult is the output of the sequential baseline.
type SeqResult struct {
	Domains    []uint64
	NoSolution bool
	Revisions  int64
}

// SolveSeq runs the sequential algorithm of the paper: assign full
// domains, then repeatedly restrict sets using the constraints until
// no more changes, keeping a list of variables whose sets changed
// (AC-3 style).
func SolveSeq(inst *Instance) SeqResult {
	res := SeqResult{Domains: make([]uint64, inst.NVars)}
	for i := range res.Domains {
		res.Domains[i] = inst.FullDomain()
	}
	work := make([]bool, inst.NVars)
	queue := make([]int, 0, inst.NVars)
	for i := 0; i < inst.NVars; i++ {
		work[i] = true
		queue = append(queue, i)
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		work[v] = false
		for _, ci := range inst.adj[v] {
			c := inst.Constraints[ci]
			other := c.I
			if other == v {
				other = c.J
			}
			res.Revisions++
			nv := Revise(c, v, res.Domains[v], res.Domains[other], inst.DomainSize)
			if nv == res.Domains[v] {
				continue
			}
			res.Domains[v] = nv
			if nv == 0 {
				res.NoSolution = true
				return res
			}
			for _, nb := range inst.Neighbors(v) {
				if !work[nb] {
					work[nb] = true
					queue = append(queue, nb)
				}
			}
			if !work[v] {
				work[v] = true
				queue = append(queue, v)
			}
		}
	}
	return res
}

// DomainSizes reports the cardinality of each domain mask.
func DomainSizes(domains []uint64) []int {
	out := make([]int, len(domains))
	for i, d := range domains {
		out[i] = bits.OnesCount64(d)
	}
	return out
}
