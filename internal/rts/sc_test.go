package rts

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// Sequential-consistency checking. The model guarantees that all
// operations on all shared objects appear to execute in some total
// order consistent with each process's program order. For a register
// object (intcell) we can check this directly on recorded histories:
//
//   - collect every process's operation sequence (program order),
//   - writes assign unique values, so every read names the write it
//     observed,
//   - verify a legal interleaving exists via greedy simulation over
//     the known write order (the broadcast RTS totally orders writes,
//     so the write sequence is fixed; reads must slot between them
//     without violating program order).

type scOp struct {
	proc  int
	write bool
	val   int // value written or read
}

// checkSC verifies the per-process histories against the global write
// order: for each process, the values it reads must be non-decreasing
// in write order (a process may never observe an older write after a
// newer one), its own writes must appear in write order, and a read
// following the process's own write must not observe an earlier write.
func checkSC(t *testing.T, histories [][]scOp, writeOrder []int) {
	t.Helper()
	// Position of each written value in the total write order.
	pos := make(map[int]int)
	for i, v := range writeOrder {
		pos[v] = i + 1 // 0 is the initial value's position
	}
	pos[0] = 0 // initial state
	for p, hist := range histories {
		lastPos := -1
		for i, op := range hist {
			wp, ok := pos[op.val]
			if !ok {
				t.Fatalf("proc %d op %d: value %d not in write order", p, i, op.val)
			}
			if op.write {
				if wp < lastPos {
					t.Fatalf("proc %d: own write %d (pos %d) ordered before an observed pos %d",
						p, op.val, wp, lastPos)
				}
				lastPos = wp
				continue
			}
			if wp < lastPos {
				t.Fatalf("proc %d op %d: read observed value %d (pos %d) after already observing pos %d — time went backwards",
					p, i, op.val, wp, lastPos)
			}
			lastPos = wp
		}
	}
}

// TestBroadcastRTSSequentialConsistency drives concurrent unique-value
// writes and reads on one object and validates every process's history
// against the replica's write order.
func TestBroadcastRTSSequentialConsistency(t *testing.T) {
	f := func(seed int64) bool {
		const nodes = 4
		b, r := newBcastTB(t, seed, nodes, nil)
		var id ObjID
		histories := make([][]scOp, nodes)
		var writeOrder []int
		b.spawn(0, "boot", func(w *Worker) {
			id = r.Create(w, "intcell") // starts at 0
			for n := 0; n < nodes; n++ {
				n := n
				b.spawn(n, fmt.Sprintf("p%d", n), func(w *Worker) {
					rng := b.env.Rand()
					for i := 0; i < 12; i++ {
						if rng.Intn(3) == 0 {
							v := n*1000 + i + 1 // unique nonzero value
							r.Invoke(w, id, "set", v)
							histories[n] = append(histories[n], scOp{proc: n, write: true, val: v})
						} else {
							got := r.Invoke(w, id, "get")[0].(int)
							histories[n] = append(histories[n], scOp{proc: n, val: got})
						}
						w.Charge(sim.Time(rng.Intn(500)) * sim.Microsecond)
					}
				})
			}
		})
		b.run(120 * sim.Second)
		defer b.done()
		// Reconstruct the global write order by replaying node 0's
		// replica log: writes apply in delivery order, which the group
		// layer totally orders. We log it via a shadow: since the
		// intcell keeps only the last value, recover order from each
		// process's program order of writes merged by observation.
		// Simpler and exact: ask the RTS how many writes were applied
		// and re-derive from history — unique values make the merged
		// observation order checkable without the full total order:
		// here we use the union of writes sorted by the order node 0
		// observed them... but node 0 does not observe all. Instead,
		// validate pairwise monotonicity using an order oracle
		// captured below.
		writeOrder = captureWriteOrder(histories)
		checkSC(t, histories, writeOrder)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// captureWriteOrder reconstructs the total write order from the
// observation structure: since the broadcast RTS applies all writes in
// group-sequence order on every replica and the test's values are
// unique, the order each process issued its writes (program order)
// combined with inter-process reads gives a partial order; for the
// checker above only each process's observation monotonicity matters,
// so a topological order of (own-write precedence, read observations)
// suffices. We build it greedily.
func captureWriteOrder(histories [][]scOp) []int {
	// Edges: w1 -> w2 if some process wrote w1 before w2 (program
	// order), or read w1 then later read/wrote w2.
	values := map[int]bool{}
	edges := map[int]map[int]bool{}
	addEdge := func(a, b int) {
		if a == b || a == 0 {
			return
		}
		if edges[a] == nil {
			edges[a] = map[int]bool{}
		}
		edges[a][b] = true
	}
	for _, hist := range histories {
		prev := 0
		for _, op := range hist {
			if op.val != 0 {
				values[op.val] = true
			}
			addEdge(prev, op.val)
			prev = op.val
		}
	}
	// Kahn's algorithm; ties broken by value for determinism.
	indeg := map[int]int{}
	for v := range values {
		indeg[v] += 0
	}
	for _, outs := range edges {
		for b := range outs {
			indeg[b]++
		}
	}
	var order []int
	for len(indeg) > 0 {
		best := 0
		found := false
		for v, d := range indeg {
			if d == 0 && (!found || v < best) {
				best, found = v, true
			}
		}
		if !found {
			// Cycle: impossible under SC with monotone observations;
			// surface as empty order so the checker fails loudly.
			return nil
		}
		order = append(order, best)
		delete(indeg, best)
		for b := range edges[best] {
			if _, ok := indeg[b]; ok {
				indeg[b]--
			}
		}
	}
	return order
}

// TestSCViolationDetectorSanity makes sure the checker actually fails
// on a non-SC history (a process observing values in opposing orders).
func TestSCViolationDetectorSanity(t *testing.T) {
	histories := [][]scOp{
		{{proc: 0, write: true, val: 1}, {proc: 0, write: true, val: 2}},
		{{proc: 1, val: 2}, {proc: 1, val: 1}}, // reads new then old: violation
	}
	order := captureWriteOrder(histories)
	if order != nil {
		// The cycle 1->2 (program order) vs 2->1 (observation) must
		// be detected as unorderable.
		t.Fatalf("expected cycle detection, got order %v", order)
	}
}
