package harness

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/apps/kv"
	"repro/internal/orca"
	"repro/internal/rts"
	"repro/internal/sim"
	"repro/internal/workload"
)

// AdaptExperiment proves the adaptive placement controller on the
// input it was built for: a partitioned-affinity KV trace whose write
// traffic moves at mid-run (every machine's home key block rotates to
// the next machine). Static placements are wrong in at least one
// phase — replicated pays the total order for every write in both
// phases, a primary copy homed for phase 1 serves phase 2's writes by
// RPC — while the adaptive policy starts replicated, migrates each
// shard to a primary copy at its dominant writer, and re-homes when
// the traffic shifts.
//
// Every configuration runs twice (fingerprints must match), and the
// harness asserts the PR's acceptance bar: the adaptive policy's worst
// phase beats every static policy's worst phase on both throughput
// and p99 latency, and each adaptive phase lands within 10% of the
// per-phase best static policy.
func AdaptExperiment(w io.Writer, scale Scale) {
	p := 8
	keys := int64(4096)
	dur := 400 * sim.Millisecond
	ratePerProc := 1500.0
	if scale == Quick {
		p = 4
		keys = 1024
		dur = 160 * sim.Millisecond
		ratePerProc = 1200.0
	}
	wl := workload.Config{
		Keys: keys, Dist: workload.Uniform,
		ReadFrac: 0.5, UpdateFrac: 0.25, Seed: 1,
		Rate: ratePerProc * float64(p), Duration: dur,
		ShiftFrac: 0.5, Partitions: p, LocalFrac: 0.9,
	}
	adapt := rts.AdaptConfig{SampleEvery: 16, MinDwell: 10 * sim.Millisecond}
	// Per-phase percentiles are steady-state: the first half of each
	// phase is warmup, excluded for every policy equally. The adaptive
	// policy detects and migrates inside that window; the statics get
	// the same grace and still serve their steady state.
	warmup := dur / 4

	run := func(name string, params kv.Params) kv.Result {
		cfg := orca.Config{Processors: p, RTS: orca.Broadcast, Mixed: true, Seed: 1}
		fp := ""
		var r kv.Result
		for i := 0; i < 2; i++ {
			r = kv.Run(cfg, params)
			if r.Report.TimedOut {
				panic(fmt.Sprintf("harness: adapt %s timed out (blocked: %v)", name, r.Report.Blocked))
			}
			got := fmt.Sprintf("ops=%d elapsed=%d msgs=%d mig=%d ph=%v lost=%d",
				r.Ops, int64(r.Report.Elapsed), r.Report.Net.Messages,
				r.Report.RTS.Migrations, r.PhaseOps, r.LostAcked)
			if fp == "" {
				fp = got
			} else if fp != got {
				panic(fmt.Sprintf("harness: adapt %s not deterministic:\n  %s\n  %s", name, fp, got))
			}
		}
		if r.LostAcked > 0 {
			panic(fmt.Sprintf("harness: adapt %s lost %d acknowledged writes", name, r.LostAcked))
		}
		return r
	}

	fmt.Fprintf(w, "== Adaptive placement: affinity trace (%d partitions, %.0f%% local), home rotates at t=%.0f%% ==\n",
		p, wl.LocalFrac*100, wl.ShiftFrac*100)
	fmt.Fprintf(w, "-- P=%d, %d keys, %.0f ops/s, 50/25/25 get/update/put, affine key->shard map --\n",
		p, keys, wl.Rate)
	policies := []kv.Policy{kv.PolicyReplicated, kv.PolicyPrimary, kv.PolicyMixed, kv.PolicyAdaptive}
	results := make(map[kv.Policy]kv.Result, len(policies))
	var rows [][]string
	for _, pol := range policies {
		params := kv.Params{Policy: pol, Shards: p, AffineKeys: true, Adapt: adapt,
			PhaseWarmup: warmup, Workload: wl}
		r := run(pol.String(), params)
		results[pol] = r
		rows = append(rows, []string{
			pol.String(), fmt.Sprint(r.Ops),
			fmt.Sprintf("%.0f", r.PhaseThroughput[0]), fmt.Sprintf("%.0f", r.PhaseThroughput[1]),
			fmt.Sprintf("%.0f", r.PhaseP50US[0]), fmt.Sprintf("%.0f", r.PhaseP99US[0]),
			fmt.Sprintf("%.0f", r.PhaseP50US[1]), fmt.Sprintf("%.0f", r.PhaseP99US[1]),
			fmt.Sprint(r.Report.RTS.Migrations),
		})
	}
	Table(w, []string{"policy", "ops", "ph0 ops/s", "ph1 ops/s",
		"ph0 p50us", "ph0 p99us", "ph1 p50us", "ph1 p99us", "migrations"}, rows)

	// Final placements of the adaptive run, grouped.
	ad := results[kv.PolicyAdaptive]
	byPlace := map[string]int{}
	for _, pl := range ad.Report.Placements {
		byPlace[pl]++
	}
	places := make([]string, 0, len(byPlace))
	for pl := range byPlace {
		places = append(places, pl)
	}
	sort.Strings(places)
	fmt.Fprintf(w, "final adaptive placements:")
	for _, pl := range places {
		fmt.Fprintf(w, " %s x%d", pl, byPlace[pl])
	}
	fmt.Fprintln(w)

	// Acceptance bar. Worst phase of each policy:
	worstTp := func(r kv.Result) float64 {
		if r.PhaseThroughput[0] < r.PhaseThroughput[1] {
			return r.PhaseThroughput[0]
		}
		return r.PhaseThroughput[1]
	}
	worstP99 := func(r kv.Result) float64 {
		if r.PhaseP99US[0] > r.PhaseP99US[1] {
			return r.PhaseP99US[0]
		}
		return r.PhaseP99US[1]
	}
	if ad.Report.RTS.Migrations == 0 {
		panic("harness: adapt: no migrations on the phase-shift trace")
	}
	for _, pol := range policies[:3] {
		st := results[pol]
		if worstTp(ad) <= worstTp(st) {
			panic(fmt.Sprintf("harness: adapt: worst-phase ops/s %.0f does not beat %v's %.0f",
				worstTp(ad), pol, worstTp(st)))
		}
		if worstP99(ad) >= worstP99(st) {
			panic(fmt.Sprintf("harness: adapt: worst-phase p99 %.0fus does not beat %v's %.0fus",
				worstP99(ad), pol, worstP99(st)))
		}
	}
	for ph := 0; ph < 2; ph++ {
		bestTp, bestP99 := 0.0, 0.0
		for _, pol := range policies[:3] {
			st := results[pol]
			if st.PhaseThroughput[ph] > bestTp {
				bestTp = st.PhaseThroughput[ph]
			}
			if bestP99 == 0 || st.PhaseP99US[ph] < bestP99 {
				bestP99 = st.PhaseP99US[ph]
			}
		}
		if ad.PhaseThroughput[ph] < 0.9*bestTp {
			panic(fmt.Sprintf("harness: adapt: phase %d ops/s %.0f more than 10%% behind best static %.0f",
				ph, ad.PhaseThroughput[ph], bestTp))
		}
		if ad.PhaseP99US[ph] > 1.1*bestP99 {
			panic(fmt.Sprintf("harness: adapt: phase %d p99 %.0fus more than 10%% above best static %.0fus",
				ph, ad.PhaseP99US[ph], bestP99))
		}
	}
	fmt.Fprintln(w, "acceptance: adaptive beats every static policy's worst phase (ops/s, p99)")
	fmt.Fprintln(w, "and lands within 10% of the per-phase best; migration runs fingerprint-identical.")
	fmt.Fprintln(w)
}
