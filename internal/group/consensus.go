package group

// Consensus-backed sequencing (Config.Protocol == Consensus): a
// replicated total-order log that survives sequencer loss without an
// election stall.
//
// The elected-sequencer protocol delivers a slot the moment the
// sequencer's data frame arrives, so a sequencer crash loses the
// undelivered tail and every broadcast stalls for a full
// vote-collection election. Here the leader instead runs one
// single-decree Paxos instance per sequence number:
//
//   - The leader assigns slots exactly like the sequencer (the same
//     nextSeqNum/history/dedup machinery) but broadcasts a proposal
//     frame (grp-prop) instead of sequenced data. A packed batch
//     travels as one multi-slot proposal, accepted atomically per
//     member, which keeps More frame boundaries stable across
//     re-proposal.
//   - Members accept proposals into an acceptor log and acknowledge
//     with their cumulative contiguous accepted prefix (grp-pacc).
//     Cumulative prefixes make acks idempotent: retransmitted
//     proposals or reordered acks cannot double-count.
//   - When a majority's prefixes cover a slot the leader commits it:
//     it delivers locally and broadcasts the new commit watermark
//     (grp-pcmt, also piggybacked on later proposals and heartbeats).
//     A member delivers an accepted slot when a commit covers it AND
//     the slot was accepted under the committing ballot; otherwise
//     the slot is a gap and the ordinary retransmission machinery
//     fetches the chosen value — the leader only ever serves
//     committed slots as direct data.
//
// Leader loss: suspicion reuses the sender-retry and gap-stall paths,
// but instead of an election the members run a deterministic takeover
// ladder — the first live member after the leader in membership order
// acts immediately, later ranks back off by rank*2*ProposeTimeout
// plus a hash-of-(node,ballot) jitter, so re-runs of one seed take
// over in the same order with no wall clock and no extra rand draws.
// The candidate prepares a fresh ballot it owns (member i owns
// ballots b with (b-1) mod n == i), collects a majority of promises
// carrying accepted entries, adopts the highest-ballot value per slot
// (holes become noop fillers that occupy the slot but never surface),
// truncates any More boundary whose successor was noop-filled, and
// re-proposes the whole uncommitted tail under its ballot. Everything
// a quorum accepted survives verbatim; the stall is one re-proposal
// round trip, not an election window.
//
// Determinism notes: no wall clocks, no env.Rand() draws — every
// timer is a fixed Config duration and the only "randomness" is a
// splitmix64 hash of (node id, ballot). Nothing iterates a Go map on
// a path that transmits (promise merges go to a map but the finalize
// walks slot indices in order).

import (
	"repro/internal/amoeba"
	"repro/internal/sim"
)

// noopKind marks a consensus noop filler (Src -1): a slot chosen to
// carry nothing, filling a hole left by a crashed leader.
const noopKind = "grp-noop"

// balChosen is the ballot promises report for slots this member has
// already delivered. Delivered slots are chosen — decided forever —
// so they must outrank any merely-accepted value in the takeover
// merge: a candidate that missed the deciding round may hold a stale
// accepted value under a higher ballot than the one that won, and
// re-proposing that value would split the log.
const balChosen = int64(1)<<62 - 1

// accSlot is one acceptor-log entry: the highest-ballot value
// accepted for a slot. The zero value means "nothing accepted".
type accSlot struct {
	bal int64
	d   *dataMsg
}

// Consensus wire bodies (all on the "grp" port).
type (
	// propMsg proposes values for the slots Ds occupy (whole records
	// travel, so More flags survive re-proposal verbatim), and
	// piggybacks the proposer's commit watermark.
	propMsg struct {
		Ballot int64
		Commit int64
		Ds     []*dataMsg
	}
	// paccMsg acknowledges proposals: AccUpTo is the member's
	// cumulative contiguous accepted prefix under Ballot.
	paccMsg struct {
		Ballot  int64
		Node    int
		AccUpTo int64
	}
	// pcmtMsg announces that every slot up to UpTo is chosen; all
	// slots in the newly covered range were proposed under Ballot.
	pcmtMsg struct {
		Ballot int64
		UpTo   int64
	}
	// pnackMsg tells a stale proposer which ballot the member has
	// promised.
	pnackMsg struct {
		Promised int64
		Node     int
	}
	// prepMsg opens a takeover: the candidate asks for promises and
	// for accepted entries at slots >= From. Known summarizes the
	// values the candidate already holds, so members answer with
	// votes instead of redundant copies of the same tail: without it,
	// every member of a large group re-sends the whole uncommitted
	// tail on every prepare — megabytes per round on a shared wire
	// whose congestion is what the takeover is trying to outrun.
	prepMsg struct {
		Ballot int64
		From   int64
		Node   int
		Known  []balRange
	}
	// balRange says the prepare's sender already holds a value
	// accepted at ballot Bal for every slot in [From, To]. A member
	// whose own entry for such a slot has ballot <= Bal omits it from
	// the promise: an equal-ballot entry is the same value (ballots
	// have unique owners, and a ballot proposes one value per slot),
	// and a lower-ballot entry loses the merge anyway.
	balRange struct {
		From, To, Bal int64
	}
	// promSlot reports one accepted entry (the slot is D.Seq).
	promSlot struct {
		Bal int64
		D   *dataMsg
	}
	// promMsg is a member's promise for a takeover ballot.
	promMsg struct {
		Ballot int64
		Node   int
		Commit int64
		Slots  []promSlot
	}
	// joinReadMsg / joinInfoMsg implement the AllowJoin majority
	// read: a late joiner adopts the highest commit watermark a
	// quorum reports.
	joinReadMsg struct{ Node int }
	joinInfoMsg struct {
		Node   int
		Commit int64
		Leader int
	}
)

// knownBal returns the ballot a prepare's Known summary claims for a
// slot, or 0 if the summary does not cover it. Summaries are a handful
// of ranges, so a linear scan is fine.
func knownBal(known []balRange, slot int64) int64 {
	for _, r := range known {
		if slot >= r.From && slot <= r.To {
			return r.Bal
		}
	}
	return 0
}

// takeoverState is one in-flight prepare round.
type takeoverState struct {
	ballot  int64
	from    int64              // first slot values are needed for
	maxSlot int64              // highest slot any promise reported
	acks    map[int]bool       // members that promised (incl. self)
	slots   map[int64]promSlot // slot -> highest-ballot reported value
	tries   int                // re-prepare rounds (exponential backoff)
	timer   *sim.Event
}

// mix64 is the splitmix64 finalizer: the deterministic jitter source
// for the takeover backoff ladder.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// quorum is the majority of the full configured membership.
func (g *Member) quorum() int { return len(g.cfg.Members)/2 + 1 }

// myIdx is this member's dense index in cfg.Members.
func (g *Member) myIdx() int { return g.srcIdx(g.m.ID()) }

// nextOwnBallot returns the smallest ballot strictly above min that
// this member owns: member i owns ballots b with (b-1) mod n == i, so
// competing candidates can never collide on a ballot number.
func (g *Member) nextOwnBallot(min int64) int64 {
	n := int64(len(g.cfg.Members))
	b := int64(g.myIdx()) + 1
	if b <= min {
		b += ((min-b)/n + 1) * n
	}
	return b
}

// advanceAccPrefix extends the contiguous accepted prefix: delivered
// slots count unconditionally (they are chosen), undelivered ones
// only under the currently promised ballot.
func (g *Member) advanceAccPrefix() {
	if g.accPrefix < g.nextSeq-1 {
		g.accPrefix = g.nextSeq - 1
	}
	for {
		a := g.accepted.get(g.accPrefix + 1)
		if a.d == nil || a.bal != g.promised {
			return
		}
		g.accPrefix++
	}
}

// adoptBallot promises a higher ballot: a leading member steps down,
// an in-flight lower-ballot takeover aborts, and the accepted prefix
// rebases onto the new ballot.
func (g *Member) adoptBallot(p *sim.Proc, b int64) {
	if b <= g.promised {
		return
	}
	g.promised = b
	if g.takeover != nil && b > g.takeover.ballot {
		g.abortTakeover()
	}
	if g.isSeq && b > g.ballot {
		g.stepDown(p)
	}
	g.accPrefix = g.nextSeq - 1
	g.advanceAccPrefix()
}

// ---------------------------------------------------------------------
// Leader: propose, commit, re-propose.

// propose broadcasts freshly assigned slots (already sequenced and
// recorded in history by the caller) as one proposal frame. The
// leader accepts its own proposal immediately — it is one member of
// the quorum.
func (g *Member) propose(p *sim.Proc, ds []*dataMsg) {
	for _, d := range ds {
		g.accepted.set(d.Seq, accSlot{bal: g.ballot, d: d})
	}
	if g.promised < g.ballot {
		g.promised = g.ballot
	}
	if idx := g.myIdx(); idx >= 0 {
		g.acked[idx] = g.maxSeen
	}
	g.broadcastProp(p, ds)
	g.tryCommit(p)
	g.armPropTimer()
}

// broadcastProp sends one proposal frame under the current ballot.
func (g *Member) broadcastProp(p *sim.Proc, ds []*dataMsg) {
	size := 0
	for _, d := range ds {
		size += d.Size + hdrItem
	}
	g.stats.PBSends++
	g.cast(p, amoeba.Packet{Port: g.port, Kind: "grp-prop",
		Body: &propMsg{Ballot: g.ballot, Commit: g.committed, Ds: ds}, Size: size + hdrData})
}

// armPropTimer re-proposes assigned-but-unchosen slots until a quorum
// accepts them: proposal or ack frames may be lost, and this timer is
// the only retransmission path for uncommitted slots. Consecutive
// rounds without commit progress back off exponentially (up to 16x):
// a large uncommitted tail re-broadcast at the base period is itself
// enough to saturate the wire, which is exactly the condition that
// keeps the tail from committing.
func (g *Member) armPropTimer() {
	if g.propTimer != nil {
		return
	}
	g.propTimer = g.m.After(g.cfg.ProposeTimeout<<g.propBackoff, func(p *sim.Proc) {
		g.propTimer = nil
		if !g.isSeq || g.cfg.Protocol != Consensus || g.committed >= g.maxSeen {
			return
		}
		if g.committed == g.propLastCmt {
			if g.propBackoff < 4 {
				g.propBackoff++
			}
		} else {
			g.propBackoff = 0
		}
		g.propLastCmt = g.committed
		g.reproposeUncommitted(p)
		g.armPropTimer()
	})
}

// reproposeUncommitted re-broadcasts every uncommitted slot from
// history under the current ballot, in frames of up to 32 slots.
func (g *Member) reproposeUncommitted(p *sim.Proc) {
	var ds []*dataMsg
	flush := func() {
		if len(ds) == 0 {
			return
		}
		g.stats.Reproposals += int64(len(ds))
		g.stats.Retransmits++
		g.broadcastProp(p, ds)
		ds = nil
	}
	for s := g.committed + 1; s <= g.maxSeen; s++ {
		// Uncommitted slots cannot have been trimmed (trimming stops
		// at the minimum delivered, which never exceeds committed).
		if d := g.history.get(s); d != nil {
			ds = append(ds, d)
		}
		if len(ds) >= 32 {
			flush()
		}
	}
	flush()
}

// tryCommit advances the commit watermark to the quorum floor: the
// quorum-th largest cumulative accepted prefix.
func (g *Member) tryCommit(p *sim.Proc) {
	g.ackScratch = append(g.ackScratch[:0], g.acked...)
	sc := g.ackScratch
	for i := 1; i < len(sc); i++ {
		for j := i; j > 0 && sc[j] > sc[j-1]; j-- {
			sc[j], sc[j-1] = sc[j-1], sc[j]
		}
	}
	floor := sc[g.quorum()-1]
	if floor > g.maxSeen {
		floor = g.maxSeen
	}
	if floor <= g.committed {
		return
	}
	g.advanceCommit(p, floor)
}

// advanceCommit commits (committed, upTo], announces the watermark,
// and delivers the newly chosen slots locally. The announcement runs
// through the same leading-edge throttle as member acks: later
// proposals piggyback the watermark anyway, so under load one
// trailing pcmt per window is enough — but a lone op still commits
// at its members with no added latency.
func (g *Member) advanceCommit(p *sim.Proc, upTo int64) {
	from := g.committed + 1
	g.committed = upTo
	g.propBackoff = 0 // progress: restore the fast re-propose deadline
	if g.cmtTimer != nil {
		g.cmtPending = true
	} else {
		g.announceCommit(p)
		var refract func()
		refract = func() {
			g.cmtTimer = g.m.After(g.coalesceDelay(), func(tp *sim.Proc) {
				g.cmtTimer = nil
				if g.cmtPending && g.isSeq {
					g.cmtPending = false
					g.announceCommit(tp)
					refract()
				}
			})
		}
		refract()
	}
	for s := from; s <= upTo; s++ {
		if d := g.history.get(s); d != nil {
			g.processData(p, d)
		}
	}
}

// announceCommit broadcasts the current commit watermark.
func (g *Member) announceCommit(p *sim.Proc) {
	g.cast(p, amoeba.Packet{Port: g.port, Kind: "grp-pcmt",
		Body: pcmtMsg{Ballot: g.ballot, UpTo: g.committed}, Size: hdrSmall})
}

// stepDown demotes a deposed leader to a plain member. Its own
// assigned-but-unchosen ops re-enter the sender path — the new leader
// may never have seen them — while other members' ops are re-sent by
// their own retransmission timers.
func (g *Member) stepDown(p *sim.Proc) {
	if !g.isSeq {
		return
	}
	g.isSeq = false
	g.ballot = 0
	if g.propTimer != nil {
		g.propTimer.Cancel()
		g.propTimer = nil
	}
	if g.cfg.Batch.Enabled() {
		g.detachPack(p, &g.packQ, &g.packTimer)
		g.packBytes = 0
	}
	hi := g.maxSeen
	g.maxSeen = g.committed // assigned-but-unchosen slots are void
	for s := g.committed + 1; s <= hi; s++ {
		d := g.history.get(s)
		if d == nil || d.Src != g.m.ID() {
			continue
		}
		if _, mine := g.outstanding[d.UID]; mine {
			continue
		}
		st := &sendState{uid: d.UID, srcSeq: d.SrcSeq, kind: d.Kind, body: d.Body, size: d.Size, method: ForcePB}
		g.outstanding[d.UID] = st
		g.stats.Retransmits++
		g.transmit(p, st)
		g.armSenderTimer(st)
	}
}

// ---------------------------------------------------------------------
// Acceptor: proposals, commits, nacks.

// onPropose accepts a proposal frame at a member.
func (g *Member) onPropose(p *sim.Proc, from int, m *propMsg) {
	if m.Ballot < g.promised {
		g.m.Send(p, from, amoeba.Packet{Port: g.port, Kind: "grp-pnack",
			Body: pnackMsg{Promised: g.promised, Node: g.m.ID()}, Size: hdrSmall})
		return
	}
	g.seqNode = from
	g.leaderSeen = p.Now()
	g.adoptBallot(p, m.Ballot)
	for _, d := range m.Ds {
		if d.Seq < g.nextSeq {
			continue // already delivered: chosen values never regress
		}
		g.accepted.set(d.Seq, accSlot{bal: m.Ballot, d: d})
	}
	g.advanceAccPrefix()
	g.applyCommit(p, m.Ballot, m.Commit)
	g.scheduleAck(p)
}

// coalesceDelay is the refractory window of the ack and
// commit-announce throttles.
func (g *Member) coalesceDelay() sim.Time {
	if d := g.cfg.ProposeTimeout / 8; d > 0 {
		return d
	}
	return sim.Millisecond
}

// scheduleAck acknowledges the accepted prefix to the leader with a
// leading-edge throttle: an idle member acks immediately (no latency
// tax on a lone op), a member inside the refractory window coalesces
// every further proposal into one trailing ack. Without this, P-1
// ack unicasts per op saturate the wire at large P.
func (g *Member) scheduleAck(p *sim.Proc) {
	if g.ackTimer != nil {
		g.ackPending = true
		return
	}
	g.sendAck(p)
	var refract func()
	refract = func() {
		g.ackTimer = g.m.After(g.coalesceDelay(), func(tp *sim.Proc) {
			g.ackTimer = nil
			if g.ackPending && !g.isSeq {
				g.ackPending = false
				g.sendAck(tp)
				refract()
			}
		})
	}
	refract()
}

// sendAck reports the cumulative accepted prefix under the currently
// promised ballot.
func (g *Member) sendAck(p *sim.Proc) {
	g.m.Send(p, g.seqNode, amoeba.Packet{Port: g.port, Kind: "grp-pacc",
		Body: paccMsg{Ballot: g.promised, Node: g.m.ID(), AccUpTo: g.accPrefix}, Size: hdrSmall})
}

// onPAcc records a member's accepted prefix at the leader.
func (g *Member) onPAcc(p *sim.Proc, m paccMsg) {
	if !g.isSeq || m.Ballot != g.ballot {
		return
	}
	idx := g.srcIdx(m.Node)
	if idx < 0 || m.AccUpTo <= g.acked[idx] {
		return
	}
	g.acked[idx] = m.AccUpTo
	g.tryCommit(p)
}

// onPcmt applies a commit watermark at a member.
func (g *Member) onPcmt(p *sim.Proc, from int, m pcmtMsg) {
	if m.Ballot >= g.promised {
		g.seqNode = from
		g.leaderSeen = p.Now()
		g.adoptBallot(p, m.Ballot)
	}
	// Even a deposed leader's commit is truthful — it counted a real
	// quorum for its ballot — so the watermark applies regardless.
	g.applyCommit(p, m.Ballot, m.UpTo)
}

// applyCommit learns that slots up to upTo are chosen and delivers
// the accepted entries that match the committing ballot; mismatched
// or missing slots become gaps the retransmission machinery fills
// with the chosen values out of the leader's history.
func (g *Member) applyCommit(p *sim.Proc, ballot, upTo int64) {
	if upTo > g.committed {
		g.committed = upTo
	}
	if g.takeover != nil && g.committed >= g.takeover.from {
		// The stalled slot that justified this takeover has been chosen
		// by someone else's quorum: the premise is gone, stand down.
		g.abortTakeover()
	}
	if !g.isSeq && upTo > g.maxSeen {
		g.maxSeen = upTo
	}
	for s := g.nextSeq; s <= upTo; s++ {
		a := g.accepted.get(s)
		if a.d == nil || a.bal != ballot {
			continue
		}
		g.processData(p, a.d)
	}
	if g.nextSeq <= g.maxSeen {
		g.armGapTimer()
	}
}

// onPNack reacts to a "promised higher" rejection: a stale leader
// steps down, a stale takeover aborts. The next suspicion re-enters
// the ladder with a fresher ballot.
func (g *Member) onPNack(p *sim.Proc, m pnackMsg) {
	if g.takeover != nil && m.Promised > g.takeover.ballot {
		g.abortTakeover()
	}
	g.adoptBallot(p, m.Promised)
}

// ---------------------------------------------------------------------
// Failure handling: suspicion ladder and takeover.

// suspectLeader is the consensus counterpart of startElection. The
// first live member after the suspected leader in membership order
// takes over immediately; everyone else arms a rank-proportional
// backoff and stands down if progress resumes first.
func (g *Member) suspectLeader(p *sim.Proc) {
	if g.cfg.Protocol != Consensus || g.isSeq || g.takeover != nil || g.suspTimer != nil {
		return
	}
	if g.leaderSeen > 0 && p.Now()-g.leaderSeen < g.stickWindow() {
		// The leader showed life inside the stickiness window: an
		// undelivered op means backlog, not death. The sender and gap
		// timers re-raise the suspicion if the silence grows.
		return
	}
	if g.recoveryStart == 0 {
		g.recoveryStart = p.Now()
	}
	// Escalate when suspicion rounds come and go without a single
	// delivery: each fruitless round pushes the next takeover attempt
	// further out, so competing candidates cannot keep deposing each
	// other faster than a winner can commit (a war of instant rank-0
	// takeovers is self-sustaining once the wire is congested).
	if g.nextSeq != g.suspMark {
		g.suspRounds = 0
	}
	g.suspMark = g.nextSeq
	round := g.suspRounds
	if round > 4 {
		round = 4
	}
	g.suspRounds++
	rank := g.successorRank()
	if rank == 0 && round == 0 {
		g.startTakeover(p)
		return
	}
	escalate := sim.Time((int64(1)<<round)-1) * 2 // 0, 2, 6, 14, 30
	jitter := sim.Time(mix64(uint64(g.m.ID())<<32^uint64(g.promised+1)) % uint64(g.cfg.ProposeTimeout))
	delay := (2*sim.Time(rank)+escalate)*g.cfg.ProposeTimeout + jitter
	suspect, next := g.seqNode, g.nextSeq
	g.suspTimer = g.m.After(delay, func(tp *sim.Proc) {
		g.suspTimer = nil
		if g.isSeq || g.takeover != nil {
			return
		}
		if g.seqNode != suspect || g.nextSeq != next {
			return // progress or a new leader appeared: stand down
		}
		g.startTakeover(tp)
	})
}

// successorRank returns this member's position in the takeover
// ladder: 0 for the first live member after the suspected leader in
// cyclic membership order.
func (g *Member) successorRank() int {
	n := len(g.cfg.Members)
	start := 0
	if idx := g.srcIdx(g.seqNode); idx >= 0 {
		start = idx
	}
	rank := 0
	for off := 1; off <= n; off++ {
		id := g.cfg.Members[(start+off)%n]
		if id == g.seqNode || g.m.Net().Down(id) {
			continue
		}
		if id == g.m.ID() {
			return rank
		}
		rank++
	}
	return rank
}

// startTakeover opens a prepare round under a fresh ballot this
// member owns.
func (g *Member) startTakeover(p *sim.Proc) {
	if g.takeover != nil || g.isSeq {
		return
	}
	if g.recoveryStart == 0 {
		g.recoveryStart = p.Now()
	}
	b := g.nextOwnBallot(g.promised)
	g.promised = b
	t := &takeoverState{
		ballot:  b,
		from:    g.nextSeq,
		maxSlot: g.nextSeq - 1,
		acks:    map[int]bool{g.m.ID(): true},
		slots:   make(map[int64]promSlot),
	}
	g.takeover = t
	g.mergePromise(t, promMsg{Ballot: b, Node: g.m.ID(), Slots: g.promiseSlots(t.from)})
	g.m.Env().Tracef("node%d: consensus takeover, ballot %d from slot %d", g.m.ID(), b, t.from)
	g.broadcastPrep(p)
	g.armTakeoverTimer()
	g.checkTakeover(p) // a single-member group is its own quorum
}

// knownRanges compresses the takeover's per-slot knowledge into
// equal-ballot runs for the prepare's Known summary. Accepted tails
// are long runs under one leader's ballot, so this is almost always
// one or two ranges; re-prepares rebuild it from the freshly merged
// state, soliciting strictly less each round.
func (g *Member) knownRanges(t *takeoverState) []balRange {
	var out []balRange
	for s := t.from; s <= t.maxSlot; s++ {
		ps, ok := t.slots[s]
		if !ok {
			continue
		}
		if n := len(out); n > 0 && out[n-1].To == s-1 && out[n-1].Bal == ps.Bal {
			out[n-1].To = s
			continue
		}
		out = append(out, balRange{From: s, To: s, Bal: ps.Bal})
	}
	return out
}

// broadcastPrep (re-)announces the in-flight prepare.
func (g *Member) broadcastPrep(p *sim.Proc) {
	t := g.takeover
	known := g.knownRanges(t)
	g.cast(p, amoeba.Packet{Port: g.port, Kind: "grp-prep",
		Body: prepMsg{Ballot: t.ballot, From: t.from, Node: g.m.ID(), Known: known},
		Size: hdrSmall + len(known)*3*8})
}

// armTakeoverTimer retries the prepare until a quorum promises or a
// higher ballot aborts it (promises are idempotent, so re-asking is
// safe under loss or partition). Retries back off exponentially: each
// re-prepare solicits a full set of promise replies, which carry the
// members' accepted tails and are the heaviest frames the protocol
// sends.
func (g *Member) armTakeoverTimer() {
	t := g.takeover
	tries := t.tries
	if tries > 4 {
		tries = 4
	}
	t.timer = g.m.After(2*g.cfg.ProposeTimeout<<uint(tries), func(p *sim.Proc) {
		if g.takeover != t {
			return
		}
		t.tries++
		g.stats.Retransmits++
		g.broadcastPrep(p)
		g.armTakeoverTimer()
	})
}

// abortTakeover drops the in-flight prepare round.
func (g *Member) abortTakeover() {
	t := g.takeover
	g.takeover = nil
	if t != nil && t.timer != nil {
		t.timer.Cancel()
	}
}

// promiseSlots collects this member's knowledge of slots >= from:
// delivered slots out of the cache (chosen, reported at balChosen so
// nothing outranks them) and accepted-but-undelivered entries with
// their real ballots. A slot older than the cache window cannot be
// reported — the same bounded-recovery caveat as the election path's
// history rebuild (see DESIGN.md).
func (g *Member) promiseSlots(from int64) []promSlot {
	var out []promSlot
	for s := from; s < g.nextSeq; s++ {
		var d *dataMsg
		if len(g.cache) > 0 {
			if c := g.cache[int(s)%len(g.cache)]; c != nil && c.Seq == s {
				d = c
			}
		}
		if d == nil {
			if a := g.accepted.get(s); a.d != nil {
				d = a.d
			}
		}
		if d != nil {
			out = append(out, promSlot{Bal: balChosen, D: d})
		}
	}
	lo := g.nextSeq
	if lo < g.accepted.lo {
		lo = g.accepted.lo
	}
	for s := lo; s < g.accepted.hi; s++ {
		if a := g.accepted.get(s); a.d != nil {
			out = append(out, promSlot{Bal: a.bal, D: a.d})
		}
	}
	return out
}

// stickWindow is how recently the current leader (leaderSeen, under
// consensus) or sequencer (seqAlive delivery progress, under the
// elected protocol) must have shown life for this member to refuse
// deposing it. It sits between the sign-of-life period of a healthy
// leader (commit announcements every coalesceDelay; a draining
// sequencer delivers continuously) and the silence a real crash
// produces before suspicion fires (SenderRetries+1 sender timeouts),
// so a live leader is protected and a dead one is replaced without
// extra delay.
func (g *Member) stickWindow() sim.Time { return 2 * g.cfg.SenderTimeout }

// onPrep answers a prepare: promise (and report accepted entries) or
// nack a stale ballot.
func (g *Member) onPrep(p *sim.Proc, from int, m prepMsg) {
	if m.Ballot < g.promised {
		g.m.Send(p, from, amoeba.Packet{Port: g.port, Kind: "grp-pnack",
			Body: pnackMsg{Promised: g.promised, Node: g.m.ID()}, Size: hdrSmall})
		return
	}
	if m.Node != g.seqNode && g.leaderSeen > 0 && p.Now()-g.leaderSeen < g.stickWindow() {
		// The leader we follow is demonstrably alive: refuse to help
		// depose it. The pnack carries our (lower) promised ballot, so
		// the candidate backs off without aborting — if the leader
		// really is stuck, the window lapses and a retry succeeds.
		g.m.Send(p, from, amoeba.Packet{Port: g.port, Kind: "grp-pnack",
			Body: pnackMsg{Promised: g.promised, Node: g.m.ID()}, Size: hdrSmall})
		return
	}
	g.seqNode = m.Node
	g.adoptBallot(p, m.Ballot)
	// Report only values the candidate's Known summary does not already
	// dominate. Equal ballot means the identical value (ballots have
	// unique owners and one value per slot), and a lower ballot loses
	// the takeover merge, so omitting those entries cannot change the
	// chosen value — it only keeps n promises from shipping n copies of
	// the same accepted tail through an already-congested wire.
	all := g.promiseSlots(m.From)
	slots := all[:0]
	for _, ps := range all {
		if ps.Bal > knownBal(m.Known, ps.D.Seq) {
			slots = append(slots, ps)
		}
	}
	size := hdrSmall
	for _, ps := range slots {
		size += ps.D.Size + hdrItem
	}
	g.m.Send(p, from, amoeba.Packet{Port: g.port, Kind: "grp-prom",
		Body: &promMsg{Ballot: m.Ballot, Node: g.m.ID(), Commit: g.committed, Slots: slots}, Size: size})
}

// mergePromise folds one promise into the takeover state, keeping the
// highest-ballot value per slot.
func (g *Member) mergePromise(t *takeoverState, m promMsg) {
	for _, ps := range m.Slots {
		s := ps.D.Seq
		if s < t.from {
			continue
		}
		if s > t.maxSlot {
			t.maxSlot = s
		}
		if cur, ok := t.slots[s]; !ok || ps.Bal > cur.Bal {
			t.slots[s] = ps
		}
	}
}

// onProm records a promise at the candidate.
func (g *Member) onProm(p *sim.Proc, m *promMsg) {
	t := g.takeover
	if t == nil || m.Ballot != t.ballot || t.acks[m.Node] {
		return
	}
	t.acks[m.Node] = true
	g.mergePromise(t, *m)
	g.checkTakeover(p)
}

// checkTakeover finalizes once a majority has promised.
func (g *Member) checkTakeover(p *sim.Proc) {
	if t := g.takeover; t != nil && len(t.acks) >= g.quorum() {
		g.finalizeTakeover(p)
	}
}

// finalizeTakeover installs this member as leader: choose a value for
// every slot the prepare round surfaced (noop fillers for holes),
// truncate frame boundaries broken by fillers, rebuild the sequencer
// history/dedup state exactly like becomeSequencer, and re-propose
// the whole uncommitted tail under the new ballot. No view handshake:
// members learn the leadership from the proposals themselves.
func (g *Member) finalizeTakeover(p *sim.Proc) {
	t := g.takeover
	g.takeover = nil
	if t.timer != nil {
		t.timer.Cancel()
	}
	if g.suspTimer != nil {
		g.suspTimer.Cancel()
		g.suspTimer = nil
	}
	g.stats.Takeovers++
	g.ballot = t.ballot
	g.isSeq = true
	g.installed = true
	g.seqNode = g.m.ID()
	g.electing = false
	chosen := make([]*dataMsg, 0, t.maxSlot-t.from+1)
	for s := t.from; s <= t.maxSlot; s++ {
		if ps, ok := t.slots[s]; ok {
			chosen = append(chosen, ps.D)
		} else {
			chosen = append(chosen, &dataMsg{Seq: s, Src: -1, Kind: noopKind})
		}
	}
	// A More-flagged slot whose successor was noop-filled (or fell off
	// the end) would leave consumers waiting for the rest of the frame
	// forever: rewrite it with More unset. A slot a quorum chose
	// always has a chosen successor — proposal frames are accepted
	// atomically per member — so this can only rewrite unchosen tails.
	for i, d := range chosen {
		if d.More && (i == len(chosen)-1 || chosen[i+1].Src < 0) {
			nd := *d
			nd.More = false
			chosen[i] = &nd
		}
	}
	g.seenBySrc = make([]*seqRing[int64], len(g.cfg.Members))
	for i := range g.statuses {
		g.statuses[i] = -1
	}
	g.trimMin, g.trimOwn = 0, false
	lo := g.nextSeq
	for _, d := range g.cache {
		if d == nil || d.Seq >= g.nextSeq {
			continue
		}
		if d.Seq < lo {
			lo = d.Seq
		}
	}
	g.history.reset(lo)
	for _, d := range g.cache {
		if d == nil || d.Seq >= g.nextSeq {
			continue
		}
		g.history.set(d.Seq, d)
		g.noteSeen(d.Src, d.SrcSeq, d.Seq)
	}
	for _, d := range chosen {
		g.recordHistory(d)
	}
	g.maxSeen = t.maxSlot
	if g.maxSeen < g.nextSeq-1 {
		g.maxSeen = g.nextSeq - 1
	}
	// The tail above our deliveries is re-committed under our ballot:
	// acks only count for the current ballot, so the watermark rebases
	// to what we have delivered ourselves.
	g.committed = g.nextSeq - 1
	g.propBackoff, g.propLastCmt = 0, g.committed
	g.buffered.reset(g.nextSeq)
	for _, d := range chosen {
		g.accepted.set(d.Seq, accSlot{bal: g.ballot, d: d})
	}
	if idx := g.myIdx(); idx >= 0 {
		for i := range g.acked {
			g.acked[i] = 0
		}
		g.acked[idx] = g.maxSeen
	}
	g.m.Env().Tracef("node%d: consensus leader, ballot %d, slots %d..%d",
		g.m.ID(), g.ballot, t.from, t.maxSlot)
	if len(chosen) > 0 {
		g.stats.Reproposals += int64(len(chosen))
		for start := 0; start < len(chosen); start += 32 {
			g.broadcastProp(p, chosen[start:min(start+32, len(chosen))])
		}
	} else {
		// Nothing outstanding: announce leadership via the watermark.
		g.cast(p, amoeba.Packet{Port: g.port, Kind: "grp-pcmt",
			Body: pcmtMsg{Ballot: g.ballot, UpTo: g.committed}, Size: hdrSmall})
	}
	g.tryCommit(p)
	g.armPropTimer()
	g.kickOutstanding(p)
}

// ---------------------------------------------------------------------
// Late join (Config.AllowJoin).

// JoinLate attaches a member to a group that may already be running:
// it binds like Join but bootstraps its position in the log with a
// majority read of the commit watermark, then catches up through the
// ordinary gap machinery. Requires the consensus protocol (the read
// needs a quorum-replicated log) and AllowJoin; the joiner must not
// be the configured sequencer.
func JoinLate(m *amoeba.Machine, cfg Config) *Member {
	if cfg.Protocol != Consensus || !cfg.AllowJoin {
		panic("group: JoinLate requires Protocol == Consensus and AllowJoin")
	}
	g := Join(m, cfg)
	if g.isSeq {
		panic("group: a late joiner cannot be the configured sequencer")
	}
	g.joinInfo = make(map[int]joinInfoMsg)
	g.armJoinRead()
	return g
}

// armJoinRead polls the membership for the commit watermark until a
// quorum has answered.
func (g *Member) armJoinRead() {
	g.joinTimer = g.m.After(g.cfg.GapTimeout, func(p *sim.Proc) {
		g.joinTimer = nil
		if g.joined {
			return
		}
		g.stats.GapRequests++
		g.cast(p, amoeba.Packet{Port: g.port, Kind: "grp-jread",
			Body: joinReadMsg{Node: g.m.ID()}, Size: hdrSmall})
		g.armJoinRead()
	})
}

// onJoinRead answers a joiner's watermark read.
func (g *Member) onJoinRead(p *sim.Proc, from int, m joinReadMsg) {
	if g.cfg.Protocol != Consensus {
		return
	}
	g.m.Send(p, from, amoeba.Packet{Port: g.port, Kind: "grp-jinfo",
		Body: joinInfoMsg{Node: g.m.ID(), Commit: g.committed, Leader: g.seqNode}, Size: hdrSmall})
}

// onJoinInfo collects watermark replies at the joiner; a majority
// seals the read (the true watermark is at most the maximum reported,
// and everything below it is fetchable from history).
func (g *Member) onJoinInfo(m joinInfoMsg) {
	if g.joinInfo == nil || g.joined {
		return
	}
	g.joinInfo[m.Node] = m
	if len(g.joinInfo) < g.quorum() {
		return
	}
	best := joinInfoMsg{Node: -1}
	for _, id := range g.cfg.Members {
		r, ok := g.joinInfo[id]
		if !ok {
			continue
		}
		if best.Node == -1 || r.Commit > best.Commit {
			best = r
		}
	}
	g.joined = true
	g.joinInfo = nil
	if g.joinTimer != nil {
		g.joinTimer.Cancel()
		g.joinTimer = nil
	}
	g.seqNode = best.Leader
	if best.Commit > g.committed {
		g.committed = best.Commit
	}
	if g.committed > g.maxSeen {
		g.maxSeen = g.committed
	}
	g.m.Env().Tracef("node%d: joined at commit %d (leader %d)", g.m.ID(), g.committed, g.seqNode)
	if g.nextSeq <= g.maxSeen {
		g.armGapTimer()
	}
}
