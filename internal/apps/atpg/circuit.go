package atpg

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// GateType enumerates the gate kinds.
type GateType int

// Gate kinds. Input marks primary-input pseudo-gates.
const (
	Input GateType = iota
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
)

// String names the gate kind.
func (g GateType) String() string {
	switch g {
	case Input:
		return "IN"
	case Buf:
		return "BUF"
	case Not:
		return "NOT"
	case And:
		return "AND"
	case Nand:
		return "NAND"
	case Or:
		return "OR"
	case Nor:
		return "NOR"
	case Xor:
		return "XOR"
	}
	return fmt.Sprintf("GateType(%d)", int(g))
}

// Gate is one gate; its output line id is its index in Circuit.Gates.
// Inputs reference lower-numbered lines (the slice is topologically
// ordered by construction).
type Gate struct {
	Type GateType
	Ins  []int
}

// Circuit is a combinational circuit. Lines 0..NumInputs-1 are the
// primary inputs.
type Circuit struct {
	NumInputs int
	Gates     []Gate
	Outputs   []int
	fanout    [][]int
}

// Lines reports the total line count.
func (c *Circuit) Lines() int { return len(c.Gates) }

// GateEvalCost is the virtual CPU time to evaluate one gate during
// simulation on the 68030-class machine.
const GateEvalCost = 2 * sim.Microsecond

// finish computes fanout lists and designates outputs if none set
// (every line without fanout becomes an output).
func (c *Circuit) finish() {
	c.fanout = make([][]int, len(c.Gates))
	used := make([]bool, len(c.Gates))
	for gi, g := range c.Gates {
		for _, in := range g.Ins {
			c.fanout[in] = append(c.fanout[in], gi)
			used[in] = true
		}
	}
	if len(c.Outputs) == 0 {
		for li := c.NumInputs; li < len(c.Gates); li++ {
			if !used[li] {
				c.Outputs = append(c.Outputs, li)
			}
		}
	}
}

// Fanout returns the gates reading a line.
func (c *Circuit) Fanout(line int) []int { return c.fanout[line] }

// Validate checks topological ordering and arities; generators and
// tests call it.
func (c *Circuit) Validate() error {
	if c.NumInputs <= 0 {
		return fmt.Errorf("atpg: no inputs")
	}
	for i := 0; i < c.NumInputs; i++ {
		if c.Gates[i].Type != Input {
			return fmt.Errorf("atpg: line %d should be an input", i)
		}
	}
	for gi := c.NumInputs; gi < len(c.Gates); gi++ {
		g := c.Gates[gi]
		want := 2
		switch g.Type {
		case Not, Buf:
			want = 1
		case Input:
			return fmt.Errorf("atpg: input gate %d after inputs", gi)
		}
		if len(g.Ins) < want {
			return fmt.Errorf("atpg: gate %d (%v) has %d inputs", gi, g.Type, len(g.Ins))
		}
		for _, in := range g.Ins {
			if in >= gi || in < 0 {
				return fmt.Errorf("atpg: gate %d reads line %d (not topological)", gi, in)
			}
		}
	}
	if len(c.Outputs) == 0 {
		return fmt.Errorf("atpg: no outputs")
	}
	return nil
}

// Generate builds a random layered combinational circuit with the
// given number of primary inputs, layers, and gates per layer.
func Generate(inputs, layers, width int, seed int64) *Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := &Circuit{NumInputs: inputs}
	for i := 0; i < inputs; i++ {
		c.Gates = append(c.Gates, Gate{Type: Input})
	}
	layerStart := 0
	layerEnd := inputs
	types := []GateType{And, Nand, Or, Nor, Xor, Not, And, Or, Nand, Nor}
	for l := 0; l < layers; l++ {
		start := len(c.Gates)
		for w := 0; w < width; w++ {
			gt := types[rng.Intn(len(types))]
			pick := func() int {
				// Prefer recent lines for depth, with some global
				// reach for reconvergence.
				if rng.Intn(4) == 0 {
					return rng.Intn(len(c.Gates))
				}
				return layerStart + rng.Intn(layerEnd-layerStart)
			}
			var ins []int
			if gt == Not {
				ins = []int{pick()}
			} else {
				a, b := pick(), pick()
				for b == a {
					b = pick()
				}
				ins = []int{a, b}
			}
			c.Gates = append(c.Gates, Gate{Type: gt, Ins: ins})
		}
		layerStart, layerEnd = start, len(c.Gates)
	}
	c.finish()
	return c
}

// RippleAdder builds an n-bit ripple-carry adder (2n+1 inputs: a, b,
// carry-in), a structured circuit for validation.
func RippleAdder(n int) *Circuit {
	c := &Circuit{NumInputs: 2*n + 1}
	for i := 0; i < c.NumInputs; i++ {
		c.Gates = append(c.Gates, Gate{Type: Input})
	}
	aLine := func(i int) int { return i }
	bLine := func(i int) int { return n + i }
	carry := 2 * n // carry-in
	add := func(t GateType, ins ...int) int {
		c.Gates = append(c.Gates, Gate{Type: t, Ins: ins})
		return len(c.Gates) - 1
	}
	for i := 0; i < n; i++ {
		axb := add(Xor, aLine(i), bLine(i))
		sum := add(Xor, axb, carry)
		and1 := add(And, axb, carry)
		and2 := add(And, aLine(i), bLine(i))
		carry = add(Or, and1, and2)
		c.Outputs = append(c.Outputs, sum)
	}
	c.Outputs = append(c.Outputs, carry)
	c.finish()
	return c
}

// Fault is a single stuck-at fault on a line.
type Fault struct {
	Line    int
	StuckAt int // 0 or 1
}

// String formats the fault conventionally.
func (f Fault) String() string { return fmt.Sprintf("%d/sa%d", f.Line, f.StuckAt) }

// AllFaults enumerates both stuck-at faults on every line.
func AllFaults(c *Circuit) []Fault {
	out := make([]Fault, 0, 2*c.Lines())
	for l := 0; l < c.Lines(); l++ {
		out = append(out, Fault{Line: l, StuckAt: 0}, Fault{Line: l, StuckAt: 1})
	}
	return out
}
