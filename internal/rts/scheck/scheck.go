// Package scheck checks recorded operation histories for sequential
// consistency on a register-like object. The model guarantees that all
// operations on all shared objects appear to execute in some total
// order consistent with each process's program order; for a register
// whose writes assign unique values, every read names the write it
// observed, so the guarantee is checkable directly on histories:
//
//   - collect every process's operation sequence (program order),
//   - reconstruct a total write order as a topological order of the
//     constraints the histories impose (own-write program order, and
//     the order each process observed values in),
//   - verify each process's history is monotone in that order: a
//     process may never observe an older write after a newer one.
//
// A cycle in the constraints means no total order exists — the history
// is not sequentially consistent. The package is used by the runtime's
// SC tests, including the adaptive-placement stress test that hammers
// an object while it migrates between subsystems.
package scheck

import "fmt"

// Op is one recorded operation: a write of Val, or a read that
// observed Val. Val 0 is reserved for the object's initial state and
// must not be written.
type Op struct {
	Proc  int
	Write bool
	Val   int
}

// WriteOrder reconstructs a total write order from the observation
// structure of the histories. Constraint edges: v1 -> v2 if some
// process wrote v1 before v2 (program order), or observed v1 and then
// later observed or wrote v2. It returns an error naming two values on
// a constraint cycle if no total order exists.
func WriteOrder(histories [][]Op) ([]int, error) {
	values := map[int]bool{}
	edges := map[int]map[int]bool{}
	addEdge := func(a, b int) {
		if a == b || a == 0 {
			return
		}
		if edges[a] == nil {
			edges[a] = map[int]bool{}
		}
		edges[a][b] = true
	}
	for _, hist := range histories {
		prev := 0
		for _, op := range hist {
			if op.Val != 0 {
				values[op.Val] = true
			}
			addEdge(prev, op.Val)
			prev = op.Val
		}
	}
	// Kahn's algorithm; ties broken by value so the witness order is
	// deterministic.
	indeg := map[int]int{}
	for v := range values {
		indeg[v] += 0
	}
	for _, outs := range edges {
		for b := range outs {
			indeg[b]++
		}
	}
	var order []int
	for len(indeg) > 0 {
		best := 0
		found := false
		for v, d := range indeg {
			if d == 0 && (!found || v < best) {
				best, found = v, true
			}
		}
		if !found {
			// Every remaining value has an incoming edge: a cycle.
			// Name one remaining value for the error.
			for v := range indeg {
				return nil, fmt.Errorf("scheck: observation constraints are cyclic at value %d: no total write order exists", v)
			}
		}
		order = append(order, best)
		delete(indeg, best)
		for b := range edges[best] {
			if _, ok := indeg[b]; ok {
				indeg[b]--
			}
		}
	}
	return order, nil
}

// CheckAgainst verifies the per-process histories against a given
// total write order: for each process, the positions of the values it
// observes must be non-decreasing (a process may never see an older
// write after a newer one), and its own writes must appear at
// non-decreasing positions too.
func CheckAgainst(histories [][]Op, writeOrder []int) error {
	pos := make(map[int]int)
	for i, v := range writeOrder {
		pos[v] = i + 1 // 0 is the initial value's position
	}
	pos[0] = 0 // initial state
	for p, hist := range histories {
		lastPos := -1
		for i, op := range hist {
			wp, ok := pos[op.Val]
			if !ok {
				return fmt.Errorf("scheck: proc %d op %d: value %d not in write order", p, i, op.Val)
			}
			if wp < lastPos {
				kind := "read observed"
				if op.Write {
					kind = "own write"
				}
				return fmt.Errorf("scheck: proc %d op %d: %s value %d (pos %d) after already observing pos %d — time went backwards",
					p, i, kind, op.Val, wp, lastPos)
			}
			lastPos = wp
		}
	}
	return nil
}

// Check is the one-call form: reconstruct a write-order witness from
// the histories and verify every history against it. A nil error means
// the histories are sequentially consistent (for a unique-value
// register workload).
func Check(histories [][]Op) error {
	order, err := WriteOrder(histories)
	if err != nil {
		return err
	}
	return CheckAgainst(histories, order)
}
