package harness

import (
	"fmt"
	"io"

	"repro/internal/apps/acp"
	"repro/internal/apps/kv"
	"repro/internal/apps/tsp"
	"repro/internal/group"
	"repro/internal/netsim"
	"repro/internal/orca"
	"repro/internal/rts"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ProtocolBakeoff compares the sequencing protocols — the paper's
// elected sequencer (over PB and BB) against the consensus-replicated
// log — on latency, wire cost, and crash recovery.
//
// Part 1 is a group-level sweep: P members broadcast a fixed op
// stream while the sequencer machine crashes mid-run. Every op still
// delivers exactly once in one agreed order; the table reports
// sender-observed latency percentiles, wire frames per op, and the
// recovery gap (crash instant to the first delivery of an op
// submitted after the crash). The elected protocols pay the election
// window; consensus pays one takeover round trip — the harness panics
// if consensus does not recover faster than PB at the smallest P.
//
// Part 2 replays the application crash schedules (TSP optimum, ACP
// fixpoint, KV acknowledged-write audit) under the consensus
// protocol: results must match the no-fault baselines, with zero
// elections.
//
// Every configuration runs twice and panics on fingerprint mismatch:
// a consensus takeover is exactly as deterministic as an election.
func ProtocolBakeoff(w io.Writer, scale Scale) {
	ps := []int{8, 16, 32, 64, 128}
	perNode := 20
	cities, procs := 13, 8
	nVars, dom, extra := 32, 32, 20
	kvP := 8
	if scale == Quick {
		ps = []int{8, 16}
		perNode = 10
		cities, procs = 11, 4
		nVars, dom, extra = 20, 20, 12
		kvP = 4
	}
	const crashAt = 100 * sim.Millisecond

	type variant struct {
		name string
		mut  func(*group.Config)
	}
	variants := []variant{
		{"seq/pb", func(c *group.Config) { c.Method = group.ForcePB }},
		{"seq/bb", func(c *group.Config) { c.Method = group.ForceBB }},
		{"consensus", func(c *group.Config) { c.Protocol = group.Consensus }},
	}

	type res struct {
		hist        rts.LatencyHist
		framesPerOp float64
		recovery    sim.Time
		elections   int64
		takeovers   int64
		reproposals int64
		fp          string
	}

	// One group-level run: nodes 1..P-1 each broadcast perNode ops,
	// the sequencer (node 0) crashes at crashAt, and the run ends when
	// every survivor holds the full agreed stream.
	run := func(n int, v variant) res {
		// Failure-detection timeouts scale with P (every variant gets the
		// same factor, so the comparison stays fair at each P). A bigger
		// group means more ack traffic, bigger elections, and a bigger
		// post-crash backlog on the same 10 Mb/s wire; timeouts sized for
		// P=8 read that congestion as sequencer death and thrash —
		// thousands of back-to-back elections, none of which install.
		f := sim.Time(1)
		if n > 16 {
			f = sim.Time(n / 16)
		}
		c := newProtoCluster(17, n, func(cfg *group.Config) {
			cfg.Heartbeat = 80 * sim.Millisecond * f
			cfg.SenderTimeout = 40 * sim.Millisecond * f
			cfg.SenderRetries = 3
			cfg.GapTimeout = 20 * sim.Millisecond * f
			cfg.ElectionWait = 60 * sim.Millisecond * f
			cfg.ProposeTimeout = 40 * sim.Millisecond * f
			v.mut(cfg)
		})
		total := (n - 1) * perNode
		out := res{}
		submitAt := make(map[int64]sim.Time, total)
		var uids []int64 // node 1's delivery order, for the fingerprint
		var firstPost sim.Time
		counts := make([]int, n)
		for i := 1; i < n; i++ {
			i := i
			c.ms[i].SpawnThread("consume", func(p *sim.Proc) {
				for {
					d, ok := c.gs[i].Deliveries().Get(p)
					if !ok {
						return
					}
					counts[i]++
					sub := submitAt[d.UID]
					if i == 1 {
						uids = append(uids, d.UID)
						if firstPost == 0 && sub > crashAt {
							firstPost = p.Now()
						}
					}
					if d.Src == i {
						out.hist.Record(p.Now() - sub)
					}
				}
			})
			// Pace the stream across the crash instant (recovery is only
			// observable if submissions continue past it), and scale the
			// per-sender period with P so the aggregate offered load stays
			// constant: the 10 Mb/s wire saturates otherwise, and a
			// saturated wire measures queueing collapse, not protocols.
			pace := 15 * sim.Millisecond
			if n > 16 {
				pace *= sim.Time(n / 16)
			}
			c.ms[i].SpawnThread("produce", func(p *sim.Proc) {
				p.Sleep(sim.Time(1+i%5) * sim.Millisecond)
				for k := 0; k < perNode; k++ {
					uid := c.gs[i].Broadcast(p, "op", k, 128)
					submitAt[uid] = p.Now()
					p.Sleep(pace)
				}
			})
		}
		c.env.At(crashAt, func() { c.ms[0].Crash() })
		c.env.RunUntil(300 * sim.Second)
		for i := 1; i < n; i++ {
			if counts[i] != total {
				panic(fmt.Sprintf("harness: bakeoff %s P=%d node %d delivered %d/%d ops",
					v.name, n, i, counts[i], total))
			}
			st := c.gs[i].Stats()
			if st.Elections > out.elections {
				out.elections = st.Elections
			}
			if st.Takeovers > out.takeovers {
				out.takeovers = st.Takeovers
			}
			out.reproposals += st.Reproposals
		}
		out.framesPerOp = float64(c.net.Stats().Frames) / float64(total)
		out.recovery = firstPost - crashAt
		out.fp = fmt.Sprintf("uids=%v recovery=%d", uids, int64(out.recovery))
		c.env.Stop()
		c.env.Shutdown()
		return out
	}

	fmt.Fprintf(w, "== CONSENSUS: sequencing-protocol bakeoff, sequencer crash at %v ==\n", crashAt)
	fmt.Fprintf(w, "P-1 survivors broadcast %d ops each; recovery is crash instant to the\n", perNode)
	fmt.Fprintln(w, "first delivery of a post-crash submission at a survivor.")
	var rows [][]string
	recoveries := map[string]sim.Time{}
	for _, n := range ps {
		for _, v := range variants {
			a := run(n, v)
			if b := run(n, v); a.fp != b.fp {
				panic(fmt.Sprintf("harness: bakeoff %s P=%d not deterministic:\n  %s\n  %s",
					v.name, n, a.fp, b.fp))
			}
			if n == ps[0] {
				recoveries[v.name] = a.recovery
			}
			rows = append(rows, []string{
				fmt.Sprint(n), v.name,
				fmtTime(a.hist.Percentile(0.50)), fmtTime(a.hist.Percentile(0.99)),
				fmt.Sprintf("%.2f", a.framesPerOp), fmtTime(a.recovery),
				fmt.Sprint(a.elections), fmt.Sprint(a.takeovers), fmt.Sprint(a.reproposals),
			})
		}
	}
	Table(w, []string{"procs", "protocol", "lat p50", "lat p99", "frames/op",
		"recovery", "elections", "takeovers", "reproposals"}, rows)
	if recoveries["consensus"] >= recoveries["seq/pb"] {
		panic(fmt.Sprintf("harness: consensus recovery %v not below the election window %v at P=%d",
			recoveries["consensus"], recoveries["seq/pb"], ps[0]))
	}
	fmt.Fprintln(w, "The elected protocols stall for the election window (sender retries,")
	fmt.Fprintln(w, "vote collection, view install); consensus re-proposes the in-flight")
	fmt.Fprintln(w, "slots under the successor's ballot — one round trip, no election.")
	fmt.Fprintln(w)

	// Part 2: the application crash schedules under consensus.
	fmt.Fprintf(w, "-- applications under consensus sequencing (TSP %d cities on P=%d, ACP %d vars, KV P=%d) --\n",
		cities, procs, nVars, kvP)
	crashNode := procs - 1
	inst := tsp.Generate(cities, 5)
	runTSP := func(name string, protocol group.Protocol, crash sim.Time) tsp.Result {
		cfg := orca.Config{Processors: procs, RTS: orca.Broadcast, Seed: 1,
			Protocol: protocol, Sequencer: crashNode}
		if crash > 0 {
			cfg.Faults = &netsim.FaultPlan{Crashes: []netsim.Crash{{Node: crashNode, At: crash}}}
		}
		fp := ""
		var r tsp.Result
		for i := 0; i < 2; i++ {
			r = tsp.RunOrca(cfg, inst, tsp.Params{FaultTolerant: true})
			if r.Report.TimedOut {
				panic(fmt.Sprintf("harness: bakeoff %s timed out (blocked: %v)", name, r.Report.Blocked))
			}
			got := fmt.Sprintf("best=%d elapsed=%d msgs=%d", r.Best, int64(r.Report.Elapsed), r.Report.Net.Messages)
			if fp == "" {
				fp = got
			} else if fp != got {
				panic(fmt.Sprintf("harness: bakeoff %s not deterministic:\n  %s\n  %s", name, fp, got))
			}
		}
		return r
	}
	tspBase := runTSP("tsp/consensus", group.Consensus, 0)
	tspCons := runTSP("tsp/consensus-crash", group.Consensus, tspBase.Report.Elapsed/2)
	tspElec := runTSP("tsp/elected-crash", group.ElectedSequencer, tspBase.Report.Elapsed/2)
	for _, r := range []tsp.Result{tspCons, tspElec} {
		if r.Best != tspBase.Best {
			panic(fmt.Sprintf("harness: bakeoff crash run found %d, baseline optimum %d", r.Best, tspBase.Best))
		}
	}
	if tspCons.Report.RTS.Elections != 0 || tspCons.Report.RTS.Takeovers == 0 {
		panic(fmt.Sprintf("harness: bakeoff consensus crash ran %d elections, %d takeovers",
			tspCons.Report.RTS.Elections, tspCons.Report.RTS.Takeovers))
	}

	ainst := acp.GeneratePropagation(nVars, dom, extra, 2)
	abase := acp.RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1,
		Protocol: group.Consensus}, ainst, acp.Params{FaultTolerant: true})
	acrash := acp.RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1,
		Protocol: group.Consensus, Sequencer: 2,
		Faults: &netsim.FaultPlan{Crashes: []netsim.Crash{{Node: 2, At: abase.Report.Elapsed / 3}}}},
		ainst, acp.Params{FaultTolerant: true})
	if acrash.Report.TimedOut {
		panic("harness: bakeoff acp crash run timed out")
	}
	for i := range abase.Domains {
		if acrash.Domains[i] != abase.Domains[i] {
			panic(fmt.Sprintf("harness: bakeoff acp fixpoint differs at variable %d", i))
		}
	}

	wl := workload.Config{
		Keys: 2048, Dist: workload.Zipf, Theta: 0.99,
		ReadFrac: 0.95, UpdateFrac: 0.02, Seed: 1,
		Rate: 2000 * float64(kvP), Duration: 80 * sim.Millisecond,
	}
	kvr := kv.Run(orca.Config{Processors: kvP, RTS: orca.Broadcast, Mixed: true, Seed: 1,
		Protocol: group.Consensus, Sequencer: kvP - 1,
		Faults: &netsim.FaultPlan{Crashes: []netsim.Crash{{Node: kvP - 1, At: 40 * sim.Millisecond}}}},
		kv.Params{Policy: kv.PolicyReplicated, Workload: wl})
	if kvr.Report.TimedOut {
		panic("harness: bakeoff kv crash run timed out")
	}
	if kvr.LostAcked > 0 {
		panic(fmt.Sprintf("harness: bakeoff kv lost %d acknowledged writes under consensus", kvr.LostAcked))
	}

	appRows := [][]string{}
	appRow := func(name string, rep orca.Report, result string) {
		appRows = append(appRows, []string{
			name, fmtTime(rep.Elapsed), result,
			fmt.Sprint(rep.RTS.Elections), fmt.Sprint(rep.RTS.Takeovers),
			fmt.Sprint(rep.RTS.Reproposals), fmt.Sprintf("%.0fus", rep.RTS.RecoveryVirtualUS),
		})
	}
	appRow("tsp/consensus", tspBase.Report, fmt.Sprint(tspBase.Best))
	appRow("tsp/consensus-crash", tspCons.Report, fmt.Sprint(tspCons.Best))
	appRow("tsp/elected-crash", tspElec.Report, fmt.Sprint(tspElec.Best))
	appRow("acp/consensus-crash", acrash.Report, fmt.Sprintf("rev=%d", acrash.Revisions))
	appRow("kv/consensus-crash", kvr.Report, fmt.Sprintf("acked=%d lost=%d", kvr.AckedPuts, kvr.LostAcked))
	Table(w, []string{"scenario", "time", "result", "elections", "takeovers",
		"reproposals", "recovery"}, appRows)
	fmt.Fprintln(w, "Consensus crash runs reproduce the baseline results with zero")
	fmt.Fprintln(w, "elections: the log survives the leader, so recovery is a takeover's")
	fmt.Fprintln(w, "re-proposal, not a view change.")
	fmt.Fprintln(w)
}
