package rts

import (
	"errors"
	"fmt"

	"repro/internal/amoeba"
	"repro/internal/sim"
)

// Partial replication — the optimization the paper reports as under
// development ("In the initial implementation, every object is
// replicated on all machines that need it (an optimizing scheme using
// partial replication is under development)").
//
// CreateOn places an object's replicas on a subset of the machines.
// Machines inside the placement behave exactly as with full
// replication: local reads, broadcast writes. Machines outside the
// placement forward their operations over RPC to a replica holder,
// which executes the operation through the normal path and returns the
// results. Write-heavy objects (like TSP's job queue, which the paper
// notes would be better off unreplicated) can thus be pinned to one
// machine, trading everyone's update-application cost for the
// forwarders' round trips.

// fwdPort is the default RPC port serving forwarded operations; each
// shard of a ShardedRTS binds its own (see BroadcastRTS.fwdPort).
const fwdPort = "objfwd"

// fwdOp is the forwarded-operation request body.
type fwdOp struct {
	Obj  ObjID
	Op   string
	Args []any
}

// placement returns the replica set for an object; nil means all
// machines.
func (r *BroadcastRTS) placement(id ObjID) []int {
	if r.placements == nil {
		return nil
	}
	return r.placements[id]
}

// replicatedOn reports whether node holds a replica of id.
func (r *BroadcastRTS) replicatedOn(node int, id ObjID) bool {
	pl := r.placement(id)
	if pl == nil {
		return true
	}
	for _, n := range pl {
		if n == node {
			return true
		}
	}
	return false
}

// CreateOn creates a shared object replicated only on the given
// machines (nil or empty means all machines, i.e. plain Create). The
// creating machine must be in the placement so creation can complete
// locally.
func (r *BroadcastRTS) CreateOn(w *Worker, typeName string, nodes []int, args ...any) ObjID {
	if len(nodes) == 0 {
		return r.Create(w, typeName, args...)
	}
	holder := false
	for _, n := range nodes {
		if n == w.Node() {
			holder = true
			break
		}
	}
	if !holder {
		panic(fmt.Sprintf("rts: CreateOn from node %d outside placement %v", w.Node(), nodes))
	}
	t := r.reg.Lookup(typeName)
	id := r.ids.alloc()
	if r.placements == nil {
		r.placements = make(map[ObjID][]int)
	}
	r.placements[id] = append([]int(nil), nodes...)
	mgr := r.mgr(w.Node())
	if mgr == nil {
		panic(fmt.Sprintf("rts: CreateOn from node %d outside the shard span %v", w.Node(), r.span))
	}
	mgr.syncBuf(w) // creation is ordered after the worker's buffered writes
	w.Flush()
	body := wireCreate{Obj: id, Type: t.Name, Args: args}
	uid := mgr.g.Broadcast(w.P, "rts-create", body, SizeOfArgs(args)+len(typeName)+16)
	mgr.await(w.P, uid)
	return id
}

// startForwarders binds the forwarded-operation service on every
// machine. Each request is handled on a fresh thread so a guarded
// operation cannot stall other forwarded work.
func (r *BroadcastRTS) startForwarders(machines []*amoeba.Machine) {
	for i, m := range machines {
		mgr := r.mgrs[i]
		srv := amoeba.NewServer(m, r.fwdPort)
		mgr.fwdSrv = srv
		mgr.fwdClient = amoeba.NewClient(m, amoeba.RPCDefaults{Timeout: 2 * sim.Second, Retries: 1 << 20})
		m.SpawnThread("objfwd", func(p *sim.Proc) {
			for {
				req, ok := srv.GetRequest(p)
				if !ok {
					return
				}
				body := req.Body.(fwdOp)
				mgr.m.SpawnThread("objfwd-op", func(hp *sim.Proc) {
					hw := NewWorker(hp, mgr.m)
					res := r.Invoke(hw, body.Obj, body.Op, body.Args...)
					hw.Flush()
					srv.PutReply(hp, req, res, SizeOfArgs(res))
				})
			}
		})
	}
}

// forward executes an operation at a replica holder on behalf of a
// machine outside the placement. Dead holders are skipped, and a
// holder that dies mid-operation fails the RPC with ErrCrashed; the
// operation is then retried at the next surviving holder. A retried
// write may therefore execute twice if the dead holder applied it
// before crashing and the write had already been broadcast — the
// at-least-once caveat every crash-recovery path of the runtime
// shares (see DESIGN.md).
func (mgr *bcastManager) forward(w *Worker, id ObjID, pl []int, opName string, args []any) []any {
	w.Flush()
	mgr.rts.forwarded++
	first := true
	for _, holder := range pl {
		if mgr.rts.down[holder] || mgr.m.Net().Down(holder) {
			continue
		}
		if !first {
			mgr.rts.opsRetried++
		}
		first = false
		rep, err := mgr.fwdClient.Trans(w.P, holder, mgr.rts.fwdPort, opName,
			fwdOp{Obj: id, Op: opName, Args: args}, SizeOfArgs(args)+len(opName)+16)
		if err == nil {
			if rep == nil {
				return nil
			}
			return rep.([]any)
		}
		if !errors.Is(err, amoeba.ErrCrashed) {
			panic(fmt.Sprintf("rts: forwarded op %s on object %d failed: %v", opName, id, err))
		}
	}
	panic(fmt.Sprintf("rts: no live replica holder for object %d (placement %v)", id, pl))
}

// Forwarded reports how many operations were forwarded to replica
// holders (partial replication statistics).
func (r *BroadcastRTS) Forwarded() int64 { return r.forwarded }

// directWrite applies a write to a single-copy object at its only
// holder, bypassing the broadcast entirely: with exactly one replica
// there is nothing to keep consistent, and the holder's execution
// order is the object's total order. Guarded writes wait on the
// replica's condition like guarded reads do.
func (mgr *bcastManager) directWrite(w *Worker, inst *bcastInstance, op *OpDef, args []any) []any {
	r := mgr.rts
	for {
		w.Flush()
		if op.Guard != nil {
			w.Accrue(r.costs.GuardCheck)
			if !op.Guard(inst.state, args) {
				r.guardWaits++
				inst.cond.Wait(w.P)
				continue
			}
		}
		w.Accrue(r.costs.WriteApply + r.costs.opCost(op))
		res := op.Apply(inst.state, args)
		inst.writes++
		if !inst.typ.SizeFixed {
			inst.seg.Resize(int64(inst.typ.stateSize(inst.state)))
		}
		inst.cond.Broadcast()
		return res
	}
}
