package sim

// Cond is a condition variable in virtual time. Waiters are woken in
// FIFO order, which keeps simulations deterministic. The zero Cond is
// ready to use (it binds to the environment of the first waiter), so
// it can be embedded by value in per-operation records without a
// separate allocation.
type Cond struct {
	env     *Env
	waiters []*Proc
}

// NewCond creates a condition variable bound to e.
func NewCond(e *Env) *Cond { return &Cond{env: e} }

// Wait parks p until Signal or Broadcast wakes it. As with
// sync.Cond, callers re-check their predicate in a loop.
func (c *Cond) Wait(p *Proc) {
	c.env = p.env
	c.waiters = append(c.waiters, p)
	p.park()
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters[0] = nil
	c.waiters = c.waiters[1:]
	c.env.wake(p)
}

// Broadcast wakes all waiting processes in FIFO order.
func (c *Cond) Broadcast() {
	for i, p := range c.waiters {
		c.env.wake(p)
		c.waiters[i] = nil
	}
	// Keep the backing array: a condition variable cycles through
	// wait/broadcast constantly and should not reallocate each round.
	c.waiters = c.waiters[:0]
}

// Waiting reports how many processes are parked on the condition.
func (c *Cond) Waiting() int { return len(c.waiters) }

// Resource is an exclusively held resource (a node's CPU, for example)
// with a FIFO wait queue and an optional high-priority lane used for
// interrupt handling.
type Resource struct {
	env    *Env
	holder *Proc
	// waiters[head:] is the FIFO wait queue; the slack below head
	// absorbs AcquireFront pushes without reallocating.
	waiters []*Proc
	head    int
	// busy accumulates total held time, for utilization reports.
	busy       Time
	acquiredAt Time
}

// NewResource creates a free resource bound to e.
func NewResource(e *Env) *Resource { return &Resource{env: e} }

// Acquire blocks p until it holds the resource.
func (r *Resource) Acquire(p *Proc) {
	if r.holder == nil {
		r.holder = p
		r.acquiredAt = r.env.now
		return
	}
	r.waiters = append(r.waiters, p)
	p.park()
}

// queued reports how many processes wait for the resource.
func (r *Resource) queued() int { return len(r.waiters) - r.head }

// AcquireFront is Acquire, but p jumps the wait queue. Interrupt
// service threads use it so device handling preempts queued user work
// (though not the current holder: the kernel is not preemptive
// mid-instruction).
func (r *Resource) AcquireFront(p *Proc) {
	if r.holder == nil {
		r.holder = p
		r.acquiredAt = r.env.now
		return
	}
	if r.head > 0 {
		r.head--
		r.waiters[r.head] = p
	} else {
		r.waiters = append(r.waiters, nil)
		copy(r.waiters[1:], r.waiters)
		r.waiters[0] = p
	}
	p.park()
}

// Release passes the resource to the next waiter, if any. Only the
// holder may call Release.
func (r *Resource) Release(p *Proc) {
	if r.holder != p {
		panic("sim: Release by non-holder " + p.name)
	}
	r.busy += r.env.now - r.acquiredAt
	if r.queued() == 0 {
		r.holder = nil
		if r.head > 0 {
			r.waiters = r.waiters[:0]
			r.head = 0
		}
		return
	}
	next := r.waiters[r.head]
	r.waiters[r.head] = nil
	r.head++
	if r.head == len(r.waiters) {
		r.waiters = r.waiters[:0]
		r.head = 0
	}
	r.holder = next
	r.acquiredAt = r.env.now
	r.env.wake(next)
}

// Use acquires the resource, holds it for d of virtual time, and
// releases it. It models a burst of exclusive work such as CPU time.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release(p)
}

// UseFront is Use with queue-jumping acquisition.
func (r *Resource) UseFront(p *Proc, d Time) {
	r.AcquireFront(p)
	p.Sleep(d)
	r.Release(p)
}

// BusyTime reports the total virtual time the resource has been held.
func (r *Resource) BusyTime() Time {
	t := r.busy
	if r.holder != nil {
		t += r.env.now - r.acquiredAt
	}
	return t
}

// Queue is an unbounded FIFO mailbox between simulated processes.
// Items are handed directly to waiting receivers, preserving FIFO
// fairness among both items and receivers.
//
// Storage is a deque on one backing array: the head index advances on
// Get and the array is reused once drained, so a steady-state
// producer/consumer pair allocates nothing. Parked receivers are
// represented by pooled waiter records for the same reason.
type Queue[T any] struct {
	env     *Env
	items   []T
	head    int
	waiters []*queueWaiter[T]
	wfree   []*queueWaiter[T]
	closed  bool
}

type queueWaiter[T any] struct {
	p     *Proc
	item  T
	ok    bool
	ready bool
}

// NewQueue creates an empty queue bound to e.
func NewQueue[T any](e *Env) *Queue[T] { return &Queue[T]{env: e} }

// Put appends an item, waking the longest-waiting receiver if one
// exists. Put never blocks. Put on a closed queue panics.
func (q *Queue[T]) Put(x T) {
	if q.closed {
		panic("sim: Put on closed queue")
	}
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters[0] = nil
		q.waiters = q.waiters[1:]
		if len(q.waiters) == 0 {
			q.waiters = q.waiters[:0]
		}
		w.item, w.ok, w.ready = x, true, true
		q.env.wake(w.p)
		return
	}
	if q.head > 0 && len(q.items) == cap(q.items) {
		// Compact instead of growing: slide the live window down so
		// the backing array is reused. Amortized O(1) per item.
		n := copy(q.items, q.items[q.head:])
		clear(q.items[n:])
		q.items = q.items[:n]
		q.head = 0
	}
	q.items = append(q.items, x)
}

// pop removes and returns the oldest item; the caller checked one
// exists.
func (q *Queue[T]) pop() T {
	item := q.items[q.head]
	var zero T
	q.items[q.head] = zero
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return item
}

// Get removes and returns the oldest item, blocking while the queue is
// empty. ok is false if the queue was closed and drained.
func (q *Queue[T]) Get(p *Proc) (item T, ok bool) {
	if q.head < len(q.items) {
		return q.pop(), true
	}
	if q.closed {
		return item, false
	}
	var w *queueWaiter[T]
	if n := len(q.wfree); n > 0 {
		w = q.wfree[n-1]
		q.wfree[n-1] = nil
		q.wfree = q.wfree[:n-1]
		*w = queueWaiter[T]{p: p}
	} else {
		w = &queueWaiter[T]{p: p}
	}
	q.waiters = append(q.waiters, w)
	p.park()
	item, ok = w.item, w.ok
	var zero T
	w.item, w.p = zero, nil
	q.wfree = append(q.wfree, w)
	return item, ok
}

// TryGet removes and returns the oldest item without blocking.
func (q *Queue[T]) TryGet() (item T, ok bool) {
	if q.head == len(q.items) {
		return item, false
	}
	return q.pop(), true
}

// Close marks the queue closed and wakes all blocked receivers with
// ok=false. Items already queued can still be drained with Get.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for i, w := range q.waiters {
		w.ready = true
		q.env.wake(w.p)
		q.waiters[i] = nil
	}
	q.waiters = q.waiters[:0]
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }
