package chess

import (
	"testing"

	"repro/internal/orca"
)

// Known positions. Castling and en passant are not modelled, so perft
// references are for positions where they cannot occur.
const (
	// fenMate1: white mates in one (Rd8#).
	fenMate1 = "6k1/5ppp/8/8/8/8/5PPP/3R2K1 w - - 0 1"
	// fenMate2: white mates in two (Kb6 then Qg8#).
	fenMate2 = "k7/8/8/1K6/8/8/6Q1/8 w - - 0 1"
	// fenMidgame: a quiet middlegame structure for benchmarks.
	fenMidgame = "r1bq1rk1/pp1n1ppp/2pbpn2/3p4/2PP4/2NBPN2/PP3PPP/R1BQ1RK1 w - - 0 1"
)

func mustBoard(t *testing.T, fen string) *Board {
	t.Helper()
	b, err := FromFEN(fen)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFENRoundTrip(t *testing.T) {
	b := mustBoard(t, fenMate1)
	if !b.WhiteToMove {
		t.Fatal("side to move wrong")
	}
	if b.Sq[sq(3, 0)] != WR {
		t.Fatalf("expected white rook on d1, got %v", b.Sq[sq(3, 0)])
	}
	if b.Sq[sq(6, 7)] != BK {
		t.Fatal("expected black king on g8")
	}
	if b.KingSquare(true) != sq(6, 0) {
		t.Fatal("white king square wrong")
	}
}

func TestFENErrors(t *testing.T) {
	bad := []string{
		"", "8/8/8/8 w", "9/8/8/8/8/8/8/8 w - -",
		"x7/8/8/8/8/8/8/8 w - -", "8/8/8/8/8/8/8/8 purple - -",
	}
	for _, fen := range bad {
		if _, err := FromFEN(fen); err == nil {
			t.Errorf("FEN %q parsed without error", fen)
		}
	}
}

// Perft references computed for this variant (no castling, no en
// passant, queen-only promotion) and cross-checked at small depth by
// hand for the simple positions.
func TestPerftKingsAndPawns(t *testing.T) {
	// Two kings, one white pawn: deterministic tiny tree.
	b := mustBoard(t, "7k/8/8/8/8/8/P7/K7 w - - 0 1")
	// White: Ka1->b1,b2 and a2a3,a2a4: 4 moves.
	if n := b.Perft(1); n != 4 {
		t.Fatalf("perft(1) = %d, want 4", n)
	}
	moves := b.LegalMoves()
	if len(moves) != 4 {
		t.Fatalf("legal moves = %d, want 4", len(moves))
	}
}

func TestPerftStartLikeStructure(t *testing.T) {
	// Full back ranks and pawn rows (the classical start position).
	// Without castling/en passant the first two plies match the
	// standard values 20 and 400.
	b := mustBoard(t, "rnbqkbnr/pppppppp/8/8/8/8/PPPPPPPP/RNBQKBNR w - - 0 1")
	if n := b.Perft(1); n != 20 {
		t.Fatalf("perft(1) = %d, want 20", n)
	}
	if n := b.Perft(2); n != 400 {
		t.Fatalf("perft(2) = %d, want 400", n)
	}
	if n := b.Perft(3); n != 8902 {
		t.Fatalf("perft(3) = %d, want 8902", n)
	}
}

func TestMakeUnmakeRestores(t *testing.T) {
	b := mustBoard(t, fenMidgame)
	h := b.Hash()
	var rec func(depth int)
	rec = func(depth int) {
		if depth == 0 {
			return
		}
		for _, m := range b.LegalMoves() {
			u := b.MakeMove(m)
			rec(depth - 1)
			b.UnmakeMove(u)
		}
	}
	rec(2)
	if b.Hash() != h {
		t.Fatal("make/unmake did not restore the position")
	}
}

func TestHashDistinguishesSide(t *testing.T) {
	a := mustBoard(t, "k7/8/8/8/8/8/8/K7 w - - 0 1")
	b := mustBoard(t, "k7/8/8/8/8/8/8/K7 b - - 0 1")
	if a.Hash() == b.Hash() {
		t.Fatal("hash ignores side to move")
	}
}

func TestMoveEncodeDecode(t *testing.T) {
	for _, m := range []Move{{From: 0, To: 127}, {From: 118, To: 3, Promo: true}} {
		if got := DecodeMove(m.Encode()); got != m {
			t.Fatalf("round trip %v -> %v", m, got)
		}
	}
}

func TestEvalSymmetric(t *testing.T) {
	b := mustBoard(t, fenMidgame)
	ev := Eval(b)
	b.WhiteToMove = !b.WhiteToMove
	if Eval(b) != -ev {
		t.Fatal("eval not antisymmetric in side to move")
	}
}

func TestTTPackUnpack(t *testing.T) {
	for _, tc := range []struct {
		score, depth, flag int
		move               Move
	}{
		{0, 0, ttExact, Move{}},
		{-MateScore + 3, 12, ttLower, Move{From: 21, To: 38}},
		{1234, 6, ttUpper, Move{From: 7, To: 112, Promo: true}},
	} {
		s, d, f, m := UnpackTT(PackTT(tc.score, tc.depth, tc.flag, tc.move))
		if s != tc.score || d != tc.depth || f != tc.flag || m != tc.move {
			t.Fatalf("pack/unpack: got (%d,%d,%d,%v) want (%d,%d,%d,%v)",
				s, d, f, m, tc.score, tc.depth, tc.flag, tc.move)
		}
	}
}

func TestSearchFindsMateInOne(t *testing.T) {
	b := mustBoard(t, fenMate1)
	res := SearchRoot(b, 3, NewLocalTables(), nil)
	if !IsMateScore(res.Score) || MovesToMate(res.Score) != 1 {
		t.Fatalf("score = %d, want mate in 1", res.Score)
	}
	if res.BestMove.String() != "d1d8" {
		t.Fatalf("best move = %v, want d1d8", res.BestMove)
	}
}

func TestSearchFindsMateInTwo(t *testing.T) {
	b := mustBoard(t, fenMate2)
	res := SearchRoot(b, 4, NewLocalTables(), nil)
	if !IsMateScore(res.Score) {
		t.Fatalf("score = %d, want mate score", res.Score)
	}
	if MovesToMate(res.Score) != 2 {
		t.Fatalf("mate in %d, want 2 (score %d)", MovesToMate(res.Score), res.Score)
	}
}

func TestSearchPrefersCapture(t *testing.T) {
	// White queen can take a free rook.
	b := mustBoard(t, "k7/8/8/3r4/8/3Q4/8/K7 w - - 0 1")
	res := SearchRoot(b, 3, NewLocalTables(), nil)
	if res.BestMove.String() != "d3d5" {
		t.Fatalf("best = %v, want d3d5 (winning the rook)", res.BestMove)
	}
}

func TestKillerTableOrdering(t *testing.T) {
	lt := NewLocalTables()
	lt.AddKiller(2, 100)
	lt.AddKiller(2, 200)
	k1, k2 := lt.Killers(2)
	if k1 != 200 || k2 != 100 {
		t.Fatalf("killers = %d,%d want 200,100", k1, k2)
	}
	lt.AddKiller(2, 200) // duplicate should not shift
	k1, k2 = lt.Killers(2)
	if k1 != 200 || k2 != 100 {
		t.Fatalf("killers after dup = %d,%d", k1, k2)
	}
}

func TestOracolFindsMateInTwo(t *testing.T) {
	b := mustBoard(t, fenMate2)
	res := RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1}, b,
		Params{MaxDepth: 4, SharedTT: true, SharedKiller: true})
	if res.Report.TimedOut {
		t.Fatalf("timed out; blocked: %v", res.Report.Blocked)
	}
	if !IsMateScore(res.Score) || MovesToMate(res.Score) != 2 {
		t.Fatalf("parallel: score %d, want mate in 2", res.Score)
	}
}

func TestOracolMatchesSequentialScore(t *testing.T) {
	b := mustBoard(t, fenMidgame)
	seq := SearchRoot(b, 3, NewLocalTables(), nil)
	par := RunOrca(orca.Config{Processors: 3, RTS: orca.Broadcast, Seed: 2}, b,
		Params{MaxDepth: 3})
	if par.Report.TimedOut {
		t.Fatalf("timed out; blocked: %v", par.Report.Blocked)
	}
	// Parallel root splitting must find the same best score at equal
	// depth (move may differ among equals).
	if par.Score != seq.Score {
		t.Fatalf("parallel score %d, sequential %d", par.Score, seq.Score)
	}
}

func TestOracolLocalVsSharedTablesBothCorrect(t *testing.T) {
	b := mustBoard(t, fenMate2)
	for _, shared := range []bool{false, true} {
		res := RunOrca(orca.Config{Processors: 3, RTS: orca.Broadcast, Seed: 3}, b,
			Params{MaxDepth: 4, SharedTT: shared, SharedKiller: shared})
		if !IsMateScore(res.Score) {
			t.Fatalf("shared=%v: no mate found", shared)
		}
	}
}

func TestOracolDeterministic(t *testing.T) {
	b := mustBoard(t, fenMidgame)
	run := func() (int64, int) {
		r := RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 7}, b,
			Params{MaxDepth: 3, SharedTT: true})
		return r.Nodes, r.Score
	}
	n1, s1 := run()
	n2, s2 := run()
	if n1 != n2 || s1 != s2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", n1, s1, n2, s2)
	}
}
