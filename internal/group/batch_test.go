package group

import (
	"fmt"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// batchCfg turns batching on with the given parameters.
func batchCfg(maxOps, maxBytes int, linger sim.Time) func(*Config) {
	return func(c *Config) {
		c.Batch = BatchConfig{MaxOps: maxOps, MaxBytes: maxBytes, Linger: linger}
	}
}

// burst submits n same-instant ops of the given size from node i.
func burst(h *harness, i, n, size int) {
	h.ms[i].SpawnThread("burst", func(p *sim.Proc) {
		ops := make([]BatchOp, n)
		for k := range ops {
			ops[k] = BatchOp{Kind: "msg", Body: fmt.Sprintf("n%d-%d", i, k), Size: size}
		}
		h.gs[i].BroadcastBatch(p, ops, nil)
	})
}

// TestBatchFlushMaxOps: a same-instant burst splits into MaxOps-sized
// frames — both on the sender (request frames) and at the sequencer
// (sequenced data frames) — and delivers exactly once, in order,
// everywhere.
func TestBatchFlushMaxOps(t *testing.T) {
	h := newHarness(7, 3, nil, batchCfg(4, 1<<20, sim.Millisecond))
	burst(h, 1, 8, 100)
	h.env.RunUntil(2 * sim.Second)
	h.checkAgreement(t, 8, nil)
	st := h.net.Stats()
	if got := st.CountsByKind["grp-breq"]; got != 2 {
		t.Errorf("packed request frames = %d, want 2 (8 ops / MaxOps 4)", got)
	}
	if got := st.CountsByKind["grp-bdata"]; got != 2 {
		t.Errorf("packed data frames = %d, want 2 (8 ops / MaxOps 4)", got)
	}
	if got := st.CountsByKind["grp-req"] + st.CountsByKind["grp-data"]; got != 0 {
		t.Errorf("unbatched frames = %d, want 0", got)
	}
	// Delivery order inside the batch is submission order.
	for k := 0; k < 8; k++ {
		if want := fmt.Sprintf("n1-%d", k); h.logs[0][k].Body.(string) != want {
			t.Fatalf("delivery %d = %v, want %s", k, h.logs[0][k].Body, want)
		}
	}
	h.env.Stop()
	h.env.Shutdown()
}

// TestBatchFlushMaxBytes: the byte cap flushes before the op cap.
func TestBatchFlushMaxBytes(t *testing.T) {
	h := newHarness(7, 3, nil, batchCfg(64, 300, sim.Millisecond))
	// 100-byte payloads (+12 framing) cross the 300-byte cap every
	// third op: 9 ops -> 3 request frames.
	burst(h, 1, 9, 100)
	h.env.RunUntil(2 * sim.Second)
	h.checkAgreement(t, 9, nil)
	st := h.net.Stats()
	if got := st.CountsByKind["grp-breq"]; got != 3 {
		t.Errorf("packed request frames = %d, want 3 (byte cap)", got)
	}
	h.env.Stop()
	h.env.Shutdown()
}

// TestBatchLinger: ops submitted in different instants (so sender-side
// same-instant packing cannot merge them) still share one sequenced
// frame when they reach the sequencer within the linger window, and a
// lone op is not delayed beyond the linger.
func TestBatchLinger(t *testing.T) {
	h := newHarness(7, 3, nil, batchCfg(16, 1<<20, 2*sim.Millisecond))
	var deliveredAt sim.Time
	h.ms[0].SpawnThread("watch", func(p *sim.Proc) {
		for len(h.logs[0]) < 2 {
			p.Sleep(100 * sim.Microsecond)
		}
		deliveredAt = p.Now()
	})
	h.ms[1].SpawnThread("trickle", func(p *sim.Proc) {
		h.gs[1].Broadcast(p, "msg", "a", 50)
		p.Sleep(300 * sim.Microsecond)
		h.gs[1].Broadcast(p, "msg", "b", 50)
	})
	h.env.RunUntil(time500())
	h.checkAgreement(t, 2, nil)
	st := h.net.Stats()
	if got := st.CountsByKind["grp-bdata"]; got != 1 {
		t.Errorf("packed data frames = %d, want 1 (both ops inside one linger window)", got)
	}
	if deliveredAt == 0 || deliveredAt > 10*sim.Millisecond {
		t.Errorf("delivery at %v, want within a few linger windows", deliveredAt)
	}
	h.env.Stop()
	h.env.Shutdown()
}

func time500() sim.Time { return 500 * sim.Millisecond }

// TestBatchTotalOrderUnderLoss: batched streams under 15% fragment
// loss still deliver exactly once, in one agreed order, under both
// methods. This exercises retransmission of lost batch frames: the
// gap machinery recovers mid-batch ops individually from the history
// ring, and senders re-send only still-unacknowledged items.
func TestBatchTotalOrderUnderLoss(t *testing.T) {
	for _, method := range []Method{ForcePB, ForceBB} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			h := newHarness(23, 4, func(p *netsim.Params) { p.DropProb = 0.15 },
				func(c *Config) {
					c.Method = method
					c.SenderTimeout = 60 * sim.Millisecond
					c.GapTimeout = 30 * sim.Millisecond
					c.Heartbeat = 100 * sim.Millisecond
					batchCfg(4, 1<<20, sim.Millisecond)(c)
				})
			const bursts, per = 5, 4
			for i := range h.ms {
				i := i
				h.ms[i].SpawnThread("producer", func(p *sim.Proc) {
					for k := 0; k < bursts; k++ {
						ops := make([]BatchOp, per)
						for j := range ops {
							ops[j] = BatchOp{Kind: "msg", Body: fmt.Sprintf("n%d-%d-%d", i, k, j), Size: 150}
						}
						h.gs[i].BroadcastBatch(p, ops, nil)
						p.Sleep(sim.Time(3+i) * sim.Millisecond)
					}
				})
			}
			h.env.RunUntil(120 * sim.Second)
			h.checkAgreement(t, 4*bursts*per, nil)
			h.checkFrameAgreement(t, nil)
			seen := map[int64]bool{}
			for _, uid := range h.uidLogs[0] {
				if seen[uid] {
					t.Fatalf("uid %d delivered twice", uid)
				}
				seen[uid] = true
			}
			h.env.Stop()
			h.env.Shutdown()
		})
	}
}

// TestBatchSequencerCrash: the sequencer dies with batches in its
// packer and in flight; the survivors elect a new sequencer, senders
// re-submit their unacknowledged items, and every survivor delivers
// the same duplicate-free stream.
func TestBatchSequencerCrash(t *testing.T) {
	h := newHarness(31, 4, nil, func(c *Config) {
		c.SenderTimeout = 50 * sim.Millisecond
		c.SenderRetries = 2
		c.ElectionWait = 80 * sim.Millisecond
		c.Heartbeat = 100 * sim.Millisecond
		batchCfg(4, 1<<20, sim.Millisecond)(c)
	})
	for i := 1; i < 4; i++ {
		i := i
		h.ms[i].SpawnThread("producer", func(p *sim.Proc) {
			send := func(tag string, k int) {
				ops := make([]BatchOp, 3)
				for j := range ops {
					ops[j] = BatchOp{Kind: "msg", Body: fmt.Sprintf("n%d-%s%d-%d", i, tag, k, j), Size: 100}
				}
				h.gs[i].BroadcastBatch(p, ops, nil)
			}
			for k := 0; k < 4; k++ {
				send("pre", k)
				p.Sleep(2 * sim.Millisecond)
			}
			if i == 1 {
				// Crash the sequencer right after a burst: some items
				// sit in its packer, some are sequenced but not yet
				// everywhere.
				h.ms[0].Crash()
			}
			for k := 0; k < 4; k++ {
				send("post", k)
				p.Sleep(2 * sim.Millisecond)
			}
		})
	}
	h.env.RunUntil(30 * sim.Second)
	skip := map[int]bool{0: true}
	h.checkAgreement(t, 3*8*3, skip)
	h.checkFrameAgreement(t, skip)
	seen := map[int64]bool{}
	for _, uid := range h.uidLogs[1] {
		if seen[uid] {
			t.Fatalf("uid %d delivered twice after re-sequencing", uid)
		}
		seen[uid] = true
	}
	if h.gs[1].Sequencer() == 0 {
		t.Fatal("sequencer still node 0 after crash")
	}
	h.env.Stop()
	h.env.Shutdown()
}

// TestBatchOffUnchangedWire: with the zero BatchConfig the wire
// carries only the classic frame kinds — the batching machinery is
// fully dormant.
func TestBatchOffUnchangedWire(t *testing.T) {
	h := newHarness(11, 3, nil, nil)
	h.ms[1].SpawnThread("producer", func(p *sim.Proc) {
		ops := make([]BatchOp, 4)
		for j := range ops {
			ops[j] = BatchOp{Kind: "msg", Body: j, Size: 100}
		}
		h.gs[1].BroadcastBatch(p, ops, nil)
	})
	h.env.RunUntil(2 * sim.Second)
	h.checkAgreement(t, 4, nil)
	st := h.net.Stats()
	for _, kind := range []string{"grp-breq", "grp-bdata", "grp-bb-bdata", "grp-baccept"} {
		if st.CountsByKind[kind] != 0 {
			t.Errorf("batched frame kind %s on the wire with batching off", kind)
		}
	}
	h.env.Stop()
	h.env.Shutdown()
}
