package rts

import (
	"errors"
	"fmt"

	"repro/internal/amoeba"
	"repro/internal/sim"
)

// Server side of the point-to-point runtime: the per-machine RPC
// dispatcher, the one-way control port, and the per-object primary
// thread that runs the invalidation and update protocols.

// serve is the machine's RPC dispatcher thread. Potentially blocking
// work (operations at the primary, fetches) is routed to per-object
// threads so one blocked object cannot stall the machine's service.
// Secondary-side protocol steps (update apply, invalidation) are quick
// and handled inline.
func (n *p2pNode) serve(p *sim.Proc) {
	r := n.rts
	for {
		req, ok := n.srv.GetRequest(p)
		if !ok {
			return
		}
		switch body := req.Body.(type) {
		case p2pOpReq:
			meta := r.meta(body.Obj)
			if meta.moved || meta.primary != n.m.ID() {
				// The object migrated or re-homed while the request
				// was in flight: bounce so the client re-resolves.
				n.srv.PutReply(p, req, retrySlice, 8)
				break
			}
			op := meta.typ.Op(body.Op)
			kind := "write"
			if op.Kind == Read {
				kind = "read"
			}
			n.queues[body.Obj].Put(&p2pTask{kind: kind, op: op, args: body.Args, from: req.From, req: req})

		case p2pFetchReq:
			if meta := r.meta(body.Obj); meta.moved || meta.primary != n.m.ID() {
				n.srv.PutReply(p, req, retrySlice, 8)
				break
			}
			n.queues[body.Obj].Put(&p2pTask{kind: "fetch", from: body.Node, req: req})

		case p2pMigrateReq:
			meta := r.meta(body.Obj)
			if meta.moved {
				n.srv.PutReply(p, req, nil, 4) // already cut over
				break
			}
			if meta.primary != n.m.ID() {
				n.srv.PutReply(p, req, retrySlice, 8)
				break
			}
			n.queues[body.Obj].Put(&p2pTask{kind: body.Kind, from: req.From, to: body.Target, req: req})

		case p2pUpdateReq:
			// Phase one at a secondary: lock, apply, ack, stay locked.
			n.applyUpdate(p, req, body)

		case p2pInvalReq:
			// Invalidate the local copy and acknowledge.
			r.stats.Invalidations++
			n.dropLocal(body.Obj)
			n.srv.PutReply(p, req, nil, 4)

		default:
			panic(fmt.Sprintf("rts: unexpected RPC body %T", req.Body))
		}
	}
}

// applyUpdate performs phase one of the update protocol at a
// secondary.
func (n *p2pNode) applyUpdate(p *sim.Proc, req *amoeba.Request, u p2pUpdateReq) {
	r := n.rts
	inst, ok := n.insts[u.Obj]
	if !ok || !inst.valid {
		// The copy was discarded while the update was in flight; the
		// drop notice will reach the primary. Acknowledge vacuously.
		n.srv.PutReply(p, req, nil, 4)
		return
	}
	op := inst.typ.Op(u.Op)
	inst.locked = true
	n.m.Compute(p, r.costs.WriteApply+r.costs.opCost(op))
	op.Apply(inst.state, u.Args)
	if !inst.typ.SizeFixed {
		inst.seg.Resize(int64(inst.typ.stateSize(inst.state)))
	}
	n.srv.PutReply(p, req, nil, 4)
}

// handleCtl services the one-way control port: unlocks (phase two),
// copyset drops, and pushed installs. It runs on the interrupt thread
// and never blocks.
func (n *p2pNode) handleCtl(p *sim.Proc, from int, pkt amoeba.Packet) {
	switch body := pkt.Body.(type) {
	case p2pUnlock:
		if inst, ok := n.insts[body.Obj]; ok {
			inst.locked = false
			inst.cond.Broadcast()
		}
	case p2pDrop:
		if inst, ok := n.insts[body.Obj]; ok && inst.primary {
			delete(inst.copyset, body.Node)
		}
	case p2pInstall:
		meta := n.rts.meta(body.Obj)
		n.installCopy(body.Obj, meta.typ, body.State)
	}
}

// objectLoop is the primary's per-object protocol thread. It
// serializes all writes, remote reads, and fetches on the object, and
// holds guarded tasks until a committed write enables them.
func (n *p2pNode) objectLoop(p *sim.Proc, id ObjID, q *sim.Queue[*p2pTask]) {
	var pending []*p2pTask
	for {
		t, ok := q.Get(p)
		if !ok {
			return
		}
		n.execTask(p, id, t, &pending)
	}
}

// execTask runs one task, parking it if its guard is false.
func (n *p2pNode) execTask(p *sim.Proc, id ObjID, t *p2pTask, pending *[]*p2pTask) {
	r := n.rts
	meta := r.meta(id)
	inst := n.insts[id]
	if meta.moved || inst == nil || !inst.primary {
		// The object migrated away or re-homed between enqueue and
		// execution: bounce the task back to its invoker.
		n.finishTask(p, t, retrySlice)
		return
	}
	switch t.kind {
	case "fetch":
		state := inst.typ.Clone(inst.state)
		inst.copyset[t.from] = true
		n.srv.PutReply(p, t.req, state, inst.typ.stateSize(state)+16)

	case "read":
		if t.op.Guard != nil {
			n.m.Compute(p, r.costs.GuardCheck)
			if !t.op.Guard(inst.state, t.args) {
				r.stats.GuardWaits++
				*pending = append(*pending, t)
				return
			}
		}
		n.m.Compute(p, r.costs.ReadLocal+r.costs.opCost(t.op))
		n.finishTask(p, t, t.op.Apply(inst.state, t.args))

	case "write":
		if t.op.Guard != nil {
			n.m.Compute(p, r.costs.GuardCheck)
			if !t.op.Guard(inst.state, t.args) {
				r.stats.GuardWaits++
				*pending = append(*pending, t)
				return
			}
		}
		n.commitWrite(p, id, inst, t)
		n.drainPending(p, id, pending)

	case "moveout":
		n.migrateOut(p, id, t, pending)

	case "rehome":
		n.migratePrimary(p, id, t, pending)

	default:
		panic("rts: unknown task kind " + t.kind)
	}
}

// migrateOut hands the object to the broadcast runtime (see
// adapt.go). It runs on the primary's object thread, so every task
// enqueued before it has completed — the queue position is the
// point-to-point side of the cut; the sequenced migrate record it
// emits is the broadcast side. The snapshot is published through
// moveSnap before the cut, with no blocking point in between, so a
// machine crash can never strand the object without a recoverable
// snapshot.
func (n *p2pNode) migrateOut(p *sim.Proc, id ObjID, t *p2pTask, pending *[]*p2pTask) {
	r := n.rts
	if r.mover == nil || r.moveSnap == nil {
		panic("rts: moveout without a broadcast runtime attached")
	}
	meta := r.meta(id)
	inst := n.insts[id]
	clone := meta.typ.Clone(inst.state)
	r.moveSnap(n.m.ID(), id, clone)
	meta.moved = true
	// Bounce parked guarded tasks; they re-register as broadcast ops.
	for _, pt := range *pending {
		n.finishTask(p, pt, retrySlice)
	}
	*pending = (*pending)[:0]
	// Drop every copy; suspended readers wake and bounce on meta.moved.
	for _, node := range r.nodes {
		if node.m.Crashed() {
			continue
		}
		node.dropLocal(id)
	}
	// Sequence the migrate record; its globally-first delivery flips
	// ownership to the broadcast runtime.
	r.mover(p, n.m.ID(), id, clone)
	n.finishTask(p, t, nil)
}

// migratePrimary moves the primary copy onto a new machine — the
// controller chasing the hottest writer. The primary's task queue
// serializes it against all earlier operations; like rehome, the
// promotion mutates the global object table directly, charging the
// state-transfer work to this machine's CPU.
func (n *p2pNode) migratePrimary(p *sim.Proc, id ObjID, t *p2pTask, pending *[]*p2pTask) {
	r := n.rts
	meta := r.meta(id)
	inst := n.insts[id]
	target := t.to
	if target == n.m.ID() || r.nodeDown(target) {
		n.finishTask(p, t, nil) // nothing to move, or the target died
		return
	}
	tn := r.nodes[target]
	st := meta.typ.Clone(inst.state)
	n.m.Compute(p, r.costs.WriteApply)
	tn.installCopy(id, meta.typ, st)
	ti := tn.insts[id]
	ti.primary = true
	ti.copyset = make(map[int]bool)
	// Adopt surviving secondaries (none under SingleCopy placement,
	// but the protocol does not depend on that).
	for _, on := range r.nodes {
		if on.m.Crashed() || on.m.ID() == target || on.m.ID() == n.m.ID() {
			continue
		}
		if sec, ok := on.insts[id]; ok && sec.valid {
			ti.copyset[on.m.ID()] = true
			sec.primary = false
		}
	}
	if _, ok := tn.queues[id]; !ok {
		q := sim.NewQueue[*p2pTask](tn.m.Env())
		tn.queues[id] = q
		tn.m.SpawnThread(fmt.Sprintf("obj%d", id), func(pp *sim.Proc) { tn.objectLoop(pp, id, q) })
	}
	meta.primary = target
	n.dropLocal(id)
	// Bounce parked guarded tasks; they re-issue at the new primary.
	for _, pt := range *pending {
		n.finishTask(p, pt, retrySlice)
	}
	*pending = (*pending)[:0]
	n.m.Env().Tracef("rts: object %d primary migrated %d -> %d", id, n.m.ID(), target)
	n.finishTask(p, t, nil)
}

// finishTask completes a task toward its (local or remote) invoker.
func (n *p2pNode) finishTask(p *sim.Proc, t *p2pTask, res []any) {
	if t.req != nil {
		n.srv.PutReply(p, t.req, res, SizeOfArgs(res))
		return
	}
	t.res = res
	t.done = true
	t.cond.Broadcast()
}

// commitWrite runs the object's write protocol at the primary.
func (n *p2pNode) commitWrite(p *sim.Proc, id ObjID, inst *p2pInstance, t *p2pTask) {
	r := n.rts
	meta := r.meta(id)
	inst.locked = true
	// Crashed secondaries leave the copyset: their copies died with
	// their machines and must not be waited on.
	for node := range inst.copyset {
		if r.nodeDown(node) {
			delete(inst.copyset, node)
		}
	}
	secs := make([]int, 0, len(inst.copyset))
	for node := range inst.copyset {
		secs = append(secs, node)
	}
	sortInts(secs)
	if len(secs) > 0 {
		switch meta.protocol {
		case Invalidation:
			// Lock, invalidate every secondary, collect acks.
			n.fanoutRPC(p, secs, "inval", func(int) any { return p2pInvalReq{Obj: id} }, 8)
			inst.copyset = make(map[int]bool)
		case Update:
			// Phase one: ship the operation, collect acks; copies
			// stay locked.
			r.stats.Updates += int64(len(secs))
			n.fanoutRPC(p, secs, "update", func(int) any {
				return p2pUpdateReq{Obj: id, Op: t.op.Name, Args: t.args}
			}, SizeOfArgs(t.args)+len(t.op.Name)+16)
		}
	}
	// Apply at the primary.
	n.m.Compute(p, r.costs.WriteApply+r.costs.opCost(t.op))
	res := t.op.Apply(inst.state, t.args)
	if !inst.typ.SizeFixed {
		inst.seg.Resize(int64(inst.typ.stateSize(inst.state)))
	}
	if meta.protocol == Update {
		// Phase two: unlock all copies.
		for _, dst := range secs {
			n.m.Send(p, dst, amoeba.Packet{
				Port: p2pCtlPort, Kind: "rts-unlock", Body: p2pUnlock{Obj: id}, Size: 12,
			})
		}
	}
	inst.locked = false
	inst.cond.Broadcast()
	n.finishTask(p, t, res)
}

// drainPending retries guarded tasks after each committed write until
// no more can run.
func (n *p2pNode) drainPending(p *sim.Proc, id ObjID, pending *[]*p2pTask) {
	for progress := true; progress; {
		progress = false
		for i, t := range *pending {
			n.m.Compute(p, n.rts.costs.GuardCheck)
			inst := n.insts[id]
			if !t.op.Guard(inst.state, t.args) {
				continue
			}
			*pending = append((*pending)[:i], (*pending)[i+1:]...)
			if t.kind == "write" {
				n.commitWrite(p, id, inst, t)
			} else {
				n.m.Compute(p, n.rts.costs.ReadLocal+n.rts.costs.opCost(t.op))
				n.finishTask(p, t, t.op.Apply(inst.state, t.args))
			}
			progress = true
			break
		}
	}
}

// fanoutRPC issues the same RPC to several machines in parallel and
// waits for all acknowledgements. A target that crashes mid-protocol
// acknowledges vacuously — its copy died with it, so there is nothing
// left to keep consistent — and the next commitWrite prunes it from
// the copyset.
func (n *p2pNode) fanoutRPC(p *sim.Proc, targets []int, op string, body func(dst int) any, size int) {
	remaining := len(targets)
	cond := sim.NewCond(n.m.Env())
	for _, dst := range targets {
		dst := dst
		n.m.SpawnThread("fan-"+op, func(pp *sim.Proc) {
			if _, err := n.client.Trans(pp, dst, p2pRPCPort, op, body(dst), size); err != nil {
				if !errors.Is(err, amoeba.ErrCrashed) {
					panic(fmt.Sprintf("rts: %s to node %d failed: %v", op, dst, err))
				}
			}
			remaining--
			cond.Broadcast()
		})
	}
	for remaining > 0 {
		cond.Wait(p)
	}
}

// sortInts sorts a small int slice (insertion sort; avoids pulling in
// sort for three-element slices on hot paths).
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
