// Package netsim models the shared-medium network of the paper's
// testbed: a 10 Mb/s Ethernet connecting the processor-pool machines.
//
// The model captures the two costs that drive the paper's protocol
// analysis: bandwidth (all frames serialize over one bus) and
// per-frame receiver interrupts (charged by the kernel layer for every
// fragment delivered). Frames above the MTU are fragmented; messages
// occupy the bus for all fragments back to back, as Amoeba's blast
// protocols did. Losses are injected per receiver with a configurable
// probability so the reliability machinery of the upper layers is
// actually exercised, and a FaultPlan schedules deterministic machine
// crashes, transient partitions, and per-link loss windows on top.
//
// Downward: the wire runs on package sim's virtual clock. Upward:
// package amoeba attaches one kernel per node and charges interrupt
// costs for every delivery this package schedules.
package netsim
