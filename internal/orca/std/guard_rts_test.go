package std

// Guard semantics through the typed wrapper layer, on every runtime
// kind. The paper's condition synchronization — guarded operations
// suspend until a write makes the guard true, then execute
// indivisibly — must behave identically whether the runtime is the
// broadcast RTS or the point-to-point RTS with either protocol; these
// tests drive blocking Queue.Get, Counter.AwaitGE and Barrier.Wait
// through all three and require identical results.

import (
	"testing"

	"repro/internal/orca"
	"repro/internal/sim"
)

var allKinds = []orca.RTSKind{orca.Broadcast, orca.P2PUpdate, orca.P2PInvalidate}

// TestQueueGetBlocksAcrossRTS runs a producer/consumer pair where
// every Get necessarily blocks (the producer adds jobs strictly after
// consumers ask), checking sums and drain behaviour per runtime.
func TestQueueGetBlocksAcrossRTS(t *testing.T) {
	const jobs, workers = 18, 3
	type outcome struct {
		sum     int
		arrived int
	}
	results := make(map[string]outcome)
	for _, kind := range allKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rt := orca.New(orca.Config{Processors: workers + 1, RTS: kind, Seed: 41}, Register)
			var out outcome
			rep := rt.Run(func(p *orca.Proc) {
				q := NewQueue[int](p)
				acc := NewAccum(p)
				fin := NewBarrier(p, workers)
				for i := 1; i <= workers; i++ {
					p.Fork(i, "consumer", func(wp *orca.Proc) {
						local := 0
						for {
							n, ok := q.Get(wp) // blocks: producer is slower
							if !ok {
								break
							}
							local += n
							wp.Work(sim.Millisecond)
						}
						acc.Add(wp, local)
						fin.Arrive(wp)
					})
				}
				// Produce slowly so consumers always find the queue
				// empty and suspend on the guard.
				for j := 1; j <= jobs; j++ {
					p.Sleep(5 * sim.Millisecond)
					q.Add(p, j)
				}
				q.Close(p)
				fin.Wait(p)
				out = outcome{sum: acc.Value(p), arrived: fin.Count(p)}
			})
			if rep.TimedOut {
				t.Fatalf("%v: run timed out (guard never woke)", kind)
			}
			want := jobs * (jobs + 1) / 2
			if out.sum != want {
				t.Fatalf("%v: sum = %d, want %d", kind, out.sum, want)
			}
			if out.arrived != workers {
				t.Fatalf("%v: %d workers arrived, want %d", kind, out.arrived, workers)
			}
			results[kind.String()] = out
		})
	}
	base := results[orca.Broadcast.String()]
	for k, o := range results {
		if o != base {
			t.Fatalf("outcome differs across runtimes: %s=%+v, broadcast=%+v", k, o, base)
		}
	}
}

// TestCounterAwaitGEAcrossRTS checks the guarded read wakes exactly
// when the threshold is crossed, under every runtime.
func TestCounterAwaitGEAcrossRTS(t *testing.T) {
	const target = 4
	for _, kind := range allKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rt := orca.New(orca.Config{Processors: 2, RTS: kind, Seed: 42}, Register)
			var seen int
			var woke, lastInc sim.Time
			rep := rt.Run(func(p *orca.Proc) {
				c := NewCounter(p, 0)
				p.Fork(1, "waiter", func(wp *orca.Proc) {
					seen = c.AwaitGE(wp, target)
					woke = wp.Now()
				})
				for i := 0; i < target; i++ {
					p.Sleep(20 * sim.Millisecond)
					lastInc = p.Now()
					c.Inc(p)
				}
			})
			if rep.TimedOut {
				t.Fatalf("%v: timed out", kind)
			}
			if seen < target {
				t.Fatalf("%v: awaitGE returned %d, want >= %d", kind, seen, target)
			}
			if woke < lastInc {
				t.Fatalf("%v: woke at %v before the enabling increment at %v", kind, woke, lastInc)
			}
		})
	}
}

// TestBarrierWaitAcrossRTS checks no process passes Wait before the
// last Arrive, under every runtime.
func TestBarrierWaitAcrossRTS(t *testing.T) {
	const workers = 3
	for _, kind := range allKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rt := orca.New(orca.Config{Processors: workers + 1, RTS: kind, Seed: 43}, Register)
			passed := make([]sim.Time, workers)
			var lastArrive sim.Time
			rep := rt.Run(func(p *orca.Proc) {
				bar := NewBarrier(p, workers+1) // workers + the main process
				for i := 0; i < workers; i++ {
					i := i
					p.Fork(i+1, "worker", func(wp *orca.Proc) {
						// Stagger arrivals so the barrier is reached at
						// genuinely different times.
						wp.Sleep(sim.Time(i+1) * 30 * sim.Millisecond)
						bar.Arrive(wp)
						bar.Wait(wp)
						passed[i] = wp.Now()
					})
				}
				p.Sleep(200 * sim.Millisecond)
				lastArrive = p.Now()
				bar.Arrive(p)
				bar.Wait(p)
			})
			if rep.TimedOut {
				t.Fatalf("%v: timed out", kind)
			}
			for i, ts := range passed {
				if ts < lastArrive {
					t.Fatalf("%v: worker %d passed the barrier at %v, before the last arrival at %v",
						kind, i, ts, lastArrive)
				}
			}
		})
	}
}

// TestGuardOnPrimaryCopyUnderMixed blocks consumers on a primary-copy
// queue's guard while broadcast objects are actively written, on a
// mixed runtime: the suspension and wake must behave exactly as on the
// pure runtimes even though the enabling write arrives through the
// point-to-point protocol and the surrounding traffic through the
// total order.
func TestGuardOnPrimaryCopyUnderMixed(t *testing.T) {
	const jobs, workers = 18, 3
	rt := orca.New(orca.Config{Processors: workers + 1, RTS: orca.Broadcast, Mixed: true, Seed: 41}, Register)
	var sum, arrived int
	rep := rt.Run(func(p *orca.Proc) {
		q := NewQueue[int](p, orca.With(orca.PrimaryCopy{
			Protocol: orca.Update, Placement: orca.SingleCopy,
		}))
		acc := NewAccum(p) // broadcast-replicated
		fin := NewBarrier(p, workers)
		beat := NewCounter(p, 0)
		for i := 1; i <= workers; i++ {
			p.Fork(i, "consumer", func(wp *orca.Proc) {
				local := 0
				for {
					n, ok := q.Get(wp) // guard blocks at the primary
					if !ok {
						break
					}
					local += n
					// A broadcast write between every two guarded gets,
					// so the total order stays busy while guards block.
					beat.Inc(wp)
					wp.Work(sim.Millisecond)
				}
				acc.Add(wp, local)
				fin.Arrive(wp)
			})
		}
		for j := 1; j <= jobs; j++ {
			p.Sleep(5 * sim.Millisecond) // consumers outrun the producer
			q.Add(p, j)
		}
		q.Close(p)
		fin.Wait(p)
		sum = acc.Value(p)
		arrived = fin.Count(p)
	})
	if rep.TimedOut {
		t.Fatalf("run timed out (a primary-copy guard never woke); blocked: %v", rep.Blocked)
	}
	if want := jobs * (jobs + 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	if arrived != workers {
		t.Fatalf("%d workers arrived, want %d", arrived, workers)
	}
	if rep.RTS.P2PWrites == 0 || rep.RTS.BcastWrites == 0 {
		t.Fatalf("both runtimes should be active; got p2p=%d bcast=%d",
			rep.RTS.P2PWrites, rep.RTS.BcastWrites)
	}
}

// TestQueueNilElement checks a nil stored under an interface element
// type round-trips through Get without panicking.
func TestQueueNilElement(t *testing.T) {
	rt := orca.New(orca.Config{Processors: 1, RTS: orca.Broadcast, Seed: 44}, Register)
	rt.Run(func(p *orca.Proc) {
		q := NewQueue[any](p)
		q.Add(p, nil)
		q.Add(p, "x")
		v, ok := q.Get(p)
		if !ok || v != nil {
			t.Errorf("Get = (%v, %v), want (nil, true)", v, ok)
		}
		v, ok = q.Get(p)
		if !ok || v != "x" {
			t.Errorf("Get = (%v, %v), want (x, true)", v, ok)
		}
		q.Close(p)
		if _, ok := q.Get(p); ok {
			t.Error("Get on drained closed queue reported ok")
		}
	})
}
