package rts

import (
	"testing"

	"repro/internal/sim"
)

func TestLatencyHistExactSmall(t *testing.T) {
	// Values below 2^latSubBits land in dedicated buckets: percentiles
	// of small samples are exact, not approximations.
	var h LatencyHist
	for v := sim.Time(0); v < 16; v++ {
		h.Record(v)
	}
	if h.Count() != 16 {
		t.Fatalf("count = %d, want 16", h.Count())
	}
	if got := h.Percentile(0.5); got != 7 {
		t.Errorf("p50 = %d, want 7", int64(got))
	}
	if got := h.Percentile(1.0); got != 15 {
		t.Errorf("p100 = %d, want 15", int64(got))
	}
	if h.Max() != 15 {
		t.Errorf("max = %d, want 15", int64(h.Max()))
	}
}

func TestLatencyHistBucketBounds(t *testing.T) {
	// A recorded value's bucket upper bound must be >= the value and
	// within ~1/latSub relative error (the log-bucket resolution).
	for _, v := range []int64{1, 15, 16, 17, 100, 999, 12345, 1 << 20, 1<<40 + 12345} {
		var h LatencyHist
		h.Record(sim.Time(v))
		got := int64(h.Percentile(1.0))
		if got < v {
			t.Errorf("Percentile(1.0) of %d = %d, below the sample", v, got)
		}
		// Max is tracked exactly, and percentiles clamp to it.
		if got != v {
			t.Errorf("single-sample p100 of %d = %d, want exact (clamped to max)", v, got)
		}
		idx := latIndex(sim.Time(v))
		up := int64(latUpper(idx))
		if up < v {
			t.Errorf("latUpper(latIndex(%d)) = %d, below the value", v, up)
		}
		if v >= 16 && float64(up-v) > float64(v)/float64(latSub)+1 {
			t.Errorf("latUpper(latIndex(%d)) = %d, coarser than 1/%d resolution", v, up, latSub)
		}
	}
}

func TestLatencyHistPercentileMonotonic(t *testing.T) {
	var h LatencyHist
	rng := int64(1)
	for i := 0; i < 10000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := (rng >> 33) & 0xfffff // [0, 2^20)
		h.Record(sim.Time(v))
	}
	prev := sim.Time(-1)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		p := h.Percentile(q)
		if p < prev {
			t.Fatalf("Percentile(%v) = %d < previous %d: not monotonic", q, int64(p), int64(prev))
		}
		prev = p
	}
	if h.Percentile(1.0) != h.Max() {
		t.Errorf("p100 = %d, want max %d", int64(h.Percentile(1.0)), int64(h.Max()))
	}
}

func TestLatencyHistMerge(t *testing.T) {
	var a, b, both LatencyHist
	for i := int64(0); i < 1000; i++ {
		v := sim.Time(i * 37 % 5000)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		both.Record(v)
	}
	a.Merge(&b)
	if a.Count() != both.Count() || a.Sum() != both.Sum() || a.Max() != both.Max() {
		t.Fatalf("merge: count/sum/max = %d/%d/%d, want %d/%d/%d",
			a.Count(), a.Sum(), int64(a.Max()), both.Count(), both.Sum(), int64(both.Max()))
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if a.Percentile(q) != both.Percentile(q) {
			t.Errorf("merge: p%v = %d, want %d", q*100, int64(a.Percentile(q)), int64(both.Percentile(q)))
		}
	}
}

func TestLatencyHistEmptyAndNegative(t *testing.T) {
	var h LatencyHist
	if h.Percentile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram percentile/mean/max not zero")
	}
	h.Record(-5) // clamped to 0
	if h.Count() != 1 || h.Percentile(1.0) != 0 {
		t.Errorf("negative record: count=%d p100=%d, want 1/0", h.Count(), int64(h.Percentile(1.0)))
	}
}
