// Package std provides the standard shared-object types the paper's
// applications are built from: the global minimum bound and job queue
// of TSP's replicated-worker paradigm, boolean arrays and flags for
// ACP's termination protocol, transposition and killer tables for the
// chess program, and bit sets for ATPG's fault sharing.
//
// Each type is an Orca abstract data type: encapsulated state, read
// and write operations, guards where the paper's programs block. All
// types register with an rts.Registry via Register.
package std

import "repro/internal/rts"

// Type names, as registered.
const (
	IntObj    = "std.int"
	JobQueue  = "std.jobqueue"
	Barrier   = "std.barrier"
	Flag      = "std.flag"
	BoolArray = "std.boolarray"
	Table     = "std.table"
	Killer    = "std.killer"
	BitSet    = "std.bitset"
	Accum     = "std.accum"
)

// Register adds all standard types to a registry.
func Register(reg *rts.Registry) {
	reg.Register(intType())
	reg.Register(jobQueueType())
	reg.Register(barrierType())
	reg.Register(flagType())
	reg.Register(boolArrayType())
	reg.Register(tableType())
	reg.Register(killerType())
	reg.Register(bitSetType())
	reg.Register(accumType())
}

// --- IntObj -----------------------------------------------------------
//
// A shared integer. Its Min operation is TSP's global bound update:
// "The indivisible operation that updates the object first checks if
// the new value actually is less than the current value, to prevent
// race conditions."

type intState struct{ v int }

func intType() *rts.ObjectType {
	return &rts.ObjectType{
		Name: IntObj,
		New: func(args []any) rts.State {
			s := &intState{}
			if len(args) > 0 {
				s.v = args[0].(int)
			}
			return s
		},
		Clone:  func(s rts.State) rts.State { c := *s.(*intState); return &c },
		SizeOf: func(rts.State) int { return 8 },
		Ops: map[string]*rts.OpDef{
			"value": {Name: "value", Kind: rts.Read,
				Apply: func(s rts.State, _ []any) []any { return []any{s.(*intState).v} }},
			"assign": {Name: "assign", Kind: rts.Write,
				Apply: func(s rts.State, a []any) []any { s.(*intState).v = a[0].(int); return nil }},
			"add": {Name: "add", Kind: rts.Write,
				Apply: func(s rts.State, a []any) []any {
					st := s.(*intState)
					st.v += a[0].(int)
					return []any{st.v}
				}},
			"inc": {Name: "inc", Kind: rts.Write,
				Apply: func(s rts.State, _ []any) []any {
					st := s.(*intState)
					old := st.v
					st.v++
					return []any{old}
				}},
			"min": {Name: "min", Kind: rts.Write,
				Apply: func(s rts.State, a []any) []any {
					st := s.(*intState)
					if v := a[0].(int); v < st.v {
						st.v = v
						return []any{true}
					}
					return []any{false}
				}},
			"max": {Name: "max", Kind: rts.Write,
				Apply: func(s rts.State, a []any) []any {
					st := s.(*intState)
					if v := a[0].(int); v > st.v {
						st.v = v
						return []any{true}
					}
					return []any{false}
				}},
			// awaitGE blocks until the value reaches the argument;
			// used for simple completion counting.
			"awaitGE": {Name: "awaitGE", Kind: rts.Read,
				Guard: func(s rts.State, a []any) bool { return s.(*intState).v >= a[0].(int) },
				Apply: func(s rts.State, _ []any) []any { return []any{s.(*intState).v} }},
		},
	}
}

// --- JobQueue ---------------------------------------------------------
//
// The replicated-worker job queue: workers repeatedly take a job; the
// guarded GetJob suspends while the queue is empty and returns
// (nil, false) once the queue is closed and drained.

type jobQueueState struct {
	jobs   []any
	closed bool
}

func jobQueueType() *rts.ObjectType {
	return &rts.ObjectType{
		Name: JobQueue,
		New:  func([]any) rts.State { return &jobQueueState{} },
		Clone: func(s rts.State) rts.State {
			q := s.(*jobQueueState)
			return &jobQueueState{jobs: append([]any(nil), q.jobs...), closed: q.closed}
		},
		SizeOf: func(s rts.State) int {
			q := s.(*jobQueueState)
			n := 16
			for _, j := range q.jobs {
				n += rts.SizeOfValue(j)
			}
			return n
		},
		Ops: map[string]*rts.OpDef{
			"add": {Name: "add", Kind: rts.Write,
				Apply: func(s rts.State, a []any) []any {
					q := s.(*jobQueueState)
					q.jobs = append(q.jobs, a[0])
					return nil
				}},
			"get": {Name: "get", Kind: rts.Write,
				Guard: func(s rts.State, _ []any) bool {
					q := s.(*jobQueueState)
					return len(q.jobs) > 0 || q.closed
				},
				Apply: func(s rts.State, _ []any) []any {
					q := s.(*jobQueueState)
					if len(q.jobs) == 0 {
						return []any{nil, false}
					}
					j := q.jobs[0]
					q.jobs = q.jobs[1:]
					return []any{j, true}
				}},
			"close": {Name: "close", Kind: rts.Write,
				Apply: func(s rts.State, _ []any) []any { s.(*jobQueueState).closed = true; return nil }},
			"len": {Name: "len", Kind: rts.Read,
				Apply: func(s rts.State, _ []any) []any { return []any{len(s.(*jobQueueState).jobs)} }},
		},
	}
}

// --- Barrier ----------------------------------------------------------
//
// A counting barrier: processes Arrive and then Wait until all n have
// arrived. Reusable via generations is not needed by the paper's
// programs; a fresh barrier per phase is idiomatic Orca.

type barrierState struct {
	target int
	count  int
}

func barrierType() *rts.ObjectType {
	return &rts.ObjectType{
		Name:   Barrier,
		New:    func(args []any) rts.State { return &barrierState{target: args[0].(int)} },
		Clone:  func(s rts.State) rts.State { c := *s.(*barrierState); return &c },
		SizeOf: func(rts.State) int { return 16 },
		Ops: map[string]*rts.OpDef{
			"arrive": {Name: "arrive", Kind: rts.Write,
				Apply: func(s rts.State, _ []any) []any {
					b := s.(*barrierState)
					b.count++
					return []any{b.count}
				}},
			"wait": {Name: "wait", Kind: rts.Read,
				Guard: func(s rts.State, _ []any) bool {
					b := s.(*barrierState)
					return b.count >= b.target
				},
				Apply: func(s rts.State, _ []any) []any { return nil }},
			"count": {Name: "count", Kind: rts.Read,
				Apply: func(s rts.State, _ []any) []any { return []any{s.(*barrierState).count} }},
		},
	}
}

// --- Flag -------------------------------------------------------------
//
// A shared boolean, e.g. ACP's "no solution exists" object: "Each
// process reads the object before doing new work, and quits if the
// value is true."

type flagState struct{ b bool }

func flagType() *rts.ObjectType {
	return &rts.ObjectType{
		Name: Flag,
		New: func(args []any) rts.State {
			s := &flagState{}
			if len(args) > 0 {
				s.b = args[0].(bool)
			}
			return s
		},
		Clone:  func(s rts.State) rts.State { c := *s.(*flagState); return &c },
		SizeOf: func(rts.State) int { return 1 },
		Ops: map[string]*rts.OpDef{
			"set": {Name: "set", Kind: rts.Write,
				Apply: func(s rts.State, a []any) []any { s.(*flagState).b = a[0].(bool); return nil }},
			"value": {Name: "value", Kind: rts.Read,
				Apply: func(s rts.State, _ []any) []any { return []any{s.(*flagState).b} }},
			"await": {Name: "await", Kind: rts.Read,
				Guard: func(s rts.State, _ []any) bool { return s.(*flagState).b },
				Apply: func(s rts.State, _ []any) []any { return nil }},
		},
	}
}

// --- BoolArray --------------------------------------------------------
//
// ACP's work and result objects: an array of booleans with indivisible
// test operations for the termination protocol.

type boolArrayState struct{ bits []bool }

func boolArrayType() *rts.ObjectType {
	return &rts.ObjectType{
		Name: BoolArray,
		New: func(args []any) rts.State {
			n := args[0].(int)
			s := &boolArrayState{bits: make([]bool, n)}
			if len(args) > 1 {
				v := args[1].(bool)
				for i := range s.bits {
					s.bits[i] = v
				}
			}
			return s
		},
		Clone: func(s rts.State) rts.State {
			return &boolArrayState{bits: append([]bool(nil), s.(*boolArrayState).bits...)}
		},
		SizeOf: func(s rts.State) int { return 8 + len(s.(*boolArrayState).bits) },
		Ops: map[string]*rts.OpDef{
			"set": {Name: "set", Kind: rts.Write,
				Apply: func(s rts.State, a []any) []any {
					s.(*boolArrayState).bits[a[0].(int)] = a[1].(bool)
					return nil
				}},
			"setMany": {Name: "setMany", Kind: rts.Write,
				Apply: func(s rts.State, a []any) []any {
					st := s.(*boolArrayState)
					for _, i := range a[0].([]int) {
						st.bits[i] = a[1].(bool)
					}
					return nil
				}},
			// claim indivisibly tests-and-clears a bit, so exactly one
			// process wins a work item.
			"claim": {Name: "claim", Kind: rts.Write,
				Apply: func(s rts.State, a []any) []any {
					st := s.(*boolArrayState)
					i := a[0].(int)
					was := st.bits[i]
					st.bits[i] = false
					return []any{was}
				}},
			"get": {Name: "get", Kind: rts.Read,
				Apply: func(s rts.State, a []any) []any { return []any{s.(*boolArrayState).bits[a[0].(int)]} }},
			"anyTrue": {Name: "anyTrue", Kind: rts.Read,
				Apply: func(s rts.State, _ []any) []any {
					for _, b := range s.(*boolArrayState).bits {
						if b {
							return []any{true}
						}
					}
					return []any{false}
				}},
			"allTrue": {Name: "allTrue", Kind: rts.Read,
				Apply: func(s rts.State, _ []any) []any {
					for _, b := range s.(*boolArrayState).bits {
						if !b {
							return []any{false}
						}
					}
					return []any{true}
				}},
			"countTrue": {Name: "countTrue", Kind: rts.Read,
				Apply: func(s rts.State, _ []any) []any {
					n := 0
					for _, b := range s.(*boolArrayState).bits {
						if b {
							n++
						}
					}
					return []any{n}
				}},
			// anyTrueIn reports whether any of the given indices is
			// set; workers poll their own partition with one read.
			"anyTrueIn": {Name: "anyTrueIn", Kind: rts.Read,
				Apply: func(s rts.State, a []any) []any {
					st := s.(*boolArrayState)
					for _, i := range a[0].([]int) {
						if st.bits[i] {
							return []any{true}
						}
					}
					return []any{false}
				}},
		},
	}
}

// --- Table ------------------------------------------------------------
//
// The chess transposition table: a fixed number of buckets indexed by
// key modulo size with always-replace policy, the classic design. The
// shared version broadcasts every store — exactly the communication
// overhead the paper discusses.

type tableEntry struct {
	key uint64
	val int64
	ok  bool
}

type tableState struct{ buckets []tableEntry }

func tableType() *rts.ObjectType {
	return &rts.ObjectType{
		Name: Table,
		New: func(args []any) rts.State {
			return &tableState{buckets: make([]tableEntry, args[0].(int))}
		},
		Clone: func(s rts.State) rts.State {
			return &tableState{buckets: append([]tableEntry(nil), s.(*tableState).buckets...)}
		},
		SizeOf: func(s rts.State) int { return 8 + 17*len(s.(*tableState).buckets) },
		Ops: map[string]*rts.OpDef{
			"store": {Name: "store", Kind: rts.Write,
				Apply: func(s rts.State, a []any) []any {
					st := s.(*tableState)
					k := a[0].(uint64)
					st.buckets[k%uint64(len(st.buckets))] = tableEntry{key: k, val: a[1].(int64), ok: true}
					return nil
				}},
			"lookup": {Name: "lookup", Kind: rts.Read,
				Apply: func(s rts.State, a []any) []any {
					st := s.(*tableState)
					k := a[0].(uint64)
					e := st.buckets[k%uint64(len(st.buckets))]
					if e.ok && e.key == k {
						return []any{e.val, true}
					}
					return []any{int64(0), false}
				}},
		},
	}
}

// --- Killer -----------------------------------------------------------
//
// The killer table: per search depth, the two most recent moves that
// caused beta cutoffs. Moves are encoded as ints by the application.

type killerState struct {
	moves [][2]int
}

func killerType() *rts.ObjectType {
	return &rts.ObjectType{
		Name: Killer,
		New: func(args []any) rts.State {
			return &killerState{moves: make([][2]int, args[0].(int))}
		},
		Clone: func(s rts.State) rts.State {
			return &killerState{moves: append([][2]int(nil), s.(*killerState).moves...)}
		},
		SizeOf: func(s rts.State) int { return 8 + 16*len(s.(*killerState).moves) },
		Ops: map[string]*rts.OpDef{
			"add": {Name: "add", Kind: rts.Write,
				Apply: func(s rts.State, a []any) []any {
					st := s.(*killerState)
					d, mv := a[0].(int), a[1].(int)
					if d < 0 || d >= len(st.moves) {
						return nil
					}
					if st.moves[d][0] != mv {
						st.moves[d][1] = st.moves[d][0]
						st.moves[d][0] = mv
					}
					return nil
				}},
			"get": {Name: "get", Kind: rts.Read,
				Apply: func(s rts.State, a []any) []any {
					st := s.(*killerState)
					d := a[0].(int)
					if d < 0 || d >= len(st.moves) {
						return []any{0, 0}
					}
					return []any{st.moves[d][0], st.moves[d][1]}
				}},
		},
	}
}

// --- BitSet -----------------------------------------------------------
//
// ATPG's detected-fault set: "All processes share an object containing
// the gates for which test patterns have been generated."

type bitSetState struct {
	words []uint64
	count int
}

func (b *bitSetState) has(i int) bool { return b.words[i/64]&(1<<(uint(i)%64)) != 0 }
func (b *bitSetState) set(i int) bool {
	w, m := i/64, uint64(1)<<(uint(i)%64)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.count++
	return true
}

func bitSetType() *rts.ObjectType {
	return &rts.ObjectType{
		Name: BitSet,
		New: func(args []any) rts.State {
			n := args[0].(int)
			return &bitSetState{words: make([]uint64, (n+63)/64)}
		},
		Clone: func(s rts.State) rts.State {
			st := s.(*bitSetState)
			return &bitSetState{words: append([]uint64(nil), st.words...), count: st.count}
		},
		SizeOf: func(s rts.State) int { return 16 + 8*len(s.(*bitSetState).words) },
		Ops: map[string]*rts.OpDef{
			"add": {Name: "add", Kind: rts.Write,
				Apply: func(s rts.State, a []any) []any {
					return []any{s.(*bitSetState).set(a[0].(int))}
				}},
			"addMany": {Name: "addMany", Kind: rts.Write,
				Apply: func(s rts.State, a []any) []any {
					st := s.(*bitSetState)
					added := 0
					for _, i := range a[0].([]int) {
						if st.set(i) {
							added++
						}
					}
					return []any{added}
				}},
			"contains": {Name: "contains", Kind: rts.Read,
				Apply: func(s rts.State, a []any) []any {
					return []any{s.(*bitSetState).has(a[0].(int))}
				}},
			"count": {Name: "count", Kind: rts.Read,
				Apply: func(s rts.State, _ []any) []any { return []any{s.(*bitSetState).count} }},
		},
	}
}

// --- Accum ------------------------------------------------------------
//
// An accumulating counter for collecting per-worker totals (nodes
// searched, patterns generated) at the end of a run.

type accumState struct{ total int64 }

func accumType() *rts.ObjectType {
	return &rts.ObjectType{
		Name:   Accum,
		New:    func([]any) rts.State { return &accumState{} },
		Clone:  func(s rts.State) rts.State { c := *s.(*accumState); return &c },
		SizeOf: func(rts.State) int { return 8 },
		Ops: map[string]*rts.OpDef{
			"add": {Name: "add", Kind: rts.Write,
				Apply: func(s rts.State, a []any) []any {
					s.(*accumState).total += int64(a[0].(int))
					return nil
				}},
			"value": {Name: "value", Kind: rts.Read,
				Apply: func(s rts.State, _ []any) []any { return []any{int(s.(*accumState).total)} }},
		},
	}
}
