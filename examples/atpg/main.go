// ATPG example: PODEM test generation with the fault-simulation
// optimization sharing detected faults through a shared object.
package main

import (
	"fmt"

	"repro/internal/apps/atpg"
	"repro/internal/orca"
)

func main() {
	c := atpg.Generate(16, 8, 40, 42)
	faults := atpg.AllFaults(c)
	fmt.Printf("circuit: %d lines, %d outputs, %d stuck-at faults\n",
		c.Lines(), len(c.Outputs), len(faults))

	seq := atpg.SolveSeq(c, faults, 30, true)
	fmt.Printf("sequential with fault simulation: %d detected, %d patterns\n\n",
		seq.Detected, seq.Patterns)

	for _, mode := range []atpg.Mode{atpg.Static, atpg.StaticFaultSim} {
		res := atpg.RunOrca(orca.Config{
			Processors: 4,
			RTS:        orca.Broadcast,
			Seed:       1,
		}, c, faults, atpg.Params{Mode: mode})
		fmt.Printf("%-17s %d detected, %4d patterns, %v virtual, %d messages\n",
			mode.String()+":", res.Detected, res.Patterns, res.Report.Elapsed,
			res.Report.Net.Messages)
	}
	fmt.Println("\nfault simulation cuts the work by sharing a detected-fault object:")
	fmt.Println("faster in absolute terms, at the price of communication and load")
	fmt.Println("imbalance (the paper's §4.4 trade-off)")
}
