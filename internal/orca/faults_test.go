package orca_test

// Crash accounting at the orca layer: a fault plan's crash must settle
// the runtime's process bookkeeping (the run terminates normally, not
// by timeout), produce a faithful Report.Crashes record, and notify
// the runtime system.

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/orca"
	"repro/internal/orca/std"
	"repro/internal/sim"
)

func TestReportCrashAccounting(t *testing.T) {
	plan := &netsim.FaultPlan{Crashes: []netsim.Crash{{Node: 2, At: 500 * sim.Millisecond}}}
	rt := orca.New(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1, Faults: plan}, std.Register)
	rep := rt.Run(func(p *orca.Proc) {
		exited := std.NewCounter(p, 0)
		// Two workers on the doomed machine, one on a survivor.
		for _, cpu := range []int{2, 2, 3} {
			p.Fork(cpu, "w", func(wp *orca.Proc) {
				wp.Sleep(2 * sim.Second) // node 2 dies under the first two
				exited.Add(wp, 1)
			})
		}
		// Supervise: the survivor exits, the dead never do.
		for exited.Value(p) < 1 {
			p.Sleep(100 * sim.Millisecond)
		}
		if got := p.DeadNodes(); len(got) != 1 || got[0] != 2 {
			t.Errorf("DeadNodes = %v, want [2]", got)
		}
		if !p.NodeDown(2) || p.NodeDown(3) {
			t.Error("NodeDown disagrees with the executed fault plan")
		}
	})
	if rep.TimedOut {
		t.Fatalf("run timed out; crash accounting must settle liveness (blocked: %v)", rep.Blocked)
	}
	if len(rep.Crashes) != 1 {
		t.Fatalf("Crashes = %+v, want one record", rep.Crashes)
	}
	c := rep.Crashes[0]
	if c.Node != 2 || c.At != 500*sim.Millisecond {
		t.Fatalf("crash record = %+v", c)
	}
	if c.ProcsKilled != 2 {
		t.Fatalf("ProcsKilled = %d, want 2 (both node-2 workers)", c.ProcsKilled)
	}
	if rep.RTS.Crashes != 1 {
		t.Fatalf("RTS.Crashes = %d, want 1 (runtime system must be notified)", rep.RTS.Crashes)
	}
	if rep.Elapsed >= 3600*sim.Second {
		t.Fatalf("Elapsed = %v, run should end shortly after the survivor exits", rep.Elapsed)
	}
}

func TestCrashAccountingMixedRuntime(t *testing.T) {
	// The mixed runtime must forward the crash to both subsystems and
	// report it once.
	plan := &netsim.FaultPlan{Crashes: []netsim.Crash{{Node: 1, At: 200 * sim.Millisecond}}}
	rt := orca.New(orca.Config{Processors: 3, RTS: orca.Broadcast, Mixed: true, Seed: 1, Faults: plan}, std.Register)
	rep := rt.Run(func(p *orca.Proc) {
		p.Sleep(sim.Second)
	})
	if rep.TimedOut {
		t.Fatal("run timed out")
	}
	if rep.RTS.Crashes != 1 {
		t.Fatalf("merged RTS.Crashes = %d, want 1 (max-merge, not sum)", rep.RTS.Crashes)
	}
	if len(rep.Crashes) != 1 || rep.Crashes[0].ProcsKilled != 0 {
		t.Fatalf("Crashes = %+v, want one record with no procs killed", rep.Crashes)
	}
}
