// Command orca-bench regenerates every table and figure of the
// paper's evaluation on the simulated Amoeba multicomputer.
//
// Usage:
//
//	orca-bench [-exp all|fig2|fig3|chess|atpg|pbbb|rtscmp|dynrepl|micro|partrepl|intrcost|mixed|faults|scale|kv|consensus|shard|adapt] [-quick]
//	orca-bench -bench-json [-bench-out BENCH_engine.json] [-quick]
//
// Each experiment prints the measured series next to a summary of what
// the paper reports; EXPERIMENTS.md records a full run. The
// -bench-json mode instead runs the engine benchmark suite (wall-clock
// ns/op, events/sec, allocs/op, and the invariant virtual-time
// metrics) and records it in BENCH_engine.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig2, fig3, chess, atpg, pbbb, rtscmp, dynrepl, micro, partrepl, intrcost, mixed, faults, scale, kv, consensus, shard, adapt")
	quick := flag.Bool("quick", false, "run reduced sweeps on smaller inputs")
	benchJSON := flag.Bool("bench-json", false, "run the engine benchmark suite and write a JSON report")
	benchOut := flag.String("bench-out", "BENCH_engine.json", "output path for -bench-json")
	flag.Parse()

	if *benchJSON {
		if err := runBenchJSON(*benchOut, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	scale := harness.Full
	if *quick {
		scale = harness.Quick
	}
	w := os.Stdout
	run := map[string]func(){
		"fig2":      func() { harness.Fig2TSP(w, scale) },
		"fig3":      func() { harness.Fig3ACP(w, scale) },
		"chess":     func() { harness.ChessExperiment(w, scale) },
		"atpg":      func() { harness.ATPGExperiment(w, scale) },
		"pbbb":      func() { harness.PBBBExperiment(w, scale) },
		"rtscmp":    func() { harness.RTSCompareExperiment(w, scale) },
		"dynrepl":   func() { harness.DynReplExperiment(w, scale) },
		"micro":     func() { harness.MicroExperiment(w, scale) },
		"partrepl":  func() { harness.PartReplExperiment(w, scale) },
		"intrcost":  func() { harness.InterruptCostExperiment(w, scale) },
		"mixed":     func() { harness.MixedPlacementExperiment(w, scale) },
		"faults":    func() { harness.FaultsExperiment(w, scale) },
		"scale":     func() { harness.ScaleExperiment(w, scale) },
		"kv":        func() { harness.KVExperiment(w, scale) },
		"consensus": func() { harness.ProtocolBakeoff(w, scale) },
		"shard":     func() { harness.ShardExperiment(w, scale) },
		"adapt":     func() { harness.AdaptExperiment(w, scale) },
	}
	order := []string{"pbbb", "micro", "rtscmp", "dynrepl", "fig2", "fig3", "chess", "atpg", "partrepl", "intrcost", "mixed", "faults", "scale", "kv", "consensus", "shard", "adapt"}
	names := strings.Split(*exp, ",")
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "all" {
			for _, n := range order {
				run[n]()
				fmt.Fprintln(w)
			}
			continue
		}
		fn, ok := run[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; have %s\n", name, strings.Join(order, ", "))
			os.Exit(2)
		}
		fn()
		fmt.Fprintln(w)
	}
}
