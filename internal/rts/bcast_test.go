package rts

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestBcastCreateReplicatesEverywhere(t *testing.T) {
	b, r := newBcastTB(t, 1, 4, nil)
	var id ObjID
	b.spawn(0, "main", func(w *Worker) {
		id = r.Create(w, "intcell", 7)
	})
	b.run(5 * sim.Second)
	defer b.done()
	for node := 0; node < 4; node++ {
		s, ok := r.PeekState(node, id)
		if !ok {
			t.Fatalf("node %d has no replica", node)
		}
		if s.(*intCellState).v != 7 {
			t.Fatalf("node %d initial value = %d, want 7", node, s.(*intCellState).v)
		}
	}
}

func TestBcastWritePropagates(t *testing.T) {
	b, r := newBcastTB(t, 2, 4, nil)
	var id ObjID
	b.spawn(0, "main", func(w *Worker) {
		id = r.Create(w, "intcell")
		r.Invoke(w, id, "set", 42)
	})
	b.run(5 * sim.Second)
	defer b.done()
	for node := 0; node < 4; node++ {
		s, _ := r.PeekState(node, id)
		if s.(*intCellState).v != 42 {
			t.Fatalf("node %d value = %d, want 42", node, s.(*intCellState).v)
		}
	}
}

func TestBcastReadYourWrites(t *testing.T) {
	b, r := newBcastTB(t, 3, 2, nil)
	ok := false
	b.spawn(0, "main", func(w *Worker) {
		id := r.Create(w, "intcell")
		r.Invoke(w, id, "set", 5)
		got := r.Invoke(w, id, "get")[0].(int)
		ok = got == 5
	})
	b.run(5 * sim.Second)
	defer b.done()
	if !ok {
		t.Fatal("write not visible to subsequent local read")
	}
}

func TestBcastReadsGenerateNoTraffic(t *testing.T) {
	b, r := newBcastTB(t, 4, 3, nil)
	b.spawn(0, "main", func(w *Worker) {
		id := r.Create(w, "intcell")
		r.Invoke(w, id, "set", 1)
		w.P.Sleep(100 * sim.Millisecond) // let the write settle
		before := b.net.Stats().Messages
		for i := 0; i < 1000; i++ {
			r.Invoke(w, id, "get")
		}
		after := b.net.Stats().Messages
		if after != before {
			t.Errorf("reads generated %d messages, want 0", after-before)
		}
	})
	b.run(5 * sim.Second)
	b.done()
}

// TestBcastIncLinearizable checks that concurrent read-modify-write
// operations are indivisible: every Inc returns a distinct old value
// forming exactly 0..N-1.
func TestBcastIncLinearizable(t *testing.T) {
	const nodes, perNode = 4, 25
	b, r := newBcastTB(t, 5, nodes, nil)
	var id ObjID
	results := make([][]int, nodes)
	b.spawn(0, "main", func(w *Worker) {
		id = r.Create(w, "intcell")
		for n := 0; n < nodes; n++ {
			n := n
			b.spawn(n, fmt.Sprintf("w%d", n), func(w *Worker) {
				for i := 0; i < perNode; i++ {
					old := r.Invoke(w, id, "inc")[0].(int)
					results[n] = append(results[n], old)
				}
			})
		}
	})
	b.run(60 * sim.Second)
	defer b.done()
	seen := map[int]bool{}
	total := 0
	for n := range results {
		for _, v := range results[n] {
			if seen[v] {
				t.Fatalf("value %d returned twice: Inc not indivisible", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != nodes*perNode {
		t.Fatalf("completed %d incs, want %d", total, nodes*perNode)
	}
	for i := 0; i < total; i++ {
		if !seen[i] {
			t.Fatalf("missing inc result %d", i)
		}
	}
}

// TestBcastGuardedQueue checks Orca guarded operations: consumers
// block on Get until producers Put, every item is consumed exactly
// once, across machines.
func TestBcastGuardedQueue(t *testing.T) {
	const items = 40
	b, r := newBcastTB(t, 6, 4, nil)
	var consumed []int
	b.spawn(0, "main", func(w *Worker) {
		q := r.Create(w, "queue")
		done := r.Create(w, "intcell")
		for c := 1; c <= 2; c++ {
			c := c
			b.spawn(c, fmt.Sprintf("consumer%d", c), func(w *Worker) {
				for {
					v := r.Invoke(w, q, "get")[0].(int)
					if v < 0 {
						break
					}
					consumed = append(consumed, v)
				}
				r.Invoke(w, done, "inc")
			})
		}
		b.spawn(3, "producer", func(w *Worker) {
			for i := 0; i < items; i++ {
				r.Invoke(w, q, "put", i)
			}
			r.Invoke(w, q, "put", -1) // poison pills
			r.Invoke(w, q, "put", -1)
		})
	})
	b.run(120 * sim.Second)
	defer b.done()
	if len(consumed) != items {
		t.Fatalf("consumed %d items, want %d", len(consumed), items)
	}
	seen := map[int]bool{}
	for _, v := range consumed {
		if seen[v] {
			t.Fatalf("item %d consumed twice", v)
		}
		seen[v] = true
	}
}

func TestBcastGuardedRead(t *testing.T) {
	b, r := newBcastTB(t, 7, 2, nil)
	var awaited, setAt, awaitDone sim.Time
	b.spawn(0, "main", func(w *Worker) {
		f := r.Create(w, "flag")
		b.spawn(1, "waiter", func(w *Worker) {
			awaited = w.P.Now()
			r.Invoke(w, f, "await")
			awaitDone = w.P.Now()
		})
		w.P.Sleep(500 * sim.Millisecond)
		setAt = w.P.Now()
		r.Invoke(w, f, "set", true)
	})
	b.run(10 * sim.Second)
	defer b.done()
	if awaitDone <= setAt {
		t.Fatalf("await completed at %v, before set at %v", awaitDone, setAt)
	}
	if awaited >= setAt {
		t.Fatal("waiter started too late to actually block")
	}
}

// TestBcastReplicaConvergence drives random write workloads from all
// nodes and requires every replica to reach the identical final state.
func TestBcastReplicaConvergence(t *testing.T) {
	f := func(seed int64) bool {
		const nodes = 3
		b, r := newBcastTB(t, seed, nodes, nil)
		var id ObjID
		b.spawn(0, "main", func(w *Worker) {
			id = r.Create(w, "intcell")
			for n := 0; n < nodes; n++ {
				n := n
				b.spawn(n, fmt.Sprintf("w%d", n), func(w *Worker) {
					rng := b.env.Rand()
					for i := 0; i < 20; i++ {
						switch rng.Intn(3) {
						case 0:
							r.Invoke(w, id, "set", rng.Intn(100))
						case 1:
							r.Invoke(w, id, "inc")
						case 2:
							r.Invoke(w, id, "min", rng.Intn(100))
						}
					}
				})
			}
		})
		b.run(120 * sim.Second)
		defer b.done()
		s0, ok := r.PeekState(0, id)
		if !ok {
			return false
		}
		want := s0.(*intCellState).v
		for n := 1; n < nodes; n++ {
			s, ok := r.PeekState(n, id)
			if !ok || s.(*intCellState).v != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestBcastMinOpRaceFree(t *testing.T) {
	// The paper: "The indivisible operation that updates the object
	// first checks if the new value actually is less than the current
	// value, to prevent race conditions."
	const nodes = 4
	b, r := newBcastTB(t, 9, nodes, nil)
	var id ObjID
	b.spawn(0, "main", func(w *Worker) {
		id = r.Create(w, "intcell", 1000)
		for n := 0; n < nodes; n++ {
			n := n
			b.spawn(n, fmt.Sprintf("w%d", n), func(w *Worker) {
				for i := 0; i < 10; i++ {
					v := 100 - 10*n - i
					r.Invoke(w, id, "min", v)
				}
			})
		}
	})
	b.run(60 * sim.Second)
	defer b.done()
	want := 100 - 10*(nodes-1) - 9
	for n := 0; n < nodes; n++ {
		s, _ := r.PeekState(n, id)
		if got := s.(*intCellState).v; got != want {
			t.Fatalf("node %d min = %d, want %d", n, got, want)
		}
	}
}

func TestBcastManyObjects(t *testing.T) {
	b, r := newBcastTB(t, 10, 3, nil)
	const objs = 20
	ids := make([]ObjID, objs)
	b.spawn(0, "main", func(w *Worker) {
		for i := range ids {
			ids[i] = r.Create(w, "intcell")
		}
		for i, id := range ids {
			r.Invoke(w, id, "set", i*i)
		}
	})
	b.run(30 * sim.Second)
	defer b.done()
	for node := 0; node < 3; node++ {
		for i, id := range ids {
			s, ok := r.PeekState(node, id)
			if !ok || s.(*intCellState).v != i*i {
				t.Fatalf("node %d object %d wrong state", node, i)
			}
		}
	}
}

func TestBcastPendingGuardDrainOrder(t *testing.T) {
	// Two guarded gets queued before any put: they must both complete
	// after two puts, on every replica identically.
	b, r := newBcastTB(t, 11, 3, nil)
	var got []int
	b.spawn(0, "main", func(w *Worker) {
		q := r.Create(w, "queue")
		for c := 1; c <= 2; c++ {
			c := c
			b.spawn(c, fmt.Sprintf("getter%d", c), func(w *Worker) {
				v := r.Invoke(w, q, "get")[0].(int)
				got = append(got, v)
			})
		}
		w.P.Sleep(time500ms)
		r.Invoke(w, q, "put", 10)
		r.Invoke(w, q, "put", 20)
	})
	b.run(30 * sim.Second)
	defer b.done()
	if len(got) != 2 {
		t.Fatalf("completed %d gets, want 2", len(got))
	}
	if got[0] == got[1] {
		t.Fatalf("both gets returned %d", got[0])
	}
	for node := 0; node < 3; node++ {
		if n := r.PendingWrites(node, 1); n != 0 {
			t.Fatalf("node %d still has %d pending writes", node, n)
		}
	}
}

const time500ms = 500 * sim.Millisecond

func TestBcastStatsCount(t *testing.T) {
	b, r := newBcastTB(t, 12, 2, nil)
	b.spawn(0, "main", func(w *Worker) {
		id := r.Create(w, "intcell")
		for i := 0; i < 10; i++ {
			r.Invoke(w, id, "get")
		}
		for i := 0; i < 3; i++ {
			r.Invoke(w, id, "set", i)
		}
	})
	b.run(10 * sim.Second)
	defer b.done()
	reads, writes, _ := r.Stats()
	if reads != 10 {
		t.Fatalf("localReads = %d, want 10", reads)
	}
	if writes != 3 {
		t.Fatalf("bcastWrites = %d, want 3", writes)
	}
}

func TestBcastDeterministic(t *testing.T) {
	run := func() int {
		b, r := newBcastTB(t, 99, 3, nil)
		var id ObjID
		b.spawn(0, "main", func(w *Worker) {
			id = r.Create(w, "intcell")
			for n := 0; n < 3; n++ {
				n := n
				b.spawn(n, fmt.Sprintf("w%d", n), func(w *Worker) {
					for i := 0; i < 15; i++ {
						r.Invoke(w, id, "inc")
						w.Charge(sim.Time(n+1) * 100 * sim.Microsecond)
					}
				})
			}
		})
		b.run(60 * sim.Second)
		defer b.done()
		s, _ := r.PeekState(1, id)
		return s.(*intCellState).v
	}
	if a, bv := run(), run(); a != bv {
		t.Fatalf("non-deterministic: %d vs %d", a, bv)
	}
}
