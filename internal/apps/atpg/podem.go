package atpg

// PODEM (Path-Oriented DEcision Making, Goel 1981): generate a test
// pattern for a stuck-at fault by searching over primary-input
// assignments only. The loop: pick an objective (activate the fault,
// then propagate a D through the D-frontier), backtrace the objective
// to an unassigned primary input, imply (simulate), and backtrack on
// dead ends.

// PodemResult reports one PODEM run.
type PodemResult struct {
	// Pattern is the binary test vector (X inputs filled with 0);
	// valid when Detected.
	Pattern []V3
	// Detected is true if a test was found.
	Detected bool
	// Aborted is true if the backtrack limit was hit (the fault may
	// be testable or redundant; the paper's programs also give up,
	// "in practice an ATPG program tries to cover as many gates as
	// possible within the time limit imposed on it").
	Aborted bool
	// GateEvals counts gate evaluations, for CPU accounting.
	GateEvals int64
	// Backtracks counts decision reversals.
	Backtracks int
}

// Podem attempts to generate a test for the fault, giving up after
// maxBacktracks decision reversals.
func Podem(c *Circuit, fault Fault, maxBacktracks int) PodemResult {
	res := PodemResult{}
	inputs := make([]V3, c.NumInputs)
	for i := range inputs {
		inputs[i] = X3
	}
	type decision struct {
		pi      int
		val     V3
		flipped bool
	}
	var stack []decision

	simulate := func() []V5 {
		return Simulate5(c, inputs, fault, &res.GateEvals)
	}

	// objective returns the next (line, value) goal, or ok=false when
	// the fault cannot be activated/propagated under the current
	// assignment.
	objective := func(vals []V5) (line int, val V3, ok bool) {
		fv := vals[fault.Line]
		if !fv.IsFaultEffect() {
			if fv.G != X3 && fv.F != X3 {
				return 0, X3, false // activation failed (line pinned wrong)
			}
			// Activate: drive the faulty line to the complement of
			// the stuck value.
			want := T3
			if fault.StuckAt == 1 {
				want = F3
			}
			return fault.Line, want, true
		}
		// Propagate: find a D-frontier gate (output not fully
		// determined, some input carrying a fault effect) and set one
		// of its undetermined inputs to the non-controlling value.
		// Note pair values can be partially determined (e.g. (X,1) on
		// the fault line's cone), so "undetermined" means either
		// component is still X.
		for gi := c.NumInputs; gi < c.Lines(); gi++ {
			if vals[gi].G != X3 && vals[gi].F != X3 {
				continue
			}
			g := c.Gates[gi]
			hasD := false
			for _, in := range g.Ins {
				if vals[in].IsFaultEffect() {
					hasD = true
					break
				}
			}
			if !hasD {
				continue
			}
			for _, in := range g.Ins {
				if vals[in].G == X3 {
					cv, _, hasCV := ControllingValue(g.Type)
					want := T3 // default for XOR: any binding works
					if hasCV {
						want = not3(cv)
					}
					return in, want, true
				}
			}
		}
		return 0, X3, false // D-frontier empty
	}

	// backtrace maps an objective to an unassigned primary input,
	// following lines whose good value is still undetermined.
	backtrace := func(vals []V5, line int, val V3) (pi int, piVal V3, ok bool) {
		for line >= c.NumInputs {
			g := c.Gates[line]
			_, inverts, _ := ControllingValue(g.Type)
			if g.Type == Xor {
				inverts = false
			}
			next := -1
			for _, in := range g.Ins {
				if vals[in].G == X3 {
					next = in
					break
				}
			}
			if next < 0 {
				return 0, X3, false
			}
			if inverts {
				val = not3(val)
			}
			line = next
		}
		if inputs[line] != X3 {
			return 0, X3, false
		}
		return line, val, true
	}

	// success checks for a fault effect at a primary output.
	success := func(vals []V5) bool {
		for _, out := range c.Outputs {
			if vals[out].IsFaultEffect() {
				return true
			}
		}
		return false
	}

	vals := simulate()
	for {
		if success(vals) {
			res.Detected = true
			res.Pattern = make([]V3, len(inputs))
			for i, v := range inputs {
				if v == X3 {
					res.Pattern[i] = F3
				} else {
					res.Pattern[i] = v
				}
			}
			return res
		}
		line, val, ok := objective(vals)
		var pi int
		var piVal V3
		if ok {
			pi, piVal, ok = backtrace(vals, line, val)
		}
		if ok {
			inputs[pi] = piVal
			stack = append(stack, decision{pi: pi, val: piVal})
			vals = simulate()
			continue
		}
		// Dead end: backtrack.
		for {
			if len(stack) == 0 {
				return res // untestable under this search
			}
			d := &stack[len(stack)-1]
			if !d.flipped {
				d.flipped = true
				res.Backtracks++
				if res.Backtracks > maxBacktracks {
					res.Aborted = true
					return res
				}
				inputs[d.pi] = not3(d.val)
				vals = simulate()
				break
			}
			inputs[d.pi] = X3
			stack = stack[:len(stack)-1]
		}
	}
}
