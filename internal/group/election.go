package group

import (
	"repro/internal/amoeba"
	"repro/internal/sim"
)

// Sequencer election. The paper: "When an application starts up on
// Amoeba, one of the machines is elected as sequencer (like a
// committee electing a chairman). If the sequencer machine
// subsequently crashes, the remaining members elect a new one."
//
// The election is a vote round over the (unreliable) broadcast medium:
// each member announces the highest sequence number it has delivered;
// after a collection window the best candidate (highest sequence, ties
// broken by lowest node id) declares itself coordinator. The winner
// rebuilds the sequencer history from its delivered-message cache, so
// it can serve retransmissions to members that are behind. Members
// that find themselves *ahead* of an announced winner trigger a fresh
// election they will win, which repairs the rare case of lost votes.

// suspectSequencer routes a failure suspicion (sender retries or gap
// stalls exhausted) to the protocol's recovery path: an election
// under the elected-sequencer protocol, a leader takeover under
// consensus.
func (g *Member) suspectSequencer(p *sim.Proc) {
	if g.cfg.Protocol == Consensus {
		g.suspectLeader(p)
		return
	}
	g.startElection(p)
}

// startElection begins (or joins) a new election epoch.
func (g *Member) startElection(p *sim.Proc) {
	if g.cfg.Protocol == Consensus {
		g.suspectLeader(p) // consensus never elects; defense in depth
		return
	}
	if g.electing && g.votedEpoch == g.epoch {
		return // already voted in the current epoch
	}
	g.epoch++
	g.beginEpoch(p, g.epoch)
}

// beginEpoch votes in the given epoch and arms the decision timer.
func (g *Member) beginEpoch(p *sim.Proc, epoch int) {
	g.stats.Elections++
	if g.recoveryStart == 0 {
		g.recoveryStart = p.Now()
	}
	g.epoch = epoch
	g.electing = true
	g.votedEpoch = epoch
	g.isSeq = false
	g.haveCoord = false
	me := electMsg{Epoch: epoch, Node: g.m.ID(), HighSeq: g.nextSeq - 1}
	g.bestCand = me
	g.m.Env().Tracef("node%d: election epoch %d, my highseq %d", g.m.ID(), epoch, me.HighSeq)
	g.cast(p, amoeba.Packet{Port: g.port, Kind: "grp-elect", Body: me, Size: hdrSmall})
	g.armElectionTimer()
}

// armElectionTimer schedules the end of the vote-collection window.
// The wait is staggered by node id so members do not time out in
// lockstep, and a member that is not the expected winner waits extra
// rounds for the winner's coordination message before forcing a fresh
// epoch — otherwise synchronized timeouts outrun the coord frame and
// the election livelocks.
func (g *Member) armElectionTimer() {
	if g.electTimer != nil {
		g.electTimer.Cancel()
	}
	wait := g.cfg.ElectionWait + sim.Time(g.m.ID())*g.cfg.ElectionWait/16
	rounds := 0
	var arm func()
	arm = func() {
		g.electTimer = g.m.After(wait, func(p *sim.Proc) {
			g.electTimer = nil
			if !g.electing {
				return
			}
			if g.bestCand.Node == g.m.ID() {
				g.becomeSequencer(p)
				return
			}
			rounds++
			if rounds < 3 {
				// Give the expected winner more time to announce.
				arm()
				return
			}
			// The expected winner never announced: try a fresh epoch.
			g.epoch++
			g.beginEpoch(p, g.epoch)
		})
	}
	arm()
}

// better reports whether candidate a should win over b.
func better(a, b electMsg) bool {
	if a.HighSeq != b.HighSeq {
		return a.HighSeq > b.HighSeq
	}
	return a.Node < b.Node
}

// onElect processes a vote.
func (g *Member) onElect(p *sim.Proc, e electMsg) {
	switch {
	case e.Epoch < g.epoch:
		return // stale epoch
	case e.Epoch > g.epoch:
		g.beginEpoch(p, e.Epoch) // join the newer election
	case !g.electing:
		// A vote for an epoch we think has concluded. If we are the
		// sequencer of this epoch, re-announce.
		if g.isSeq {
			g.cast(p, amoeba.Packet{Port: g.port, Kind: "grp-coord",
				Body: coordMsg{Epoch: g.epoch, Node: g.m.ID(), HighSeq: g.maxSeen}, Size: hdrSmall})
		}
		return
	}
	if better(e, g.bestCand) {
		g.bestCand = e
	}
}

// becomeSequencer starts installing this member as sequencer: rebuild
// the history from the delivered cache and announce coordination. No
// sequence number is assigned until every live member has acknowledged
// the view — otherwise two members could deliver different messages
// under the same sequence number across the view change.
func (g *Member) becomeSequencer(p *sim.Proc) {
	g.electing = false
	g.isSeq = true
	g.installed = false
	g.viewAcks = make(map[int]bool)
	g.seqNode = g.m.ID()
	g.maxSeen = g.nextSeq - 1 // discard knowledge of unsequenceable holes
	g.haveCoord = true
	g.lastCoord = coordMsg{Epoch: g.epoch, Node: g.m.ID(), HighSeq: g.maxSeen}
	// Rebuild the history ring and the per-source dedup windows from
	// the delivered cache. The cache holds a contiguous window of the
	// most recently delivered messages, so the ring rebase is exact.
	g.seenBySrc = make([]*seqRing[int64], len(g.cfg.Members))
	for i := range g.statuses {
		g.statuses[i] = -1
	}
	g.trimMin, g.trimOwn = 0, false
	lo := g.nextSeq
	for _, d := range g.cache {
		if d == nil || d.Seq >= g.nextSeq {
			continue
		}
		if d.Seq < lo {
			lo = d.Seq
		}
	}
	g.history.reset(lo)
	for _, d := range g.cache {
		if d == nil || d.Seq >= g.nextSeq {
			continue
		}
		g.history.set(d.Seq, d)
		g.noteSeen(d.Src, d.SrcSeq, d.Seq)
	}
	// Buffered-but-undelivered messages beyond the holes are dropped;
	// their senders will retransmit and they will be re-sequenced
	// (the per-source delivery windows suppress double delivery).
	g.buffered.reset(g.nextSeq)
	g.acceptedBB = make(map[int64]bbAccept)
	g.m.Env().Tracef("node%d: became sequencer, epoch %d, highseq %d", g.m.ID(), g.epoch, g.maxSeen)
	g.announceView(p)
}

// announceView broadcasts the coordinator claim and re-arms until all
// live members acknowledge (coord or ack frames can be lost).
func (g *Member) announceView(p *sim.Proc) {
	if !g.isSeq || g.installed {
		return
	}
	epoch := g.epoch
	g.cast(p, amoeba.Packet{Port: g.port, Kind: "grp-coord",
		Body: coordMsg{Epoch: g.epoch, Node: g.m.ID(), HighSeq: g.maxSeen}, Size: hdrSmall})
	g.checkViewInstalled(p)
	if g.installed {
		return
	}
	g.m.After(g.cfg.ElectionWait/2, func(pp *sim.Proc) {
		if g.isSeq && !g.installed && g.epoch == epoch {
			g.announceView(pp)
		}
	})
}

// checkViewInstalled completes installation once every live member has
// acknowledged; only then does the sequencer start assigning numbers.
func (g *Member) checkViewInstalled(p *sim.Proc) {
	if !g.isSeq || g.installed {
		return
	}
	for _, id := range g.cfg.Members {
		if id == g.m.ID() || g.m.Net().Down(id) {
			continue
		}
		if !g.viewAcks[id] {
			return
		}
	}
	g.installed = true
	g.m.Env().Tracef("node%d: view epoch %d installed", g.m.ID(), g.epoch)
	g.kickOutstanding(p)
}

// onCoordAck records a member's view acknowledgement.
func (g *Member) onCoordAck(p *sim.Proc, a coordAck) {
	if !g.isSeq || a.Epoch != g.epoch {
		return
	}
	g.viewAcks[a.Node] = true
	g.checkViewInstalled(p)
}

// onCoordNack aborts an inconsistent view claim: some member has
// delivered beyond this sequencer's history, so it must win instead.
func (g *Member) onCoordNack(p *sim.Proc, n coordNack) {
	if !g.isSeq || n.Epoch < g.epoch {
		return
	}
	g.m.Env().Tracef("node%d: view nacked by %d (high %d), re-electing", g.m.ID(), n.Node, n.HighSeq)
	g.isSeq = false
	g.installed = false
	g.startElection(p)
}

// betterCoord reports whether claimant a should prevail over b when
// two coordinator claims collide in the same epoch: the longer history
// wins, ties broken by lowest node id.
func betterCoord(a, b coordMsg) bool {
	if a.HighSeq != b.HighSeq {
		return a.HighSeq > b.HighSeq
	}
	return a.Node < b.Node
}

// onCoord installs the announced winner.
//
// Large groups can produce colliding claimants: suspicion timers fire
// far enough apart that several members each conclude the same epoch
// believing they won (the rest's votes were lost or late). Each claim
// is safe — no claimant assigns sequence numbers before every live
// member acks its view — but for liveness the claims must converge,
// so members hold the best coord seen this epoch and refuse to flip
// to a worse one, and a claimant that hears a better equal-epoch
// claim yields to it rather than both re-announcing forever.
func (g *Member) onCoord(p *sim.Proc, c coordMsg) {
	if c.Epoch < g.epoch {
		return
	}
	if c.HighSeq < g.nextSeq-1 {
		// We are ahead of the claimed winner (our vote must have been
		// lost). Reject the view — the winner aborts and a fresh
		// election runs, which we will win; otherwise the new
		// sequencer would reassign sequence numbers we have already
		// delivered.
		g.m.Env().Tracef("node%d: ahead of claimed winner (mine %d > %d), nacking",
			g.m.ID(), g.nextSeq-1, c.HighSeq)
		g.m.Send(p, c.Node, amoeba.Packet{Port: g.port, Kind: "grp-coord-nack",
			Body: coordNack{Epoch: c.Epoch, Node: g.m.ID(), HighSeq: g.nextSeq - 1}, Size: hdrSmall})
		if c.Epoch == g.epoch {
			// Colliding claims: the nack alone aborts this claimant; a
			// fresh epoch here would tear down an election that is
			// already converging on a better claim.
			if g.isSeq {
				g.cast(p, amoeba.Packet{Port: g.port, Kind: "grp-coord",
					Body: coordMsg{Epoch: g.epoch, Node: g.m.ID(), HighSeq: g.maxSeen}, Size: hdrSmall})
				return
			}
			if g.haveCoord && betterCoord(g.lastCoord, c) {
				return
			}
		}
		g.epoch = c.Epoch
		g.startElection(p)
		return
	}
	if c.Epoch == g.epoch {
		if g.isSeq && c.Node != g.m.ID() {
			// A colliding claimant in my own epoch: yield only to a
			// better claim; re-assert mine against a worse one.
			mine := coordMsg{Epoch: g.epoch, Node: g.m.ID(), HighSeq: g.maxSeen}
			if betterCoord(mine, c) {
				g.cast(p, amoeba.Packet{Port: g.port, Kind: "grp-coord", Body: mine, Size: hdrSmall})
				return
			}
		}
		if g.haveCoord {
			if c.Node == g.lastCoord.Node {
				// A re-announcement of the view we already follow:
				// refresh the ack (the first may have been lost) without
				// re-kicking every outstanding op onto the wire.
				g.m.Send(p, c.Node, amoeba.Packet{Port: g.port, Kind: "grp-coord-ack",
					Body: coordAck{Epoch: c.Epoch, Node: g.m.ID()}, Size: hdrSmall})
				return
			}
			if !betterCoord(c, g.lastCoord) {
				return // worse than the claimant we already follow
			}
		}
	}
	g.epoch = c.Epoch
	g.haveCoord, g.lastCoord = true, c
	g.electing = false
	if g.electTimer != nil {
		g.electTimer.Cancel()
		g.electTimer = nil
	}
	g.seqNode = c.Node
	g.isSeq = c.Node == g.m.ID()
	// Drop buffered sequence numbers the new sequencer does not know;
	// their senders will resubmit them for re-sequencing.
	g.buffered.clearAbove(c.HighSeq)
	for s := range g.acceptedBB {
		if s > c.HighSeq {
			delete(g.acceptedBB, s)
		}
	}
	g.maxSeen = c.HighSeq
	// Acknowledge the view; the sequencer serves nothing until all
	// live members have.
	g.m.Send(p, c.Node, amoeba.Packet{Port: g.port, Kind: "grp-coord-ack",
		Body: coordAck{Epoch: c.Epoch, Node: g.m.ID()}, Size: hdrSmall})
	if g.nextSeq <= g.maxSeen {
		g.armGapTimer()
	}
	g.kickOutstanding(p)
}

// kickOutstanding retransmits every unacknowledged broadcast to the
// (possibly new) sequencer, in uid (submission) order: outstanding is
// a map, and iterating it directly would retransmit — and therefore
// sequence — concurrent messages in a random order, breaking run
// determinism.
func (g *Member) kickOutstanding(p *sim.Proc) {
	// Flatten batched sends into single-op states first: batch
	// framing is not preserved across a view change, and per-op
	// states keep the re-submission below uniform. Replacing map
	// values is order-independent, so iterating the map here cannot
	// perturb determinism (nothing transmits during the flatten).
	for _, st := range g.outstanding {
		if st.items == nil {
			continue
		}
		if st.timer != nil {
			st.timer.Cancel()
			st.timer = nil
		}
		for i := range st.items {
			it := st.items[i]
			if g.outstanding[it.UID] != st {
				continue
			}
			g.outstanding[it.UID] = &sendState{uid: it.UID, srcSeq: it.SrcSeq, kind: it.Kind,
				body: it.Body, size: it.Size, method: g.resolveMethod(it.Size)}
		}
	}
	sts := make([]*sendState, 0, len(g.outstanding))
	for _, st := range g.outstanding {
		sts = append(sts, st)
	}
	for i := 1; i < len(sts); i++ {
		for j := i; j > 0 && sts[j].uid < sts[j-1].uid; j-- {
			sts[j], sts[j-1] = sts[j-1], sts[j]
		}
	}
	for _, st := range sts {
		st.retries = 0
		// Re-resolve the method in case the sequencer moved to us.
		if g.isSeq && g.installed {
			if st.timer != nil {
				st.timer.Cancel()
			}
			delete(g.outstanding, st.uid)
			if _, dup := g.seenSeq(g.m.ID(), st.srcSeq); dup {
				continue // already sequenced in a previous view
			}
			d := &dataMsg{Seq: g.nextSeqNum(), UID: st.uid, Src: g.m.ID(), SrcSeq: st.srcSeq, Kind: st.kind, Body: st.body, Size: st.size, Epoch: g.epoch}
			g.recordHistory(d)
			if g.cfg.Protocol == Consensus {
				g.propose(p, []*dataMsg{d})
				continue
			}
			g.cast(p, amoeba.Packet{Port: g.port, Kind: "grp-data", Body: d, Size: d.Size + hdrData})
			g.processData(p, d)
			continue
		}
		g.stats.Retransmits++
		g.transmit(p, st)
	}
}
