package harness

import (
	"fmt"
	"io"
	"time"

	"repro/internal/apps/tsp"
	"repro/internal/orca"
	"repro/internal/orca/std"
)

// ScaleExperiment measures large-P scale-out and the batching
// pipeline's frame amortization (see DESIGN.md, "Batching and frame
// packing"). Two workloads sweep the processor count, batched against
// unbatched:
//
//   - counter: the broadcast-write microworkload — every processor
//     streams no-result counter assignments through the total order.
//     This is the sequencer-bound worst case the batching pipeline
//     targets; frames/op is the amortization headline.
//   - TSP: the paper's Figure 2 application, read-dominated with a
//     shared bound and a job queue — batching must not change its
//     optimum, and the harness panics if it does.
//
// Each row reports host wall-clock time (the engine cost), virtual
// time (the simulated outcome), total wire frames, frames per
// runtime-level operation, and simulation events per wall second. The
// harness panics if the batched counter workload misses the frames/op
// target at P >= 32 — that target is the point of the pipeline.
func ScaleExperiment(w io.Writer, scale Scale) {
	procs := []int{8, 16, 32, 64, 128}
	tspProcs := []int{8, 16, 32, 64}
	cities := 12
	opsPer := 200
	if scale == Quick {
		procs = []int{8, 32}
		tspProcs = []int{8}
		cities = 11
		opsPer = 100
	}

	fmt.Fprintln(w, "== SCALE: sequencer batching and large-P scale-out ==")

	// Counter microworkload.
	fmt.Fprintf(w, "-- counter: %d no-result assigns per processor through the total order --\n", opsPer)
	var rows [][]string
	for _, p := range procs {
		for _, batched := range []bool{false, true} {
			var cfg orca.Config
			cfg = orca.Config{Processors: p, RTS: orca.Broadcast, Seed: 1}
			if batched {
				cfg.Batching = orca.DefaultBatching()
			}
			start := time.Now()
			rt := orca.New(cfg, std.Register)
			var final int
			rep := rt.Run(func(pr *orca.Proc) {
				c := std.NewCounter(pr, 0)
				fin := std.NewBarrier(pr, p)
				for cpu := 0; cpu < p; cpu++ {
					cpu := cpu
					pr.Fork(cpu, fmt.Sprintf("scale-w%d", cpu), func(wp *orca.Proc) {
						for i := 0; i < opsPer; i++ {
							c.Assign(wp, cpu*opsPer+i)
						}
						fin.Arrive(wp)
					})
				}
				fin.Wait(pr)
				final = c.Value(pr)
			})
			wall := time.Since(start)
			if rep.TimedOut {
				panic(fmt.Sprintf("harness: scale counter run timed out (P=%d batched=%v)", p, batched))
			}
			_ = final
			st := rep.RTS
			ops := st.BcastWrites + st.BatchedOps
			fpo := float64(rep.Net.Frames) / float64(ops)
			if batched && p >= 32 && fpo >= 0.25 {
				panic(fmt.Sprintf("harness: batched frames/op = %.3f at P=%d, want < 0.25", fpo, p))
			}
			rows = append(rows, []string{
				fmt.Sprint(p), onOff(batched), wall.Round(time.Millisecond).String(),
				fmtTime(rep.Elapsed), fmt.Sprint(rep.Net.Frames), fmt.Sprint(ops),
				fmt.Sprintf("%.3f", fpo), fmt.Sprintf("%.2fM", float64(rt.Env().Events())/wall.Seconds()/1e6),
				fmt.Sprint(st.BatchedOps), fmt.Sprint(st.Frames),
			})
		}
	}
	Table(w, []string{"procs", "batch", "wall", "virtual", "frames", "ops", "frames/op", "events/s", "batched", "bframes"}, rows)
	fmt.Fprintln(w)

	// TSP application sweep.
	fmt.Fprintf(w, "-- TSP %d cities: batching must not change the optimum --\n", cities)
	inst := tsp.Generate(cities, 5)
	rows = rows[:0]
	best := -1
	for _, p := range tspProcs {
		for _, batched := range []bool{false, true} {
			cfg := orca.Config{Processors: p, RTS: orca.Broadcast, Seed: 1}
			if batched {
				cfg.Batching = orca.DefaultBatching()
			}
			start := time.Now()
			r := tsp.RunOrca(cfg, inst, tsp.Params{})
			wall := time.Since(start)
			if best == -1 {
				best = r.Best
			} else if r.Best != best {
				panic(fmt.Sprintf("harness: TSP optimum drifted under batching: %d vs %d (P=%d batched=%v)",
					r.Best, best, p, batched))
			}
			st := r.Report.RTS
			ops := st.BcastWrites + st.BatchedOps + st.LocalReads
			rows = append(rows, []string{
				fmt.Sprint(p), onOff(batched), wall.Round(time.Millisecond).String(),
				fmtTime(r.Report.Elapsed), fmt.Sprint(r.Report.Net.Frames),
				fmt.Sprintf("%.4f", float64(r.Report.Net.Frames)/float64(ops)),
				fmt.Sprintf("%.2fM", float64(r.Runtime.Env().Events())/wall.Seconds()/1e6),
				fmt.Sprint(r.Best), fmt.Sprint(st.BatchedOps), fmt.Sprint(st.Frames),
			})
		}
	}
	Table(w, []string{"procs", "batch", "wall", "virtual", "frames", "frames/op", "events/s", "best", "batched", "bframes"}, rows)
	fmt.Fprintln(w, "Batching packs many ops into one sequenced frame (one seq number per")
	fmt.Fprintln(w, "op), so the ordering protocol's frame rate stops being the throughput")
	fmt.Fprintln(w, "ceiling: frames/op drops by roughly the batch factor under write-heavy")
	fmt.Fprintln(w, "load, and stays harmless on read-dominated applications.")
	fmt.Fprintln(w)
}

// onOff renders a batched/unbatched flag.
func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
