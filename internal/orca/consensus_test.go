package orca_test

// Consensus sequencing at the orca layer: Config.Protocol selects the
// quorum-replicated log, a sequencer crash is absorbed by a takeover
// (no election), and the recovery counters surface in Report.RTS.

import (
	"testing"

	"repro/internal/group"
	"repro/internal/netsim"
	"repro/internal/orca"
	"repro/internal/orca/std"
	"repro/internal/sim"
)

func TestConsensusSurvivesSequencerCrash(t *testing.T) {
	// Sequencer on node 3 so the main process (node 0) survives.
	plan := &netsim.FaultPlan{Crashes: []netsim.Crash{{Node: 3, At: 200 * sim.Millisecond}}}
	rt := orca.New(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1,
		Protocol: group.Consensus, Sequencer: 3, Faults: plan}, std.Register)
	rep := rt.Run(func(p *orca.Proc) {
		c := std.NewCounter(p, 0)
		done := std.NewCounter(p, 0)
		for cpu := 1; cpu < 3; cpu++ {
			p.Fork(cpu, "w", func(wp *orca.Proc) {
				for k := 0; k < 40; k++ {
					c.Add(wp, 1)
					wp.Sleep(10 * sim.Millisecond)
				}
				done.Add(wp, 1)
			})
		}
		done.AwaitGE(p, 2)
		if got := c.Value(p); got != 80 {
			t.Errorf("counter = %d, want 80 (no write lost across the crash)", got)
		}
	})
	if rep.TimedOut {
		t.Fatalf("run timed out (blocked: %v)", rep.Blocked)
	}
	if rep.RTS.Takeovers == 0 {
		t.Fatalf("RTS.Takeovers = 0, want a consensus takeover (stats: %+v)", rep.RTS)
	}
	if rep.RTS.Elections != 0 {
		t.Fatalf("RTS.Elections = %d, want 0 under consensus", rep.RTS.Elections)
	}
	if rep.RTS.RecoveryVirtualUS <= 0 {
		t.Fatal("RecoveryVirtualUS not accounted")
	}
}

// TestConsensusRequiresBroadcast: a pure point-to-point configuration
// cannot ask for a sequencing protocol — there is no group to run it.
func TestConsensusRequiresBroadcast(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for Protocol on a pure point-to-point runtime")
		}
	}()
	orca.New(orca.Config{Processors: 2, RTS: orca.P2PUpdate, Seed: 1,
		Protocol: group.Consensus}, std.Register)
}
