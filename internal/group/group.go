package group

import (
	"fmt"

	"repro/internal/amoeba"
	"repro/internal/sim"
)

// Method selects the broadcast protocol variant.
type Method int

const (
	// Auto picks PB for single-packet messages and BB for longer
	// ones, the policy of the paper's implementation.
	Auto Method = iota
	// ForcePB always uses the Point-to-point/Broadcast method.
	ForcePB
	// ForceBB always uses the Broadcast/Broadcast method.
	ForceBB
)

// String names the method for tables and traces.
func (m Method) String() string {
	switch m {
	case Auto:
		return "auto"
	case ForcePB:
		return "PB"
	case ForceBB:
		return "BB"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Config parameterizes a group.
type Config struct {
	// Members lists the node ids in the group. The initial sequencer
	// is the lowest id ("a committee electing a chairman") unless
	// Sequencer picks another member.
	Members []int
	// Sequencer, when it names a member, is the initial sequencer.
	// Any other value (including the zero value when node 0 is not a
	// member) falls back to the lowest member id. Fault experiments
	// use it to place the sequencer on a machine the fault plan
	// crashes without losing the computation's main process.
	Sequencer int
	// Method selects PB/BB policy; Auto follows the paper.
	Method Method
	// SenderTimeout is how long a sender waits for its broadcast to be
	// sequenced before retransmitting.
	SenderTimeout sim.Time
	// SenderRetries bounds retransmissions before the sender suspects
	// the sequencer has crashed and calls an election.
	SenderRetries int
	// GapTimeout is the interval between retransmission requests for
	// missing sequence numbers.
	GapTimeout sim.Time
	// StatusEvery makes members report their delivery progress to the
	// sequencer every N deliveries, enabling history trimming.
	StatusEvery int
	// HistoryMax caps the sequencer history buffer (a safety net if
	// statuses stall, e.g. while a member is crashed).
	HistoryMax int
	// ElectionWait is how long candidates collect votes.
	ElectionWait sim.Time
	// CacheSize is the per-member cache of recently delivered
	// messages, used to rebuild history after an election.
	CacheSize int
	// Heartbeat is the interval at which the sequencer announces its
	// highest sequence number, so members discover losses even when
	// traffic stops (a trailing dropped broadcast would otherwise go
	// unnoticed forever).
	Heartbeat sim.Time
}

// DefaultConfig returns a configuration tuned for the simulated
// testbed.
func DefaultConfig(members []int) Config {
	return Config{
		Members:       members,
		Method:        Auto,
		SenderTimeout: 200 * sim.Millisecond,
		SenderRetries: 6,
		GapTimeout:    50 * sim.Millisecond,
		StatusEvery:   64,
		HistoryMax:    16384,
		ElectionWait:  300 * sim.Millisecond,
		CacheSize:     8192,
		Heartbeat:     250 * sim.Millisecond,
	}
}

// Delivery is one totally-ordered message handed to the application.
// All members observe identical (Seq, UID, Src, Body) streams.
type Delivery struct {
	Seq  int64
	UID  int64
	Src  int
	Kind string
	Body any
	Size int
}

// Wire message bodies. All travel on the "grp" port.
type (
	// reqMsg is PB's RequestForBroadcast, unicast to the sequencer.
	reqMsg struct {
		UID  int64
		Src  int
		Kind string
		Body any
		Size int
	}
	// dataMsg is the sequenced message broadcast by the sequencer
	// (PB), or unicast as a retransmission. Epoch stamps the
	// sequencer's view so stale pre-election frames cannot interleave
	// with a new sequencer's stream.
	dataMsg struct {
		Seq   int64
		UID   int64
		Src   int
		Kind  string
		Body  any
		Size  int
		Epoch int
	}
	// bbDataMsg is BB's unsequenced data broadcast from the sender.
	bbDataMsg struct {
		UID  int64
		Src  int
		Kind string
		Body any
		Size int
	}
	// acceptMsg is BB's short Accept broadcast from the sequencer.
	acceptMsg struct {
		Seq   int64
		UID   int64
		Epoch int
	}
	// retxReq asks the sequencer to retransmit sequence numbers
	// [From, To]. Delivered piggybacks the requester's progress.
	retxReq struct {
		From, To  int64
		Node      int
		Delivered int64
	}
	// statusMsg reports delivery progress for history trimming.
	statusMsg struct {
		Node      int
		Delivered int64
	}
	// electMsg is an election vote: the candidate with the highest
	// HighSeq (ties to the lowest node id) becomes sequencer.
	electMsg struct {
		Epoch   int
		Node    int
		HighSeq int64
	}
	// coordMsg announces the election winner.
	coordMsg struct {
		Epoch   int
		Node    int
		HighSeq int64
	}
	// coordAck confirms a member has installed the winner's view;
	// the winner sequences nothing until every live member has.
	coordAck struct {
		Epoch int
		Node  int
	}
	// coordNack rejects a view whose HighSeq is behind the member's
	// deliveries (the winner must abort and re-elect).
	coordNack struct {
		Epoch   int
		Node    int
		HighSeq int64
	}
	// hbMsg is the sequencer's periodic progress announcement.
	hbMsg struct {
		Epoch   int
		Node    int
		HighSeq int64
	}
)

// Header sizes in bytes for the wire model.
const (
	hdrData   = 24
	hdrAccept = 20
	hdrSmall  = 20
)

// Port is the kernel port the group protocol binds on every member.
const Port = "grp"

// sendState tracks one of this member's broadcasts until it is
// sequenced.
type sendState struct {
	uid     int64
	kind    string
	body    any
	size    int
	method  Method // resolved (PB or BB)
	retries int
	timer   *sim.Event
}

// Stats counts protocol activity at one member.
type Stats struct {
	Sent        int64
	PBSends     int64
	BBSends     int64
	Delivered   int64
	Retransmits int64
	GapRequests int64
	Elections   int64
}

// Member is one node's endpoint of the group. All methods must run in
// simulation context on the member's machine.
type Member struct {
	m   *amoeba.Machine
	cfg Config

	seqNode int
	epoch   int
	nextSeq int64 // next sequence number to deliver
	maxSeen int64 // highest sequence number observed
	outQ    *sim.Queue[Delivery]

	buffered    map[int64]*dataMsg   // seq -> out-of-order data
	pendingBB   map[int64]*bbDataMsg // uid -> BB data awaiting accept
	acceptedBB  map[int64]int64      // seq -> uid accepted but data missing
	outstanding map[int64]*sendState // uid -> my unsequenced sends
	gapTimer    *sim.Event

	// Delivered-message cache and uid dedup for election recovery.
	// dlvOrder[dlvHead:] is the FIFO dedup window.
	cache    []*dataMsg
	dlvUID   map[int64]bool
	dlvOrder []int64
	dlvHead  int

	// Sequencer state. A freshly elected sequencer is not installed
	// until every live member acknowledged its view; it assigns no
	// sequence numbers before that.
	isSeq     bool
	installed bool
	viewAcks  map[int]bool
	history   map[int64]*dataMsg
	histLo    int64           // lowest retained seq
	seen      map[int64]int64 // uid -> seq (sequencer dedup)
	statuses  map[int]int64

	// Election state.
	electing   bool
	bestCand   electMsg
	votedEpoch int
	electTimer *sim.Event

	stats Stats
}

// Join attaches machine m to the group. Every member must Join before
// the simulation starts broadcasting.
func Join(m *amoeba.Machine, cfg Config) *Member {
	if len(cfg.Members) == 0 {
		panic("group: empty membership")
	}
	seq := cfg.Members[0]
	for _, id := range cfg.Members {
		if id < seq {
			seq = id
		}
	}
	for _, id := range cfg.Members {
		if id == cfg.Sequencer {
			seq = cfg.Sequencer
			break
		}
	}
	g := &Member{
		m:           m,
		cfg:         cfg,
		seqNode:     seq,
		nextSeq:     1,
		outQ:        sim.NewQueue[Delivery](m.Env()),
		buffered:    make(map[int64]*dataMsg),
		pendingBB:   make(map[int64]*bbDataMsg),
		acceptedBB:  make(map[int64]int64),
		outstanding: make(map[int64]*sendState),
		cache:       make([]*dataMsg, cfg.CacheSize),
		dlvUID:      make(map[int64]bool),
		history:     make(map[int64]*dataMsg),
		histLo:      1,
		seen:        make(map[int64]int64),
		statuses:    make(map[int]int64),
	}
	g.isSeq = m.ID() == seq
	g.installed = true // the boot view needs no installation round
	m.Bind(Port, g.handle)
	if cfg.Heartbeat > 0 {
		g.armHeartbeat()
	}
	return g
}

// armHeartbeat runs the periodic sequencer announcement. Every member
// runs the timer; only the current sequencer transmits.
func (g *Member) armHeartbeat() {
	g.m.After(g.cfg.Heartbeat, func(p *sim.Proc) {
		if g.isSeq && g.installed && g.maxSeen > 0 {
			g.m.Broadcast(p, amoeba.Packet{Port: Port, Kind: "grp-hb",
				Body: hbMsg{Epoch: g.epoch, Node: g.m.ID(), HighSeq: g.maxSeen}, Size: hdrSmall})
		}
		g.armHeartbeat()
	})
}

// Deliveries returns the totally-ordered stream of group messages for
// this member. Consumers (the RTS object manager) Get in a loop.
func (g *Member) Deliveries() *sim.Queue[Delivery] { return g.outQ }

// Sequencer reports the node this member currently believes is the
// sequencer.
func (g *Member) Sequencer() int { return g.seqNode }

// IsSequencer reports whether this member is the sequencer.
func (g *Member) IsSequencer() bool { return g.isSeq }

// NextSeq reports the next sequence number this member will deliver.
func (g *Member) NextSeq() int64 { return g.nextSeq }

// Stats returns a snapshot of this member's protocol counters.
func (g *Member) Stats() Stats { return g.stats }

// resolveMethod picks PB or BB for a message of the given payload
// size, following the paper's one-packet rule in Auto mode.
func (g *Member) resolveMethod(size int) Method {
	switch g.cfg.Method {
	case ForcePB:
		return ForcePB
	case ForceBB:
		return ForceBB
	}
	if g.m.Net().FragmentsFor(size+hdrData) > 1 {
		return ForceBB
	}
	return ForcePB
}

// Broadcast reliably, totally-ordered broadcasts a message to the
// group (including this member, which sees it in its own delivery
// stream). It returns the message uid; delivery order is defined by
// the sequence numbers all members agree on. Broadcast does not wait
// for delivery: callers needing write-completion semantics wait until
// their uid appears in the delivery stream.
func (g *Member) Broadcast(p *sim.Proc, kind string, body any, size int) int64 {
	uid := g.m.ServiceID()
	g.stats.Sent++
	if g.isSeq && g.installed {
		// The sequencer sequences its own messages directly and
		// broadcasts the sequenced data: one message on the wire.
		d := &dataMsg{Seq: g.nextSeqNum(), UID: uid, Src: g.m.ID(), Kind: kind, Body: body, Size: size, Epoch: g.epoch}
		g.recordHistory(d)
		g.stats.PBSends++
		g.m.Broadcast(p, amoeba.Packet{Port: Port, Kind: "grp-data", Body: d, Size: size + hdrData})
		g.processData(p, d)
		return uid
	}
	st := &sendState{uid: uid, kind: kind, body: body, size: size, method: g.resolveMethod(size)}
	g.outstanding[uid] = st
	g.transmit(p, st)
	g.armSenderTimer(st)
	return uid
}

// transmit performs one send attempt for an outstanding message.
func (g *Member) transmit(p *sim.Proc, st *sendState) {
	switch st.method {
	case ForcePB:
		g.stats.PBSends++
		g.m.Send(p, g.seqNode, amoeba.Packet{
			Port: Port, Kind: "grp-req",
			Body: reqMsg{UID: st.uid, Src: g.m.ID(), Kind: st.kind, Body: st.body, Size: st.size},
			Size: st.size + hdrData,
		})
	case ForceBB:
		g.stats.BBSends++
		// The sender keeps the same record it broadcasts; it will not
		// hear its own frame, and nobody mutates the record.
		bb := &bbDataMsg{UID: st.uid, Src: g.m.ID(), Kind: st.kind, Body: st.body, Size: st.size}
		g.pendingBB[st.uid] = bb
		g.m.Broadcast(p, amoeba.Packet{
			Port: Port, Kind: "grp-bb-data",
			Body: bb,
			Size: st.size + hdrData,
		})
	}
}

// armSenderTimer schedules retransmission for st until it is
// acknowledged by appearing in the sequenced stream.
func (g *Member) armSenderTimer(st *sendState) {
	st.timer = g.m.After(g.cfg.SenderTimeout, func(p *sim.Proc) {
		if _, live := g.outstanding[st.uid]; !live {
			return
		}
		st.retries++
		if st.retries > g.cfg.SenderRetries {
			g.m.Env().Tracef("node%d: sequencer %d suspected dead (uid %d)", g.m.ID(), g.seqNode, st.uid)
			g.startElection(p)
			// Re-arm: the message is still outstanding and will be
			// retransmitted to the new sequencer once elected.
			st.retries = 0
			g.armSenderTimer(st)
			return
		}
		g.stats.Retransmits++
		g.transmit(p, st)
		g.armSenderTimer(st)
	})
}

// nextSeqNum allocates the next global sequence number (sequencer
// only).
func (g *Member) nextSeqNum() int64 {
	g.maxSeen++
	return g.maxSeen
}

// recordHistory stores a sequenced message in the sequencer's history
// buffer, trimming if the buffer exceeds its cap.
func (g *Member) recordHistory(d *dataMsg) {
	g.history[d.Seq] = d
	g.seen[d.UID] = d.Seq
	if len(g.history) > g.cfg.HistoryMax {
		delete(g.history, g.histLo)
		g.histLo++
	}
}

// trimHistory drops history entries all members have delivered.
func (g *Member) trimHistory() {
	min := int64(1<<62 - 1)
	for _, id := range g.cfg.Members {
		if id == g.m.ID() {
			continue
		}
		if g.m.Net().Down(id) {
			continue // crashed members never report; don't stall
		}
		d, ok := g.statuses[id]
		if !ok {
			return // no report yet; cannot trim
		}
		if d < min {
			min = d
		}
	}
	if own := g.nextSeq - 1; own < min {
		min = own
	}
	for g.histLo <= min {
		delete(g.history, g.histLo)
		g.histLo++
	}
}
