package std

import (
	"testing"
	"testing/quick"

	"repro/internal/rts"
)

// Direct unit tests of every standard object type's operations,
// exercising New/Clone/SizeOf/Apply without a runtime underneath.

func typeByName(t *testing.T, name string) *rts.ObjectType {
	t.Helper()
	reg := rts.NewRegistry()
	Register(reg)
	return reg.Lookup(name)
}

func apply(t *testing.T, typ *rts.ObjectType, s rts.State, op string, args ...any) []any {
	t.Helper()
	return typ.Op(op).Apply(s, args)
}

func TestIntObjOps(t *testing.T) {
	typ := typeByName(t, IntObj)
	s := typ.New([]any{10})
	if got := apply(t, typ, s, "value")[0].(int); got != 10 {
		t.Fatalf("value = %d", got)
	}
	apply(t, typ, s, "assign", 5)
	if got := apply(t, typ, s, "add", 3)[0].(int); got != 8 {
		t.Fatalf("add result = %d", got)
	}
	if old := apply(t, typ, s, "inc")[0].(int); old != 8 {
		t.Fatalf("inc returned %d, want old value 8", old)
	}
	if ok := apply(t, typ, s, "min", 100)[0].(bool); ok {
		t.Fatal("min(100) should not lower 9")
	}
	if ok := apply(t, typ, s, "min", 2)[0].(bool); !ok {
		t.Fatal("min(2) should lower 9")
	}
	if ok := apply(t, typ, s, "max", 1)[0].(bool); ok {
		t.Fatal("max(1) should not raise 2")
	}
	if ok := apply(t, typ, s, "max", 50)[0].(bool); !ok {
		t.Fatal("max(50) should raise 2")
	}
	guard := typ.Op("awaitGE").Guard
	if guard(s, []any{51}) {
		t.Fatal("awaitGE(51) guard true at 50")
	}
	if !guard(s, []any{50}) {
		t.Fatal("awaitGE(50) guard false at 50")
	}
}

func TestIntObjMinProperty(t *testing.T) {
	typ := typeByName(t, IntObj)
	f := func(vals []int16) bool {
		s := typ.New([]any{int(1 << 14)})
		min := int(1 << 14)
		for _, v := range vals {
			apply(t, typ, s, "min", int(v))
			if int(v) < min {
				min = int(v)
			}
		}
		return apply(t, typ, s, "value")[0].(int) == min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestJobQueueOps(t *testing.T) {
	typ := typeByName(t, JobQueueObj)
	s := typ.New(nil)
	getGuard := typ.Op("get").Guard
	if getGuard(s, nil) {
		t.Fatal("get guard true on empty open queue")
	}
	apply(t, typ, s, "add", "a")
	apply(t, typ, s, "add", "b")
	if n := apply(t, typ, s, "len")[0].(int); n != 2 {
		t.Fatalf("len = %d", n)
	}
	if !getGuard(s, nil) {
		t.Fatal("get guard false on non-empty queue")
	}
	res := apply(t, typ, s, "get")
	if res[0].(string) != "a" || !res[1].(bool) {
		t.Fatalf("get = %v, want FIFO", res)
	}
	apply(t, typ, s, "close")
	apply(t, typ, s, "get") // drains "b"
	res = apply(t, typ, s, "get")
	if res[1].(bool) {
		t.Fatal("get on closed+empty queue should report !ok")
	}
	if !getGuard(s, nil) {
		t.Fatal("get guard must be true once closed")
	}
}

func TestJobQueueClone(t *testing.T) {
	typ := typeByName(t, JobQueueObj)
	s := typ.New(nil)
	apply(t, typ, s, "add", 1)
	c := typ.Clone(s)
	apply(t, typ, s, "get")
	// The clone must be unaffected.
	if n := apply(t, typ, c, "len")[0].(int); n != 1 {
		t.Fatalf("clone len = %d after mutating original", n)
	}
}

func TestBarrierOps(t *testing.T) {
	typ := typeByName(t, BarrierObj)
	s := typ.New([]any{3})
	waitGuard := typ.Op("wait").Guard
	for i := 1; i <= 2; i++ {
		apply(t, typ, s, "arrive")
		if waitGuard(s, nil) {
			t.Fatalf("wait guard true after %d arrivals of 3", i)
		}
	}
	apply(t, typ, s, "arrive")
	if !waitGuard(s, nil) {
		t.Fatal("wait guard false after all arrivals")
	}
	if n := apply(t, typ, s, "count")[0].(int); n != 3 {
		t.Fatalf("count = %d", n)
	}
}

func TestFlagOps(t *testing.T) {
	typ := typeByName(t, FlagObj)
	s := typ.New(nil)
	if apply(t, typ, s, "value")[0].(bool) {
		t.Fatal("default flag should be false")
	}
	await := typ.Op("await").Guard
	if await(s, nil) {
		t.Fatal("await guard true on false flag")
	}
	apply(t, typ, s, "set", true)
	if !await(s, nil) {
		t.Fatal("await guard false on true flag")
	}
	s2 := typ.New([]any{true})
	if !apply(t, typ, s2, "value")[0].(bool) {
		t.Fatal("constructor arg ignored")
	}
}

func TestBoolArrayOps(t *testing.T) {
	typ := typeByName(t, BoolArrayObj)
	s := typ.New([]any{5})
	apply(t, typ, s, "set", 1, true)
	apply(t, typ, s, "setMany", []int{2, 4}, true)
	if !apply(t, typ, s, "get", 2)[0].(bool) {
		t.Fatal("setMany missed index 2")
	}
	if n := apply(t, typ, s, "countTrue")[0].(int); n != 3 {
		t.Fatalf("countTrue = %d", n)
	}
	if apply(t, typ, s, "allTrue")[0].(bool) {
		t.Fatal("allTrue wrong")
	}
	if !apply(t, typ, s, "anyTrue")[0].(bool) {
		t.Fatal("anyTrue wrong")
	}
	if !apply(t, typ, s, "anyTrueIn", []int{0, 4})[0].(bool) {
		t.Fatal("anyTrueIn([0,4]) wrong")
	}
	if apply(t, typ, s, "anyTrueIn", []int{0, 3})[0].(bool) {
		t.Fatal("anyTrueIn([0,3]) wrong")
	}
	if was := apply(t, typ, s, "claim", 1)[0].(bool); !was {
		t.Fatal("claim(1) should win")
	}
	if was := apply(t, typ, s, "claim", 1)[0].(bool); was {
		t.Fatal("second claim(1) should lose")
	}
	s2 := typ.New([]any{3, true})
	if n := apply(t, typ, s2, "countTrue")[0].(int); n != 3 {
		t.Fatalf("initializer true: countTrue = %d", n)
	}
}

func TestTableOps(t *testing.T) {
	typ := typeByName(t, TableObj)
	s := typ.New([]any{8})
	res := apply(t, typ, s, "lookup", uint64(5))
	if res[1].(bool) {
		t.Fatal("lookup hit on empty table")
	}
	apply(t, typ, s, "store", uint64(5), int64(-9))
	res = apply(t, typ, s, "lookup", uint64(5))
	if !res[1].(bool) || res[0].(int64) != -9 {
		t.Fatalf("lookup = %v", res)
	}
	// Bucket collision (5 and 13 mod 8): always-replace policy.
	apply(t, typ, s, "store", uint64(13), int64(7))
	if res := apply(t, typ, s, "lookup", uint64(5)); res[1].(bool) {
		t.Fatal("evicted key still found")
	}
	if res := apply(t, typ, s, "lookup", uint64(13)); !res[1].(bool) || res[0].(int64) != 7 {
		t.Fatalf("replacement lookup = %v", res)
	}
}

func TestKillerOps(t *testing.T) {
	typ := typeByName(t, KillerObj)
	s := typ.New([]any{4})
	apply(t, typ, s, "add", 2, 100)
	apply(t, typ, s, "add", 2, 200)
	apply(t, typ, s, "add", 2, 200) // duplicate must not shift
	res := apply(t, typ, s, "get", 2)
	if res[0].(int) != 200 || res[1].(int) != 100 {
		t.Fatalf("killers = %v", res)
	}
	// Out-of-range plies are ignored gracefully.
	apply(t, typ, s, "add", 99, 1)
	res = apply(t, typ, s, "get", 99)
	if res[0].(int) != 0 {
		t.Fatal("out-of-range get should be zero")
	}
}

func TestBitSetOps(t *testing.T) {
	typ := typeByName(t, BitSetObj)
	s := typ.New([]any{200})
	if !apply(t, typ, s, "add", 150)[0].(bool) {
		t.Fatal("first add should report new")
	}
	if apply(t, typ, s, "add", 150)[0].(bool) {
		t.Fatal("second add should report duplicate")
	}
	added := apply(t, typ, s, "addMany", []int{1, 2, 150, 199})[0].(int)
	if added != 3 {
		t.Fatalf("addMany added %d, want 3", added)
	}
	if n := apply(t, typ, s, "count")[0].(int); n != 4 {
		t.Fatalf("count = %d", n)
	}
	if !apply(t, typ, s, "contains", 199)[0].(bool) {
		t.Fatal("contains(199) wrong")
	}
}

func TestBitSetCountProperty(t *testing.T) {
	typ := typeByName(t, BitSetObj)
	f := func(idxs []uint16) bool {
		s := typ.New([]any{1 << 16})
		seen := map[int]bool{}
		for _, raw := range idxs {
			i := int(raw)
			apply(t, typ, s, "add", i)
			seen[i] = true
		}
		return apply(t, typ, s, "count")[0].(int) == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAccumOps(t *testing.T) {
	typ := typeByName(t, AccumObj)
	s := typ.New(nil)
	apply(t, typ, s, "add", 5)
	apply(t, typ, s, "add", -2)
	if v := apply(t, typ, s, "value")[0].(int); v != 3 {
		t.Fatalf("value = %d", v)
	}
}

// TestClonesAreDeep verifies every type's Clone produces a state
// disjoint from the original (required by the point-to-point RTS).
func TestClonesAreDeep(t *testing.T) {
	reg := rts.NewRegistry()
	Register(reg)
	cases := []struct {
		name    string
		args    []any
		mutate  string
		mutArgs []any
		probe   string
		pArgs   []any
	}{
		{IntObj, []any{1}, "assign", []any{9}, "value", nil},
		{JobQueueObj, nil, "add", []any{1}, "len", nil},
		{BarrierObj, []any{2}, "arrive", nil, "count", nil},
		{FlagObj, nil, "set", []any{true}, "value", nil},
		{BoolArrayObj, []any{4}, "set", []any{0, true}, "countTrue", nil},
		{TableObj, []any{4}, "store", []any{uint64(1), int64(2)}, "lookup", []any{uint64(1)}},
		{KillerObj, []any{4}, "add", []any{0, 7}, "get", []any{0}},
		{BitSetObj, []any{64}, "add", []any{3}, "count", nil},
		{AccumObj, nil, "add", []any{5}, "value", nil},
	}
	for _, tc := range cases {
		typ := reg.Lookup(tc.name)
		orig := typ.New(tc.args)
		clone := typ.Clone(orig)
		before := typ.Op(tc.probe).Apply(clone, tc.pArgs)
		typ.Op(tc.mutate).Apply(orig, tc.mutArgs)
		after := typ.Op(tc.probe).Apply(clone, tc.pArgs)
		for i := range before {
			if before[i] != after[i] {
				t.Errorf("%s: clone observed mutation of original (%v -> %v)", tc.name, before, after)
			}
		}
	}
}

// TestSizeOfGrowsWithContent checks the storage model: object sizes
// must track their content (the RTS resizes replica segments on every
// write).
func TestSizeOfGrowsWithContent(t *testing.T) {
	reg := rts.NewRegistry()
	Register(reg)
	q := reg.Lookup(JobQueueObj)
	s := q.New(nil)
	small := q.SizeOf(s)
	for i := 0; i < 10; i++ {
		apply(t, q, s, "add", "payload")
	}
	if big := q.SizeOf(s); big <= small {
		t.Fatalf("queue size did not grow: %d -> %d", small, big)
	}
	bs := reg.Lookup(BitSetObj)
	if sz := bs.SizeOf(bs.New([]any{1024})); sz < 128 {
		t.Fatalf("bitset(1024) size = %d, want >= 128", sz)
	}
}
