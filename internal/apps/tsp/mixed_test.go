package tsp

import (
	"testing"

	"repro/internal/orca"
)

// TestPrimaryCopyQueueCorrect runs the paper's mixed strategy inside
// one program: the write-mostly job queue as a primary copy on the
// manager's machine (point-to-point runtime) while the bound stays
// fully replicated (broadcast runtime). The optimum must match the
// sequential solver.
func TestPrimaryCopyQueueCorrect(t *testing.T) {
	inst := Generate(10, 11)
	want, _ := SolveSeq(inst)
	res := RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Mixed: true, Seed: 1}, inst,
		Params{PrimaryCopyQueue: true})
	if res.Report.TimedOut {
		t.Fatalf("timed out; blocked: %v", res.Report.Blocked)
	}
	if res.Best != want {
		t.Fatalf("best = %d, want %d", res.Best, want)
	}
	// Both runtimes must actually have carried objects: the bound's
	// writes through the total order, the queue's through the primary.
	st := res.Report.RTS
	if st.BcastWrites == 0 {
		t.Error("no broadcast writes: the bound did not run on the broadcast runtime")
	}
	if st.P2PWrites == 0 {
		t.Error("no p2p writes: the queue did not run on the point-to-point runtime")
	}
}

// TestPrimaryCopyQueueReducesBroadcastLoad compares the mixed program
// against the fully replicated one: with the queue off the broadcast
// runtime, queue traffic no longer interrupts every machine.
func TestPrimaryCopyQueueReducesBroadcastLoad(t *testing.T) {
	inst := Generate(12, 11)
	repl := RunOrca(orca.Config{Processors: 8, RTS: orca.Broadcast, Seed: 1}, inst, Params{})
	mixed := RunOrca(orca.Config{Processors: 8, RTS: orca.Broadcast, Mixed: true, Seed: 1}, inst,
		Params{PrimaryCopyQueue: true})
	if repl.Best != mixed.Best {
		t.Fatalf("different optima: %d vs %d", repl.Best, mixed.Best)
	}
	replBcast := repl.Report.Net.CountsByKind["grp-data"]
	mixedBcast := mixed.Report.Net.CountsByKind["grp-data"]
	if mixedBcast >= replBcast {
		t.Fatalf("primary-copy queue did not reduce broadcasts: %d vs %d", mixedBcast, replBcast)
	}
	t.Logf("replicated queue: %d broadcasts, %v elapsed", replBcast, repl.Report.Elapsed)
	t.Logf("mixed primary-copy queue: %d broadcasts, %v elapsed (p2p writes %d)",
		mixedBcast, mixed.Report.Elapsed, mixed.Report.RTS.P2PWrites)
}
