package amoeba

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// The RPC layer implements Amoeba's remote procedure call model
// (Birrell & Nelson style): a client thread performs a blocking Trans
// to a (node, port) pair; a server thread alternates GetRequest /
// PutReply. Requests are retransmitted on timeout and deduplicated at
// the server, giving at-most-once execution with cached replies, so
// RPC stays reliable on lossy networks.

// ErrRPCTimeout is returned by Trans when all retransmissions expire
// without a reply.
var ErrRPCTimeout = errors.New("amoeba: rpc timeout")

// ErrCrashed is returned by Trans when the destination machine is
// known to have crashed: instead of retransmitting into the void until
// the retry budget runs out, the client fails the transaction at its
// next timeout (or immediately, if the destination was already down).
// Callers — the runtime systems — turn this into recovery: re-homing
// an object, re-routing to a surviving replica.
var ErrCrashed = errors.New("amoeba: destination machine crashed")

// rpcWire distinguishes request and reply packets on an RPC port.
type rpcWire struct {
	TxID   int64
	IsRep  bool
	Op     string
	Body   any
	Client int
}

// rpcHeaderBytes is the wire overhead of the RPC layer itself.
const rpcHeaderBytes = 24

// RPCDefaults groups the client retransmission policy.
type RPCDefaults struct {
	Timeout sim.Time
	Retries int
}

// DefaultRPCPolicy matches Amoeba's aggressive LAN tuning.
func DefaultRPCPolicy() RPCDefaults {
	return RPCDefaults{Timeout: 100 * sim.Millisecond, Retries: 5}
}

// Request is a received RPC request awaiting a reply.
type Request struct {
	Op   string
	Body any
	Size int
	From int
	txid int64
	srv  *Server
}

// Server accepts RPCs on a port of a machine. Create one with
// NewServer, then run one or more threads that loop on GetRequest and
// PutReply.
type Server struct {
	m     *Machine
	port  string
	reqs  *sim.Queue[*Request]
	seen  map[int64]rpcWire // txid -> cached reply (at-most-once)
	inwrk map[int64]bool    // requests currently being served
	order []int64           // FIFO of cached txids for bounded memory
	max   int
}

// NewServer binds an RPC server to port on machine m.
func NewServer(m *Machine, port string) *Server {
	s := &Server{
		m:     m,
		port:  port,
		reqs:  sim.NewQueue[*Request](m.Env()),
		seen:  make(map[int64]rpcWire),
		inwrk: make(map[int64]bool),
		max:   1024,
	}
	m.Bind(port, s.handle)
	return s
}

// handle runs on the interrupt thread for every packet on the port.
func (s *Server) handle(p *sim.Proc, from int, pkt Packet) {
	w, ok := pkt.Body.(rpcWire)
	if !ok || w.IsRep {
		return
	}
	if rep, done := s.seen[w.TxID]; done {
		// Duplicate of an executed request: resend the cached reply.
		s.m.Send(p, from, Packet{
			Port: s.port + "-rep", Kind: "rpc-rep", Body: rep,
			Size: sizeOfBody(rep.Body) + rpcHeaderBytes,
		})
		return
	}
	if s.inwrk[w.TxID] {
		return // still executing; client will retry later
	}
	s.inwrk[w.TxID] = true
	s.reqs.Put(&Request{Op: w.Op, Body: w.Body, Size: pkt.Size, From: from, txid: w.TxID, srv: s})
}

// GetRequest blocks the server thread until a request arrives.
func (s *Server) GetRequest(p *sim.Proc) (*Request, bool) {
	r, ok := s.reqs.Get(p)
	if ok {
		// Waking the server thread costs a context switch.
		s.m.cpu.Use(p, s.m.costs.Switch)
	}
	return r, ok
}

// PutReply sends the reply for r and records it for duplicate
// suppression.
func (s *Server) PutReply(p *sim.Proc, r *Request, body any, size int) {
	rep := rpcWire{TxID: r.txid, IsRep: true, Op: r.Op, Body: body}
	delete(s.inwrk, r.txid)
	s.seen[r.txid] = rep
	s.order = append(s.order, r.txid)
	if len(s.order) > s.max {
		delete(s.seen, s.order[0])
		s.order = s.order[1:]
	}
	s.m.Send(p, r.From, Packet{
		Port: s.port + "-rep", Kind: "rpc-rep", Body: rep, Size: size + rpcHeaderBytes,
	})
}

// Close unbinds the server and wakes blocked GetRequest calls.
func (s *Server) Close() {
	s.m.Unbind(s.port)
	s.reqs.Close()
}

// Client issues RPCs from a machine to servers elsewhere. A single
// Client may be shared by all threads of a machine; each Trans tracks
// its own transaction.
type Client struct {
	m      *Machine
	policy RPCDefaults
	waits  map[int64]*rpcWait
	bound  map[string]bool
}

type rpcWait struct {
	cond  *sim.Cond
	reply *rpcWire
	size  int
}

// NewClient creates an RPC client on machine m.
func NewClient(m *Machine, policy RPCDefaults) *Client {
	return &Client{m: m, policy: policy, waits: make(map[int64]*rpcWait), bound: make(map[string]bool)}
}

// ensureReplyPort lazily binds the client side of an RPC port so reply
// packets find their waiting transaction.
func (c *Client) ensureReplyPort(port string) {
	if c.bound[port] {
		return
	}
	c.bound[port] = true
	c.m.Bind(port, func(p *sim.Proc, from int, pkt Packet) {
		w, ok := pkt.Body.(rpcWire)
		if !ok || !w.IsRep {
			return
		}
		wait := c.waits[w.TxID]
		if wait == nil {
			return // late duplicate reply
		}
		wait.reply = &w
		wait.size = pkt.Size
		wait.cond.Broadcast()
	})
}

// Trans performs a blocking RPC: send the request to (dst, port),
// retransmit on timeout, and return the reply body. It is the
// transparent communication primitive the runtime systems build on.
func (c *Client) Trans(p *sim.Proc, dst int, port, op string, body any, size int) (any, error) {
	// Replies arrive on port+"-rep" so a machine can be client and
	// server of the same service. Self-sends do traverse the simulated
	// wire; the runtime systems avoid them by checking locality first.
	c.ensureReplyPort(port + "-rep")
	if c.m.net.Down(dst) {
		return nil, fmt.Errorf("%w: %s/%s to node %d", ErrCrashed, port, op, dst)
	}
	txid := c.m.ServiceID()
	wait := &rpcWait{cond: sim.NewCond(c.m.Env())}
	c.waits[txid] = wait
	// The calling thread can be killed mid-transaction (its machine
	// crashed while it was parked here); the unwinding goroutine runs
	// concurrently with other reaped threads of this machine and must
	// not touch the shared waits map.
	defer func() {
		if !p.Killed() {
			delete(c.waits, txid)
		}
	}()

	req := rpcWire{TxID: txid, Op: op, Body: body, Client: c.m.id}
	send := func(pp *sim.Proc) {
		c.m.Send(pp, dst, Packet{Port: port, Kind: "rpc-req", Body: req, Size: size + rpcHeaderBytes})
	}
	send(p)
	for attempt := 0; attempt <= c.policy.Retries; attempt++ {
		var timedOut bool
		timer := c.m.Env().After(c.policy.Timeout, func() {
			timedOut = true
			wait.cond.Broadcast()
		})
		for wait.reply == nil && !timedOut {
			wait.cond.Wait(p)
		}
		timer.Cancel()
		if wait.reply != nil {
			return wait.reply.Body, nil
		}
		if c.m.net.Down(dst) {
			// The server died while the transaction was in flight: fail
			// now instead of burning the whole retry budget.
			return nil, fmt.Errorf("%w: %s/%s to node %d", ErrCrashed, port, op, dst)
		}
		if attempt < c.policy.Retries {
			c.m.Env().Tracef("node%d: rpc retry %s/%s to %d", c.m.id, port, op, dst)
			send(p)
		}
	}
	return nil, fmt.Errorf("%w: %s/%s to node %d", ErrRPCTimeout, port, op, dst)
}

// sizeOfBody gives a coarse wire size for cached replies whose
// original size was not recorded. Callers that care pass sizes
// explicitly; this is only used on the duplicate-reply path.
func sizeOfBody(v any) int {
	if s, ok := v.(interface{ WireSize() int }); ok {
		return s.WireSize()
	}
	return 64
}
