package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sim"
)

// Kind classifies one generated operation.
type Kind int

const (
	// Get reads a key.
	Get Kind = iota
	// Put overwrites a key's value.
	Put
	// Update is a read-modify-write on a key (session increment).
	Update
)

// String names the kind for tables and traces.
func (k Kind) String() string {
	switch k {
	case Get:
		return "get"
	case Put:
		return "put"
	case Update:
		return "update"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Dist selects the key distribution.
type Dist int

const (
	// Zipf draws keys with a power-law skew: key 0 is the hottest,
	// frequencies fall off as rank^-Theta (the YCSB zipfian shape).
	Zipf Dist = iota
	// Uniform draws keys uniformly over the universe.
	Uniform
)

// String names the distribution for tables.
func (d Dist) String() string {
	if d == Uniform {
		return "uniform"
	}
	return "zipf"
}

// Config describes one traffic source. The zero value is not valid:
// set Keys, and either Rate+Duration (open loop) or Ops (closed
// loop). All randomness comes from Seed; two generators with equal
// Configs produce identical traces.
type Config struct {
	// Keys is the key universe size: keys are [0, Keys).
	Keys int64
	// Dist selects the key distribution (default Zipf).
	Dist Dist
	// Theta is the Zipf skew parameter (default 0.99, the YCSB
	// default; must be in (0, 1)). Ignored for Uniform.
	Theta float64
	// ReadFrac is the fraction of operations that are Gets
	// (default 0.95, a read-heavy serving mix).
	ReadFrac float64
	// UpdateFrac is the fraction of operations that are read-modify-
	// write Updates; the remainder (1 - ReadFrac - UpdateFrac) are
	// Puts.
	UpdateFrac float64
	// Seed drives all draws.
	Seed int64

	// Rate > 0 selects open-loop generation: operations arrive as a
	// Poisson process at Rate ops per virtual second, stamped with
	// arrival times, until Duration. Open-loop arrivals do not wait
	// for completions — a slow server builds a backlog, exactly the
	// queueing behavior latency percentiles must capture.
	Rate float64
	// Duration is the open-loop horizon.
	Duration sim.Time
	// Ops is the closed-loop operation count (used when Rate == 0):
	// the client issues Ops operations back to back, sleeping Think
	// between them.
	Ops int
	// Think is the closed-loop think time between operations.
	Think sim.Time

	// ShiftFrac, when in (0, 1), rotates the hot set after that
	// fraction of the run (of Duration in open loop, of Ops in closed
	// loop): generated keys become (key + ShiftBy) mod Keys. A static
	// placement tuned to the first phase is wrong for the second —
	// the adversarial input for adaptive-placement work.
	ShiftFrac float64
	// ShiftBy is the rotation amount (default Keys/2).
	ShiftBy int64

	// Partitions, together with Partition and LocalFrac, adds machine
	// affinity: the key universe splits into Partitions equal blocks
	// and each generated key is remapped with probability LocalFrac
	// into this source's home block — block Partition before the phase
	// shift, block (Partition+1) mod Partitions after it. A client per
	// machine with Partition = machine id gives every key block a
	// dominant writer, and the shift moves every block's traffic to
	// the next machine — the input that makes primary re-homing (not
	// just placement choice) matter. Partitions <= 1 disables affinity
	// and draws exactly the original trace.
	Partitions int
	// Partition is this source's home block in [0, Partitions).
	Partition int
	// LocalFrac is the probability a key is remapped into the home
	// block (default 0.9 when Partitions > 1).
	LocalFrac float64
}

// withDefaults fills zero fields and validates.
func (c Config) withDefaults() Config {
	if c.Keys <= 0 {
		panic("workload: Config.Keys must be positive")
	}
	if c.Theta == 0 {
		c.Theta = 0.99
	}
	if c.Dist == Zipf && (c.Theta <= 0 || c.Theta >= 1) {
		panic("workload: Config.Theta must be in (0, 1)")
	}
	if c.ReadFrac == 0 {
		c.ReadFrac = 0.95
	}
	if c.ReadFrac < 0 || c.UpdateFrac < 0 || c.ReadFrac+c.UpdateFrac > 1 {
		panic("workload: ReadFrac/UpdateFrac must be non-negative with sum <= 1")
	}
	if c.Rate > 0 && c.Duration <= 0 {
		panic("workload: open loop (Rate > 0) needs a positive Duration")
	}
	if c.Rate == 0 && c.Ops <= 0 {
		panic("workload: closed loop needs a positive Ops count")
	}
	if c.ShiftBy == 0 {
		c.ShiftBy = c.Keys / 2
	}
	if c.Partitions > 1 {
		if c.Partition < 0 || c.Partition >= c.Partitions {
			panic("workload: Config.Partition must be in [0, Partitions)")
		}
		if c.Keys < int64(c.Partitions) {
			panic("workload: Config.Keys must be at least Partitions")
		}
		if c.LocalFrac == 0 {
			c.LocalFrac = 0.9
		}
		if c.LocalFrac < 0 || c.LocalFrac > 1 {
			panic("workload: Config.LocalFrac must be in [0, 1]")
		}
	}
	return c
}

// Op is one generated operation.
type Op struct {
	// At is the open-loop arrival instant (zero in closed loop,
	// where the client paces itself).
	At sim.Time
	// Key is the target key in [0, Keys).
	Key int64
	// Kind is the operation class.
	Kind Kind
}

// Gen produces one trace. Draw order per operation is fixed —
// arrival (open loop only), key, kind — so traces are reproducible
// and two configs differing only in loop mode share key sequences.
type Gen struct {
	cfg     Config
	rng     *rand.Rand
	zipf    *zipfGen
	emitted int
	next    sim.Time // next open-loop arrival
}

// New builds a generator. The Config is validated and defaults are
// filled; see Config for the knobs.
func New(cfg Config) *Gen {
	cfg = cfg.withDefaults()
	g := &Gen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.Dist == Zipf {
		g.zipf = newZipf(cfg.Keys, cfg.Theta)
	}
	return g
}

// Config reports the generator's resolved configuration (defaults
// filled), which the driving client needs for Think pacing.
func (g *Gen) Config() Config { return g.cfg }

// Next returns the next operation, or ok == false when the trace is
// exhausted (Duration passed in open loop, Ops emitted in closed
// loop).
func (g *Gen) Next() (Op, bool) {
	var op Op
	if g.cfg.Rate > 0 {
		g.next += sim.Time(g.rng.ExpFloat64() / g.cfg.Rate * float64(sim.Second))
		if g.next >= g.cfg.Duration {
			return Op{}, false
		}
		op.At = g.next
	} else if g.emitted >= g.cfg.Ops {
		return Op{}, false
	}
	if g.zipf != nil {
		op.Key = g.zipf.next(g.rng.Float64())
	} else {
		op.Key = g.rng.Int63n(g.cfg.Keys)
	}
	if g.shifted() {
		op.Key = (op.Key + g.cfg.ShiftBy) % g.cfg.Keys
	}
	if g.cfg.Partitions > 1 {
		// Affinity remap. The extra draw happens only when partitions
		// are configured, so existing traces are untouched.
		if g.rng.Float64() < g.cfg.LocalFrac {
			home := g.cfg.Partition
			if g.shifted() {
				home = (home + 1) % g.cfg.Partitions
			}
			block := g.cfg.Keys / int64(g.cfg.Partitions)
			op.Key = op.Key%block + int64(home)*block
		}
	}
	u := g.rng.Float64()
	switch {
	case u < g.cfg.ReadFrac:
		op.Kind = Get
	case u < g.cfg.ReadFrac+g.cfg.UpdateFrac:
		op.Kind = Update
	default:
		op.Kind = Put
	}
	g.emitted++
	return op, true
}

// shifted reports whether the current operation falls in the
// post-phase-shift part of the run.
func (g *Gen) shifted() bool {
	if g.cfg.ShiftFrac <= 0 || g.cfg.ShiftFrac >= 1 {
		return false
	}
	if g.cfg.Rate > 0 {
		return float64(g.next) >= g.cfg.ShiftFrac*float64(g.cfg.Duration)
	}
	return float64(g.emitted) >= g.cfg.ShiftFrac*float64(g.cfg.Ops)
}

// Trace drains a fresh generator for cfg into a slice — the
// double-run comparison and test surface.
func Trace(cfg Config) []Op {
	g := New(cfg)
	var ops []Op
	for {
		op, ok := g.Next()
		if !ok {
			return ops
		}
		ops = append(ops, op)
	}
}

// --- Zipf -------------------------------------------------------------
//
// The YCSB zipfian generator (Gray et al.'s quick zipf): rank r (from
// 1) is drawn with probability (1/r^theta)/zeta(n, theta) using the
// closed-form inverse, with the harmonic sum precomputed once at
// construction. Key 0 is the hottest; no scrambling, so the hot set
// is the low keys and a phase shift is a plain rotation.

type zipfGen struct {
	n                 int64
	theta             float64
	alpha, zetan, eta float64
	halfPowTheta      float64
}

// newZipf precomputes the zeta sum for n keys (O(n), once).
func newZipf(n int64, theta float64) *zipfGen {
	zetan := 0.0
	for i := int64(1); i <= n; i++ {
		zetan += 1 / math.Pow(float64(i), theta)
	}
	zeta2 := 1 + 1/math.Pow(2, theta)
	return &zipfGen{
		n:            n,
		theta:        theta,
		alpha:        1 / (1 - theta),
		zetan:        zetan,
		eta:          (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan),
		halfPowTheta: math.Pow(0.5, theta),
	}
}

// next maps one uniform draw u in [0, 1) to a key in [0, n).
func (z *zipfGen) next(u float64) int64 {
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.halfPowTheta {
		return 1
	}
	k := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k < 0 {
		k = 0
	}
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

// Prob reports the theoretical probability of key k (0-indexed) under
// a Zipf(theta) distribution over n keys — the reference the
// statistical tests compare empirical frequencies against.
func Prob(n int64, theta float64, k int64) float64 {
	zetan := 0.0
	for i := int64(1); i <= n; i++ {
		zetan += 1 / math.Pow(float64(i), theta)
	}
	return 1 / math.Pow(float64(k+1), theta) / zetan
}
