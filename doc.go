// Package repro reproduces "Programming a Distributed System Using
// Shared Objects" (Tanenbaum, Bal, Kaashoek; HPDC 1993): the Orca
// shared data-object model, the Amoeba microkernel substrate with its
// totally-ordered broadcast protocols (PB and BB), the broadcast and
// point-to-point runtime systems (invalidation and two-phase update),
// and the paper's four applications (TSP, ACP, chess, ATPG) — all on a
// deterministic discrete-event simulation of the 16-processor,
// 10 Mb/s-Ethernet testbed.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for paper-vs-measured results.
// The root bench_test.go holds one benchmark per reproduced table or
// figure; cmd/orca-bench regenerates them all from the command line.
package repro
