package harness

import (
	"fmt"
	"io"

	"repro/internal/apps/tsp"
	"repro/internal/orca"
)

// MixedPlacementExperiment regenerates the paper's single-copy-vs-
// replicated job-queue comparison inside one program. The paper keeps
// it as a remark — "keeping a single copy would be better" — because
// its RTS binds the whole program to one strategy. With per-object
// placement the comparison is three variants of the same TSP program:
//
//   - replicated: everything on the broadcast runtime (the paper's
//     original RTS).
//   - partial: the queue replicated only on the manager's machine,
//     still inside the broadcast runtime (forwarded operations).
//   - mixed: the queue as a primary copy on the point-to-point
//     runtime (update protocol, single copy), the bound and the rest
//     broadcast-replicated — both runtimes live in one run.
//
// The table reports elapsed virtual time, broadcast data messages, and
// the unified runtime counters, showing queue traffic leaving the
// total order while bound reads stay local everywhere.
func MixedPlacementExperiment(w io.Writer, scale Scale) {
	cities := 13
	procs := []int{4, 8, 16}
	if scale == Quick {
		cities = 11
		procs = []int{4}
	}
	inst := tsp.Generate(cities, 5)
	fmt.Fprintf(w, "== MIXED: per-object placement, one program, mixed runtimes (TSP, %d cities) ==\n", cities)
	var rows [][]string
	for _, p := range procs {
		variants := []struct {
			name   string
			cfg    orca.Config
			params tsp.Params
		}{
			{"replicated", orca.Config{Processors: p, RTS: orca.Broadcast, Seed: 1}, tsp.Params{}},
			{"partial", orca.Config{Processors: p, RTS: orca.Broadcast, Seed: 1}, tsp.Params{SingleCopyQueue: true}},
			{"mixed", orca.Config{Processors: p, RTS: orca.Broadcast, Mixed: true, Seed: 1}, tsp.Params{PrimaryCopyQueue: true}},
		}
		best := -1
		for _, v := range variants {
			r := tsp.RunOrca(v.cfg, inst, v.params)
			if best == -1 {
				best = r.Best
			} else if r.Best != best {
				panic(fmt.Sprintf("harness: %s variant found optimum %d, want %d", v.name, r.Best, best))
			}
			st := r.Report.RTS
			rows = append(rows, []string{
				fmt.Sprint(p), v.name, fmtTime(r.Report.Elapsed),
				fmt.Sprint(r.Report.Net.CountsByKind["grp-data"]),
				fmt.Sprint(st.LocalReads), fmt.Sprint(st.BcastWrites),
				fmt.Sprint(st.Forwarded), fmt.Sprint(st.P2PWrites),
			})
		}
	}
	Table(w, []string{"procs", "queue", "time", "bcasts", "local reads", "bcast writes", "forwarded", "p2p writes"}, rows)
	fmt.Fprintln(w, "Paper: the job queue is write-mostly, so replicating it on all")
	fmt.Fprintln(w, "machines is wasted update work; per-object placement keeps the bound")
	fmt.Fprintln(w, "replicated (reads stay local) while the queue lives in one copy —")
	fmt.Fprintln(w, "as a forwarded broadcast object or on the point-to-point runtime.")
	fmt.Fprintln(w)
}
