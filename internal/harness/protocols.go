package harness

import (
	"fmt"
	"io"

	"repro/internal/amoeba"
	"repro/internal/group"
	"repro/internal/netsim"
	"repro/internal/rts"
	"repro/internal/sim"
)

// protoCluster builds machines and group members for the wire-level
// experiments.
type protoCluster struct {
	env *sim.Env
	net *netsim.Network
	ms  []*amoeba.Machine
	gs  []*group.Member
}

func newProtoCluster(seed int64, n int, cfgMut func(*group.Config)) *protoCluster {
	env := sim.New(seed)
	nw := netsim.New(env, n, netsim.DefaultParams())
	c := &protoCluster{env: env, net: nw}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	cfg := group.DefaultConfig(ids)
	cfg.Heartbeat = 0 // keep the wire clean for exact accounting
	cfg.StatusEvery = 0
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	for i := 0; i < n; i++ {
		m := amoeba.NewMachine(env, nw, i, amoeba.DefaultCosts())
		c.ms = append(c.ms, m)
		c.gs = append(c.gs, group.Join(m, cfg))
	}
	return c
}

// PBBBExperiment reproduces the §3.1 protocol analysis: PB sends the
// message twice over the wire but interrupts each user machine once;
// BB sends it once plus a short Accept but interrupts twice. The
// implementation switches from PB to BB at one packet.
func PBBBExperiment(w io.Writer, scale Scale) {
	sizes := []int{64, 256, 512, 1024, 1440, 2000, 4000, 8000}
	if scale == Quick {
		sizes = []int{256, 1440, 4000}
	}
	const nodes = 4
	run := func(method group.Method, size int) (wire int64, userIntr int64, latency sim.Time) {
		c := newProtoCluster(7, nodes, func(g *group.Config) { g.Method = method })
		var last sim.Time
		delivered := 0
		for i := 0; i < nodes; i++ {
			i := i
			c.ms[i].SpawnThread("consume", func(p *sim.Proc) {
				for {
					if _, ok := c.gs[i].Deliveries().Get(p); !ok {
						return
					}
					delivered++
					last = p.Now()
				}
			})
		}
		// Node 3 broadcasts (node 0 is the sequencer; nodes 1 and 2
		// are the "user machines" of the paper's analysis).
		c.ms[3].SpawnThread("send", func(p *sim.Proc) {
			c.gs[3].Broadcast(p, "payload", "m", size)
		})
		c.env.RunUntil(5 * sim.Second)
		s := c.net.Stats()
		c.env.Stop()
		c.env.Shutdown()
		return s.WireBytes, s.Interrupts[1], last
	}
	fmt.Fprintln(w, "== PBBB: the PB vs BB broadcast methods (§3.1) ==")
	fmt.Fprintln(w, "4 machines; sender is not the sequencer; 'user intr' is interrupts")
	fmt.Fprintln(w, "at a machine that is neither sender nor sequencer.")
	var rows [][]string
	for _, size := range sizes {
		pbWire, pbIntr, pbLat := run(group.ForcePB, size)
		bbWire, bbIntr, bbLat := run(group.ForceBB, size)
		_, _, autoLat := run(group.Auto, size)
		frags := (size + 24 + 1499) / 1500
		auto := "PB"
		if frags > 1 {
			auto = "BB"
		}
		rows = append(rows, []string{
			fmt.Sprint(size), fmt.Sprint(frags),
			fmt.Sprint(pbWire), fmt.Sprint(pbIntr), fmtTime(pbLat),
			fmt.Sprint(bbWire), fmt.Sprint(bbIntr), fmtTime(bbLat),
			auto, fmtTime(autoLat),
		})
	}
	Table(w, []string{"size", "pkts",
		"PB wire", "PB intr", "PB latency",
		"BB wire", "BB intr", "BB latency",
		"auto", "auto latency"}, rows)
	fmt.Fprintln(w, "Paper: PB consumes 2m bandwidth with one interrupt per machine; BB")
	fmt.Fprintln(w, "consumes m plus a short Accept with two interrupts; the system picks")
	fmt.Fprintln(w, "PB for short messages and BB for long ones (over 1 packet).")
	fmt.Fprintln(w)
}

// P2PWorkload drives a read/write mix over one object on a
// point-to-point cluster and reports elapsed virtual time, message
// count, and runtime statistics. It is the workload generator behind
// the RTSCMP and DYNREPL experiments and their benchmarks.
func P2PWorkload(proto rts.P2PProtocol, placement rts.Placement, nodes, readsPerWrite, writeRun, rounds int) (sim.Time, int64, rts.P2PStats) {
	env := sim.New(11)
	np := netsim.DefaultParams()
	np.BroadcastCapable = false
	nw := netsim.New(env, nodes, np)
	var ms []*amoeba.Machine
	for i := 0; i < nodes; i++ {
		ms = append(ms, amoeba.NewMachine(env, nw, i, amoeba.DefaultCosts()))
	}
	reg := rts.NewRegistry()
	reg.Register(counterType())
	cfg := rts.DefaultP2PConfig()
	cfg.Protocol = proto
	cfg.Placement = placement
	r := rts.NewP2PRTS(reg, rts.DefaultCosts(), cfg, ms)

	var id rts.ObjID
	var start, end sim.Time
	doneCount := 0
	ms[0].SpawnThread("driver", func(p *sim.Proc) {
		w := rts.NewWorker(p, ms[0])
		id = r.Create(w, "counter")
		start = p.Now()
		for n := 1; n < nodes; n++ {
			n := n
			ms[n].SpawnThread(fmt.Sprintf("w%d", n), func(p *sim.Proc) {
				w := rts.NewWorker(p, ms[n])
				// Reads and writes interleave continuously: every
				// node cycles through readsPerWrite reads; the
				// round's designated writer inserts a run of
				// writeRun consecutive writes, then reads on. A
				// little compute between operations keeps the nodes
				// drifting like real workers.
				for round := 0; round < rounds; round++ {
					if n == 1+(round%(nodes-1)) {
						for k := 0; k < writeRun; k++ {
							r.Invoke(w, id, "inc")
							w.Charge(200 * sim.Microsecond)
						}
					}
					for k := 0; k < readsPerWrite; k++ {
						r.Invoke(w, id, "get")
						w.Charge(sim.Time(100+n*37) * sim.Microsecond)
					}
				}
				w.Flush()
				doneCount++
				if doneCount == nodes-1 {
					end = p.Now()
				}
			})
		}
	})
	env.RunUntil(600 * sim.Second)
	env.Stop()
	stats := nw.Stats()
	env.Shutdown()
	return end - start, stats.Messages, r.Stats()
}

// counterType is a small int object for the protocol workloads.
func counterType() *rts.ObjectType {
	type cState struct{ v int }
	return &rts.ObjectType{
		Name:   "counter",
		New:    func([]any) rts.State { return &cState{} },
		Clone:  func(s rts.State) rts.State { c := *s.(*cState); return &c },
		SizeOf: func(rts.State) int { return 8 },
		Ops: map[string]*rts.OpDef{
			"get": {Name: "get", Kind: rts.Read,
				Apply: func(s rts.State, _ []any) []any { return []any{s.(*cState).v} }},
			"inc": {Name: "inc", Kind: rts.Write,
				Apply: func(s rts.State, _ []any) []any { s.(*cState).v++; return nil }},
		},
	}
}

// RTSCompareExperiment reproduces §3.2.2's update-vs-invalidation
// comparison across workloads: "Comparisons of update and invalidation
// did not show a clear winner. Which one is better depends on the
// problem being solved."
func RTSCompareExperiment(w io.Writer, scale Scale) {
	type cfg struct {
		name          string
		readsPerWrite int
		writeRun      int
	}
	cfgs := []cfg{
		{"read-heavy (32 reads/write)", 32, 1},
		{"mixed (8 reads/write)", 8, 1},
		{"write-runs (3 writes, 4 reads)", 4, 3},
		{"write-heavy (1 read, 6-write runs)", 1, 6},
	}
	nodes, rounds := 6, 12
	if scale == Quick {
		nodes, rounds = 3, 4
		cfgs = cfgs[:2]
	}
	fmt.Fprintln(w, "== RTSCMP: update vs invalidation protocols, point-to-point RTS (§3.2.2) ==")
	var rows [][]string
	for _, c := range cfgs {
		upT, upM, _ := P2PWorkload(rts.Update, rts.DynamicPlacement, nodes, c.readsPerWrite, c.writeRun, rounds)
		inT, inM, _ := P2PWorkload(rts.Invalidation, rts.DynamicPlacement, nodes, c.readsPerWrite, c.writeRun, rounds)
		winner := "update"
		if inT < upT {
			winner = "invalidate"
		}
		rows = append(rows, []string{
			c.name,
			fmtTime(upT), fmt.Sprint(upM),
			fmtTime(inT), fmt.Sprint(inM),
			winner,
		})
	}
	Table(w, []string{"workload", "update time", "update msgs", "inval time", "inval msgs", "winner"}, rows)
	fmt.Fprintln(w, "Paper: no clear winner; updating is better more often than")
	fmt.Fprintln(w, "invalidation, but which is better depends on the problem.")
	fmt.Fprintln(w)
}

// DynReplExperiment shows the dynamic replication policy (§3.2.2):
// read/write-ratio thresholds drive per-machine copy placement, against
// the static single-copy and full-replication baselines.
func DynReplExperiment(w io.Writer, scale Scale) {
	nodes, rounds := 6, 12
	readsPerWrite := 24
	if scale == Quick {
		nodes, rounds = 3, 4
	}
	fmt.Fprintln(w, "== DYNREPL: dynamic replication from read/write statistics (§3.2.2) ==")
	var rows [][]string
	for _, pl := range []rts.Placement{rts.SingleCopy, rts.FullReplication, rts.DynamicPlacement} {
		t, m, st := P2PWorkload(rts.Update, pl, nodes, readsPerWrite, 1, rounds)
		rows = append(rows, []string{
			pl.String(), fmtTime(t), fmt.Sprint(m),
			fmt.Sprint(st.LocalReads), fmt.Sprint(st.RemoteReads),
			fmt.Sprint(st.Fetches), fmt.Sprint(st.Discards),
		})
	}
	Table(w, []string{"placement", "time", "msgs", "local reads", "remote reads", "fetches", "discards"}, rows)
	fmt.Fprintln(w, "Paper: initially one copy; a machine fetches a copy when its")
	fmt.Fprintln(w, "read/write ratio exceeds a threshold and discards it when the ratio")
	fmt.Fprintln(w, "falls below another threshold.")
	fmt.Fprintln(w)
}

// MicroExperiment reports kernel-level microbenchmarks: null RPC and
// totally-ordered broadcast latency/throughput versus group size.
func MicroExperiment(w io.Writer, scale Scale) {
	fmt.Fprintln(w, "== MICRO: kernel communication primitives ==")
	// Null RPC.
	{
		env := sim.New(3)
		nw := netsim.New(env, 2, netsim.DefaultParams())
		m0 := amoeba.NewMachine(env, nw, 0, amoeba.DefaultCosts())
		m1 := amoeba.NewMachine(env, nw, 1, amoeba.DefaultCosts())
		srv := amoeba.NewServer(m1, "null")
		m1.SpawnThread("server", func(p *sim.Proc) {
			for {
				r, ok := srv.GetRequest(p)
				if !ok {
					return
				}
				srv.PutReply(p, r, nil, 0)
			}
		})
		cl := amoeba.NewClient(m0, amoeba.DefaultRPCPolicy())
		var rtt sim.Time
		m0.SpawnThread("client", func(p *sim.Proc) {
			const n = 100
			start := p.Now()
			for i := 0; i < n; i++ {
				if _, err := cl.Trans(p, 1, "null", "nop", nil, 0); err != nil {
					panic(err)
				}
			}
			rtt = (p.Now() - start) / n
		})
		env.RunUntil(60 * sim.Second)
		env.Stop()
		env.Shutdown()
		fmt.Fprintf(w, "  null RPC round trip: %v (Amoeba reported ~1.2ms on this class)\n", rtt)
	}
	// Broadcast latency and throughput vs group size.
	sizes := []int{2, 4, 8, 16}
	if scale == Quick {
		sizes = []int{2, 4}
	}
	var rows [][]string
	for _, n := range sizes {
		// Latency: one broadcast at a time, measured from send to the
		// last member's delivery.
		c := newProtoCluster(5, n, nil)
		const msgs = 20
		delivered := 0
		var sentAt sim.Time
		var latSum sim.Time
		ready := sim.NewCond(c.env)
		for i := 0; i < n; i++ {
			i := i
			c.ms[i].SpawnThread("consume", func(p *sim.Proc) {
				for {
					if _, ok := c.gs[i].Deliveries().Get(p); !ok {
						return
					}
					delivered++
					if delivered%n == 0 {
						latSum += p.Now() - sentAt
						ready.Broadcast()
					}
				}
			})
		}
		c.ms[n-1].SpawnThread("send", func(p *sim.Proc) {
			for k := 0; k < msgs; k++ {
				sentAt = p.Now()
				c.gs[n-1].Broadcast(p, "m", k, 128)
				for delivered < (k+1)*n {
					ready.Wait(p)
				}
			}
		})
		c.env.RunUntil(60 * sim.Second)
		c.env.Stop()
		c.env.Shutdown()
		latency := latSum / msgs

		// Throughput: a blast of back-to-back broadcasts.
		c2 := newProtoCluster(6, n, nil)
		const blast = 200
		got := 0
		var doneAt sim.Time
		for i := 0; i < n; i++ {
			i := i
			c2.ms[i].SpawnThread("consume", func(p *sim.Proc) {
				for {
					if _, ok := c2.gs[i].Deliveries().Get(p); !ok {
						return
					}
					got++
					if got == blast*n {
						doneAt = p.Now()
					}
				}
			})
		}
		c2.ms[n-1].SpawnThread("send", func(p *sim.Proc) {
			for k := 0; k < blast; k++ {
				c2.gs[n-1].Broadcast(p, "m", k, 128)
			}
		})
		c2.env.RunUntil(120 * sim.Second)
		c2.env.Stop()
		c2.env.Shutdown()
		rows = append(rows, []string{
			fmt.Sprint(n), fmtTime(latency),
			fmt.Sprintf("%.0f", float64(blast)/doneAt.Seconds()),
		})
	}
	Table(w, []string{"group size", "latency/broadcast", "broadcasts/sec (blast)"}, rows)
	fmt.Fprintln(w)
}
