package chess

import (
	"fmt"
	"math/rand"
	"strings"
)

// Piece encodes a colored piece, or Empty.
type Piece int8

// Piece values. White pieces are positive, black negative.
const (
	Empty Piece = 0
	WP    Piece = 1
	WN    Piece = 2
	WB    Piece = 3
	WR    Piece = 4
	WQ    Piece = 5
	WK    Piece = 6
	BP    Piece = -1
	BN    Piece = -2
	BB    Piece = -3
	BR    Piece = -4
	BQ    Piece = -5
	BK    Piece = -6
)

// White reports whether p is a white piece.
func (p Piece) White() bool { return p > 0 }

// Black reports whether p is a black piece.
func (p Piece) Black() bool { return p < 0 }

// Kind returns the uncolored piece kind (WP..WK).
func (p Piece) Kind() Piece {
	if p < 0 {
		return -p
	}
	return p
}

var pieceRunes = map[Piece]rune{
	Empty: '.',
	WP:    'P', WN: 'N', WB: 'B', WR: 'R', WQ: 'Q', WK: 'K',
	BP: 'p', BN: 'n', BB: 'b', BR: 'r', BQ: 'q', BK: 'k',
}

var runePieces = func() map[rune]Piece {
	m := map[rune]Piece{}
	for p, r := range pieceRunes {
		m[r] = p
	}
	return m
}()

// Board is a chess position in 0x88 form. Castling and en passant are
// not modelled: the paper's solver targets tactical mate/material
// problems, where they are immaterial.
type Board struct {
	Sq          [128]Piece
	WhiteToMove bool
	kingSq      [2]int // [white, black]
}

// Square index helpers for the 0x88 board.
func sq(file, rank int) int { return rank*16 + file }

// OnBoard reports whether a 0x88 index is a legal square.
func OnBoard(s int) bool { return s&0x88 == 0 }

// FileOf returns the file (0-7) of a square.
func FileOf(s int) int { return s & 7 }

// RankOf returns the rank (0-7) of a square.
func RankOf(s int) int { return s >> 4 }

// SquareName formats a square as algebraic ("e4").
func SquareName(s int) string {
	return fmt.Sprintf("%c%d", 'a'+FileOf(s), RankOf(s)+1)
}

// FromFEN parses the piece-placement and side-to-move fields of a FEN
// string. Castling/en-passant/clock fields are accepted and ignored.
func FromFEN(fen string) (*Board, error) {
	parts := strings.Fields(fen)
	if len(parts) < 2 {
		return nil, fmt.Errorf("chess: bad FEN %q", fen)
	}
	b := &Board{}
	ranks := strings.Split(parts[0], "/")
	if len(ranks) != 8 {
		return nil, fmt.Errorf("chess: FEN needs 8 ranks, got %d", len(ranks))
	}
	for ri, row := range ranks {
		rank := 7 - ri
		file := 0
		for _, r := range row {
			if r >= '1' && r <= '8' {
				file += int(r - '0')
				continue
			}
			p, ok := runePieces[r]
			if !ok {
				return nil, fmt.Errorf("chess: bad FEN piece %q", r)
			}
			if file > 7 {
				return nil, fmt.Errorf("chess: FEN rank overflow in %q", row)
			}
			b.Sq[sq(file, rank)] = p
			file++
		}
		if file != 8 {
			return nil, fmt.Errorf("chess: FEN rank %q covers %d files", row, file)
		}
	}
	switch parts[1] {
	case "w":
		b.WhiteToMove = true
	case "b":
		b.WhiteToMove = false
	default:
		return nil, fmt.Errorf("chess: bad side %q", parts[1])
	}
	b.locateKings()
	return b, nil
}

// locateKings caches king squares.
func (b *Board) locateKings() {
	for s := 0; s < 128; s++ {
		if !OnBoard(s) {
			continue
		}
		switch b.Sq[s] {
		case WK:
			b.kingSq[0] = s
		case BK:
			b.kingSq[1] = s
		}
	}
}

// Clone deep-copies the board.
func (b *Board) Clone() *Board {
	c := *b
	return &c
}

// String renders the board, white at the bottom.
func (b *Board) String() string {
	var sb strings.Builder
	for rank := 7; rank >= 0; rank-- {
		for file := 0; file < 8; file++ {
			sb.WriteRune(pieceRunes[b.Sq[sq(file, rank)]])
			if file < 7 {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	if b.WhiteToMove {
		sb.WriteString("white to move")
	} else {
		sb.WriteString("black to move")
	}
	return sb.String()
}

// Zobrist hashing: deterministic keys seeded once, so transposition
// table entries are comparable across processes and runs.
var (
	zobristPiece [13][128]uint64
	zobristSide  uint64
)

func init() {
	rng := rand.New(rand.NewSource(0x5eed0c8a))
	for p := 0; p < 13; p++ {
		for s := 0; s < 128; s++ {
			zobristPiece[p][s] = rng.Uint64()
		}
	}
	zobristSide = rng.Uint64()
}

// Hash returns the position's Zobrist key.
func (b *Board) Hash() uint64 {
	var h uint64
	for s := 0; s < 128; s++ {
		if !OnBoard(s) || b.Sq[s] == Empty {
			continue
		}
		h ^= zobristPiece[int(b.Sq[s])+6][s]
	}
	if b.WhiteToMove {
		h ^= zobristSide
	}
	return h
}

// Move is a from-to pair with captured piece bookkeeping for undo.
// Promotion is always to queen (sufficient for tactical problems).
type Move struct {
	From, To int
	Promo    bool
}

// Encode packs a move into an int for shared killer tables.
func (m Move) Encode() int {
	v := m.From<<8 | m.To
	if m.Promo {
		v |= 1 << 16
	}
	return v
}

// DecodeMove unpacks Move.Encode.
func DecodeMove(v int) Move {
	return Move{From: (v >> 8) & 0xFF, To: v & 0xFF, Promo: v&(1<<16) != 0}
}

// String formats a move as coordinate notation ("e2e4").
func (m Move) String() string {
	s := SquareName(m.From) + SquareName(m.To)
	if m.Promo {
		s += "q"
	}
	return s
}

// undo records what MakeMove changed.
type undo struct {
	move     Move
	captured Piece
	wasPiece Piece
	kings    [2]int
}

// MakeMove applies m and returns the undo record. It does not check
// legality; the search filters king captures.
func (b *Board) MakeMove(m Move) undo {
	u := undo{move: m, captured: b.Sq[m.To], wasPiece: b.Sq[m.From], kings: b.kingSq}
	p := b.Sq[m.From]
	b.Sq[m.From] = Empty
	if m.Promo {
		if p.White() {
			p = WQ
		} else {
			p = BQ
		}
	}
	b.Sq[m.To] = p
	switch u.wasPiece {
	case WK:
		b.kingSq[0] = m.To
	case BK:
		b.kingSq[1] = m.To
	}
	b.WhiteToMove = !b.WhiteToMove
	return u
}

// UnmakeMove reverses MakeMove.
func (b *Board) UnmakeMove(u undo) {
	b.Sq[u.move.From] = u.wasPiece
	b.Sq[u.move.To] = u.captured
	b.kingSq = u.kings
	b.WhiteToMove = !b.WhiteToMove
}

// KingSquare reports the king square for the given color.
func (b *Board) KingSquare(white bool) int {
	if white {
		return b.kingSq[0]
	}
	return b.kingSq[1]
}
