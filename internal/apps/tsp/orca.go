package tsp

import (
	"fmt"

	"repro/internal/orca"
	"repro/internal/orca/std"
	"repro/internal/rts"
	"repro/internal/sim"
)

// Result of one Orca TSP run.
type Result struct {
	Best   int
	Nodes  int64
	Report orca.Report
	// Runtime gives the harness access to post-run statistics
	// (group protocol counters, RTS counters).
	Runtime *orca.Runtime
}

// Params configures the Orca TSP program.
type Params struct {
	// JobDepth is the partial-route length of generated jobs
	// (default 4: fine-grained jobs for tail load balance).
	JobDepth int
	// ChunkSize is how many jobs travel per queue entry (default 6),
	// amortizing queue traffic over fine-grained jobs.
	ChunkSize int
	// SingleCopyQueue keeps the job queue on the manager's machine
	// only, instead of replicating it everywhere. The paper: "The RTS
	// described in this paper (the original one), replicates it on
	// all machines, although keeping a single copy would be better."
	SingleCopyQueue bool
	// PrimaryCopyQueue places the job queue on the point-to-point
	// runtime (primary copy on the manager, update protocol, no
	// secondaries) while the bound stays broadcast-replicated — the
	// paper's mixed strategy inside one program. Requires Config.Mixed.
	PrimaryCopyQueue bool
	// FaultTolerant runs the crash-aware variant: jobs travel through
	// a claim-tracking queue and the manager requeues a dead worker's
	// chunks, so a fault plan crashing worker machines still finds the
	// true optimum (see faults.go). Incompatible with the queue
	// placement options above.
	FaultTolerant bool
	// Workers overrides the worker count (default: one per CPU).
	Workers int
}

// Chunk is a batch of jobs taken from the queue in one operation.
type Chunk struct{ Jobs []Job }

// WireSize reports the chunk's size on the wire.
func (c Chunk) WireSize() int {
	n := 8
	for _, j := range c.Jobs {
		n += j.WireSize()
	}
	return n
}

// RunOrca executes the paper's TSP program on the given simulated
// machine: a manager fills the job queue with partial routes, one
// worker per processor repeatedly takes a job and searches it, pruning
// with the shared global bound.
func RunOrca(cfg orca.Config, inst *Instance, params Params) Result {
	if params.JobDepth == 0 {
		params.JobDepth = 4
	}
	if params.ChunkSize == 0 {
		params.ChunkSize = 6
	}
	if params.FaultTolerant {
		if params.SingleCopyQueue || params.PrimaryCopyQueue {
			panic("tsp: FaultTolerant uses its own job tracker; queue placement options do not apply")
		}
		return runOrcaFT(cfg, inst, params)
	}
	workers := params.Workers
	if workers == 0 {
		workers = cfg.Processors
	}
	rt := orca.New(cfg, std.Register)
	res := Result{}
	rep := rt.Run(func(p *orca.Proc) {
		// The manager seeds the bound with a nearest-neighbor tour
		// (an O(n^2) computation it pays for) so pruning works from
		// the start on every worker.
		nn := InitialBound(inst)
		p.Work(sim.Time(inst.N*inst.N) * 2 * sim.Microsecond)
		bound := std.NewCounter(p, nn+1)
		var queue std.Queue[Chunk]
		switch {
		case params.PrimaryCopyQueue:
			queue = std.NewQueue[Chunk](p, orca.With(orca.PrimaryCopy{
				Protocol: orca.Update, Placement: orca.SingleCopy,
			}))
		case params.SingleCopyQueue:
			queue = std.NewQueue[Chunk](p, orca.At(p.CPU()))
		default:
			queue = std.NewQueue[Chunk](p)
		}
		nodesAcc := std.NewAccum(p)
		fin := std.NewBarrier(p, workers)

		// Workers: replicated across the processors.
		for wdx := 0; wdx < workers; wdx++ {
			cpu := wdx % cfg.Processors
			p.Fork(cpu, fmt.Sprintf("tsp-worker%d", wdx), func(wp *orca.Proc) {
				var total int64
				for {
					chunk, ok := queue.Get(wp)
					if !ok {
						break
					}
					for _, job := range chunk.Jobs {
						n := SearchJob(inst, job,
							func() int {
								wp.Work(BoundReadCost)
								return bound.Value(wp)
							},
							func(totalLen int) {
								// Only write when the route actually improves
								// on the (locally readable) bound; the min
								// operation re-checks indivisibly, so the
								// read-then-write race is benign.
								if totalLen < bound.Value(wp) {
									bound.Min(wp, totalLen)
								}
							},
							func(n int64) {
								wp.Work(sim.Time(n) * NodeCost)
							})
						total += n
					}
				}
				nodesAcc.Add(wp, int(total))
				fin.Arrive(wp)
			})
		}

		// Manager: generate jobs (paying for the generation) and add
		// them to the queue best-first. The head of the queue holds
		// the large subtrees, which must spread across workers, so it
		// is added as single-job entries; the long tail of small jobs
		// is batched to amortize queue traffic.
		jobs := GenerateJobs(inst, params.JobDepth)
		p.Work(sim.Time(len(jobs)) * 50 * sim.Microsecond)
		singles := 4 * workers
		if singles > len(jobs) {
			singles = len(jobs)
		}
		for i := 0; i < singles; i++ {
			queue.Add(p, Chunk{Jobs: jobs[i : i+1]})
		}
		for lo := singles; lo < len(jobs); lo += params.ChunkSize {
			hi := lo + params.ChunkSize
			if hi > len(jobs) {
				hi = len(jobs)
			}
			queue.Add(p, Chunk{Jobs: jobs[lo:hi]})
		}
		queue.Close(p)

		fin.Wait(p)
		res.Best = bound.Value(p)
		res.Nodes = int64(nodesAcc.Value(p))
	})
	res.Report = rep
	res.Runtime = rt
	return res
}

// Sized check: jobs carry their wire size.
var _ rts.Sized = Job{}
