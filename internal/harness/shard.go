package harness

import (
	"fmt"
	"io"
	"time"

	"repro/internal/amoeba"
	"repro/internal/apps/tsp"
	"repro/internal/netsim"
	"repro/internal/orca"
	"repro/internal/orca/std"
	"repro/internal/sim"
)

// ShardExperiment measures the sharded total order: N independent
// sequencer groups on the same machines, each with its own replication
// domain, against the single group every earlier experiment uses (see
// DESIGN.md, "Sharded total order"). Three parts:
//
//   - counter throughput sweep: every machine streams no-result
//     assigns to a counter homed in its own domain, P=8..512 × shard
//     counts {1,4,16,P/8}. One group flatlines — every write funnels
//     through one sequencer and is applied by every machine — while
//     sharding with domains scales the write throughput with the
//     shard count. Runs use a modern cost profile (1 Gb/s wire,
//     microsecond kernel paths): sharding is the structure for the
//     millions-of-ops regime, not the paper's 10 Mb/s testbed.
//   - TSP optimum: the paper's Figure 2 application with its shared
//     objects hash-spread over shards (full spans); the optimum must
//     match the single-group run bit-for-bit.
//   - crash isolation: one shard's sequencer machine dies mid-run;
//     workers on the surviving shards must finish in (near) baseline
//     time while the crashed shard recovers and completes after.
//
// Every configuration runs twice and the harness panics if the two
// fingerprints differ, and at full scale if P=256 with 16 shards does
// not reach at least 3x the single-group write throughput on the same
// trace.
func ShardExperiment(w io.Writer, scale Scale) {
	type sweepRow struct {
		procs, shards int
		ops           int64
		opsPerSec     float64
	}
	procs := []int{8, 64, 256, 512}
	shardsFor := func(p int) []int {
		set := []int{1, 4, 16, p / 8}
		var out []int
		for _, s := range set {
			dup := false
			for _, t := range out {
				dup = dup || t == s
			}
			if !dup && s >= 1 && s <= p && p%s == 0 {
				out = append(out, s)
			}
		}
		return out
	}
	opsFor := func(p int) int {
		switch {
		case p >= 512:
			return 50
		case p >= 256:
			return 100
		default:
			return 200
		}
	}
	tspProcs, tspShards, cities := []int{8, 64}, []int{1, 4, 8}, 12
	crashP, crashShards, crashOps := 8, 4, 60
	if scale == Quick {
		procs = []int{8, 32}
		shardsFor = func(p int) []int { return []int{1, 4} }
		opsFor = func(int) int { return 100 }
		tspProcs, tspShards, cities = []int{8}, []int{1, 4}, 11
		crashOps = 40
	}

	// Modern cost profile: a 1 Gb/s switch-class wire and
	// microsecond-scale kernel paths, against which the ordering
	// structure (not the 1992 CPU) is the bottleneck.
	modernNet := netsim.Params{
		BandwidthBps:     1_000_000_000,
		PropDelay:        5 * sim.Microsecond,
		FrameOverhead:    42,
		MTU:              1500,
		BroadcastCapable: true,
	}
	modernKernel := amoeba.Costs{
		Interrupt: 5 * sim.Microsecond,
		Protocol:  3 * sim.Microsecond,
		Send:      6 * sim.Microsecond,
		Switch:    2 * sim.Microsecond,
		Quantum:   amoeba.DefaultCosts().Quantum,
	}

	fmt.Fprintln(w, "== SHARD: N sequencer groups, domain replication, scale-out past one total order ==")
	fmt.Fprintf(w, "-- counter: per-machine no-result assigns, modern profile (1 Gb/s, µs kernel), batching on --\n")

	// runCounter executes the counter workload once: worker m creates
	// its own counter inside its domain's shard and streams opsPer
	// assigns through the combining buffer. The issued trace is
	// identical across shard counts at fixed P — only the ordering
	// structure changes.
	runCounter := func(p, shards, opsPer int) (sweepRow, string) {
		cfg := orca.Config{Processors: p, RTS: orca.Broadcast, Seed: 1,
			Net: &modernNet, KernelCosts: &modernKernel, Batching: orca.DefaultBatching()}
		if shards > 1 {
			cfg.Shards = shards
			cfg.ShardSpan = p / shards
		}
		span := p
		if shards > 1 {
			span = p / shards
		}
		rt := orca.New(cfg, std.Register)
		rep := rt.Run(func(pr *orca.Proc) {
			fin := std.NewBarrier(pr, p)
			for cpu := 0; cpu < p; cpu++ {
				cpu := cpu
				pr.Fork(cpu, fmt.Sprintf("shard-w%d", cpu), func(wp *orca.Proc) {
					var opts []orca.Option
					if shards > 1 {
						opts = append(opts, orca.OnShard(cpu/span))
					}
					c := std.NewCounter(wp, 0, opts...)
					for i := 0; i < opsPer; i++ {
						c.Assign(wp, cpu*opsPer+i)
					}
					fin.Arrive(wp)
				})
			}
			fin.Wait(pr)
		})
		if rep.TimedOut {
			panic(fmt.Sprintf("harness: shard counter run timed out (P=%d S=%d, blocked: %v)", p, shards, rep.Blocked))
		}
		st := rep.RTS
		ops := st.BcastWrites + st.BatchedOps
		row := sweepRow{procs: p, shards: shards, ops: ops,
			opsPerSec: float64(ops) / rep.Elapsed.Seconds()}
		fp := fmt.Sprintf("elapsed=%d msgs=%d frames=%d writes=%d batched=%d fwd=%d",
			int64(rep.Elapsed), rep.Net.Messages, rep.Net.Frames,
			st.BcastWrites, st.BatchedOps, st.Forwarded)
		return row, fp
	}

	var rows [][]string
	byConfig := map[[2]int]sweepRow{}
	for _, p := range procs {
		opsPer := opsFor(p)
		var base float64
		for _, s := range shardsFor(p) {
			start := time.Now()
			row, fp1 := runCounter(p, s, opsPer)
			_, fp2 := runCounter(p, s, opsPer)
			wall := time.Since(start)
			if fp1 != fp2 {
				panic(fmt.Sprintf("harness: shard counter run not deterministic (P=%d S=%d):\n  %s\n  %s", p, s, fp1, fp2))
			}
			if s == 1 {
				base = row.opsPerSec
			}
			byConfig[[2]int{p, s}] = row
			speedup := row.opsPerSec / base
			span := "all"
			if s > 1 {
				span = fmt.Sprint(p / s)
			}
			rows = append(rows, []string{
				fmt.Sprint(p), fmt.Sprint(s), span, fmt.Sprint(row.ops),
				fmt.Sprintf("%.2fM", row.opsPerSec/1e6), fmt.Sprintf("%.2fx", speedup),
				(wall / 2).Round(time.Millisecond).String(),
			})
		}
	}
	Table(w, []string{"procs", "shards", "span", "writes", "writes/s", "vs 1 shard", "wall/run"}, rows)
	if scale == Full {
		one, sixteen := byConfig[[2]int{256, 1}], byConfig[[2]int{256, 16}]
		ratio := sixteen.opsPerSec / one.opsPerSec
		if ratio < 3 {
			panic(fmt.Sprintf("harness: P=256 S=16 throughput only %.2fx the single group, want >= 3x", ratio))
		}
		fmt.Fprintf(w, "P=256: 16 shards deliver %.1fx the single group's write throughput.\n", ratio)
	}
	fmt.Fprintln(w)

	// TSP: sharding the total order must not change what the program
	// computes. Shared objects hash-spread over full-span shards.
	fmt.Fprintf(w, "-- TSP %d cities: optimum must match the single group --\n", cities)
	inst := tsp.Generate(cities, 5)
	rows = rows[:0]
	best := -1
	for _, p := range tspProcs {
		for _, s := range tspShards {
			cfg := orca.Config{Processors: p, RTS: orca.Broadcast, Seed: 1}
			if s > 1 {
				cfg.Shards = s
			}
			fp := ""
			var r tsp.Result
			for i := 0; i < 2; i++ {
				r = tsp.RunOrca(cfg, inst, tsp.Params{})
				got := fmt.Sprintf("best=%d elapsed=%d msgs=%d", r.Best, int64(r.Report.Elapsed), r.Report.Net.Messages)
				if fp == "" {
					fp = got
				} else if fp != got {
					panic(fmt.Sprintf("harness: sharded TSP not deterministic (P=%d S=%d):\n  %s\n  %s", p, s, fp, got))
				}
			}
			if best == -1 {
				best = r.Best
			} else if r.Best != best {
				panic(fmt.Sprintf("harness: TSP optimum drifted under sharding: %d vs %d (P=%d S=%d)", r.Best, best, p, s))
			}
			rows = append(rows, []string{
				fmt.Sprint(p), fmt.Sprint(s), fmt.Sprint(r.Best), fmtTime(r.Report.Elapsed),
				fmt.Sprint(r.Report.Net.Frames),
			})
		}
	}
	Table(w, []string{"procs", "shards", "best", "virtual", "frames"}, rows)
	fmt.Fprintln(w)

	// Crash isolation: shard k sequences on machine k (full spans,
	// rotation 0). Machine 1 dies mid-run, taking exactly shard 1's
	// sequencer; workers bound to the other shards must finish in
	// near-baseline time while shard 1 recovers.
	fmt.Fprintf(w, "-- crash isolation at P=%d, %d shards: machine 1 (shard 1's sequencer) dies mid-run --\n",
		crashP, crashShards)
	runCrash := func(name string, crash bool) (doneSurvivors, doneAll sim.Time, rep orca.Report) {
		cfg := orca.Config{Processors: crashP, RTS: orca.Broadcast, Shards: crashShards, Seed: 1}
		if crash {
			cfg.Faults = &netsim.FaultPlan{Crashes: []netsim.Crash{{Node: 1, At: 30 * sim.Millisecond}}}
		}
		workers := []int{2, 3, 4, 5, 6, 7}
		doneAt := make([]sim.Time, crashP)
		shardOf := func(cpu int) int { return cpu % crashShards }
		fp := ""
		for i := 0; i < 2; i++ {
			rt := orca.New(cfg, std.Register)
			rep = rt.Run(func(pr *orca.Proc) {
				counters := make([]orca.Object, crashP)
				for _, cpu := range workers {
					counters[cpu] = pr.NewWith(std.IntObj, orca.Opts(orca.OnShard(shardOf(cpu))))
				}
				fin := std.NewBarrier(pr, len(workers))
				for _, cpu := range workers {
					cpu := cpu
					pr.Fork(cpu, fmt.Sprintf("crash-w%d", cpu), func(wp *orca.Proc) {
						for k := 0; k < crashOps; k++ {
							wp.Invoke(counters[cpu], "inc")
							wp.Work(sim.Millisecond)
						}
						doneAt[cpu] = wp.Now()
						fin.Arrive(wp)
					})
				}
				fin.Wait(pr)
				for _, cpu := range workers {
					if got := pr.InvokeI(counters[cpu], "value"); got != crashOps {
						panic(fmt.Sprintf("harness: shard crash worker %d counted %d, want %d", cpu, got, crashOps))
					}
				}
			})
			if rep.TimedOut {
				panic(fmt.Sprintf("harness: shard crash run %s timed out (blocked: %v)", name, rep.Blocked))
			}
			got := fmt.Sprintf("elapsed=%d msgs=%d", int64(rep.Elapsed), rep.Net.Messages)
			if fp == "" {
				fp = got
			} else if fp != got {
				panic(fmt.Sprintf("harness: shard crash run %s not deterministic:\n  %s\n  %s", name, fp, got))
			}
		}
		for _, cpu := range workers {
			d := doneAt[cpu]
			if d > doneAll {
				doneAll = d
			}
			if shardOf(cpu) != 1 && d > doneSurvivors {
				doneSurvivors = d
			}
		}
		return doneSurvivors, doneAll, rep
	}
	baseSurv, baseAll, baseRep := runCrash("baseline", false)
	crashSurv, crashAll, crashRep := runCrash("crash", true)
	rows = rows[:0]
	for _, rr := range []struct {
		name      string
		surv, all sim.Time
		rep       orca.Report
	}{{"no-fault", baseSurv, baseAll, baseRep}, {"seq-crash", crashSurv, crashAll, crashRep}} {
		rows = append(rows, []string{
			rr.name, fmtTime(rr.surv), fmtTime(rr.all), fmtTime(rr.rep.Elapsed),
			fmt.Sprint(rr.rep.RTS.Elections + rr.rep.RTS.Takeovers),
			fmt.Sprintf("%.0fµs", rr.rep.RTS.RecoveryVirtualUS),
			fmt.Sprint(len(rr.rep.Crashes)),
		})
	}
	Table(w, []string{"scenario", "survivors done", "all done", "virtual", "elect+takeover", "recovery", "crashes"}, rows)
	slack := float64(crashSurv) / float64(baseSurv)
	if slack > 1.15 {
		panic(fmt.Sprintf("harness: surviving shards slowed %.2fx under a one-shard sequencer crash, want <= 1.15x", slack))
	}
	fmt.Fprintf(w, "Workers on the surviving shards finished within %.1f%% of baseline while\n", (slack-1)*100)
	fmt.Fprintln(w, "shard 1 elected a new sequencer and its workers completed afterwards:")
	fmt.Fprintln(w, "one shard's recovery is not a stop-the-world event.")
	fmt.Fprintln(w)
}
