package rts

import (
	"math/bits"

	"repro/internal/sim"
)

// Virtual-latency accounting. Serving workloads are judged by their
// tail: a throughput figure hides the requests that waited behind a
// hot shard or a sequencer frame. LatencyHist is the repo's one
// latency representation — a fixed log-bucket histogram of virtual
// durations, deterministic by construction (bucket boundaries are
// fixed powers of two split into linear sub-buckets, so identical op
// streams produce bit-identical histograms and percentiles; no
// sampling, no reservoir randomness). The orca layer owns a named
// registry of them (Runtime.Histogram) and publishes the registry in
// Report.Latency; the harness and -bench-json render p50/p95/p99.

const (
	// latSubBits splits each power-of-two octave into 2^latSubBits
	// linear sub-buckets: ~6% value resolution at every magnitude.
	latSubBits = 4
	latSub     = 1 << latSubBits
	// latBuckets covers the full non-negative int64 range: values
	// below latSub are exact, then (63-latSubBits+1) octaves of latSub
	// sub-buckets each.
	latBuckets = (64 - latSubBits) * latSub
)

// LatencyHist is a fixed log-bucket histogram of virtual durations.
// The zero value is an empty histogram ready to use. Record, Merge,
// and the percentile queries are all deterministic: the histogram is
// a pure function of the recorded multiset.
type LatencyHist struct {
	counts [latBuckets]int64
	n      int64
	sum    sim.Time
	max    sim.Time
}

// latIndex maps a duration to its bucket. Values in [0, latSub) are
// exact; a larger value v in [2^k, 2^(k+1)) lands in one of latSub
// linear sub-buckets of its octave.
func latIndex(d sim.Time) int {
	v := uint64(d)
	if v < latSub {
		return int(v)
	}
	exp := bits.Len64(v) - 1 - latSubBits
	sub := int(v>>uint(exp)) & (latSub - 1)
	return (exp+1)*latSub + sub
}

// latUpper is the inclusive upper bound of bucket i — the value the
// percentile queries report, so a percentile never understates the
// recorded durations in its bucket.
func latUpper(i int) sim.Time {
	if i < latSub {
		return sim.Time(i)
	}
	exp := uint(i/latSub - 1)
	sub := uint64(i%latSub) + latSub
	return sim.Time((sub << exp) + (1 << exp) - 1)
}

// Record adds one duration. Negative durations clamp to zero (a
// request cannot complete before it arrived).
func (h *LatencyHist) Record(d sim.Time) {
	if d < 0 {
		d = 0
	}
	h.counts[latIndex(d)]++
	h.n++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Merge adds o's recordings into h.
func (h *LatencyHist) Merge(o *LatencyHist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count reports the number of recorded durations.
func (h *LatencyHist) Count() int64 { return h.n }

// Sum reports the total of the recorded durations.
func (h *LatencyHist) Sum() sim.Time { return h.sum }

// Mean reports the average recorded duration (zero when empty).
func (h *LatencyHist) Mean() sim.Time {
	if h.n == 0 {
		return 0
	}
	return h.sum / sim.Time(h.n)
}

// Max reports the largest recorded duration exactly (not bucketed).
func (h *LatencyHist) Max() sim.Time { return h.max }

// Percentile reports the q-quantile (0 < q <= 1) as the upper bound
// of the bucket holding the ceil(q*n)-th smallest recording — a
// deterministic, conservative figure within ~6% of the true value.
func (h *LatencyHist) Percentile(q float64) sim.Time {
	if h.n == 0 {
		return 0
	}
	rank := int64(q * float64(h.n))
	if float64(rank) < q*float64(h.n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			u := latUpper(i)
			if u > h.max {
				u = h.max // never report beyond the observed maximum
			}
			return u
		}
	}
	return h.max
}
