// Per-object placement policies.
//
// The paper treats replication strategy as a per-object decision: the
// dynamic placement of §3.2.2 chooses each object's copy set from its
// own read/write ratio, and the authors note TSP's write-mostly job
// queue would be better kept in one copy while the bound stays fully
// replicated. This file makes that decision part of object creation:
// a Policy names a strategy (fully replicated, replicated on a subset,
// primary copy under a point-to-point protocol), creation options
// attach one to Proc.NewWith / TypeBuilder.NewWith, and a program
// configured with Config.Mixed can host objects under different
// strategies side by side. Objects created without a policy follow
// Config.RTS exactly as before.
package orca

import (
	"fmt"

	"repro/internal/rts"
)

// Re-exported protocol and placement names, so policy literals do not
// need a second import.
const (
	// Invalidation discards secondary copies on writes.
	Invalidation = rts.Invalidation
	// Update ships write operations to secondary copies.
	Update = rts.Update

	// DynamicPlacement replicates from read/write-ratio statistics.
	DynamicPlacement = rts.DynamicPlacement
	// SingleCopy keeps exactly the primary copy.
	SingleCopy = rts.SingleCopy
	// FullReplication installs a copy on every machine at creation.
	FullReplication = rts.FullReplication
)

// Policy declares where a shared object's replicas live and how they
// are kept consistent. The concrete policies are Default, Replicated,
// ReplicatedOn, and PrimaryCopy.
type Policy interface {
	applyPolicy(*createSpec)
}

// placementMode is the resolved policy family.
type placementMode int

const (
	modeDefault placementMode = iota // follow Config.RTS
	modeReplicated
	modePrimaryCopy
	modeAdaptive
)

// shardMode says how a sharded runtime picks the object's sequencer
// group (see OnShard and Sharded).
type shardMode int

const (
	shardAuto     shardMode = iota // hash of the object id
	shardExplicit                  // OnShard: the named shard
	shardKeyed                     // Sharded: key mod shard count
)

// createSpec is the accumulated result of a creation-option list.
type createSpec struct {
	mode      placementMode
	nodes     []int
	protocol  rts.P2PProtocol
	placement rts.Placement
	adapt     rts.AdaptConfig
	shardSel  shardMode
	shard     int // OnShard target / Sharded key
}

type defaultPolicy struct{}

func (defaultPolicy) applyPolicy(cs *createSpec) {
	cs.mode = modeDefault
	cs.nodes = nil
}

// Default is the back-compat policy: the object is hosted by the
// runtime Config.RTS selects, exactly as a plain New. It is what an
// empty option list means.
var Default Policy = defaultPolicy{}

type replicatedPolicy struct{ nodes []int }

func (p replicatedPolicy) applyPolicy(cs *createSpec) {
	cs.mode = modeReplicated
	cs.nodes = p.nodes
}

// Replicated places the object on the broadcast runtime, fully
// replicated: local reads everywhere, writes through the total order —
// the paper's §3.2.1 strategy, chosen per object.
var Replicated Policy = replicatedPolicy{}

// ReplicatedOn is Replicated restricted to the given machines — the
// partial-replication optimization. Machines outside the set forward
// their operations to a replica holder.
func ReplicatedOn(nodes ...int) Policy {
	return replicatedPolicy{nodes: append([]int(nil), nodes...)}
}

// PrimaryCopy places the object on the point-to-point runtime: the
// primary copy lives on the creating machine, secondaries follow the
// Placement policy and are kept consistent by the Protocol — the
// paper's §3.2.2 strategy, chosen per object. The zero value means the
// invalidation protocol with dynamic placement.
type PrimaryCopy struct {
	Protocol  rts.P2PProtocol
	Placement rts.Placement
}

func (p PrimaryCopy) applyPolicy(cs *createSpec) {
	cs.mode = modePrimaryCopy
	cs.protocol = p.Protocol
	cs.placement = p.Placement
	cs.nodes = nil
}

type adaptivePolicy struct{ cfg rts.AdaptConfig }

func (p adaptivePolicy) applyPolicy(cs *createSpec) {
	cs.mode = modeAdaptive
	cs.adapt = p.cfg
	cs.nodes = nil
}

// Adaptive places the object under the online placement controller:
// it starts fully replicated on the broadcast runtime and re-places
// itself mid-run — replicated to primary copy, primary copy to
// replicated, primary re-homing toward the hottest writer — as the
// observed access pattern warrants (see rts/adapt.go). The zero
// AdaptConfig selects the default thresholds. Requires Config.Mixed:
// the controller migrates objects between both runtime subsystems.
func Adaptive(cfg rts.AdaptConfig) Policy { return adaptivePolicy{cfg: cfg} }

// Option configures one object creation. Build options with With and
// At, and pass them to Proc.NewWith or TypeBuilder.NewWith.
type Option func(*createSpec)

// With selects the object's placement policy. Options apply in order
// and a policy is a whole placement decision: it replaces any replica
// restriction an earlier option set, so an At meant to combine with a
// policy must come after its With.
func With(pol Policy) Option {
	return func(cs *createSpec) { pol.applyPolicy(cs) }
}

// At restricts the object's replicas to the given machines. Combined
// with (or defaulting to) a replicated policy it means ReplicatedOn;
// with PrimaryCopy it pins the primary, which must be the creating
// machine.
func At(nodes ...int) Option {
	cp := append([]int(nil), nodes...)
	return func(cs *createSpec) { cs.nodes = cp }
}

// OnShard pins the object to sequencer group k of a sharded runtime
// (Config.Shards > 1). k must name an existing shard whose span
// contains the creating machine. Creation on a non-sharded runtime
// panics: a pinned shard that silently degrades to "the one total
// order" would hide a misconfiguration.
func OnShard(k int) Option {
	return func(cs *createSpec) {
		cs.shardSel = shardExplicit
		cs.shard = k
	}
}

// Sharded selects the object's sequencer group as key modulo the shard
// count — the caller-controlled analogue of the default id hash, for
// programs that want related objects spread deterministically (a KV
// store striping its buckets). Requires a sharded runtime, like
// OnShard.
func Sharded(key int) Option {
	return func(cs *createSpec) {
		cs.shardSel = shardKeyed
		cs.shard = key
	}
}

// Opts bundles options into the slice NewWith takes, purely for
// call-site readability: NewWith(t, orca.Opts(orca.With(pol)), args).
func Opts(opts ...Option) []Option { return opts }

// resolveSpec folds an option list into a creation spec.
func resolveSpec(opts []Option) createSpec {
	var cs createSpec
	for _, o := range opts {
		o(&cs)
	}
	return cs
}

// NewWith creates a shared object of a registered type under the given
// creation options. With no options it is exactly New: the object
// follows Config.RTS. Policies beyond what the configured runtime can
// host (a PrimaryCopy object on a pure broadcast runtime, a Replicated
// object on a pure point-to-point runtime) require Config.Mixed and
// panic otherwise, naming the missing capability.
func (p *Proc) NewWith(typeName string, opts []Option, args ...any) Object {
	cs := resolveSpec(opts)
	return Object{id: p.rt.create(p.w, typeName, cs, args), rt: p.rt}
}

// create routes one creation spec onto the configured runtime system.
func (rt *Runtime) create(w *rts.Worker, typeName string, cs createSpec, args []any) rts.ObjID {
	if cs.shardSel != shardAuto {
		if _, ok := rt.sys.(*rts.ShardedRTS); !ok {
			panic("orca: OnShard/Sharded require a sharded runtime (Config.Shards > 1)")
		}
	}
	switch sys := rt.sys.(type) {
	case *rts.ShardedRTS:
		switch cs.mode {
		case modePrimaryCopy:
			panic("orca: PrimaryCopy placement requires the point-to-point runtime or Config.Mixed")
		case modeAdaptive:
			panic("orca: Adaptive placement requires Config.Mixed")
		default:
			shard := -1
			switch cs.shardSel {
			case shardExplicit:
				if cs.shard < 0 || cs.shard >= sys.Shards() {
					panic(fmt.Sprintf("orca: OnShard(%d) out of range [0,%d)", cs.shard, sys.Shards()))
				}
				shard = cs.shard
			case shardKeyed:
				n := sys.Shards()
				shard = ((cs.shard % n) + n) % n
			}
			return sys.CreateSharded(w, typeName, shard, cs.nodes, args...)
		}
	case *rts.MixedRTS:
		switch cs.mode {
		case modeReplicated:
			return sys.CreateReplicated(w, typeName, cs.nodes, args...)
		case modeAdaptive:
			return sys.CreateAdaptive(w, typeName, cs.adapt, args...)
		case modePrimaryCopy:
			checkPrimaryNodes(w, cs.nodes)
			return sys.CreatePrimaryCopy(w, typeName, cs.protocol, cs.placement, args...)
		default:
			if cs.nodes != nil {
				// A bare At follows the default runtime's placement
				// form: partial replication under a broadcast default.
				if rt.cfg.RTS == Broadcast {
					return sys.CreateReplicated(w, typeName, cs.nodes, args...)
				}
				panic("orca: At without a policy needs a broadcast default runtime; say With(ReplicatedOn(...)) or With(PrimaryCopy{...})")
			}
			return sys.Create(w, typeName, args...)
		}
	case *rts.BroadcastRTS:
		switch cs.mode {
		case modePrimaryCopy:
			panic("orca: PrimaryCopy placement requires the point-to-point runtime or Config.Mixed")
		case modeAdaptive:
			panic("orca: Adaptive placement requires Config.Mixed")
		default:
			if cs.nodes != nil {
				return sys.CreateOn(w, typeName, cs.nodes, args...)
			}
			return sys.Create(w, typeName, args...)
		}
	case *rts.P2PRTS:
		switch cs.mode {
		case modeReplicated:
			panic("orca: Replicated placement requires broadcast hardware; use RTS: Broadcast or Config.Mixed")
		case modeAdaptive:
			panic("orca: Adaptive placement requires Config.Mixed")
		case modePrimaryCopy:
			checkPrimaryNodes(w, cs.nodes)
			return sys.CreateWith(w, typeName, cs.protocol, cs.placement, args...)
		default:
			if cs.nodes != nil {
				panic("orca: At requires a replicated policy (the point-to-point runtime places copies dynamically)")
			}
			return sys.Create(w, typeName, args...)
		}
	default:
		panic(fmt.Sprintf("orca: unknown runtime system %T", rt.sys))
	}
}

// checkPrimaryNodes validates an At restriction on a primary-copy
// object: the primary always lives on the creating machine, so the
// only meaningful pin is that machine itself.
func checkPrimaryNodes(w *rts.Worker, nodes []int) {
	if nodes == nil {
		return
	}
	if len(nodes) != 1 || nodes[0] != w.Node() {
		panic(fmt.Sprintf("orca: a primary copy lives on its creating machine %d; At%v cannot move it", w.Node(), nodes))
	}
}
