package rts

import (
	"repro/internal/amoeba"
	"repro/internal/sim"
)

// Worker is the execution context a simulated application thread uses
// to talk to a runtime system: a process bound to a machine, plus a
// pending-work accumulator.
//
// Application compute and cheap local operations (object reads) accrue
// into the accumulator instead of becoming individual simulation
// events; the total is flushed to the machine's CPU before any
// communication or blocking step, and whenever it exceeds
// FlushThreshold. This keeps event counts tractable for workloads that
// perform millions of local reads while bounding the timing error well
// below protocol latencies.
type Worker struct {
	P *sim.Proc
	M *amoeba.Machine

	// FlushThreshold bounds the accumulation lag. Zero means the
	// DefaultFlushThreshold.
	FlushThreshold sim.Time

	pending sim.Time

	// res is the reusable result buffer for local reads. A read's
	// result slice is only valid until the worker's next operation;
	// every in-tree caller consumes results immediately, and the write
	// paths (whose results are retained by waiters) never use it.
	res []any

	// batch is the write-combining buffer a batching BroadcastRTS
	// attaches lazily on the worker's first combinable write; nil
	// otherwise (including always under the point-to-point runtime).
	batch *writeBuf
}

// SyncShared flushes the worker's write-combining buffer (if any) and
// blocks until every buffered and in-flight operation has been
// applied on this worker's machine. The runtimes call it at every
// point where buffering could become observable; the process layer
// calls it on fork and exit.
func (w *Worker) SyncShared() {
	if w.batch != nil {
		w.batch.sync(w)
	}
}

// FlushShared sends any buffered operations without waiting for their
// application — used before a blocking step (such as Sleep) that does
// not observe shared state.
func (w *Worker) FlushShared() {
	if w.batch != nil {
		w.batch.flush(w.P)
	}
}

// applyLocal executes a non-mutating operation through the zero-alloc
// ApplyInto path when the definition provides it, reusing the worker's
// scratch buffer; otherwise it falls back to the allocating Apply.
func (w *Worker) applyLocal(op *OpDef, s State, args []any) []any {
	if op.ApplyInto == nil {
		return op.Apply(s, args)
	}
	w.res = op.ApplyInto(s, args, w.res[:0])
	return w.res
}

// DefaultFlushThreshold is the default accumulation bound.
const DefaultFlushThreshold = 500 * sim.Microsecond

// NewWorker creates a worker context for process p on machine m.
func NewWorker(p *sim.Proc, m *amoeba.Machine) *Worker {
	return &Worker{P: p, M: m, FlushThreshold: DefaultFlushThreshold}
}

// Charge accrues d of CPU work, flushing if the pending total crosses
// the threshold.
func (w *Worker) Charge(d sim.Time) {
	w.pending += d
	thr := w.FlushThreshold
	if thr <= 0 {
		thr = DefaultFlushThreshold
	}
	if w.pending >= thr {
		w.Flush()
	}
}

// Accrue adds d of CPU work without ever flushing (and therefore
// without blocking). Runtime code uses it on paths that must stay
// non-blocking between a guard evaluation and the operation's
// execution; the accrued work is charged at the next Flush.
func (w *Worker) Accrue(d sim.Time) { w.pending += d }

// Flush charges all pending work to the machine's CPU, blocking while
// the CPU is busy. Call before any externally visible action.
func (w *Worker) Flush() {
	if w.pending > 0 {
		d := w.pending
		w.pending = 0
		w.M.Compute(w.P, d)
	}
}

// Node reports the machine id the worker runs on.
func (w *Worker) Node() int { return w.M.ID() }
