// Faults: crash a machine mid-computation and watch the stack
// recover. A crash-aware TSP search runs on eight simulated machines;
// the fault plan kills machine 7 — which also hosts the group
// sequencer — halfway through. The group layer elects a new sequencer
// ("if the sequencer machine subsequently crashes, the remaining
// members elect a new one"), the manager requeues the dead worker's
// claimed jobs, and the run still reports the same optimum as a
// healthy run. Crashes are scheduled events in virtual time, so the
// faulty run is exactly as deterministic as the healthy one.
package main

import (
	"fmt"

	"repro/internal/apps/tsp"
	"repro/internal/netsim"
	"repro/internal/orca"
)

func main() {
	inst := tsp.Generate(12, 5)

	healthy := tsp.RunOrca(orca.Config{
		Processors: 8, RTS: orca.Broadcast, Seed: 1,
	}, inst, tsp.Params{})
	fmt.Printf("healthy run:  optimum %d in %v virtual time\n", healthy.Best, healthy.Report.Elapsed)

	cfg := orca.Config{
		Processors: 8, RTS: orca.Broadcast, Seed: 1,
		Sequencer: 7, // put the sequencer on the doomed machine
		Faults: &netsim.FaultPlan{Crashes: []netsim.Crash{
			{Node: 7, At: healthy.Report.Elapsed / 2},
		}},
	}
	r := tsp.RunOrca(cfg, inst, tsp.Params{FaultTolerant: true})

	fmt.Printf("crashed run:  optimum %d in %v virtual time\n", r.Best, r.Report.Elapsed)
	for _, c := range r.Report.Crashes {
		fmt.Printf("  crash: machine %d at %v, %d process(es) killed\n", c.Node, c.At, c.ProcsKilled)
	}
	var elections int64
	for node, gs := range r.Runtime.GroupStats() {
		if node != 7 {
			elections += gs.Elections
		}
	}
	fmt.Printf("  recovery: %d election votes among the survivors, %d runtime crashes observed\n",
		elections, r.Report.RTS.Crashes)
	if r.Best != healthy.Best {
		panic("crash run missed the optimum")
	}
	fmt.Println("the computation survived the crash and found the same optimum")
}
