// Mixed placement: the paper's TSP remark, measured inside one
// program. §3.2.2 observes that replication strategy should be a
// per-object decision — TSP's write-mostly job queue "would be better"
// kept in one copy while the global bound stays fully replicated.
// This example runs the same TSP instance three ways and prints the
// broadcast load and runtime counters of each:
//
//   - replicated: queue and bound both on the broadcast runtime
//   - partial: the queue replicated only on the manager's machine
//     (still broadcast; workers' operations are forwarded)
//   - mixed: the queue as a primary copy on the point-to-point
//     runtime, the bound broadcast-replicated — Config.Mixed hosts
//     both runtimes on the same simulated machines
package main

import (
	"fmt"

	"repro/internal/apps/tsp"
	"repro/internal/orca"
)

func main() {
	inst := tsp.Generate(12, 5)
	const procs = 8
	variants := []struct {
		name   string
		cfg    orca.Config
		params tsp.Params
	}{
		{"replicated", orca.Config{Processors: procs, RTS: orca.Broadcast, Seed: 1}, tsp.Params{}},
		{"partial", orca.Config{Processors: procs, RTS: orca.Broadcast, Seed: 1}, tsp.Params{SingleCopyQueue: true}},
		{"mixed", orca.Config{Processors: procs, RTS: orca.Broadcast, Mixed: true, Seed: 1}, tsp.Params{PrimaryCopyQueue: true}},
	}
	fmt.Printf("TSP, %d cities, %d processors — the job queue three ways:\n\n", inst.N, procs)
	for _, v := range variants {
		r := tsp.RunOrca(v.cfg, inst, v.params)
		st := r.Report.RTS
		fmt.Printf("%-10s  best=%d  time=%v  broadcasts=%d  bcast-writes=%d  forwarded=%d  p2p-writes=%d\n",
			v.name, r.Best, r.Report.Elapsed, r.Report.Net.CountsByKind["grp-data"],
			st.BcastWrites, st.Forwarded, st.P2PWrites)
	}
	fmt.Println("\nSame optimum each way; the queue's traffic leaves the total order")
	fmt.Println("under partial and mixed placement, so it no longer interrupts every")
	fmt.Println("machine — the bound's reads stay local replica accesses throughout.")
}
