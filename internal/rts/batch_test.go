package rts

import (
	"fmt"
	"testing"

	"repro/internal/amoeba"
	"repro/internal/group"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// newBatchedTB builds a broadcast-RTS cluster with the batching
// pipeline enabled in both layers (group frame packing + RTS write
// combining).
func newBatchedTB(t *testing.T, seed int64, n int, bc group.BatchConfig) (*tb, *BroadcastRTS) {
	t.Helper()
	env := sim.New(seed)
	nw := netsim.New(env, n, netsim.DefaultParams())
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	gcfg := group.DefaultConfig(members)
	gcfg.Batch = bc
	ms := make([]*amoeba.Machine, n)
	gs := make([]*group.Member, n)
	for i := 0; i < n; i++ {
		ms[i] = amoeba.NewMachine(env, nw, i, amoeba.DefaultCosts())
		gs[i] = group.Join(ms[i], gcfg)
	}
	r := NewBroadcastRTS(testRegistry(), DefaultCosts(), ms, gs)
	r.EnableBatching(bc)
	return &tb{env: env, net: nw, ms: ms, sys: r}, r
}

func testBatch() group.BatchConfig {
	return group.BatchConfig{MaxOps: 8, MaxBytes: 1024, Linger: 100 * sim.Microsecond}
}

// TestReadOwnWriteAfterBufferedWrite: a worker that buffers no-result
// writes and immediately reads the object must observe its own
// writes — the read syncs the combining buffer first. A read of an
// UNRELATED object must not sync (that is the pipelining).
func TestReadOwnWriteAfterBufferedWrite(t *testing.T) {
	b, r := newBatchedTB(t, 3, 3, testBatch())
	b.spawn(1, "writer", func(w *Worker) {
		cell := r.Create(w, "intcell", 0)
		other := r.Create(w, "intcell", 7)
		for i := 1; i <= 3; i++ {
			if res := r.Invoke(w, cell, "set", i*10); res != nil {
				t.Errorf("buffered set returned %v, want nil", res)
			}
		}
		if r.batchedOps < 3 {
			t.Errorf("batchedOps = %d, want >= 3 (sets should combine)", r.batchedOps)
		}
		// Unrelated read: served with the writes still buffered.
		if got := r.Invoke(w, other, "get")[0].(int); got != 7 {
			t.Errorf("other get = %d, want 7", got)
		}
		if w.batch == nil || (len(w.batch.ops) == 0 && w.batch.flight == nil) {
			t.Error("unrelated read drained the combining buffer")
		}
		// Read-own-write: must sync and observe the last set.
		if got := r.Invoke(w, cell, "get")[0].(int); got != 30 {
			t.Errorf("read-own-write get = %d, want 30", got)
		}
		if len(w.batch.ops) != 0 || w.batch.flight != nil {
			t.Error("read of a written object left the buffer unsynced")
		}
	})
	b.run(5 * sim.Second)
	// Every replica converged on the last write.
	for node := 0; node < 3; node++ {
		if s, ok := r.PeekState(node, 1); !ok || s.(*intCellState).v != 30 {
			t.Errorf("node %d replica = %v, want 30", node, s)
		}
	}
	b.done()
}

// TestBatchedPutsDeliverExactlyOnce: a producer streams buffered
// queue puts; a consumer on another machine takes them through the
// guarded get. Every item arrives exactly once and in order — the
// regression test for duplicate submission during a blocking flush.
func TestBatchedPutsDeliverExactlyOnce(t *testing.T) {
	b, r := newBatchedTB(t, 5, 3, testBatch())
	const n = 100
	var got []int
	b.spawn(0, "producer", func(w *Worker) {
		q := r.Create(w, "queue")
		for i := 0; i < n; i++ {
			r.Invoke(w, q, "put", i)
		}
	})
	b.spawn(2, "consumer", func(w *Worker) {
		// The create broadcast also reaches this machine; object 1 is
		// the queue.
		for i := 0; i < n; i++ {
			got = append(got, r.Invoke(w, ObjID(1), "get")[0].(int))
		}
	})
	b.run(30 * sim.Second)
	if len(got) != n {
		t.Fatalf("consumer took %d items, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("item %d = %d, want %d (order or duplication broke)", i, v, i)
		}
	}
	if r.batchedOps < int64(n) {
		t.Errorf("batchedOps = %d, want >= %d", r.batchedOps, n)
	}
	if r.batchFrames == 0 || r.batchFrames >= r.batchedOps {
		t.Errorf("batchFrames = %d for %d ops: no amortization", r.batchFrames, r.batchedOps)
	}
	b.done()
}

// TestBufferedWriteWakesGuard: a buffered flag set must still wake a
// guard-blocked reader on another machine (the frame-boundary drain
// covers replicas written mid-frame).
func TestBufferedWriteWakesGuard(t *testing.T) {
	b, r := newBatchedTB(t, 9, 3, testBatch())
	awoke := false
	b.spawn(0, "setter", func(w *Worker) {
		f := r.Create(w, "flag")
		r.Invoke(w, f, "set", true) // buffered; linger flushes it
	})
	b.spawn(1, "waiter", func(w *Worker) {
		if got := r.Invoke(w, ObjID(1), "await")[0].(bool); got {
			awoke = true
		}
	})
	b.run(5 * sim.Second)
	if !awoke {
		t.Fatal("guarded reader never woke after a buffered write")
	}
	b.done()
}

// TestBufferedThenSyncWriteOrder: a synchronous (result-bearing)
// write issued after buffered writes must observe them in the total
// order — the sync path drains the buffer first.
func TestBufferedThenSyncWriteOrder(t *testing.T) {
	b, r := newBatchedTB(t, 11, 3, testBatch())
	b.spawn(1, "writer", func(w *Worker) {
		cell := r.Create(w, "intcell", 100)
		r.Invoke(w, cell, "set", 50)                            // buffered
		if got := r.Invoke(w, cell, "min", 60)[0].(bool); got { // sync write
			t.Error("min(60) lowered the cell: the buffered set(50) was not applied first")
		}
	})
	b.run(5 * sim.Second)
	for node := 0; node < 3; node++ {
		if s, ok := r.PeekState(node, 1); !ok || s.(*intCellState).v != 50 {
			t.Errorf("node %d replica = %v, want 50", node, s)
		}
	}
	b.done()
}

// TestBatchedManyWriters drives concurrent buffered writers on every
// machine and checks replica convergence plus the amortization
// counters under contention.
func TestBatchedManyWriters(t *testing.T) {
	const n, per = 4, 50
	b, r := newBatchedTB(t, 13, n, testBatch())
	var q ObjID
	b.spawn(0, "creator", func(w *Worker) {
		q = r.Create(w, "queue")
		for i := 0; i < per; i++ {
			r.Invoke(w, q, "put", fmt.Sprintf("n0-%d", i))
		}
	})
	for node := 1; node < n; node++ {
		node := node
		b.spawn(node, "writer", func(w *Worker) {
			for i := 0; i < per; i++ {
				r.Invoke(w, ObjID(1), "put", fmt.Sprintf("n%d-%d", node, i))
			}
		})
	}
	b.run(30 * sim.Second)
	want := -1
	for node := 0; node < n; node++ {
		s, ok := r.PeekState(node, 1)
		if !ok {
			t.Fatalf("node %d holds no replica", node)
		}
		items := s.(*queueState).items
		if want == -1 {
			want = len(items)
		} else if len(items) != want {
			t.Fatalf("replicas diverged: node %d has %d items, node 0 has %d", node, len(items), want)
		}
	}
	if want != n*per {
		t.Fatalf("replicas hold %d items, want %d", want, n*per)
	}
	if r.batchFrames*2 >= r.batchedOps {
		t.Errorf("weak amortization: %d frames for %d ops", r.batchFrames, r.batchedOps)
	}
	b.done()
}
