package atpg

import (
	"fmt"

	"repro/internal/orca"
	"repro/internal/orca/std"
	"repro/internal/sim"
)

// Mode selects the parallel ATPG variant.
type Mode int

const (
	// Static is the paper's basic program: the fault set is statically
	// partitioned; each processor computes patterns for its share.
	// Speedups are close to linear.
	Static Mode = iota
	// StaticFaultSim adds the fault-simulation optimization with the
	// shared detected-fault object: faster in absolute terms (the
	// paper: about a factor of 3) but with inferior speedups, partly
	// from communication, partly from load imbalance.
	StaticFaultSim
	// DynamicFaultSim replaces the static partition with a job queue,
	// the "more dynamic work distribution strategy" the paper lists
	// as future work.
	DynamicFaultSim
)

// String names the parallelization mode for tables.
func (m Mode) String() string {
	switch m {
	case Static:
		return "static"
	case StaticFaultSim:
		return "static+faultsim"
	case DynamicFaultSim:
		return "dynamic+faultsim"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Params configures a parallel ATPG run.
type Params struct {
	Mode          Mode
	MaxBacktracks int // default 30
	ChunkSize     int // dynamic mode: faults per job (default 8)
	Workers       int // default: one per CPU
}

// Result of a parallel ATPG run.
type Result struct {
	Detected   int
	Aborted    int
	Untestable int
	Patterns   int
	Report     orca.Report
	Runtime    *orca.Runtime
}

// RunOrca executes the parallel ATPG program.
func RunOrca(cfg orca.Config, c *Circuit, faults []Fault, params Params) Result {
	if params.MaxBacktracks == 0 {
		params.MaxBacktracks = 30
	}
	if params.ChunkSize == 0 {
		params.ChunkSize = 8
	}
	workers := params.Workers
	if workers == 0 {
		workers = cfg.Processors
	}
	rt := orca.New(cfg, std.Register)
	res := Result{}
	rep := rt.Run(func(p *orca.Proc) {
		detected := std.NewBitSet(p, len(faults))
		detAcc := std.NewAccum(p)
		abortAcc := std.NewAccum(p)
		untestAcc := std.NewAccum(p)
		patAcc := std.NewAccum(p)
		fin := std.NewBarrier(p, workers)
		var queue std.Queue[[]int]
		if params.Mode == DynamicFaultSim {
			queue = std.NewQueue[[]int](p)
		}

		worker := func(wp *orca.Proc, nextFault func() (int, bool)) {
			var det, abrt, untest, pats int
			useFS := params.Mode != Static
			for {
				fi, ok := nextFault()
				if !ok {
					break
				}
				if useFS && detected.Contains(wp, fi) {
					continue // covered by an earlier pattern
				}
				pr := Podem(c, faults[fi], params.MaxBacktracks)
				wp.Work(sim.Time(pr.GateEvals) * GateEvalCost)
				switch {
				case pr.Detected:
					pats++
					if !useFS {
						// Basic program: no sharing, no communication.
						det++
						break
					}
					newly := []int{fi}
					fs := NewFaultSimulator(c, pr.Pattern)
					for oi := range faults {
						if oi != fi && !detected.Contains(wp, oi) && fs.Detects(faults[oi]) {
							newly = append(newly, oi)
						}
					}
					wp.Work(sim.Time(fs.GateEvals) * GateEvalCost)
					// One indivisible write shares everything this
					// pattern covers.
					det += detected.AddMany(wp, newly)
				case pr.Aborted:
					abrt++
				default:
					untest++
				}
			}
			detAcc.Add(wp, det)
			abortAcc.Add(wp, abrt)
			untestAcc.Add(wp, untest)
			patAcc.Add(wp, pats)
			fin.Arrive(wp)
		}

		for wdx := 0; wdx < workers; wdx++ {
			wdx := wdx
			cpu := wdx % cfg.Processors
			switch params.Mode {
			case Static, StaticFaultSim:
				// Static partition: worker w owns faults w, w+P, ...
				p.Fork(cpu, fmt.Sprintf("atpg%d", wdx), func(wp *orca.Proc) {
					next := wdx - workers
					worker(wp, func() (int, bool) {
						next += workers
						return next, next < len(faults)
					})
				})
			case DynamicFaultSim:
				p.Fork(cpu, fmt.Sprintf("atpg%d", wdx), func(wp *orca.Proc) {
					var chunk []int
					worker(wp, func() (int, bool) {
						for len(chunk) == 0 {
							next, ok := queue.Get(wp)
							if !ok {
								return 0, false
							}
							chunk = next
						}
						fi := chunk[0]
						chunk = chunk[1:]
						return fi, true
					})
				})
			}
		}

		if params.Mode == DynamicFaultSim {
			for lo := 0; lo < len(faults); lo += params.ChunkSize {
				hi := lo + params.ChunkSize
				if hi > len(faults) {
					hi = len(faults)
				}
				idxs := make([]int, 0, hi-lo)
				for i := lo; i < hi; i++ {
					idxs = append(idxs, i)
				}
				queue.Add(p, idxs)
			}
			queue.Close(p)
		}

		fin.Wait(p)
		res.Detected = detAcc.Value(p)
		res.Aborted = abortAcc.Value(p)
		res.Untestable = untestAcc.Value(p)
		res.Patterns = patAcc.Value(p)
	})
	res.Report = rep
	res.Runtime = rt
	return res
}
