package harness

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// SpeedupPoint is one measurement in a processor sweep.
type SpeedupPoint struct {
	Procs    int
	Elapsed  sim.Time
	Speedup  float64
	Messages int64
	Extra    map[string]any
}

// Series is a named speedup curve.
type Series struct {
	Name   string
	Points []SpeedupPoint
}

// RenderCurve draws an ASCII speedup-vs-processors plot in the style
// of the paper's Figures 2 and 3, including the dotted perfect-speedup
// diagonal.
func RenderCurve(w io.Writer, title string, series []Series, maxProcs int) {
	fmt.Fprintf(w, "%s\n", title)
	height := maxProcs
	if height > 16 {
		height = 16
	}
	marks := []byte{'*', 'o', '+', 'x'}
	grid := make([][]byte, height+1)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", maxProcs*3+2))
	}
	plot := func(p int, s float64, mark byte) {
		row := int(s*float64(height)/float64(maxProcs) + 0.5)
		if row < 0 {
			row = 0
		}
		if row > height {
			row = height
		}
		col := p * 3
		if col < len(grid[0]) {
			grid[row][col] = mark
		}
	}
	for p := 1; p <= maxProcs; p++ {
		plot(p, float64(p), '.')
	}
	for si, s := range series {
		for _, pt := range s.Points {
			plot(pt.Procs, pt.Speedup, marks[si%len(marks)])
		}
	}
	for row := height; row >= 0; row-- {
		label := "  "
		v := row * maxProcs / height
		if row%2 == 0 {
			label = fmt.Sprintf("%2d", v)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(grid[row]))
	}
	fmt.Fprintf(w, "   +%s\n    ", strings.Repeat("-", maxProcs*3+2))
	for p := 1; p <= maxProcs; p++ {
		fmt.Fprintf(w, "%3d", p)
	}
	fmt.Fprintln(w)
	for si, s := range series {
		fmt.Fprintf(w, "    %c = %s\n", marks[si%len(marks)], s.Name)
	}
	fmt.Fprintln(w, "    . = perfect speedup")
}

// Table prints a simple aligned table.
func Table(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(headers)
	seps := make([]string, len(headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range rows {
		line(r)
	}
}

// fmtTime renders a virtual time compactly for tables.
func fmtTime(t sim.Time) string { return t.String() }
