package tsp

import (
	"testing"

	"repro/internal/orca"
)

// TestSingleCopyQueueCorrect exercises the paper's suggested
// optimization: the job queue kept as a single copy on the manager's
// machine, with worker operations forwarded.
func TestSingleCopyQueueCorrect(t *testing.T) {
	inst := Generate(10, 11)
	want, _ := SolveSeq(inst)
	res := RunOrca(orca.Config{Processors: 4, RTS: orca.Broadcast, Seed: 1}, inst,
		Params{SingleCopyQueue: true})
	if res.Report.TimedOut {
		t.Fatalf("timed out; blocked: %v", res.Report.Blocked)
	}
	if res.Best != want {
		t.Fatalf("best = %d, want %d", res.Best, want)
	}
}

// TestSingleCopyQueueReducesBroadcastLoad compares replica-update work
// across the machines: with a single-copy queue, queue traffic no
// longer interrupts every machine.
func TestSingleCopyQueueReducesBroadcastLoad(t *testing.T) {
	inst := Generate(12, 11)
	repl := RunOrca(orca.Config{Processors: 8, RTS: orca.Broadcast, Seed: 1}, inst, Params{})
	single := RunOrca(orca.Config{Processors: 8, RTS: orca.Broadcast, Seed: 1}, inst,
		Params{SingleCopyQueue: true})
	if repl.Best != single.Best {
		t.Fatalf("different optima: %d vs %d", repl.Best, single.Best)
	}
	// Broadcast count must drop: queue adds/gets are no longer
	// broadcast to all machines.
	replBcast := repl.Report.Net.CountsByKind["grp-data"]
	singleBcast := single.Report.Net.CountsByKind["grp-data"]
	if singleBcast >= replBcast {
		t.Fatalf("single-copy queue did not reduce broadcasts: %d vs %d", singleBcast, replBcast)
	}
	t.Logf("replicated queue: %d broadcasts, %v elapsed", replBcast, repl.Report.Elapsed)
	t.Logf("single-copy queue: %d broadcasts, %v elapsed", singleBcast, single.Report.Elapsed)
}
