package orca

import (
	"sort"

	"repro/internal/rts"
	"repro/internal/sim"
)

// Fault execution. A Config.Faults plan makes machine crashes part of
// the simulated program: at each crash instant the runtime takes the
// machine down in one cascade — kernel, threads, process accounting,
// runtime-system routing — so the surviving processes keep running
// against a smaller machine. The paper's claim that "if the sequencer
// machine subsequently crashes, the remaining members elect a new one"
// (and, more broadly, that the shared-object model hides machine
// boundaries) is exercised end-to-end by crash plans: the group layer
// re-elects, the runtime systems re-route and re-home, and the
// application either tolerates the lost processes or re-issues their
// work (see the crash-aware TSP and ACP variants in internal/apps).

// CrashRecord reports one executed crash.
type CrashRecord struct {
	// Node is the crashed machine.
	Node int
	// At is the virtual time of the crash.
	At sim.Time
	// ProcsKilled is how many live Orca processes died on the machine.
	ProcsKilled int
	// ForksReaped is how many in-flight forks targeting the machine
	// were abandoned.
	ForksReaped int
}

// procRec tracks one Orca process for crash accounting: when its
// machine crashes the runtime settles the process's liveness here and
// the goroutine's own exit path (which never runs again) is skipped.
type procRec struct {
	node int
	done bool
}

// crashNode executes one fault-plan crash: kill the machine (which
// kills every thread on it), settle the liveness accounting of the
// Orca processes that died, abandon in-flight forks targeting the
// machine, and tell the runtime system so it routes around the corpse.
// Runs in event context at the crash instant.
func (rt *Runtime) crashNode(node int) {
	m := rt.machines[node]
	if m.Crashed() {
		return
	}
	rec := CrashRecord{Node: node, At: rt.env.Now()}
	m.Crash()
	for _, pr := range rt.procs {
		if pr.node == node && !pr.done {
			pr.done = true
			rec.ProcsKilled++
			rt.liveProcs--
		}
	}
	// In-flight forks die with either endpoint. A fork *targeting* the
	// dead machine will never start (its message is undeliverable or
	// lands on a dead object manager); a fork *from* the dead machine
	// may never have reached the sequencer, and its sender can no
	// longer retransmit, so it is abandoned too (if its message does
	// arrive, startFork finds no entry and ignores it). Both were
	// counted live at Fork time.
	for fid, fe := range rt.forks {
		if fe.cpu == node || fe.origin == node {
			delete(rt.forks, fid)
			rec.ForksReaped++
			rt.liveProcs--
		}
	}
	if ca, ok := rt.sys.(rts.CrashAware); ok {
		ca.NodeCrashed(node)
	}
	rt.crashes = append(rt.crashes, rec)
	rt.env.Tracef("orca: node %d crashed (%d procs, %d forks reaped)", node, rec.ProcsKilled, rec.ForksReaped)
	if rt.liveProcs == 0 {
		rt.env.Stop()
	}
}

// DeadNodes reports the machines crashed so far, in ascending order.
// Crash-aware programs poll it (worker liveness is not a shared
// object: it changes underneath the consistency protocols).
func (rt *Runtime) DeadNodes() []int {
	var out []int
	for _, c := range rt.crashes {
		out = append(out, c.Node)
	}
	sort.Ints(out)
	return out
}

// Crashes reports the executed crash records so far.
func (rt *Runtime) Crashes() []CrashRecord {
	return append([]CrashRecord(nil), rt.crashes...)
}

// DeadNodes reports the machines that have crashed so far, ascending.
func (p *Proc) DeadNodes() []int { return p.rt.DeadNodes() }

// NodeDown reports whether a machine has crashed.
func (p *Proc) NodeDown(node int) bool { return p.rt.machines[node].Crashed() }
