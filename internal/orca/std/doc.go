// Package std provides the standard shared-object types the paper's
// applications are built from: the global minimum bound and job queue
// of TSP's replicated-worker paradigm, boolean arrays and flags for
// ACP's termination protocol, transposition and killer tables for the
// chess program, and bit sets for ATPG's fault sharing.
//
// Each type is an Orca abstract data type: encapsulated state, read
// and write operations, guards where the paper's programs block. The
// types are declared with the typed builder of package orca, so every
// operation is a typed descriptor; the concrete wrapper types
// (Counter, Queue, Barrier, Flag, BoolArray, Table, Killer, BitSet,
// Accum) are the programming surface — their methods take a
// *orca.Proc and real Go values, and the wire-level []any encoding
// underneath is an implementation detail. All types register with an
// rts.Registry via Register, and remain invokable through the untyped
// Proc.Invoke under their registered operation names.
//
// Downward: descriptors compile to rts.OpDefs. Upward: the
// applications in internal/apps compose these types (and add their
// own app-specific ones in the same style).
package std
