package std

import (
	"repro/internal/orca"
	"repro/internal/rts"
)

// Type names, as registered.
const (
	IntObj       = "std.int"
	JobQueueObj  = "std.jobqueue"
	BarrierObj   = "std.barrier"
	FlagObj      = "std.flag"
	BoolArrayObj = "std.boolarray"
	TableObj     = "std.table"
	KillerObj    = "std.killer"
	BitSetObj    = "std.bitset"
	AccumObj     = "std.accum"
)

// Register adds all standard types to a registry.
func Register(reg *rts.Registry) {
	intB.Register(reg)
	queueB.Register(reg)
	barrierB.Register(reg)
	flagB.Register(reg)
	boolArrayB.Register(reg)
	tableB.Register(reg)
	killerB.Register(reg)
	bitSetB.Register(reg)
	accumB.Register(reg)
}

// --- Counter ----------------------------------------------------------
//
// A shared integer. Its Min operation is TSP's global bound update:
// "The indivisible operation that updates the object first checks if
// the new value actually is less than the current value, to prevent
// race conditions."

type intState struct{ v int }

// WireSize implements rts.Sized; it matches the type's FixedSize.
func (s *intState) WireSize() int { return 8 }

var (
	intB = orca.NewType(IntObj, func(args []any) *intState {
		s := &intState{}
		if len(args) > 0 {
			s.v = args[0].(int)
		}
		return s
	}).
		CloneWith(func(s *intState) *intState { c := *s; return &c }).
		FixedSize(8)

	intValue  = orca.DefRead0(intB, "value", func(s *intState) int { return s.v })
	intAssign = orca.DefUpdate(intB, "assign", func(s *intState, v int) { s.v = v })
	intAdd    = orca.DefWrite(intB, "add", func(s *intState, d int) int { s.v += d; return s.v })
	intInc    = orca.DefWrite0(intB, "inc", func(s *intState) int { old := s.v; s.v++; return old })
	intMin    = orca.DefWrite(intB, "min", func(s *intState, v int) bool {
		if v < s.v {
			s.v = v
			return true
		}
		return false
	})
	intMax = orca.DefWrite(intB, "max", func(s *intState, v int) bool {
		if v > s.v {
			s.v = v
			return true
		}
		return false
	})
	// awaitGE blocks until the value reaches the argument; used for
	// simple completion counting.
	intAwaitGE = orca.DefRead(intB, "awaitGE", func(s *intState, _ int) int { return s.v }).
			Guard(func(s *intState, n int) bool { return s.v >= n })
)

// Counter is a shared integer object.
type Counter struct{ h orca.Handle[*intState] }

// NewCounter creates a shared integer initialized to init.
func NewCounter(p *orca.Proc, init int, opts ...orca.Option) Counter {
	return Counter{h: intB.NewWith(p, opts, init)}
}

// Handle exposes the typed handle (for statistics).
func (c Counter) Handle() orca.Handle[*intState] { return c.h }

// Value reads the current value (a local replica read).
func (c Counter) Value(p *orca.Proc) int { return intValue.Call(p, c.h) }

// Assign sets the value.
func (c Counter) Assign(p *orca.Proc, v int) { intAssign.Call(p, c.h, v) }

// Add adds d and returns the new value.
func (c Counter) Add(p *orca.Proc, d int) int { return intAdd.Call(p, c.h, d) }

// Inc increments and returns the previous value.
func (c Counter) Inc(p *orca.Proc) int { return intInc.Call(p, c.h) }

// Min indivisibly lowers the value to v if v is smaller, reporting
// whether it did — the paper's TSP bound update.
func (c Counter) Min(p *orca.Proc, v int) bool { return intMin.Call(p, c.h, v) }

// Max indivisibly raises the value to v if v is larger, reporting
// whether it did.
func (c Counter) Max(p *orca.Proc, v int) bool { return intMax.Call(p, c.h, v) }

// AwaitGE blocks until the value is at least n, returning it.
func (c Counter) AwaitGE(p *orca.Proc, n int) int { return intAwaitGE.Call(p, c.h, n) }

// --- Queue ------------------------------------------------------------
//
// The replicated-worker job queue: workers repeatedly take a job; the
// guarded Get suspends while the queue is empty and returns (zero,
// false) once the queue is closed and drained.

type jobQueueState struct {
	jobs   []any
	closed bool
	// bytes caches the summed wire size of the queued jobs, updated
	// incrementally by add/get so sizing a replica is O(1) instead of
	// a scan of the whole queue on every applied write.
	bytes int
}

// WireSize implements rts.Sized.
func (q *jobQueueState) WireSize() int { return 16 + q.bytes }

var (
	queueB = orca.NewType(JobQueueObj, func([]any) *jobQueueState { return &jobQueueState{} }).
		CloneWith(func(q *jobQueueState) *jobQueueState {
			return &jobQueueState{jobs: append([]any(nil), q.jobs...), closed: q.closed, bytes: q.bytes}
		}).
		SizedBy((*jobQueueState).WireSize)

	queueAdd = orca.DefUpdate(queueB, "add", func(q *jobQueueState, job any) {
		q.jobs = append(q.jobs, job)
		q.bytes += rts.SizeOfValue(job)
	})
	queueGet = orca.DefWrite0x2(queueB, "get", func(q *jobQueueState) (any, bool) {
		if len(q.jobs) == 0 {
			return nil, false
		}
		j := q.jobs[0]
		q.jobs[0] = nil
		q.jobs = q.jobs[1:]
		q.bytes -= rts.SizeOfValue(j)
		return j, true
	}).Guard(func(q *jobQueueState) bool { return len(q.jobs) > 0 || q.closed })
	queueClose = orca.DefUpdate0(queueB, "close", func(q *jobQueueState) { q.closed = true })
	queueLen   = orca.DefRead0(queueB, "len", func(q *jobQueueState) int { return len(q.jobs) })
)

// Queue is a shared FIFO job queue with elements of type T.
type Queue[T any] struct{ h orca.Handle[*jobQueueState] }

// NewQueue creates a shared job queue under the given creation
// options — the queue is the type most often worth a non-default
// placement (the paper's remark about TSP's write-mostly queue).
func NewQueue[T any](p *orca.Proc, opts ...orca.Option) Queue[T] {
	return Queue[T]{h: queueB.NewWith(p, opts)}
}

// NewQueueOn creates a job queue replicated only on the given
// processors.
//
// Deprecated: use NewQueue with orca.With(orca.ReplicatedOn(nodes...)).
func NewQueueOn[T any](p *orca.Proc, nodes []int) Queue[T] {
	return NewQueue[T](p, orca.With(orca.Replicated), orca.At(nodes...))
}

// Handle exposes the typed handle (for statistics).
func (q Queue[T]) Handle() orca.Handle[*jobQueueState] { return q.h }

// Add appends a job.
func (q Queue[T]) Add(p *orca.Proc, job T) { queueAdd.Call(p, q.h, job) }

// Get blocks until a job is available or the queue is closed; it
// returns (zero, false) once the queue is closed and drained.
func (q Queue[T]) Get(p *orca.Proc) (T, bool) {
	raw, ok := queueGet.Call(p, q.h)
	if !ok || raw == nil {
		// raw is nil either because the queue drained (!ok) or because
		// a nil element was legitimately stored under an interface T.
		var zero T
		return zero, ok
	}
	return raw.(T), true
}

// Close marks the queue closed; blocked Gets drain and return.
func (q Queue[T]) Close(p *orca.Proc) { queueClose.Call(p, q.h) }

// Len reads the current queue length.
func (q Queue[T]) Len(p *orca.Proc) int { return queueLen.Call(p, q.h) }

// --- Barrier ----------------------------------------------------------
//
// A counting barrier: processes Arrive and then Wait until all n have
// arrived. Reusable via generations is not needed by the paper's
// programs; a fresh barrier per phase is idiomatic Orca.

type barrierState struct {
	target int
	count  int
}

// WireSize implements rts.Sized; it matches the type's FixedSize.
func (s *barrierState) WireSize() int { return 16 }

var (
	barrierB = orca.NewType(BarrierObj, func(args []any) *barrierState {
		return &barrierState{target: args[0].(int)}
	}).
		CloneWith(func(s *barrierState) *barrierState { c := *s; return &c }).
		FixedSize(16)

	barrierArrive = orca.DefWrite0(barrierB, "arrive", func(s *barrierState) int {
		s.count++
		return s.count
	})
	barrierWait  = orca.DefAwait(barrierB, "wait", func(s *barrierState) bool { return s.count >= s.target })
	barrierCount = orca.DefRead0(barrierB, "count", func(s *barrierState) int { return s.count })
)

// Barrier is a shared counting barrier.
type Barrier struct{ h orca.Handle[*barrierState] }

// NewBarrier creates a barrier for n arrivals.
func NewBarrier(p *orca.Proc, n int, opts ...orca.Option) Barrier {
	return Barrier{h: barrierB.NewWith(p, opts, n)}
}

// Handle exposes the typed handle (for statistics).
func (b Barrier) Handle() orca.Handle[*barrierState] { return b.h }

// Arrive counts the caller in and returns the arrival count.
func (b Barrier) Arrive(p *orca.Proc) int { return barrierArrive.Call(p, b.h) }

// Wait blocks until all arrivals have happened.
func (b Barrier) Wait(p *orca.Proc) { barrierWait.Call(p, b.h) }

// Count reads the arrival count.
func (b Barrier) Count(p *orca.Proc) int { return barrierCount.Call(p, b.h) }

// --- Flag -------------------------------------------------------------
//
// A shared boolean, e.g. ACP's "no solution exists" object: "Each
// process reads the object before doing new work, and quits if the
// value is true."

type flagState struct{ b bool }

// WireSize implements rts.Sized; it matches the type's FixedSize.
func (s *flagState) WireSize() int { return 1 }

var (
	flagB = orca.NewType(FlagObj, func(args []any) *flagState {
		s := &flagState{}
		if len(args) > 0 {
			s.b = args[0].(bool)
		}
		return s
	}).
		CloneWith(func(s *flagState) *flagState { c := *s; return &c }).
		FixedSize(1)

	flagSet   = orca.DefUpdate(flagB, "set", func(s *flagState, v bool) { s.b = v })
	flagValue = orca.DefRead0(flagB, "value", func(s *flagState) bool { return s.b })
	flagAwait = orca.DefAwait(flagB, "await", func(s *flagState) bool { return s.b })
)

// Flag is a shared boolean object.
type Flag struct{ h orca.Handle[*flagState] }

// NewFlag creates a shared boolean initialized to init.
func NewFlag(p *orca.Proc, init bool, opts ...orca.Option) Flag {
	return Flag{h: flagB.NewWith(p, opts, init)}
}

// Handle exposes the typed handle (for statistics).
func (f Flag) Handle() orca.Handle[*flagState] { return f.h }

// Set writes the flag.
func (f Flag) Set(p *orca.Proc, v bool) { flagSet.Call(p, f.h, v) }

// Value reads the flag (a local replica read).
func (f Flag) Value(p *orca.Proc) bool { return flagValue.Call(p, f.h) }

// Await blocks until the flag is true.
func (f Flag) Await(p *orca.Proc) { flagAwait.Call(p, f.h) }

// --- BoolArray --------------------------------------------------------
//
// ACP's work and result objects: an array of booleans with indivisible
// test operations for the termination protocol.

type boolArrayState struct{ bits []bool }

// WireSize implements rts.Sized.
func (s *boolArrayState) WireSize() int { return 8 + len(s.bits) }

var (
	boolArrayB = orca.NewType(BoolArrayObj, func(args []any) *boolArrayState {
		n := args[0].(int)
		s := &boolArrayState{bits: make([]bool, n)}
		if len(args) > 1 {
			v := args[1].(bool)
			for i := range s.bits {
				s.bits[i] = v
			}
		}
		return s
	}).
		CloneWith(func(s *boolArrayState) *boolArrayState {
			return &boolArrayState{bits: append([]bool(nil), s.bits...)}
		}).
		SizedBy((*boolArrayState).WireSize)

	boolArraySet = orca.DefUpdate2(boolArrayB, "set", func(s *boolArrayState, i int, v bool) {
		s.bits[i] = v
	})
	boolArraySetMany = orca.DefUpdate2(boolArrayB, "setMany", func(s *boolArrayState, idxs []int, v bool) {
		for _, i := range idxs {
			s.bits[i] = v
		}
	})
	// claim indivisibly tests-and-clears a bit, so exactly one process
	// wins a work item.
	boolArrayClaim = orca.DefWrite(boolArrayB, "claim", func(s *boolArrayState, i int) bool {
		was := s.bits[i]
		s.bits[i] = false
		return was
	})
	boolArrayGet = orca.DefRead(boolArrayB, "get", func(s *boolArrayState, i int) bool {
		return s.bits[i]
	})
	boolArrayAnyTrue = orca.DefRead0(boolArrayB, "anyTrue", func(s *boolArrayState) bool {
		for _, b := range s.bits {
			if b {
				return true
			}
		}
		return false
	})
	boolArrayAllTrue = orca.DefRead0(boolArrayB, "allTrue", func(s *boolArrayState) bool {
		for _, b := range s.bits {
			if !b {
				return false
			}
		}
		return true
	})
	boolArrayCountTrue = orca.DefRead0(boolArrayB, "countTrue", func(s *boolArrayState) int {
		n := 0
		for _, b := range s.bits {
			if b {
				n++
			}
		}
		return n
	})
	// anyTrueIn reports whether any of the given indices is set;
	// workers poll their own partition with one read.
	boolArrayAnyTrueIn = orca.DefRead(boolArrayB, "anyTrueIn", func(s *boolArrayState, idxs []int) bool {
		for _, i := range idxs {
			if s.bits[i] {
				return true
			}
		}
		return false
	})
)

// BoolArray is a shared array of booleans.
type BoolArray struct{ h orca.Handle[*boolArrayState] }

// NewBoolArray creates an array of n booleans, all set to init.
func NewBoolArray(p *orca.Proc, n int, init bool, opts ...orca.Option) BoolArray {
	return BoolArray{h: boolArrayB.NewWith(p, opts, n, init)}
}

// Handle exposes the typed handle (for statistics).
func (a BoolArray) Handle() orca.Handle[*boolArrayState] { return a.h }

// Set writes one element.
func (a BoolArray) Set(p *orca.Proc, i int, v bool) { boolArraySet.Call(p, a.h, i, v) }

// SetMany writes the given elements to v in one indivisible operation.
func (a BoolArray) SetMany(p *orca.Proc, idxs []int, v bool) { boolArraySetMany.Call(p, a.h, idxs, v) }

// Claim indivisibly tests-and-clears element i, reporting whether the
// caller won it.
func (a BoolArray) Claim(p *orca.Proc, i int) bool { return boolArrayClaim.Call(p, a.h, i) }

// Get reads one element.
func (a BoolArray) Get(p *orca.Proc, i int) bool { return boolArrayGet.Call(p, a.h, i) }

// AnyTrue reports whether any element is set.
func (a BoolArray) AnyTrue(p *orca.Proc) bool { return boolArrayAnyTrue.Call(p, a.h) }

// AllTrue reports whether every element is set.
func (a BoolArray) AllTrue(p *orca.Proc) bool { return boolArrayAllTrue.Call(p, a.h) }

// CountTrue counts the set elements.
func (a BoolArray) CountTrue(p *orca.Proc) int { return boolArrayCountTrue.Call(p, a.h) }

// AnyTrueIn reports whether any of the given indices is set.
func (a BoolArray) AnyTrueIn(p *orca.Proc, idxs []int) bool {
	return boolArrayAnyTrueIn.Call(p, a.h, idxs)
}

// --- Table ------------------------------------------------------------
//
// The chess transposition table: a fixed number of buckets indexed by
// key modulo size with always-replace policy, the classic design. The
// shared version broadcasts every store — exactly the communication
// overhead the paper discusses.

type tableEntry struct {
	key uint64
	val int64
	ok  bool
}

type tableState struct{ buckets []tableEntry }

// WireSize implements rts.Sized.
func (s *tableState) WireSize() int { return 8 + 17*len(s.buckets) }

var (
	tableB = orca.NewType(TableObj, func(args []any) *tableState {
		return &tableState{buckets: make([]tableEntry, args[0].(int))}
	}).
		CloneWith(func(s *tableState) *tableState {
			return &tableState{buckets: append([]tableEntry(nil), s.buckets...)}
		}).
		SizedBy((*tableState).WireSize)

	tableStore = orca.DefUpdate2(tableB, "store", func(s *tableState, k uint64, v int64) {
		s.buckets[k%uint64(len(s.buckets))] = tableEntry{key: k, val: v, ok: true}
	})
	tableLookup = orca.DefRead1x2(tableB, "lookup", func(s *tableState, k uint64) (int64, bool) {
		e := s.buckets[k%uint64(len(s.buckets))]
		if e.ok && e.key == k {
			return e.val, true
		}
		return 0, false
	})
)

// Table is a shared fixed-size hash table from uint64 keys to int64
// values with always-replace buckets.
type Table struct{ h orca.Handle[*tableState] }

// NewTable creates a table with the given bucket count.
func NewTable(p *orca.Proc, buckets int, opts ...orca.Option) Table {
	return Table{h: tableB.NewWith(p, opts, buckets)}
}

// Handle exposes the typed handle (for statistics).
func (t Table) Handle() orca.Handle[*tableState] { return t.h }

// Store writes an entry (always-replace).
func (t Table) Store(p *orca.Proc, key uint64, val int64) { tableStore.Call(p, t.h, key, val) }

// Lookup reads the entry for key, reporting whether it was present.
func (t Table) Lookup(p *orca.Proc, key uint64) (int64, bool) {
	return tableLookup.Call(p, t.h, key)
}

// --- Killer -----------------------------------------------------------
//
// The killer table: per search depth, the two most recent moves that
// caused beta cutoffs. Moves are encoded as ints by the application.

type killerState struct {
	moves [][2]int
}

// WireSize implements rts.Sized.
func (s *killerState) WireSize() int { return 8 + 16*len(s.moves) }

var (
	killerB = orca.NewType(KillerObj, func(args []any) *killerState {
		return &killerState{moves: make([][2]int, args[0].(int))}
	}).
		CloneWith(func(s *killerState) *killerState {
			return &killerState{moves: append([][2]int(nil), s.moves...)}
		}).
		SizedBy((*killerState).WireSize)

	killerAdd = orca.DefUpdate2(killerB, "add", func(s *killerState, d, mv int) {
		if d < 0 || d >= len(s.moves) {
			return
		}
		if s.moves[d][0] != mv {
			s.moves[d][1] = s.moves[d][0]
			s.moves[d][0] = mv
		}
	})
	killerGet = orca.DefRead1x2(killerB, "get", func(s *killerState, d int) (int, int) {
		if d < 0 || d >= len(s.moves) {
			return 0, 0
		}
		return s.moves[d][0], s.moves[d][1]
	})
)

// Killer is a shared killer-move table.
type Killer struct{ h orca.Handle[*killerState] }

// NewKiller creates a killer table covering the given ply count.
func NewKiller(p *orca.Proc, plies int, opts ...orca.Option) Killer {
	return Killer{h: killerB.NewWith(p, opts, plies)}
}

// Handle exposes the typed handle (for statistics).
func (k Killer) Handle() orca.Handle[*killerState] { return k.h }

// Add records a cutoff move at ply d.
func (k Killer) Add(p *orca.Proc, ply, move int) { killerAdd.Call(p, k.h, ply, move) }

// Get reads the two killer moves for ply d.
func (k Killer) Get(p *orca.Proc, ply int) (int, int) { return killerGet.Call(p, k.h, ply) }

// --- BitSet -----------------------------------------------------------
//
// ATPG's detected-fault set: "All processes share an object containing
// the gates for which test patterns have been generated."

type bitSetState struct {
	words []uint64
	count int
}

// WireSize implements rts.Sized.
func (b *bitSetState) WireSize() int { return 16 + 8*len(b.words) }

func (b *bitSetState) has(i int) bool { return b.words[i/64]&(1<<(uint(i)%64)) != 0 }
func (b *bitSetState) set(i int) bool {
	w, m := i/64, uint64(1)<<(uint(i)%64)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.count++
	return true
}

var (
	bitSetB = orca.NewType(BitSetObj, func(args []any) *bitSetState {
		n := args[0].(int)
		return &bitSetState{words: make([]uint64, (n+63)/64)}
	}).
		CloneWith(func(s *bitSetState) *bitSetState {
			return &bitSetState{words: append([]uint64(nil), s.words...), count: s.count}
		}).
		SizedBy((*bitSetState).WireSize)

	bitSetAdd     = orca.DefWrite(bitSetB, "add", func(s *bitSetState, i int) bool { return s.set(i) })
	bitSetAddMany = orca.DefWrite(bitSetB, "addMany", func(s *bitSetState, idxs []int) int {
		added := 0
		for _, i := range idxs {
			if s.set(i) {
				added++
			}
		}
		return added
	})
	bitSetContains = orca.DefRead(bitSetB, "contains", func(s *bitSetState, i int) bool { return s.has(i) })
	bitSetCount    = orca.DefRead0(bitSetB, "count", func(s *bitSetState) int { return s.count })
)

// BitSet is a shared set of small integers.
type BitSet struct{ h orca.Handle[*bitSetState] }

// NewBitSet creates a set over the universe [0, n).
func NewBitSet(p *orca.Proc, n int, opts ...orca.Option) BitSet {
	return BitSet{h: bitSetB.NewWith(p, opts, n)}
}

// Handle exposes the typed handle (for statistics).
func (s BitSet) Handle() orca.Handle[*bitSetState] { return s.h }

// Add inserts i, reporting whether it was new.
func (s BitSet) Add(p *orca.Proc, i int) bool { return bitSetAdd.Call(p, s.h, i) }

// AddMany inserts all the given elements in one indivisible operation,
// returning how many were new.
func (s BitSet) AddMany(p *orca.Proc, idxs []int) int { return bitSetAddMany.Call(p, s.h, idxs) }

// Contains reports membership (a local replica read).
func (s BitSet) Contains(p *orca.Proc, i int) bool { return bitSetContains.Call(p, s.h, i) }

// Count reads the set's cardinality.
func (s BitSet) Count(p *orca.Proc) int { return bitSetCount.Call(p, s.h) }

// --- Accum ------------------------------------------------------------
//
// An accumulating counter for collecting per-worker totals (nodes
// searched, patterns generated) at the end of a run.

type accumState struct{ total int64 }

// WireSize implements rts.Sized; it matches the type's FixedSize.
func (s *accumState) WireSize() int { return 8 }

var (
	accumB = orca.NewType(AccumObj, func([]any) *accumState { return &accumState{} }).
		CloneWith(func(s *accumState) *accumState { c := *s; return &c }).
		FixedSize(8)

	accumAdd   = orca.DefUpdate(accumB, "add", func(s *accumState, n int) { s.total += int64(n) })
	accumValue = orca.DefRead0(accumB, "value", func(s *accumState) int { return int(s.total) })
)

// Accum is a shared accumulating counter.
type Accum struct{ h orca.Handle[*accumState] }

// NewAccum creates an accumulator starting at zero.
func NewAccum(p *orca.Proc, opts ...orca.Option) Accum {
	return Accum{h: accumB.NewWith(p, opts)}
}

// Handle exposes the typed handle (for statistics).
func (a Accum) Handle() orca.Handle[*accumState] { return a.h }

// Add adds n to the total.
func (a Accum) Add(p *orca.Proc, n int) { accumAdd.Call(p, a.h, n) }

// Value reads the total.
func (a Accum) Value(p *orca.Proc) int { return accumValue.Call(p, a.h) }
