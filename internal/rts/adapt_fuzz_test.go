package rts

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// FuzzAdaptController drives the real placement controller (adaptInfo
// window fold + adaptDecide + dwell) with synthetic counter streams
// and checks its safety and liveness properties on every input:
//
//   - no flapping: two migrations of the same object are always at
//     least MinDwell of virtual time apart;
//   - decisions are well-formed: to-primary only from replicated,
//     to-replicated/re-home only from a primary copy, targets in
//     range and never the current primary;
//   - convergence on stationary workloads: a clearly write-heavy
//     concentrated stream ends as a primary copy on the dominant
//     writer and stops migrating; a clearly read-heavy stream never
//     leaves full replication.
//
// The stream is stationary by construction — fixed write fraction,
// fixed dominant-writer share — so the convergence assertions hold for
// any fuzzed parameters in the clear-cut regimes; near-threshold
// parameters still exercise the safety properties.
func FuzzAdaptController(f *testing.F) {
	f.Add(int64(1), byte(230), byte(240), byte(2)) // write-heavy, concentrated
	f.Add(int64(2), byte(10), byte(128), byte(3))  // read-heavy
	f.Add(int64(3), byte(100), byte(140), byte(4)) // near the thresholds
	f.Add(int64(4), byte(255), byte(0), byte(5))   // write-heavy, scattered writers
	f.Add(int64(5), byte(160), byte(255), byte(6)) // single sole writer
	f.Fuzz(func(t *testing.T, seed int64, wfB, dsB, nodesB byte) {
		nodes := 2 + int(nodesB)%6
		writeFrac := float64(wfB) / 255
		domShare := float64(dsB) / 255
		rng := rand.New(rand.NewSource(seed))
		dom := rng.Intn(nodes)
		cfg := DefaultAdaptConfig()
		info := &adaptInfo{
			cfg:    cfg.withDefaults(),
			reads:  make([]int64, nodes),
			writes: make([]int64, nodes),
		}
		replicated, primary := true, -1
		now := sim.Time(0)
		const windows = 40
		var migrations []sim.Time
		lastMigWindow := -1
		for wdw := 0; wdw < windows; wdw++ {
			for a := 0; a < cfg.SampleEvery; a++ {
				now += 50 * sim.Microsecond
				n := rng.Intn(nodes)
				if rng.Float64() < writeFrac {
					if rng.Float64() < domShare {
						n = dom // concentrate this share of writes
					}
					info.writes[n]++
				} else {
					info.reads[n]++
				}
				info.seen++
			}
			act, target := info.step(replicated, primary, now)
			switch act {
			case adaptStay:
				continue
			case adaptToPrimary:
				if !replicated {
					t.Fatalf("window %d: to-primary from a primary copy", wdw)
				}
				if target < 0 || target >= nodes {
					t.Fatalf("window %d: to-primary target %d out of range [0,%d)", wdw, target, nodes)
				}
				replicated, primary = false, target
			case adaptToReplicated:
				if replicated {
					t.Fatalf("window %d: to-replicated while already replicated", wdw)
				}
				replicated, primary = true, -1
			case adaptRehome:
				if replicated {
					t.Fatalf("window %d: re-home of a replicated object", wdw)
				}
				if target < 0 || target >= nodes || target == primary {
					t.Fatalf("window %d: re-home target %d invalid (primary %d, %d nodes)", wdw, target, primary, nodes)
				}
				primary = target
			}
			migrations = append(migrations, now)
			info.last = now // what finishMigration stamps after the flip
			lastMigWindow = wdw
		}
		for i := 1; i < len(migrations); i++ {
			if gap := migrations[i] - migrations[i-1]; gap < cfg.MinDwell {
				t.Fatalf("flapping: migrations %d and %d only %v apart, dwell is %v",
					i-1, i, gap, cfg.MinDwell)
			}
		}
		// Clear-cut stationary regimes must converge. Margins keep the
		// per-window sampling noise (sigma ~ 0.05 at SampleEvery=64)
		// far from the decision thresholds.
		if writeFrac >= 0.55 && domShare >= 0.8 {
			if replicated || primary != dom {
				t.Fatalf("write-heavy concentrated stream (wf=%.2f ds=%.2f) ended replicated=%v primary=%d, want primary@%d",
					writeFrac, domShare, replicated, primary, dom)
			}
			if lastMigWindow >= windows-10 {
				t.Fatalf("still migrating at window %d of %d on a stationary stream", lastMigWindow, windows)
			}
		}
		if writeFrac <= 0.08 {
			if !replicated || len(migrations) != 0 {
				t.Fatalf("read-heavy stream (wf=%.2f) migrated %d times, want none", writeFrac, len(migrations))
			}
		}
	})
}
