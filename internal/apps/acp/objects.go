package acp

import (
	"repro/internal/orca"
	"repro/internal/rts"
)

// Shared object types for the ACP program. The domain object holds
// the array of value sets ("This object thus contains an array of
// sets, one for each variable"); the work object holds the recheck
// flags plus the indivisible claim/idle operations the termination
// protocol needs. Both are declared with the typed builder of package
// orca: the Domains and Work wrapper types are the programming
// surface, and every operation is a typed descriptor compiled down to
// the registry's wire-level definitions.

// Type names registered by RegisterTypes.
const (
	DomainObj = "acp.domains"
	WorkObj   = "acp.work"
)

// RegisterTypes adds the ACP object types to a registry.
func RegisterTypes(reg *rts.Registry) {
	domainB.Register(reg)
	workB.Register(reg)
}

type domainState struct{ masks []uint64 }

// WireSize implements rts.Sized.
func (s *domainState) WireSize() int { return 8 + 8*len(s.masks) }

var (
	domainB = orca.NewType(DomainObj, func(args []any) *domainState {
		n, full := args[0].(int), args[1].(uint64)
		s := &domainState{masks: make([]uint64, n)}
		for i := range s.masks {
			s.masks[i] = full
		}
		return s
	}).
		CloneWith(func(s *domainState) *domainState {
			return &domainState{masks: append([]uint64(nil), s.masks...)}
		}).
		SizedBy((*domainState).WireSize)

	domainGet = orca.DefRead(domainB, "get", func(s *domainState, i int) uint64 {
		return s.masks[i]
	})
	// get2 reads two domains in one indivisible operation, the pair a
	// revise needs.
	domainGet2 = orca.DefRead2x2(domainB, "get2", func(s *domainState, i, j int) (uint64, uint64) {
		return s.masks[i], s.masks[j]
	})
	// remove deletes the given values from a variable's set and
	// reports (newMask, becameEmpty).
	domainRemove = orca.DefWrite2x2(domainB, "remove", func(s *domainState, i int, mask uint64) (uint64, bool) {
		s.masks[i] &^= mask
		return s.masks[i], s.masks[i] == 0
	})
	domainSnapshot = orca.DefRead0(domainB, "snapshot", func(s *domainState) []uint64 {
		return append([]uint64(nil), s.masks...)
	})
)

// Domains is the shared array of per-variable value sets.
type Domains struct{ h orca.Handle[*domainState] }

// NewDomains creates the domain object with n variables, each holding
// the full value set.
func NewDomains(p *orca.Proc, n int, full uint64) Domains {
	return Domains{h: domainB.New(p, n, full)}
}

// Get reads one variable's set.
func (d Domains) Get(p *orca.Proc, v int) uint64 { return domainGet.Call(p, d.h, v) }

// Get2 reads two variables' sets in one indivisible operation.
func (d Domains) Get2(p *orca.Proc, v, other int) (uint64, uint64) {
	return domainGet2.Call(p, d.h, v, other)
}

// Remove deletes the masked values from v's set, returning the new
// set and whether it became empty (a wipeout: no solution exists).
func (d Domains) Remove(p *orca.Proc, v int, mask uint64) (uint64, bool) {
	return domainRemove.Call(p, d.h, v, mask)
}

// Snapshot copies out all the sets.
func (d Domains) Snapshot(p *orca.Proc) []uint64 { return domainSnapshot.Call(p, d.h) }

// workState combines the per-variable recheck flags with the
// termination bookkeeping: which workers are idle and whether the
// computation is finished. Orca guards range over a single object, so
// the blocking claim must see both the flags and the done bit — the
// paper's "indivisible operations for testing these two conditions".
//
// For crash tolerance it additionally tracks which worker is currently
// revising which variable (claimed), which workers have been retired
// after their machine crashed (dead), and the orphaned variables of
// dead workers (orphans), which any surviving worker may claim. In a
// healthy run all three stay at their zero state and the object
// behaves exactly as before.
type workState struct {
	bits    []bool
	idle    []bool
	done    bool
	claimed []int  // claimed[w]: variable w is revising, -1 if none
	dead    []bool // w retired after a crash
	orphans []int  // dead workers' variables, claimable by anyone
}

// WireSize implements rts.Sized.
func (st *workState) WireSize() int {
	return 9 + len(st.bits) + len(st.idle) + len(st.dead) + 8*len(st.claimed) + 4 + 8*len(st.orphans)
}

// claim is the shared core of the claim and await operations. A
// retired worker's claim — one already in flight when its machine
// crashed — reports done so the (dead) caller would exit rather than
// steal work. Survivors claim from their own partition first, then
// from the orphan pool.
func (st *workState) claim(me int, vars []int) (int, bool) {
	if st.done || st.dead[me] {
		return -1, true
	}
	take := func(v int) (int, bool) {
		st.bits[v] = false
		st.idle[me] = false
		st.claimed[me] = v
		return v, false
	}
	for _, v := range vars {
		if st.bits[v] {
			return take(v)
		}
	}
	for _, v := range st.orphans {
		if st.bits[v] {
			return take(v)
		}
	}
	return -1, false
}

// hasWork reports whether a claim by me would succeed.
func (st *workState) hasWork(me int, vars []int) bool {
	if st.done || st.dead[me] {
		return true
	}
	for _, v := range vars {
		if st.bits[v] {
			return true
		}
	}
	for _, v := range st.orphans {
		if st.bits[v] {
			return true
		}
	}
	return false
}

// refresh re-evaluates termination: every worker idle (the dead count
// as idle forever) and no variable flagged.
func (st *workState) refresh() {
	if st.done {
		return
	}
	for _, id := range st.idle {
		if !id {
			return
		}
	}
	for _, b := range st.bits {
		if b {
			return
		}
	}
	st.done = true
}

var (
	workB = orca.NewType(WorkObj, func(args []any) *workState {
		nVars, workers := args[0].(int), args[1].(int)
		s := &workState{
			bits:    make([]bool, nVars),
			idle:    make([]bool, workers),
			claimed: make([]int, workers),
			dead:    make([]bool, workers),
		}
		for i := range s.bits {
			s.bits[i] = true
		}
		for i := range s.claimed {
			s.claimed[i] = -1
		}
		return s
	}).
		CloneWith(func(st *workState) *workState {
			return &workState{
				bits:    append([]bool(nil), st.bits...),
				idle:    append([]bool(nil), st.idle...),
				done:    st.done,
				claimed: append([]int(nil), st.claimed...),
				dead:    append([]bool(nil), st.dead...),
				orphans: append([]int(nil), st.orphans...),
			}
		}).
		SizedBy((*workState).WireSize)

	// mark flags variables for rechecking.
	workMark = orca.DefUpdate(workB, "mark", func(st *workState, vars []int) {
		for _, v := range vars {
			st.bits[v] = true
		}
	})
	// claim indivisibly takes one flagged variable from the caller's
	// partition (non-blocking): (var, done).
	workClaim = orca.DefWrite2x2(workB, "claim", func(st *workState, me int, vars []int) (int, bool) {
		return st.claim(me, vars)
	})
	// await blocks until the caller has claimable work (its partition
	// or the orphan pool) or the computation is finished, then claims
	// indivisibly.
	workAwait = orca.DefWrite2x2(workB, "await", func(st *workState, me int, vars []int) (int, bool) {
		return st.claim(me, vars)
	}).Guard(func(st *workState, me int, vars []int) bool {
		return st.hasWork(me, vars)
	})
	// setIdle declares the caller out of work; if every worker is idle
	// and no flags remain, the computation is done. Returns done.
	workSetIdle = orca.DefWrite(workB, "setIdle", func(st *workState, me int) bool {
		st.idle[me] = true
		st.claimed[me] = -1
		st.refresh()
		return st.done
	})
	// retire removes crashed workers from the termination protocol:
	// they count as idle forever, their partitions join the orphan pool
	// for the survivors, and the variable each was revising mid-crash
	// is re-flagged (its revision may have been half done — revising
	// again is idempotent). Termination is re-evaluated, since the
	// retired workers may have been the last busy ones.
	workRetire = orca.DefUpdate2(workB, "retire", func(st *workState, ws []int, vars []int) {
		for _, w := range ws {
			if st.dead[w] {
				continue
			}
			st.dead[w] = true
			st.idle[w] = true
			if v := st.claimed[w]; v >= 0 {
				st.bits[v] = true
				st.claimed[w] = -1
			}
		}
		st.orphans = append(st.orphans, vars...)
		st.refresh()
	})
	// finish aborts the computation (no solution exists).
	workFinish = orca.DefUpdate0(workB, "finish", func(st *workState) { st.done = true })
	workIsDone = orca.DefRead0(workB, "isDone", func(st *workState) bool { return st.done })
	workAny    = orca.DefRead0(workB, "anyWork", func(st *workState) bool {
		for _, b := range st.bits {
			if b {
				return true
			}
		}
		return false
	})
)

// Work is the shared recheck-flag and termination object.
type Work struct{ h orca.Handle[*workState] }

// NewWork creates the work object for nVars variables and the given
// worker count, with every variable initially flagged.
func NewWork(p *orca.Proc, nVars, workers int) Work {
	return Work{h: workB.New(p, nVars, workers)}
}

// Mark flags variables for rechecking.
func (w Work) Mark(p *orca.Proc, vars []int) { workMark.Call(p, w.h, vars) }

// Claim indivisibly takes one flagged variable from the caller's
// partition without blocking, returning (variable, done); variable is
// -1 when the partition has no flagged work.
func (w Work) Claim(p *orca.Proc, me int, vars []int) (int, bool) {
	return workClaim.Call(p, w.h, me, vars)
}

// Await blocks until the caller's partition has work or the
// computation finished, then claims indivisibly like Claim.
func (w Work) Await(p *orca.Proc, me int, vars []int) (int, bool) {
	return workAwait.Call(p, w.h, me, vars)
}

// SetIdle declares the caller out of work and returns whether the
// whole computation is now done.
func (w Work) SetIdle(p *orca.Proc, me int) bool { return workSetIdle.Call(p, w.h, me) }

// Retire removes crashed workers from the termination protocol and
// hands their variables (vars) to the orphan pool, where any surviving
// worker can claim them. Idempotent per worker.
func (w Work) Retire(p *orca.Proc, ws []int, vars []int) { workRetire.Call(p, w.h, ws, vars) }

// Finish aborts the computation (no solution exists).
func (w Work) Finish(p *orca.Proc) { workFinish.Call(p, w.h) }

// IsDone reads the termination bit.
func (w Work) IsDone(p *orca.Proc) bool { return workIsDone.Call(p, w.h) }

// AnyWork reports whether any variable is flagged.
func (w Work) AnyWork(p *orca.Proc) bool { return workAny.Call(p, w.h) }
