package amoeba

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Costs are the kernel CPU cost constants, calibrated so that a null
// RPC lands in the ~1.2 ms range Amoeba reported on this class of
// hardware.
type Costs struct {
	// Interrupt is CPU time per delivered wire fragment.
	Interrupt sim.Time
	// Protocol is CPU time to process one delivered message above the
	// interrupt itself (demux, header checks, copies).
	Protocol sim.Time
	// Send is CPU time to build and hand one message to the driver.
	Send sim.Time
	// Switch is the thread context-switch cost charged when a blocked
	// thread is handed a message.
	Switch sim.Time
	// Quantum is the scheduling timeslice: Compute releases the CPU
	// between quanta so other threads (and interrupt service) can
	// interleave with long computations, as a preemptive kernel
	// would allow.
	Quantum sim.Time
}

// DefaultCosts returns constants for a 1992-class 68030 running the
// Amoeba kernel.
func DefaultCosts() Costs {
	return Costs{
		Interrupt: 120 * sim.Microsecond,
		Protocol:  90 * sim.Microsecond,
		Send:      180 * sim.Microsecond,
		Switch:    60 * sim.Microsecond,
		Quantum:   sim.Millisecond,
	}
}

// Packet is the unit the kernel exchanges: a port to demultiplex on
// plus an opaque body. Kind labels the traffic class for wire
// statistics.
type Packet struct {
	Port string
	Kind string
	Body any
	Size int
}

// Handler services packets arriving at a bound port. Handlers run on
// the machine's interrupt thread after CPU costs are charged; they
// must not block (enqueue to a sim.Queue and return).
type Handler func(p *sim.Proc, from int, pkt Packet)

// task is a unit of work for the interrupt thread: either a network
// delivery or a deferred function (timer bodies that need kernel CPU).
// The delivery travels by value: a pointer would force a fresh heap
// allocation per received frame.
type task struct {
	deliv netsim.Delivery
	fn    func(p *sim.Proc)
}

// Machine is one kernel instance: a node id, a CPU, bound ports, and
// bookkeeping for threads, processes, and segments.
type Machine struct {
	id      int
	env     *sim.Env
	net     *netsim.Network
	costs   Costs
	cpu     *sim.Resource
	inq     *sim.Queue[task]
	ports   map[string]Handler
	crashed bool

	nextSegID  int
	memInUse   int64
	memPeak    int64
	nthreads   int
	threads    []*sim.Proc // live threads of this machine (compacted lazily)
	threadHi   int         // compaction watermark for threads
	appBusy    sim.Time    // CPU time charged through Compute (application work)
	svcCounter int64
}

// NewMachine boots a kernel on node id of net.
func NewMachine(env *sim.Env, net *netsim.Network, id int, costs Costs) *Machine {
	m := &Machine{
		id:    id,
		env:   env,
		net:   net,
		costs: costs,
		cpu:   sim.NewResource(env),
		inq:   sim.NewQueue[task](env),
		ports: make(map[string]Handler),
	}
	net.Handle(id, func(d netsim.Delivery) {
		m.inq.Put(task{deliv: d})
	})
	m.SpawnThread("netisr", m.interruptLoop)
	return m
}

// ID reports the node id.
func (m *Machine) ID() int { return m.id }

// Env returns the simulation environment.
func (m *Machine) Env() *sim.Env { return m.env }

// Net returns the network the machine is attached to.
func (m *Machine) Net() *netsim.Network { return m.net }

// Costs returns the kernel cost constants.
func (m *Machine) Costs() Costs { return m.costs }

// CPU exposes the machine's processor resource.
func (m *Machine) CPU() *sim.Resource { return m.cpu }

// interruptLoop is the kernel's interrupt-service thread. It charges
// interrupt and protocol costs for each delivery, then dispatches to
// the bound handler.
func (m *Machine) interruptLoop(p *sim.Proc) {
	for {
		t, ok := m.inq.Get(p)
		if !ok {
			return
		}
		if m.crashed {
			continue
		}
		if t.fn != nil {
			t.fn(p)
			continue
		}
		d := &t.deliv
		cost := m.costs.Interrupt*sim.Time(d.Fragments) + m.costs.Protocol
		m.cpu.UseFront(p, cost)
		pkt, ok := d.Frame.Payload.(Packet)
		if !ok {
			panic(fmt.Sprintf("amoeba: node %d received non-Packet payload %T", m.id, d.Frame.Payload))
		}
		h := m.ports[pkt.Port]
		if h == nil {
			m.env.Tracef("node%d: drop packet for unbound port %q", m.id, pkt.Port)
			continue
		}
		h(p, d.Frame.Src, pkt)
	}
}

// Bind registers the handler for a port. Binding an already-bound port
// panics: port names are service identities.
func (m *Machine) Bind(port string, h Handler) {
	if _, dup := m.ports[port]; dup {
		panic(fmt.Sprintf("amoeba: node %d: port %q already bound", m.id, port))
	}
	m.ports[port] = h
}

// Unbind removes a port binding.
func (m *Machine) Unbind(port string) { delete(m.ports, port) }

// SpawnThread starts a kernel or user thread on this machine. The
// thread is a simulated process; its compute must be charged explicitly
// through Compute (or cpu.Use) to occupy the machine's CPU. Threads
// die with the machine: Crash kills every thread spawned here.
func (m *Machine) SpawnThread(name string, fn func(p *sim.Proc)) *sim.Proc {
	if m.crashed {
		panic(fmt.Sprintf("amoeba: spawn %q on crashed node %d", name, m.id))
	}
	m.nthreads++
	if len(m.threads) >= m.threadHi {
		// Compact away terminated threads so short-lived per-operation
		// threads (RPC fanouts, forwarded ops) do not accumulate for
		// the machine's lifetime. Amortized O(1) per spawn.
		live := m.threads[:0]
		for _, t := range m.threads {
			if !t.Terminated() {
				live = append(live, t)
			}
		}
		clear(m.threads[len(live):])
		m.threads = live
		m.threadHi = 2*len(live) + 16
	}
	p := m.env.Spawn(fmt.Sprintf("node%d/%s", m.id, name), fn)
	m.threads = append(m.threads, p)
	return p
}

// Compute charges d of application CPU time to the machine on behalf
// of thread p, blocking while the CPU is busy with other work. Long
// computations are sliced into scheduling quanta so other threads and
// interrupt service interleave.
func (m *Machine) Compute(p *sim.Proc, d sim.Time) {
	if d <= 0 {
		return
	}
	m.appBusy += d
	q := m.costs.Quantum
	if q <= 0 {
		q = sim.Millisecond
	}
	for d > 0 {
		c := d
		if c > q {
			c = q
		}
		m.cpu.Use(p, c)
		d -= c
	}
}

// AppBusy reports total application CPU time charged via Compute.
func (m *Machine) AppBusy() sim.Time { return m.appBusy }

// Send transmits a unicast packet to dst, charging send-side CPU to p.
func (m *Machine) Send(p *sim.Proc, dst int, pkt Packet) {
	if m.crashed {
		return
	}
	m.cpu.Use(p, m.costs.Send)
	m.net.SendFrame(netsim.Frame{Src: m.id, Dst: dst, Kind: pkt.Kind, Size: pkt.Size, Payload: pkt})
}

// Broadcast transmits a packet to all other machines, charging
// send-side CPU to p. It requires broadcast-capable hardware.
func (m *Machine) Broadcast(p *sim.Proc, pkt Packet) {
	if m.crashed {
		return
	}
	m.cpu.Use(p, m.costs.Send)
	m.net.BroadcastFrame(netsim.Frame{Src: m.id, Kind: pkt.Kind, Size: pkt.Size, Payload: pkt})
}

// Multicast transmits a packet to the listed member nodes, charging
// send-side CPU to p. The wire carries one frame (hardware multicast);
// only member NICs take receive interrupts. members must be sorted
// ascending for deterministic delivery order.
func (m *Machine) Multicast(p *sim.Proc, pkt Packet, members []int) {
	if m.crashed {
		return
	}
	m.cpu.Use(p, m.costs.Send)
	m.net.MulticastFrame(netsim.Frame{Src: m.id, Kind: pkt.Kind, Size: pkt.Size, Payload: pkt}, members)
}

// Defer enqueues fn to run on the interrupt thread, where it may charge
// kernel CPU and send packets. Timer callbacks use this to re-enter
// kernel context.
func (m *Machine) Defer(fn func(p *sim.Proc)) {
	if m.crashed {
		return
	}
	m.inq.Put(task{fn: fn})
}

// After schedules fn on the interrupt thread d from now. The returned
// event can be cancelled.
func (m *Machine) After(d sim.Time, fn func(p *sim.Proc)) *sim.Event {
	return m.env.After(d, func() {
		if !m.crashed {
			m.Defer(fn)
		}
	})
}

// Crash simulates a processor crash: the machine leaves the network,
// stops servicing its queues, and every thread spawned on it is killed
// where it stands — mid-computation, parked on a condition, or waiting
// for a reply. Nothing on the machine runs again. In-flight RPCs from
// other machines to this one fail with ErrCrashed once their timeout
// notices the destination is down.
func (m *Machine) Crash() {
	if m.crashed {
		return
	}
	m.crashed = true
	m.net.SetDown(m.id, true)
	for _, p := range m.threads {
		m.env.Kill(p)
	}
}

// Crashed reports whether the machine has crashed.
func (m *Machine) Crashed() bool { return m.crashed }

// ServiceID returns a machine-unique id, used by protocols to mint
// unique message identifiers.
func (m *Machine) ServiceID() int64 {
	m.svcCounter++
	return int64(m.id)<<40 | m.svcCounter
}
