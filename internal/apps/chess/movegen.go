package chess

// Move generation on the 0x88 board: pseudo-legal moves plus an
// attack test; the search discards moves that leave the own king in
// check.

var (
	knightDeltas = []int{-33, -31, -18, -14, 14, 18, 31, 33}
	kingDeltas   = []int{-17, -16, -15, -1, 1, 15, 16, 17}
	bishopDirs   = []int{-17, -15, 15, 17}
	rookDirs     = []int{-16, -1, 1, 16}
	queenDirs    = []int{-17, -16, -15, -1, 1, 15, 16, 17}
)

// Attacked reports whether square s is attacked by the given color.
func (b *Board) Attacked(s int, byWhite bool) bool {
	// Pawns.
	if byWhite {
		for _, d := range []int{-17, -15} {
			from := s + d
			if OnBoard(from) && b.Sq[from] == WP {
				return true
			}
		}
	} else {
		for _, d := range []int{15, 17} {
			from := s + d
			if OnBoard(from) && b.Sq[from] == BP {
				return true
			}
		}
	}
	// Knights.
	for _, d := range knightDeltas {
		from := s + d
		if !OnBoard(from) {
			continue
		}
		p := b.Sq[from]
		if p.Kind() == WN && p.White() == byWhite {
			return true
		}
	}
	// Kings.
	for _, d := range kingDeltas {
		from := s + d
		if !OnBoard(from) {
			continue
		}
		p := b.Sq[from]
		if p.Kind() == WK && p.White() == byWhite {
			return true
		}
	}
	// Sliders.
	for _, d := range bishopDirs {
		for from := s + d; OnBoard(from); from += d {
			p := b.Sq[from]
			if p == Empty {
				continue
			}
			if p.White() == byWhite && (p.Kind() == WB || p.Kind() == WQ) {
				return true
			}
			break
		}
	}
	for _, d := range rookDirs {
		for from := s + d; OnBoard(from); from += d {
			p := b.Sq[from]
			if p == Empty {
				continue
			}
			if p.White() == byWhite && (p.Kind() == WR || p.Kind() == WQ) {
				return true
			}
			break
		}
	}
	return false
}

// InCheck reports whether the side to move is in check.
func (b *Board) InCheck() bool {
	return b.Attacked(b.KingSquare(b.WhiteToMove), !b.WhiteToMove)
}

// GenMoves appends all pseudo-legal moves for the side to move.
// capturesOnly restricts to captures and promotions (for quiescence).
func (b *Board) GenMoves(buf []Move, capturesOnly bool) []Move {
	white := b.WhiteToMove
	mine := func(p Piece) bool {
		if white {
			return p.White()
		}
		return p.Black()
	}
	enemy := func(p Piece) bool {
		if white {
			return p.Black()
		}
		return p.White()
	}
	addSlider := func(from int, dirs []int) {
		for _, d := range dirs {
			for to := from + d; OnBoard(to); to += d {
				t := b.Sq[to]
				if mine(t) {
					break
				}
				if t == Empty {
					if !capturesOnly {
						buf = append(buf, Move{From: from, To: to})
					}
					continue
				}
				buf = append(buf, Move{From: from, To: to})
				break
			}
		}
	}
	addHopper := func(from int, deltas []int) {
		for _, d := range deltas {
			to := from + d
			if !OnBoard(to) {
				continue
			}
			t := b.Sq[to]
			if mine(t) {
				continue
			}
			if t == Empty && capturesOnly {
				continue
			}
			buf = append(buf, Move{From: from, To: to})
		}
	}
	for from := 0; from < 128; from++ {
		if !OnBoard(from) {
			continue
		}
		p := b.Sq[from]
		if p == Empty || !mine(p) {
			continue
		}
		switch p.Kind() {
		case WP:
			fwd, startRank, promoRank := 16, 1, 7
			if !white {
				fwd, startRank, promoRank = -16, 6, 0
			}
			one := from + fwd
			if OnBoard(one) && b.Sq[one] == Empty {
				promo := RankOf(one) == promoRank
				if !capturesOnly || promo {
					buf = append(buf, Move{From: from, To: one, Promo: promo})
				}
				two := one + fwd
				if !capturesOnly && RankOf(from) == startRank && OnBoard(two) && b.Sq[two] == Empty {
					buf = append(buf, Move{From: from, To: two})
				}
			}
			for _, d := range []int{fwd - 1, fwd + 1} {
				to := from + d
				if OnBoard(to) && enemy(b.Sq[to]) {
					buf = append(buf, Move{From: from, To: to, Promo: RankOf(to) == promoRank})
				}
			}
		case WN:
			addHopper(from, knightDeltas)
		case WB:
			addSlider(from, bishopDirs)
		case WR:
			addSlider(from, rookDirs)
		case WQ:
			addSlider(from, queenDirs)
		case WK:
			addHopper(from, kingDeltas)
		}
	}
	return buf
}

// LegalMoves filters pseudo-legal moves that leave the mover's king
// attacked.
func (b *Board) LegalMoves() []Move {
	var out []Move
	white := b.WhiteToMove
	for _, m := range b.GenMoves(nil, false) {
		u := b.MakeMove(m)
		if !b.Attacked(b.KingSquare(white), !white) {
			out = append(out, m)
		}
		b.UnmakeMove(u)
	}
	return out
}

// Perft counts leaf nodes of the legal move tree to the given depth;
// the standard move-generator correctness check.
func (b *Board) Perft(depth int) int64 {
	if depth == 0 {
		return 1
	}
	var total int64
	white := b.WhiteToMove
	for _, m := range b.GenMoves(nil, false) {
		u := b.MakeMove(m)
		if !b.Attacked(b.KingSquare(white), !white) {
			total += b.Perft(depth - 1)
		}
		b.UnmakeMove(u)
	}
	return total
}
